// mostserver serves a moving-objects database over TCP using the MOST wire
// protocol: pipelined requests, batched motion updates, FTL queries,
// snapshot save/load, and server-push streaming of continuous-query answer
// changes.  It loads the same synthetic world as mostql (a vehicle fleet
// plus the MOTELS relation, with the named regions P, Q and downtown), so
// `mostql -connect` against a fresh mostserver behaves like a local mostql.
//
// Usage:
//
//	mostserver [-addr :7654] [-n 100] [-seed 1] [-horizon 500] [-http :6060]
//	           [-proto 2] [-wal DIR] [-checkpoint-every 256] [-max-inflight 0]
//	           [-zone x0,y0,x1,y1] [-peers addr=x0,y0,x1,y1;...]
//	           [-advertise host:port] [-replicated Class,...]
//
// With -zone set the process serves one cluster node: it owns the given
// rectangle of the plane, and -peers lists every other node's address and
// zone.  All nodes must be started with equivalent maps (same rectangles,
// same addresses).  The node seeds the same synthetic world, prunes it to
// the objects inside its zone, and from then on hands objects crossing a
// zone seam to the owning peer (PROTOCOL.md §7); -advertise is the address
// peers and the zone map know this node by (default: 127.0.0.1-qualified
// -addr), and -replicated names classes kept whole on every node instead
// of partitioned.  Combine with -wal for a crash-safe node: a recovered
// shard keeps its objects and quarantines any that were mid-handoff.
//
// -proto caps the wire protocol version the server offers during the Hello
// handshake (PROTOCOL.md): 1 forces JSON payloads for every session, the
// default offers the newest implemented version (currently 2, binary) and
// lets each client negotiate down.
//
// With -wal set the server is durable: every committed mutation is
// write-ahead logged under DIR before its response is sent, and on startup
// the database — plus the idempotence receipts that make client retries
// exactly-once across a crash — is recovered from DIR's checkpoint and log.
// The synthetic world seeds only a fresh directory; a recovered one keeps
// its own state.  -checkpoint-every bounds replay time by checkpointing
// after every N mutating requests (0 = only on clean shutdown).  A failed
// recovery is fatal: the process reports the corruption and exits non-zero
// rather than serving from a guess.
//
// With -http set, /obs, /debug/vars, /debug/pprof, /healthz and /readyz are
// served on that address; /readyz answers 503 while recovering or draining.
// -max-inflight > 0 sheds requests beyond that concurrency with a
// retryable `overloaded` error instead of queueing without bound.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	mostdb "github.com/mostdb/most"
	"github.com/mostdb/most/internal/cluster"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7654", "TCP listen address")
	n := flag.Int("n", 100, "fleet size")
	seed := flag.Int64("seed", 1, "workload seed")
	horizon := flag.Int64("horizon", 500, "default query horizon (ticks)")
	httpAddr := flag.String("http", "", "serve /obs, /debug/pprof, /healthz, /readyz on this address (e.g. :6060)")
	proto := flag.Int("proto", 0, "highest wire protocol version to offer (1 = JSON only, 0 = newest)")
	walDir := flag.String("wal", "", "durable mode: write-ahead log and checkpoints under this directory")
	checkpointEvery := flag.Int("checkpoint-every", 256, "checkpoint after every N mutating requests (0 = only on clean shutdown; needs -wal)")
	maxInflight := flag.Int("max-inflight", 0, "shed requests beyond this concurrency (0 = unbounded)")
	zoneFlag := flag.String("zone", "", "cluster mode: the rectangle this node owns, as x0,y0,x1,y1")
	peersFlag := flag.String("peers", "", "cluster mode: peer zones, as addr=x0,y0,x1,y1 entries separated by ';'")
	advertise := flag.String("advertise", "", "cluster mode: address peers know this node by (default: 127.0.0.1-qualified -addr)")
	replicatedFlag := flag.String("replicated", "", "cluster mode: comma-separated classes kept whole on every node")
	flag.Parse()

	fatalf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mostserver: "+format+"\n", args...)
		os.Exit(1)
	}
	var node *cluster.Node
	var zoneMap *cluster.ZoneMap
	selfAddr := ""
	if *zoneFlag != "" {
		selfAddr = *advertise
		if selfAddr == "" {
			selfAddr = *addr
			if strings.HasPrefix(selfAddr, ":") {
				selfAddr = "127.0.0.1" + selfAddr
			}
		}
		own, err := parseZone(*zoneFlag, selfAddr)
		if err != nil {
			fatalf("-zone: %v", err)
		}
		zones := []wire.Zone{own}
		if *peersFlag != "" {
			for _, entry := range strings.Split(*peersFlag, ";") {
				peerAddr, rect, ok := strings.Cut(strings.TrimSpace(entry), "=")
				if !ok {
					fatalf("-peers: entry %q is not addr=x0,y0,x1,y1", entry)
				}
				z, err := parseZone(rect, peerAddr)
				if err != nil {
					fatalf("-peers: entry %q: %v", entry, err)
				}
				zones = append(zones, z)
			}
		}
		var replicated []string
		for _, c := range strings.Split(*replicatedFlag, ",") {
			if c = strings.TrimSpace(c); c != "" {
				replicated = append(replicated, c)
			}
		}
		zoneMap, err = cluster.NewMap(zones, replicated)
		if err != nil {
			fatalf("%v", err)
		}
		// The per-boot nonce keeps this incarnation's peer request IDs
		// distinct from a previous process's recovered receipts.
		node = cluster.NewNode(fmt.Sprintf("%d-%d", os.Getpid(), time.Now().UnixNano()), nil)
		node.Install(zoneMap)
	} else if *peersFlag != "" || *advertise != "" || *replicatedFlag != "" {
		fatalf("-peers/-advertise/-replicated need -zone")
	}

	reg := obs.New()
	health := &obs.Health{}
	// The health endpoints come up before recovery so orchestrators can
	// watch /readyz flip starting → recovering → ready.
	if *httpAddr != "" {
		obs.Publish("mostserver", reg)
		mux := obs.NewServeMux(reg)
		health.Mount(mux)
		go http.ListenAndServe(*httpAddr, mux)
	}

	world := func() *mostdb.Database {
		db, err := mostdb.Fleet(mostdb.FleetSpec{
			N:        *n,
			Region:   mostdb.Rect(0, 0, 1000, 1000),
			MaxSpeed: 3,
			Seed:     *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mostserver:", err)
			os.Exit(1)
		}
		if err := mostdb.AddMotels(db, mostdb.MotelsSpec{N: 30, Region: mostdb.Rect(0, 0, 1000, 1000), Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, "mostserver:", err)
			os.Exit(1)
		}
		return db
	}

	cfg := mostdb.ServerConfig{
		BaseOptions: mostdb.QueryOptions{
			Horizon: mostdb.Tick(*horizon),
			Regions: map[string]mostdb.Polygon{
				"P":        mostdb.RectPolygon(100, 100, 300, 300),
				"Q":        mostdb.RectPolygon(600, 600, 900, 900),
				"downtown": mostdb.RectPolygon(400, 400, 600, 600),
			},
		},
		Reg:             reg,
		Name:            "mostserver",
		MaxProtocol:     *proto,
		Health:          health,
		MaxInflight:     *maxInflight,
		CheckpointEvery: *checkpointEvery,
	}
	if node != nil {
		cfg.Cluster = node
		cfg.PeerMaxPayload = 64 << 20
	}

	var srv *mostdb.Server
	fresh := true
	if *walDir != "" {
		durable, info, err := mostdb.NewDurableServer(*walDir, cfg, world)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mostserver: recovery from %s failed: %v\n", *walDir, err)
			fmt.Fprintln(os.Stderr, "mostserver: refusing to serve partial state; inspect wal.log / checkpoint.json or move the directory aside to reseed")
			os.Exit(1)
		}
		srv = durable
		fresh = info.Fresh
		if info.Fresh {
			fmt.Printf("mostserver: fresh durable start in %s (seeded world logged as base image)\n", *walDir)
		} else {
			records := 0
			if info.Report != nil {
				records = info.Report.Records
				if info.Report.Truncated {
					fmt.Fprintf(os.Stderr, "mostserver: wal replay stopped early (%s) — expected after a crash mid-checkpoint, state is complete\n", info.Report.Reason)
				}
			}
			fmt.Printf("mostserver: recovered %d objects at tick %d from %s (%d wal records, %d receipts, %d partials) in %s\n",
				info.Objects, info.Now, *walDir, records, info.Receipts, info.Partials, info.Elapsed.Round(time.Millisecond))
		}
	} else {
		db := world()
		eng := mostdb.NewEngine(db)
		db.Instrument(reg)
		eng.Instrument(reg)
		srv = mostdb.NewServer(db, eng, cfg)
	}

	if node != nil {
		node.Bind(srv, selfAddr)
		if fresh {
			// Shard bootstrap: the seeded world is built whole on every
			// node, then pruned to the objects this zone owns.
			if err := node.Prune(); err != nil {
				fatalf("prune shard: %v", err)
			}
			fmt.Printf("mostserver: cluster node %s owns zone %s (%d zones in map)\n", selfAddr, *zoneFlag, len(zoneMap.Zones))
		} else {
			// A recovered shard may hold objects that were mid-handoff at
			// the crash: freeze them and re-offer to the zone owner rather
			// than accept writes on possibly-released copies.
			q, err := node.Quarantine()
			if err != nil {
				fatalf("quarantine recovered shard: %v", err)
			}
			fmt.Printf("mostserver: cluster node %s recovered; %d out-of-zone objects quarantined for re-handoff\n", selfAddr, q)
		}
	}

	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "mostserver:", err)
		os.Exit(1)
	}
	fmt.Printf("mostserver: serving on %s; horizon %d\n", srv.Addr(), *horizon)
	if *httpAddr != "" {
		fmt.Printf("mostserver: observability on http://%s/obs, /debug/pprof/, /healthz, /readyz\n", *httpAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "mostserver: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mostserver: shutdown:", err)
		os.Exit(1)
	}
}

// parseZone parses "x0,y0,x1,y1" into a zone owned by addr.
func parseZone(rect, addr string) (wire.Zone, error) {
	parts := strings.Split(strings.TrimSpace(rect), ",")
	if len(parts) != 4 {
		return wire.Zone{}, fmt.Errorf("want x0,y0,x1,y1, got %q", rect)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return wire.Zone{}, fmt.Errorf("coordinate %q: %v", p, err)
		}
		v[i] = f
	}
	return wire.Zone{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3], Addr: addr}, nil
}
