// Package geom provides the spatial types and methods of the MOST model
// (paper §2) — points, polygons, and the spatial relations INSIDE, OUTSIDE,
// DIST and WITHIN-A-SPHERE — together with their *kinetic* forms: given
// objects whose positions are linear functions of time, the kinetic solvers
// return the exact time intervals during which a spatial relation holds.
// Those intervals are what the FTL query-processing algorithm (paper
// appendix) consumes as its atomic-predicate relations.
package geom

import "math"

// Point is a position in up to three dimensions (the paper's X.POSITION,
// Y.POSITION, Z.POSITION attributes).  Planar workloads leave Z at zero.
type Point struct {
	X, Y, Z float64
}

// Vector is a displacement or velocity; a motion vector in the paper's
// sense is a Vector interpreted as distance per clock tick.
type Vector struct {
	X, Y, Z float64
}

// Add returns p translated by v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.X, p.Y + v.Y, p.Z + v.Z} }

// Sub returns the displacement from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns v multiplied by the scalar k.
func (v Vector) Scale(k float64) Vector { return Vector{v.X * k, v.Y * k, v.Z * k} }

// AddVec returns the component-wise sum of two vectors.
func (v Vector) AddVec(w Vector) Vector { return Vector{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v minus w.
func (v Vector) Sub(w Vector) Vector { return Vector{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Dot returns the inner product of two vectors.
func (v Vector) Dot(w Vector) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of the vector.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length (avoids the sqrt).
func (v Vector) Norm2() float64 { return v.Dot(v) }

// IsZero reports whether all components are exactly zero.
func (v Vector) IsZero() bool { return v.X == 0 && v.Y == 0 && v.Z == 0 }

// Dist implements the paper's DIST(o1,o2) method: the Euclidean distance
// between two point-objects.
func Dist(p, q Point) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared distance between two points.
func Dist2(p, q Point) float64 { return p.Sub(q).Norm2() }

// Heading returns a unit vector in the XY plane at the given angle
// (radians, counter-clockwise from the positive X axis).  Convenience for
// building motion vectors like "north at 60 miles/hour".
func Heading(angle float64) Vector { return Vector{math.Cos(angle), math.Sin(angle), 0} }

// Rect is an axis-aligned box.  With Min.Z == Max.Z == 0 it is a rectangle
// in the plane.
type Rect struct {
	Min, Max Point
}

// Valid reports whether Min <= Max on every axis.
func (r Rect) Valid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y && r.Min.Z <= r.Max.Z
}

// ContainsPoint reports whether p lies inside the box (boundaries included).
func (r Rect) ContainsPoint(p Point) bool {
	return r.Min.X <= p.X && p.X <= r.Max.X &&
		r.Min.Y <= p.Y && p.Y <= r.Max.Y &&
		r.Min.Z <= p.Z && p.Z <= r.Max.Z
}

// Intersects reports whether two boxes share any point.
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X <= o.Max.X && o.Min.X <= r.Max.X &&
		r.Min.Y <= o.Max.Y && o.Min.Y <= r.Max.Y &&
		r.Min.Z <= o.Max.Z && o.Min.Z <= r.Max.Z
}

// Expand grows the box to include p.
func (r Rect) Expand(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y), math.Min(r.Min.Z, p.Z)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y), math.Max(r.Max.Z, p.Z)},
	}
}
