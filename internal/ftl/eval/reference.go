package eval

import (
	"strings"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/temporal"
)

// ReferenceEval evaluates a query by the definitional semantics of §3.3,
// state by state: for every instantiation of the FROM-bound variables and
// every tick of the window it decides satisfaction recursively.  It is
// exponentially slower than the relation algorithm and exists as the
// correctness oracle the test suite cross-checks against.
func ReferenceEval(q *ftl.Query, c *Context) (*Relation, error) {
	for _, tgt := range q.Targets {
		if _, ok := c.Domains[tgt]; !ok {
			return nil, errf("target variable %q has no FROM binding", tgt)
		}
	}
	var cols []string
	for _, v := range ftl.FreeVars(q.Where) {
		if _, ok := c.Domains[v]; ok {
			cols = append(cols, v)
		}
	}
	// Targets must appear even if unused in the formula.
	seen := map[string]bool{}
	for _, cname := range cols {
		seen[cname] = true
	}
	for _, tgt := range q.Targets {
		if !seen[tgt] {
			cols = append(cols, tgt)
			seen[tgt] = true
		}
	}
	rel := NewRelation(cols...)
	w := c.Window()
	err := c.forEachInstantiation(cols, func(en env, vals []Val) error {
		var ivs []temporal.Interval
		var open bool
		var start temporal.Tick
		for t := w.Start; t <= w.End; t++ {
			sat, err := c.refSatFormula(q.Where, en, t)
			if err != nil {
				return err
			}
			if sat && !open {
				start, open = t, true
			}
			if !sat && open {
				ivs = append(ivs, temporal.Interval{Start: start, End: t - 1})
				open = false
			}
		}
		if open {
			ivs = append(ivs, temporal.Interval{Start: start, End: w.End})
		}
		rel.Add(vals, temporal.NewSet(ivs...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rel.Expand(q.Targets, c.Domains)
}

// refSatFormula decides satisfaction of f at tick t under en, literally per
// the §3.3 semantics, quantifying future states over the expiry window.
func (c *Context) refSatFormula(f ftl.Formula, en env, t temporal.Tick) (bool, error) {
	w := c.Window()
	switch n := f.(type) {
	case ftl.BoolLit:
		return n.V, nil
	case ftl.And:
		l, err := c.refSatFormula(n.L, en, t)
		if err != nil || !l {
			return false, err
		}
		return c.refSatFormula(n.R, en, t)
	case ftl.Or:
		l, err := c.refSatFormula(n.L, en, t)
		if err != nil || l {
			return l, err
		}
		return c.refSatFormula(n.R, en, t)
	case ftl.Implies:
		l, err := c.refSatFormula(n.L, en, t)
		if err != nil {
			return false, err
		}
		if !l {
			return true, nil
		}
		return c.refSatFormula(n.R, en, t)
	case ftl.Not:
		v, err := c.refSatFormula(n.F, en, t)
		return !v, err
	case ftl.Nexttime:
		if t+1 > w.End {
			return false, nil
		}
		return c.refSatFormula(n.F, en, t+1)
	case ftl.Until:
		limit := w.End
		if n.Within != nil {
			b, err := c.constTick(n.Within)
			if err != nil {
				return false, err
			}
			if t.Add(b) < limit {
				limit = t.Add(b)
			}
		}
		for wit := t; wit <= limit; wit++ {
			r, err := c.refSatFormula(n.R, en, wit)
			if err != nil {
				return false, err
			}
			if r {
				return true, nil
			}
			l, err := c.refSatFormula(n.L, en, wit)
			if err != nil {
				return false, err
			}
			if !l {
				return false, nil
			}
		}
		return false, nil
	case ftl.Eventually:
		from, to := t, w.End
		if n.Within != nil {
			b, err := c.constTick(n.Within)
			if err != nil {
				return false, err
			}
			if t.Add(b) < to {
				to = t.Add(b)
			}
		}
		if n.After != nil {
			b, err := c.constTick(n.After)
			if err != nil {
				return false, err
			}
			from = t.Add(b)
		}
		for wit := from; wit <= to; wit++ {
			ok, err := c.refSatFormula(n.F, en, wit)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case ftl.Always:
		to := w.End
		if n.For != nil {
			b, err := c.constTick(n.For)
			if err != nil {
				return false, err
			}
			to = t.Add(b)
			if to > w.End {
				return false, nil // the window cannot witness the full span
			}
		}
		for wit := t; wit <= to; wit++ {
			ok, err := c.refSatFormula(n.F, en, wit)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	case ftl.Assign:
		v, err := c.refTermAt(n.Term, en, t)
		if err != nil {
			return false, err
		}
		inner := env{}
		for k, val := range en {
			inner[k] = val
		}
		inner[n.Var] = v
		return c.refSatFormula(n.Body, inner, t)
	case ftl.Compare:
		l, err := c.refTermAt(n.L, en, t)
		if err != nil {
			return false, err
		}
		r, err := c.refTermAt(n.R, en, t)
		if err != nil {
			return false, err
		}
		return constCompare(n.Op, l, r)
	case ftl.Inside:
		return c.refInside(n.Obj, n.Region, en, t)
	case ftl.Outside:
		in, err := c.refInside(n.Obj, n.Region, en, t)
		return !in, err
	case ftl.WithinSphere:
		rad, err := c.refTermAt(n.Radius, en, t)
		if err != nil {
			return false, err
		}
		pts := make([]geom.Point, len(n.Objs))
		for i, oe := range n.Objs {
			pos, err := c.objPosition(oe, en)
			if err != nil {
				return false, err
			}
			pts[i] = pos.At(t)
		}
		return geom.WithinSphere(rad.Num, pts...), nil
	default:
		return false, errf("reference: unsupported formula %T", f)
	}
}

// refTermAt evaluates a term at a single tick.
func (c *Context) refTermAt(e ftl.Expr, en env, t temporal.Tick) (Val, error) {
	switch n := e.(type) {
	case ftl.Num:
		return NumVal(n.V), nil
	case ftl.StrLit:
		return StrVal(n.S), nil
	case ftl.BoolExpr:
		return BoolVal(n.V), nil
	case ftl.TimeRef:
		return NumVal(float64(t)), nil
	case ftl.Var:
		v, ok := c.lookupVar(en, n.Name)
		if !ok {
			return Val{}, errf("unbound variable %q", n.Name)
		}
		return v, nil
	case ftl.Neg:
		v, err := c.refTermAt(n.E, en, t)
		if err != nil {
			return Val{}, err
		}
		return NumVal(-v.Num), nil
	case ftl.Bin:
		l, err := c.refTermAt(n.L, en, t)
		if err != nil {
			return Val{}, err
		}
		r, err := c.refTermAt(n.R, en, t)
		if err != nil {
			return Val{}, err
		}
		switch n.Op {
		case "+":
			return NumVal(l.Num + r.Num), nil
		case "-":
			return NumVal(l.Num - r.Num), nil
		case "*":
			return NumVal(l.Num * r.Num), nil
		case "/":
			return NumVal(l.Num / r.Num), nil
		}
		return Val{}, errf("unknown operator %q", n.Op)
	case ftl.DistOf:
		pa, err := c.objPosition(n.A, en)
		if err != nil {
			return Val{}, err
		}
		pb, err := c.objPosition(n.B, en)
		if err != nil {
			return Val{}, err
		}
		return NumVal(geom.Dist(pa.At(t), pb.At(t))), nil
	case ftl.SpeedOf:
		tv, err := c.evalSpeed(n, en)
		if err != nil {
			return Val{}, err
		}
		return NumVal(tv.fn(float64(t))), nil
	case ftl.AttrRef:
		v, ok := n.Obj.(ftl.Var)
		if !ok {
			return Val{}, errf("attribute base must be a variable")
		}
		base, ok := c.lookupVar(en, v.Name)
		if !ok {
			return Val{}, errf("unbound variable %q", v.Name)
		}
		obj, err := c.object(base)
		if err != nil {
			return Val{}, err
		}
		full := strings.Join(n.Path, ".")
		if _, ok := obj.Class().Attr(full); ok {
			mv, err := obj.ValueAt(full, t)
			if err != nil {
				return Val{}, err
			}
			return FromMost(mv), nil
		}
		// Sub-attributes.
		tv, err := c.evalAttrRef(n, en)
		if err != nil {
			return Val{}, err
		}
		if tv.isConst {
			return tv.c, nil
		}
		return NumVal(tv.fn(float64(t))), nil
	case ftl.Call:
		tv, err := c.evalCall(n, en)
		if err != nil {
			return Val{}, err
		}
		return NumVal(tv.fn(float64(t))), nil
	default:
		return Val{}, errf("reference: unsupported term %T", e)
	}
}

// refInside decides INSIDE at one tick.
func (c *Context) refInside(obj, region ftl.Expr, en env, t temporal.Tick) (bool, error) {
	pg, err := c.resolveRegion(region)
	if err != nil {
		return false, err
	}
	pos, err := c.objPosition(obj, en)
	if err != nil {
		return false, err
	}
	return pg.Contains(pos.At(t)), nil
}

// IDsOf adapts a most.Database's class enumeration for BindDomains.
func IDsOf(db *most.Database) func(class string) []most.ObjectID {
	return func(class string) []most.ObjectID {
		objs := db.Objects(class)
		ids := make([]most.ObjectID, len(objs))
		for i, o := range objs {
			ids[i] = o.ID()
		}
		return ids
	}
}
