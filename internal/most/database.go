package most

import (
	"fmt"
	"sort"
	"sync"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// UpdateKind classifies explicit database updates.
type UpdateKind uint8

// Update kinds.
const (
	UpdateInsert UpdateKind = iota
	UpdateDelete
	UpdateStatic
	UpdateDynamic
)

// Update is one explicit modification of the database: the unit the history
// log records and the event continuous-query maintenance reacts to (§2.3:
// "a continuous query CQ has to be reevaluated when an update occurs that
// may change the set of tuples Answer(CQ)").
type Update struct {
	Tick   temporal.Tick
	Kind   UpdateKind
	Object ObjectID
	Attr   string // set for UpdateStatic/UpdateDynamic
	// Before/After capture the object revisions around the update; Before
	// is nil for inserts, After is nil for deletes.
	Before, After *Object
}

// Listener observes explicit updates, synchronously, in commit order.
type Listener func(Update)

// Database is a MOST database: a set of object classes and their current
// objects, a global discrete clock, and a log of explicit updates.  The
// paper's "database history" (§2.2) is implicit: the past is reconstructed
// from the log, and the future from the dynamic attributes' functions.
//
// The database is safe for concurrent use.  We assume instantaneous
// updates: valid-time equals transaction-time (§2.1).
type Database struct {
	mu        sync.RWMutex
	classes   map[string]*Class
	objects   map[ObjectID]*Object
	byClass   map[string][]ObjectID
	now       temporal.Tick
	log       []Update
	listeners []Listener
}

// NewDatabase returns an empty database with the clock at tick 0.
func NewDatabase() *Database {
	return &Database{
		classes: map[string]*Class{},
		objects: map[ObjectID]*Object{},
		byClass: map[string][]ObjectID{},
	}
}

// Now returns the current tick of the special "time" object.
func (db *Database) Now() temporal.Tick {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.now
}

// Tick advances the clock by one (its value "increases by one in each clock
// tick", §2) and returns the new time.
func (db *Database) Tick() temporal.Tick { return db.Advance(1) }

// Advance moves the clock forward by d ticks and returns the new time.
func (db *Database) Advance(d temporal.Tick) temporal.Tick {
	if d < 0 {
		panic("most: the clock cannot run backwards")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.now = db.now.Add(d)
	return db.now
}

// DefineClass registers an object class.
func (db *Database) DefineClass(c *Class) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.classes[c.Name()]; dup {
		return fmt.Errorf("most: class %s already defined", c.Name())
	}
	db.classes[c.Name()] = c
	return nil
}

// Class looks up a class by name.
func (db *Database) Class(name string) (*Class, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.classes[name]
	return c, ok
}

// Subscribe registers a listener for explicit updates.  Listeners run
// synchronously while the update lock is NOT held, in commit order.
func (db *Database) Subscribe(l Listener) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.listeners = append(db.listeners, l)
}

// Insert adds a new object.
func (db *Database) Insert(o *Object) error {
	db.mu.Lock()
	if _, dup := db.objects[o.id]; dup {
		db.mu.Unlock()
		return fmt.Errorf("most: object %s already exists", o.id)
	}
	if db.classes[o.class.Name()] != o.class {
		db.mu.Unlock()
		return fmt.Errorf("most: class %s of object %s is not defined in this database", o.class.Name(), o.id)
	}
	db.objects[o.id] = o
	db.byClass[o.class.Name()] = append(db.byClass[o.class.Name()], o.id)
	u := Update{Tick: db.now, Kind: UpdateInsert, Object: o.id, After: o}
	db.commitLocked(u)
	return nil
}

// Delete removes an object.
func (db *Database) Delete(id ObjectID) error {
	db.mu.Lock()
	o, ok := db.objects[id]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("most: object %s does not exist", id)
	}
	delete(db.objects, id)
	ids := db.byClass[o.class.Name()]
	for i, cand := range ids {
		if cand == id {
			db.byClass[o.class.Name()] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	u := Update{Tick: db.now, Kind: UpdateDelete, Object: id, Before: o}
	db.commitLocked(u)
	return nil
}

// commitLocked appends to the log and releases the lock before notifying.
func (db *Database) commitLocked(u Update) {
	db.log = append(db.log, u)
	ls := db.listeners
	db.mu.Unlock()
	for _, l := range ls {
		l(u)
	}
}

// Get returns the current revision of the object.
func (db *Database) Get(id ObjectID) (*Object, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	o, ok := db.objects[id]
	return o, ok
}

// Objects returns the current revisions of all objects of a class, in
// insertion order.  With class == "" it returns every object.
func (db *Database) Objects(class string) []*Object {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if class != "" {
		ids := db.byClass[class]
		out := make([]*Object, 0, len(ids))
		for _, id := range ids {
			out = append(out, db.objects[id])
		}
		return out
	}
	ids := make([]string, 0, len(db.objects))
	for id := range db.objects {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	out := make([]*Object, 0, len(ids))
	for _, id := range ids {
		out = append(out, db.objects[ObjectID(id)])
	}
	return out
}

// Count returns the number of live objects (all classes).
func (db *Database) Count() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.objects)
}

// SetStatic explicitly updates a static attribute at the current time.
func (db *Database) SetStatic(id ObjectID, attr string, v Value) error {
	db.mu.Lock()
	o, ok := db.objects[id]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("most: object %s does not exist", id)
	}
	next, err := o.WithStatic(attr, v)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	db.objects[id] = next
	u := Update{Tick: db.now, Kind: UpdateStatic, Object: id, Attr: attr, Before: o, After: next}
	db.commitLocked(u)
	return nil
}

// SetDynamic explicitly updates a dynamic attribute's sub-attributes at the
// current time ("an explicit update of a dynamic attribute may change its
// value sub-attribute, or its function sub-attribute, or both", §2.1).
func (db *Database) SetDynamic(id ObjectID, attr string, a motion.DynamicAttr) error {
	db.mu.Lock()
	o, ok := db.objects[id]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("most: object %s does not exist", id)
	}
	next, err := o.WithDynamic(attr, a)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	db.objects[id] = next
	u := Update{Tick: db.now, Kind: UpdateDynamic, Object: id, Attr: attr, Before: o, After: next}
	db.commitLocked(u)
	return nil
}

// UpdateFunction re-bases the dynamic attribute to its current value and
// installs a new function — the motion-vector update a vehicle's sensor
// issues "when it senses a change in speed or direction" (§1).
func (db *Database) UpdateFunction(id ObjectID, attr string, f motion.Func) error {
	db.mu.Lock()
	o, ok := db.objects[id]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("most: object %s does not exist", id)
	}
	cur, err := o.Dynamic(attr)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	next, err := o.WithDynamic(attr, cur.Updated(db.now, f))
	if err != nil {
		db.mu.Unlock()
		return err
	}
	db.objects[id] = next
	u := Update{Tick: db.now, Kind: UpdateDynamic, Object: id, Attr: attr, Before: o, After: next}
	db.commitLocked(u)
	return nil
}

// SetMotion updates a spatial object's motion vector at the current time,
// keeping its position continuous.
func (db *Database) SetMotion(id ObjectID, v geom.Vector) error {
	db.mu.Lock()
	o, ok := db.objects[id]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("most: object %s does not exist", id)
	}
	pos, err := o.Position()
	if err != nil {
		db.mu.Unlock()
		return err
	}
	next, err := o.WithPosition(pos.Retarget(db.now, v))
	if err != nil {
		db.mu.Unlock()
		return err
	}
	db.objects[id] = next
	u := Update{Tick: db.now, Kind: UpdateDynamic, Object: id, Attr: XPosition, Before: o, After: next}
	db.commitLocked(u)
	return nil
}

// Log returns a copy of the explicit-update log since the beginning of the
// database's life; persistent queries replay it (§2.3: "the evaluation of
// persistent queries requires saving of information about the way the
// database is updated over time").
func (db *Database) Log() []Update {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Update, len(db.log))
	copy(out, db.log)
	return out
}

// LogSince returns the log entries with Tick >= t.
func (db *Database) LogSince(t temporal.Tick) []Update {
	db.mu.RLock()
	defer db.mu.RUnlock()
	i := sort.Search(len(db.log), func(i int) bool { return db.log[i].Tick >= t })
	out := make([]Update, len(db.log)-i)
	copy(out, db.log[i:])
	return out
}
