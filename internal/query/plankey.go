package query

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
)

// planKey canonicalizes a continuous-query registration to the identity of
// the maintained plan it may share.  The key is the normalized formula
// shape with bound variables renamed positionally ($0, $1, ... in
// first-appearance order) and constants lifted out of the shape into a
// parameter vector (?0, ?1, ...), combined with everything else the
// materialized answer depends on: binding classes, target positions, the
// lifted parameter values, region geometry digests, the horizon, and the
// evaluator knobs that change answers' shape or the maintenance strategy.
//
// Two registrations with equal keys have identical Answer(CQ) at every
// instant, so they can ride one sharedPlan: one evaluation/patch per
// update, fanned out to all subscriber handles.  Options.Parallelism and
// Options.MotionIndex are deliberately excluded — both change how an
// answer is computed, never what it is.
func planKey(q *ftl.Query, opts Options) string {
	nq := ftl.NormalizeQuery(*q)
	w := &keyWriter{opts: opts, bound: map[string]string{}}
	for _, b := range nq.Bindings {
		w.b.WriteString("from ")
		w.b.WriteString(b.Class)
		w.b.WriteByte(' ')
		w.b.WriteString(w.bind(b.Var))
		w.b.WriteByte(';')
	}
	w.b.WriteString("retrieve ")
	for _, t := range nq.Targets {
		if p, ok := w.bound[t]; ok {
			w.b.WriteString(p)
		} else {
			w.b.WriteString(t)
		}
		w.b.WriteByte(',')
	}
	w.b.WriteString(";where ")
	w.formula(nq.Where)
	w.b.WriteString(";hz=")
	w.b.WriteString(strconv.FormatInt(int64(opts.horizon()), 10))
	w.b.WriteString(";mas=")
	w.b.WriteString(strconv.Itoa(opts.MaxAssignStates))
	w.b.WriteString(";bs=")
	w.b.WriteString(strconv.Itoa(opts.BisectSamples))
	if opts.DisableDelta {
		w.b.WriteString(";nodelta")
	}
	w.b.WriteString(";params=")
	for _, p := range w.params {
		w.b.WriteString(p)
		w.b.WriteByte('\x00')
	}
	return w.b.String()
}

type keyWriter struct {
	b      strings.Builder
	opts   Options
	bound  map[string]string // source variable -> positional name
	params []string          // lifted constants, in ?N order
}

// bind assigns (or returns) the positional name of a bound variable.
func (w *keyWriter) bind(name string) string {
	if p, ok := w.bound[name]; ok {
		return p
	}
	p := "$" + strconv.Itoa(len(w.bound))
	w.bound[name] = p
	return p
}

// param lifts one constant out of the shape, writing its positional
// placeholder and recording the value in the parameter vector.
func (w *keyWriter) param(v string) {
	w.b.WriteByte('?')
	w.b.WriteString(strconv.Itoa(len(w.params)))
	w.params = append(w.params, v)
}

func (w *keyWriter) formula(f ftl.Formula) {
	switch n := f.(type) {
	case ftl.And:
		w.b.WriteString("and(")
		w.formula(n.L)
		w.b.WriteByte(',')
		w.formula(n.R)
		w.b.WriteByte(')')
	case ftl.Or:
		w.b.WriteString("or(")
		w.formula(n.L)
		w.b.WriteByte(',')
		w.formula(n.R)
		w.b.WriteByte(')')
	case ftl.Not:
		w.b.WriteString("not(")
		w.formula(n.F)
		w.b.WriteByte(')')
	case ftl.Implies: // normalized away, kept for completeness
		w.b.WriteString("implies(")
		w.formula(n.L)
		w.b.WriteByte(',')
		w.formula(n.R)
		w.b.WriteByte(')')
	case ftl.Until:
		w.b.WriteString("until(")
		w.formula(n.L)
		w.b.WriteByte(',')
		w.formula(n.R)
		w.b.WriteByte(',')
		w.optExpr(n.Within)
		w.b.WriteByte(')')
	case ftl.Nexttime:
		w.b.WriteString("next(")
		w.formula(n.F)
		w.b.WriteByte(')')
	case ftl.Eventually:
		w.b.WriteString("ev(")
		w.formula(n.F)
		w.b.WriteByte(',')
		w.optExpr(n.Within)
		w.b.WriteByte(',')
		w.optExpr(n.After)
		w.b.WriteByte(')')
	case ftl.Always:
		w.b.WriteString("alw(")
		w.formula(n.F)
		w.b.WriteByte(',')
		w.optExpr(n.For)
		w.b.WriteByte(')')
	case ftl.Assign:
		w.b.WriteString("assign(")
		w.expr(n.Term)
		w.b.WriteByte(',')
		w.b.WriteString(w.bind(n.Var))
		w.b.WriteByte(',')
		w.formula(n.Body)
		w.b.WriteByte(')')
	case ftl.Compare:
		w.b.WriteString("cmp")
		w.b.WriteString(n.Op)
		w.b.WriteByte('(')
		w.expr(n.L)
		w.b.WriteByte(',')
		w.expr(n.R)
		w.b.WriteByte(')')
	case ftl.Inside:
		w.b.WriteString("inside(")
		w.expr(n.Obj)
		w.b.WriteByte(',')
		w.expr(n.Region)
		w.b.WriteByte(')')
	case ftl.Outside:
		w.b.WriteString("outside(")
		w.expr(n.Obj)
		w.b.WriteByte(',')
		w.expr(n.Region)
		w.b.WriteByte(')')
	case ftl.WithinSphere:
		w.b.WriteString("wsph(")
		w.expr(n.Radius)
		for _, o := range n.Objs {
			w.b.WriteByte(',')
			w.expr(o)
		}
		w.b.WriteByte(')')
	case ftl.BoolLit:
		w.b.WriteString(strconv.FormatBool(n.V))
	default:
		w.b.WriteString(f.String())
	}
}

func (w *keyWriter) optExpr(e ftl.Expr) {
	if e == nil {
		w.b.WriteByte('-')
		return
	}
	w.expr(e)
}

func (w *keyWriter) expr(e ftl.Expr) {
	switch n := e.(type) {
	case ftl.Var:
		if p, ok := w.bound[n.Name]; ok {
			w.b.WriteString(p)
			return
		}
		// Free variable: resolve against the registration environment, so
		// the key identifies what the query actually evaluates against —
		// two region names with identical geometry share, the same name
		// over different geometry does not.
		if pg, ok := w.opts.Regions[n.Name]; ok {
			w.b.WriteString("region:")
			w.b.WriteString(polyDigest(pg))
			return
		}
		if v, ok := w.opts.Params[n.Name]; ok {
			w.param("P" + v.String())
			return
		}
		w.b.WriteString("free:")
		w.b.WriteString(n.Name)
	case ftl.Num:
		w.param("N" + strconv.FormatFloat(n.V, 'g', -1, 64))
	case ftl.StrLit:
		w.param("S" + n.S)
	case ftl.BoolExpr:
		w.b.WriteString("bool:")
		w.b.WriteString(strconv.FormatBool(n.V))
	case ftl.AttrRef:
		w.b.WriteString("attr(")
		w.expr(n.Obj)
		w.b.WriteByte('.')
		w.b.WriteString(strings.Join(n.Path, "."))
		w.b.WriteByte(')')
	case ftl.Bin:
		w.b.WriteString("bin")
		w.b.WriteString(n.Op)
		w.b.WriteByte('(')
		w.expr(n.L)
		w.b.WriteByte(',')
		w.expr(n.R)
		w.b.WriteByte(')')
	case ftl.Neg:
		w.b.WriteString("neg(")
		w.expr(n.E)
		w.b.WriteByte(')')
	case ftl.DistOf:
		w.b.WriteString("dist(")
		w.expr(n.A)
		w.b.WriteByte(',')
		w.expr(n.B)
		w.b.WriteByte(')')
	case ftl.SpeedOf:
		w.b.WriteString("speed(")
		w.expr(n.Attr)
		w.b.WriteByte(')')
	case ftl.TimeRef:
		w.b.WriteString("time")
	case ftl.Call:
		w.b.WriteString("call:")
		w.b.WriteString(n.Name)
		w.b.WriteByte('(')
		for _, a := range n.Args {
			w.expr(a)
			w.b.WriteByte(',')
		}
		w.b.WriteByte(')')
	default:
		w.b.WriteString(e.String())
	}
}

// polyDigest hashes a polygon's vertex list; equal geometry digests equal.
func polyDigest(pg geom.Polygon) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range pg.Vertices() {
		for _, f := range [...]float64{v.X, v.Y, v.Z} {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			h.Write(buf[:])
		}
	}
	return strconv.FormatUint(h.Sum64(), 16)
}
