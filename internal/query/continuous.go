package query

import (
	"sync"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/temporal"
)

// Continuous is a registered continuous query: Answer(CQ) is materialized
// once at registration and maintained under explicit updates.  Between
// updates, presentation at each clock tick is a lookup, not a reevaluation
// — the paper's central efficiency claim for continuous queries ("our query
// processing algorithm facilitates a single evaluation of the query;
// reevaluation has to occur only if the motion vector of the car changes").
type Continuous struct {
	id     int
	engine *Engine
	query  *ftl.Query
	opts   Options

	mu        sync.Mutex
	answer    *eval.Relation
	err       error
	listeners []func(*eval.Relation)
	cancelled bool

	// version is the database version (update-log length) the materialized
	// answer reflects; installs are monotonic in it, so a slow evaluation
	// finishing late never overwrites a newer answer.  evaluating/pending
	// coalesce concurrent maintenance: one goroutine evaluates at a time and
	// re-runs once if updates arrived meanwhile, instead of queueing a full
	// reevaluation per update.
	version    uint64
	evaluating bool
	pending    bool

	// vars the query depends on: used to skip irrelevant updates.
	classes map[string]bool
}

// Continuous registers a continuous query, evaluating it once.
func (e *Engine) Continuous(q *ftl.Query, opts Options) (*Continuous, error) {
	cq := &Continuous{engine: e, query: q, opts: opts, classes: map[string]bool{}}
	for _, b := range q.Bindings {
		cq.classes[b.Class] = true
	}
	rel, err := cq.evaluate()
	if err != nil {
		return nil, err
	}
	cq.answer = rel
	e.mu.Lock()
	e.nextID++
	cq.id = e.nextID
	e.continuous[cq.id] = cq
	e.mu.Unlock()
	return cq, nil
}

// Answer returns the materialized Answer(CQ) relation.
func (cq *Continuous) Answer() (*eval.Relation, error) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if cq.cancelled {
		return nil, errUnregistered
	}
	return cq.answer, cq.err
}

// Current returns the instantiations presented at tick t: "the system
// presents to the user at each clock-tick t the instantiations of the
// tuples having an interval that contains t" (§3.5).
func (cq *Continuous) Current(t temporal.Tick) ([]Row, error) {
	rel, err := cq.Answer()
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, vals := range rel.At(t) {
		rows = append(rows, Row(vals))
	}
	return rows, nil
}

// Subscribe registers a listener invoked with the new Answer(CQ) after
// every maintenance reevaluation.  Coupled with an action this is a
// temporal trigger (§2.3).
func (cq *Continuous) Subscribe(fn func(*eval.Relation)) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	cq.listeners = append(cq.listeners, fn)
}

// Cancel unregisters the query ("until cancelled", §2.3).
func (cq *Continuous) Cancel() {
	cq.engine.mu.Lock()
	delete(cq.engine.continuous, cq.id)
	cq.engine.mu.Unlock()
	cq.mu.Lock()
	cq.cancelled = true
	cq.mu.Unlock()
}

// relevant reports whether an update may change Answer(CQ).  Updates to
// objects of classes the query does not range over cannot affect it.
func (cq *Continuous) relevant(u most.Update) bool {
	var class string
	switch {
	case u.After != nil:
		class = u.After.Class().Name()
	case u.Before != nil:
		class = u.Before.Class().Name()
	default:
		return true
	}
	return cq.classes[class]
}

// evaluate runs one full evaluation of the query under the continuous
// query's own root span and metrics.
func (cq *Continuous) evaluate() (*eval.Relation, error) {
	e := cq.engine
	reg := e.reg()
	reg.Counter("query.continuous").Inc()
	sp := reg.StartSpan("query.continuous")
	defer sp.End()
	t0 := reg.Start()
	defer reg.Histogram("query.continuous_ns").Since(t0)
	return e.evalRelation(cq.query, cq.opts, e.db.Now(), sp)
}

// reevaluate recomputes Answer(CQ) from the current state.  Concurrent
// calls coalesce: if an evaluation is already in flight it is marked
// pending and this call returns immediately; the in-flight evaluation then
// runs one more round, which covers every update that arrived while it was
// working.  Installs are version-stamped so a stale result never replaces
// a newer one.  With a single caller this reduces to exactly one
// evaluation per call, i.e. the sequential semantics.
func (cq *Continuous) reevaluate() {
	cq.mu.Lock()
	if cq.evaluating {
		cq.pending = true
		cq.mu.Unlock()
		return
	}
	cq.evaluating = true
	cq.mu.Unlock()
	for {
		// The version is read before the snapshot, so the evaluated state is
		// at least as new as v and the install guard stays conservative.
		v := cq.engine.db.Version()
		cq.engine.reg().Counter("query.continuous.reevals").Inc()
		rel, err := cq.evaluate()
		cq.mu.Lock()
		if cq.cancelled {
			cq.evaluating = false
			cq.pending = false
			cq.mu.Unlock()
			return
		}
		var ls []func(*eval.Relation)
		if v >= cq.version {
			cq.version = v
			cq.answer, cq.err = rel, err
			if err == nil {
				ls = append([]func(*eval.Relation){}, cq.listeners...)
			}
		}
		again := cq.pending
		cq.pending = false
		if !again {
			cq.evaluating = false
		}
		cq.mu.Unlock()
		for _, fn := range ls {
			fn(rel)
		}
		if !again {
			return
		}
	}
}
