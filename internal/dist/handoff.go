package dist

import (
	"sort"

	"github.com/mostdb/most/internal/faults"
	"github.com/mostdb/most/internal/temporal"
)

// This file models internal/cluster's version-fenced object handoff at the
// simulation level, over the same fault-injecting network the delivery and
// propagation models use.  The live cluster has two idempotence layers and
// both appear here with a faithful analog:
//
//   - the transport layer retries a transfer under one identity until it is
//     acknowledged or abandoned (live: the peer client's request ID and the
//     receiver's receipt replay; here: the Endpoint's transfer ID and its
//     dedup filter), and
//   - the handoff layer re-offers an abandoned transfer under a *fresh*
//     identity (live: the next rebalance barrier or the in-doubt retry loop
//     minting a new request; here: a new Send), where only the version
//     fence stands between a stale re-offer and a double apply.
//
// The receiver applies an offer only when its version beats the object's
// fence; anything at or below the fence is acknowledged — releasing the
// sender — without touching state.  The tests script ack-eating partitions
// and stale re-offers against this model to pin the edge cases the
// end-to-end chaos suite can only hit probabilistically: a duplicate
// acknowledgement must never double-apply, and a reordered (stale) offer
// must never regress the object's state.

// HandoffSpec is one scripted fenced transfer offer: at tick At the sender
// offers Object's state under Version.
type HandoffSpec struct {
	Object  string
	Version uint64
	State   int
	At      temporal.Tick
}

// OwnedState is what the receiver holds for one object.
type OwnedState struct {
	Version uint64
	State   int
}

// HandoffStats counts one handoff run.
type HandoffStats struct {
	Offered      int // scripted offers sent (re-offers not included)
	Applied      int // offers whose version beat the fence: state installed
	FenceRejects int // offers acknowledged without applying (version <= fence)
	DupFrames    int // retransmitted frames the transfer layer suppressed
	Retries      int // transport-level retransmissions
	Abandoned    int // transfers dropped after the transport retry cap
	ReOffers     int // abandoned transfers re-offered under a fresh identity
	Released     int // acknowledgements received by the sender
}

// RunHandoffs drives a scripted sequence of fenced transfers from one node
// to another until the network reaches tick until, and returns the
// receiver's final per-object state alongside the counters.  When reOffer
// is set, a transfer the transport abandons is immediately re-sent under a
// fresh transfer ID — the model of the cluster's next-barrier retry, which
// is exactly the path where the version fence (not transport dedup) must
// provide idempotence.
func RunHandoffs(net *faults.Network, from, to faults.NodeID, policy faults.RetryPolicy, script []HandoffSpec, reOffer bool, until temporal.Tick) (HandoffStats, map[string]OwnedState) {
	stats := HandoffStats{}
	state := map[string]OwnedState{}
	fence := map[string]uint64{}

	receiver := faults.NewEndpoint(net, to, policy)
	receiver.OnDeliver = func(_ faults.NodeID, _ uint64, payload any) {
		h, ok := payload.(HandoffSpec)
		if !ok {
			return
		}
		if h.Version <= fence[h.Object] {
			stats.FenceRejects++
			return
		}
		fence[h.Object] = h.Version
		state[h.Object] = OwnedState{Version: h.Version, State: h.State}
		stats.Applied++
	}

	sender := faults.NewEndpoint(net, from, policy)
	inflight := map[uint64]HandoffSpec{}
	var order []uint64 // send order; the endpoint abandons oldest-first
	sender.OnAcked = func(tid uint64) {
		if _, ok := inflight[tid]; ok {
			delete(inflight, tid)
			stats.Released++
		}
	}

	sorted := append([]HandoffSpec{}, script...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	next := 0
	offerDue := func(now temporal.Tick) {
		for next < len(sorted) && sorted[next].At <= now {
			h := sorted[next]
			next++
			tid := sender.Send(to, 64, h)
			inflight[tid] = h
			order = append(order, tid)
			stats.Offered++
		}
	}

	offerDue(net.Now())
	abandoned := 0
	for net.Now() < until {
		net.Step()
		offerDue(net.Now())
		sender.Tick()
		receiver.Tick()
		// The endpoint abandons exhausted transfers oldest-first; mirror
		// that scan to learn which offers died, and re-offer them under a
		// fresh transfer ID if asked.
		if a := sender.Stats().Abandoned; a > abandoned {
			dropped := a - abandoned
			abandoned = a
			live := order[:0]
			for _, tid := range order {
				h, pending := inflight[tid]
				if pending && dropped > 0 {
					dropped--
					delete(inflight, tid)
					if reOffer {
						nt := sender.Send(to, 64, h)
						inflight[nt] = h
						live = append(live, nt)
						stats.ReOffers++
					}
					continue
				}
				if pending {
					live = append(live, tid)
				}
			}
			order = live
		}
	}

	ss := sender.Stats()
	stats.Retries = ss.Retries
	stats.Abandoned = ss.Abandoned
	stats.DupFrames = receiver.Stats().DupsSeen
	return stats, state
}
