package dist

import (
	"sort"

	"github.com/mostdb/most/internal/faults"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/temporal"
)

// This file puts the §5.2 answer delivery and the §5.3 update propagation on
// top of the reliable transfer layer of internal/faults: acknowledged
// at-least-once transmission with retransmission and idempotent receipt,
// driven over the same deterministic fault schedule the legacy
// connectivity-function paths see (faults.Network.Connected is exactly the
// predicate Send applies).  That makes "legacy vs reliable under identical
// faults" a well-posed comparison — experiment E13 runs it.

// ReliableDeliveryStats extends DeliveryStats with the retransmission
// traffic the reliable layer spent.
type ReliableDeliveryStats struct {
	DeliveryStats
	Retries    int // frame retransmissions
	RetryBytes int // bytes spent on retransmissions alone
	Abandoned  int // transfers dropped after the retry cap
	Duplicates int // duplicate frames the receiver suppressed
}

// answerBatch is the frame payload of one answer transmission: the indices
// (into the begin-sorted answer set) it carries.
type answerBatch struct {
	idx []int
}

// ReliableDeliverAnswer transmits Answer(CQ) to the moving client over the
// fault-injecting network using acknowledged, retransmitted transfers.  The
// transmission schedule mirrors DeliverAnswer: Immediate sends everything at
// from (in begin-sorted blocks of memoryB when memoryB > 0), Delayed sends
// each tuple at its begin time.  A tuple counts as displayed when its first
// delivery happens no later than min(to, interval end); duplicates are
// suppressed by the transfer layer, so the client displays each tuple once.
//
// The network clock must be at or before from; the call drives the network
// to tick to.
func (s *Sim) ReliableDeliverAnswer(net *faults.Network, server, client faults.NodeID, policy faults.RetryPolicy, answers []eval.Answer, mode DeliveryMode, memoryB int, from, to temporal.Tick) ReliableDeliveryStats {
	stats := ReliableDeliveryStats{}
	sorted := append([]eval.Answer{}, answers...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Interval.Start != sorted[j].Interval.Start {
			return sorted[i].Interval.Start < sorted[j].Interval.Start
		}
		return sorted[i].Interval.End < sorted[j].Interval.End
	})

	// Build the transmission schedule.
	var batches []*answerSchedule
	clamp := func(t temporal.Tick) temporal.Tick {
		if t < from {
			return from
		}
		return t
	}
	switch {
	case mode == Immediate && memoryB <= 0:
		all := make([]int, len(sorted))
		for i := range sorted {
			all[i] = i
		}
		if len(all) > 0 {
			batches = append(batches, &answerSchedule{sendAt: from, idx: all})
		}
	case mode == Immediate:
		for start := 0; start < len(sorted); start += memoryB {
			end := min(start+memoryB, len(sorted))
			sendAt := from
			if start > 0 {
				sendAt = clamp(sorted[start].Interval.Start)
			}
			idx := make([]int, 0, end-start)
			for i := start; i < end; i++ {
				idx = append(idx, i)
			}
			batches = append(batches, &answerSchedule{sendAt: sendAt, idx: idx})
		}
	default: // Delayed
		for i, a := range sorted {
			batches = append(batches, &answerSchedule{sendAt: clamp(a.Interval.Start), idx: []int{i}})
		}
	}

	const never = temporal.Tick(-1)
	deliveredAt := make([]temporal.Tick, len(sorted))
	for i := range deliveredAt {
		deliveredAt[i] = never
	}

	srv := faults.NewEndpoint(net, server, policy)
	cli := faults.NewEndpoint(net, client, policy)
	var activeEnds []temporal.Tick
	cli.OnDeliver = func(_ faults.NodeID, _ uint64, payload any) {
		b, ok := payload.(answerBatch)
		if !ok {
			return
		}
		now := net.Now()
		for _, i := range b.idx {
			if deliveredAt[i] == never {
				deliveredAt[i] = now
			}
		}
		// Track the client's tuple memory: delivered tuples are held while
		// their display interval is open.
		kept := activeEnds[:0]
		for _, e := range activeEnds {
			if e >= now {
				kept = append(kept, e)
			}
		}
		activeEnds = kept
		for _, i := range b.idx {
			activeEnds = append(activeEnds, sorted[i].Interval.End)
		}
		if len(activeEnds) > stats.PeakMemory {
			stats.PeakMemory = len(activeEnds)
		}
	}

	before := net.Stats()
	sendDue := func(now temporal.Tick) {
		for _, b := range batches {
			if !b.sent && b.sendAt <= now {
				b.sent = true
				srv.Send(client, len(b.idx)*s.Cost.TupleBytes, answerBatch{idx: b.idx})
			}
		}
	}
	for net.Now() < from {
		net.Step()
	}
	sendDue(net.Now())
	for net.Now() < to {
		net.Step()
		sendDue(net.Now())
		srv.Tick()
		cli.Tick()
	}

	after := net.Stats()
	stats.Messages = after.Sent - before.Sent
	stats.Bytes = after.Bytes - before.Bytes
	ss := srv.Stats()
	stats.Retries = ss.Retries
	stats.RetryBytes = ss.RetryBytes
	stats.Abandoned = ss.Abandoned
	stats.Duplicates = cli.Stats().DupsSeen
	s.obsv.retried(stats.Retries)
	for i, a := range sorted {
		if a.Interval.End < from || a.Interval.Start > to {
			continue // display window outside the simulation
		}
		if deliveredAt[i] == never || deliveredAt[i] > min(to, a.Interval.End) {
			stats.MissedDisplays++
		} else if !net.Connected(server, client, sendTickOf(batches, i)) {
			// The first transmission would have been dropped — exactly the
			// case where the legacy path misses the display — but a
			// retransmission delivered the tuple in time.
			stats.RecoveredDisplays++
		}
	}
	return stats
}

// answerSchedule is one scheduled answer transmission.
type answerSchedule struct {
	sendAt temporal.Tick
	idx    []int
	sent   bool
}

// sendTickOf returns the scheduled first-transmission tick of tuple i.
func sendTickOf(batches []*answerSchedule, i int) temporal.Tick {
	for _, b := range batches {
		for _, j := range b.idx {
			if j == i {
				return b.sendAt
			}
		}
	}
	return 0
}

// MotionUpdate is one explicit motion-vector update (§2.3) issued by a
// moving object: at Tick the object's motion vector became Vector.  Version
// is the object's per-object update sequence number; the server installs an
// update only if its version exceeds the last installed one, which makes
// receipt idempotent under duplication and reordering.
type MotionUpdate struct {
	Object  most.ObjectID
	Version int
	Tick    temporal.Tick
	Vector  geom.Vector
}

// PropagationStats reports one update-propagation run.
type PropagationStats struct {
	Offered    int // updates the objects attempted to send
	Installed  int // updates the server installed
	Lost       int // updates that never reached the server
	Superseded int // deliveries skipped because a newer version was installed
	Duplicates int // duplicate frames suppressed (reliable path only)
	Retries    int // retransmissions (reliable path only)
}

// PropagateUpdates replays a trace of motion-vector updates from their
// source nodes to the server over the fault-injecting network, either
// unacknowledged (each update transmitted once, as §5.3's baseline) or
// through the reliable transfer layer.  install is invoked for every update
// the server accepts, in installation order; the version-stamp filter has
// already been applied.  The network is driven until tick until.
func PropagateUpdates(net *faults.Network, server faults.NodeID, updates []MotionUpdate, reliable bool, policy faults.RetryPolicy, bytes int, until temporal.Tick, install func(MotionUpdate)) PropagationStats {
	stats := PropagationStats{Offered: len(updates)}
	installed := map[most.ObjectID]int{}
	accept := func(u MotionUpdate) {
		if u.Version <= installed[u.Object] {
			stats.Superseded++
			return
		}
		installed[u.Object] = u.Version
		stats.Installed++
		if install != nil {
			install(u)
		}
	}

	sorted := append([]MotionUpdate{}, updates...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Tick < sorted[j].Tick })

	var endpoints map[most.ObjectID]*faults.Endpoint
	if reliable {
		se := faults.NewEndpoint(net, server, policy)
		se.OnDeliver = func(_ faults.NodeID, _ uint64, payload any) {
			if u, ok := payload.(MotionUpdate); ok {
				accept(u)
			}
		}
		endpoints = map[most.ObjectID]*faults.Endpoint{}
		for _, u := range sorted {
			if _, ok := endpoints[u.Object]; !ok {
				endpoints[u.Object] = faults.NewEndpoint(net, faults.NodeID(u.Object), policy)
			}
		}
	} else {
		net.Attach(server, func(m faults.Message) {
			if u, ok := m.Payload.(MotionUpdate); ok {
				accept(u)
			}
		})
	}

	next := 0
	sendDue := func(now temporal.Tick) {
		for next < len(sorted) && sorted[next].Tick <= now {
			u := sorted[next]
			next++
			if reliable {
				endpoints[u.Object].Send(server, bytes, u)
			} else {
				net.Send(faults.NodeID(u.Object), server, bytes, u)
			}
		}
	}
	sendDue(net.Now())
	for net.Now() < until {
		net.Step()
		sendDue(net.Now())
		for _, id := range sortedObjectIDs(endpoints) {
			endpoints[id].Tick()
		}
	}

	if reliable {
		for _, id := range sortedObjectIDs(endpoints) {
			stats.Retries += endpoints[id].Stats().Retries
			stats.Duplicates += endpoints[id].Stats().DupsSeen
		}
	}
	stats.Lost = stats.Offered - stats.Installed - stats.Superseded
	return stats
}

// sortedObjectIDs returns the endpoint keys in deterministic order.
func sortedObjectIDs(m map[most.ObjectID]*faults.Endpoint) []most.ObjectID {
	ids := make([]most.ObjectID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AnnotatedAnswer pairs one answer tuple with its staleness marking.
type AnnotatedAnswer struct {
	Answer eval.Answer
	// Uncertain is set when any object the tuple references has a motion
	// vector older than the staleness bound — its predicted positions, and
	// hence the tuple's satisfaction interval, may no longer hold (§5.2:
	// disconnection means "an object cannot continuously update its
	// position").
	Uncertain bool
	// Stale lists the referenced objects whose vectors breached the bound.
	Stale []most.ObjectID
}

// AnnotateStaleness implements graceful degradation for answers computed
// from possibly-outdated motion vectors: every tuple referencing an object
// whose POSITION update time is more than bound ticks before now is marked
// uncertain rather than silently presented as exact.  Objects missing from
// the database (e.g. deleted) also mark the tuple.  It returns the
// annotated tuples and the number marked uncertain.
func AnnotateStaleness(db *most.Database, answers []eval.Answer, now, bound temporal.Tick) ([]AnnotatedAnswer, int) {
	out := make([]AnnotatedAnswer, 0, len(answers))
	marked := 0
	for _, a := range answers {
		aa := AnnotatedAnswer{Answer: a}
		for _, v := range a.Vals {
			if v.Kind != eval.ValObj {
				continue
			}
			o, ok := db.Get(v.Obj)
			if !ok {
				aa.Stale = append(aa.Stale, v.Obj)
				continue
			}
			pos, err := o.Position()
			if err != nil {
				continue // non-spatial objects have no motion vector
			}
			if now > pos.X.UpdateTime.Add(bound) {
				aa.Stale = append(aa.Stale, v.Obj)
			}
		}
		aa.Uncertain = len(aa.Stale) > 0
		if aa.Uncertain {
			marked++
		}
		out = append(out, aa)
	}
	return out, marked
}
