package wire

import (
	"encoding/json"
	"sort"
	"strconv"
	"strings"

	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/temporal"
)

// This file defines the typed frame payloads and the conversions between
// wire values and the evaluator's eval.Val.  Each payload has two
// encodings selected by the frame's protocol version: version 1 is JSON
// (zero-dependency, unknown fields tolerated), version 2 is the compact
// binary grammar of binary.go.  Both round-trip every value exactly
// (float64 via IEEE-754 bits in v2 and strconv's shortest round-trippable
// form in v1, ticks as int64), which is what lets the loopback oracle
// demand bit-identical answers at either version.

// HelloReq introduces a client.  ClientID keys the server's idempotence
// cache: a request retried on a new connection under the same ClientID and
// request ID is not applied twice (the PR-2 reliable-delivery semantics on
// a real socket).  Empty disables retry deduplication.
//
// MaxVersion is the highest protocol version the client speaks; 0 (the
// field absent — every pre-v2 client) means 1.  Hello frames themselves
// are always version 1, so negotiation works against any peer.
//
// Epoch stamps the client's session generation: a self-healing client
// increments it on every reconnect attempt, so the server can tell a
// resumed client from a new one and fence a zombie predecessor session
// carrying a lower epoch.  0 (the field absent — every pre-resume client)
// opts out of epoch tracking entirely.
// Peer marks the connection as cluster-internal (another node's router or
// handoff client).  Peer sessions may carry bulk frames (object state
// transfers) larger than the client-facing payload cap, so the server
// raises the decoder bound for them (Config.PeerMaxPayload) after the
// handshake; ordinary connections keep the hostile-input limit.
type HelloReq struct {
	ClientID   string `json:"client_id,omitempty"`
	MaxVersion int    `json:"max_version,omitempty"`
	Epoch      uint64 `json:"epoch,omitempty"`
	Peer       bool   `json:"peer,omitempty"`
}

// HelloResp reports the server identity and the negotiated session
// protocol version: min(HelloReq.MaxVersion, server's maximum).  Every
// frame after this response carries exactly this version.
//
// Resumed is true when the server recognized the ClientID from an earlier,
// lower-epoch session: the client's idempotence cache is still bound, and
// re-registered subscriptions should reconcile rather than assume a fresh
// server.
type HelloResp struct {
	Server  string `json:"server"`
	Version int    `json:"version"`
	Resumed bool   `json:"resumed,omitempty"`
}

// QueryReq is an instantaneous FTL query.  Horizon <= 0 selects the
// server's default.  DeadlineMS, when positive, is the caller's remaining
// per-attempt budget in milliseconds: the server refuses (ErrorResp code
// "deadline_exceeded") work whose budget expired while it queued for
// admission, instead of computing an answer nobody is waiting for.
type QueryReq struct {
	Src        string        `json:"src"`
	Horizon    temporal.Tick `json:"horizon,omitempty"`
	DeadlineMS int64         `json:"deadline_ms,omitempty"`
}

// QueryResp carries the instantiations satisfied at evaluation time.
type QueryResp struct {
	Now  temporal.Tick `json:"now"`
	Rows [][]Value     `json:"rows,omitempty"`
}

// Update op kinds for UpdateOp.Op.
const (
	OpSetMotion = "set_motion"
	OpSetStatic = "set_static"
	OpInsert    = "insert"
	OpDelete    = "delete"
)

// UpdateOp is one explicit update in a batch.
type UpdateOp struct {
	Op string `json:"op"`
	ID string `json:"id"`
	// set_motion
	VX float64 `json:"vx,omitempty"`
	VY float64 `json:"vy,omitempty"`
	// set_static
	Attr  string `json:"attr,omitempty"`
	Value *Value `json:"value,omitempty"`
	// insert: an object in the snapshot encoding (most.EncodeObjectJSON)
	Object json.RawMessage `json:"object,omitempty"`
}

// UpdateBatchReq applies explicit updates in order.  Application stops at
// the first failing op; the response reports how many were applied.
// DeadlineMS is the per-attempt budget, as on QueryReq.
type UpdateBatchReq struct {
	Ops        []UpdateOp `json:"ops"`
	DeadlineMS int64      `json:"deadline_ms,omitempty"`
}

// UpdateBatchResp acknowledges a batch.
type UpdateBatchResp struct {
	Applied int           `json:"applied"`
	Now     temporal.Tick `json:"now"`
	Version uint64        `json:"version"`
}

// AdvanceReq moves the clock forward by D ticks.
type AdvanceReq struct {
	D temporal.Tick `json:"d"`
}

// AdvanceResp reports the clock after the advance.
type AdvanceResp struct {
	Now temporal.Tick `json:"now"`
}

// ObjectsReq lists objects; Class == "" lists every object.
type ObjectsReq struct {
	Class string `json:"class,omitempty"`
}

// ObjectInfo is one object row with its position at the server's current
// tick (X/Y meaningless when HasPos is false, e.g. non-spatial classes).
type ObjectInfo struct {
	ID     string  `json:"id"`
	Class  string  `json:"class"`
	HasPos bool    `json:"has_pos"`
	X      float64 `json:"x,omitempty"`
	Y      float64 `json:"y,omitempty"`
}

// ObjectsResp carries the object listing.
type ObjectsResp struct {
	Now     temporal.Tick `json:"now"`
	Objects []ObjectInfo  `json:"objects,omitempty"`
}

// SnapshotResp carries a database snapshot (most.SnapshotJSON encoding).
type SnapshotResp struct {
	Data json.RawMessage `json:"data"`
}

// SnapshotLoadReq replaces the server's database with the snapshot.  Every
// active subscription (all sessions) is closed with an OpSubClosed push.
type SnapshotLoadReq struct {
	Data json.RawMessage `json:"data"`
}

// SnapshotLoadResp acknowledges the swap.
type SnapshotLoadResp struct {
	Now     temporal.Tick `json:"now"`
	Objects int           `json:"objects"`
}

// SubscribeReq registers a continuous query on the session's connection.
type SubscribeReq struct {
	Src     string        `json:"src"`
	Horizon temporal.Tick `json:"horizon,omitempty"`
}

// SubscribeResp acknowledges a subscription with the initial materialized
// Answer(CQ).
type SubscribeResp struct {
	SubID  uint64        `json:"sub_id"`
	Now    temporal.Tick `json:"now"`
	Answer []AnswerRow   `json:"answer,omitempty"`
}

// UnsubscribeReq cancels a subscription.
type UnsubscribeReq struct {
	SubID uint64 `json:"sub_id"`
}

// Notify is the server push after a maintenance round: the full new
// Answer(CQ).  Seq increases by one per maintenance round on the server;
// gaps mean rounds were coalesced while the connection was backed up (the
// latest answer always supersedes skipped ones).
type Notify struct {
	SubID  uint64      `json:"sub_id"`
	Seq    uint64      `json:"seq"`
	Answer []AnswerRow `json:"answer,omitempty"`
}

// SubClosed is the server push ending a subscription (database replaced,
// server drain, or query error); no further notifies follow.
type SubClosed struct {
	SubID  uint64 `json:"sub_id"`
	Reason string `json:"reason,omitempty"`
}

// Machine-readable error codes for ErrorResp.Code.  Plain request failures
// (bad query, unknown object) carry no code.
const (
	// CodeOverloaded marks a request shed by admission control; the
	// request was NOT executed and a retry after backoff is safe and
	// expected (the one server error clients retry).
	CodeOverloaded = "overloaded"
	// CodeDeadlineExceeded marks a request whose DeadlineMS budget ran
	// out before execution started; it was not executed, but the caller's
	// own deadline has passed so a blind retry is pointless.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeStaleEpoch rejects a Hello carrying an epoch lower than one the
	// server has already seen for that ClientID: a newer session of the
	// same client has connected, and this one is a zombie.
	CodeStaleEpoch = "stale_epoch"
	// CodeWrongZone rejects an update addressed to an object this node
	// does not own.  The request was NOT executed; ErrorResp.Addr names
	// the owning node when known, and the caller should redirect there.
	CodeWrongZone = "wrong_zone"
)

// ErrorResp reports a failed request.  Code, when set, is one of the Code*
// constants and tells programs how to react; Msg is for humans.  Addr
// accompanies CodeWrongZone: the address of the node believed to own the
// rejected object ("" when unknown — the caller should refresh the zone
// map and retry by position).
type ErrorResp struct {
	Msg  string `json:"msg"`
	Code string `json:"code,omitempty"`
	Addr string `json:"addr,omitempty"`
	// Redirects accompanies a CodeWrongZone refusal of a mixed batch:
	// element i names the node that owns the batch's op i ("" when the
	// refusing node owns it, or when the owner is unknown).  It lets a
	// router regroup a stale batch in one step instead of probing
	// ownership op by op.
	Redirects []string `json:"redirects,omitempty"`
}

// ---- cluster payloads (PROTOCOL.md §7) ----

// Zone is one rectangular region of the partitioned plane and the address
// of the node that owns the moving objects inside it.
type Zone struct {
	ID   int     `json:"id"`
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
	Addr string  `json:"addr"`
}

// ZoneMapResp answers OpZoneMap (the request carries no payload): the full
// cluster topology.  Epoch increases whenever the map changes (zone split,
// node replacement) so routers can detect a stale cache.  Replicated lists
// the object classes present on every node (small shared datasets — POIs,
// bus fleets — that joins may reference); updates to those classes are
// broadcast rather than routed.
type ZoneMapResp struct {
	Epoch      uint64   `json:"epoch"`
	Zones      []Zone   `json:"zones"`
	Replicated []string `json:"replicated,omitempty"`
}

// HandoffReq transfers ownership of one moving object between nodes when
// its trajectory crosses a zone boundary.  Object is the full motion
// record in the snapshot encoding (most.EncodeObjectJSON), which is all
// the state a deterministic CQ engine needs to rebuild the object's
// in-flight continuous-query contributions on the receiver.
//
// Version is the transfer fence: the receiver remembers the highest
// version accepted per object ID and acknowledges-without-applying any
// transfer at or below it, so retried and reordered handoffs (crash
// during handoff, duplicate delivery) apply exactly once.
type HandoffReq struct {
	ID      string          `json:"id"`
	Version uint64          `json:"version"`
	From    string          `json:"from,omitempty"`
	Object  json.RawMessage `json:"object"`
}

// HandoffResp acknowledges a transfer.  Accepted is false when the version
// fence already covered this transfer (a duplicate); either way the sender
// may release the object — the receiver durably owns it.
type HandoffResp struct {
	Accepted bool          `json:"accepted"`
	Now      temporal.Tick `json:"now"`
}

// ForwardReq relays an update batch to the owning node on behalf of the
// origin client.  The receiving node executes it exactly as if the client
// had sent UpdateBatch directly: idempotence is keyed on (Origin, ReqID),
// so a batch that raced a zone crossing — rejected here, retried there —
// still applies at most once cluster-wide.  The response is a plain
// UpdateBatchResp (or ErrorResp).
type ForwardReq struct {
	Origin string     `json:"origin"`
	ReqID  uint64     `json:"req_id"`
	Ops    []UpdateOp `json:"ops"`
}

// ---- values ----

// Value is the wire form of eval.Val.
type Value struct {
	Kind uint8   `json:"k"`
	Obj  string  `json:"o,omitempty"`
	Num  float64 `json:"n,omitempty"`
	Str  string  `json:"s,omitempty"`
	Bool bool    `json:"b,omitempty"`
}

// FromVal converts an evaluator value.
func FromVal(v eval.Val) Value {
	return Value{Kind: uint8(v.Kind), Obj: string(v.Obj), Num: v.Num, Str: v.Str, Bool: v.Bool}
}

// Val converts back to an evaluator value.
func (v Value) Val() eval.Val {
	return eval.Val{Kind: eval.ValKind(v.Kind), Obj: most.ObjectID(v.Obj), Num: v.Num, Str: v.Str, Bool: v.Bool}
}

// String renders the value exactly as eval.Val does.
func (v Value) String() string { return v.Val().String() }

// FromRows converts presented rows.
func FromRows(rows [][]eval.Val) [][]Value {
	out := make([][]Value, len(rows))
	for i, r := range rows {
		vals := make([]Value, len(r))
		for j, v := range r {
			vals[j] = FromVal(v)
		}
		out[i] = vals
	}
	return out
}

// AnswerRow is one (instantiation, maximal interval) answer tuple.
type AnswerRow struct {
	Vals  []Value       `json:"vals"`
	Start temporal.Tick `json:"start"`
	End   temporal.Tick `json:"end"`
}

// FromRelation flattens a materialized relation into answer rows in the
// relation's canonical order (sorted by instantiation, then interval).
func FromRelation(rel *eval.Relation) []AnswerRow {
	return AppendRelation(nil, rel)
}

// AppendRelation is FromRelation into a caller-owned scratch slice: rows
// are appended to dst (pass dst[:0] to reuse its capacity, including the
// per-row Vals backing arrays), so a notification pump that converts one
// relation per maintenance round stops allocating in steady state.
func AppendRelation(dst []AnswerRow, rel *eval.Relation) []AnswerRow {
	if rel == nil {
		return dst
	}
	for _, a := range rel.Answers() {
		var vals []Value
		if n := len(dst); n < cap(dst) {
			// Reuse the retired row slot's Vals array when rewriting in place.
			vals = dst[:cap(dst)][n].Vals[:0]
		}
		for _, v := range a.Vals {
			vals = append(vals, FromVal(v))
		}
		dst = append(dst, AnswerRow{Vals: vals, Start: a.Interval.Start, End: a.Interval.End})
	}
	return dst
}

// RowsAt presents the answer rows whose interval contains t — the client
// side of §3.5's per-tick presentation: between notifies, presentation is
// a local lookup, no round trip.
func RowsAt(answer []AnswerRow, t temporal.Tick) [][]Value {
	var out [][]Value
	for _, a := range answer {
		if a.Start <= t && t <= a.End {
			out = append(out, a.Vals)
		}
	}
	return out
}

// CanonicalAnswers renders answer rows as a sorted, uniquely delimited
// multiset string, the comparison key the loopback oracle uses to demand
// bit-identical answers across the wire.
func CanonicalAnswers(answer []AnswerRow) string {
	keys := make([]string, len(answer))
	for i, a := range answer {
		var b strings.Builder
		for _, v := range a.Vals {
			b.WriteString(v.String())
			b.WriteByte(0)
		}
		b.WriteString(strconv.FormatInt(int64(a.Start), 10))
		b.WriteByte('-')
		b.WriteString(strconv.FormatInt(int64(a.End), 10))
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}
