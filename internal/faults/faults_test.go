package faults

import (
	"testing"

	"github.com/mostdb/most/internal/temporal"
)

// collect attaches a recording handler and returns the received messages.
func collect(n *Network, id NodeID) *[]Message {
	var got []Message
	n.Attach(id, func(m Message) { got = append(got, m) })
	return &got
}

func TestPerfectNetworkDelivers(t *testing.T) {
	n := New(Config{Seed: 1})
	got := collect(n, "b")
	n.Send("a", "b", 10, "hello")
	n.Step()
	if len(*got) != 1 || (*got)[0].Payload != "hello" {
		t.Fatalf("got %v", *got)
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 || st.Bytes != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]uint64, Stats) {
		n := New(Config{Seed: 42, DropRate: 0.3, DelayMin: 1, DelayMax: 4, DupRate: 0.1})
		var got []uint64
		n.Attach("b", func(m Message) { got = append(got, m.ID) })
		for i := 0; i < 50; i++ {
			n.Send("a", "b", 8, i)
			n.Step()
		}
		for i := 0; i < 10; i++ {
			n.Step()
		}
		return got, n.Stats()
	}
	g1, s1 := run()
	g2, s2 := run()
	if len(g1) != len(g2) || s1 != s2 {
		t.Fatalf("runs differ: %d/%d messages, %+v vs %+v", len(g1), len(g2), s1, s2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("delivery order differs at %d: %d vs %d", i, g1[i], g2[i])
		}
	}
}

func TestDropRateLosesRoughlyThatFraction(t *testing.T) {
	n := New(Config{Seed: 7, DropRate: 0.3})
	got := collect(n, "b")
	const N = 2000
	for i := 0; i < N; i++ {
		n.Send("a", "b", 1, i)
		n.Step()
	}
	n.Step()
	lost := N - len(*got)
	if lost < N/5 || lost > N/2 {
		t.Fatalf("lost %d of %d at p=0.3", lost, N)
	}
}

func TestConnectedMatchesSendOutcome(t *testing.T) {
	n := New(Config{Seed: 9, DropRate: 0.4})
	got := collect(n, "b")
	delivered := map[uint64]bool{}
	n.Attach("b", func(m Message) { delivered[m.ID] = true })
	_ = got
	type sent struct {
		id uint64
		ok bool
	}
	var sends []sent
	for i := 0; i < 200; i++ {
		pred := n.Connected("a", "b", n.Now())
		id, ok := n.Send("a", "b", 1, i)
		if ok != pred {
			t.Fatalf("tick %d: Connected=%v but Send accepted=%v", i, pred, ok)
		}
		sends = append(sends, sent{id, ok})
		n.Step()
	}
	n.Step()
	for _, s := range sends {
		if s.ok != delivered[s.id] {
			t.Fatalf("message %d: accepted=%v delivered=%v", s.id, s.ok, delivered[s.id])
		}
	}
}

func TestPartitionBlocksCrossTraffic(t *testing.T) {
	n := New(Config{Seed: 1})
	gotB := collect(n, "b")
	gotC := collect(n, "c")
	n.AddPartition(Partition{Start: 5, End: 10, GroupA: []NodeID{"a", "c"}})
	for i := 0; i < 15; i++ {
		now := n.Now()
		_, okB := n.Send("a", "b", 1, i) // cross-cut during [5,10)
		_, okC := n.Send("a", "c", 1, i) // same side, always fine
		inPart := now >= 5 && now < 10
		if okB == inPart || !okC {
			t.Fatalf("tick %d: cross=%v same=%v", now, okB, okC)
		}
		n.Step()
	}
	n.Step()
	if len(*gotB) != 10 || len(*gotC) != 15 {
		t.Fatalf("b got %d (want 10), c got %d (want 15)", len(*gotB), len(*gotC))
	}
}

func TestCrashDropsTrafficAndHeals(t *testing.T) {
	n := New(Config{Seed: 1})
	got := collect(n, "b")
	n.AddCrash(Crash{Node: "b", Down: 3, Up: 6})
	for i := 0; i < 10; i++ {
		n.Send("a", "b", 1, int(n.Now()))
		n.Step()
	}
	n.Step()
	// Sends at ticks 3,4,5 are refused (node down) and the tick-2 send is
	// lost in flight (due at 3, inside the crash); 6 survive.
	if len(*got) != 6 {
		t.Fatalf("delivered %d, want 6", len(*got))
	}
	for _, m := range *got {
		at := m.Payload.(int)
		if at >= 2 && at < 6 {
			t.Fatalf("message sent at tick %d should be lost", at)
		}
	}
	if !n.Crashed("b", 4) || n.Crashed("b", 6) {
		t.Fatal("Crashed window wrong")
	}
}

// A crashed sender cannot transmit either.
func TestCrashedSenderSilent(t *testing.T) {
	n := New(Config{Seed: 1})
	got := collect(n, "b")
	n.AddCrash(Crash{Node: "a", Down: 0, Up: 5})
	if _, ok := n.Send("a", "b", 1, "x"); ok {
		t.Fatal("crashed sender accepted")
	}
	n.Step()
	if len(*got) != 0 {
		t.Fatal("message from crashed sender delivered")
	}
}

// A message in flight when its destination crashes at the delivery tick is
// lost.
func TestCrashAtDeliveryTickLosesInflight(t *testing.T) {
	n := New(Config{Seed: 1, DelayMin: 3, DelayMax: 3})
	got := collect(n, "b")
	n.AddCrash(Crash{Node: "b", Down: 2, Up: 8})
	n.Send("a", "b", 1, "x") // sent at 0, due at 3 — inside the crash
	for i := 0; i < 10; i++ {
		n.Step()
	}
	if len(*got) != 0 {
		t.Fatal("message delivered to crashed node")
	}
}

func TestDelaySpreadReorders(t *testing.T) {
	n := New(Config{Seed: 3, DelayMin: 1, DelayMax: 8})
	var got []int
	n.Attach("b", func(m Message) { got = append(got, m.Payload.(int)) })
	for i := 0; i < 40; i++ {
		n.Send("a", "b", 1, i)
		n.Step()
	}
	for i := 0; i < 10; i++ {
		n.Step()
	}
	if len(got) != 40 {
		t.Fatalf("delivered %d", len(got))
	}
	inOrder := true
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("randomized delays should reorder some messages")
	}
}

func TestDuplication(t *testing.T) {
	n := New(Config{Seed: 5, DupRate: 0.5})
	got := collect(n, "b")
	const N = 200
	for i := 0; i < N; i++ {
		n.Send("a", "b", 1, i)
		n.Step()
	}
	n.Step()
	st := n.Stats()
	if st.Duplicated == 0 {
		t.Fatal("no duplicates injected at DupRate=0.5")
	}
	if len(*got) != N+st.Duplicated {
		t.Fatalf("delivered %d, want %d originals + %d dups", len(*got), N, st.Duplicated)
	}
}

func TestRunDrivesUntilTick(t *testing.T) {
	n := New(Config{Seed: 1})
	var ticks []temporal.Tick
	n.Run(5, func(now temporal.Tick) { ticks = append(ticks, now) })
	if n.Now() != 5 || len(ticks) != 5 || ticks[0] != 1 || ticks[4] != 5 {
		t.Fatalf("now=%d ticks=%v", n.Now(), ticks)
	}
}

func TestOutageIsPureFunction(t *testing.T) {
	n := New(Config{Seed: 11, DropRate: 0.5})
	for tt := temporal.Tick(0); tt < 100; tt++ {
		if n.Connected("a", "b", tt) != n.Connected("a", "b", tt) {
			t.Fatal("Connected not stable")
		}
	}
	// Different nodes see independent outages: they should disagree somewhere.
	same := true
	for tt := temporal.Tick(0); tt < 100; tt++ {
		if n.Connected("x", "b", tt) != n.Connected("x", "c", tt) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("outage should depend on the destination node")
	}
}
