package most

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// This file provides a JSON snapshot of a database's current state: the
// clock, the classes, and every object with its static values and dynamic
// sub-attribute triples (A.value, A.updatetime, A.function — the function
// serialized in motion.ParseFunc syntax).  A snapshot captures the current
// state, not the update log: a database restored from a snapshot can answer
// instantaneous and continuous queries identically, while persistent
// queries anchor to post-restore history.

type snapshotDTO struct {
	Now     temporal.Tick `json:"now"`
	Classes []classDTO    `json:"classes"`
	Objects []objectDTO   `json:"objects"`
}

type classDTO struct {
	Name    string    `json:"name"`
	Spatial bool      `json:"spatial"`
	Attrs   []attrDTO `json:"attrs,omitempty"`
}

type attrDTO struct {
	Name    string `json:"name"`
	Dynamic bool   `json:"dynamic"`
}

type objectDTO struct {
	ID       string              `json:"id"`
	Class    string              `json:"class"`
	Statics  map[string]valueDTO `json:"statics,omitempty"`
	Dynamics map[string]dynDTO   `json:"dynamics,omitempty"`
}

type valueDTO struct {
	Kind string   `json:"kind"`
	F    *float64 `json:"f,omitempty"`
	S    *string  `json:"s,omitempty"`
	B    *bool    `json:"b,omitempty"`
}

type dynDTO struct {
	Value      float64       `json:"value"`
	UpdateTime temporal.Tick `json:"updatetime"`
	Function   string        `json:"function"`
}

// SnapshotJSON serializes the database's current state.  Like History, it
// quiesces commits while copying so the serialized state is consistent.
func (db *Database) SnapshotJSON() ([]byte, error) {
	db.lockAllRead()
	defer db.unlockAllRead()
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	return json.MarshalIndent(db.snapshotDTOLocked(), "", "  ")
}

// snapshotDTOLocked builds the snapshot DTO.  Callers must hold the full
// read lock (lockAllRead) plus metaMu; see SnapshotJSON and Checkpoint.
func (db *Database) snapshotDTOLocked() snapshotDTO {
	dto := snapshotDTO{Now: db.now}

	objects := map[ObjectID]*Object{}
	for i := range db.shards {
		for id, o := range db.shards[i].objects {
			objects[id] = o
		}
	}

	classNames := make([]string, 0, len(db.classes))
	for name := range db.classes {
		classNames = append(classNames, name)
	}
	sort.Strings(classNames)
	for _, name := range classNames {
		dto.Classes = append(dto.Classes, encodeClass(db.classes[name]))
	}

	ids := make([]string, 0, len(objects))
	for id := range objects {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		dto.Objects = append(dto.Objects, encodeObject(objects[ObjectID(id)]))
	}
	return dto
}

// encodeClass renders a class as its DTO (implicit POSITION attributes
// elided).
func encodeClass(c *Class) classDTO {
	cd := classDTO{Name: c.name, Spatial: c.spatial}
	for _, a := range c.attrs {
		if c.spatial && (a.Name == XPosition || a.Name == YPosition || a.Name == ZPosition) {
			continue // implicit
		}
		cd.Attrs = append(cd.Attrs, attrDTO{Name: a.Name, Dynamic: a.Kind == Dynamic})
	}
	return cd
}

// decodeClass rebuilds a class from its DTO.
func decodeClass(cd classDTO) (*Class, error) {
	attrs := make([]AttrDef, 0, len(cd.Attrs))
	for _, a := range cd.Attrs {
		kind := Static
		if a.Dynamic {
			kind = Dynamic
		}
		attrs = append(attrs, AttrDef{Name: a.Name, Kind: kind})
	}
	return NewClass(cd.Name, cd.Spatial, attrs...)
}

// encodeObject renders one object revision as its DTO.
func encodeObject(o *Object) objectDTO {
	od := objectDTO{ID: string(o.id), Class: o.class.name}
	if len(o.statics) > 0 {
		od.Statics = map[string]valueDTO{}
		for k, v := range o.statics {
			od.Statics[k] = encodeValue(v)
		}
	}
	if len(o.dynamics) > 0 {
		od.Dynamics = map[string]dynDTO{}
		for k, d := range o.dynamics {
			od.Dynamics[k] = dynDTO{
				Value:      d.Value,
				UpdateTime: d.UpdateTime,
				Function:   d.Function.String(),
			}
		}
	}
	return od
}

// decodeObject rebuilds an object revision from its DTO, resolving the
// class by name in db.
func decodeObject(db *Database, od objectDTO) (*Object, error) {
	cls, ok := db.Class(od.Class)
	if !ok {
		return nil, fmt.Errorf("most: object %s references unknown class %s", od.ID, od.Class)
	}
	o, err := NewObject(ObjectID(od.ID), cls)
	if err != nil {
		return nil, err
	}
	for k, vd := range od.Statics {
		v, err := decodeValue(vd)
		if err != nil {
			return nil, fmt.Errorf("most: object %s attribute %s: %w", od.ID, k, err)
		}
		if o, err = o.WithStatic(k, v); err != nil {
			return nil, err
		}
	}
	for k, dd := range od.Dynamics {
		f, err := motion.ParseFunc(dd.Function)
		if err != nil {
			return nil, fmt.Errorf("most: object %s attribute %s: %w", od.ID, k, err)
		}
		attr := motion.DynamicAttr{Value: dd.Value, UpdateTime: dd.UpdateTime, Function: f}
		if o, err = o.WithDynamic(k, attr); err != nil {
			return nil, err
		}
	}
	return o, nil
}

func encodeValue(v Value) valueDTO {
	switch v.Kind {
	case KindFloat:
		f := v.F
		return valueDTO{Kind: "float", F: &f}
	case KindString:
		s := v.S
		return valueDTO{Kind: "string", S: &s}
	case KindBool:
		b := v.B
		return valueDTO{Kind: "bool", B: &b}
	default:
		return valueDTO{Kind: "null"}
	}
}

func decodeValue(d valueDTO) (Value, error) {
	switch d.Kind {
	case "float":
		if d.F == nil {
			return Value{}, fmt.Errorf("most: float value missing payload")
		}
		return Float(*d.F), nil
	case "string":
		if d.S == nil {
			return Value{}, fmt.Errorf("most: string value missing payload")
		}
		return Str(*d.S), nil
	case "bool":
		if d.B == nil {
			return Value{}, fmt.Errorf("most: bool value missing payload")
		}
		return Bool(*d.B), nil
	case "null":
		return Null(), nil
	default:
		return Value{}, fmt.Errorf("most: unknown value kind %q", d.Kind)
	}
}

// EncodeObjectJSON serializes one object revision in the snapshot's object
// encoding; the network layer ships inserts this way.
func EncodeObjectJSON(o *Object) ([]byte, error) {
	return json.Marshal(encodeObject(o))
}

// DecodeObjectJSON rebuilds an object from EncodeObjectJSON output,
// resolving its class in db.
func DecodeObjectJSON(db *Database, data []byte) (*Object, error) {
	var od objectDTO
	if err := json.Unmarshal(data, &od); err != nil {
		return nil, fmt.Errorf("most: bad object encoding: %w", err)
	}
	return decodeObject(db, od)
}

// LoadSnapshotJSON rebuilds a database from a snapshot.  The restored
// database starts a fresh history: its log begins with the snapshot's
// objects inserted at the snapshot clock.
func LoadSnapshotJSON(data []byte) (*Database, error) {
	var dto snapshotDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("most: bad snapshot: %w", err)
	}
	db := NewDatabase()
	db.Advance(dto.Now)
	for _, cd := range dto.Classes {
		c, err := decodeClass(cd)
		if err != nil {
			return nil, err
		}
		if err := db.DefineClass(c); err != nil {
			return nil, err
		}
	}
	for _, od := range dto.Objects {
		o, err := decodeObject(db, od)
		if err != nil {
			return nil, err
		}
		if err := db.Insert(o); err != nil {
			return nil, err
		}
	}
	return db, nil
}
