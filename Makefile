# Development gates.  `make check` is the tier-1 verification the CI and
# every PR must keep green; `make race` runs the concurrency regression
# tests under the race detector.

GO ?= go

.PHONY: check fmt vet build test race bench parallel delta faults chaos chaosbench fuzzwal fuzzftl fuzzwire cover obs server benchcmp city cityquick citycheck racequery cluster clusterquick

# Checked-in coverage floor for `make cover`: total statement coverage under
# the race detector must not fall below this.
COVER_FLOOR := 78.0

check: fmt vet build test citycheck racequery cityquick cluster clusterquick

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Sequential-vs-parallel evaluation sweep; writes BENCH_parallel.json.
parallel:
	$(GO) run ./cmd/mostbench -parallel

# Delta-maintenance vs full-reevaluation sweep; writes BENCH_delta.json.
delta:
	$(GO) run ./cmd/mostbench -delta

# Fault-tolerance sweep (loss x partition x crashes; legacy vs reliable
# delivery, staleness marking, WAL recovery); writes BENCH_faults.json.
faults:
	$(GO) run ./cmd/mostbench -faults -quick

# End-to-end chaos suite, always under the race detector: scripted
# kill/restart, partition and churn scenarios against a live durable
# server, asserting recovered state bit-identical to a differential
# oracle and gap-free notification streams across every fault.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/

# Live chaos benchmark: recovery-time and failover-latency percentiles,
# written under the "chaos" key of BENCH_faults.json.
chaosbench:
	$(GO) run ./cmd/mostbench -chaos

# Fuzz the WAL replay path: corrupted/truncated logs must fail safe with a
# partial-recovery report, never a panic.
fuzzwal:
	$(GO) test ./internal/most -run='^$$' -fuzz=FuzzWALReplay -fuzztime=10s

# Fuzz the FTL parse-then-evaluate pipeline: accepted inputs must evaluate
# without panics, keep satisfaction sets normalized and windowed, survive
# the Normalize rewrite unchanged, and partition the window against NOT f.
fuzzftl:
	$(GO) test ./internal/ftl/eval -run='^$$' -fuzz=FuzzFTLEval -fuzztime=10s

# Fuzz the wire-frame decoder: hostile bytes must never panic, never
# over-allocate past the payload bound, and accepted frames must round-trip.
fuzzwire:
	$(GO) test ./internal/wire -run='^$$' -fuzz=FuzzWireDecode -fuzztime=10s

# Network-service throughput sweep (concurrent pipelining clients over
# loopback TCP); writes BENCH_server.json.
server:
	$(GO) run ./cmd/mostbench -server -quick

# Full protocol comparison: runs the network-service sweep at both wire
# protocol versions (v1 JSON and v2 binary) across all connection counts
# and batch sizes, and writes the side-by-side v2/v1 deltas (speedup, p99)
# into BENCH_server.json under "deltas".
benchcmp:
	$(GO) run ./cmd/mostbench -server

# Race-mode coverage with a checked-in floor: fails if total statement
# coverage drops below COVER_FLOOR.
cover:
	$(GO) test -race -short -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v got="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { exit !(got+0 >= floor+0) }' || \
		{ echo "FAIL: coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Observability-overhead benchmark; writes BENCH_obs.json.
obs:
	$(GO) run ./cmd/mostbench -obs

# City-scale application benchmark (E14): a seeded road-network city served
# over loopback TCP — ≥100k objects, ≥1k continuous-query subscribers,
# concurrent updaters and queriers; writes the SLO report to BENCH_city.json.
# Takes a few minutes; use `make cityquick` while iterating.
city:
	$(GO) run ./cmd/mostbench -city

# CI-sized city run: same pipeline, small city, seconds not minutes.
# Gated against the checked-in throughput baseline: the run fails if
# sustained updates/sec drops below 75% of BENCH_city_baseline.json.
# `make cityquick GATE=` skips the gate on noisy machines.
GATE ?= -gate BENCH_city_baseline.json
cityquick:
	$(GO) run ./cmd/mostbench -city -quick $(GATE)

# Cluster gates, always under the race detector: the 3-node loopback
# differential oracle (cluster answer streams bit-identical to a single
# node over the city replay) plus the cluster chaos scenario (node
# kill/restart and partitions injected mid-handoff, exactly-once checked
# against the single-node oracle).
cluster:
	$(GO) test -race -count=1 ./internal/cluster/
	$(GO) test -race -count=1 -run 'TestClusterChaos' ./internal/chaos/

# CI-sized cluster benchmark: the same seeded city replayed against one
# node and a 3-node cluster; writes BENCH_cluster.json.  Gated against
# the checked-in baseline: fails if aggregate cluster updates/sec drops
# below 75% of BENCH_cluster_baseline.json or below the single-node
# phase (partitioning must pay for itself).  `make clusterquick CGATE=`
# skips the gate on noisy machines.
CGATE ?= -gate BENCH_cluster_baseline.json
clusterquick:
	$(GO) run ./cmd/mostbench -cluster -quick $(CGATE)

# Short-mode city differential correctness (one seed): the fast gate the
# city benchmark rides on.  The full two-seed suite and the loopback city
# oracle already run inside `make test`; this target is the quick repro.
citycheck:
	$(GO) test -short -count=1 -run 'TestCityCorrectnessOracle|TestCityDeterminism' ./internal/city/

# Race-detector pass over the shared-plan registration/cancel/drain races:
# the cheap always-on slice of `make race` that guards continuous-query
# subscription lifecycle.
racequery:
	$(GO) test -race -count=1 -run 'TestSubscribeCancelRace|TestSubscribeAfterCancel|TestRegistrationWindow' ./internal/query/
