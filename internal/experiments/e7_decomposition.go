package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/mostdb/most/internal/mostsql"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/relstore"
	"github.com/mostdb/most/internal/temporal"
)

// sqlFleet builds a MOST-on-DBMS system with n vehicles carrying k dynamic
// attributes D0..D{k-1} and one static price column.
func sqlFleet(n, k int, seed int64) (*mostsql.System, *temporal.Tick) {
	now := temporal.Tick(0)
	sys := mostsql.New(relstore.NewStore(), func() temporal.Tick { return now })
	dyn := make([]string, k)
	for i := range dyn {
		dyn[i] = fmt.Sprintf("D%d", i)
	}
	if _, err := sys.CreateTable("vehicles", "id", []string{"price"}, dyn); err != nil {
		panic(err)
	}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		attrs := map[string]motion.DynamicAttr{}
		for _, a := range dyn {
			attrs[a] = motion.DynamicAttr{
				Value:    r.Float64()*200 - 100,
				Function: motion.Linear(r.Float64()*4 - 2),
			}
		}
		err := sys.Insert("vehicles", relstore.Str(fmt.Sprintf("v%06d", i)),
			map[string]relstore.Value{"price": relstore.Num(float64(r.Intn(300)))},
			attrs)
		if err != nil {
			panic(err)
		}
	}
	return sys, &now
}

// E7Decomposition validates §5.1: a WHERE clause with k atoms referring to
// dynamic attributes is evaluated by submitting up to 2^k dynamic-free
// queries to the underlying DBMS.
func E7Decomposition(quick bool) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "MOST on a DBMS: queries submitted for k dynamic atoms (§5.1)",
		Claim:   "the decomposition F = (F' AND p) OR (F'' AND NOT p), applied recursively, issues exactly 2^k underlying queries",
		Columns: []string{"dynamic atoms k", "DBMS queries", "2^k", "rows returned", "time"},
	}
	maxK := 6
	n := 2000
	reps := 3
	if quick {
		maxK = 4
		n = 500
		reps = 1
	}
	for k := 1; k <= maxK; k++ {
		sys, now := sqlFleet(n, k, 7)
		*now = 10
		var conj []string
		for i := 0; i < k; i++ {
			conj = append(conj, fmt.Sprintf("D%d >= %d", i, -80+10*i))
		}
		sql := "SELECT id FROM vehicles WHERE " + strings.Join(conj, " AND ")
		var rows int
		sys.ResetCounters()
		rs, err := sys.Query(sql)
		if err != nil {
			panic(err)
		}
		rows = len(rs.Rows)
		issued := sys.QueriesIssued()
		d := timeIt(reps, func() {
			if _, err := sys.Query(sql); err != nil {
				panic(err)
			}
		})
		t.AddRow(itoa(k), itoa(issued), itoa(1<<k), itoa(rows), ns(d))
		if issued != 1<<k {
			panic(fmt.Sprintf("E7: issued %d queries for k=%d", issued, k))
		}
	}
	t.Notes = append(t.Notes, `"if k is small this may not be a serious problem" — the table shows the exponential growth that motivates indexing (E8)`)
	return t
}
