// Air traffic control: the paper's §1 motivating query Q — "retrieve all
// the airplanes that will come within 30 miles of the airport in the next
// 10 minutes" — over a simulated airspace, plus a tentative-answer
// demonstration: after an aircraft's motion vector is updated to steer it
// away, the same query no longer returns it.
package main

import (
	"fmt"
	"log"

	mostdb "github.com/mostdb/most"
)

func main() {
	airport := mostdb.Point{X: 0, Y: 0}
	db, err := mostdb.Airspace(mostdb.AirspaceSpec{
		N:       60,
		Radius:  60, // inbound at 5 mi/min reach the 30-mile ring in 6 min
		Airport: airport,
		Speed:   5,
		Inbound: 0.3,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Represent the airport as a stationary object so DIST can refer to it.
	towers, err := mostdb.NewClass("Towers", true)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.DefineClass(towers); err != nil {
		log.Fatal(err)
	}
	tower, _ := mostdb.NewObject("ORD", towers)
	tower, _ = tower.WithPosition(mostdb.PositionAt(airport, 0))
	if err := db.Insert(tower); err != nil {
		log.Fatal(err)
	}

	engine := mostdb.NewEngine(db)
	q := mostdb.MustParseQuery(`
		RETRIEVE a, t FROM Aircraft a, Towers t
		WHERE EVENTUALLY WITHIN 10 DIST(a, t) <= 30`)
	opts := mostdb.QueryOptions{Horizon: 60}

	rows, err := engine.Instantaneous(q, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aircraft arriving within 30 miles of %s in the next 10 minutes: %d\n", "ORD", len(rows))
	for i, r := range rows {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(rows)-5)
			break
		}
		fmt.Printf("  %s\n", r[0])
	}
	if len(rows) == 0 {
		log.Fatal("airspace misconfigured: no inbound aircraft")
	}

	// The answer is tentative (§1): divert the first aircraft and re-ask.
	diverted := mostdb.ObjectID(rows[0][0].String())
	if err := db.SetMotion(diverted, mostdb.Vector{X: 5}); err != nil {
		log.Fatal(err)
	}
	rows2, err := engine.Instantaneous(q, opts)
	if err != nil {
		log.Fatal(err)
	}
	still := false
	for _, r := range rows2 {
		if r[0].String() == string(diverted) {
			still = true
		}
	}
	fmt.Printf("after diverting %s: %d arrivals; diverted aircraft still listed: %v\n",
		diverted, len(rows2), still)

	// A relationship query: aircraft pairs in dangerous proximity (within
	// a 5-mile sphere for 2 consecutive minutes).
	conflict := mostdb.MustParseQuery(`
		RETRIEVE a, b FROM Aircraft a, Aircraft b
		WHERE ALWAYS FOR 2 WITHIN_SPHERE(2.5, a, b)`)
	rel, err := engine.InstantaneousRelation(conflict, mostdb.QueryOptions{Horizon: 20})
	if err != nil {
		log.Fatal(err)
	}
	pairs := 0
	for _, ans := range rel.Answers() {
		if ans.Vals[0].String() < ans.Vals[1].String() { // each unordered pair once
			pairs++
			if pairs <= 3 {
				fmt.Printf("conflict: %s and %s during %s\n", ans.Vals[0], ans.Vals[1], ans.Interval)
			}
		}
	}
	fmt.Printf("predicted proximity conflicts in the next 20 minutes: %d pair windows\n", pairs)
}
