package temporal

import "sort"

// This file is the literal transcription of the appendix's Until algorithm:
// maximal chains over the interval sets I1 (for f) and I2 (for h) of a pair
// of joining tuples.  The production evaluator uses the equivalent
// closed-form Until in operators.go; UntilChains is kept because it is the
// algorithm as published, and the test suite proves the two agree.

// Chain is a sequence of intervals [l1 u1],[m1 n1],...,[lk uk],[mk nk]
// alternating between I1 and I2 such that each interval is compatible with
// its successor (appendix).  FromI1 records whether the first link comes
// from I1; the paper's chains always do, but an h-interval with no
// compatible preceding f-run still satisfies "f Until h" on its own (h at
// the current state satisfies the formula), so we admit degenerate chains
// that start directly in I2.
type Chain struct {
	Links  []Interval
	FromI1 bool
}

// Interval returns interval(s) = [l1 nk]: the formula f Until h is
// satisfied throughout it.
func (c Chain) Interval() Interval {
	return Interval{Start: c.Links[0].Start, End: c.Links[len(c.Links)-1].End}
}

// MaximalChains computes all maximal chains over the normalized sets f (I1)
// and h (I2) by "sorting the sets individually and running a modified merge
// algorithm" (appendix).  Because both sets are normalized (disjoint and
// non-consecutive), each interval has at most one compatible successor in
// the other set, so chains are unique paths and maximal chains are the
// paths that start at an interval with no predecessor.
func MaximalChains(f, h Set) []Chain {
	i1 := f.Intervals()
	i2 := h.Intervals()

	// succ1[i] is the index in i2 compatible with i1[i], or -1.
	succ1 := make([]int, len(i1))
	hasPred2 := make([]bool, len(i2))
	for i, iv := range i1 {
		succ1[i] = compatibleSuccessor(iv, i2)
		if succ1[i] >= 0 {
			hasPred2[succ1[i]] = true
		}
	}
	succ2 := make([]int, len(i2))
	hasPred1 := make([]bool, len(i1))
	for j, iv := range i2 {
		succ2[j] = compatibleSuccessor(iv, i1)
		if succ2[j] >= 0 {
			hasPred1[succ2[j]] = true
		}
	}

	var chains []Chain
	// Paper chains: start at an I1 interval with no I2 predecessor, but only
	// if the chain reaches at least one I2 interval (a chain must end with
	// [mk nk] for the formula to be witnessed).
	for i := range i1 {
		if hasPred1[i] {
			continue
		}
		c := Chain{FromI1: true}
		ci, inI1 := i, true
		for {
			if inI1 {
				c.Links = append(c.Links, i1[ci])
				if succ1[ci] < 0 {
					break
				}
				ci, inI1 = succ1[ci], false
			} else {
				c.Links = append(c.Links, i2[ci])
				if succ2[ci] < 0 {
					break
				}
				ci, inI1 = succ2[ci], true
			}
		}
		// Trim a trailing I1 link: satisfaction requires a future h-witness.
		if len(c.Links)%2 == 1 {
			c.Links = c.Links[:len(c.Links)-1]
		}
		if len(c.Links) > 0 {
			chains = append(chains, c)
		}
	}
	// Degenerate chains: I2 intervals with no compatible I1 predecessor.
	for j := range i2 {
		if hasPred2[j] {
			continue
		}
		c := Chain{Links: []Interval{i2[j]}}
		ci := j
		for succ2[ci] >= 0 {
			ni := succ2[ci]
			c.Links = append(c.Links, i1[ni])
			if succ1[ni] < 0 {
				c.Links = c.Links[:len(c.Links)-1]
				break
			}
			ci = succ1[ni]
			c.Links = append(c.Links, i2[ci])
		}
		chains = append(chains, c)
	}
	return chains
}

// compatibleSuccessor returns the index of the unique interval in sorted
// that iv is compatible with, or -1.  Compatibility of [a b] with [c d]
// requires c <= b+1 and d >= b.
func compatibleSuccessor(iv Interval, sorted []Interval) int {
	// The candidate is the first interval ending at or after iv.End.
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i].End >= iv.End })
	if i < len(sorted) && iv.Compatible(sorted[i]) {
		return i
	}
	return -1
}

// UntilChains evaluates "f Until h" by the appendix's pairwise scheme: for
// every pair of a tuple interval in I1 and one in I2 it emits the satisfied
// span, and normalization coalesces overlapping spans into the maximal-chain
// intervals.  Its cost is proportional to |I1| x |I2| in the worst case —
// exactly the bound the appendix states ("in the worst case, this algorithm
// may run in time proportional to the product of the sizes of R1 and R2").
//
// Note on fidelity: the appendix requires full compatibility (m <= u+1 AND
// n >= u) for every link, but for the *final* link of a chain only the start
// condition m <= u+1 is semantically required (the witness need not outlast
// the f-run).  We emit [l, n] for every such start-compatible pair; interior
// links still coalesce through normalization, so the union equals the
// maximal-chain union with that repair applied.  Tests prove equivalence
// with Until and with a brute-force per-tick evaluator.
func UntilChains(f, h Set, w Interval) Set {
	fw, hw := f.Clip(w), h.Clip(w)
	var out []Interval
	// An h-interval alone satisfies f Until h at every tick it covers.
	out = append(out, hw.Intervals()...)
	for _, fr := range fw.Intervals() {
		for _, hv := range hw.Intervals() {
			if hv.Start >= fr.Start && hv.Start <= fr.End.Add(1) {
				out = append(out, Interval{Start: fr.Start, End: hv.End})
			}
		}
	}
	return NewSet(out...)
}
