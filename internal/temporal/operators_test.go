package temporal

import (
	"math/rand"
	"testing"
)

// bruteUntil evaluates "f Until h" at tick t by the definitional semantics
// (paper §3.3): h holds at t, or some future t' <= bound has h and f holds
// at every state in [t, t'-1].  The witness search is limited to the window.
func bruteUntil(f, h Set, t Tick, c Tick, w Interval) bool {
	for wit := t; wit <= w.End; wit++ {
		if wit-t > c {
			break
		}
		if h.Contains(wit) {
			return true
		}
		if !f.Contains(wit) {
			return false
		}
	}
	return false
}

func TestUntilExamples(t *testing.T) {
	w := Interval{0, 100}
	tests := []struct {
		name string
		f, h Set
		want string
	}{
		{"h alone", NewSet(), NewSet(Interval{3, 5}), "[3 5]"},
		{"backward through f-run", NewSet(Interval{0, 5}), NewSet(Interval{3, 4}), "[0 4]"},
		{"chain across runs", NewSet(Interval{0, 5}, Interval{8, 10}), NewSet(Interval{4, 9}, Interval{12, 13}), "[0 9] [12 13]"},
		{"gap blocks", NewSet(Interval{0, 2}), NewSet(Interval{5, 6}), "[5 6]"},
		{"consecutive f then h", NewSet(Interval{0, 4}), NewSet(Interval{5, 6}), "[0 6]"},
		{"empty h", NewSet(Interval{0, 9}), NewSet(), "{}"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Until(tt.f, tt.h, w).String(); got != tt.want {
				t.Errorf("Until = %s, want %s", got, tt.want)
			}
			if got := UntilChains(tt.f, tt.h, w).String(); got != tt.want {
				t.Errorf("UntilChains = %s, want %s", got, tt.want)
			}
		})
	}
}

func TestUntilAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	w := Interval{-10, 70}
	for i := 0; i < 500; i++ {
		f, h := randomSet(r), randomSet(r)
		got := Until(f, h, w)
		chains := UntilChains(f, h, w)
		if !got.Equal(chains) {
			t.Fatalf("case %d: Until=%s UntilChains=%s (f=%s h=%s)", i, got, chains, f, h)
		}
		for tick := w.Start; tick <= w.End; tick++ {
			want := bruteUntil(f, h, tick, MaxTick, w)
			if got.Contains(tick) != want {
				t.Fatalf("case %d tick %d: Until=%v want %v (f=%s h=%s got=%s)",
					i, tick, got.Contains(tick), want, f, h, got)
			}
		}
	}
}

func TestUntilWithinAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	w := Interval{-10, 70}
	for i := 0; i < 400; i++ {
		f, h := randomSet(r), randomSet(r)
		c := Tick(r.Intn(15))
		got := UntilWithin(f, h, c, w)
		for tick := w.Start; tick <= w.End; tick++ {
			want := bruteUntil(f, h, tick, c, w)
			if got.Contains(tick) != want {
				t.Fatalf("case %d c=%d tick %d: got %v want %v (f=%s h=%s res=%s)",
					i, c, tick, got.Contains(tick), want, f, h, got)
			}
		}
	}
}

func TestEventuallyAndAlways(t *testing.T) {
	w := Interval{0, 20}
	f := NewSet(Interval{5, 8}, Interval{15, 20})

	if got := Eventually(f, w).String(); got != "[0 8] [0 20]" && got != "[0 20]" {
		// Normalization folds [0 8] into [0 20].
		t.Errorf("Eventually = %s", got)
	}
	if got := Eventually(f, w); !got.Equal(NewSet(Interval{0, 20})) {
		t.Errorf("Eventually = %s, want [0 20]", got)
	}

	// Always holds only where f covers through the window end.
	if got := Always(f, w); !got.Equal(NewSet(Interval{15, 20})) {
		t.Errorf("Always = %s, want [15 20]", got)
	}
	if got := Always(NewSet(Interval{5, 8}), w); !got.IsEmpty() {
		t.Errorf("Always of non-suffix = %s, want empty", got)
	}
	if got := Always(NewSet(Interval{0, 20}), w); !got.Equal(NewSet(Interval{0, 20})) {
		t.Errorf("Always of full window = %s", got)
	}
}

func TestEventuallyIsTrueUntil(t *testing.T) {
	// Paper §3.3: Eventually f == true Until f.
	r := rand.New(rand.NewSource(9))
	w := Interval{-5, 60}
	tru := NewSet(w)
	for i := 0; i < 200; i++ {
		f := randomSet(r)
		if got, want := Eventually(f, w), Until(tru, f, w); !got.Equal(want) {
			t.Fatalf("case %d: Eventually=%s trueUntil=%s (f=%s)", i, got, want, f)
		}
	}
}

func TestBoundedOperators(t *testing.T) {
	w := Interval{0, 100}
	f := NewSet(Interval{10, 14}, Interval{30, 50})

	// Eventually within 5: each [s,e] widens to [s-5, e].
	if got := EventuallyWithin(f, 5, w); !got.Equal(NewSet(Interval{5, 14}, Interval{25, 50})) {
		t.Errorf("EventuallyWithin = %s", got)
	}
	// Eventually after 20: t <= lastEnd-20 = 30.
	if got := EventuallyAfter(f, 20, w); !got.Equal(NewSet(Interval{0, 30})) {
		t.Errorf("EventuallyAfter = %s", got)
	}
	// Always for 10: runs shorter than 11 ticks vanish; [30,50] -> [30,40].
	if got := AlwaysFor(f, 10, w); !got.Equal(NewSet(Interval{30, 40})) {
		t.Errorf("AlwaysFor = %s", got)
	}
	// Always for 0 is f itself.
	if got := AlwaysFor(f, 0, w); !got.Equal(f) {
		t.Errorf("AlwaysFor(0) = %s, want %s", got, f)
	}
}

func TestBoundedOperatorsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	w := Interval{-10, 70}
	for i := 0; i < 300; i++ {
		f := randomSet(r)
		c := Tick(r.Intn(12))
		ew := EventuallyWithin(f, c, w)
		ea := EventuallyAfter(f, c, w)
		af := AlwaysFor(f, c, w)
		nx := Nexttime(f)
		for tick := w.Start; tick <= w.End; tick++ {
			// Eventually within c: exists t' in [t, t+c] with f (inside window).
			want := false
			for tt := tick; tt <= tick+c && tt <= w.End; tt++ {
				if f.Contains(tt) {
					want = true
					break
				}
			}
			if ew.Contains(tick) != want {
				t.Fatalf("case %d EventuallyWithin c=%d tick=%d got %v want %v (f=%s)", i, c, tick, ew.Contains(tick), want, f)
			}
			// Eventually after c: exists t' >= t+c with f inside window.
			want = false
			for tt := tick + c; tt <= w.End; tt++ {
				if f.Contains(tt) {
					want = true
					break
				}
			}
			if ea.Contains(tick) != want {
				t.Fatalf("case %d EventuallyAfter c=%d tick=%d got %v want %v (f=%s)", i, c, tick, ea.Contains(tick), want, f)
			}
			// Always for c: f on all of [t, t+c] (only meaningful inside window).
			if tick+c <= w.End {
				want = true
				for tt := tick; tt <= tick+c; tt++ {
					if !f.Contains(tt) {
						want = false
						break
					}
				}
				if af.Contains(tick) != want {
					t.Fatalf("case %d AlwaysFor c=%d tick=%d got %v want %v (f=%s)", i, c, tick, af.Contains(tick), want, f)
				}
			}
			// Nexttime: f at t+1.
			if nx.Contains(tick) != f.Contains(tick+1) {
				t.Fatalf("case %d Nexttime tick=%d", i, tick)
			}
		}
	}
}

func TestMaximalChains(t *testing.T) {
	f := NewSet(Interval{0, 5}, Interval{8, 10})
	h := NewSet(Interval{4, 9}, Interval{12, 13})
	chains := MaximalChains(f, h)
	if len(chains) == 0 {
		t.Fatal("no chains found")
	}
	// The first chain must start at f [0,5], pass through h [4,9], and end
	// there ([8,10] is not fully compatible with [12,13] since 12 > 10+1).
	c := chains[0]
	if !c.FromI1 || c.Links[0] != (Interval{0, 5}) {
		t.Fatalf("chain = %+v", c)
	}
	if got := c.Interval(); got != (Interval{0, 9}) {
		t.Fatalf("chain interval = %v, want [0 9]", got)
	}
}

func TestMaximalChainsDegenerate(t *testing.T) {
	// h with no preceding f-run still yields a (degenerate) chain.
	chains := MaximalChains(NewSet(), NewSet(Interval{3, 5}))
	if len(chains) != 1 || chains[0].FromI1 || chains[0].Interval() != (Interval{3, 5}) {
		t.Fatalf("chains = %+v", chains)
	}
}
