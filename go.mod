module github.com/mostdb/most

go 1.22
