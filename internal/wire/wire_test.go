package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/temporal"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpPing, ID: 1},
		{Op: OpQuery, ID: 42, Payload: []byte(`{"src":"RETRIEVE o FROM Vehicles o WHERE TRUE"}`)},
		{Op: OpNotify, ID: 0, Payload: bytes.Repeat([]byte("x"), 100000)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDecoder(&buf, 0)
	for i, want := range frames {
		got, err := d.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %v/%d/%d bytes, want %v/%d/%d bytes",
				i, got.Op, got.ID, len(got.Payload), want.Op, want.ID, len(want.Payload))
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("at end: got %v, want io.EOF", err)
	}
}

func TestDecoderRejectsMalformed(t *testing.T) {
	valid, err := AppendFrame(nil, Frame{Op: OpPing, ID: 7, Payload: []byte("{}")})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(i int, b byte) []byte {
		out := append([]byte(nil), valid...)
		out[i] = b
		return out
	}
	oversized := append([]byte(nil), valid[:HeaderSize]...)
	binary.BigEndian.PutUint32(oversized[12:16], 1<<30)

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"bad magic", corrupt(0, 'X'), ErrBadFrame},
		{"bad version", corrupt(2, 99), ErrBadFrame},
		{"bad opcode", corrupt(3, 200), ErrBadFrame},
		{"oversized", oversized, ErrFrameTooLarge},
		{"truncated header", valid[:5], io.ErrUnexpectedEOF},
		{"truncated payload", valid[:len(valid)-1], io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDecoder(bytes.NewReader(tc.in), 1<<20)
			_, err := d.Next()
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// A decoder pinned to a negotiated version must reject frames carrying any
// other version — the mid-session protocol-violation disconnect.
func TestDecoderPinnedVersionRejectsOthers(t *testing.T) {
	v1, err := AppendFrame(nil, Frame{Op: OpPing, ID: 1, Version: ProtocolV1})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := AppendFrame(nil, Frame{Op: OpPing, ID: 2, Version: ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(append(append([]byte(nil), v2...), v1...)), 0)
	d.SetVersion(ProtocolV2)
	if _, err := d.Next(); err != nil {
		t.Fatalf("pinned version rejected its own version: %v", err)
	}
	if _, err := d.Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("v1 frame on a v2-pinned decoder: got %v, want ErrBadFrame", err)
	}
}

// tattletaleReader serves a frame header and fails the test if the decoder
// asks for a single byte beyond it.
type tattletaleReader struct {
	t   *testing.T
	hdr *bytes.Reader
}

func (r *tattletaleReader) Read(p []byte) (int, error) {
	if r.hdr.Len() == 0 {
		r.t.Fatal("decoder read past the header of an oversized frame")
	}
	return r.hdr.Read(p)
}

// The hostile-input regression for ErrFrameTooLarge: a frame declaring a
// payload beyond the negotiated max must be rejected on the header alone —
// no payload byte read, no payload byte allocated.
func TestDecoderRejectsOversizedBeforeReadingPayload(t *testing.T) {
	valid, err := AppendFrame(nil, Frame{Op: OpPing, ID: 7})
	if err != nil {
		t.Fatal(err)
	}
	hdr := append([]byte(nil), valid[:HeaderSize]...)
	binary.BigEndian.PutUint32(hdr[12:16], 1<<31) // declare 2 GiB
	d := NewDecoder(&tattletaleReader{t: t, hdr: bytes.NewReader(hdr)}, 1<<20)
	_, err = d.Next()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestDecoderPayloadBound(t *testing.T) {
	f := Frame{Op: OpQuery, ID: 1, Payload: bytes.Repeat([]byte("a"), 2048)}
	buf, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(buf), 1024)
	if _, err := d.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []eval.Val{
		eval.ObjVal("car-00001"),
		eval.NumVal(3.141592653589793),
		eval.NumVal(-0.1),
		eval.StrVal("hello\x00world"),
		eval.BoolVal(true),
		{},
	}
	for _, v := range vals {
		got := FromVal(v).Val()
		if got != v {
			t.Fatalf("round trip changed %#v to %#v", v, got)
		}
	}
}

func TestRowsAtAndCanonical(t *testing.T) {
	answer := []AnswerRow{
		{Vals: []Value{FromVal(eval.ObjVal("a"))}, Start: 0, End: 10},
		{Vals: []Value{FromVal(eval.ObjVal("b"))}, Start: 5, End: 5},
	}
	if rows := RowsAt(answer, 5); len(rows) != 2 {
		t.Fatalf("at 5: %d rows, want 2", len(rows))
	}
	if rows := RowsAt(answer, temporal.Tick(11)); len(rows) != 0 {
		t.Fatalf("at 11: %d rows, want 0", len(rows))
	}
	// Canonical form is order-independent.
	rev := []AnswerRow{answer[1], answer[0]}
	if CanonicalAnswers(answer) != CanonicalAnswers(rev) {
		t.Fatal("canonical form depends on order")
	}
}
