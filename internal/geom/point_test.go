package geom

import (
	"math"
	"testing"
)

func TestVectorOps(t *testing.T) {
	v := Vector{3, 4, 0}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
	if got := v.Scale(2); got != (Vector{6, 8, 0}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.AddVec(Vector{1, 1, 1}); got != (Vector{4, 5, 1}) {
		t.Errorf("AddVec = %v", got)
	}
	if got := v.Sub(Vector{3, 4, 0}); !got.IsZero() {
		t.Errorf("Sub = %v, want zero", got)
	}
	if got := v.Dot(Vector{1, 2, 3}); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
}

func TestPointOps(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Add(Vector{1, 1, 1})
	if q != (Point{2, 3, 4}) {
		t.Errorf("Add = %v", q)
	}
	if d := q.Sub(p); d != (Vector{1, 1, 1}) {
		t.Errorf("Sub = %v", d)
	}
	if got := Dist(Point{0, 0, 0}, Point{3, 4, 0}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Dist2(Point{0, 0, 0}, Point{3, 4, 0}); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
}

func TestHeading(t *testing.T) {
	for angle, want := range map[float64]Vector{
		0:               {1, 0, 0},
		math.Pi / 2:     {0, 1, 0},
		math.Pi:         {-1, 0, 0},
		3 * math.Pi / 2: {0, -1, 0},
	} {
		got := Heading(angle)
		if math.Abs(got.X-want.X) > 1e-12 || math.Abs(got.Y-want.Y) > 1e-12 {
			t.Errorf("Heading(%v) = %v, want %v", angle, got, want)
		}
	}
}

func TestRect(t *testing.T) {
	r := Rect{Min: Point{0, 0, 0}, Max: Point{10, 10, 0}}
	if !r.Valid() {
		t.Fatal("rect should be valid")
	}
	if !r.ContainsPoint(Point{5, 5, 0}) || !r.ContainsPoint(Point{0, 0, 0}) || !r.ContainsPoint(Point{10, 10, 0}) {
		t.Error("ContainsPoint boundary/interior failed")
	}
	if r.ContainsPoint(Point{11, 5, 0}) || r.ContainsPoint(Point{5, -1, 0}) {
		t.Error("ContainsPoint exterior failed")
	}
	if !r.Intersects(Rect{Min: Point{10, 10, 0}, Max: Point{20, 20, 0}}) {
		t.Error("touching rects should intersect")
	}
	if r.Intersects(Rect{Min: Point{11, 0, 0}, Max: Point{20, 20, 0}}) {
		t.Error("disjoint rects should not intersect")
	}
	grown := r.Expand(Point{-5, 3, 0})
	if grown.Min != (Point{-5, 0, 0}) || grown.Max != (Point{10, 10, 0}) {
		t.Errorf("Expand = %+v", grown)
	}
}

func TestMovingPointAt(t *testing.T) {
	m := MovingPoint{P: Point{10, 0, 0}, V: Vector{2, -1, 0}, T: 5}
	if got := m.At(5); got != (Point{10, 0, 0}) {
		t.Errorf("At(T) = %v", got)
	}
	if got := m.At(8); got != (Point{16, -3, 0}) {
		t.Errorf("At(8) = %v", got)
	}
	if got := m.At(0); got != (Point{0, 5, 0}) {
		t.Errorf("At(0) = %v", got)
	}
	s := Static(Point{1, 2, 0})
	if got := s.At(100); got != (Point{1, 2, 0}) {
		t.Errorf("static At = %v", got)
	}
}
