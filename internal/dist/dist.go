// Package dist simulates the mobile distributed architecture of §5.2–5.3:
// every object in the database "resides in the computer on the moving
// vehicle it represents, but nowhere else", nodes exchange messages over a
// simulated wireless network with disconnections, and queries are
// classified as self-referencing, object, or relationship queries, each
// with the processing strategies the paper describes.
package dist

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/temporal"
)

// CostModel sizes the three kinds of payloads exchanged.
type CostModel struct {
	ObjectBytes int // one object's attributes + motion vector
	QueryBytes  int // a query text
	TupleBytes  int // one answer tuple
}

// DefaultCost is a plausible sizing: objects are bigger than tuples, which
// are bigger than nothing; query text is a few hundred bytes.
var DefaultCost = CostModel{ObjectBytes: 256, QueryBytes: 128, TupleBytes: 64}

// Counters accumulate network traffic.
type Counters struct {
	Messages int
	Bytes    int
	Dropped  int // messages lost to disconnection
}

func (c *Counters) send(bytes int) {
	c.Messages++
	c.Bytes += bytes
}

// Node is one mobile computer hosting exactly one object.
type Node struct {
	Object       *most.Object
	Disconnected bool
}

// Sim is the distributed system: a fleet of nodes, a clock, and a network.
// Queries may be issued from multiple goroutines concurrently; the clock,
// the traffic counters, and the disconnection coin-flips are guarded by one
// mutex.  Node registration (AddNode) is not concurrent with queries.
type Sim struct {
	Cost    CostModel
	Regions map[string]geom.Polygon

	mu    sync.Mutex // guards clock, net, rng
	net   Counters
	clock temporal.Tick
	nodes map[most.ObjectID]*Node
	order []most.ObjectID
	rng   *rand.Rand
	// PDisconnect is the per-delivery probability that the destination is
	// unreachable (§5.2: "it is possible that due to disconnection, an
	// object cannot continuously update its position").  Set it before
	// issuing queries.
	PDisconnect float64

	// obsv holds the pre-resolved observability instruments (see obs.go);
	// nil means uninstrumented.  Set via Instrument before issuing queries.
	obsv *simObs
}

// NewSim returns an empty simulation with the default cost model.
func NewSim(seed int64) *Sim {
	return &Sim{
		Cost:    DefaultCost,
		Regions: map[string]geom.Polygon{},
		nodes:   map[most.ObjectID]*Node{},
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Now returns the simulation clock.
func (s *Sim) Now() temporal.Tick {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock
}

// Advance moves the clock forward.
func (s *Sim) Advance(d temporal.Tick) temporal.Tick {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = s.clock.Add(d)
	return s.clock
}

// NetStats returns a snapshot of the accumulated traffic counters.
func (s *Sim) NetStats() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.net
}

// AddNode registers a mobile computer hosting the object.
func (s *Sim) AddNode(o *most.Object) (*Node, error) {
	if _, dup := s.nodes[o.ID()]; dup {
		return nil, fmt.Errorf("dist: node %s already exists", o.ID())
	}
	n := &Node{Object: o}
	s.nodes[o.ID()] = n
	s.order = append(s.order, o.ID())
	return n, nil
}

// Node returns the node hosting the object.
func (s *Sim) Node(id most.ObjectID) (*Node, bool) {
	n, ok := s.nodes[id]
	return n, ok
}

// Nodes returns all node ids in insertion order.
func (s *Sim) Nodes() []most.ObjectID { return s.order }

// deliver simulates one message of the given size to a destination node,
// applying the disconnection probability.  It reports delivery success.
// The message is charged to both the shared network counters and tc, the
// issuing query's private counters — concurrent queries therefore see only
// their own traffic in ObjectQueryResult.Traffic, while NetStats still
// aggregates everything.
func (s *Sim) deliver(dst *Node, bytes int, tc *Counters) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.net.send(bytes)
	tc.send(bytes)
	if dst.Disconnected || s.rng.Float64() < s.PDisconnect {
		s.net.Dropped++
		tc.Dropped++
		s.obsv.sent(bytes, true)
		return false
	}
	s.obsv.sent(bytes, false)
	return true
}

// QueryClass is the taxonomy of §5.3.
type QueryClass uint8

// Query classes.
const (
	// SelfReferencing queries examine only the issuing object: "Will I
	// reach the point (a,b) in 3 minutes".
	SelfReferencing QueryClass = iota
	// ObjectQuery predicates are decided per object independently:
	// "Retrieve the objects that will reach the point (a,b) in 3 minutes".
	ObjectQuery
	// RelationshipQuery predicates need two or more objects: "Retrieve the
	// objects that will stay within 2 miles of each other ...".
	RelationshipQuery
)

func (qc QueryClass) String() string {
	switch qc {
	case SelfReferencing:
		return "self-referencing"
	case ObjectQuery:
		return "object"
	default:
		return "relationship"
	}
}

// Classify determines the §5.3 class of a query: by the number of object
// variables it ranges over, and whether the single variable is pinned to
// the issuer.
func Classify(q *ftl.Query, issuerBound bool) QueryClass {
	switch {
	case len(q.Bindings) >= 2:
		return RelationshipQuery
	case len(q.Bindings) == 1 && !issuerBound:
		return ObjectQuery
	default:
		return SelfReferencing
	}
}

// evalContext builds a context over an explicit object universe.
func (s *Sim) evalContext(objects map[most.ObjectID]*most.Object, horizon temporal.Tick) *eval.Context {
	return &eval.Context{
		Now:     s.Now(),
		Horizon: horizon,
		Objects: objects,
		Regions: s.Regions,
		Params:  map[string]eval.Val{},
		Domains: map[string][]eval.Val{},
	}
}

// bindOver binds every FROM variable of q to the given universe.
func bindOver(ctx *eval.Context, q *ftl.Query, ids []most.ObjectID) {
	dom := make([]eval.Val, len(ids))
	for i, id := range ids {
		dom[i] = eval.ObjVal(id)
	}
	for _, b := range q.Bindings {
		ctx.Domains[b.Var] = dom
	}
}

// SelfQuery answers a self-referencing query at the issuing node with no
// communication at all (§5.3: "self-referencing queries can be answered
// without any inter-computer communication").
func (s *Sim) SelfQuery(issuer most.ObjectID, q *ftl.Query, horizon temporal.Tick) (*eval.Relation, error) {
	n, ok := s.nodes[issuer]
	if !ok {
		return nil, fmt.Errorf("dist: no node %s", issuer)
	}
	ctx := s.evalContext(map[most.ObjectID]*most.Object{issuer: n.Object}, horizon)
	bindOver(ctx, q, []most.ObjectID{issuer})
	return eval.EvalQuery(q, ctx)
}

// Strategy selects how an object query is processed (§5.3).
type Strategy uint8

// Object-query strategies.
const (
	// ShipObjects requests every node's object, then evaluates centrally:
	// "first is to request that the object of each mobile computer be sent
	// to M; then M processes the query."
	ShipObjects Strategy = iota
	// BroadcastQuery sends the query to all nodes; each evaluates locally
	// and only satisfying nodes reply: "the second approach is more
	// efficient since it processes the query in parallel."
	BroadcastQuery
)

// ObjectQueryResult carries the answer and the traffic it cost.  Traffic is
// accumulated per query as its messages are sent, so it stays correct when
// queries are issued concurrently (NetStats, by contrast, aggregates the
// whole simulation).
type ObjectQueryResult struct {
	Relation *eval.Relation
	Traffic  Counters
}

// RunObjectQuery processes an object query issued at issuer under the
// given strategy and returns the merged answer relation.
func (s *Sim) RunObjectQuery(issuer most.ObjectID, q *ftl.Query, horizon temporal.Tick, strat Strategy) (*ObjectQueryResult, error) {
	if len(q.Bindings) != 1 {
		return nil, fmt.Errorf("dist: object query must range over one variable, got %d", len(q.Bindings))
	}
	issuerNode, ok := s.nodes[issuer]
	if !ok {
		return nil, fmt.Errorf("dist: no node %s", issuer)
	}
	var traffic Counters

	switch strat {
	case ShipObjects:
		// Request + every node ships its object to the issuer.
		universe := map[most.ObjectID]*most.Object{}
		var ids []most.ObjectID
		for _, id := range s.order {
			n := s.nodes[id]
			if id != issuer {
				// The request reaches the remote node...
				if !s.deliver(n, s.Cost.QueryBytes, &traffic) {
					continue
				}
				// ...and its object ships back to the issuer.
				if !s.deliver(issuerNode, s.Cost.ObjectBytes, &traffic) {
					continue
				}
			}
			universe[id] = n.Object
			ids = append(ids, id)
		}
		ctx := s.evalContext(universe, horizon)
		bindOver(ctx, q, ids)
		rel, err := eval.EvalQuery(q, ctx)
		if err != nil {
			return nil, err
		}
		return &ObjectQueryResult{Relation: rel, Traffic: traffic}, nil

	case BroadcastQuery:
		merged := eval.NewRelation(q.Targets...)
		for _, id := range s.order {
			n := s.nodes[id]
			if id != issuer {
				if !s.deliver(n, s.Cost.QueryBytes, &traffic) {
					continue
				}
			}
			// The node evaluates the predicate on its own object.
			ctx := s.evalContext(map[most.ObjectID]*most.Object{id: n.Object}, horizon)
			bindOver(ctx, q, []most.ObjectID{id})
			rel, err := eval.EvalQuery(q, ctx)
			if err != nil {
				return nil, err
			}
			for _, tup := range rel.Tuples() {
				// Only satisfying nodes reply (one tuple message each).
				if id != issuer {
					if !s.deliver(issuerNode, s.Cost.TupleBytes, &traffic) {
						continue
					}
				}
				merged.Add(tup.Vals, tup.Times)
			}
		}
		return &ObjectQueryResult{Relation: merged, Traffic: traffic}, nil

	default:
		return nil, fmt.Errorf("dist: unknown strategy %d", strat)
	}
}

// RunRelationshipQuery ships every object to the issuing node and evaluates
// there: "the most efficient way to answer a relationship query is to send
// all the objects to a central location ... the computer issuing the
// query" (§5.3).
func (s *Sim) RunRelationshipQuery(issuer most.ObjectID, q *ftl.Query, horizon temporal.Tick) (*ObjectQueryResult, error) {
	issuerNode, ok := s.nodes[issuer]
	if !ok {
		return nil, fmt.Errorf("dist: no node %s", issuer)
	}
	var traffic Counters
	universe := map[most.ObjectID]*most.Object{}
	var ids []most.ObjectID
	for _, id := range s.order {
		n := s.nodes[id]
		if id != issuer {
			if !s.deliver(n, s.Cost.QueryBytes, &traffic) {
				continue
			}
			if !s.deliver(issuerNode, s.Cost.ObjectBytes, &traffic) {
				continue
			}
		}
		universe[id] = n.Object
		ids = append(ids, id)
	}
	ctx := s.evalContext(universe, horizon)
	bindOver(ctx, q, ids)
	rel, err := eval.EvalQuery(q, ctx)
	if err != nil {
		return nil, err
	}
	return &ObjectQueryResult{Relation: rel, Traffic: traffic}, nil
}

// ContinuousTraffic compares the two strategies for a *continuous* object
// query over a stream of motion updates (§5.3): under ShipObjects the
// remote node must transmit its object on every change; under
// BroadcastQuery it "evaluates the predicate each time the object changes,
// and transmits [it] to M when the predicate is satisfied".
//
// updates maps node id -> number of motion changes during the observation
// window; satisfied reports whether a given change leaves the node's
// predicate satisfied.
func (s *Sim) ContinuousTraffic(q *ftl.Query, updates map[most.ObjectID]int, satisfied func(most.ObjectID, int) bool) (ship, broadcast Counters) {
	// Initial dissemination: one query message per node either way (under
	// ShipObjects it is the "send me your object" request).
	n := len(s.order)
	ship.Messages += n
	ship.Bytes += n * s.Cost.QueryBytes
	broadcast.Messages += n
	broadcast.Bytes += n * s.Cost.QueryBytes

	ids := make([]most.ObjectID, 0, len(updates))
	for id := range updates {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for k := 0; k < updates[id]; k++ {
			// ShipObjects: every change ships the whole object.
			ship.Messages++
			ship.Bytes += s.Cost.ObjectBytes
			// BroadcastQuery: only satisfying states are reported.
			if satisfied(id, k) {
				broadcast.Messages++
				broadcast.Bytes += s.Cost.TupleBytes
			}
		}
	}
	return ship, broadcast
}
