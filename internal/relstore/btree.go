package relstore

// btreeIndex is an ordered secondary index: a B-tree mapping column values
// to the row ids holding them.  Written from scratch (order-16 nodes,
// standard split-on-insert, lazy deletion of row ids within a key's
// posting list).
type btreeIndex struct {
	root *btreeNode
}

const btreeOrder = 16 // max keys per node

type btreeEntry struct {
	key  Value
	rids []int
}

type btreeNode struct {
	leaf     bool
	entries  []btreeEntry
	children []*btreeNode // len(entries)+1 when internal
}

func newBTreeIndex() *btreeIndex {
	return &btreeIndex{root: &btreeNode{leaf: true}}
}

// find returns the position of key in n.entries, or the child slot to
// descend into.
func (n *btreeNode) find(key Value) (int, bool) {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		switch c := key.Compare(n.entries[mid].key); {
		case c == 0:
			return mid, true
		case c < 0:
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return lo, false
}

func (idx *btreeIndex) insert(key Value, rid int) {
	root := idx.root
	if len(root.entries) >= btreeOrder {
		newRoot := &btreeNode{leaf: false, children: []*btreeNode{root}}
		newRoot.splitChild(0)
		idx.root = newRoot
		root = newRoot
	}
	root.insertNonFull(key, rid)
}

func (n *btreeNode) insertNonFull(key Value, rid int) {
	pos, found := n.find(key)
	if found {
		n.entries[pos].rids = append(n.entries[pos].rids, rid)
		return
	}
	if n.leaf {
		n.entries = append(n.entries, btreeEntry{})
		copy(n.entries[pos+1:], n.entries[pos:])
		n.entries[pos] = btreeEntry{key: key, rids: []int{rid}}
		return
	}
	child := n.children[pos]
	if len(child.entries) >= btreeOrder {
		n.splitChild(pos)
		// The separator moved up; re-locate.
		if c := key.Compare(n.entries[pos].key); c == 0 {
			n.entries[pos].rids = append(n.entries[pos].rids, rid)
			return
		} else if c > 0 {
			pos++
		}
	}
	n.children[pos].insertNonFull(key, rid)
}

// splitChild splits the full child at slot i, hoisting its median entry.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := len(child.entries) / 2
	sep := child.entries[mid]

	right := &btreeNode{leaf: child.leaf}
	right.entries = append(right.entries, child.entries[mid+1:]...)
	if !child.leaf {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.entries = child.entries[:mid]

	n.entries = append(n.entries, btreeEntry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// remove deletes one occurrence of rid under key.  The key entry remains
// (with an empty posting list) — acceptable for an in-memory index whose
// table compacts on rebuild.
func (idx *btreeIndex) remove(key Value, rid int) {
	n := idx.root
	for {
		pos, found := n.find(key)
		if found {
			rids := n.entries[pos].rids
			for i, r := range rids {
				if r == rid {
					n.entries[pos].rids = append(rids[:i], rids[i+1:]...)
					return
				}
			}
			return
		}
		if n.leaf {
			return
		}
		n = n.children[pos]
	}
}

// scanRange visits row ids with lo <= key <= hi in key order; nil bounds
// are open.  fn returning false stops the scan.
func (idx *btreeIndex) scanRange(lo, hi *Value, fn func(rid int) bool) {
	idx.root.scanRange(lo, hi, fn)
}

func (n *btreeNode) scanRange(lo, hi *Value, fn func(rid int) bool) bool {
	start := 0
	if lo != nil {
		start, _ = n.find(*lo)
	}
	for i := start; i <= len(n.entries); i++ {
		if !n.leaf {
			if !n.children[i].scanRange(lo, hi, fn) {
				return false
			}
		}
		if i == len(n.entries) {
			break
		}
		e := n.entries[i]
		if lo != nil && e.key.Compare(*lo) < 0 {
			continue
		}
		if hi != nil && e.key.Compare(*hi) > 0 {
			return false
		}
		for _, rid := range e.rids {
			if !fn(rid) {
				return false
			}
		}
	}
	return true
}

// height returns the tree height, for tests asserting logarithmic growth.
func (idx *btreeIndex) height() int {
	h, n := 1, idx.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}
