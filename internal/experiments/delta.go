package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/workload"
)

// DeltaCase is one row of the delta-maintenance benchmark: the same
// decomposable continuous query over an n-vehicle fleet, maintained under
// the same motion-update sequence with per-object delta patches versus
// full reevaluation (Options.DisableDelta).
type DeltaCase struct {
	Objects int     `json:"objects"`
	Updates int     `json:"updates"`
	FullNs  int64   `json:"full_ns_per_update"`
	DeltaNs int64   `json:"delta_ns_per_update"`
	Speedup float64 `json:"speedup"`
}

// DeltaReport is the payload mostbench -delta writes to BENCH_delta.json.
type DeltaReport struct {
	Query   string      `json:"query"`
	Results []DeltaCase `json:"results"`
}

// DeltaBench times continuous-query maintenance per motion update.  A full
// reevaluation rejoins the whole fleet on every update, so its cost grows
// with the fleet; a delta patch recomputes only the tuples binding the
// updated object, so its cost stays flat and the speedup grows linearly
// with fleet size.  Both modes apply the identical seeded update sequence
// and converge to the identical answer (the differential oracle locks that
// in); only wall-clock time differs.
func DeltaBench(quick bool) *DeltaReport {
	const src = `RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 10 INSIDE(o, P)`
	sizes := []int{1000, 10000}
	updates := 40
	if quick {
		sizes = []int{1000}
		updates = 15
	}
	q := ftl.MustParse(src)
	opts := query.Options{
		Horizon: 200,
		Regions: map[string]geom.Polygon{"P": geom.RectPolygon(200, 200, 600, 600)},
	}
	rep := &DeltaReport{Query: src}
	for _, n := range sizes {
		// One seeded update sequence per size, shared by both modes.
		rng := rand.New(rand.NewSource(int64(n) + 17))
		type upd struct {
			id most.ObjectID
			v  geom.Vector
		}
		seq := make([]upd, updates)
		for i := range seq {
			seq[i] = upd{
				id: most.ObjectID(fmt.Sprintf("car-%05d", rng.Intn(n))),
				v:  geom.Vector{X: (rng.Float64() - 0.5) * 6, Y: (rng.Float64() - 0.5) * 6},
			}
		}
		run := func(disable bool) time.Duration {
			db, err := workload.Fleet(workload.FleetSpec{
				N:        n,
				Region:   geom.Rect{Max: geom.Point{X: 1000, Y: 1000}},
				MaxSpeed: 3,
				Seed:     11,
			})
			if err != nil {
				panic(err)
			}
			e := newEngine(db)
			o := opts
			o.DisableDelta = disable
			cq, err := e.Continuous(q, o)
			if err != nil {
				panic(err)
			}
			defer cq.Cancel()
			per := timeIt(1, func() {
				for _, u := range seq {
					if err := db.SetMotion(u.id, u.v); err != nil {
						panic(err)
					}
				}
			})
			return per / time.Duration(updates)
		}
		full := run(true)
		delta := run(false)
		rep.Results = append(rep.Results, DeltaCase{
			Objects: n,
			Updates: updates,
			FullNs:  full.Nanoseconds(),
			DeltaNs: delta.Nanoseconds(),
			Speedup: float64(full) / float64(delta),
		})
	}
	return rep
}

// Table renders the report in the experiment-table format.
func (r *DeltaReport) Table() *Table {
	t := &Table{
		ID:      "DELTA",
		Title:   "incremental delta maintenance vs full reevaluation",
		Claim:   "an update to object o need only recompute the instantiations binding o, so per-update maintenance cost is independent of fleet size",
		Columns: []string{"objects", "updates", "full/update", "delta/update", "speedup"},
	}
	for _, res := range r.Results {
		t.AddRow(
			itoa(res.Objects),
			itoa(res.Updates),
			ns(time.Duration(res.FullNs)),
			ns(time.Duration(res.DeltaNs)),
			f2(res.Speedup)+"x",
		)
	}
	return t
}
