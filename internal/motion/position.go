package motion

import (
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/temporal"
)

// Position bundles the spatial object class's X.POSITION, Y.POSITION and
// Z.POSITION dynamic attributes (§2).  Each coordinate evolves
// independently as a piecewise-linear function of time.
type Position struct {
	X, Y, Z DynamicAttr
}

// PositionAt returns a stationary Position at p, updated at tick t0.
func PositionAt(p geom.Point, t0 temporal.Tick) Position {
	return Position{
		X: DynamicAttr{Value: p.X, UpdateTime: t0},
		Y: DynamicAttr{Value: p.Y, UpdateTime: t0},
		Z: DynamicAttr{Value: p.Z, UpdateTime: t0},
	}
}

// MovingFrom returns a Position at p at tick t0 moving with motion vector v
// (distance per tick): the paper's "the position of a car is given as a
// function of its motion vector (e.g., north, at 60 miles/hour)".
func MovingFrom(p geom.Point, v geom.Vector, t0 temporal.Tick) Position {
	return Position{
		X: LinearFrom(p.X, t0, v.X),
		Y: LinearFrom(p.Y, t0, v.Y),
		Z: LinearFrom(p.Z, t0, v.Z),
	}
}

// At returns the position at tick t.
func (p Position) At(t temporal.Tick) geom.Point {
	return geom.Point{X: p.X.At(t), Y: p.Y.At(t), Z: p.Z.At(t)}
}

// AtReal returns the position at a real-valued instant.
func (p Position) AtReal(t float64) geom.Point {
	return geom.Point{X: p.X.AtReal(t), Y: p.Y.AtReal(t), Z: p.Z.AtReal(t)}
}

// VelocityAt returns the motion vector in effect at tick t.
func (p Position) VelocityAt(t temporal.Tick) geom.Vector {
	return geom.Vector{X: p.X.SpeedAt(t), Y: p.Y.SpeedAt(t), Z: p.Z.SpeedAt(t)}
}

// Retarget returns a copy whose motion vector is replaced by v at tick t,
// re-basing each coordinate to its current value (an explicit update of the
// motion vector, the event that actually reaches the database in MOST).
func (p Position) Retarget(t temporal.Tick, v geom.Vector) Position {
	return Position{
		X: p.X.Updated(t, Linear(v.X)),
		Y: p.Y.Updated(t, Linear(v.Y)),
		Z: p.Z.Updated(t, Linear(v.Z)),
	}
}

// Teleport returns a copy placed at point pt with motion vector v at tick t
// (both sub-attributes explicitly updated).
func (p Position) Teleport(t temporal.Tick, pt geom.Point, v geom.Vector) Position {
	return MovingFrom(pt, v, t)
}

// MovingPointAt linearizes the position around tick t: a geom.MovingPoint
// valid until the next breakpoint of any coordinate's function.  For
// single-segment (pure motion-vector) positions it is exact for all future
// time; kinetic solvers that must respect breakpoints should use
// MovingPointsOver instead.
func (p Position) MovingPointAt(t temporal.Tick) geom.MovingPoint {
	return geom.MovingPoint{P: p.At(t), V: p.VelocityAt(t), T: float64(t)}
}

// Span is a time range on which a Position is exactly linear.
type Span struct {
	From, To float64
	MP       geom.MovingPoint
}

// MovingPointsOver splits [from, to] at every breakpoint of the coordinate
// functions and returns the exact linear spans, so kinetic predicates can
// be solved piece by piece.
func (p Position) MovingPointsOver(from, to float64) []Span {
	if from > to {
		return nil
	}
	cuts := []float64{from, to}
	for _, a := range []DynamicAttr{p.X, p.Y, p.Z} {
		for _, piece := range a.Function.Pieces() {
			c := float64(a.UpdateTime) + piece.Start
			if c > from && c < to {
				cuts = append(cuts, c)
			}
		}
	}
	// Sort the small cut list.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	var out []Span
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		if b-a < 1e-12 && i+2 < len(cuts) {
			continue
		}
		mid := (a + b) / 2
		v := geom.Vector{
			X: p.X.Function.SlopeAt(mid - float64(p.X.UpdateTime)),
			Y: p.Y.Function.SlopeAt(mid - float64(p.Y.UpdateTime)),
			Z: p.Z.Function.SlopeAt(mid - float64(p.Z.UpdateTime)),
		}
		out = append(out, Span{From: a, To: b, MP: geom.MovingPoint{P: p.AtReal(a), V: v, T: a}})
	}
	return out
}
