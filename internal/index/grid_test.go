package index

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

func TestGridInstantQuery(t *testing.T) {
	g := NewGridIndex(0, 100, -200, 200, 16, 16)
	if err := g.Insert("a", motion.LinearFrom(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := g.Insert("b", motion.Static(45)); err != nil {
		t.Fatal(err)
	}
	if err := g.Insert("c", motion.LinearFrom(0, 0, -1)); err != nil {
		t.Fatal(err)
	}
	if got := g.InstantQuery(40, 50, 45); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("InstantQuery(45) = %v", got)
	}
	if got := g.InstantQuery(40, 50, 10); len(got) != 1 || got[0] != "b" {
		t.Fatalf("InstantQuery(10) = %v", got)
	}
	if err := g.Insert("a", motion.Static(0)); err == nil {
		t.Error("duplicate insert should fail")
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestGridValueClamping(t *testing.T) {
	// Values escaping the covered range land in boundary rows but answers
	// stay correct.
	g := NewGridIndex(0, 100, -10, 10, 8, 8)
	if err := g.Insert("fast", motion.LinearFrom(0, 0, 100)); err != nil {
		t.Fatal(err)
	}
	if got := g.InstantQuery(4900, 5100, 50); len(got) != 1 {
		t.Fatalf("out-of-range value lookup = %v", got)
	}
	if got := g.InstantQuery(0, 1, 50); len(got) != 0 {
		t.Fatalf("near-zero lookup = %v", got)
	}
}

func TestGridContinuousQuery(t *testing.T) {
	g := NewGridIndex(0, 100, -200, 200, 16, 16)
	if err := g.Insert("a", motion.LinearFrom(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	ans := g.ContinuousQuery(40, 50, 0)
	if len(ans) != 1 || ans[0].ID != "a" {
		t.Fatalf("answers = %+v", ans)
	}
	ivs := ans[0].Times.Intervals()
	if len(ivs) != 1 || ivs[0].Lo != 40 || ivs[0].Hi != 50 {
		t.Fatalf("times = %v", ivs)
	}
}

func TestGridUpdateRemove(t *testing.T) {
	g := NewGridIndex(0, 100, -200, 200, 16, 16)
	attr := motion.LinearFrom(0, 0, 1)
	if err := g.Insert("a", attr); err != nil {
		t.Fatal(err)
	}
	attr = attr.Updated(20, motion.Linear(-1))
	if err := g.Update("a", attr, 20); err != nil {
		t.Fatal(err)
	}
	if got := g.InstantQuery(40, 50, 45); len(got) != 0 {
		t.Fatalf("after reversal = %v", got)
	}
	if got := g.InstantQuery(9, 11, 10); len(got) != 1 {
		t.Fatalf("past unchanged = %v", got)
	}
	if err := g.Update("ghost", attr, 5); err == nil {
		t.Error("update unknown should fail")
	}
	if !g.Remove("a") || g.Remove("a") {
		t.Error("remove behaviour wrong")
	}
	if got := g.InstantQuery(-1000, 1000, 10); len(got) != 0 {
		t.Fatalf("after remove = %v", got)
	}
}

func TestGridMatchesScanRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	g := NewGridIndex(0, 200, -400, 400, 32, 32)
	attrs := map[most.ObjectID]motion.DynamicAttr{}
	for i := 0; i < 200; i++ {
		id := most.ObjectID(fmt.Sprintf("o%03d", i))
		pieces := []motion.Piece{{Start: 0, Slope: float64(r.Intn(9) - 4)}}
		if r.Intn(2) == 0 {
			pieces = append(pieces, motion.Piece{Start: float64(10 + r.Intn(100)), Slope: float64(r.Intn(9) - 4)})
		}
		a := motion.DynamicAttr{Value: float64(r.Intn(200) - 100), Function: motion.MustFunc(pieces...)}
		attrs[id] = a
		if err := g.Insert(id, a); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave random updates with queries.
	for step := 0; step < 60; step++ {
		if step%5 == 4 {
			tick := temporal.Tick(step * 3)
			id := most.ObjectID(fmt.Sprintf("o%03d", r.Intn(200)))
			next := attrs[id].Updated(tick, motion.Linear(float64(r.Intn(9)-4)))
			attrs[id] = next
			if err := g.Update(id, next, tick); err != nil {
				t.Fatal(err)
			}
		}
		lo := float64(r.Intn(600) - 300)
		hi := lo + float64(r.Intn(40))
		// Query at or after the latest update: the ground-truth map holds
		// only the current revision, which is not valid for the past.
		at := temporal.Tick(3*step + r.Intn(200-3*step))
		got := g.InstantQuery(lo, hi, at)
		gotSet := map[most.ObjectID]bool{}
		for _, id := range got {
			gotSet[id] = true
		}
		for id, a := range attrs {
			v := a.At(at)
			want := v >= lo && v <= hi
			if gotSet[id] != want {
				t.Fatalf("step %d (lo=%v hi=%v t=%d) %s: got %v want %v (v=%v)",
					step, lo, hi, at, id, gotSet[id], want, v)
			}
		}
	}
}

func TestGridAgreesWithRTree(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := NewGridIndex(0, 300, -1000, 1000, 32, 32)
	rt := NewAttrIndex(0, 300)
	for i := 0; i < 150; i++ {
		id := most.ObjectID(fmt.Sprintf("o%03d", i))
		a := motion.DynamicAttr{Value: float64(r.Intn(800) - 400), Function: motion.Linear(float64(r.Intn(7) - 3))}
		if err := g.Insert(id, a); err != nil {
			t.Fatal(err)
		}
		if err := rt.Insert(id, a); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 60; q++ {
		lo := float64(r.Intn(1200) - 600)
		hi := lo + float64(r.Intn(60))
		at := temporal.Tick(r.Intn(300))
		a := g.InstantQuery(lo, hi, at)
		b := rt.InstantQuery(lo, hi, at)
		if len(a) != len(b) {
			t.Fatalf("query %d: grid %d vs rtree %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d: %v vs %v", q, a, b)
			}
		}
	}
}

func TestGridValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad grid parameters should panic")
		}
	}()
	NewGridIndex(0, 0, 0, 1, 1, 1)
}
