// Benchmarks: one target per experiment (plus core micro-benchmarks).  Each
// exercises the operation whose cost the corresponding paper claim is
// about; `go test -bench=. -benchmem` regenerates the performance side of
// EXPERIMENTS.md, and `cmd/mostbench` prints the full tables.
package mostdb_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mostdb/most/internal/dist"
	"github.com/mostdb/most/internal/experiments"
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/mostsql"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/relstore"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/workload"
)

// ---- E1: the three query types ----

func BenchmarkE1QueryTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E1QueryTypes()
	}
}

// ---- E2: update traffic ----

func BenchmarkE2UpdateTraffic(b *testing.B) {
	spec := workload.FleetSpec{N: 1000, Region: geom.Rect{Max: geom.Point{X: 1000, Y: 1000}}, MaxSpeed: 3, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.UpdateTraffic(spec, 0.01, 600)
	}
}

// ---- E3: index vs scan ----

func attrFleet(n int) (*index.AttrIndex, map[most.ObjectID]motion.DynamicAttr) {
	r := rand.New(rand.NewSource(5))
	attrs := make(map[most.ObjectID]motion.DynamicAttr, n)
	for i := 0; i < n; i++ {
		id := most.ObjectID(fmt.Sprintf("o%06d", i))
		attrs[id] = motion.DynamicAttr{
			Value:    r.Float64()*2000 - 1000,
			Function: motion.Linear(r.Float64()*6 - 3),
		}
	}
	ix := index.NewAttrIndex(0, 1000)
	ix.Rebuild(0, attrs)
	return ix, attrs
}

func BenchmarkE3IndexVsScan(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		ix, attrs := attrFleet(n)
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cnt := 0
				for _, a := range attrs {
					if v := a.At(500); v >= 100 && v <= 104 {
						cnt++
					}
				}
			}
		})
		b.Run(fmt.Sprintf("index/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.InstantQuery(100, 104, 500)
			}
		})
	}
}

// ---- E4: continuous range query ----

func BenchmarkE4ContinuousIndex(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	attrs := make(map[most.ObjectID]motion.DynamicAttr, 10000)
	for i := 0; i < 10000; i++ {
		id := most.ObjectID(fmt.Sprintf("o%06d", i))
		attrs[id] = motion.DynamicAttr{
			Value:    r.Float64()*2000 - 1000,
			Function: motion.Linear(r.Float64()*0.2 - 0.1),
		}
	}
	ix := index.NewAttrIndex(0, 1000)
	ix.Rebuild(0, attrs)
	b.Run("single-probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.ContinuousQuery(100, 102, 0)
		}
	})
	b.Run("per-tick", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for at := temporal.Tick(0); at < 1000; at++ {
				ix.InstantQuery(100, 102, at)
			}
		}
	})
}

// ---- E5: continuous query vs per-tick reevaluation ----

func motelScenario(b *testing.B) (*most.Database, *query.Engine, *ftl.Query, query.Options) {
	b.Helper()
	db := most.NewDatabase()
	vehicles := most.MustClass("Vehicles", true)
	if err := db.DefineClass(vehicles); err != nil {
		b.Fatal(err)
	}
	if err := workload.AddMotels(db, workload.MotelsSpec{
		N:      100,
		Region: geom.Rect{Min: geom.Point{Y: -4}, Max: geom.Point{X: 200, Y: 4}},
		Seed:   3,
	}); err != nil {
		b.Fatal(err)
	}
	car, _ := most.NewObject("car", vehicles)
	car, _ = car.WithPosition(motion.MovingFrom(geom.Point{}, geom.Vector{X: 1}, 0))
	if err := db.Insert(car); err != nil {
		b.Fatal(err)
	}
	q := ftl.MustParse(`RETRIEVE m FROM Motels m, Vehicles c WHERE DIST(m, c) <= 5`)
	return db, query.NewEngine(db), q, query.Options{Horizon: 250}
}

func BenchmarkE5ContinuousVsPerTick(b *testing.B) {
	b.Run("continuous", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, engine, q, opts := motelScenario(b)
			cq, err := engine.Continuous(q, opts)
			if err != nil {
				b.Fatal(err)
			}
			for tick := temporal.Tick(0); tick < 200; tick = db.Tick() {
				if _, err := cq.Current(tick); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("per-tick", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, engine, q, opts := motelScenario(b)
			for tick := temporal.Tick(0); tick < 200; tick = db.Tick() {
				if _, err := engine.Instantaneous(q, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// ---- E6: Until join ----

func untilSets(n int) (temporal.Set, temporal.Set) {
	r := rand.New(rand.NewSource(int64(n)))
	var fIvs, hIvs []temporal.Interval
	for i := 0; i < n; i++ {
		base := temporal.Tick(16 * i)
		fIvs = append(fIvs, temporal.Interval{Start: base, End: base + 12})
		s := base + temporal.Tick(2+r.Intn(8))
		hIvs = append(hIvs, temporal.Interval{Start: s, End: s + 1})
	}
	return temporal.NewSet(fIvs...), temporal.NewSet(hIvs...)
}

func BenchmarkE6UntilJoin(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		f, h := untilSets(n)
		w := temporal.Interval{Start: 0, End: temporal.Tick(16 * n)}
		b.Run(fmt.Sprintf("pairwise/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				temporal.UntilChains(f, h, w)
			}
		})
		b.Run(fmt.Sprintf("merge/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				temporal.Until(f, h, w)
			}
		})
	}
}

// ---- E7: 2^k decomposition ----

func sqlSystem(b *testing.B, n, k int) (*mostsql.System, *temporal.Tick) {
	b.Helper()
	now := temporal.Tick(10)
	sys := mostsql.New(relstore.NewStore(), func() temporal.Tick { return now })
	dyn := make([]string, k)
	for i := range dyn {
		dyn[i] = fmt.Sprintf("D%d", i)
	}
	if _, err := sys.CreateTable("vehicles", "id", []string{"price"}, dyn); err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		attrs := map[string]motion.DynamicAttr{}
		for _, a := range dyn {
			attrs[a] = motion.DynamicAttr{Value: r.Float64()*200 - 100, Function: motion.Linear(r.Float64()*4 - 2)}
		}
		if err := sys.Insert("vehicles", relstore.Str(fmt.Sprintf("v%06d", i)),
			map[string]relstore.Value{"price": relstore.Num(float64(r.Intn(300)))}, attrs); err != nil {
			b.Fatal(err)
		}
	}
	return sys, &now
}

func BenchmarkE7Decomposition(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		sys, _ := sqlSystem(b, 1000, k)
		sql := "SELECT id FROM vehicles WHERE D0 >= -50"
		for i := 1; i < k; i++ {
			sql += fmt.Sprintf(" AND D%d >= -50", i)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E8: index-assisted rewriting ----

func BenchmarkE8RewriteWithIndex(b *testing.B) {
	sys, _ := sqlSystem(b, 20000, 1)
	if err := sys.CreateDynamicIndex("vehicles", "D0", 0, 1000); err != nil {
		b.Fatal(err)
	}
	const sql = "SELECT id FROM vehicles WHERE D0 >= 115"
	b.Run("per-tuple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Query(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("index-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.QueryWithIndex(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E9: distributed strategies ----

func distSim(b *testing.B, n int) *dist.Sim {
	b.Helper()
	sim := dist.NewSim(1)
	cls := most.MustClass("Vehicles", true)
	for i := 0; i < n; i++ {
		id := most.ObjectID(fmt.Sprintf("v%05d", i))
		o, err := most.NewObject(id, cls)
		if err != nil {
			b.Fatal(err)
		}
		v := geom.Vector{Y: 1}
		if i%10 == 0 {
			v = geom.Vector{X: 1}
		}
		o, err = o.WithPosition(motion.MovingFrom(geom.Point{X: -10}, v, 0))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.AddNode(o); err != nil {
			b.Fatal(err)
		}
	}
	sim.Regions["P"] = geom.RectPolygon(0, -5, 1000, 5)
	return sim
}

func BenchmarkE9DistStrategies(b *testing.B) {
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 100 INSIDE(o, P)`)
	for _, strat := range []struct {
		name string
		s    dist.Strategy
	}{{"ship", dist.ShipObjects}, {"broadcast", dist.BroadcastQuery}} {
		b.Run(strat.name, func(b *testing.B) {
			sim := distSim(b, 200)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunObjectQuery(sim.Nodes()[0], q, 200, strat.s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E10: delivery modes ----

func BenchmarkE10ImmediateVsDelayed(b *testing.B) {
	sim := dist.NewSim(1)
	answers := make([]eval.Answer, 500)
	for i := range answers {
		start := temporal.Tick(i * 5)
		answers[i] = eval.Answer{
			Vals:     []eval.Val{eval.NumVal(float64(i))},
			Interval: temporal.Interval{Start: start, End: start + 8},
		}
	}
	conn := dist.RandomConnectivity(9, 0.1)
	b.Run("immediate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.DeliverAnswer(answers, dist.Immediate, 16, 0, 3000, conn)
		}
	})
	b.Run("delayed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.DeliverAnswer(answers, dist.Delayed, 0, 0, 3000, conn)
		}
	})
}

// ---- core micro-benchmarks ----

func BenchmarkFTLEvalAirspace(b *testing.B) {
	db, err := workload.Airspace(workload.AirspaceSpec{
		N: 200, Radius: 60, Airport: geom.Point{}, Speed: 5, Inbound: 0.3, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	engine := query.NewEngine(db)
	q := ftl.MustParse(`
		RETRIEVE a, t FROM Aircraft a, Aircraft t
		WHERE EVENTUALLY WITHIN 10 DIST(a, t) <= 30`)
	opts := query.Options{Horizon: 60}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Instantaneous(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFTLParse(b *testing.B) {
	const src = `
		RETRIEVE o FROM Objects o
		WHERE o.PRICE <= 100 AND EVENTUALLY WITHIN 3
			(INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P) AND EVENTUALLY AFTER 5 INSIDE(o, Q))`
	for i := 0; i < b.N; i++ {
		if _, err := ftl.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E11: index mechanisms ----

func BenchmarkE11IndexMechanisms(b *testing.B) {
	ix, attrs := attrFleet(10000)
	grid := index.NewGridIndex(0, 1000, -4200, 4200, 64, 64)
	for id, a := range attrs {
		if err := grid.Insert(id, a); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.InstantQuery(100, 104, 500)
		}
	})
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grid.InstantQuery(100, 104, 500)
		}
	})
}

// ---- E12: horizon choice (rebuild cost) ----

func BenchmarkE12Rebuild(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	attrs := make(map[most.ObjectID]motion.DynamicAttr, 5000)
	for i := 0; i < 5000; i++ {
		id := most.ObjectID(fmt.Sprintf("o%06d", i))
		attrs[id] = motion.DynamicAttr{Value: r.Float64()*2000 - 1000, Function: motion.Linear(r.Float64()*6 - 3)}
	}
	for _, T := range []temporal.Tick{250, 1000} {
		b.Run(fmt.Sprintf("T=%d", T), func(b *testing.B) {
			ix := index.NewAttrIndexSlice(0, T, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Rebuild(0, attrs)
			}
		})
	}
}

// ---- quadratic (nonlinear) attributes ----

func BenchmarkQuadraticRangeSolve(b *testing.B) {
	a := motion.DynamicAttr{Value: 50, Function: motion.Accelerating(-10, 1)}
	b.Run("range-times", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.RangeTimes(20, 30, 0, 1000)
		}
	})
	b.Run("compare-ticks", func(b *testing.B) {
		w := temporal.Interval{Start: 0, End: 1000}
		for i := 0; i < b.N; i++ {
			if _, err := a.CompareTicks("<=", 25, w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- parallel evaluation ----

// benchFleetEngine builds an n-vehicle fleet and the query the parallel
// benchmarks evaluate: a RETRIEVE whose per-object INSIDE checks dominate,
// i.e. the loop solveInstantiations fans out.
func benchFleetEngine(b *testing.B, n int) (*most.Database, *query.Engine, *ftl.Query, query.Options) {
	b.Helper()
	db, err := workload.Fleet(workload.FleetSpec{
		N:        n,
		Region:   geom.Rect{Max: geom.Point{X: 1000, Y: 1000}},
		MaxSpeed: 3,
		Seed:     7,
	})
	if err != nil {
		b.Fatal(err)
	}
	e := query.NewEngine(db)
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`)
	opts := query.Options{
		Horizon: 200,
		Regions: map[string]geom.Polygon{"P": geom.RectPolygon(200, 200, 600, 600)},
	}
	return db, e, q, opts
}

// BenchmarkParallelInstantaneous compares sequential evaluation against the
// worker-pool fan-out at fleet sizes 1k/10k/100k.  Run with -cpu 1,4,8 to
// see how the parallel variant scales with GOMAXPROCS (Parallelism: -1
// sizes the pool by it); the sequential variant is the baseline.
func BenchmarkParallelInstantaneous(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		_, e, q, opts := benchFleetEngine(b, n)
		b.Run(fmt.Sprintf("n=%d/seq", n), func(b *testing.B) {
			o := opts
			o.Parallelism = 1
			for i := 0; i < b.N; i++ {
				if _, err := e.InstantaneousRelation(q, o); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/par", n), func(b *testing.B) {
			o := opts
			o.Parallelism = -1 // GOMAXPROCS workers
			for i := 0; i < b.N; i++ {
				if _, err := e.InstantaneousRelation(q, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelMaintenance measures continuous-query upkeep — the
// onUpdate fan-out over registered queries — sequential versus pooled.
func BenchmarkParallelMaintenance(b *testing.B) {
	for _, par := range []int{1, -1} {
		name := "seq"
		if par < 0 {
			name = "par"
		}
		b.Run(name, func(b *testing.B) {
			db, e, q, opts := benchFleetEngine(b, 1000)
			opts.Parallelism = par
			for i := 0; i < 8; i++ {
				if _, err := e.Continuous(q, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One motion-vector update triggers reevaluation of all
				// eight registered continuous queries.
				id := most.ObjectID(fmt.Sprintf("car-%05d", i%1000))
				if err := db.SetMotion(id, geom.Vector{X: float64(i%5) - 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
