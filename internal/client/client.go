// Package client is the Go client for the MOST network service
// (internal/server): one TCP connection carrying pipelined requests and
// server-push continuous-query notifications, demultiplexed by request ID.
//
// # Reliability
//
// Every client carries a ClientID and stamps each request with a
// connection-independent request ID.  When a call fails on a transport
// error, the client redials and retransmits the same request ID; the
// server's idempotence cache recognizes IDs it has already executed and
// replays the stored response instead of applying the request again.
// At-least-once retransmission plus idempotent receipt is exactly-once
// application — the internal/faults reliable-delivery semantics (PR 2) on
// a real socket.  Server-reported errors (OpError) are not retried: the
// request was received and refused.
//
// # Protocol versions
//
// The client speaks protocol version 1 (JSON payloads) and version 2 (the
// compact binary codec, see PROTOCOL.md).  Each connection's Hello
// handshake — always spoken at version 1 — advertises the client's
// maximum (WithProtocol, default wire.MaxProtocolVersion) and adopts the
// server's negotiated answer, so a v2 client downgrades gracefully
// against a v1-only server and a v1 client is unaffected by a v2 server.
// Negotiation is per-connection: a reconnect renegotiates, and requests
// are encoded per attempt at that connection's version.
//
// # Subscriptions
//
// Subscribe registers a continuous query and returns a Subscription
// mirroring the in-process query.Continuous handle: the server pushes the
// full materialized Answer(CQ) after every maintenance round, the handle
// stores the newest answer, and presentation at a tick is a local lookup
// (wire.RowsAt) — no round trip per tick, the paper's continuous-query
// contract preserved across the network boundary.  A subscription dies
// with its connection: after a reconnect the caller re-subscribes (the
// new initial answer resynchronizes it).
package client

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/wire"
)

// Errors the client reports.
var (
	// ErrClosed marks calls on a closed client.
	ErrClosed = errors.New("client: closed")
	// ErrConnLost marks a subscription ended by a transport failure.
	ErrConnLost = errors.New("client: connection lost")
	// ErrSubClosed marks a subscription ended by the server.
	ErrSubClosed = errors.New("client: subscription closed by server")
)

// errTransport wraps failures worth a retry on a fresh connection.
type errTransport struct{ err error }

func (e errTransport) Error() string { return e.err.Error() }
func (e errTransport) Unwrap() error { return e.err }

// Option configures a client.
type Option func(*Client)

// WithTimeout sets the per-call timeout (default 10s).
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.callTimeout = d } }

// WithRetries sets how many times a call is retransmitted after transport
// errors before giving up (default 3).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithClientID fixes the client identity used for idempotent retries
// (default: random).
func WithClientID(id string) Option { return func(c *Client) { c.id = id } }

// WithMaxPayload bounds inbound frame payloads (default
// wire.DefaultMaxPayload).
func WithMaxPayload(n int) Option { return func(c *Client) { c.maxPayload = n } }

// WithDialer replaces the TCP dialer, e.g. with one wrapping connections
// in a fault injector (internal/faults.WrapConn).
func WithDialer(dial func(addr string) (net.Conn, error)) Option {
	return func(c *Client) { c.dial = dial }
}

// WithProtocol caps the protocol version the client offers in the Hello
// handshake (default wire.MaxProtocolVersion).  The negotiated version is
// min(v, server max); 1 forces JSON payloads.  Values outside
// [1, wire.MaxProtocolVersion] are clamped.
func WithProtocol(v int) Option { return func(c *Client) { c.wantProto = v } }

// Client is a MOST network client.  Safe for concurrent use; concurrent
// calls pipeline on one connection.
type Client struct {
	addr        string
	id          string
	dial        func(addr string) (net.Conn, error)
	callTimeout time.Duration
	retries     int
	backoff     time.Duration
	maxPayload  int
	wantProto   int // highest protocol version offered in Hello

	writeMu sync.Mutex // serializes frame writes to conn

	mu      sync.Mutex
	conn    net.Conn
	proto   uint8  // negotiated protocol version of the current connection
	gen     uint64 // connection generation, to ignore stale readLoop failures
	nextID  uint64
	pending map[uint64]chan wire.Frame
	subs    map[uint64]*Subscription
	orphans map[uint64]wire.Notify // notifies that beat their SubscribeResp
	closed  bool
}

// Dial connects to a mostserver at addr.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{
		addr:        addr,
		id:          randomID(),
		dial:        func(a string) (net.Conn, error) { return net.DialTimeout("tcp", a, 10*time.Second) },
		callTimeout: 10 * time.Second,
		retries:     3,
		backoff:     50 * time.Millisecond,
		maxPayload:  wire.DefaultMaxPayload,
		wantProto:   wire.MaxProtocolVersion,
		pending:     map[uint64]chan wire.Frame{},
		subs:        map[uint64]*Subscription{},
		orphans:     map[uint64]wire.Notify{},
	}
	for _, o := range opts {
		o(c)
	}
	if c.wantProto < wire.ProtocolV1 || c.wantProto > wire.MaxProtocolVersion {
		c.wantProto = wire.MaxProtocolVersion
	}
	c.mu.Lock()
	err := c.connectLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

func randomID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "client-unidentified"
	}
	return hex.EncodeToString(b[:])
}

// connectLocked dials and performs the Hello handshake synchronously on
// the raw connection, publishing it (and starting the read loop) only once
// the server has acknowledged the client identity — so no request can
// reach the socket before the idempotence cache is bound.  Callers hold
// c.mu for the duration.
func (c *Client) connectLocked() error {
	if c.closed {
		return ErrClosed
	}
	conn, err := c.dial(c.addr)
	if err != nil {
		return errTransport{err}
	}
	id := c.reserveIDLocked()
	// Hello is always version 1, whatever we hope to negotiate: a v1-only
	// server must be able to read it (and will ignore the max_version
	// field, answering Version 1 — the graceful downgrade).
	f, err := wire.Encode(wire.OpHello, id, wire.HelloReq{ClientID: c.id, MaxVersion: c.wantProto})
	if err != nil {
		conn.Close()
		return err
	}
	conn.SetDeadline(time.Now().Add(c.callTimeout))
	if err := wire.WriteFrame(conn, f); err != nil {
		conn.Close()
		return errTransport{err}
	}
	resp, err := wire.NewDecoder(conn, c.maxPayload).Next()
	if err != nil {
		conn.Close()
		return errTransport{err}
	}
	conn.SetDeadline(time.Time{})
	if resp.Op == wire.OpError {
		conn.Close()
		var e wire.ErrorResp
		_ = wire.Unmarshal(resp, &e)
		return fmt.Errorf("client: hello rejected: %s", e.Msg)
	}
	var hello wire.HelloResp
	if err := wire.Unmarshal(resp, &hello); err != nil {
		conn.Close()
		return err
	}
	if hello.Version == 0 {
		// Pre-negotiation servers omit the field; they speak version 1.
		hello.Version = wire.ProtocolV1
	}
	if hello.Version < wire.ProtocolV1 || hello.Version > c.wantProto {
		conn.Close()
		return fmt.Errorf("client: server negotiated protocol %d, offered at most %d", hello.Version, c.wantProto)
	}
	c.conn = conn
	c.proto = uint8(hello.Version)
	c.gen++
	go c.readLoop(conn, c.gen, c.proto)
	return nil
}

func (c *Client) reserveIDLocked() uint64 {
	c.nextID++
	return c.nextID
}

func awaitFrame(ch <-chan wire.Frame, timeout time.Duration) (wire.Frame, error) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case f, ok := <-ch:
		if !ok {
			return wire.Frame{}, errTransport{ErrConnLost}
		}
		return f, nil
	case <-t.C:
		return wire.Frame{}, fmt.Errorf("client: call timed out after %s", timeout)
	}
}

// writeFrame serializes one frame write under the write deadline.
func (c *Client) writeFrame(conn net.Conn, f wire.Frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(c.callTimeout))
	return wire.WriteFrame(conn, f)
}

// readLoop demultiplexes inbound frames for one connection generation.
// The decoder is pinned to the connection's negotiated protocol version:
// a frame at any other version is a protocol violation that tears the
// connection down.
func (c *Client) readLoop(conn net.Conn, gen uint64, proto uint8) {
	dec := wire.NewDecoder(conn, c.maxPayload)
	dec.SetVersion(proto)
	for {
		f, err := dec.Next()
		if err != nil {
			c.mu.Lock()
			if c.gen == gen {
				c.teardownConnLocked(conn, err)
			}
			c.mu.Unlock()
			return
		}
		switch f.Op {
		case wire.OpNotify:
			var n wire.Notify
			if wire.Unmarshal(f, &n) != nil {
				continue
			}
			c.mu.Lock()
			sub, ok := c.subs[n.SubID]
			if !ok {
				if len(c.orphans) < 64 {
					c.orphans[n.SubID] = n
				}
			}
			c.mu.Unlock()
			if ok {
				sub.deliver(n)
			}
		case wire.OpSubClosed:
			var sc wire.SubClosed
			if wire.Unmarshal(f, &sc) != nil {
				continue
			}
			c.mu.Lock()
			sub, ok := c.subs[sc.SubID]
			delete(c.subs, sc.SubID)
			c.mu.Unlock()
			if ok {
				reason := sc.Reason
				if reason == "" {
					reason = "server closed subscription"
				}
				sub.fail(fmt.Errorf("%w: %s", ErrSubClosed, reason))
			}
		default:
			c.mu.Lock()
			ch, ok := c.pending[f.ID]
			if ok {
				delete(c.pending, f.ID)
			}
			c.mu.Unlock()
			if ok {
				ch <- f
			}
		}
	}
}

// teardownConnLocked fails everything bound to the broken connection.
// Callers hold c.mu.
func (c *Client) teardownConnLocked(conn net.Conn, cause error) {
	conn.Close()
	if c.conn == conn {
		c.conn = nil
	}
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	subs := c.subs
	c.subs = map[uint64]*Subscription{}
	c.orphans = map[uint64]wire.Notify{}
	for _, sub := range subs {
		go sub.fail(fmt.Errorf("%w: %v", ErrConnLost, cause))
	}
}

// call executes one request, retransmitting on transport errors under the
// same request ID so the server's idempotence cache can suppress double
// application.  Payloads are encoded per attempt: a retry may land on a
// fresh connection with a different negotiated protocol version.
func (c *Client) call(op wire.Opcode, payload, out any) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	id := c.reserveIDLocked()
	c.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff << (attempt - 1))
		}
		resp, err := c.roundTrip(op, id, payload)
		if err == nil {
			if resp.Op == wire.OpError {
				var e wire.ErrorResp
				_ = wire.Unmarshal(resp, &e)
				return fmt.Errorf("server: %s", e.Msg)
			}
			if out != nil {
				return wire.Unmarshal(resp, out)
			}
			return nil
		}
		lastErr = err
		var te errTransport
		if !errors.As(err, &te) {
			return err
		}
	}
	return fmt.Errorf("client: %s failed after %d attempts: %w", op, c.retries+1, lastErr)
}

// roundTrip encodes one request at the current connection's negotiated
// protocol version (dialing if needed) and waits for its response.
func (c *Client) roundTrip(op wire.Opcode, id uint64, payload any) (wire.Frame, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return wire.Frame{}, ErrClosed
	}
	if c.conn == nil {
		if err := c.connectLocked(); err != nil {
			c.mu.Unlock()
			return wire.Frame{}, err
		}
	}
	conn, proto := c.conn, c.proto
	ch := make(chan wire.Frame, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	req, err := wire.EncodeFrame(proto, op, id, payload)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return wire.Frame{}, err
	}
	if err := c.writeFrame(conn, req); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.teardownConnLocked(conn, err)
		c.mu.Unlock()
		return wire.Frame{}, errTransport{err}
	}
	f, err := awaitFrame(ch, c.callTimeout)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return wire.Frame{}, err
	}
	return f, nil
}

// Close tears the client down; in-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	if conn != nil {
		c.teardownConnLocked(conn, ErrClosed)
	}
	c.mu.Unlock()
	return nil
}

// ---- typed calls ----

// Ping round-trips an empty frame.
func (c *Client) Ping() error { return c.call(wire.OpPing, nil, nil) }

// Protocol reports the negotiated protocol version of the current
// connection (0 when disconnected).
func (c *Client) Protocol() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0
	}
	return int(c.proto)
}

// Query evaluates src as an instantaneous query; horizon <= 0 uses the
// server default.  It returns the server's evaluation tick and the
// satisfied instantiations.
func (c *Client) Query(src string, horizon temporal.Tick) (temporal.Tick, [][]wire.Value, error) {
	var resp wire.QueryResp
	if err := c.call(wire.OpQuery, &wire.QueryReq{Src: src, Horizon: horizon}, &resp); err != nil {
		return 0, nil, err
	}
	return resp.Now, resp.Rows, nil
}

// UpdateBatch applies explicit updates in order, exactly once.
func (c *Client) UpdateBatch(ops []wire.UpdateOp) (wire.UpdateBatchResp, error) {
	var resp wire.UpdateBatchResp
	err := c.call(wire.OpUpdateBatch, &wire.UpdateBatchReq{Ops: ops}, &resp)
	return resp, err
}

// SetMotion updates one object's motion vector.
func (c *Client) SetMotion(id string, vx, vy float64) error {
	_, err := c.UpdateBatch([]wire.UpdateOp{{Op: wire.OpSetMotion, ID: id, VX: vx, VY: vy}})
	return err
}

// Advance moves the server clock forward by d ticks.
func (c *Client) Advance(d temporal.Tick) (temporal.Tick, error) {
	var resp wire.AdvanceResp
	err := c.call(wire.OpAdvance, &wire.AdvanceReq{D: d}, &resp)
	return resp.Now, err
}

// Objects lists objects with their positions at the server's current tick.
func (c *Client) Objects(class string) (wire.ObjectsResp, error) {
	var resp wire.ObjectsResp
	err := c.call(wire.OpObjects, &wire.ObjectsReq{Class: class}, &resp)
	return resp, err
}

// SnapshotSave serializes the server's database state.
func (c *Client) SnapshotSave() ([]byte, error) {
	var resp wire.SnapshotResp
	if err := c.call(wire.OpSnapshotSave, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// SnapshotLoad replaces the server's database.  Every live subscription on
// the server (any client's) ends with a SubClosed push.
func (c *Client) SnapshotLoad(data []byte) (wire.SnapshotLoadResp, error) {
	var resp wire.SnapshotLoadResp
	err := c.call(wire.OpSnapshotLoad, &wire.SnapshotLoadReq{Data: data}, &resp)
	return resp, err
}

// ---- subscriptions ----

// Subscription is the client half of a server-maintained continuous
// query.
type Subscription struct {
	c     *Client
	subID uint64

	mu     sync.Mutex
	answer []wire.AnswerRow
	seq    uint64
	err    error

	updates chan struct{} // capacity-1 change signal
	done    chan struct{}
	once    sync.Once
}

// Subscribe registers src as a continuous query on the server.
func (c *Client) Subscribe(src string, horizon temporal.Tick) (*Subscription, error) {
	var resp wire.SubscribeResp
	if err := c.call(wire.OpSubscribe, &wire.SubscribeReq{Src: src, Horizon: horizon}, &resp); err != nil {
		return nil, err
	}
	sub := &Subscription{
		c:       c,
		subID:   resp.SubID,
		answer:  resp.Answer,
		updates: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	c.mu.Lock()
	orphan, hadOrphan := c.orphans[resp.SubID]
	delete(c.orphans, resp.SubID)
	if c.conn == nil || c.closed {
		c.mu.Unlock()
		return nil, ErrConnLost
	}
	c.subs[resp.SubID] = sub
	c.mu.Unlock()
	if hadOrphan {
		sub.deliver(orphan)
	}
	return sub, nil
}

// deliver installs a notification (monotonic in Seq).
func (s *Subscription) deliver(n wire.Notify) {
	s.mu.Lock()
	if n.Seq > s.seq {
		s.answer, s.seq = n.Answer, n.Seq
	}
	s.mu.Unlock()
	select {
	case s.updates <- struct{}{}:
	default:
	}
}

// fail terminates the subscription.
func (s *Subscription) fail(err error) {
	s.once.Do(func() {
		s.mu.Lock()
		s.err = err
		s.mu.Unlock()
		close(s.done)
	})
}

// Answer returns the newest materialized answer with its server sequence
// number (0 = the subscription's initial answer).
func (s *Subscription) Answer() ([]wire.AnswerRow, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.answer, s.seq, s.err
}

// Current presents the rows satisfied at tick t from the newest answer —
// a local lookup, mirroring query.Continuous.Current.
func (s *Subscription) Current(t temporal.Tick) ([][]wire.Value, error) {
	answer, _, err := s.Answer()
	if err != nil {
		return nil, err
	}
	return wire.RowsAt(answer, t), nil
}

// Updates signals after new notifications install (coalescing: one signal
// may cover several).
func (s *Subscription) Updates() <-chan struct{} { return s.updates }

// Done closes when the subscription ends; Err then reports why.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Err reports the terminal error, nil while live.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close cancels the subscription on the server and ends the handle.
func (s *Subscription) Close() error {
	s.c.mu.Lock()
	_, live := s.c.subs[s.subID]
	delete(s.c.subs, s.subID)
	s.c.mu.Unlock()
	s.fail(errors.New("client: subscription closed"))
	if !live {
		return nil
	}
	return s.c.call(wire.OpUnsubscribe, &wire.UnsubscribeReq{SubID: s.subID}, nil)
}
