package mostdb_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example binary, asserting a clean
// exit and non-empty output.  This keeps the examples honest: they are the
// library's documentation of record.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example execution in -short mode")
	}
	examples := []string{"quickstart", "airtraffic", "motels", "convoy"}
	tmp := t.TempDir()
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(tmp, name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			build.Env = os.Environ()
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			run := exec.Command(bin)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("run failed: %v\n%s", err, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Fatal("example produced no output")
			}
			if strings.Contains(string(out), "panic") {
				t.Fatalf("example output contains a panic:\n%s", out)
			}
		})
	}
}

// TestToolsRun smoke-tests the command-line tools.
func TestToolsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping tool execution in -short mode")
	}
	tmp := t.TempDir()

	// mostbench restricted to the cheapest experiment.
	bench := filepath.Join(tmp, "mostbench")
	if out, err := exec.Command("go", "build", "-o", bench, "./cmd/mostbench").CombinedOutput(); err != nil {
		t.Fatalf("build mostbench: %v\n%s", err, out)
	}
	out, err := exec.Command(bench, "-quick", "-only", "E1,E7").CombinedOutput()
	if err != nil {
		t.Fatalf("mostbench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "E1") || !strings.Contains(string(out), "E7") {
		t.Fatalf("mostbench output missing tables:\n%s", out)
	}
	if _, err := exec.Command(bench, "-only", "NOPE").CombinedOutput(); err == nil {
		t.Fatal("mostbench with unknown experiment should fail")
	}

	// mostbench -parallel writes BENCH_parallel.json in its working dir.
	par := exec.Command(bench, "-parallel", "-quick")
	par.Dir = tmp
	out, err = par.CombinedOutput()
	if err != nil {
		t.Fatalf("mostbench -parallel: %v\n%s", err, out)
	}
	data, err := os.ReadFile(filepath.Join(tmp, "BENCH_parallel.json"))
	if err != nil {
		t.Fatalf("BENCH_parallel.json not written: %v", err)
	}
	for _, want := range []string{"gomaxprocs", "sequential_ns", "parallel_ns", "speedup"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("BENCH_parallel.json missing %q:\n%s", want, data)
		}
	}

	// mostsim.
	sim := filepath.Join(tmp, "mostsim")
	if out, err := exec.Command("go", "build", "-o", sim, "./cmd/mostsim").CombinedOutput(); err != nil {
		t.Fatalf("build mostsim: %v\n%s", err, out)
	}
	out, err = exec.Command(sim, "-n", "40").CombinedOutput()
	if err != nil {
		t.Fatalf("mostsim: %v\n%s", err, out)
	}
	for _, want := range []string{"ship-objects", "broadcast-query", "immediate", "delayed"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("mostsim output missing %q:\n%s", want, out)
		}
	}

	// mostql driven by a script on stdin.
	ql := filepath.Join(tmp, "mostql")
	if out, err := exec.Command("go", "build", "-o", ql, "./cmd/mostql").CombinedOutput(); err != nil {
		t.Fatalf("build mostql: %v\n%s", err, out)
	}
	cmd := exec.Command(ql, "-n", "15")
	cmd.Stdin = strings.NewReader(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 100 INSIDE(o, downtown)
.continuous RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)
.tick 10
.objects Motels
.regions
.turn car-00000 1 0
.help
.quit`)
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mostql: %v\n%s", err, out)
	}
	for _, want := range []string{"instantiation(s) satisfied", "registered cq1", "[cq1]", "commands:"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("mostql output missing %q:\n%s", want, out)
		}
	}
}

// TestREADMEQuickstart extracts the quickstart program from README.md,
// compiles it in a scratch module that depends on this repository, and
// runs it — so the README cannot drift from the public API.
func TestREADMEQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping quickstart execution in -short mode")
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	const open, close = "```go\n", "```"
	start := strings.Index(string(readme), open)
	if start < 0 {
		t.Fatal("README.md has no ```go block")
	}
	rest := string(readme)[start+len(open):]
	end := strings.Index(rest, close)
	if end < 0 {
		t.Fatal("README.md ```go block is unterminated")
	}
	program := rest[:end]
	if !strings.Contains(program, "package main") {
		t.Fatalf("quickstart block is not a main program:\n%s", program)
	}

	repo, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "main.go"), []byte(program), 0o644); err != nil {
		t.Fatal(err)
	}
	gomod := "module quickstart\n\ngo 1.22\n\nrequire github.com/mostdb/most v0.0.0\n\nreplace github.com/mostdb/most => " + repo + "\n"
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}

	tidy := exec.Command("go", "mod", "tidy")
	tidy.Dir = tmp
	if out, err := tidy.CombinedOutput(); err != nil {
		t.Fatalf("go mod tidy: %v\n%s", err, out)
	}
	run := exec.Command("go", "run", ".")
	run.Dir = tmp
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "satisfies during") {
		t.Fatalf("quickstart output unexpected:\n%s", out)
	}
}
