package faults

import "github.com/mostdb/most/internal/temporal"

// This file adds reliable, acknowledged, at-least-once transfer on top of
// the faulty Network: every application payload travels in a frame with a
// transfer ID, the receiver acknowledges every frame (acks ride the same
// faulty network), and the sender retransmits unacknowledged frames on a
// per-transfer timeout with exponential backoff and a retry cap.  Receipt
// is idempotent: duplicates — injected by the network or caused by a lost
// ack — are detected by transfer ID and suppressed before the application
// sees them, turning at-least-once transmission into exactly-once delivery.

// RetryPolicy tunes the retransmission behavior of an Endpoint.
type RetryPolicy struct {
	// Timeout is the initial per-transfer ack timeout in ticks.
	Timeout temporal.Tick
	// Backoff multiplies the timeout after every retransmission
	// (exponential backoff); values < 2 keep the timeout constant.
	Backoff temporal.Tick
	// MaxTimeout caps the backed-off timeout (0 = uncapped), so a long
	// outage does not push the next probe past the outage's end.
	MaxTimeout temporal.Tick
	// MaxRetries caps retransmissions per transfer (not counting the first
	// send); when exhausted the transfer is abandoned.  Negative = retry
	// forever.
	MaxRetries int
	// AckBytes sizes acknowledgment messages for the traffic counters.
	AckBytes int
}

// DefaultRetryPolicy retries every 2 ticks, doubling up to 8, at most 25
// times — enough to ride out the partitions the experiments script.
var DefaultRetryPolicy = RetryPolicy{Timeout: 2, Backoff: 2, MaxTimeout: 8, MaxRetries: 25, AckBytes: 16}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.Timeout < 1 {
		p.Timeout = 1
	}
	if p.Backoff < 1 {
		p.Backoff = 1
	}
	if p.AckBytes <= 0 {
		p.AckBytes = 16
	}
	return p
}

// frame carries one application payload with its transfer ID.
type frame struct {
	TID     uint64
	Payload any
}

// ack acknowledges receipt of a frame.
type ack struct {
	TID uint64
}

// TransferStats counts an endpoint's reliable-transfer activity.
type TransferStats struct {
	Sent       int // transfers initiated
	Retries    int // retransmissions
	Acked      int // transfers completed (ack received)
	Abandoned  int // transfers dropped after MaxRetries
	AcksSent   int // acknowledgments transmitted
	DupsSeen   int // duplicate frames suppressed by the dedup filter
	Delivered  int // distinct frames handed to OnDeliver
	RetryBytes int // bytes spent on retransmissions alone
}

type pendingTransfer struct {
	tid       uint64
	to        NodeID
	bytes     int
	payload   any
	retries   int
	timeout   temporal.Tick
	nextRetry temporal.Tick
}

// Endpoint is one node's reliable transfer agent: a sender with
// retransmission state and a receiver with an idempotence filter, sharing
// the node's network handler.  Drive it by calling Tick once per simulation
// tick (after Network.Step) so due retransmissions go out.
//
// An Endpoint's volatile state (pending transfers, dedup filter) is lost if
// the node is scripted to crash only in the sense that the agent stays
// silent while down (Tick does nothing); state survives restart, modeling
// an agent that logs its send queue durably.  Applications that need
// crash-durable state proper layer a WAL underneath (see internal/most).
type Endpoint struct {
	net    *Network
	id     NodeID
	policy RetryPolicy

	// OnDeliver receives each distinct frame exactly once, in delivery
	// order.  Set before any traffic arrives.
	OnDeliver func(from NodeID, tid uint64, payload any)
	// OnAcked, if set, observes each transfer completion.
	OnAcked func(tid uint64)

	nextTID uint64
	pending map[uint64]*pendingTransfer
	order   []uint64 // pending TIDs in send order, for deterministic retransmission
	seen    map[NodeID]map[uint64]bool
	stats   TransferStats
}

// NewEndpoint attaches a reliable transfer agent to the node.  It replaces
// the node's network handler.
func NewEndpoint(net *Network, id NodeID, policy RetryPolicy) *Endpoint {
	e := &Endpoint{
		net:     net,
		id:      id,
		policy:  policy.normalized(),
		pending: map[uint64]*pendingTransfer{},
		seen:    map[NodeID]map[uint64]bool{},
	}
	net.Attach(id, e.handle)
	return e
}

// handle demultiplexes the node's incoming traffic.
func (e *Endpoint) handle(m Message) {
	switch p := m.Payload.(type) {
	case ack:
		if _, ok := e.pending[p.TID]; ok {
			delete(e.pending, p.TID)
			e.stats.Acked++
			if e.OnAcked != nil {
				e.OnAcked(p.TID)
			}
		}
	case frame:
		// Always (re-)acknowledge: the previous ack may have been lost.
		e.stats.AcksSent++
		e.net.Send(e.id, m.From, e.policy.AckBytes, ack{TID: p.TID})
		seen := e.seen[m.From]
		if seen == nil {
			seen = map[uint64]bool{}
			e.seen[m.From] = seen
		}
		if seen[p.TID] {
			e.stats.DupsSeen++
			return
		}
		seen[p.TID] = true
		e.stats.Delivered++
		if e.OnDeliver != nil {
			e.OnDeliver(m.From, p.TID, p.Payload)
		}
	}
}

// Send starts a reliable transfer and returns its transfer ID.  The payload
// is retransmitted until acknowledged or abandoned.
func (e *Endpoint) Send(to NodeID, bytes int, payload any) uint64 {
	e.nextTID++
	tid := e.nextTID
	now := e.net.Now()
	e.pending[tid] = &pendingTransfer{
		tid: tid, to: to, bytes: bytes, payload: payload,
		timeout:   e.policy.Timeout,
		nextRetry: now.Add(e.policy.Timeout),
	}
	e.order = append(e.order, tid)
	e.stats.Sent++
	e.net.Send(e.id, to, bytes, frame{TID: tid, Payload: payload})
	return tid
}

// Tick retransmits every pending transfer whose timeout has elapsed.  Call
// once per simulation tick.  A crashed node stays silent.
func (e *Endpoint) Tick() {
	now := e.net.Now()
	if e.net.Crashed(e.id, now) {
		return
	}
	live := e.order[:0]
	for _, tid := range e.order {
		p, ok := e.pending[tid]
		if !ok {
			continue // acked
		}
		if now >= p.nextRetry {
			if e.policy.MaxRetries >= 0 && p.retries >= e.policy.MaxRetries {
				delete(e.pending, tid)
				e.stats.Abandoned++
				continue
			}
			p.retries++
			e.stats.Retries++
			e.stats.RetryBytes += p.bytes
			e.net.Send(e.id, p.to, p.bytes, frame{TID: p.tid, Payload: p.payload})
			p.timeout *= e.policy.Backoff
			if e.policy.MaxTimeout > 0 && p.timeout > e.policy.MaxTimeout {
				p.timeout = e.policy.MaxTimeout
			}
			p.nextRetry = now.Add(p.timeout)
		}
		live = append(live, tid)
	}
	e.order = live
}

// Outstanding returns the number of unacknowledged transfers.
func (e *Endpoint) Outstanding() int { return len(e.pending) }

// Stats returns a snapshot of the transfer counters.
func (e *Endpoint) Stats() TransferStats { return e.stats }
