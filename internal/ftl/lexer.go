package ftl

import (
	"strconv"
	"strings"
	"unicode"
)

// lexer turns FTL source text into tokens.
type lexer struct {
	src       string
	pos       int
	line, col int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// Lex tokenizes the whole input; the last token is TokEOF.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) peekByte() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for {
		c, ok := lx.peekByte()
		if !ok {
			return nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			// SQL-style line comment.
			for {
				c, ok := lx.peekByte()
				if !ok || c == '\n' {
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := Token{Pos: lx.pos, Line: lx.line, Col: lx.col}
	c, ok := lx.peekByte()
	if !ok {
		start.Kind = TokEOF
		return start, nil
	}
	switch {
	case isIdentStart(c):
		return lx.lexIdent(start), nil
	case c >= '0' && c <= '9':
		return lx.lexNumber(start)
	case c == '\'' || c == '"':
		return lx.lexString(start)
	default:
		return lx.lexSymbol(start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (lx *lexer) lexIdent(start Token) Token {
	b := strings.Builder{}
	for {
		c, ok := lx.peekByte()
		if !ok || !isIdentPart(c) {
			break
		}
		b.WriteByte(lx.advance())
	}
	text := b.String()
	upper := strings.ToUpper(text)
	if keywords[upper] {
		start.Kind = TokKeyword
		start.Text = upper
		return start
	}
	start.Kind = TokIdent
	start.Text = text
	return start
}

func (lx *lexer) lexNumber(start Token) (Token, error) {
	b := strings.Builder{}
	seenDot := false
	for {
		c, ok := lx.peekByte()
		if !ok {
			break
		}
		if c == '.' {
			// Only consume the dot if a digit follows (so "3.PRICE" stays
			// separable; attribute access uses the dot symbol).
			if seenDot || lx.pos+1 >= len(lx.src) || lx.src[lx.pos+1] < '0' || lx.src[lx.pos+1] > '9' {
				break
			}
			seenDot = true
			b.WriteByte(lx.advance())
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		b.WriteByte(lx.advance())
	}
	n, err := strconv.ParseFloat(b.String(), 64)
	if err != nil {
		return Token{}, errAt(start, "bad number %q", b.String())
	}
	start.Kind = TokNumber
	start.Num = n
	start.Text = b.String()
	return start, nil
}

func (lx *lexer) lexString(start Token) (Token, error) {
	quote := lx.advance()
	b := strings.Builder{}
	for {
		c, ok := lx.peekByte()
		if !ok {
			return Token{}, errAt(start, "unterminated string")
		}
		lx.advance()
		if c == quote {
			break
		}
		b.WriteByte(c)
	}
	start.Kind = TokString
	start.Text = b.String()
	return start, nil
}

// twoByteSymbols are matched before single-byte ones.
var twoByteSymbols = map[string]bool{
	"<-": true, "<=": true, ">=": true, "!=": true, "<>": true, "==": true,
}

func (lx *lexer) lexSymbol(start Token) (Token, error) {
	c := lx.advance()
	if next, ok := lx.peekByte(); ok {
		two := string([]byte{c, next})
		if twoByteSymbols[two] {
			lx.advance()
			start.Kind = TokSymbol
			start.Text = two
			return start, nil
		}
	}
	switch c {
	case '(', ')', '[', ']', ',', '.', '<', '>', '=', '+', '-', '*', '/':
		start.Kind = TokSymbol
		start.Text = string(c)
		return start, nil
	}
	return Token{}, errAt(start, "unexpected character %q", string(c))
}
