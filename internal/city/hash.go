package city

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Fingerprint returns a hex digest of the complete generated scenario:
// district and POI geometry, the car and bus fleets (routes included,
// via the event schedule), and every update event, all rendered
// canonically with exact (hex float) number formatting.  Two cities
// generated from the same Spec hash identically — the determinism
// regression tests rely on this.
func (c *City) Fingerprint() string {
	h := sha256.New()
	fp := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	fp("spec|%+v\n", c.Spec)
	for _, d := range c.Districts {
		fp("district|%s|%s|%s|%s\n", d.Name, d.Kind, hexPt(d.Bounds.Min.X, d.Bounds.Min.Y), hexPt(d.Bounds.Max.X, d.Bounds.Max.Y))
	}
	for _, p := range c.POIs {
		fp("poi|%s|%s|%s|%s|%s\n", p.Name, p.Region, p.Kind, p.District, hexPt(p.Loc.X, p.Loc.Y))
	}
	for _, car := range c.Cars {
		fp("car|%s|%s|%s|%s|%d|%d|%s\n", car.ID, car.Home,
			hexPt(car.Origin.X, car.Origin.Y), hexPt(car.Dest.X, car.Dest.Y),
			car.Depart, car.Return, hexF(car.Speed))
	}
	for _, b := range c.Buses {
		fp("bus|%s|%s|%s|%d|%s\n", b.Plate, b.District, hexPt(b.Start.X, b.Start.Y), b.Depart, hexF(b.Speed))
	}
	for _, e := range c.Events {
		fp("event|%d|%s|%s\n", e.Tick, e.Object, hexPt(e.Vector.X, e.Vector.Y))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint returns a hex digest of the catalog: every template
// (name, kind, FTL source) and every region polygon vertex, with exact
// number formatting.
func (cat *Catalog) Fingerprint() string {
	h := sha256.New()
	for _, t := range cat.Templates {
		fmt.Fprintf(h, "template|%s|%s|%s\n", t.Name, t.Kind, t.Src)
	}
	names := make([]string, 0, len(cat.Regions))
	for name := range cat.Regions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "region|%s", name)
		for _, v := range cat.Regions[name].Vertices() {
			io.WriteString(h, "|"+hexPt(v.X, v.Y))
		}
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

func hexF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func hexPt(x, y float64) string { return hexF(x) + "," + hexF(y) }
