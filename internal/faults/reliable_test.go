package faults

import (
	"testing"

	"github.com/mostdb/most/internal/temporal"
)

// pump drives the network and both endpoints until tick t.
func pump(n *Network, t temporal.Tick, eps ...*Endpoint) {
	n.Run(t, func(temporal.Tick) {
		for _, e := range eps {
			e.Tick()
		}
	})
}

func TestReliableDeliversThroughHeavyLoss(t *testing.T) {
	n := New(Config{Seed: 21, DropRate: 0.5})
	sender := NewEndpoint(n, "srv", RetryPolicy{Timeout: 2, Backoff: 1, MaxRetries: 40})
	var got []any
	recv := NewEndpoint(n, "cli", DefaultRetryPolicy)
	recv.OnDeliver = func(_ NodeID, _ uint64, p any) { got = append(got, p) }

	const N = 50
	for i := 0; i < N; i++ {
		sender.Send("cli", 64, i)
	}
	pump(n, 200, sender, recv)

	if len(got) != N {
		t.Fatalf("delivered %d of %d", len(got), N)
	}
	st := sender.Stats()
	if st.Retries == 0 {
		t.Fatal("50% loss must force retries")
	}
	if st.Acked != N || st.Abandoned != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if sender.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", sender.Outstanding())
	}
}

func TestExactlyOnceUnderDuplication(t *testing.T) {
	n := New(Config{Seed: 8, DropRate: 0.3, DupRate: 0.3, DelayMin: 1, DelayMax: 3})
	sender := NewEndpoint(n, "srv", RetryPolicy{Timeout: 2, Backoff: 1, MaxRetries: 60})
	seen := map[any]int{}
	recv := NewEndpoint(n, "cli", DefaultRetryPolicy)
	recv.OnDeliver = func(_ NodeID, _ uint64, p any) { seen[p]++ }

	const N = 40
	for i := 0; i < N; i++ {
		sender.Send("cli", 64, i)
	}
	pump(n, 300, sender, recv)

	for i := 0; i < N; i++ {
		if seen[i] != 1 {
			t.Fatalf("payload %d delivered %d times", i, seen[i])
		}
	}
	if recv.Stats().DupsSeen == 0 {
		t.Fatal("duplicates should have reached (and been suppressed by) the receiver")
	}
}

func TestBackoffGrowsAndIsCapped(t *testing.T) {
	// A receiver that never answers: watch retransmission spacing.
	n := New(Config{Seed: 1})
	n.Attach("cli", func(Message) {}) // swallow frames, no acks
	sender := NewEndpoint(n, "srv", RetryPolicy{Timeout: 2, Backoff: 2, MaxTimeout: 8, MaxRetries: 5})

	var resendTicks []temporal.Tick
	n.Attach("cli", func(m Message) { resendTicks = append(resendTicks, n.Now()) })
	sender.Send("cli", 10, "x")
	pump(n, 100, sender)

	// First copy at ~1 plus retries at timeouts 2,4,8,8,8 after each send.
	if len(resendTicks) != 6 {
		t.Fatalf("transmissions = %d (%v), want 1+5", len(resendTicks), resendTicks)
	}
	gaps := []temporal.Tick{}
	for i := 1; i < len(resendTicks); i++ {
		gaps = append(gaps, resendTicks[i]-resendTicks[i-1])
	}
	want := []temporal.Tick{2, 4, 8, 8, 8}
	for i, g := range gaps {
		if g != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
	if st := sender.Stats(); st.Abandoned != 1 || st.Retries != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetriesRideOutPartition(t *testing.T) {
	n := New(Config{Seed: 13})
	n.AddPartition(Partition{Start: 2, End: 30, GroupA: []NodeID{"srv"}})
	sender := NewEndpoint(n, "srv", RetryPolicy{Timeout: 2, Backoff: 2, MaxTimeout: 6, MaxRetries: 30})
	var got []any
	recv := NewEndpoint(n, "cli", DefaultRetryPolicy)
	recv.OnDeliver = func(_ NodeID, _ uint64, p any) { got = append(got, p) }

	pump(n, 2, sender, recv) // let the clock enter the partition window
	sender.Send("cli", 64, "update")
	pump(n, 60, sender, recv)

	if len(got) != 1 {
		t.Fatalf("delivered %d through partition", len(got))
	}
	if sender.Stats().Retries == 0 {
		t.Fatal("partition must force retries")
	}
}

func TestCrashedSenderPausesRetransmission(t *testing.T) {
	n := New(Config{Seed: 2})
	n.AddCrash(Crash{Node: "srv", Down: 1, Up: 20})
	sender := NewEndpoint(n, "srv", RetryPolicy{Timeout: 2, Backoff: 1, MaxRetries: 50})
	var got []any
	recv := NewEndpoint(n, "cli", DefaultRetryPolicy)
	recv.OnDeliver = func(_ NodeID, _ uint64, p any) { got = append(got, p) }

	// Send at tick 0 (alive); the frame is in flight when the node dies is
	// fine — but the loss case is a send right before the crash being
	// dropped and every retry until restart staying silent.
	n.AddPartition(Partition{Start: 0, End: 1, GroupA: []NodeID{"srv"}}) // first copy lost
	sender.Send("cli", 64, "v")
	pump(n, 40, sender, recv)

	if len(got) != 1 {
		t.Fatalf("delivered %d, want recovery after restart", len(got))
	}
	st := sender.Stats()
	if st.Retries == 0 {
		t.Fatal("expected post-restart retransmission")
	}
}

func TestAckLossTriggersResendButNotRedelivery(t *testing.T) {
	// Partition the ack direction only: impossible directly (partitions are
	// symmetric), so use heavy loss targeted at the sender: outages are
	// per-destination, so acks to "srv" drop while frames to "cli" flow.
	n := New(Config{Seed: 31, DropRate: 0.0})
	// Simulate ack loss with a custom schedule: crash nothing, but use a
	// one-way trick — deliver frames, then drop acks by partitioning after
	// the frame arrives.  Simpler: high DropRate and a seed under which the
	// first ack drops; assert exactly-once delivery regardless.
	n = New(Config{Seed: 33, DropRate: 0.45})
	sender := NewEndpoint(n, "srv", RetryPolicy{Timeout: 2, Backoff: 1, MaxRetries: 60})
	deliveries := 0
	recv := NewEndpoint(n, "cli", DefaultRetryPolicy)
	recv.OnDeliver = func(NodeID, uint64, any) { deliveries++ }

	for i := 0; i < 30; i++ {
		sender.Send("cli", 64, i)
	}
	pump(n, 300, sender, recv)

	if deliveries != 30 {
		t.Fatalf("deliveries = %d, want exactly 30", deliveries)
	}
	if recv.Stats().AcksSent <= 30 && recv.Stats().DupsSeen == 0 {
		t.Skipf("seed produced no ack loss; acks=%d dups=%d", recv.Stats().AcksSent, recv.Stats().DupsSeen)
	}
	if sender.Stats().Acked != 30 {
		t.Fatalf("acked = %d", sender.Stats().Acked)
	}
}
