package dist

import (
	"testing"

	"github.com/mostdb/most/internal/faults"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

const (
	serverNode = faults.NodeID("M-server")
	clientNode = faults.NodeID("m-client")
)

// newFaultyNet builds the scripted fault schedule of the acceptance test:
// 30% probabilistic loss plus one mid-run partition isolating the client
// for ticks [60, 90).  Two networks built by this function inject exactly
// the same faults (loss is a pure hash of seed, node, and tick).
func newFaultyNet(seed int64) *faults.Network {
	net := faults.New(faults.Config{Seed: seed, DropRate: 0.3})
	net.AddPartition(faults.Partition{Start: 60, End: 90, GroupA: []faults.NodeID{clientNode}})
	return net
}

// longAnswers returns n tuples spaced 10 ticks apart with 80-tick display
// windows — long enough that a retransmission after the 30-tick partition
// still lands inside the window.
func longAnswers(n int) []eval.Answer {
	out := make([]eval.Answer, n)
	for i := range out {
		start := temporal.Tick(i) * 10
		out[i] = eval.Answer{
			Vals:     []eval.Val{eval.NumVal(float64(i))},
			Interval: temporal.Interval{Start: start, End: start + 80},
		}
	}
	return out
}

// TestReliableBeatsLegacyUnderFaults is the acceptance criterion of the
// fault-tolerance work: under scripted 30% loss plus a mid-run partition,
// the legacy §5.2 paths (Immediate blocks, Delayed) miss displays, while
// reliable delivery over the identical fault schedule misses none.
func TestReliableBeatsLegacyUnderFaults(t *testing.T) {
	const seed, from, to = 7, 0, 300
	answers := longAnswers(12)
	policy := faults.RetryPolicy{Timeout: 2, Backoff: 2, MaxTimeout: 6, MaxRetries: 40, AckBytes: 16}

	s := NewSim(1)
	conn := func(tk temporal.Tick) bool {
		return newFaultyNet(seed).Connected(serverNode, clientNode, tk)
	}
	legacyIm := s.DeliverAnswer(answers, Immediate, 3, from, to, conn)
	legacyDe := s.DeliverAnswer(answers, Delayed, 0, from, to, conn)

	// The partition alone guarantees legacy losses: the Immediate block at
	// begin=60 and the Delayed tuples beginning in [60, 90) are all dropped.
	if legacyIm.MissedDisplays == 0 {
		t.Fatal("legacy Immediate missed nothing under 30% loss + partition")
	}
	if legacyDe.MissedDisplays == 0 {
		t.Fatal("legacy Delayed missed nothing under 30% loss + partition")
	}

	relIm := s.ReliableDeliverAnswer(newFaultyNet(seed), serverNode, clientNode, policy, answers, Immediate, 3, from, to)
	relDe := s.ReliableDeliverAnswer(newFaultyNet(seed), serverNode, clientNode, policy, answers, Delayed, 0, from, to)
	if relIm.MissedDisplays != 0 {
		t.Fatalf("reliable Immediate missed %d displays", relIm.MissedDisplays)
	}
	if relDe.MissedDisplays != 0 {
		t.Fatalf("reliable Delayed missed %d displays", relDe.MissedDisplays)
	}
	// The reliability is paid for in retransmissions.
	if relIm.Retries == 0 || relDe.Retries == 0 {
		t.Fatalf("expected retransmissions, got %d / %d", relIm.Retries, relDe.Retries)
	}
	// Tuples the legacy path would have dropped were recovered.
	if relDe.RecoveredDisplays == 0 {
		t.Fatal("reliable Delayed recovered no first-send losses")
	}
}

// TestReliableDeliverDeterministic: same seed and schedule, same stats.
func TestReliableDeliverDeterministic(t *testing.T) {
	answers := longAnswers(8)
	s := NewSim(1)
	run := func() ReliableDeliveryStats {
		return s.ReliableDeliverAnswer(newFaultyNet(11), serverNode, clientNode,
			faults.DefaultRetryPolicy, answers, Delayed, 0, 0, 250)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic reliable delivery: %+v vs %+v", a, b)
	}
}

// TestReliablePerfectNetworkNoRetries: with no faults the reliable path
// delivers everything with zero retransmissions.
func TestReliablePerfectNetworkNoRetries(t *testing.T) {
	answers := longAnswers(5)
	s := NewSim(1)
	net := faults.New(faults.Config{Seed: 1})
	stats := s.ReliableDeliverAnswer(net, serverNode, clientNode,
		faults.DefaultRetryPolicy, answers, Immediate, 0, 0, 200)
	if stats.MissedDisplays != 0 || stats.Retries != 0 || stats.RecoveredDisplays != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.PeakMemory != 5 {
		t.Fatalf("peak memory = %d", stats.PeakMemory)
	}
}

func mkUpdates(objs []most.ObjectID, versions int, spacing temporal.Tick) []MotionUpdate {
	var out []MotionUpdate
	for v := 1; v <= versions; v++ {
		for i, id := range objs {
			out = append(out, MotionUpdate{
				Object:  id,
				Version: v,
				Tick:    temporal.Tick(v-1)*spacing + temporal.Tick(i),
				Vector:  geom.Vector{X: float64(v)},
			})
		}
	}
	return out
}

// TestPropagateUpdatesReliableLosesNothing: under 30% loss and duplication
// the reliable path installs every update (or a newer version of it), while
// the legacy fire-and-forget path loses some.
func TestPropagateUpdatesReliableLosesNothing(t *testing.T) {
	objs := []most.ObjectID{"car1", "car2", "car3"}
	updates := mkUpdates(objs, 8, 10)
	cfg := faults.Config{Seed: 3, DropRate: 0.3, DupRate: 0.2}

	legacy := PropagateUpdates(faults.New(cfg), serverNode, updates, false,
		faults.DefaultRetryPolicy, 64, 200, nil)
	if legacy.Lost == 0 {
		t.Fatal("legacy propagation lost nothing under 30% loss")
	}

	final := map[most.ObjectID]int{}
	reliable := PropagateUpdates(faults.New(cfg), serverNode, updates, true,
		faults.DefaultRetryPolicy, 64, 200, func(u MotionUpdate) { final[u.Object] = u.Version })
	if reliable.Lost != 0 {
		t.Fatalf("reliable propagation lost %d updates", reliable.Lost)
	}
	if reliable.Retries == 0 {
		t.Fatal("reliable propagation needed no retries under 30% loss")
	}
	for _, id := range objs {
		if final[id] != 8 {
			t.Fatalf("object %s ended at version %d, want 8", id, final[id])
		}
	}
}

// TestPropagateUpdatesIdempotent: the version-stamp filter makes receipt
// idempotent — duplicated frames never install twice, and a version is
// never installed over a newer one.
func TestPropagateUpdatesIdempotent(t *testing.T) {
	updates := mkUpdates([]most.ObjectID{"car1"}, 5, 4)
	cfg := faults.Config{Seed: 9, DropRate: 0.2, DupRate: 0.5, DelayMin: 1, DelayMax: 4}
	installs := 0
	last := 0
	stats := PropagateUpdates(faults.New(cfg), serverNode, updates, true,
		faults.DefaultRetryPolicy, 64, 150, func(u MotionUpdate) {
			installs++
			if u.Version <= last {
				t.Fatalf("installed version %d after %d", u.Version, last)
			}
			last = u.Version
		})
	if stats.Lost != 0 {
		t.Fatalf("lost %d updates", stats.Lost)
	}
	if stats.Installed != installs {
		t.Fatalf("Installed=%d but install ran %d times", stats.Installed, installs)
	}
	if stats.Installed+stats.Superseded != stats.Offered {
		t.Fatalf("accounting broken: %+v", stats)
	}
	if last != 5 {
		t.Fatalf("final version %d, want 5", last)
	}
}

// TestAnnotateStaleness: tuples referencing an object whose motion vector
// is older than the bound are marked uncertain; fresh objects are not.
func TestAnnotateStaleness(t *testing.T) {
	db := most.NewDatabase()
	c := most.MustClass("Vehicles", true)
	if err := db.DefineClass(c); err != nil {
		t.Fatal(err)
	}
	add := func(id most.ObjectID, at temporal.Tick) {
		o, err := most.NewObject(id, c)
		if err != nil {
			t.Fatal(err)
		}
		o, err = o.WithPosition(motion.MovingFrom(geom.Point{}, geom.Vector{X: 1}, at))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	add("fresh", 95)
	add("stale", 10)

	answers := []eval.Answer{
		{Vals: []eval.Val{eval.ObjVal("fresh")}, Interval: temporal.Interval{Start: 100, End: 110}},
		{Vals: []eval.Val{eval.ObjVal("stale")}, Interval: temporal.Interval{Start: 100, End: 110}},
		{Vals: []eval.Val{eval.ObjVal("gone")}, Interval: temporal.Interval{Start: 100, End: 110}},
		{Vals: []eval.Val{eval.NumVal(3)}, Interval: temporal.Interval{Start: 100, End: 110}},
	}
	annotated, marked := AnnotateStaleness(db, answers, 100, 20)
	if marked != 2 {
		t.Fatalf("marked = %d, want 2", marked)
	}
	if annotated[0].Uncertain {
		t.Fatal("fresh object marked uncertain")
	}
	if !annotated[1].Uncertain || annotated[1].Stale[0] != "stale" {
		t.Fatalf("stale object not marked: %+v", annotated[1])
	}
	if !annotated[2].Uncertain {
		t.Fatal("deleted object not marked uncertain")
	}
	if annotated[3].Uncertain {
		t.Fatal("constant-only tuple marked uncertain")
	}
}
