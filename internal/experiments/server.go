package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/server"
	"github.com/mostdb/most/internal/wire"
	"github.com/mostdb/most/internal/workload"
)

// ServerResult is one row of the network-service benchmark: n concurrent
// clients at one protocol version, each pipelining batched motion updates
// through a loopback TCP server, with client-observed round-trip latency
// percentiles and the aggregate committed-update throughput.
type ServerResult struct {
	Proto         int     `json:"proto"`
	Conns         int     `json:"conns"`
	BatchSize     int     `json:"batch_size"`
	Batches       int     `json:"batches"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
}

// ServerDelta is the side-by-side v1-vs-v2 comparison for one
// (conns, batch size) configuration, the `make benchcmp` payload.
type ServerDelta struct {
	Conns     int     `json:"conns"`
	BatchSize int     `json:"batch_size"`
	V1        float64 `json:"v1_updates_per_sec"`
	V2        float64 `json:"v2_updates_per_sec"`
	Speedup   float64 `json:"speedup"`
	V1P99Ns   int64   `json:"v1_p99_ns"`
	V2P99Ns   int64   `json:"v2_p99_ns"`
}

// ServerReport is the payload mostbench -server writes to
// BENCH_server.json: per-version result rows plus the v2/v1 deltas.
type ServerReport struct {
	Vehicles int            `json:"vehicles"`
	Results  []ServerResult `json:"results"`
	Deltas   []ServerDelta  `json:"deltas,omitempty"`
}

// ServerBench sweeps protocol versions and connection counts (and, in the
// full run, batch sizes) against one loopback server and measures what a
// client sees: per-batch round-trip latency (p50/p99) and total committed
// updates per second.  Every batch is a real mutation — the server applies
// it to the database and runs continuous-query maintenance inline — so the
// numbers include the full commit path, not just framing.  Each
// (batch, conns) configuration runs once per protocol version and the
// report carries the v2-over-v1 deltas side by side.
func ServerBench(quick bool) *ServerReport {
	const nVehicles = 200
	conns := []int{1, 4, 16}
	batchSizes := []int{8}
	batchesPerConn := 150
	if !quick {
		conns = []int{1, 4, 16, 32}
		batchSizes = []int{1, 8}
		batchesPerConn = 400
	}

	rep := &ServerReport{Vehicles: nVehicles}
	for _, bs := range batchSizes {
		for _, nc := range conns {
			var byProto [3]ServerResult
			for _, proto := range []int{1, 2} {
				res := runServerBench(nVehicles, proto, nc, bs, batchesPerConn)
				rep.Results = append(rep.Results, res)
				byProto[proto] = res
			}
			d := ServerDelta{
				Conns:     nc,
				BatchSize: bs,
				V1:        byProto[1].UpdatesPerSec,
				V2:        byProto[2].UpdatesPerSec,
				V1P99Ns:   byProto[1].P99Ns,
				V2P99Ns:   byProto[2].P99Ns,
			}
			if d.V1 > 0 {
				d.Speedup = d.V2 / d.V1
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	return rep
}

func runServerBench(nVehicles, proto, conns, batchSize, batches int) ServerResult {
	db, err := workload.Fleet(workload.FleetSpec{
		N:        nVehicles,
		Region:   geom.Rect{Max: geom.Point{X: 1000, Y: 1000}},
		MaxSpeed: 3,
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}
	eng := query.NewEngine(db)
	srv := server.New(db, eng, server.Config{
		BaseOptions: query.Options{
			Horizon: 100,
			Regions: map[string]geom.Polygon{"P": geom.RectPolygon(200, 200, 600, 600)},
		},
	})
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		panic(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
	)
	start := time.Now()
	for w := 0; w < conns; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr,
				client.WithClientID(fmt.Sprintf("bench-%d", w)),
				client.WithProtocol(proto))
			if err != nil {
				panic(err)
			}
			defer c.Close()
			local := make([]time.Duration, 0, batches)
			ops := make([]wire.UpdateOp, batchSize)
			for b := 0; b < batches; b++ {
				for i := range ops {
					id := (w*batches*batchSize + b*batchSize + i) % nVehicles
					ops[i] = wire.UpdateOp{
						Op: wire.OpSetMotion,
						ID: fmt.Sprintf("car-%05d", id),
						VX: float64(b%7) - 3,
						VY: float64(i%5) - 2,
					}
				}
				t0 := time.Now()
				if _, err := c.UpdateBatch(ops); err != nil {
					panic(err)
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	totalUpdates := conns * batches * batchSize
	return ServerResult{
		Proto:         proto,
		Conns:         conns,
		BatchSize:     batchSize,
		Batches:       conns * batches,
		UpdatesPerSec: float64(totalUpdates) / elapsed.Seconds(),
		P50Ns:         pct(0.50).Nanoseconds(),
		P99Ns:         pct(0.99).Nanoseconds(),
	}
}

// Table renders the report for the terminal, one row per (proto, conns,
// batch) configuration plus the v2-over-v1 speedup column.
func (r *ServerReport) Table() *Table {
	t := &Table{
		ID:      "SRV",
		Title:   "network service throughput (pipelined update batches over loopback TCP)",
		Claim:   "the v2 binary codec with the zero-alloc ingest path sustains a multiple of v1 JSON throughput at bounded tail latency",
		Columns: []string{"proto", "conns", "batch", "batches", "updates/s", "p50", "p99"},
	}
	for _, res := range r.Results {
		t.AddRow(
			fmt.Sprintf("v%d", res.Proto),
			itoa(res.Conns),
			itoa(res.BatchSize),
			itoa(res.Batches),
			fmt.Sprintf("%.0f", res.UpdatesPerSec),
			ns(time.Duration(res.P50Ns)),
			ns(time.Duration(res.P99Ns)),
		)
	}
	for _, d := range r.Deltas {
		t.AddRow(
			"v2/v1",
			itoa(d.Conns),
			itoa(d.BatchSize),
			"-",
			fmt.Sprintf("%.2fx", d.Speedup),
			"-",
			fmt.Sprintf("%s vs %s", ns(time.Duration(d.V2P99Ns)), ns(time.Duration(d.V1P99Ns))),
		)
	}
	return t
}
