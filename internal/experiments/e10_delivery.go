package experiments

import (
	"fmt"

	"github.com/mostdb/most/internal/dist"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/temporal"
)

// E10ImmediateVsDelayed reproduces §5.2's design trade-off: transmitting
// Answer(CQ) to a moving client immediately (in blocks of B when memory is
// limited) versus at each tuple's begin time, under varying disconnection
// probability.
func E10ImmediateVsDelayed(quick bool) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Answer(CQ) delivery to a moving client: immediate vs delayed (§5.2)",
		Claim:   "immediate delivery minimizes messages and risk concentrates at transmission instants; delayed delivery bounds client memory but exposes every tuple to disconnection",
		Columns: []string{"tuples", "memory B", "p(disconnect)", "mode", "msgs", "bytes", "missed displays", "peak memory"},
	}
	sim := dist.NewSim(1)
	nTuples := 200
	if quick {
		nTuples = 80
	}
	answers := make([]eval.Answer, nTuples)
	for i := range answers {
		start := temporal.Tick(i * 5)
		answers[i] = eval.Answer{
			Vals:     []eval.Val{eval.NumVal(float64(i))},
			Interval: temporal.Interval{Start: start, End: start + 8},
		}
	}
	to := temporal.Tick(nTuples*5 + 20)
	for _, p := range []float64{0, 0.1, 0.3} {
		for _, b := range []int{0, 16} {
			conn := dist.RandomConnectivity(99, p)
			im := sim.DeliverAnswer(answers, dist.Immediate, b, 0, to, conn)
			de := sim.DeliverAnswer(answers, dist.Delayed, b, 0, to, conn)
			bs := "inf"
			if b > 0 {
				bs = itoa(b)
			}
			t.AddRow(itoa(nTuples), bs, f2(p), "immediate", itoa(im.Messages), itoa(im.Bytes), itoa(im.MissedDisplays), itoa(im.PeakMemory))
			t.AddRow(itoa(nTuples), bs, f2(p), "delayed", itoa(de.Messages), itoa(de.Bytes), itoa(de.MissedDisplays), itoa(de.PeakMemory))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("window: %d ticks; tuple displays last 8 ticks, starting every 5", int(to)),
		`"the choice ... depends on the probability that an update ... can be propagated to M before the effects of the update need to be displayed" — the missed-display column quantifies it`)
	return t
}
