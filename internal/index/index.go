// Package index implements the paper's method of indexing dynamic
// attributes (§4): "the method plots all the functions representing the way
// a dynamic attribute A changes with time.  Thus, the x-axis represents
// time, and the y-axis represents the value of A. ... We use a spatial
// index for each dynamic attribute A.  Spatial indexes use a hierarchical
// recursive decomposition of space, usually into rectangles; the id of each
// object o is stored in the records representing the rectangles crossed by
// the A.function of o."
//
// The spatial index is the from-scratch R-tree in internal/rtree.  Each
// object's piecewise-linear trajectory is sliced into strips of bounded
// time width — the rectangles its function line crosses — before insertion,
// so boxes stay tight and a probe touches only the strips near the query
// rectangle.  The index is bounded in time ("spatial indexing is limited to
// finite space ... the index needs to be reconstructed every T time
// units"); Rebuild performs the periodic reconstruction by bulk-loading.
package index

import (
	"fmt"
	"sort"
	"sync"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/rtree"
	"github.com/mostdb/most/internal/temporal"
)

// insertChunk is how many objects a batched insert indexes per write-lock
// hold.  Between chunks the lock is released, so concurrent probes (read
// lock) interleave with a bulk load instead of stalling behind it.
const insertChunk = 64

// strip is one indexed rectangle: a time-bounded piece of one object's
// trajectory.  It is the R-tree's stored value, so a probe can verify the
// predicate inline on the hit without any auxiliary lookup.
type strip struct {
	id  most.ObjectID
	seg motion.Segment
}

// segRecord pairs a strip with its R-tree box, for updates and deletes.
type segRecord struct {
	strip strip
	rect  rtree.Rect
}

// AttrIndex indexes one dynamic attribute over the time horizon
// [Base, Base+T).  It is safe for concurrent use: probes take a read lock
// and run in parallel with each other; mutators take the write lock.
// InsertBatch releases the write lock between chunks so probes interleave
// with a bulk load.
type AttrIndex struct {
	mu      sync.RWMutex
	base    temporal.Tick
	horizon temporal.Tick
	slice   float64 // max time width of one indexed rectangle
	tree    *rtree.Tree[strip]
	objects map[most.ObjectID][]segRecord
}

// NewAttrIndex returns an empty index covering [base, base+T), with the
// strip width defaulting to T/64.
func NewAttrIndex(base, T temporal.Tick) *AttrIndex {
	return NewAttrIndexSlice(base, T, float64(T)/64)
}

// NewAttrIndexSlice returns an empty index covering [base, base+T) with an
// explicit strip width (clamped to at least one tick).  Narrower strips
// give tighter rectangles (faster probes) at the cost of more entries;
// experiment E12 studies the trade-off together with the choice of T.
func NewAttrIndexSlice(base, T temporal.Tick, slice float64) *AttrIndex {
	if T <= 0 {
		panic("index: horizon must be positive")
	}
	if slice < 1 {
		slice = 1
	}
	return &AttrIndex{
		base:    base,
		horizon: T,
		slice:   slice,
		tree:    rtree.New[strip](2, 16),
		objects: map[most.ObjectID][]segRecord{},
	}
}

// Base returns the start of the indexed time window.
func (ix *AttrIndex) Base() temporal.Tick {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.base
}

// End returns the exclusive end of the indexed time window (Base + T).
func (ix *AttrIndex) End() temporal.Tick {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.end()
}

// end is End without the lock, for use by methods already holding it
// (RWMutex is not reentrant).
func (ix *AttrIndex) end() temporal.Tick { return ix.base.Add(ix.horizon) }

// Len returns the number of indexed objects.
func (ix *AttrIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.objects)
}

// TreeHeight returns the underlying R-tree's height; experiments use it to
// demonstrate logarithmic growth.
func (ix *AttrIndex) TreeHeight() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Height()
}

// NeedsRebuild reports whether t has run past the indexed window, i.e. the
// periodic reconstruction is due.
func (ix *AttrIndex) NeedsRebuild(t temporal.Tick) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return t >= ix.end()
}

// Insert indexes the object's attribute trajectory over the window.
func (ix *AttrIndex) Insert(id most.ObjectID, attr motion.DynamicAttr) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.objects[id]; dup {
		return fmt.Errorf("index: object %s already indexed", id)
	}
	ix.insertFrom(id, attr, float64(ix.base))
	return nil
}

// AttrEntry is one object of a batched attribute-index insert.
type AttrEntry struct {
	ID   most.ObjectID
	Attr motion.DynamicAttr
}

// InsertBatch indexes many objects at once.  The strip records are computed
// under the read lock — concurrent probes keep running — and applied to the
// tree in chunks of insertChunk objects per write-lock hold, so probes
// interleave with the load instead of waiting for all of it.  If the window
// is rebuilt concurrently the batch aborts with an error rather than mixing
// strips from two windows.
func (ix *AttrIndex) InsertBatch(entries []AttrEntry) error {
	ix.mu.RLock()
	base := ix.base
	for _, e := range entries {
		if _, dup := ix.objects[e.ID]; dup {
			ix.mu.RUnlock()
			return fmt.Errorf("index: object %s already indexed", e.ID)
		}
	}
	recs := make([][]segRecord, len(entries))
	for i, e := range entries {
		recs[i] = ix.makeRecords(e.ID, e.Attr, float64(base))
	}
	ix.mu.RUnlock()

	for start := 0; start < len(entries); start += insertChunk {
		chunkEnd := start + insertChunk
		if chunkEnd > len(entries) {
			chunkEnd = len(entries)
		}
		ix.mu.Lock()
		if ix.base != base {
			ix.mu.Unlock()
			return fmt.Errorf("index: window rebuilt during batch insert")
		}
		for i := start; i < chunkEnd; i++ {
			id := entries[i].ID
			if _, dup := ix.objects[id]; dup {
				ix.mu.Unlock()
				return fmt.Errorf("index: object %s already indexed", id)
			}
			for _, rec := range recs[i] {
				ix.tree.Insert(rec.rect, rec.strip)
			}
			ix.objects[id] = append(ix.objects[id], recs[i]...)
		}
		ix.mu.Unlock()
	}
	return nil
}

// makeRecords builds the strip records of one trajectory without touching
// the tree.  Callers hold the lock (either mode).
func (ix *AttrIndex) makeRecords(id most.ObjectID, attr motion.DynamicAttr, from float64) []segRecord {
	segs := attr.Trajectory(from, float64(ix.end()))
	var out []segRecord
	for _, s := range segs {
		for _, piece := range sliceSegment(s, ix.slice) {
			tMin, tMax, vMin, vMax := piece.Bounds()
			out = append(out, segRecord{
				strip: strip{id: id, seg: piece},
				rect:  rtree.Rect2(tMin, vMin, tMax, vMax),
			})
		}
	}
	return out
}

func (ix *AttrIndex) insertFrom(id most.ObjectID, attr motion.DynamicAttr, from float64) {
	recs := ix.makeRecords(id, attr, from)
	for _, rec := range recs {
		ix.tree.Insert(rec.rect, rec.strip)
	}
	ix.objects[id] = append(ix.objects[id], recs...)
}

// sliceSegment cuts a trajectory segment into strips at most width wide.
func sliceSegment(s motion.Segment, width float64) []motion.Segment {
	if s.T1-s.T0 <= width {
		return []motion.Segment{s}
	}
	var out []motion.Segment
	for t0 := s.T0; t0 < s.T1; t0 += width {
		t1 := t0 + width
		if t1 > s.T1 {
			t1 = s.T1
		}
		out = append(out, s.Sub(t0, t1))
	}
	return out
}

// Remove drops all of the object's segments.
func (ix *AttrIndex) Remove(id most.ObjectID) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	recs, ok := ix.objects[id]
	if !ok {
		return false
	}
	for _, rec := range recs {
		ix.tree.Delete(rec.rect, rec.strip)
	}
	delete(ix.objects, id)
	return true
}

// Update handles an explicit update of o.A at time t: "o is removed from
// the records representing rectangles crossed by the old function-line, and
// it is added to the records representing rectangles crossed by the new
// function-line" — only the part of the trajectory at or after t changes.
func (ix *AttrIndex) Update(id most.ObjectID, attr motion.DynamicAttr, t temporal.Tick) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	recs, ok := ix.objects[id]
	if !ok {
		return fmt.Errorf("index: object %s not indexed", id)
	}
	at := float64(t)
	kept := recs[:0]
	for _, rec := range recs {
		if rec.strip.seg.T1 <= at {
			kept = append(kept, rec)
			continue
		}
		ix.tree.Delete(rec.rect, rec.strip)
		if rec.strip.seg.T0 < at {
			// Truncate the segment that spans the update instant.
			trunc := rec.strip.seg.Sub(rec.strip.seg.T0, at)
			tMin, tMax, vMin, vMax := trunc.Bounds()
			nrec := segRecord{strip: strip{id: id, seg: trunc}, rect: rtree.Rect2(tMin, vMin, tMax, vMax)}
			ix.tree.Insert(nrec.rect, nrec.strip)
			kept = append(kept, nrec)
		}
	}
	ix.objects[id] = kept
	start := at
	if start < float64(ix.base) {
		start = float64(ix.base)
	}
	ix.insertFrom(id, attr, start)
	return nil
}

// Candidates returns the distinct object ids whose trajectory rectangles
// intersect the query rectangle [t0,t1] x [lo,hi] — the index probe of §4,
// before the exact per-object check.
func (ix *AttrIndex) Candidates(lo, hi float64, t0, t1 float64) []most.ObjectID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	seen := map[most.ObjectID]bool{}
	var out []most.ObjectID
	ix.tree.Search(rtree.Rect2(t0, lo, t1, hi), func(_ rtree.Rect, s strip) bool {
		if !seen[s.id] {
			seen[s.id] = true
			out = append(out, s.id)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InstantQuery answers "retrieve the objects for which currently
// lo <= A <= hi" at time t: probe the index with the rectangle
// [lo,hi] x [t,t], then "for each object id in these records we check
// whether currently lo < A < hi" — directly on the hit strips.
func (ix *AttrIndex) InstantQuery(lo, hi float64, t temporal.Tick) []most.ObjectID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	at := float64(t)
	var out []most.ObjectID
	var dup map[most.ObjectID]bool
	ix.tree.Search(rtree.Rect2(at, lo, at, hi), func(_ rtree.Rect, s strip) bool {
		if at < s.seg.T0 || at > s.seg.T1 {
			return true
		}
		if v := s.seg.ValueAt(at); v < lo || v > hi {
			return true
		}
		// A tick on a strip boundary can hit two strips of one object.
		if dup[s.id] {
			return true
		}
		if dup == nil {
			dup = map[most.ObjectID]bool{}
		}
		dup[s.id] = true
		out = append(out, s.id)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContinuousAnswer is one tuple of a continuous range query's answer: the
// object and the times at which it satisfies the range.
type ContinuousAnswer struct {
	ID    most.ObjectID
	Times geom.RealSet
}

// ContinuousQuery answers the continuous form of the range query entered at
// time t: probe with the rectangle [lo,hi] x [t, T], then construct the
// answer "by examining each object id in these records, and determining the
// time intervals when lo < o.A < hi" (§4).
func (ix *AttrIndex) ContinuousQuery(lo, hi float64, t temporal.Tick) []ContinuousAnswer {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	from := float64(t)
	to := float64(ix.end())
	hits := map[most.ObjectID][]geom.RealInterval{}
	ix.tree.Search(rtree.Rect2(from, lo, to, hi), func(_ rtree.Rect, s strip) bool {
		if set, ok := segmentRange(s.seg, lo, hi, from, to); ok {
			hits[s.id] = append(hits[s.id], set.Intervals()...)
		}
		return true
	})
	ids := make([]most.ObjectID, 0, len(hits))
	for id := range hits {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []ContinuousAnswer
	for _, id := range ids {
		set := geom.NewRealSet(hits[id]...)
		if !set.IsEmpty() {
			out = append(out, ContinuousAnswer{ID: id, Times: set})
		}
	}
	return out
}

// segmentRange solves lo <= seg(t) <= hi over [max(seg.T0,from),
// min(seg.T1,to)], exactly for linear and quadratic segments.
func segmentRange(seg motion.Segment, lo, hi, from, to float64) (geom.RealSet, bool) {
	t0 := seg.T0
	if from > t0 {
		t0 = from
	}
	t1 := seg.T1
	if to < t1 {
		t1 = to
	}
	if t0 > t1 {
		return geom.RealSet{}, false
	}
	set := motion.SegRangeTimes(seg.Sub(t0, t1), lo, hi)
	return set, !set.IsEmpty()
}

// Rebuild reconstructs the index for a new window starting at base, from
// the supplied current attributes — the periodic reconstruction of §4.  The
// R-tree is bulk-loaded (STR packing), which is both faster and yields a
// better tree than incremental insertion.
func (ix *AttrIndex) Rebuild(base temporal.Tick, attrs map[most.ObjectID]motion.DynamicAttr) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.base = base
	ix.objects = make(map[most.ObjectID][]segRecord, len(attrs))
	ids := make([]most.ObjectID, 0, len(attrs))
	for id := range attrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var rects []rtree.Rect
	var vals []strip
	for _, id := range ids {
		recs := ix.makeRecords(id, attrs[id], float64(base))
		ix.objects[id] = recs
		for _, rec := range recs {
			rects = append(rects, rec.rect)
			vals = append(vals, rec.strip)
		}
	}
	ix.tree = rtree.New[strip](2, 16)
	ix.tree.BulkLoad(rects, vals)
}
