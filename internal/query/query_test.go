package query

import (
	"fmt"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
)

func testDB(t *testing.T) (*most.Database, *most.Class) {
	t.Helper()
	db := most.NewDatabase()
	cls := most.MustClass("Vehicles", true, most.AttrDef{Name: "PRICE", Kind: most.Static})
	if err := db.DefineClass(cls); err != nil {
		t.Fatal(err)
	}
	return db, cls
}

func addCar(t *testing.T, db *most.Database, cls *most.Class, id most.ObjectID, p geom.Point, v geom.Vector) {
	t.Helper()
	o, err := most.NewObject(id, cls)
	if err != nil {
		t.Fatal(err)
	}
	o, err = o.WithPosition(motion.MovingFrom(p, v, db.Now()))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(o); err != nil {
		t.Fatal(err)
	}
}

func regionP() map[string]geom.Polygon {
	return map[string]geom.Polygon{"P": geom.RectPolygon(10, -10, 20, 10)}
}

func ids(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[0].String()
	}
	return out
}

func TestInstantaneousQuery(t *testing.T) {
	db, cls := testDB(t)
	e := NewEngine(db)
	addCar(t, db, cls, "in", geom.Point{X: 15}, geom.Vector{})
	addCar(t, db, cls, "out", geom.Point{X: 50}, geom.Vector{})

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`)
	rows, err := e.Instantaneous(q, Options{Horizon: 100, Regions: regionP()})
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(rows); len(got) != 1 || got[0] != "in" {
		t.Fatalf("rows = %v", got)
	}
	if e.Evaluations() != 1 {
		t.Fatalf("evaluations = %d", e.Evaluations())
	}
}

func TestInstantaneousDependsOnEntryTime(t *testing.T) {
	// The same query gives different answers at different entry times with
	// no update in between (§2.1).
	db, cls := testDB(t)
	e := NewEngine(db)
	addCar(t, db, cls, "v", geom.Point{X: 0}, geom.Vector{X: 1})
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`)
	opts := Options{Horizon: 100, Regions: regionP()}

	rows, err := e.Instantaneous(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("at t=0: %v", ids(rows))
	}
	db.Advance(15)
	rows, err = e.Instantaneous(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(rows); len(got) != 1 || got[0] != "v" {
		t.Fatalf("at t=15: %v", got)
	}
}

func TestContinuousSingleEvaluation(t *testing.T) {
	db, cls := testDB(t)
	e := NewEngine(db)
	addCar(t, db, cls, "v", geom.Point{X: 0}, geom.Vector{X: 1})

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`)
	cq, err := e.Continuous(q, Options{Horizon: 100, Regions: regionP()})
	if err != nil {
		t.Fatal(err)
	}
	base := e.Evaluations()

	// Presentation over 50 ticks costs no further evaluations.
	for tick := db.Now(); tick < 50; tick = db.Tick() {
		rows, err := cq.Current(tick)
		if err != nil {
			t.Fatal(err)
		}
		want := tick >= 10 && tick <= 20
		if (len(rows) == 1) != want {
			t.Fatalf("tick %d: rows=%v want present=%v", tick, ids(rows), want)
		}
	}
	if e.Evaluations() != base {
		t.Fatalf("presentation caused %d reevaluations", e.Evaluations()-base)
	}
	cq.Cancel()
	if _, err := cq.Current(0); err == nil {
		t.Fatal("cancelled query should error")
	}
}

func TestContinuousMaintainedUnderUpdate(t *testing.T) {
	db, cls := testDB(t)
	e := NewEngine(db)
	addCar(t, db, cls, "v", geom.Point{X: 0}, geom.Vector{X: 1})

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`)
	cq, err := e.Continuous(q, Options{Horizon: 100, Regions: regionP()})
	if err != nil {
		t.Fatal(err)
	}
	var notified int
	cq.Subscribe(func(*eval.Relation) { notified++ })

	// Before the update the car is predicted inside during [10,20].
	if rows, _ := cq.Current(15); len(rows) != 1 {
		t.Fatal("should be predicted inside at 15")
	}
	// At t=5 the car turns away; the prediction must be revised.
	db.Advance(5)
	if err := db.SetMotion("v", geom.Vector{Y: 1}); err != nil {
		t.Fatal(err)
	}
	if rows, _ := cq.Current(15); len(rows) != 0 {
		t.Fatal("prediction should be revised after the motion update")
	}
	if notified == 0 {
		t.Fatal("subscriber not notified")
	}
}

func TestContinuousSkipsIrrelevantUpdates(t *testing.T) {
	db, cls := testDB(t)
	other := most.MustClass("Pedestrians", true)
	if err := db.DefineClass(other); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db)
	addCar(t, db, cls, "v", geom.Point{X: 15}, geom.Vector{})

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`)
	cq, err := e.Continuous(q, Options{Horizon: 100, Regions: regionP()})
	if err != nil {
		t.Fatal(err)
	}
	_ = cq
	base := e.Evaluations()
	// Updates to another class do not trigger reevaluation.
	p, _ := most.NewObject("walker", other)
	p, _ = p.WithPosition(motion.PositionAt(geom.Point{}, 0))
	if err := db.Insert(p); err != nil {
		t.Fatal(err)
	}
	if err := db.SetMotion("walker", geom.Vector{X: 1}); err != nil {
		t.Fatal(err)
	}
	if e.Evaluations() != base {
		t.Fatalf("irrelevant updates caused %d reevaluations", e.Evaluations()-base)
	}
	// Updates to the queried class do.
	if err := db.SetMotion("v", geom.Vector{X: 1}); err != nil {
		t.Fatal(err)
	}
	if e.Evaluations() != base+1 {
		t.Fatalf("relevant update caused %d reevaluations", e.Evaluations()-base)
	}
}

func TestPersistentSpeedDoubling(t *testing.T) {
	// The paper's §2.3 example R, verbatim: speed 5 at time 0, updated to
	// 7t after one minute and 10t after another; as persistent, o is
	// retrieved at time 2; as instantaneous or continuous, never.
	db, cls := testDB(t)
	e := NewEngine(db)
	addCar(t, db, cls, "o", geom.Point{}, geom.Vector{X: 5})

	src := `RETRIEVE o FROM Vehicles o
		WHERE [x <- SPEED(o.X.POSITION)]
			EVENTUALLY WITHIN 10 SPEED(o.X.POSITION) >= 2 * x`
	q := ftl.MustParse(src)
	opts := Options{Horizon: 50}

	// Instantaneous at 0: empty.
	rows, err := e.Instantaneous(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("instantaneous should be empty, got %v", ids(rows))
	}
	pq, err := e.Persistent(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rows, _ := pq.Current(); len(rows) != 0 {
		t.Fatal("persistent should start empty")
	}
	var lastNotify []Row
	pq.Subscribe(func(r []Row) { lastNotify = r })

	db.Advance(1)
	if err := db.UpdateFunction("o", most.XPosition, motion.Linear(7)); err != nil {
		t.Fatal(err)
	}
	if rows, _ := pq.Current(); len(rows) != 0 {
		t.Fatal("7 is not double of 5 yet")
	}
	db.Advance(1)
	if err := db.UpdateFunction("o", most.XPosition, motion.Linear(10)); err != nil {
		t.Fatal(err)
	}
	rows, err = pq.Current()
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(rows); len(got) != 1 || got[0] != "o" {
		t.Fatalf("persistent answer = %v, want [o]", got)
	}
	if len(lastNotify) != 1 {
		t.Fatalf("subscriber saw %v", lastNotify)
	}
	// Instantaneous at time 2 is still empty (future speed is constant).
	rows, err = e.Instantaneous(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("instantaneous at t=2 should be empty, got %v", ids(rows))
	}
	pq.Cancel()
	if _, err := pq.Current(); err == nil {
		t.Fatal("cancelled persistent should error")
	}
}

func TestPersistentPositionHistory(t *testing.T) {
	// A persistent spatial query sees the actual past trajectory: the car
	// was inside P during [10,20] even though it later teleported away.
	db, cls := testDB(t)
	e := NewEngine(db)
	addCar(t, db, cls, "v", geom.Point{X: 0}, geom.Vector{X: 1})

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, P)`)
	pq, err := e.Persistent(q, Options{Horizon: 100, Regions: regionP()})
	if err != nil {
		t.Fatal(err)
	}
	if rows, _ := pq.Current(); len(rows) != 1 {
		t.Fatal("prediction should already satisfy EVENTUALLY")
	}
	// The car turns away at t=5, before reaching P.
	db.Advance(5)
	if err := db.SetMotion("v", geom.Vector{X: -1}); err != nil {
		t.Fatal(err)
	}
	if rows, _ := pq.Current(); len(rows) != 0 {
		t.Fatal("after turning away the anchored query should be empty")
	}
	// Later it turns back and does reach P in the actual history.
	db.Advance(5) // at x=0 heading -x... now x = 0: 5*1 - 5 = 0
	if err := db.SetMotion("v", geom.Vector{X: 2}); err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Current()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatal("after turning back the query should be satisfied again")
	}
}

func TestTriggerFiresOnRisingEdge(t *testing.T) {
	db, cls := testDB(t)
	e := NewEngine(db)
	addCar(t, db, cls, "v", geom.Point{X: 0}, geom.Vector{X: 1})

	var fired [][]string
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`)
	tr, err := e.NewTrigger(q, Options{Horizon: 100, Regions: regionP()}, func(rows []Row) {
		fired = append(fired, ids(rows))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Advance the clock, polling each tick: fires once on entry.
	for tick := db.Now(); tick <= 30; tick = db.Tick() {
		tr.Poll(tick)
	}
	if len(fired) != 1 || fired[0][0] != "v" {
		t.Fatalf("fired = %v", fired)
	}
	// Re-entry fires again.
	if err := db.SetMotion("v", geom.Vector{X: -1}); err != nil {
		t.Fatal(err)
	}
	for tick := db.Now(); tick <= 60; tick = db.Tick() {
		tr.Poll(tick)
	}
	if len(fired) != 2 {
		t.Fatalf("after re-entry fired = %v", fired)
	}
	tr.Cancel()
}

func TestEngineErrorPaths(t *testing.T) {
	db, _ := testDB(t)
	e := NewEngine(db)
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, NOWHERE)`)
	if _, err := e.Instantaneous(q, Options{}); err == nil {
		t.Error("unknown region should fail")
	}
	if _, err := e.Continuous(q, Options{}); err == nil {
		t.Error("continuous with bad query should fail at registration")
	}
	if _, err := e.Persistent(q, Options{}); err == nil {
		t.Error("persistent with bad query should fail at registration")
	}
}

func TestMotionIndexAcceleratedInside(t *testing.T) {
	db, c := testDB(t)
	e := NewEngine(db)
	ix := index.NewMotionIndex(0, 200)
	for i := 0; i < 50; i++ {
		id := most.ObjectID(fmt.Sprintf("v%02d", i))
		p := geom.Point{X: float64(i * 10), Y: 0}
		v := geom.Vector{X: 1}
		addCar(t, db, c, id, p, v)
		pos := motion.MovingFrom(p, v, 0)
		if err := ix.Insert(id, pos); err != nil {
			t.Fatal(err)
		}
	}
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, P)`)
	plainOpts := Options{Horizon: 199, Regions: regionP()}
	ixOpts := plainOpts
	ixOpts.MotionIndex = ix

	plain, err := e.InstantaneousRelation(q, plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	accel, err := e.InstantaneousRelation(q, ixOpts)
	if err != nil {
		t.Fatal(err)
	}
	pt, at := plain.Tuples(), accel.Tuples()
	if len(pt) != len(at) {
		t.Fatalf("plain %d tuples, accelerated %d", len(pt), len(at))
	}
	for i := range pt {
		if pt[i].Vals[0] != at[i].Vals[0] || !pt[i].Times.Equal(at[i].Times) {
			t.Fatalf("tuple %d differs: %v vs %v", i, pt[i], at[i])
		}
	}
}
