package dist

import (
	"testing"

	"github.com/mostdb/most/internal/faults"
	"github.com/mostdb/most/internal/temporal"
)

// These tests pin the two idempotence layers of the fenced-handoff model
// (handoff.go) under scripted faults.  Each scenario is fully
// deterministic: the partition windows are chosen around the known
// one-tick transit delay and the retry policy's timeouts, so the exact
// sequence of frames, retransmissions, abandonments and re-offers is
// forced, not sampled.

const (
	sender   = faults.NodeID("zoneA")
	receiver = faults.NodeID("zoneB")
)

// TestHandoffLostAckSameTID drops the acknowledgment after the state
// transfer applied: the sender retransmits under the same transfer ID, the
// receiver's dedup filter suppresses the duplicate frame, and the re-sent
// ack releases the sender.  Exactly one apply, despite the wire seeing the
// transfer twice.
func TestHandoffLostAckSameTID(t *testing.T) {
	net := faults.New(faults.Config{Seed: 1})
	// Offer goes out at tick 1 and lands at tick 2; the partition opens at
	// exactly tick 2, so the state transfer is applied but its ack — sent
	// from inside the partition window — is lost, as is every retransmit
	// until the window closes.
	net.AddPartition(faults.Partition{Start: 2, End: 8, GroupA: []faults.NodeID{sender}})
	policy := faults.RetryPolicy{Timeout: 2, Backoff: 1, MaxRetries: -1}

	stats, state := RunHandoffs(net, sender, receiver, policy,
		[]HandoffSpec{{Object: "car-1", Version: 1, State: 7, At: 1}},
		false, 14)

	if stats.Applied != 1 {
		t.Fatalf("applied %d times, want exactly 1 (double-apply on duplicate ack path)", stats.Applied)
	}
	if stats.DupFrames == 0 {
		t.Fatalf("no duplicate frame suppressed: the lost-ack retransmit never reached the dedup filter (stats %+v)", stats)
	}
	if stats.Retries == 0 {
		t.Fatalf("no retransmissions: the ack was not actually lost (stats %+v)", stats)
	}
	if stats.Released != 1 {
		t.Fatalf("sender released %d times, want 1 (stats %+v)", stats.Released, stats)
	}
	if stats.FenceRejects != 0 || stats.ReOffers != 0 {
		t.Fatalf("same-TID retry must be absorbed below the fence, got %+v", stats)
	}
	if got := state["car-1"]; got != (OwnedState{Version: 1, State: 7}) {
		t.Fatalf("receiver holds %+v, want version 1 state 7", got)
	}
}

// TestHandoffAbandonedReofferFenceRejected forces the transport to give up
// (tight retry cap inside a long partition) so the handoff layer re-offers
// the same transfer under a fresh transfer ID.  The receiver already
// applied the original frame, and the fresh ID sails past the dedup
// filter — only the version fence stands between the re-offer and a
// double apply.  The fence must reject it while still acknowledging, so
// the sender is released.
func TestHandoffAbandonedReofferFenceRejected(t *testing.T) {
	net := faults.New(faults.Config{Seed: 1})
	net.AddPartition(faults.Partition{Start: 2, End: 12, GroupA: []faults.NodeID{sender}})
	// One retransmission, then abandon: the original transfer dies at tick
	// 5, well inside the partition, and every re-offer until tick 12 dies
	// the same way.  The first post-heal re-offer is the one that lands.
	policy := faults.RetryPolicy{Timeout: 2, Backoff: 1, MaxRetries: 1}

	stats, state := RunHandoffs(net, sender, receiver, policy,
		[]HandoffSpec{{Object: "car-2", Version: 3, State: 11, At: 1}},
		true, 18)

	if stats.Applied != 1 {
		t.Fatalf("applied %d times, want exactly 1 (fence failed on fresh-TID re-offer)", stats.Applied)
	}
	if stats.FenceRejects == 0 {
		t.Fatalf("no fence rejection: the re-offer never exercised the version fence (stats %+v)", stats)
	}
	if stats.Abandoned == 0 || stats.ReOffers == 0 {
		t.Fatalf("scenario did not abandon and re-offer as scripted (stats %+v)", stats)
	}
	if stats.DupFrames != 0 {
		t.Fatalf("dedup filter caught the re-offer (%+v) — fresh TIDs must bypass it so the fence is what is tested", stats)
	}
	if stats.Released != 1 {
		t.Fatalf("sender released %d times, want 1: a fence rejection must still acknowledge (stats %+v)", stats.Released, stats)
	}
	if got := state["car-2"]; got != (OwnedState{Version: 3, State: 11}) {
		t.Fatalf("receiver holds %+v, want version 3 state 11", got)
	}
}

// TestHandoffStaleOfferAfterNewerVersion models the amnesiac-sender
// reorder: version 1 is offered and applied, version 2 supersedes it, and
// then version 1 is offered again (a recovered sender whose fences were
// lost re-offering from its quarantine).  The stale offer must be
// acknowledged — it is the only way the confused sender ever releases —
// but must not regress the receiver's state.
func TestHandoffStaleOfferAfterNewerVersion(t *testing.T) {
	net := faults.New(faults.Config{Seed: 1})

	stats, state := RunHandoffs(net, sender, receiver, faults.DefaultRetryPolicy,
		[]HandoffSpec{
			{Object: "car-3", Version: 1, State: 100, At: 1},
			{Object: "car-3", Version: 2, State: 200, At: 3},
			{Object: "car-3", Version: 1, State: 100, At: 5}, // stale re-offer
		},
		false, 10)

	if stats.Applied != 2 {
		t.Fatalf("applied %d times, want 2 (v1 then v2)", stats.Applied)
	}
	if stats.FenceRejects != 1 {
		t.Fatalf("fence rejected %d offers, want exactly 1 (the stale v1)", stats.FenceRejects)
	}
	if stats.Released != 3 {
		t.Fatalf("released %d transfers, want all 3 acknowledged (stale offers included)", stats.Released)
	}
	if got := state["car-3"]; got != (OwnedState{Version: 2, State: 200}) {
		t.Fatalf("receiver regressed to %+v, want version 2 state 200", got)
	}
}

// TestHandoffSeededSoak runs many versioned transfers per object through
// a lossy, delaying, duplicating network with retry-forever transport.
// Delay variance reorders offers freely; whatever order frames land in,
// the fence must leave each object at its highest offered version and
// every transfer must eventually release its sender.
func TestHandoffSeededSoak(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		net := faults.New(faults.Config{
			Seed:     seed,
			DropRate: 0.15,
			DelayMin: 1, DelayMax: 3,
			DupRate: 0.1,
		})
		policy := faults.RetryPolicy{Timeout: 2, Backoff: 2, MaxTimeout: 8, MaxRetries: -1}

		const objects, versions = 5, 4
		var script []HandoffSpec
		for o := 0; o < objects; o++ {
			for v := 1; v <= versions; v++ {
				script = append(script, HandoffSpec{
					Object:  string(rune('a' + o)),
					Version: uint64(v),
					State:   o*100 + v,
					At:      temporal.Tick(1 + v*4 + o),
				})
			}
		}

		stats, state := RunHandoffs(net, sender, receiver, policy, script, false, 160)

		if stats.Released != len(script) {
			t.Fatalf("seed %d: released %d of %d transfers — retry-forever transport left offers hanging (stats %+v)",
				seed, stats.Released, len(script), stats)
		}
		if stats.Applied+stats.FenceRejects < len(script) {
			t.Fatalf("seed %d: only %d offers reached a verdict, want >= %d (stats %+v)",
				seed, stats.Applied+stats.FenceRejects, len(script), stats)
		}
		for o := 0; o < objects; o++ {
			id := string(rune('a' + o))
			want := OwnedState{Version: versions, State: o*100 + versions}
			if got := state[id]; got != want {
				t.Fatalf("seed %d: object %s settled at %+v, want %+v", seed, id, got, want)
			}
		}
	}
}
