package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// quadScenario builds objects with a quadratic FUEL attribute (positions
// stay linear, as the model requires).
func quadScenario(r *rand.Rand, n int) *Context {
	cls := most.MustClass("Planes", true, most.AttrDef{Name: "FUEL", Kind: most.Dynamic})
	ctx := &Context{
		Now:     0,
		Horizon: 30,
		Objects: map[most.ObjectID]*most.Object{},
		Regions: map[string]geom.Polygon{},
		Params:  map[string]Val{},
		Domains: map[string][]Val{},
	}
	for i := 0; i < n; i++ {
		id := most.ObjectID(fmt.Sprintf("p%d", i))
		o, err := most.NewObject(id, cls)
		if err != nil {
			panic(err)
		}
		o, _ = o.WithPosition(motion.MovingFrom(geom.Point{X: float64(i)}, geom.Vector{X: 1}, 0))
		fuel := motion.DynamicAttr{
			Value:    float64(100 + r.Intn(100)),
			Function: motion.Accelerating(float64(-r.Intn(4)), float64(r.Intn(3)-2)*0.5),
		}
		o, err = o.WithDynamic("FUEL", fuel)
		if err != nil {
			panic(err)
		}
		ctx.Objects[id] = o
		ctx.Domains["o"] = append(ctx.Domains["o"], ObjVal(id))
	}
	return ctx
}

// TestQuadraticAttrFormulasMatchReference cross-checks FTL formulas over
// accelerating attributes against the brute-force evaluator.
func TestQuadraticAttrFormulasMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	srcs := []string{
		`RETRIEVE o FROM Planes o WHERE o.FUEL <= 80`,
		`RETRIEVE o FROM Planes o WHERE EVENTUALLY WITHIN 10 o.FUEL < 60`,
		`RETRIEVE o FROM Planes o WHERE ALWAYS FOR 5 o.FUEL >= 50`,
		`RETRIEVE o FROM Planes o WHERE o.FUEL >= 90 UNTIL o.FUEL < 90`,
		`RETRIEVE o FROM Planes o WHERE [x <- SPEED(o.FUEL)] EVENTUALLY SPEED(o.FUEL) < x - 1`,
	}
	for i := 0; i < 30; i++ {
		ctx := quadScenario(r, 1+r.Intn(3))
		src := srcs[i%len(srcs)]
		q := ftl.MustParse(src)
		got, err := EvalQuery(q, ctx)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, src, err)
		}
		want, err := ReferenceEval(q, ctx)
		if err != nil {
			t.Fatalf("case %d reference: %v", i, err)
		}
		if !relationsEqual(got, want) {
			t.Fatalf("case %d mismatch for %s:\n got: %s\nwant: %s",
				i, src, dumpRelation(got), dumpRelation(want))
		}
	}
}

// TestQuadraticSpeedIsLinear checks that SPEED of an accelerating
// attribute evaluates as a linear function of time.
func TestQuadraticSpeedIsLinear(t *testing.T) {
	ctx := quadScenario(rand.New(rand.NewSource(1)), 0)
	cls := most.MustClass("Planes2", true, most.AttrDef{Name: "FUEL", Kind: most.Dynamic})
	o, _ := most.NewObject("jet", cls)
	o, _ = o.WithPosition(motion.MovingFrom(geom.Point{}, geom.Vector{}, 0))
	// FUEL burns at 2 + t per tick (speed -2 - t): speed crosses -10 at t=8.
	o, err := o.WithDynamic("FUEL", motion.DynamicAttr{Value: 500, Function: motion.Accelerating(-2, -1)})
	if err != nil {
		t.Fatal(err)
	}
	ctx.Objects["jet"] = o
	ctx.Domains["o"] = []Val{ObjVal("jet")}
	ctx.Horizon = 20

	q := ftl.MustParse(`RETRIEVE o FROM Planes2 o WHERE SPEED(o.FUEL) <= -10`)
	rel, err := EvalQuery(q, ctx)
	if err != nil {
		t.Fatal(err)
	}
	set, ok := rel.Lookup([]Val{ObjVal("jet")})
	if !ok {
		t.Fatal("jet missing")
	}
	if !set.Equal(temporal.NewSet(temporal.Interval{Start: 8, End: 20})) {
		t.Fatalf("speed<= -10 set = %s, want [8 20]", set)
	}
}

// TestPositionsMustStayLinear asserts the model-level guard.
func TestPositionsMustStayLinear(t *testing.T) {
	cls := most.MustClass("V", true)
	o, _ := most.NewObject("v", cls)
	quad := motion.DynamicAttr{Function: motion.Accelerating(1, 1)}
	if _, err := o.WithDynamic(most.XPosition, quad); err == nil {
		t.Fatal("quadratic X.POSITION should be rejected")
	}
	if _, err := o.WithPosition(motion.Position{X: quad}); err == nil {
		t.Fatal("quadratic position should be rejected")
	}
}
