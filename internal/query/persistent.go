package query

import (
	"sync"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// Persistent is a registered persistent query at anchor time t0: a
// sequence of instantaneous queries all on the history starting at t0,
// re-run whenever the database is updated (§2.3, Figure 1(c)).  Evaluating
// it "requires saving of information about the way the database is updated
// over time": the engine replays the database's update log into synthetic
// objects whose dynamic attributes encode the actual past trajectory from
// t0, concatenated with the current implicit future.
//
// This reproduces the paper's query R: "retrieve the objects whose speed in
// the direction of the X-axis doubles within 10 minutes" is empty as an
// instantaneous or continuous query (the future history has constant
// speed), but as a persistent query it fires once the logged history shows
// the doubling.
type Persistent struct {
	id     int
	engine *Engine
	query  *ftl.Query
	opts   Options
	anchor temporal.Tick

	mu        sync.Mutex
	answer    []Row
	err       error
	listeners []func([]Row)
	cancelled bool

	// version/evaluating/pending implement the same monotonic-install and
	// coalescing scheme as Continuous: see the comment there.
	version    uint64
	evaluating bool
	pending    bool

	// classes the query ranges over: used to skip irrelevant updates.
	classes map[string]bool
}

// Persistent registers a persistent query anchored at the current time.
func (e *Engine) Persistent(q *ftl.Query, opts Options) (*Persistent, error) {
	pq := &Persistent{engine: e, query: q, opts: opts, anchor: e.db.Now(), classes: map[string]bool{}}
	for _, b := range q.Bindings {
		pq.classes[b.Class] = true
	}
	// Register before the initial evaluation, holding the coalescing loop
	// (evaluating=true), so an update committed between the initial replay
	// and the map insertion marks the handle pending and is replayed by the
	// drain below instead of being lost.
	pq.evaluating = true
	e.mu.Lock()
	e.nextID++
	pq.id = e.nextID
	e.persistent[pq.id] = pq
	e.rebuildSnapshot()
	e.mu.Unlock()
	if err := pq.evalOnce(); err != nil {
		e.mu.Lock()
		delete(e.persistent, pq.id)
		e.rebuildSnapshot()
		e.mu.Unlock()
		return nil, err
	}
	pq.drainPending()
	return pq, nil
}

// Anchor returns the time t0 the query is anchored at.
func (pq *Persistent) Anchor() temporal.Tick { return pq.anchor }

// Current returns the instantiations satisfying the query at the anchor
// state, as known from the history logged so far.
func (pq *Persistent) Current() ([]Row, error) {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	if pq.cancelled {
		return nil, errUnregistered
	}
	return pq.answer, pq.err
}

// Subscribe registers a listener invoked with the new answer after each
// reevaluation.  On a cancelled handle it reports errUnregistered,
// consistent with Current, and the listener is dropped.
func (pq *Persistent) Subscribe(fn func([]Row)) error {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	if pq.cancelled {
		return errUnregistered
	}
	pq.listeners = append(pq.listeners, fn)
	return nil
}

// Cancel unregisters the query.
func (pq *Persistent) Cancel() {
	pq.engine.mu.Lock()
	delete(pq.engine.persistent, pq.id)
	pq.engine.rebuildSnapshot()
	pq.engine.mu.Unlock()
	pq.mu.Lock()
	pq.cancelled = true
	pq.mu.Unlock()
}

// relevant reports whether an update may change the answer.  The logged
// history of a class the query does not range over cannot.
func (pq *Persistent) relevant(u most.Update) bool {
	class := updateClass(u)
	if class == "" {
		return true
	}
	return pq.classes[class]
}

// reevaluate replays the query against the updated history.  Concurrent
// calls coalesce exactly as in Continuous: one goroutine evaluates at a
// time and re-runs while updates keep arriving.
func (pq *Persistent) reevaluate() {
	pq.mu.Lock()
	pq.pending = true
	if pq.evaluating {
		pq.mu.Unlock()
		return
	}
	pq.evaluating = true
	pq.mu.Unlock()
	pq.drainPending()
}

// drainPending runs reevaluation rounds while the handle is marked pending.
// The caller must have won the evaluating flag.
func (pq *Persistent) drainPending() {
	for {
		pq.mu.Lock()
		again := pq.pending && !pq.cancelled
		pq.pending = false
		if !again {
			pq.evaluating = false
			pq.mu.Unlock()
			return
		}
		pq.mu.Unlock()
		pq.engine.reg().Counter("query.persistent.reevals").Inc()
		if err := pq.evalOnce(); err != nil {
			pq.mu.Lock()
			pq.err = err
			pq.mu.Unlock()
		}
	}
}

func (pq *Persistent) evalOnce() error {
	e := pq.engine
	reg := e.reg()
	reg.Counter("query.persistent").Inc()
	sp := reg.StartSpan("query.persistent")
	defer sp.End()
	t0 := reg.Start()
	defer reg.Histogram("query.persistent_ns").Since(t0)

	// Version before History: the replayed log is at least as new as v.
	v := e.db.Version()
	hist := sp.Child("synthesize_history")
	h := e.db.History()
	horizonEnd := pq.anchor.Add(pq.opts.horizon())
	objects := synthesizeHistory(h, pq.anchor, horizonEnd)
	hist.Annotate("objects", int64(len(objects)))
	hist.End()

	rw := sp.Child("rewrite")
	nq := ftl.NormalizeQuery(*pq.query)
	rw.End()

	ctx := &eval.Context{
		Now:             pq.anchor,
		Horizon:         pq.opts.horizon(),
		Objects:         objects,
		Regions:         pq.opts.Regions,
		Params:          pq.opts.Params,
		Domains:         map[string][]eval.Val{},
		MaxAssignStates: pq.opts.MaxAssignStates,
		BisectSamples:   pq.opts.BisectSamples,
		Parallelism:     pq.opts.Parallelism,
		Obs:             reg,
		Span:            sp,
	}
	bind := sp.Child("bind")
	err := ctx.BindDomains(&nq, eval.IDsOf(e.db))
	bind.End()
	if err != nil {
		return err
	}
	rel, err := eval.EvalQuery(&nq, ctx)
	if err != nil {
		return err
	}
	e.countEval()
	var rows []Row
	for _, vals := range rel.At(pq.anchor) {
		rows = append(rows, Row(vals))
	}
	pq.mu.Lock()
	if pq.cancelled {
		pq.mu.Unlock()
		return nil
	}
	var ls []func([]Row)
	if v >= pq.version {
		pq.version = v
		pq.answer, pq.err = rows, nil
		ls = append([]func([]Row){}, pq.listeners...)
	}
	pq.mu.Unlock()
	for _, fn := range ls {
		fn(rows)
	}
	return nil
}

// synthesizeHistory builds, for every object currently in the database, a
// synthetic revision whose dynamic attributes trace the object's *actual*
// trajectory from t0 (replayed from the update log) followed by the current
// implicit future up to horizonEnd.  Static attributes take their current
// values (a static attribute has a single value per revision; queries over
// past static values should bind them with the assignment quantifier at
// entry time instead).
func synthesizeHistory(h most.History, t0, horizonEnd temporal.Tick) map[most.ObjectID]*most.Object {
	out := make(map[most.ObjectID]*most.Object, len(h.Current()))
	for id, cur := range h.Current() {
		// Collect this object's revision changepoints in [t0, now].
		type rev struct {
			tick temporal.Tick
			obj  *most.Object
		}
		revs := []rev{}
		if o, ok := h.RevisionAt(id, t0); ok {
			revs = append(revs, rev{tick: t0, obj: o})
		}
		for _, u := range h.Updates() {
			if u.Object != id || u.Tick <= t0 || u.After == nil {
				continue
			}
			if u.Tick > h.Now() {
				break
			}
			revs = append(revs, rev{tick: u.Tick, obj: u.After})
		}
		if len(revs) == 0 {
			// Object did not exist at t0 (inserted later): anchor at its
			// first known revision.
			continue
		}
		synth := cur
		for _, def := range cur.Class().Attrs() {
			if def.Kind != most.Dynamic {
				continue
			}
			var segs []motion.Segment
			for i, r := range revs {
				from := float64(r.tick)
				to := float64(horizonEnd)
				if i+1 < len(revs) {
					to = float64(revs[i+1].tick)
				}
				if to <= from {
					continue
				}
				dyn, err := r.obj.Dynamic(def.Name)
				if err != nil {
					continue
				}
				segs = append(segs, dyn.Trajectory(from, to)...)
			}
			attr, ok := segsToDynamicAttr(segs, t0)
			if !ok {
				continue
			}
			if next, err := synth.WithDynamic(def.Name, attr); err == nil {
				synth = next
			}
		}
		out[id] = synth
	}
	return out
}

// segsToDynamicAttr folds absolute-time segments into a single DynamicAttr
// anchored at t0.  Value discontinuities between consecutive segments (an
// explicit teleport) are encoded as a sub-tick ramp, which is invisible at
// tick resolution.
func segsToDynamicAttr(segs []motion.Segment, t0 temporal.Tick) (motion.DynamicAttr, bool) {
	if len(segs) == 0 {
		return motion.DynamicAttr{}, false
	}
	const rampWidth = 1e-6
	base := float64(t0)
	v0 := segs[0].V0
	var pieces []motion.Piece
	cur := v0
	at := segs[0].T0
	for _, s := range segs {
		if s.T1 <= s.T0 {
			continue
		}
		if s.T0 > at+1e-12 {
			// Gap: hold the value flat across it.
			pieces = append(pieces, motion.Piece{Start: at - base, Slope: 0})
			at = s.T0
		}
		if d := s.V0 - cur; d > 1e-9 || d < -1e-9 {
			// Discontinuity: steep ramp just before this segment.
			pieces = append(pieces, motion.Piece{Start: (s.T0 - rampWidth) - base, Slope: d / rampWidth})
		}
		pieces = append(pieces, motion.Piece{Start: s.T0 - base, Slope: s.Slope, Accel: s.Accel})
		cur = s.ValueAt(s.T1)
		at = s.T1
	}
	// Deduplicate non-increasing starts (zero-width artifacts).
	clean := pieces[:0]
	for _, p := range pieces {
		if p.Start < 0 {
			p.Start = 0
		}
		if n := len(clean); n > 0 && p.Start <= clean[n-1].Start+1e-12 {
			clean[n-1] = motion.Piece{Start: clean[n-1].Start, Slope: p.Slope, Accel: p.Accel}
			continue
		}
		clean = append(clean, p)
	}
	f, err := motion.NewFunc(clean...)
	if err != nil {
		return motion.DynamicAttr{}, false
	}
	return motion.DynamicAttr{Value: v0, UpdateTime: t0, Function: f}, true
}
