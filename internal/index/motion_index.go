package index

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/rtree"
	"github.com/mostdb/most/internal/temporal"
)

// spanStrip is one indexed (x, y, time) box: a time-bounded piece of one
// object's planar trajectory, stored as the R-tree value for inline
// verification.
type spanStrip struct {
	id   most.ObjectID
	span motion.Span
}

type motionRecord struct {
	strip spanStrip
	rect  rtree.Rect
}

// MotionIndex indexes objects moving in the XY plane over a finite time
// horizon, per §4: "for an object moving in 2-dimensional space, the above
// scheme can be mimicked using an index of 3-dimensional space, with the
// third dimension being, obviously, time."  Each linear span of an object's
// position is sliced into strips contributing one (x, y, t) box each.
//
// MotionIndex is safe for concurrent use: probes take a read lock and run
// in parallel; mutators take the write lock.  InsertBatch releases the
// write lock between chunks so probes interleave with a bulk load.
type MotionIndex struct {
	mu      sync.RWMutex
	base    temporal.Tick
	horizon temporal.Tick
	slice   float64
	tree    *rtree.Tree[spanStrip]
	objects map[most.ObjectID][]motionRecord

	// obsv holds the pre-resolved observability instruments (see obs.go);
	// nil means uninstrumented.
	obsv atomic.Pointer[ixObs]
}

// NewMotionIndex returns an empty motion index covering [base, base+T).
func NewMotionIndex(base, T temporal.Tick) *MotionIndex {
	if T <= 0 {
		panic("index: horizon must be positive")
	}
	slice := float64(T) / 64
	if slice < 1 {
		slice = 1
	}
	return &MotionIndex{
		base:    base,
		horizon: T,
		slice:   slice,
		tree:    rtree.New[spanStrip](3, 16),
		objects: map[most.ObjectID][]motionRecord{},
	}
}

// End returns the exclusive end of the indexed window.
func (ix *MotionIndex) End() temporal.Tick {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.end()
}

// end is End without the lock, for methods already holding it.
func (ix *MotionIndex) end() temporal.Tick { return ix.base.Add(ix.horizon) }

// Len returns the number of indexed objects.
func (ix *MotionIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.objects)
}

// NeedsRebuild reports whether the window has been outrun.
func (ix *MotionIndex) NeedsRebuild(t temporal.Tick) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return t >= ix.end()
}

// Insert indexes an object's position over the window.
func (ix *MotionIndex) Insert(id most.ObjectID, pos motion.Position) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.objects[id]; dup {
		return fmt.Errorf("index: object %s already indexed", id)
	}
	ix.insertFrom(id, pos, float64(ix.base))
	ix.obsv.Load().insert(1)
	return nil
}

// MotionEntry is one object of a batched motion-index insert.
type MotionEntry struct {
	ID  most.ObjectID
	Pos motion.Position
}

// InsertBatch indexes many objects at once: strip records are computed
// under the read lock and applied in chunks of insertChunk objects per
// write-lock hold, so concurrent probes interleave with the bulk load.
// Aborts with an error if the window is rebuilt mid-batch.
func (ix *MotionIndex) InsertBatch(entries []MotionEntry) error {
	ix.mu.RLock()
	base := ix.base
	for _, e := range entries {
		if _, dup := ix.objects[e.ID]; dup {
			ix.mu.RUnlock()
			return fmt.Errorf("index: object %s already indexed", e.ID)
		}
	}
	recs := make([][]motionRecord, len(entries))
	for i, e := range entries {
		recs[i] = ix.makeRecords(e.ID, e.Pos, float64(base))
	}
	ix.mu.RUnlock()

	for start := 0; start < len(entries); start += insertChunk {
		chunkEnd := start + insertChunk
		if chunkEnd > len(entries) {
			chunkEnd = len(entries)
		}
		ix.mu.Lock()
		if ix.base != base {
			ix.mu.Unlock()
			return fmt.Errorf("index: window rebuilt during batch insert")
		}
		for i := start; i < chunkEnd; i++ {
			id := entries[i].ID
			if _, dup := ix.objects[id]; dup {
				ix.mu.Unlock()
				return fmt.Errorf("index: object %s already indexed", id)
			}
			for _, rec := range recs[i] {
				ix.tree.Insert(rec.rect, rec.strip)
			}
			ix.objects[id] = append(ix.objects[id], recs[i]...)
		}
		ix.mu.Unlock()
		ix.obsv.Load().insert(chunkEnd - start)
	}
	return nil
}

// makeRecords builds the strip records of one trajectory without touching
// the tree.  Callers hold the lock (either mode).
func (ix *MotionIndex) makeRecords(id most.ObjectID, pos motion.Position, from float64) []motionRecord {
	spans := pos.MovingPointsOver(from, float64(ix.end()))
	var out []motionRecord
	for _, sp := range spans {
		t0 := sp.From
		for {
			t1 := t0 + ix.slice
			if t1 > sp.To {
				t1 = sp.To
			}
			piece := motion.Span{From: t0, To: t1, MP: sp.MP}
			out = append(out, motionRecord{strip: spanStrip{id: id, span: piece}, rect: spanRect(piece)})
			if t1 >= sp.To {
				break
			}
			t0 = t1
		}
	}
	return out
}

func spanRect(sp motion.Span) rtree.Rect {
	p0 := sp.MP.At(sp.From)
	p1 := sp.MP.At(sp.To)
	return rtree.Rect3(
		min(p0.X, p1.X), min(p0.Y, p1.Y), sp.From,
		max(p0.X, p1.X), max(p0.Y, p1.Y), sp.To,
	)
}

func (ix *MotionIndex) insertFrom(id most.ObjectID, pos motion.Position, from float64) {
	recs := ix.makeRecords(id, pos, from)
	for _, rec := range recs {
		ix.tree.Insert(rec.rect, rec.strip)
	}
	ix.objects[id] = append(ix.objects[id], recs...)
}

// Remove drops an object.
func (ix *MotionIndex) Remove(id most.ObjectID) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	recs, ok := ix.objects[id]
	if !ok {
		return false
	}
	for _, rec := range recs {
		ix.tree.Delete(rec.rect, rec.strip)
	}
	delete(ix.objects, id)
	return true
}

// Update replaces the object's trajectory from time t on (a motion-vector
// update).
func (ix *MotionIndex) Update(id most.ObjectID, pos motion.Position, t temporal.Tick) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	recs, ok := ix.objects[id]
	if !ok {
		return fmt.Errorf("index: object %s not indexed", id)
	}
	at := float64(t)
	kept := recs[:0]
	for _, rec := range recs {
		if rec.strip.span.To <= at {
			kept = append(kept, rec)
			continue
		}
		ix.tree.Delete(rec.rect, rec.strip)
		if rec.strip.span.From < at {
			trunc := motion.Span{From: rec.strip.span.From, To: at, MP: rec.strip.span.MP}
			nrec := motionRecord{strip: spanStrip{id: id, span: trunc}, rect: spanRect(trunc)}
			ix.tree.Insert(nrec.rect, nrec.strip)
			kept = append(kept, nrec)
		}
	}
	ix.objects[id] = kept
	start := at
	if start < float64(ix.base) {
		start = float64(ix.base)
	}
	ix.insertFrom(id, pos, start)
	ix.obsv.Load().update()
	return nil
}

// CandidatesInRect returns the distinct ids whose trajectory boxes
// intersect the spatial rectangle during [t0, t1].
func (ix *MotionIndex) CandidatesInRect(r geom.Rect, t0, t1 float64) []most.ObjectID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	q := rtree.Rect3(r.Min.X, r.Min.Y, t0, r.Max.X, r.Max.Y, t1)
	seen := map[most.ObjectID]bool{}
	var out []most.ObjectID
	ix.tree.Search(q, func(_ rtree.Rect, s spanStrip) bool {
		if !seen[s.id] {
			seen[s.id] = true
			out = append(out, s.id)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	ix.obsv.Load().probe(len(out))
	return out
}

// InsidePolygonDuring answers "retrieve the objects that will be inside
// polygon P at some time in [t0, t1]": an index probe with the polygon's
// bounding box followed by the exact kinetic check on the hit strips.
func (ix *MotionIndex) InsidePolygonDuring(pg geom.Polygon, t0, t1 float64) []ContinuousAnswer {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	box := pg.Bounds()
	q := rtree.Rect3(box.Min.X, box.Min.Y, t0, box.Max.X, box.Max.Y, t1)
	hits := map[most.ObjectID]geom.RealSet{}
	ix.tree.Search(q, func(_ rtree.Rect, s spanStrip) bool {
		from, to := s.span.From, s.span.To
		if from < t0 {
			from = t0
		}
		if to > t1 {
			to = t1
		}
		if from > to {
			return true
		}
		in := geom.InsideTimes(s.span.MP, pg, from, to)
		if !in.IsEmpty() {
			hits[s.id] = hits[s.id].Union(in)
		}
		return true
	})
	ids := make([]most.ObjectID, 0, len(hits))
	for id := range hits {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]ContinuousAnswer, 0, len(ids))
	for _, id := range ids {
		out = append(out, ContinuousAnswer{ID: id, Times: hits[id]})
	}
	ix.obsv.Load().probe(len(out))
	return out
}

// Rebuild reconstructs the motion index for a new window, bulk-loading the
// R-tree (STR packing).
func (ix *MotionIndex) Rebuild(base temporal.Tick, positions map[most.ObjectID]motion.Position) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.base = base
	ix.objects = make(map[most.ObjectID][]motionRecord, len(positions))
	ids := make([]most.ObjectID, 0, len(positions))
	for id := range positions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var rects []rtree.Rect
	var vals []spanStrip
	for _, id := range ids {
		recs := ix.makeRecords(id, positions[id], float64(base))
		ix.objects[id] = recs
		for _, rec := range recs {
			rects = append(rects, rec.rect)
			vals = append(vals, rec.strip)
		}
	}
	ix.tree = rtree.New[spanStrip](3, 16)
	ix.tree.BulkLoad(rects, vals)
	ix.obsv.Load().rebuild()
}
