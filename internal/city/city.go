package city

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/workload"
)

// The three spatial classes a city scenario populates.
var (
	// CarClass is the mass population: commuters that follow roads.
	CarClass = most.MustClass("Cars", true,
		most.AttrDef{Name: "HOME", Kind: most.Static},
	)
	// BusClass is a small tracked fleet on fixed perimeter loops; its
	// size is independent of Spec.Cars, so join templates over it stay
	// cheap at any scale.
	BusClass = most.MustClass("Buses", true,
		most.AttrDef{Name: "PLATE", Kind: most.Static},
		most.AttrDef{Name: "ROUTE", Kind: most.Static},
	)
	// POIClass holds the stationary points of interest.
	POIClass = most.MustClass("POIs", true,
		most.AttrDef{Name: "NAME", Kind: most.Static},
		most.AttrDef{Name: "KIND", Kind: most.Static},
		most.AttrDef{Name: "DISTRICT", Kind: most.Static},
	)
)

// Spec parameterizes a city.  The zero value of every field except Seed
// selects a documented default (withDefaults); generation is a pure
// function of the complete Spec (see the package comment's seeding
// contract).
type Spec struct {
	Seed int64

	// Road network: GridW x GridH intersections spaced Block apart.
	GridW, GridH int
	Block        float64

	// Districts tile the grid DistrictsX x DistrictsY; each carries a
	// kind (downtown/residential/commercial/industrial) that weights
	// where cars live and where they drive to.
	DistrictsX, DistrictsY int
	POIsPerDistrict        int

	// Population.
	Cars  int
	Buses int

	// Ticks is the schedule window departures are drawn from; Horizon
	// is the query window the derived catalog templates use.
	Ticks   temporal.Tick
	Horizon temporal.Tick

	// TurnProb is the probability a car switches street axis at an
	// intersection when both axes still advance it toward its
	// destination (higher = more motion-vector updates per trip).
	TurnProb float64
	// ReturnFrac is the fraction of cars that make a return trip after
	// dwelling at their destination.
	ReturnFrac float64

	// Per-tick speed range cars draw from; buses run at the midpoint.
	SpeedMin, SpeedMax float64

	// NearRadius is the radius of the proximity ring polygon the
	// catalog places around each POI.
	NearRadius float64
}

func (s Spec) withDefaults() Spec {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&s.GridW, 24)
	def(&s.GridH, 24)
	deff(&s.Block, 100)
	def(&s.DistrictsX, 4)
	def(&s.DistrictsY, 4)
	def(&s.POIsPerDistrict, 3)
	def(&s.Cars, 2000)
	def(&s.Buses, 24)
	if s.Ticks == 0 {
		s.Ticks = 120
	}
	if s.Horizon == 0 {
		s.Horizon = 60
	}
	deff(&s.TurnProb, 0.25)
	deff(&s.ReturnFrac, 0.4)
	deff(&s.SpeedMin, 15)
	deff(&s.SpeedMax, 45)
	deff(&s.NearRadius, 120)
	return s
}

// District is one tile of the city with its kind and boundary polygon.
type District struct {
	Name   string // the region name range templates reference (D0, D1, ...)
	Kind   string // downtown | residential | commercial | industrial
	Bounds geom.Rect
	Poly   geom.Polygon
	// grid ranges (inclusive) of the intersections the district covers
	gx0, gx1, gy0, gy1 int
}

// POI is a stationary point of interest on a road edge.
type POI struct {
	Name     string // object NAME attribute (poi-<district>-<i>)
	Region   string // the proximity-ring region name (P0, P1, ...)
	Kind     string
	District string
	Loc      geom.Point
}

// Car describes one commuter: origin/destination intersections, the
// rush-hour departure, and (optionally) a return trip.
type Car struct {
	ID     most.ObjectID
	Home   string // district name
	Origin geom.Point
	Dest   geom.Point
	Depart temporal.Tick
	Return temporal.Tick // 0 = one-way
	Speed  float64
}

// BusLine is one fixed loop around a district perimeter.
type BusLine struct {
	Plate    string
	District string
	Start    geom.Point
	Depart   temporal.Tick
	Speed    float64
}

// City is a fully generated scenario: geometry, fleets, and the seeded
// motion-vector schedule that drives them.
type City struct {
	Spec      Spec // normalized (defaults applied)
	Districts []District
	POIs      []POI
	Cars      []Car
	Buses     []BusLine
	// Events is the complete update schedule over [1, Spec.Ticks+],
	// sorted by (tick, object): every departure, re-route at an
	// intersection, and arrival (zero vector = parked).
	Events []workload.UpdateEvent
}

// Generate builds the city deterministically from spec (see the package
// seeding contract).
func Generate(spec Spec) (*City, error) {
	s := spec.withDefaults()
	if s.GridW < 2 || s.GridH < 2 {
		return nil, fmt.Errorf("city: grid must be at least 2x2 intersections (got %dx%d)", s.GridW, s.GridH)
	}
	if s.DistrictsX > s.GridW-1 || s.DistrictsY > s.GridH-1 {
		return nil, fmt.Errorf("city: %dx%d districts need at least %dx%d blocks",
			s.DistrictsX, s.DistrictsY, s.DistrictsX, s.DistrictsY)
	}
	if s.SpeedMin <= 0 || s.SpeedMax < s.SpeedMin {
		return nil, fmt.Errorf("city: invalid speed range [%g, %g]", s.SpeedMin, s.SpeedMax)
	}
	c := &City{Spec: s}

	// Independent derived streams: layout, fleet, schedule.  Adding a
	// consumer to one stream never perturbs the others.
	layout := rand.New(rand.NewSource(s.Seed*1000003 + 1))
	fleet := rand.New(rand.NewSource(s.Seed*1000003 + 2))

	c.generateDistricts(layout)
	c.generatePOIs(layout)
	c.generateCars(fleet)
	c.generateBuses()
	c.generateEvents()
	return c, nil
}

func (c *City) point(gx, gy int) geom.Point {
	return geom.Point{X: float64(gx) * c.Spec.Block, Y: float64(gy) * c.Spec.Block}
}

// districtBoundary returns the i-th grid boundary when n blocks split
// into parts districts.
func boundary(i, parts, blocks int) int { return i * blocks / parts }

func (c *City) generateDistricts(r *rand.Rand) {
	s := c.Spec
	bx, by := s.GridW-1, s.GridH-1
	kinds := []string{"residential", "residential", "commercial", "industrial"}
	cx, cy := s.DistrictsX/2, s.DistrictsY/2
	for b := 0; b < s.DistrictsY; b++ {
		for a := 0; a < s.DistrictsX; a++ {
			d := District{
				Name: fmt.Sprintf("D%d", len(c.Districts)),
				gx0:  boundary(a, s.DistrictsX, bx),
				gx1:  boundary(a+1, s.DistrictsX, bx),
				gy0:  boundary(b, s.DistrictsY, by),
				gy1:  boundary(b+1, s.DistrictsY, by),
			}
			if a == cx && b == cy {
				d.Kind = "downtown"
			} else {
				d.Kind = kinds[r.Intn(len(kinds))]
			}
			lo := c.point(d.gx0, d.gy0)
			hi := c.point(d.gx1, d.gy1)
			d.Bounds = geom.Rect{Min: lo, Max: hi}
			d.Poly = geom.RectPolygon(lo.X, lo.Y, hi.X, hi.Y)
			c.Districts = append(c.Districts, d)
		}
	}
}

func (c *City) generatePOIs(r *rand.Rand) {
	kinds := []string{"station", "fuel", "food", "park", "clinic"}
	for di := range c.Districts {
		d := &c.Districts[di]
		for i := 0; i < c.Spec.POIsPerDistrict; i++ {
			// A random road edge inside the district, a fractional
			// offset along it: POIs sit on streets, not in blocks.
			gx := d.gx0 + r.Intn(max(1, d.gx1-d.gx0))
			gy := d.gy0 + r.Intn(max(1, d.gy1-d.gy0))
			p := c.point(gx, gy)
			frac := 0.2 + 0.6*r.Float64()
			if r.Intn(2) == 0 {
				p.X += frac * c.Spec.Block
			} else {
				p.Y += frac * c.Spec.Block
			}
			kind := kinds[0]
			if i > 0 {
				kind = kinds[r.Intn(len(kinds))]
			}
			c.POIs = append(c.POIs, POI{
				Name:     fmt.Sprintf("poi-%d-%d", di, i),
				Region:   fmt.Sprintf("P%d", len(c.POIs)),
				Kind:     kind,
				District: d.Name,
				Loc:      p,
			})
		}
	}
}

// homeWeight and destWeight steer commuting: people live in residential
// districts and drive downtown/commercial.
func homeWeight(kind string) int {
	switch kind {
	case "residential":
		return 4
	case "downtown":
		return 2
	default:
		return 1
	}
}

func destWeight(kind string) int {
	switch kind {
	case "downtown", "commercial":
		return 3
	default:
		return 1
	}
}

// pickWeighted picks an index from weights (sum > 0) using r.
func pickWeighted(r *rand.Rand, weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	n := r.Intn(total)
	for i, w := range weights {
		if n < w {
			return i
		}
		n -= w
	}
	return len(weights) - 1
}

// departure samples the rush-hour arrival curve: most cars leave around
// the morning peak at ~28% of the window, the rest trickle out over the
// first half.
func departure(r *rand.Rand, ticks temporal.Tick) temporal.Tick {
	T := float64(ticks)
	var t float64
	if r.Float64() < 0.7 {
		t = r.NormFloat64()*0.10*T + 0.28*T
	} else {
		t = 1 + r.Float64()*0.5*T
	}
	if t < 1 {
		t = 1
	}
	if t > 0.6*T {
		t = 0.6 * T
	}
	return temporal.Tick(math.Round(t))
}

func (c *City) generateCars(r *rand.Rand) {
	s := c.Spec
	homes := make([]int, len(c.Districts))
	dests := make([]int, len(c.Districts))
	for i, d := range c.Districts {
		homes[i] = homeWeight(d.Kind)
		dests[i] = destWeight(d.Kind)
	}
	for i := 0; i < s.Cars; i++ {
		hd := &c.Districts[pickWeighted(r, homes)]
		gx := hd.gx0 + r.Intn(hd.gx1-hd.gx0+1)
		gy := hd.gy0 + r.Intn(hd.gy1-hd.gy0+1)

		// Destination: the intersection nearest a POI in a (usually
		// different) attracting district.
		poi := c.POIs[0]
		for tries := 0; ; tries++ {
			dd := pickWeighted(r, dests)
			cand := c.poisOf(dd)
			if len(cand) == 0 {
				continue
			}
			poi = cand[r.Intn(len(cand))]
			if poi.District != hd.Name || tries >= 3 {
				break
			}
		}
		dgx := int(math.Round(poi.Loc.X / s.Block))
		dgy := int(math.Round(poi.Loc.Y / s.Block))

		car := Car{
			ID:     most.ObjectID(fmt.Sprintf("car-%06d", i)),
			Home:   hd.Name,
			Origin: c.point(gx, gy),
			Dest:   c.point(dgx, dgy),
			Depart: departure(r, s.Ticks),
			Speed:  s.SpeedMin + r.Float64()*(s.SpeedMax-s.SpeedMin),
		}
		if r.Float64() < s.ReturnFrac {
			// Dwell, then head home in the evening wave.
			dwell := temporal.Tick(math.Round((0.2 + 0.2*r.Float64()) * float64(s.Ticks)))
			car.Return = car.Depart + dwell
		}
		c.Cars = append(c.Cars, car)
	}
}

// poisOf returns the POIs of district index di.
func (c *City) poisOf(di int) []POI {
	name := c.Districts[di].Name
	var out []POI
	for _, p := range c.POIs {
		if p.District == name {
			out = append(out, p)
		}
	}
	return out
}

func (c *City) generateBuses() {
	s := c.Spec
	speed := 0.5 * (s.SpeedMin + s.SpeedMax)
	for i := 0; i < s.Buses; i++ {
		d := c.Districts[i%len(c.Districts)]
		c.Buses = append(c.Buses, BusLine{
			Plate:    fmt.Sprintf("bus-%03d", i),
			District: d.Name,
			Start:    d.Bounds.Min,
			Depart:   1 + temporal.Tick(i%5),
			Speed:    speed,
		})
	}
}

// generateEvents compiles every trip to motion-vector updates.  Cars and
// buses consume one private rand stream each (derived from Seed and the
// unit's index), so a unit's route never depends on fleet size.
func (c *City) generateEvents() {
	var events []workload.UpdateEvent
	for i := range c.Cars {
		r := rand.New(rand.NewSource(c.Spec.Seed*1000003 + 10007*int64(i) + 3))
		events = append(events, c.carEvents(&c.Cars[i], r)...)
	}
	for i := range c.Buses {
		events = append(events, c.busEvents(&c.Buses[i])...)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Tick != events[j].Tick {
			return events[i].Tick < events[j].Tick
		}
		return events[i].Object < events[j].Object
	})
	c.Events = events
}

// carEvents compiles one car's trip(s): a staircase route along the
// grid, re-deciding the street axis at every intersection (TurnProb),
// with consecutive same-direction blocks merged into a single segment —
// a motion-vector update happens only when the vector actually changes,
// the MOST premise.
func (c *City) carEvents(car *Car, r *rand.Rand) []workload.UpdateEvent {
	out := c.tripEvents(car.ID, car.Origin, car.Dest, car.Depart, car.Speed, r)
	if car.Return > 0 {
		back := car.Return
		if len(out) > 0 {
			if last := out[len(out)-1].Tick; back <= last {
				back = last + 1
			}
		}
		out = append(out, c.tripEvents(car.ID, car.Dest, car.Origin, back, car.Speed, r)...)
	}
	return out
}

// tripEvents walks the grid from origin to dest starting at depart.
// Velocities are chosen so every segment lands exactly on its target
// intersection at an integer tick; the trailing event parks the object
// (zero vector).
func (c *City) tripEvents(id most.ObjectID, origin, dest geom.Point, depart temporal.Tick, speed float64, r *rand.Rand) []workload.UpdateEvent {
	s := c.Spec
	gx := int(math.Round(origin.X / s.Block))
	gy := int(math.Round(origin.Y / s.Block))
	dgx := int(math.Round(dest.X / s.Block))
	dgy := int(math.Round(dest.Y / s.Block))
	if gx == dgx && gy == dgy {
		return nil
	}

	// Walk intersections, merging straight runs.
	type seg struct {
		dx, dy  int // unit direction
		nblocks int
	}
	var segs []seg
	alongX := r.Intn(2) == 0
	for gx != dgx || gy != dgy {
		needX, needY := gx != dgx, gy != dgy
		switch {
		case needX && needY:
			if r.Float64() < s.TurnProb {
				alongX = !alongX
			}
		case needX:
			alongX = true
		default:
			alongX = false
		}
		var dx, dy int
		if alongX {
			dx = sign(dgx - gx)
		} else {
			dy = sign(dgy - gy)
		}
		if n := len(segs); n > 0 && segs[n-1].dx == dx && segs[n-1].dy == dy {
			segs[n-1].nblocks++
		} else {
			segs = append(segs, seg{dx: dx, dy: dy, nblocks: 1})
		}
		gx += dx
		gy += dy
	}

	var out []workload.UpdateEvent
	t := depart
	for _, sg := range segs {
		length := float64(sg.nblocks) * s.Block
		dur := temporal.Tick(math.Ceil(length / speed))
		if dur < 1 {
			dur = 1
		}
		v := geom.Vector{
			X: float64(sg.dx) * length / float64(dur),
			Y: float64(sg.dy) * length / float64(dur),
		}
		out = append(out, workload.UpdateEvent{Tick: t, Object: id, Vector: v})
		t += dur
	}
	out = append(out, workload.UpdateEvent{Tick: t, Object: id, Vector: geom.Vector{}})
	return out
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// busEvents compiles one bus line: counter-clockwise laps of its
// district perimeter for the whole window.
func (c *City) busEvents(b *BusLine) []workload.UpdateEvent {
	d := c.district(b.District)
	w := d.Bounds.Max.X - d.Bounds.Min.X
	h := d.Bounds.Max.Y - d.Bounds.Min.Y
	legs := []struct {
		dx, dy float64
		length float64
	}{
		{1, 0, w}, {0, 1, h}, {-1, 0, w}, {0, -1, h},
	}
	var out []workload.UpdateEvent
	t := b.Depart
	id := most.ObjectID(b.Plate)
	for t <= c.Spec.Ticks {
		for _, leg := range legs {
			dur := temporal.Tick(math.Ceil(leg.length / b.Speed))
			if dur < 1 {
				dur = 1
			}
			v := geom.Vector{
				X: leg.dx * leg.length / float64(dur),
				Y: leg.dy * leg.length / float64(dur),
			}
			out = append(out, workload.UpdateEvent{Tick: t, Object: id, Vector: v})
			t += dur
			if t > c.Spec.Ticks {
				break
			}
		}
	}
	out = append(out, workload.UpdateEvent{Tick: t, Object: id, Vector: geom.Vector{}})
	return out
}

func (c *City) district(name string) *District {
	for i := range c.Districts {
		if c.Districts[i].Name == name {
			return &c.Districts[i]
		}
	}
	panic("city: unknown district " + name)
}

// Database materializes the city at tick 0: every car parked at its
// origin, every bus at its loop start, every POI stationary.
func (c *City) Database() (*most.Database, error) {
	db := most.NewDatabase()
	for _, cls := range []*most.Class{CarClass, BusClass, POIClass} {
		if err := db.DefineClass(cls); err != nil {
			return nil, err
		}
	}
	for i := range c.Cars {
		car := &c.Cars[i]
		o, err := most.NewObject(car.ID, CarClass)
		if err != nil {
			return nil, err
		}
		if o, err = o.WithStatic("HOME", most.Str(car.Home)); err != nil {
			return nil, err
		}
		if o, err = o.WithPosition(motion.MovingFrom(car.Origin, geom.Vector{}, 0)); err != nil {
			return nil, err
		}
		if err := db.Insert(o); err != nil {
			return nil, err
		}
	}
	for i := range c.Buses {
		b := &c.Buses[i]
		o, err := most.NewObject(most.ObjectID(b.Plate), BusClass)
		if err != nil {
			return nil, err
		}
		if o, err = o.WithStatic("PLATE", most.Str(b.Plate)); err != nil {
			return nil, err
		}
		if o, err = o.WithStatic("ROUTE", most.Str(b.District)); err != nil {
			return nil, err
		}
		if o, err = o.WithPosition(motion.MovingFrom(b.Start, geom.Vector{}, 0)); err != nil {
			return nil, err
		}
		if err := db.Insert(o); err != nil {
			return nil, err
		}
	}
	for i := range c.POIs {
		p := &c.POIs[i]
		o, err := most.NewObject(most.ObjectID(p.Name), POIClass)
		if err != nil {
			return nil, err
		}
		if o, err = o.WithStatic("NAME", most.Str(p.Name)); err != nil {
			return nil, err
		}
		if o, err = o.WithStatic("KIND", most.Str(p.Kind)); err != nil {
			return nil, err
		}
		if o, err = o.WithStatic("DISTRICT", most.Str(p.District)); err != nil {
			return nil, err
		}
		if o, err = o.WithPosition(motion.PositionAt(p.Loc, 0)); err != nil {
			return nil, err
		}
		if err := db.Insert(o); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Objects returns the total object population (cars + buses + POIs).
func (c *City) Objects() int { return len(c.Cars) + len(c.Buses) + len(c.POIs) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
