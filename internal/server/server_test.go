package server

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/wire"
	"github.com/mostdb/most/internal/workload"
)

// startTestServer serves a fresh n-vehicle fleet on a loopback listener
// and returns the server plus its address.
func startTestServer(t *testing.T, n int, cfg Config) (*Server, string) {
	t.Helper()
	db, err := workload.Fleet(workload.FleetSpec{
		N:        n,
		Region:   geom.Rect{Max: geom.Point{X: 100, Y: 100}},
		MaxSpeed: 2,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := query.NewEngine(db)
	if cfg.Reg != nil {
		db.Instrument(cfg.Reg)
		eng.Instrument(cfg.Reg)
	}
	if cfg.BaseOptions.Horizon == 0 {
		cfg.BaseOptions.Horizon = 50
	}
	if cfg.BaseOptions.Regions == nil {
		cfg.BaseOptions.Regions = map[string]geom.Polygon{"P": geom.RectPolygon(20, 20, 70, 70)}
	}
	srv := New(db, eng, cfg)
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, srv.Addr().String()
}

func vid(i int) string { return fmt.Sprintf("car-%05d", i) }

func TestServerRoundTrip(t *testing.T) {
	reg := obs.New()
	srv, addr := startTestServer(t, 10, Config{Reg: reg})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	now, rows, err := c.Query(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`, 50)
	if err != nil {
		t.Fatal(err)
	}
	if now != srv.state().db.Now() {
		t.Fatalf("query now = %d, server now = %d", now, srv.state().db.Now())
	}
	t.Logf("query: %d rows at t=%d", len(rows), now)

	// Batched updates apply in order, once.
	resp, err := c.UpdateBatch([]wire.UpdateOp{
		{Op: wire.OpSetMotion, ID: vid(0), VX: 1, VY: 0},
		{Op: wire.OpSetMotion, ID: vid(1), VX: 0, VY: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 2 {
		t.Fatalf("applied = %d, want 2", resp.Applied)
	}
	if resp.Version != srv.state().db.Version() {
		t.Fatalf("version = %d, db version = %d", resp.Version, srv.state().db.Version())
	}

	// A bad op reports an error and stops the batch.
	if _, err := c.UpdateBatch([]wire.UpdateOp{
		{Op: wire.OpSetMotion, ID: "no-such-object", VX: 1, VY: 0},
	}); err == nil {
		t.Fatal("batch against missing object succeeded")
	}

	// Clock advance is visible to subsequent queries.
	tick, err := c.Advance(3)
	if err != nil {
		t.Fatal(err)
	}
	if want := srv.state().db.Now(); tick != want {
		t.Fatalf("advance returned %d, server at %d", tick, want)
	}

	objs, err := c.Objects("Vehicles")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs.Objects) != 10 {
		t.Fatalf("objects = %d, want 10", len(objs.Objects))
	}
	if !objs.Objects[0].HasPos {
		t.Fatal("vehicle without position")
	}

	// Instruments moved.
	snap := reg.Snapshot()
	if snap.Counters["server.connections_total"] < 1 {
		t.Fatal("no connections counted")
	}
	if snap.Histograms["server.op_ns.query"].Count < 1 {
		t.Fatal("no query latency observed")
	}
	if snap.Histograms["server.apply_ns"].Count < 1 {
		t.Fatal("no apply latency observed")
	}
}

// parkedInsert builds an OpInsert for a fresh vehicle parked at (x, y).
func parkedInsert(t *testing.T, id string, x, y float64) wire.UpdateOp {
	t.Helper()
	o, err := most.NewObject(most.ObjectID(id), workload.VehicleClass)
	if err != nil {
		t.Fatal(err)
	}
	if o, err = o.WithStatic("PRICE", most.Float(1)); err != nil {
		t.Fatal(err)
	}
	if o, err = o.WithPosition(motion.MovingFrom(geom.Point{X: x, Y: y}, geom.Vector{}, 0)); err != nil {
		t.Fatal(err)
	}
	data, err := most.EncodeObjectJSON(o)
	if err != nil {
		t.Fatal(err)
	}
	return wire.UpdateOp{Op: wire.OpInsert, ID: id, Object: data}
}

func TestServerSubscription(t *testing.T) {
	srv, addr := startTestServer(t, 6, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sub, err := c.Subscribe(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`, 50)
	if err != nil {
		t.Fatal(err)
	}
	_, seq0, err := sub.Answer()
	if err != nil {
		t.Fatal(err)
	}

	// A deterministically answer-changing update triggers a maintenance
	// round and a push: inserting a fresh vehicle parked inside P adds a
	// tuple no matter where the existing fleet is.  (A motion change on an
	// existing car is no longer guaranteed to push — it may be skipped as
	// spatially irrelevant or suppressed as a no-change install.)
	if _, err := c.UpdateBatch([]wire.UpdateOp{parkedInsert(t, "car-fresh", 25, 25)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		_, seq, err := sub.Answer()
		if err != nil {
			t.Fatal(err)
		}
		if seq > seq0 {
			break
		}
		select {
		case <-sub.Updates():
		case <-deadline:
			t.Fatal("no notify within 5s of a relevant update")
		}
	}

	// The pushed answer matches the engine's materialized relation.
	st := srv.state()
	// Reach through the engine: a second in-process evaluation must agree
	// with what the wire carried.
	rows, err := sub.Current(st.db.Now())
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.eng.Query(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`,
		query.Options{Horizon: 50, Regions: srv.cfg.BaseOptions.Regions})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Fatalf("subscription presents %d rows, engine %d", len(rows), len(want))
	}

	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if srv.m.subscriptions.Value() != 0 {
		t.Fatalf("subscriptions gauge = %d after close", srv.m.subscriptions.Value())
	}
}

func TestServerSnapshotSaveLoad(t *testing.T) {
	_, addr := startTestServer(t, 5, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data, err := c.SnapshotSave()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := most.LoadSnapshotJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != 5 {
		t.Fatalf("snapshot holds %d objects, want 5", restored.Count())
	}

	// A live subscription ends with a SubClosed push when the database is
	// replaced.
	sub, err := c.Subscribe(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`, 50)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.SnapshotLoad(data)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Objects != 5 {
		t.Fatalf("load reports %d objects, want 5", resp.Objects)
	}
	select {
	case <-sub.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("subscription not closed by snapshot load")
	}
	// Queries keep working against the swapped state.
	if _, _, err := c.Query(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`, 50); err != nil {
		t.Fatal(err)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	srv, addr := startTestServer(t, 5, Config{})
	c, err := client.Dial(addr, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The drained server refuses new work.
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded after shutdown")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	srv, addr := startTestServer(t, 3, Config{})
	_ = srv
	// A raw connection spewing non-protocol bytes is dropped without
	// taking the server down.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	buf := make([]byte, 1024)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, err := conn.Read(buf); err != nil {
			break // server closed on us, as it should
		}
	}
	conn.Close()

	// The server still serves well-formed clients.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}
