// Package eval implements the FTL query-processing algorithm of the
// paper's appendix for the MOST model: for every subformula g it computes a
// relation Rg whose tuples pair an instantiation of g's free variables with
// the time intervals during which g is satisfied, building bottom-up from
// atomic predicates solved in closed form over the objects' motion
// functions.  A brute-force reference evaluator implementing the §3.3
// semantics literally is included as a correctness oracle.
package eval

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/mostdb/most/internal/most"
)

// ValKind discriminates evaluation values.
type ValKind uint8

// Value kinds.
const (
	ValNull ValKind = iota
	ValObj          // an object reference
	ValNum
	ValStr
	ValBool
)

// Val is a value an FTL variable can take: an object reference or a
// constant.  Val is comparable and usable as a map key.
type Val struct {
	Kind ValKind
	Obj  most.ObjectID
	Num  float64
	Str  string
	Bool bool
}

// ObjVal wraps an object reference.
func ObjVal(id most.ObjectID) Val { return Val{Kind: ValObj, Obj: id} }

// NumVal wraps a number.
func NumVal(f float64) Val { return Val{Kind: ValNum, Num: f} }

// StrVal wraps a string.
func StrVal(s string) Val { return Val{Kind: ValStr, Str: s} }

// BoolVal wraps a bool.
func BoolVal(b bool) Val { return Val{Kind: ValBool, Bool: b} }

// FromMost converts a static most.Value.
func FromMost(v most.Value) Val {
	switch v.Kind {
	case most.KindFloat:
		return NumVal(v.F)
	case most.KindString:
		return StrVal(v.S)
	case most.KindBool:
		return BoolVal(v.B)
	default:
		return Val{}
	}
}

// Compare orders two values; values of different kinds order by kind.
func (v Val) Compare(o Val) int {
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case ValObj:
		return strings.Compare(string(v.Obj), string(o.Obj))
	case ValNum:
		switch {
		case v.Num < o.Num:
			return -1
		case v.Num > o.Num:
			return 1
		}
	case ValStr:
		return strings.Compare(v.Str, o.Str)
	case ValBool:
		switch {
		case !v.Bool && o.Bool:
			return -1
		case v.Bool && !o.Bool:
			return 1
		}
	}
	return 0
}

// String renders the value.
func (v Val) String() string {
	switch v.Kind {
	case ValObj:
		return string(v.Obj)
	case ValNum:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case ValStr:
		return v.Str
	case ValBool:
		return strconv.FormatBool(v.Bool)
	default:
		return "NULL"
	}
}

// encodeVals builds a map key for an instantiation.
func encodeVals(vals []Val) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteByte(byte('0' + v.Kind))
		switch v.Kind {
		case ValObj:
			b.WriteString(string(v.Obj))
		case ValNum:
			b.WriteString(strconv.FormatFloat(v.Num, 'g', -1, 64))
		case ValStr:
			b.WriteString(v.Str)
		case ValBool:
			b.WriteString(strconv.FormatBool(v.Bool))
		}
		b.WriteByte(0)
	}
	return b.String()
}

// Error wraps evaluation failures.
func errf(format string, args ...any) error {
	return fmt.Errorf("ftl/eval: "+format, args...)
}
