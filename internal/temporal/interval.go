package temporal

import "fmt"

// Interval is a closed interval of clock ticks [Start, End], both endpoints
// inclusive, matching the paper's notation "[l u]".  An interval is valid
// when Start <= End; the zero Interval{0,0} is the single tick 0.
type Interval struct {
	Start Tick
	End   Tick
}

// NewInterval returns the closed interval [start, end] and reports whether
// it is non-empty (start <= end).
func NewInterval(start, end Tick) (Interval, bool) {
	if start > end {
		return Interval{}, false
	}
	return Interval{Start: start, End: end}, true
}

// Point returns the degenerate interval [t, t].
func Point(t Tick) Interval { return Interval{Start: t, End: t} }

// Valid reports whether the interval is non-empty.
func (iv Interval) Valid() bool { return iv.Start <= iv.End }

// Len returns the number of ticks in the interval (End-Start+1), saturated.
func (iv Interval) Len() Tick {
	if !iv.Valid() {
		return 0
	}
	return iv.End.Sub(iv.Start).Add(1)
}

// Contains reports whether tick t lies inside the interval.
func (iv Interval) Contains(t Tick) bool { return iv.Start <= t && t <= iv.End }

// ContainsInterval reports whether other lies entirely inside iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	return iv.Start <= other.Start && other.End <= iv.End
}

// Overlaps reports whether the two intervals share at least one tick.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start <= other.End && other.Start <= iv.End
}

// Compatible implements the appendix's compatibility test between ordered
// intervals: "[l1 u1] is compatible with [m1 n1] if m1 <= u1+1 and n1 >= u1,
// i.e. the two intervals either overlap or they are consecutive".
func (iv Interval) Compatible(other Interval) bool {
	return other.Start <= iv.End.Add(1) && other.End >= iv.End
}

// Consecutive reports whether other starts exactly one tick after iv ends.
func (iv Interval) Consecutive(other Interval) bool {
	return other.Start == iv.End.Add(1)
}

// Intersect returns the common sub-interval and whether it is non-empty.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	s, e := iv.Start, iv.End
	if other.Start > s {
		s = other.Start
	}
	if other.End < e {
		e = other.End
	}
	return NewInterval(s, e)
}

// Hull returns the smallest interval covering both iv and other.
func (iv Interval) Hull(other Interval) Interval {
	s, e := iv.Start, iv.End
	if other.Start < s {
		s = other.Start
	}
	if other.End > e {
		e = other.End
	}
	return Interval{Start: s, End: e}
}

// Shift translates the interval by d ticks (negative d shifts earlier),
// saturating at the representable range.
func (iv Interval) Shift(d Tick) Interval {
	return Interval{Start: iv.Start.Add(d), End: iv.End.Add(d)}
}

// Clip restricts the interval to the window w, reporting emptiness.
func (iv Interval) Clip(w Interval) (Interval, bool) { return iv.Intersect(w) }

// String renders the interval in the paper's "[l u]" form; an End of
// MaxTick prints as "inf".
func (iv Interval) String() string {
	if iv.End >= MaxTick {
		return fmt.Sprintf("[%d inf]", iv.Start)
	}
	return fmt.Sprintf("[%d %d]", iv.Start, iv.End)
}
