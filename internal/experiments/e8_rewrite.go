package experiments

import (
	"fmt"
)

// E8RewriteWithIndex compares §5.1's two evaluation modes for dynamic
// atoms: evaluating the atom on every tuple the decomposed queries return,
// versus fetching the satisfying tuples from the §4 dynamic-attribute
// index and joining on the key.
func E8RewriteWithIndex(quick bool) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "dynamic atom evaluation: per-tuple check vs index join (§5.1 + §4)",
		Claim:   "with a selective dynamic predicate the index-assisted plan wins; both return identical rows",
		Columns: []string{"rows", "selectivity", "matches", "per-tuple", "index join", "speedup"},
	}
	sizes := []int{2000, 20000}
	reps := 5
	if quick {
		sizes = []int{2000}
		reps = 2
	}
	for _, n := range sizes {
		sys, now := sqlFleet(n, 1, 13)
		if err := sys.CreateDynamicIndex("vehicles", "D0", 0, 1000); err != nil {
			panic(err)
		}
		*now = 10
		// Thresholds giving ~50%, ~5% and ~0.5% selectivity over the
		// uniform D0 distribution.
		for _, sel := range []struct {
			name string
			sql  string
		}{
			{"~50%", "SELECT id FROM vehicles WHERE D0 >= 0"},
			{"~5%", "SELECT id FROM vehicles WHERE D0 >= 108"},
			{"~0.5%", "SELECT id FROM vehicles WHERE D0 >= 119"},
		} {
			plain, err := sys.Query(sel.sql)
			if err != nil {
				panic(err)
			}
			indexed, err := sys.QueryWithIndex(sel.sql)
			if err != nil {
				panic(err)
			}
			if len(plain.Rows) != len(indexed.Rows) {
				panic(fmt.Sprintf("E8: plain %d rows, indexed %d", len(plain.Rows), len(indexed.Rows)))
			}
			pT := timeIt(reps, func() {
				if _, err := sys.Query(sel.sql); err != nil {
					panic(err)
				}
			})
			iT := timeIt(reps, func() {
				if _, err := sys.QueryWithIndex(sel.sql); err != nil {
					panic(err)
				}
			})
			t.AddRow(itoa(n), sel.name, itoa(len(plain.Rows)), ns(pT), ns(iT),
				f2(float64(pT)/float64(iT))+"x")
		}
	}
	t.Notes = append(t.Notes, "D0 at t=10 is roughly uniform on [-120,120]; per-tuple evaluation touches every row of each decomposed query regardless of selectivity")
	return t
}
