package city

import (
	"fmt"
	"math/rand"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/temporal"
)

// Template kinds.
const (
	Instantaneous = "instantaneous"
	ContinuousCQ  = "continuous"
)

// Template is one catalog entry: an FTL query instantiated from the
// city's geometry.  Kind says how the benchmark drives it — evaluated
// on demand (instantaneous) or registered once and maintained under
// updates (continuous).
type Template struct {
	Family string // e.g. "range_district"
	Name   string // family/instance, e.g. "range_district/D3"
	Kind   string // Instantaneous or ContinuousCQ
	Src    string // FTL source
}

// Catalog is the query workload derived from a city: templates plus the
// named region polygons their INSIDE atoms reference.  A query engine
// (or server) evaluating catalog templates must be configured with
// exactly Regions.
type Catalog struct {
	Regions   map[string]geom.Polygon
	Templates []Template
}

// Instantaneous returns the on-demand templates.
func (cat *Catalog) Instantaneous() []Template { return cat.byKind(Instantaneous) }

// Continuous returns the subscription templates.
func (cat *Catalog) Continuous() []Template { return cat.byKind(ContinuousCQ) }

func (cat *Catalog) byKind(kind string) []Template {
	var out []Template
	for _, t := range cat.Templates {
		if t.Kind == kind {
			out = append(out, t)
		}
	}
	return out
}

// Catalog derives the template catalog from the city's geometry,
// deterministically (an independent stream of Spec.Seed picks which
// districts, POIs, and buses are instantiated):
//
//   - range_district: which cars are in district D now (both kinds);
//   - poi_approach: which cars reach the ring around POI p within w
//     ticks — the proximity-to-POI alert (both kinds);
//   - nearest_poi: the candidate stage of nearest-at-time — cars inside
//     the ring around p now; the caller takes the distance argmin of
//     the (small) candidate set (instantaneous);
//   - trajectory_window: cars that stay inside D for the next w ticks
//     (instantaneous);
//   - corridor: cars that will touch both D_a and D_b within w ticks
//     (continuous);
//   - follow_bus: everything near tracked object t, expressed over the
//     small Buses class so the join stays cheap at any city scale
//     (continuous);
//   - bus_meet: which buses are at a station POI now — a DIST join
//     between two small classes (instantaneous).
func (c *City) Catalog() *Catalog {
	s := c.Spec
	r := rand.New(rand.NewSource(s.Seed*1000003 + 4))
	cat := &Catalog{Regions: map[string]geom.Polygon{}}
	for _, d := range c.Districts {
		cat.Regions[d.Name] = d.Poly
	}
	for _, p := range c.POIs {
		cat.Regions[p.Region] = geom.RegularPolygon(p.Loc, s.NearRadius, 8)
	}

	wHalf := maxTick(1, s.Horizon/2)
	wQuarter := maxTick(1, s.Horizon/4)
	nd := min(4, len(c.Districts))
	np := min(4, len(c.POIs))
	districts := r.Perm(len(c.Districts))[:nd]
	pois := r.Perm(len(c.POIs))[:np]

	add := func(family, instance, kind, src string) {
		cat.Templates = append(cat.Templates, Template{
			Family: family,
			Name:   family + "/" + instance,
			Kind:   kind,
			Src:    src,
		})
	}

	for _, di := range districts {
		d := c.Districts[di]
		src := fmt.Sprintf("RETRIEVE o FROM Cars o WHERE INSIDE(o, %s)", d.Name)
		add("range_district", d.Name, Instantaneous, src)
		add("range_district", d.Name, ContinuousCQ, src)
		add("trajectory_window", d.Name, Instantaneous,
			fmt.Sprintf("RETRIEVE o FROM Cars o WHERE ALWAYS FOR %d INSIDE(o, %s)", wQuarter, d.Name))
	}
	for _, pi := range pois {
		p := c.POIs[pi]
		src := fmt.Sprintf("RETRIEVE o FROM Cars o WHERE EVENTUALLY WITHIN %d INSIDE(o, %s)", wHalf, p.Region)
		add("poi_approach", p.Region, Instantaneous, src)
		add("poi_approach", p.Region, ContinuousCQ, src)
		add("nearest_poi", p.Region, Instantaneous,
			fmt.Sprintf("RETRIEVE o FROM Cars o WHERE INSIDE(o, %s)", p.Region))
	}
	if len(c.Districts) >= 2 {
		a := c.Districts[districts[0]]
		b := c.Districts[districts[1%nd]]
		if a.Name != b.Name {
			add("corridor", a.Name+"_"+b.Name, ContinuousCQ,
				fmt.Sprintf("RETRIEVE o FROM Cars o WHERE EVENTUALLY WITHIN %d INSIDE(o, %s) AND EVENTUALLY WITHIN %d INSIDE(o, %s)",
					wHalf, a.Name, wHalf, b.Name))
		}
	}
	if len(c.Buses) > 0 {
		b := c.Buses[r.Intn(len(c.Buses))]
		add("follow_bus", b.Plate, ContinuousCQ,
			fmt.Sprintf(`RETRIEVE n FROM Buses n, Buses t WHERE t.PLATE = "%s" AND EVENTUALLY WITHIN %d DIST(n, t) <= %g`,
				b.Plate, wQuarter, 2*s.Block))
		add("bus_meet", "stations", Instantaneous,
			fmt.Sprintf(`RETRIEVE b, p FROM Buses b, POIs p WHERE p.KIND = "station" AND DIST(b, p) <= %g`,
				1.5*s.Block))
	}
	return cat
}

func maxTick(a, b temporal.Tick) temporal.Tick {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
