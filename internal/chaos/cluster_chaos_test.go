package chaos

// Cluster chaos: a durable 3-node cluster replays a seeded city scenario
// against a single-database oracle while the harness kills and restarts
// nodes and partitions the inter-node (peer) links that carry object
// handoffs.  The per-tick contract is the same as the single-node chaos
// suite's — instantaneous answers bit-identical to a from-scratch naive
// evaluation, merged continuous-query streams converging to the oracle's
// per-tick membership — and at the end every partitioned object must
// exist exactly once across the cluster, with at least one real handoff
// observed.
//
// Fault placement is deterministic by construction: the peer gate severs
// *before* a rebalance barrier, so transfers fail at dial and park as
// in-doubt (frozen) objects; a node that holds in-doubt transfers is then
// killed while still partitioned, forcing recovery to quarantine its
// out-of-zone objects and re-offer them once the partition heals.  Both
// directions of the crash-during-handoff window get exercised: a sender
// that dies with unacknowledged transfers, and a receiver that dies after
// applying transfers whose receipts must replay to retried offers.

import (
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/mostdb/most/internal/city"
	"github.com/mostdb/most/internal/cluster"
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/wire"
	"github.com/mostdb/most/internal/workload"
)

// canonQueryRows renders scatter-gather query rows order-independently.
func canonQueryRows(rows [][]wire.Value) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.String())
			b.WriteByte(0)
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x01")
}

func TestClusterChaos(t *testing.T) {
	ticks := temporal.Tick(12)
	if testing.Short() {
		ticks = 8
	}
	spec := city.Spec{
		Seed: 5, Cars: 60, Buses: 3,
		GridW: 6, GridH: 6, DistrictsX: 2, DistrictsY: 2, POIsPerDistrict: 1,
		Ticks: ticks, Horizon: 12,
	}
	cty, err := city.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cat := cty.Catalog()
	opts := query.Options{Horizon: spec.Horizon, Regions: cat.Regions}

	// The peer gate carries every node-to-node connection: severing it is
	// a full interior partition — routers and clients stay connected, but
	// no handoff can cross.
	peerGate := &Gate{}
	side := float64(spec.GridW-1) * 100
	cl, err := cluster.Start(cluster.Config{
		Nodes: 3, GridX: 3, GridY: 1,
		Bounds:          geom.Rect{Max: geom.Point{X: side, Y: side}},
		Replicated:      []string{city.BusClass.Name(), city.POIClass.Name()},
		Seed:            cty.Database,
		Opts:            opts,
		Durable:         true,
		Dir:             t.TempDir(),
		CheckpointEvery: 40,
		Dial:            peerGate.Dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	router, err := cl.Router(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	oracle, err := cty.Database()
	if err != nil {
		t.Fatal(err)
	}
	oracleEng := query.NewEngine(oracle)

	naiveKey := func(src string) string {
		t.Helper()
		q := ftl.MustParse(src)
		ctx := &eval.Context{
			Now:     oracle.Now(),
			Horizon: spec.Horizon,
			Objects: oracle.Snapshot(),
			Regions: cat.Regions,
			Domains: map[string][]eval.Val{},
		}
		if err := ctx.BindDomains(q, eval.IDsOf(oracle)); err != nil {
			t.Fatalf("naive bind: %v", err)
		}
		rel, err := eval.EvalQuery(q, ctx)
		if err != nil {
			t.Fatalf("naive eval: %v", err)
		}
		var rows [][]wire.Value
		for _, vals := range rel.At(oracle.Now()) {
			row := make([]wire.Value, len(vals))
			for j, v := range vals {
				row[j] = wire.FromVal(v)
			}
			rows = append(rows, row)
		}
		return canonQueryRows(rows)
	}

	type clusterCQ struct {
		tpl city.Template
		cq  *query.Continuous
		sub *cluster.MergedSub
	}
	var cqs []clusterCQ
	for _, tpl := range cat.Continuous() {
		cq, err := oracleEng.Continuous(ftl.MustParse(tpl.Src), opts)
		if err != nil {
			t.Fatalf("%s: %v", tpl.Name, err)
		}
		defer cq.Cancel()
		sub, err := router.Subscribe(tpl.Src, spec.Horizon)
		if err != nil {
			t.Fatalf("%s: %v", tpl.Name, err)
		}
		defer sub.Close()
		cqs = append(cqs, clusterCQ{tpl, cq, sub})
	}
	awaitCQ := func(tk temporal.Tick, e clusterCQ) {
		t.Helper()
		rel, err := e.cq.Answer()
		if err != nil {
			t.Fatalf("tick %d: %s: oracle answer: %v", tk, e.tpl.Name, err)
		}
		now := oracle.Now()
		want := canonicalRowsAt(wire.FromRelation(rel), now)
		deadline := time.After(20 * time.Second)
		for {
			ans, _, err := e.sub.Answer()
			if err != nil {
				t.Fatalf("tick %d: %s: merged answer: %v", tk, e.tpl.Name, err)
			}
			got := canonicalRowsAt(ans, now)
			if got == want {
				return
			}
			select {
			case <-e.sub.Updates():
			case <-deadline:
				t.Fatalf("tick %d: merged CQ %s never converged:\n  cluster: %q\n  oracle:  %q",
					tk, e.tpl.Name, got, want)
			}
		}
	}

	byTick := map[temporal.Tick][]workload.UpdateEvent{}
	for _, e := range cty.Events {
		byTick[e.Tick] = append(byTick[e.Tick], e)
	}
	lastVec := map[most.ObjectID]geom.Vector{}
	carStir := cty.Cars[0].ID
	busStir := most.ObjectID(cty.Buses[0].Plate)

	// pendingNode returns the first node holding in-doubt transfers, or
	// -1.  The fault script uses it to kill a sender mid-handoff.
	pendingNode := func() int {
		for i := 0; i < 3; i++ {
			if cl.Node(i).Pending() > 0 {
				return i
			}
		}
		return -1
	}
	// The partition goes up early and stays up until a rebalance barrier
	// actually parks an in-doubt transfer somewhere (adaptive: which tick
	// a car first crosses a seam depends on the seeded trajectories), then
	// the node holding it is killed — a crash with unresolved handoffs.
	// While pending is zero no object is frozen, so update traffic never
	// blocks on the partition.
	severTick := temporal.Tick(2)
	maxSeverTick := temporal.Tick(5)
	severed := false
	var killed bool
	var restartTick temporal.Tick

	verify := func(tk temporal.Tick) {
		t.Helper()
		for _, tpl := range cat.Instantaneous() {
			now, rows, err := router.Query(tpl.Src, spec.Horizon)
			if err != nil {
				t.Fatalf("tick %d: %s: %v", tk, tpl.Name, err)
			}
			if now != oracle.Now() {
				t.Fatalf("tick %d: clocks diverged: cluster %d, oracle %d", tk, now, oracle.Now())
			}
			if got, want := canonQueryRows(rows), naiveKey(tpl.Src); got != want {
				t.Fatalf("tick %d: %s diverged:\n  cluster: %q\n  naive:   %q", tk, tpl.Name, got, want)
			}
		}
		for _, e := range cqs {
			awaitCQ(tk, e)
		}
	}

	for tk := temporal.Tick(1); tk <= ticks; tk++ {
		if tk == severTick && !killed {
			// Partition the interior before the barrier: every handoff
			// attempted while severed fails at dial and parks in doubt.
			peerGate.Sever()
			severed = true
		}
		if _, err := router.Advance(1); err != nil {
			t.Fatal(err)
		}
		oracle.Advance(1)

		if severed {
			victim := pendingNode()
			if victim >= 0 || tk >= maxSeverTick {
				// Kill the node holding in-doubt transfers while the
				// partition is still up — crash mid-handoff.  (If no car
				// crossed a seam during the whole severed window, kill
				// node 1 anyway so the run still exercises kill-restart
				// under partition.)
				t.Logf("tick %d: severed barrier parked in-doubt transfers on node %d "+
					"(pending: %d %d %d)", tk, victim,
					cl.Node(0).Pending(), cl.Node(1).Pending(), cl.Node(2).Pending())
				if victim < 0 {
					victim = 1
				}
				cl.Kill(victim)
				peerGate.Heal()
				severed = false
				if err := cl.Restart(victim); err != nil {
					t.Fatalf("restart node %d: %v", victim, err)
				}
				killed = true
				restartTick = tk + 2
			}
		}
		if killed && tk == restartTick {
			// Second crash, opposite role: node 2 has by now received
			// transfers (or their receipts); killing and recovering it
			// forces receipt replay against any retried offers.
			cl.Kill(2)
			if err := cl.Restart(2); err != nil {
				t.Fatalf("restart node 2: %v", err)
			}
		}

		evs := byTick[tk]
		carsTouched, busesTouched := false, false
		for _, e := range evs {
			lastVec[e.Object] = e.Vector
			if strings.HasPrefix(string(e.Object), "car-") {
				carsTouched = true
			} else {
				busesTouched = true
			}
		}
		if !carsTouched {
			evs = append(evs, workload.UpdateEvent{Object: carStir, Vector: lastVec[carStir]})
		}
		if !busesTouched {
			evs = append(evs, workload.UpdateEvent{Object: busStir, Vector: lastVec[busStir]})
		}
		for _, e := range evs {
			// The router's retry machinery rides out dead windows and
			// frozen (mid-handoff) objects; the oracle applies only what
			// the cluster acknowledged.
			if err := router.SetMotion(string(e.Object), e.Vector.X, e.Vector.Y); err != nil {
				t.Fatalf("tick %d: %s: %v", tk, e.Object, err)
			}
			if err := oracle.SetMotion(e.Object, e.Vector); err != nil {
				t.Fatal(err)
			}
		}

		verify(tk)
	}

	// Settle: extra barrier rounds flush any transfer still parked from
	// the fault windows, then the cluster must again match the oracle.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if _, err := router.Advance(0); err != nil {
			t.Fatal(err)
		}
		if pendingNode() < 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("in-doubt transfers never drained")
		}
		time.Sleep(50 * time.Millisecond)
	}
	verify(ticks)

	var handoffs, dups uint64
	for i := 0; i < 3; i++ {
		out, _, d, _ := cl.Node(i).Stats()
		handoffs += out
		dups += d
	}
	if handoffs == 0 {
		t.Fatal("chaos run crossed no zone boundary: nothing proven about handoff under faults")
	}
	t.Logf("cluster chaos: %d handoffs, %d duplicate acks", handoffs, dups)

	// Exactly-once across every crash and partition: each car exists on
	// precisely one node.
	seen := map[string]int{}
	for i, addr := range cl.Addrs() {
		c, err := router.NodeClient(addr)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Objects(city.CarClass.Name())
		if err != nil {
			t.Fatalf("node %d objects: %v", i, err)
		}
		for _, o := range resp.Objects {
			seen[o.ID]++
		}
	}
	if len(seen) != spec.Cars {
		t.Fatalf("cluster holds %d distinct cars, want %d", len(seen), spec.Cars)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("car %s present on %d nodes, want exactly 1", id, n)
		}
	}
}
