package most

import (
	"fmt"
	"sync"
	"testing"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/motion"
)

// TestDatabaseConcurrentOps hammers one database with concurrent updaters,
// readers, and a clock driver.  Run under -race this exercises the sharded
// locking discipline; afterwards the structural invariants the sequential
// code relies on must still hold.
func TestDatabaseConcurrentOps(t *testing.T) {
	db := NewDatabase()
	cls := MustClass("Cars", true, AttrDef{Name: "PRICE", Kind: Static})
	if err := db.DefineClass(cls); err != nil {
		t.Fatal(err)
	}
	const nObjs = 64
	ids := make([]ObjectID, nObjs)
	for i := range ids {
		ids[i] = ObjectID(fmt.Sprintf("car-%03d", i))
		o, err := NewObject(ids[i], cls)
		if err != nil {
			t.Fatal(err)
		}
		o, err = o.WithPosition(motion.MovingFrom(geom.Point{X: float64(i)}, geom.Vector{X: 1}, db.Now()))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(o); err != nil {
			t.Fatal(err)
		}
	}

	const updaters = 8
	const rounds = 40
	var wg sync.WaitGroup
	errCh := make(chan error, updaters+4)

	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				id := ids[(u*rounds+k)%nObjs]
				if err := db.SetMotion(id, geom.Vector{X: float64(k%5) - 2}); err != nil {
					errCh <- err
					return
				}
				if err := db.SetStatic(id, "PRICE", Float(float64(k))); err != nil {
					errCh <- err
					return
				}
			}
		}(u)
	}

	// Readers: snapshots, lookups, scans, history.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				if n := len(db.Snapshot()); n != nObjs {
					errCh <- fmt.Errorf("snapshot has %d objects, want %d", n, nObjs)
					return
				}
				if _, ok := db.Get(ids[k%nObjs]); !ok {
					errCh <- fmt.Errorf("object %s missing", ids[k%nObjs])
					return
				}
				_ = db.Objects("Cars")
				_ = db.Count()
				_ = db.History()
				_ = db.Version()
			}
		}()
	}

	// Clock driver.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < rounds; k++ {
			db.Tick()
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Invariants: log ticks non-decreasing (RevisionAt binary-searches it),
	// version equals log length, all objects still present.
	log := db.Log()
	for i := 1; i < len(log); i++ {
		if log[i].Tick < log[i-1].Tick {
			t.Fatalf("log out of order at %d: tick %d after %d", i, log[i].Tick, log[i-1].Tick)
		}
	}
	if got := db.Version(); got != uint64(len(log)) {
		t.Fatalf("Version = %d, log length = %d", got, len(log))
	}
	if db.Count() != nObjs {
		t.Fatalf("Count = %d, want %d", db.Count(), nObjs)
	}
	h := db.History()
	for _, id := range ids {
		if _, ok := h.RevisionAt(id, db.Now()); !ok {
			t.Fatalf("history lost object %s", id)
		}
	}
}

// TestDatabaseConcurrentInsertDelete interleaves inserts and deletes with
// class scans; the byClass registry and shard maps must stay consistent.
func TestDatabaseConcurrentInsertDelete(t *testing.T) {
	db := NewDatabase()
	cls := MustClass("Fleet", true)
	if err := db.DefineClass(cls); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				id := ObjectID(fmt.Sprintf("w%d-%03d", w, k))
				o, err := NewObject(id, cls)
				if err != nil {
					errCh <- err
					return
				}
				o, err = o.WithPosition(motion.MovingFrom(geom.Point{}, geom.Vector{X: 1}, db.Now()))
				if err != nil {
					errCh <- err
					return
				}
				if err := db.Insert(o); err != nil {
					errCh <- err
					return
				}
				if k%3 == 0 {
					if err := db.Delete(id); err != nil {
						errCh <- err
						return
					}
				}
				_ = db.Objects("Fleet")
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Every remaining object is reachable both by scan and by Get.
	for _, o := range db.Objects("Fleet") {
		if _, ok := db.Get(o.ID()); !ok {
			t.Fatalf("scan returned %s but Get misses it", o.ID())
		}
	}
	want := workers * perWorker * 2 / 3
	if got := db.Count(); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}
