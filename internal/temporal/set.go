package temporal

import (
	"sort"
	"strings"
)

// Set is a normalized set of ticks represented as sorted, pairwise disjoint
// and non-consecutive intervals.  This is exactly the invariant the paper's
// appendix imposes on the interval column of every relation Rg: "the
// intervals corresponding to different tuples that give identical values to
// the corresponding variables will be non-overlapping, and furthermore these
// intervals will not even be consecutive".
//
// The zero value is the empty set and ready to use.  All methods treat the
// receiver as immutable and return fresh sets.
type Set struct {
	ivs []Interval
}

// NewSet builds a normalized set from arbitrary (possibly overlapping,
// unordered, or invalid) intervals; invalid intervals are dropped and
// overlapping or consecutive ones are coalesced.
func NewSet(ivs ...Interval) Set {
	valid := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if iv.Valid() {
			valid = append(valid, iv)
		}
	}
	sort.Slice(valid, func(i, j int) bool {
		if valid[i].Start != valid[j].Start {
			return valid[i].Start < valid[j].Start
		}
		return valid[i].End < valid[j].End
	})
	out := valid[:0]
	for _, iv := range valid {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End.Add(1) {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return Set{ivs: out}
}

// SinglePoint returns the set {t}.
func SinglePoint(t Tick) Set { return Set{ivs: []Interval{Point(t)}} }

// Universe returns the set covering all representable ticks.
func Universe() Set { return Set{ivs: []Interval{{Start: MinTick, End: MaxTick}}} }

// Intervals returns the normalized intervals in ascending order.  The
// returned slice must not be modified.
func (s Set) Intervals() []Interval { return s.ivs }

// IsEmpty reports whether the set contains no ticks.
func (s Set) IsEmpty() bool { return len(s.ivs) == 0 }

// Len returns the number of intervals (not ticks) in the set.
func (s Set) Len() int { return len(s.ivs) }

// Cardinality returns the total number of ticks in the set, saturated.
func (s Set) Cardinality() Tick {
	var n Tick
	for _, iv := range s.ivs {
		n = n.Add(iv.Len())
	}
	return n
}

// Contains reports whether tick t is in the set, in O(log n).
func (s Set) Contains(t Tick) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End >= t })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// Min returns the earliest tick in the set; ok is false for the empty set.
func (s Set) Min() (Tick, bool) {
	if len(s.ivs) == 0 {
		return 0, false
	}
	return s.ivs[0].Start, true
}

// Max returns the latest tick in the set; ok is false for the empty set.
func (s Set) Max() (Tick, bool) {
	if len(s.ivs) == 0 {
		return 0, false
	}
	return s.ivs[len(s.ivs)-1].End, true
}

// NextAtOrAfter returns the earliest tick in the set that is >= t.
func (s Set) NextAtOrAfter(t Tick) (Tick, bool) {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End >= t })
	if i >= len(s.ivs) {
		return 0, false
	}
	if s.ivs[i].Start >= t {
		return s.ivs[i].Start, true
	}
	return t, true
}

// Union returns the set of ticks in s or in other.
func (s Set) Union(other Set) Set {
	merged := make([]Interval, 0, len(s.ivs)+len(other.ivs))
	merged = append(merged, s.ivs...)
	merged = append(merged, other.ivs...)
	return NewSet(merged...)
}

// Intersect returns the set of ticks present in both sets, by a linear merge.
func (s Set) Intersect(other Set) Set {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(other.ivs) {
		if iv, ok := s.ivs[i].Intersect(other.ivs[j]); ok {
			out = append(out, iv)
		}
		if s.ivs[i].End < other.ivs[j].End {
			i++
		} else {
			j++
		}
	}
	return Set{ivs: out} // disjoint, ordered, and non-consecutive by construction
}

// Subtract returns the ticks of s that are not in other.
func (s Set) Subtract(other Set) Set {
	var out []Interval
	j := 0
	for _, iv := range s.ivs {
		cur := iv
		for j < len(other.ivs) && other.ivs[j].End < cur.Start {
			j++
		}
		k := j
		for k < len(other.ivs) && other.ivs[k].Start <= cur.End {
			hole := other.ivs[k]
			if hole.Start > cur.Start {
				out = append(out, Interval{Start: cur.Start, End: hole.Start - 1})
			}
			if hole.End >= cur.End {
				cur = Interval{Start: 1, End: 0} // emptied
				break
			}
			cur.Start = hole.End + 1
			k++
		}
		if cur.Valid() {
			out = append(out, cur)
		}
	}
	return NewSet(out...)
}

// ComplementWithin returns the ticks of window w that are not in s.  This is
// the operation negation compiles to once an instantiation is closed (the
// paper notes negation "can be incorporated"; the window is the query
// expiry horizon that keeps the result finite).
func (s Set) ComplementWithin(w Interval) Set {
	if !w.Valid() {
		return Set{}
	}
	return NewSet(w).Subtract(s)
}

// Clip restricts the set to window w.
func (s Set) Clip(w Interval) Set {
	if !w.Valid() {
		return Set{}
	}
	return s.Intersect(NewSet(w))
}

// Shift translates every tick by d (negative d shifts earlier).  Used to
// implement Nexttime: "Nexttime f" holds at t iff f holds at t+1, so the
// satisfaction set of Nexttime f is the satisfaction set of f shifted by -1.
func (s Set) Shift(d Tick) Set {
	out := make([]Interval, 0, len(s.ivs))
	for _, iv := range s.ivs {
		out = append(out, iv.Shift(d))
	}
	return NewSet(out...)
}

// Equal reports whether the two sets contain exactly the same ticks.
func (s Set) Equal(other Set) bool {
	if len(s.ivs) != len(other.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != other.ivs[i] {
			return false
		}
	}
	return true
}

// Normalized reports whether the raw interval slice already satisfies the
// appendix invariant: sorted, disjoint, non-consecutive.  Always true for
// sets built through this package; exposed for property-based testing.
func (s Set) Normalized() bool {
	for i, iv := range s.ivs {
		if !iv.Valid() {
			return false
		}
		if i > 0 && iv.Start <= s.ivs[i-1].End.Add(1) {
			return false
		}
	}
	return true
}

// String renders the set as a space-separated list of intervals.
func (s Set) String() string {
	if len(s.ivs) == 0 {
		return "{}"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ")
}
