package main

// The -connect mode: the same REPL grammar served by a remote mostserver
// through the network client instead of an in-process engine.  RETRIEVE,
// .continuous, .tick, .turn, .objects and .save/.load all forward over the
// wire; continuous queries are streamed subscriptions whose answers are
// presented locally (Current(t) is a lookup into the last pushed
// Answer(CQ), not a round trip).

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	mostdb "github.com/mostdb/most"
	"github.com/mostdb/most/internal/wire"
)

type remoteShell struct {
	c       *mostdb.Client
	now     mostdb.Tick
	horizon mostdb.Tick
	cont    map[int]*mostdb.ClientSubscription
	contSrc map[int]string
	nextCQ  int
}

// runRemote is the -connect entry point: a REPL against addr.  proto caps
// the offered wire protocol version; 0 offers the newest implemented.
func runRemote(addr string, horizon int64, proto int) {
	var opts []mostdb.ClientOption
	if proto > 0 {
		opts = append(opts, mostdb.WithProtocol(proto))
	}
	c, err := mostdb.Dial(addr, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mostql: connect:", err)
		os.Exit(1)
	}
	defer c.Close()
	sh := &remoteShell{
		c:       c,
		horizon: mostdb.Tick(horizon),
		cont:    map[int]*mostdb.ClientSubscription{},
		contSrc: map[int]string{},
	}
	// A zero advance fetches the server clock without moving it.
	now, err := c.Advance(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mostql: connect:", err)
		os.Exit(1)
	}
	sh.now = now
	fmt.Printf("mostql: connected to %s (protocol v%d); server clock at %d; horizon %d\n",
		addr, c.Protocol(), now, horizon)
	fmt.Println(`type ".help" for commands`)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("t=%d> ", sh.now)
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if sh.command(line) {
				return
			}
			continue
		}
		sh.query(line)
	}
}

func (sh *remoteShell) query(src string) {
	now, rows, err := sh.c.Query(src, sh.horizon)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sh.now = now
	fmt.Printf("%d instantiation(s) satisfied at t=%d:\n", len(rows), now)
	for i, vals := range rows {
		if i >= 20 {
			fmt.Printf("  ... and %d more\n", len(rows)-20)
			break
		}
		fmt.Println(" ", joinValues(vals))
	}
}

func joinValues(vals []wire.Value) string {
	parts := make([]string, len(vals))
	for j, v := range vals {
		parts[j] = v.String()
	}
	return strings.Join(parts, ", ")
}

// command handles a dot-command; it returns true to exit.
func (sh *remoteShell) command(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".help":
		fmt.Println(`commands (remote):
  RETRIEVE ... WHERE ...    instantaneous FTL query on the server
  .continuous <query>       subscribe to a streamed continuous query
  .tick [n]                 advance the server clock by n (default 1)
  .turn <id> <vx> <vy>      change an object's motion vector on the server
  .objects [class]          list server objects and current positions
  .regions                  region names are defined by the server (P, Q, downtown)
  .save <file>              download a server snapshot to a local JSON file
  .load <file>              replace the server database from a local snapshot
  .quit                     exit`)
	case ".tick":
		n := int64(1)
		if len(fields) > 1 {
			if v, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				n = v
			}
		}
		now, err := sh.c.Advance(mostdb.Tick(n))
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		sh.now = now
		for id, sub := range sh.cont {
			select {
			case <-sub.Done():
				fmt.Printf("[cq%d] closed: %v\n", id, sub.Err())
				delete(sh.cont, id)
				delete(sh.contSrc, id)
				continue
			default:
			}
			rows, err := sub.Current(now)
			if err != nil {
				continue
			}
			fmt.Printf("[cq%d] %d row(s) at t=%d\n", id, len(rows), now)
		}
	case ".turn":
		if len(fields) != 4 {
			fmt.Println("usage: .turn <id> <vx> <vy>")
			return false
		}
		vx, err1 := strconv.ParseFloat(fields[2], 64)
		vy, err2 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil {
			fmt.Println("bad vector")
			return false
		}
		if err := sh.c.SetMotion(fields[1], vx, vy); err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("%s now heads (%g, %g)\n", fields[1], vx, vy)
	case ".continuous":
		src := strings.TrimSpace(strings.TrimPrefix(line, ".continuous"))
		sub, err := sh.c.Subscribe(src, sh.horizon)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		sh.nextCQ++
		sh.cont[sh.nextCQ] = sub
		sh.contSrc[sh.nextCQ] = src
		fmt.Printf("registered cq%d (streamed); it reports on every .tick\n", sh.nextCQ)
	case ".save":
		if len(fields) != 2 {
			fmt.Println("usage: .save <file>")
			return false
		}
		data, err := sh.c.SnapshotSave()
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		if err := os.WriteFile(fields[1], data, 0o644); err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("saved server snapshot to %s\n", fields[1])
	case ".load":
		if len(fields) != 2 {
			fmt.Println("usage: .load <file>")
			return false
		}
		data, err := os.ReadFile(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		resp, err := sh.c.SnapshotLoad(data)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		sh.now = resp.Now
		sh.cont = map[int]*mostdb.ClientSubscription{}
		sh.contSrc = map[int]string{}
		fmt.Printf("server loaded %d objects; clock at %d; subscriptions cleared\n", resp.Objects, resp.Now)
	case ".objects":
		class := ""
		if len(fields) > 1 {
			class = fields[1]
		}
		resp, err := sh.c.Objects(class)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		for i, o := range resp.Objects {
			if i >= 15 {
				fmt.Printf("  ... and %d more\n", len(resp.Objects)-15)
				break
			}
			if !o.HasPos {
				fmt.Printf("  %s (%s)\n", o.ID, o.Class)
				continue
			}
			fmt.Printf("  %-12s (%s) at (%.1f, %.1f)\n", o.ID, o.Class, o.X, o.Y)
		}
	case ".regions":
		fmt.Println("  regions live on the server: P, Q, downtown (see mostserver)")
	default:
		fmt.Println("unknown command; try .help")
	}
	return false
}
