package index

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// TestQuadraticTrajectoriesIndexed checks both index mechanisms against a
// scan over accelerating attributes — the §4 "nonlinear functions"
// extension.
func TestQuadraticTrajectoriesIndexed(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	rt := NewAttrIndex(0, 100)
	grid := NewGridIndex(0, 100, -6000, 6000, 32, 32)
	attrs := map[most.ObjectID]motion.DynamicAttr{}
	for i := 0; i < 150; i++ {
		id := most.ObjectID(fmt.Sprintf("q%03d", i))
		a := motion.DynamicAttr{
			Value:    float64(r.Intn(200) - 100),
			Function: motion.Accelerating(float64(r.Intn(11)-5), float64(r.Intn(5)-2)*0.25),
		}
		attrs[id] = a
		if err := rt.Insert(id, a); err != nil {
			t.Fatal(err)
		}
		if err := grid.Insert(id, a); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 80; q++ {
		lo := float64(r.Intn(800) - 400)
		hi := lo + float64(r.Intn(80))
		at := temporal.Tick(r.Intn(100))
		want := map[most.ObjectID]bool{}
		for id, a := range attrs {
			if v := a.At(at); v >= lo && v <= hi {
				want[id] = true
			}
		}
		for _, mech := range []struct {
			name string
			got  []most.ObjectID
		}{
			{"rtree", rt.InstantQuery(lo, hi, at)},
			{"grid", grid.InstantQuery(lo, hi, at)},
		} {
			if len(mech.got) != len(want) {
				t.Fatalf("query %d %s: got %d, want %d (lo=%v hi=%v t=%d)",
					q, mech.name, len(mech.got), len(want), lo, hi, at)
			}
			for _, id := range mech.got {
				if !want[id] {
					t.Fatalf("query %d %s: unexpected %s", q, mech.name, id)
				}
			}
		}
	}
}

// TestQuadraticContinuousQuery verifies interval answers for a parabola
// that leaves and re-enters the band.
func TestQuadraticContinuousQuery(t *testing.T) {
	ix := NewAttrIndex(0, 100)
	// v(t) = 50 - 10t + t^2/2: dips to 0 at t=10, back to 50 at t=20.
	a := motion.DynamicAttr{Value: 50, Function: motion.Accelerating(-10, 1)}
	if err := ix.Insert("dip", a); err != nil {
		t.Fatal(err)
	}
	ans := ix.ContinuousQuery(0, 10, 0)
	if len(ans) != 1 {
		t.Fatalf("answers = %+v", ans)
	}
	ivs := ans[0].Times.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("intervals = %v, want one dip window", ivs)
	}
	// v <= 10 while (t-10)^2/2 <= 10 → |t-10| <= sqrt(20) ≈ 4.47.
	if ivs[0].Lo < 5 || ivs[0].Lo > 6 || ivs[0].Hi < 14 || ivs[0].Hi > 15 {
		t.Fatalf("dip window = %+v", ivs[0])
	}
	// Updates on quadratic trajectories keep the index consistent.
	a2 := a.Updated(10, motion.Linear(3))
	if err := ix.Update("dip", a2, 10); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		at   temporal.Tick
		want float64
	}{{5, 12.5}, {10, 0}, {20, 30}} {
		got := ix.InstantQuery(tc.want-0.5, tc.want+0.5, tc.at)
		if len(got) != 1 {
			t.Fatalf("after update at t=%d (want v=%v): %v", tc.at, tc.want, got)
		}
	}
}
