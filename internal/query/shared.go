package query

import (
	"sync"
	"sync/atomic"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/temporal"
)

// sharedPlan is one maintained continuous-query plan shared by every
// subscriber handle whose registration canonicalizes to the same planKey.
// The paper's evaluate-once-then-maintain discipline (§3.5) is applied per
// *distinct* plan, not per registration: an update pays one delta patch or
// one reevaluation here and the installed relation fans out to all
// attached handles, making per-update maintenance cost proportional to the
// number of distinct query shapes rather than the subscriber count.
type sharedPlan struct {
	key     string
	planID  uint64
	engine  *Engine
	query   *ftl.Query // first registrant's query; sharers are canonically identical
	opts    Options
	plan    deltaPlan
	roi     roiPlan
	classes map[string]bool

	// ready is closed once the creator's initial evaluation has installed
	// (or failed with initErr, after removing the plan from the engine);
	// joiners block on it so a returned handle always has an answer.
	ready   chan struct{}
	initErr error

	mu         sync.Mutex
	answer     *eval.Relation
	err        error
	version    uint64
	anchor     temporal.Tick
	evaluating bool
	needFull   bool
	queue      []most.Update
	removed    bool
	subs       []*Continuous

	// validUntil is anchor+horizon-depth of the installed answer (the last
	// tick it stays presentable at): the ROI filter may skip an update only
	// while its tick is inside this window.  Updated on every full install;
	// read lock-free by Engine.onUpdate.
	validUntil atomic.Int64
}

func newSharedPlan(e *Engine, key string, q *ftl.Query, opts Options) *sharedPlan {
	p := &sharedPlan{
		key:     key,
		engine:  e,
		query:   q,
		opts:    opts,
		plan:    newDeltaPlan(q),
		classes: map[string]bool{},
		ready:   make(chan struct{}),
	}
	for _, b := range q.Bindings {
		p.classes[b.Class] = true
	}
	p.roi = newROIPlan(q, opts, p.plan.analysis)
	return p
}

// canSkip reports whether an update to class with the given motion
// envelope provably cannot change any presentation of the installed
// answer (see roiPlan for the full soundness argument).
func (p *sharedPlan) canSkip(class string, tick temporal.Tick, env rect2) bool {
	b, ok := p.roi.bounds[class]
	if !ok {
		return false
	}
	if int64(tick) > p.validUntil.Load() {
		// Past the answer's validity: the update must be dispatched so the
		// drain re-anchors, even if it is spatially irrelevant.
		return false
	}
	return !env.intersects(b)
}

// evaluate runs one full evaluation of the plan's query under its own root
// span and metrics, returning the relation and the tick it was anchored at.
func (p *sharedPlan) evaluate() (*eval.Relation, temporal.Tick, error) {
	e := p.engine
	reg := e.reg()
	reg.Counter("query.continuous").Inc()
	sp := reg.StartSpan("query.continuous")
	defer sp.End()
	t0 := reg.Start()
	defer reg.Histogram("query.continuous_ns").Since(t0)
	now := e.db.Now()
	rel, err := e.evalRelation(p.query, p.opts, now, sp)
	return rel, now, err
}

// storeValidity records the installed answer's presentability window end.
// Callers hold p.mu.
func (p *sharedPlan) storeValidity(anchor temporal.Tick) {
	p.validUntil.Store(int64(anchor.Add(p.opts.horizon() - p.plan.analysis.Depth)))
}

// maintain folds one relevant update into the maintenance state and, if no
// other goroutine is draining, drains.  Concurrent calls coalesce: one
// goroutine works at a time and the others just deposit their update.
func (p *sharedPlan) maintain(u most.Update) {
	p.mu.Lock()
	if p.removed {
		p.mu.Unlock()
		return
	}
	// Classification is counted independently of scheduling: the fallback
	// counter answers "how many updates could not be applied as deltas",
	// including ones arriving while a full reevaluation was already
	// pending (those used to be swallowed unclassified).
	deltable := p.deltable(u)
	if !deltable && !p.opts.DisableDelta {
		p.engine.reg().Counter("query.continuous.fallback").Inc()
	}
	switch {
	case p.needFull:
		// A full reevaluation is already scheduled; it covers this update.
	case deltable:
		p.queue = append(p.queue, u)
	default:
		p.needFull = true
		p.queue = nil
	}
	if p.evaluating {
		p.mu.Unlock()
		return
	}
	p.evaluating = true
	p.mu.Unlock()
	p.drain()
}

// deltable reports whether u can be applied as a per-object patch.  Callers
// hold p.mu.
func (p *sharedPlan) deltable(u most.Update) bool {
	if p.opts.DisableDelta {
		return false
	}
	return p.plan.deltable(u, p.opts.horizon())
}

// drain runs maintenance rounds until no work is queued.  The caller must
// have won the evaluating flag.  Each round applies the queued updates as
// per-object deltas, or runs one full reevaluation when a fallback
// condition holds: needFull was set, the materialized state is errored or
// missing, the clock has advanced past the last full anchor's validity, or
// the delta application itself failed.
func (p *sharedPlan) drain() {
	for {
		p.mu.Lock()
		if p.removed {
			p.evaluating, p.needFull, p.queue = false, false, nil
			p.mu.Unlock()
			return
		}
		full := p.needFull
		batch := p.queue
		p.needFull, p.queue = false, nil
		if !full && len(batch) == 0 {
			p.evaluating = false
			p.mu.Unlock()
			return
		}
		if !full && (p.err != nil || p.answer == nil) {
			full = true
		}
		anchor := p.anchor
		p.mu.Unlock()
		if !full && p.engine.db.Now() > anchor.Add(p.opts.horizon()-p.plan.analysis.Depth) {
			// Unchanged tuples are no longer presentable this far past the
			// anchor: re-anchor the whole relation.
			full = true
		}
		if full {
			p.runFull()
			continue
		}
		if !p.runDelta(batch) {
			p.runFull()
		}
	}
}

// runFull recomputes the answer from the current state and installs it
// under the version guard, so a slow evaluation finishing late never
// overwrites a newer answer.  An install that reproduces the previous
// relation exactly still advances version/anchor/validity but does not fan
// out: same-class no-op updates stop producing spurious pushes to every
// subscriber.
func (p *sharedPlan) runFull() {
	e := p.engine
	reg := e.reg()
	reg.Counter("query.continuous.reevals").Inc()
	reg.Counter("query.continuous.full").Inc()
	// The version is read before the snapshot, so the evaluated state is
	// at least as new as v and the install guard stays conservative.
	v := e.db.Version()
	rel, now, err := p.evaluate()
	p.mu.Lock()
	if p.removed {
		p.mu.Unlock()
		return
	}
	var subs []*Continuous
	if v >= p.version {
		p.version = v
		unchanged := err == nil && p.err == nil && p.answer != nil && p.answer.Equal(rel)
		p.err = err
		p.anchor = now
		if err == nil {
			p.storeValidity(now)
		}
		if unchanged {
			reg.Counter("query.continuous.suppressed").Inc()
			// Keep the old relation object: subscribers comparing answer
			// identity (the server's shared row conversion) see no change.
		} else {
			p.answer = rel
			if err == nil {
				subs = append([]*Continuous(nil), p.subs...)
			}
		}
		rel = p.answer
	}
	p.mu.Unlock()
	p.notify(subs, rel)
}

// notify fans one installed relation out to the listeners of the given
// subscriber handles.  Handle listener lists are snapshotted under each
// handle's lock; invocations run lock-free.
func (p *sharedPlan) notify(subs []*Continuous, rel *eval.Relation) {
	for _, h := range subs {
		h.mu.Lock()
		if h.cancelled {
			h.mu.Unlock()
			continue
		}
		ls := append([]func(*eval.Relation){}, h.listeners...)
		h.mu.Unlock()
		for _, fn := range ls {
			fn(rel)
		}
	}
}
