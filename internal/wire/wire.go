// Package wire is the MOST client/server wire protocol: a length-prefixed,
// versioned frame codec carrying typed payloads.  One frame is
//
//	magic   2 bytes  'M' 'W'
//	version 1 byte   protocol version of the payload encoding (1 or 2)
//	opcode  1 byte   Opcode
//	id      8 bytes  big-endian request ID (0 on unsolicited pushes)
//	length  4 bytes  big-endian payload length
//	payload length bytes
//
// The 16-byte header is identical in every protocol version; the version
// byte selects the payload encoding.  Version 1 payloads are JSON; version
// 2 payloads are the compact binary encoding of binary.go (fixed-width
// little-endian numbers, varint-prefixed strings, IEEE-754 float64 bits).
// Both encodings round-trip every value exactly, which is what lets the
// loopback oracle demand bit-identical answers across the wire.
//
// Sessions negotiate the version in the Hello handshake: Hello frames are
// always version 1, the client advertises the highest version it speaks
// (HelloReq.MaxVersion), and the server answers with the session version
// (HelloResp.Version = min of the two) — every subsequent frame in either
// direction carries exactly that version.  See PROTOCOL.md for the formal
// specification: header layout, opcode table, payload grammars byte by
// byte, and the negotiation state machine.
//
// Requests carry a per-connection-unique ID; every response echoes the ID
// of the request it answers, so a client may pipeline any number of
// requests on one connection and match answers as they return.  Server
// pushes (OpNotify, OpSubClosed) carry ID 0 and are routed by the
// subscription ID inside the payload.
//
// The decoder is hostile-input safe: it validates the magic, version, and
// payload bound before reading or allocating the payload, allocates at
// most the configured bound per frame, and returns errors — it never
// panics on malformed, truncated, or oversized input (FuzzWireDecode locks
// this in).  A declared length beyond the bound fails with
// ErrFrameTooLarge before a single payload byte is read.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Protocol versions.  V1 frames carry JSON payloads; V2 frames carry the
// compact binary encoding.  The Hello handshake (always spoken at V1)
// negotiates the session version.
const (
	// ProtocolV1 is the original JSON payload encoding.
	ProtocolV1 = 1
	// ProtocolV2 is the compact binary payload encoding.
	ProtocolV2 = 2
	// MaxProtocolVersion is the highest version this package implements.
	MaxProtocolVersion = ProtocolV2
)

// HeaderSize is the fixed frame header length in bytes, identical across
// protocol versions.
const HeaderSize = 16

// DefaultMaxPayload bounds a frame's payload unless the decoder is
// configured otherwise.  Snapshots are the largest legitimate payloads.
const DefaultMaxPayload = 64 << 20

// magic identifies a MOST wire frame.
var magic = [2]byte{'M', 'W'}

// Opcode discriminates frame payloads.  The opcode space is shared by both
// protocol versions; only the payload encoding differs.
type Opcode uint8

// Request opcodes (client to server).
const (
	OpHello        Opcode = 1  // HelloReq: session setup, identity, version negotiation
	OpPing         Opcode = 2  // empty: liveness probe
	OpQuery        Opcode = 3  // QueryReq: instantaneous FTL query
	OpUpdateBatch  Opcode = 4  // UpdateBatchReq: batched explicit updates
	OpAdvance      Opcode = 5  // AdvanceReq: advance the clock
	OpObjects      Opcode = 6  // ObjectsReq: list objects with positions
	OpSnapshotSave Opcode = 7  // empty: serialize the database state
	OpSnapshotLoad Opcode = 8  // SnapshotLoadReq: replace the database state
	OpSubscribe    Opcode = 9  // SubscribeReq: register a continuous query
	OpUnsubscribe  Opcode = 10 // UnsubscribeReq: cancel a subscription

	// Cluster opcodes (PROTOCOL.md §7).  ZoneMap is spoken by ordinary
	// clients discovering the cluster topology; Handoff and Forward are
	// node-to-node, carried on peer sessions (HelloReq.Peer).
	OpZoneMap Opcode = 11 // empty request: fetch the cluster zone map
	OpHandoff Opcode = 12 // HandoffReq: transfer a moving object between nodes
	OpForward Opcode = 13 // ForwardReq: relay a batch to the owning node
)

// Response and push opcodes (server to client).
const (
	OpResult    Opcode = 32 // payload depends on the request opcode
	OpError     Opcode = 33 // ErrorResp
	OpNotify    Opcode = 34 // Notify: new Answer(CQ) after maintenance (push)
	OpSubClosed Opcode = 35 // SubClosed: server-side subscription teardown (push)
)

// String names the opcode for metrics and errors.
func (o Opcode) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpPing:
		return "ping"
	case OpQuery:
		return "query"
	case OpUpdateBatch:
		return "update_batch"
	case OpAdvance:
		return "advance"
	case OpObjects:
		return "objects"
	case OpSnapshotSave:
		return "snapshot_save"
	case OpSnapshotLoad:
		return "snapshot_load"
	case OpSubscribe:
		return "subscribe"
	case OpUnsubscribe:
		return "unsubscribe"
	case OpZoneMap:
		return "zone_map"
	case OpHandoff:
		return "handoff"
	case OpForward:
		return "forward"
	case OpResult:
		return "result"
	case OpError:
		return "error"
	case OpNotify:
		return "notify"
	case OpSubClosed:
		return "sub_closed"
	default:
		return fmt.Sprintf("opcode(%d)", uint8(o))
	}
}

// valid reports whether the opcode is one this protocol defines.
func (o Opcode) valid() bool {
	return (o >= OpHello && o <= OpForward) || (o >= OpResult && o <= OpSubClosed)
}

// Frame is one decoded protocol frame.  Version is the payload encoding
// (ProtocolV1 or ProtocolV2); the zero value encodes as ProtocolV1 so
// pre-negotiation code paths stay valid.
type Frame struct {
	Op      Opcode
	ID      uint64
	Version uint8
	Payload []byte

	// pbuf, when non-nil, is the encode-pool slot backing Payload
	// (EncodePooled); Recycle returns it.  The pointer travels with struct
	// copies, so a frame must be Detach()ed before being retained past its
	// write.
	pbuf *[]byte
}

// Decode errors.  ErrFrameTooLarge and ErrBadFrame mark input that must
// not be retried verbatim; io errors pass through unwrapped so callers can
// detect EOF and timeouts.
var (
	// ErrBadFrame marks a malformed header, an unknown opcode, a protocol
	// version outside the decoder's accepted range, or an undecodable
	// payload.
	ErrBadFrame = errors.New("wire: malformed frame")
	// ErrFrameTooLarge marks a frame whose declared payload length exceeds
	// the negotiated maximum.  The decoder rejects the frame before reading
	// a single payload byte, so a hostile length field costs nothing.
	ErrFrameTooLarge = errors.New("wire: frame exceeds payload bound")
)

// ErrTooLarge is the former name of ErrFrameTooLarge.
//
// Deprecated: use ErrFrameTooLarge.
var ErrTooLarge = ErrFrameTooLarge

// NegotiateVersion computes the session protocol version from the client's
// advertised maximum (HelloReq.MaxVersion; values < 1 mean a pre-v2 client
// that did not send the field) and the server's configured maximum.  The
// result is always a version both sides speak: min of the two maxima,
// clamped to [ProtocolV1, MaxProtocolVersion].
func NegotiateVersion(clientMax, serverMax int) uint8 {
	if clientMax < ProtocolV1 {
		clientMax = ProtocolV1
	}
	if serverMax < ProtocolV1 {
		serverMax = ProtocolV1
	}
	v := clientMax
	if serverMax < v {
		v = serverMax
	}
	if v > MaxProtocolVersion {
		v = MaxProtocolVersion
	}
	return uint8(v)
}

// AppendFrame serializes the frame onto buf and returns the extended
// slice.  A zero Frame.Version encodes as ProtocolV1.  It refuses payloads
// beyond the uint32 range and versions this package does not speak.
func AppendFrame(buf []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > int(^uint32(0)) {
		return nil, fmt.Errorf("%w: %d byte payload", ErrFrameTooLarge, len(f.Payload))
	}
	v := f.Version
	if v == 0 {
		v = ProtocolV1
	}
	if v > MaxProtocolVersion {
		return nil, fmt.Errorf("%w: cannot encode version %d", ErrBadFrame, v)
	}
	var hdr [HeaderSize]byte
	hdr[0], hdr[1] = magic[0], magic[1]
	hdr[2] = v
	hdr[3] = byte(f.Op)
	binary.BigEndian.PutUint64(hdr[4:12], f.ID)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(f.Payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, f.Payload...), nil
}

// WriteFrame serializes the frame to w in one Write call, so concurrent
// writers interleave only at frame granularity when w serializes writes.
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Encode marshals payload into a version-1 (JSON) frame.  A nil payload
// produces an empty frame body.  For version-aware encoding use
// EncodeFrame.
func Encode(op Opcode, id uint64, payload any) (Frame, error) {
	return EncodeFrame(ProtocolV1, op, id, payload)
}

// EncodeFrame marshals payload at the given protocol version.  Version 1
// marshals JSON; version 2 requires payload to be a pointer to one of this
// package's payload types (or nil) and appends its binary form.
func EncodeFrame(version uint8, op Opcode, id uint64, payload any) (Frame, error) {
	f := Frame{Op: op, ID: id, Version: version}
	if payload == nil {
		return f, nil
	}
	switch version {
	case 0, ProtocolV1:
		f.Version = ProtocolV1
		data, err := json.Marshal(payload)
		if err != nil {
			return Frame{}, fmt.Errorf("wire: encode %s: %w", op, err)
		}
		f.Payload = data
	case ProtocolV2:
		ba, ok := payload.(binaryPayload)
		if !ok {
			return Frame{}, fmt.Errorf("wire: encode %s: %T has no v2 binary form (pass a pointer to a wire payload type)", op, payload)
		}
		f.Payload = ba.appendBinary(nil)
	default:
		return Frame{}, fmt.Errorf("%w: cannot encode version %d", ErrBadFrame, version)
	}
	return f, nil
}

// encBufPool recycles payload buffers between EncodePooled and Recycle so
// the steady-state encode path performs no allocation.
var encBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// EncodePooled is EncodeFrame drawing the version-2 payload buffer from an
// internal pool.  The returned frame must be handed to Recycle after its
// last use (typically: after the socket write), or detached with
// Frame.Detach if it is retained.  Version-1 frames are encoded normally
// and Recycle is a no-op on them.
func EncodePooled(version uint8, op Opcode, id uint64, payload any) (Frame, error) {
	if version != ProtocolV2 || payload == nil {
		return EncodeFrame(version, op, id, payload)
	}
	ba, ok := payload.(binaryPayload)
	if !ok {
		return Frame{}, fmt.Errorf("wire: encode %s: %T has no v2 binary form (pass a pointer to a wire payload type)", op, payload)
	}
	bp := encBufPool.Get().(*[]byte)
	*bp = ba.appendBinary((*bp)[:0])
	return Frame{Op: op, ID: id, Version: ProtocolV2, Payload: *bp, pbuf: bp}, nil
}

// Recycle returns a pooled frame's payload buffer to the encode pool.  The
// frame (and any copy of it) must not be used afterwards.  Frames that are
// not pool-backed are ignored.
func Recycle(f Frame) {
	if f.pbuf == nil {
		return
	}
	encBufPool.Put(f.pbuf)
}

// Detach returns a frame safe to retain indefinitely: a pooled payload is
// copied out of the pool buffer, a plain frame is returned unchanged.
func (f Frame) Detach() Frame {
	if f.pbuf == nil {
		return f
	}
	f.Payload = append([]byte(nil), f.Payload...)
	f.pbuf = nil
	return f
}

// Decoder reads frames from a stream with a hard payload bound and a
// negotiable accepted-version window.
type Decoder struct {
	r          io.Reader
	max        uint32
	vmin, vmax uint8
	hdr        [HeaderSize]byte
	buf        []byte // NextReuse payload buffer, reused across frames
}

// NewDecoder returns a decoder over r accepting every protocol version
// this package speaks (pin the session version with SetVersion after
// negotiation).  maxPayload bounds per-frame allocation; values <= 0
// select DefaultMaxPayload.
func NewDecoder(r io.Reader, maxPayload int) *Decoder {
	max := uint32(DefaultMaxPayload)
	if maxPayload > 0 && maxPayload <= int(^uint32(0)) {
		max = uint32(maxPayload)
	}
	return &Decoder{r: r, max: max, vmin: ProtocolV1, vmax: MaxProtocolVersion}
}

// SetVersion pins the decoder to exactly one accepted protocol version.
// Sessions call it with ProtocolV1 before the handshake and with the
// negotiated version after; any frame carrying another version is then a
// protocol violation (ErrBadFrame) and the session disconnects.
func (d *Decoder) SetVersion(v uint8) { d.vmin, d.vmax = v, v }

// SetMax renegotiates the decoder's per-frame payload bound mid-stream.
// Sessions use it to raise the limit for authenticated cluster peers
// (bulk handoff frames exceed the client-facing cap) without loosening
// the hostile-input bound applied to ordinary connections; values <= 0
// are ignored.
func (d *Decoder) SetMax(maxPayload int) {
	if maxPayload > 0 && maxPayload <= int(^uint32(0)) {
		d.max = uint32(maxPayload)
	}
}

// Reset redirects the decoder to a new stream, keeping its payload bound,
// accepted versions, and internal buffers (so a pooled decoder stays
// allocation-free).
func (d *Decoder) Reset(r io.Reader) { d.r = r }

// Next reads one frame whose payload is freshly allocated and safe to
// retain.  The header is fully validated — magic, version window, opcode,
// declared length against the payload bound — before the payload is read
// or allocated, so a hostile length field fails with ErrFrameTooLarge at
// zero cost; any other violation returns an error wrapping ErrBadFrame.
// A clean EOF at a frame boundary returns io.EOF; EOF inside a frame
// returns io.ErrUnexpectedEOF.
func (d *Decoder) Next() (Frame, error) {
	return d.next(false)
}

// NextReuse is Next with the payload backed by an internal buffer that is
// overwritten by the following Next/NextReuse call.  It is the ingest hot
// path: after warm-up no allocation occurs per frame.  The caller must
// fully consume (or copy) the payload before decoding the next frame.
func (d *Decoder) NextReuse() (Frame, error) {
	return d.next(true)
}

func (d *Decoder) next(reuse bool) (Frame, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:1]); err != nil {
		return Frame{}, err
	}
	if _, err := io.ReadFull(d.r, d.hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if d.hdr[0] != magic[0] || d.hdr[1] != magic[1] {
		return Frame{}, fmt.Errorf("%w: bad magic %q", ErrBadFrame, d.hdr[:2])
	}
	v := d.hdr[2]
	if v < d.vmin || v > d.vmax {
		if d.vmin == d.vmax {
			return Frame{}, fmt.Errorf("%w: frame version %d, session negotiated %d", ErrBadFrame, v, d.vmin)
		}
		return Frame{}, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, v)
	}
	op := Opcode(d.hdr[3])
	if !op.valid() {
		return Frame{}, fmt.Errorf("%w: unknown opcode %d", ErrBadFrame, d.hdr[3])
	}
	n := binary.BigEndian.Uint32(d.hdr[12:16])
	if n > d.max {
		return Frame{}, fmt.Errorf("%w: declared %d bytes, negotiated max %d", ErrFrameTooLarge, n, d.max)
	}
	f := Frame{Op: op, ID: binary.BigEndian.Uint64(d.hdr[4:12]), Version: v}
	if n > 0 {
		if reuse {
			if cap(d.buf) < int(n) {
				d.buf = make([]byte, n)
			}
			f.Payload = d.buf[:n]
		} else {
			f.Payload = make([]byte, n)
		}
		if _, err := io.ReadFull(d.r, f.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
	}
	return f, nil
}

// Unmarshal decodes a frame payload into v according to the frame's
// protocol version: JSON for version 1 (unknown fields tolerated, for
// forward compatibility within the version) and the binary grammar for
// version 2 (v must be a pointer to the matching payload type).
func Unmarshal(f Frame, v any) error {
	return UnmarshalInterned(f, v, nil)
}

// UnmarshalInterned is Unmarshal with a string interner for the version-2
// hot path: recurring strings (object IDs, attribute names) resolve to
// previously allocated instances, so a steady-state update stream decodes
// with zero allocations.  A nil Interner disables interning.
func UnmarshalInterned(f Frame, v any, in Interner) error {
	if len(f.Payload) == 0 {
		return nil
	}
	if f.Version == ProtocolV2 {
		bd, ok := v.(binaryPayload)
		if !ok {
			return fmt.Errorf("%w: %s payload: %T has no v2 binary form", ErrBadFrame, f.Op, v)
		}
		// The reader is pooled: passing &r through the interface method
		// would force a heap allocation per decode otherwise.
		r := binReaderPool.Get().(*binReader)
		*r = binReader{data: f.Payload, in: in}
		err := bd.decodeBinary(r)
		off, n := r.off, len(r.data)
		r.data = nil
		binReaderPool.Put(r)
		if err != nil {
			return fmt.Errorf("%w: %s payload: %v", ErrBadFrame, f.Op, err)
		}
		if off != n {
			return fmt.Errorf("%w: %s payload: %d trailing bytes", ErrBadFrame, f.Op, n-off)
		}
		return nil
	}
	if err := json.Unmarshal(f.Payload, v); err != nil {
		return fmt.Errorf("%w: %s payload: %v", ErrBadFrame, f.Op, err)
	}
	return nil
}
