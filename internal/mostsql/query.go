package mostsql

import (
	"fmt"
	"math"

	"github.com/mostdb/most/internal/relstore"
	"github.com/mostdb/most/internal/temporal"
)

// Query processes a MOST query per §5.1.  Queries are SELECTs over exactly
// one MOST table and may reference dynamic attributes by name in both the
// SELECT and WHERE clauses; sub-attribute columns (A_value, A_updatetime,
// A_function) remain directly addressable.  useIndex selects the
// index-assisted variant for atoms of the form A op constant when a
// dynamic-attribute index exists.
func (s *System) Query(sql string) (*relstore.ResultSet, error) {
	return s.query(sql, false)
}

// QueryWithIndex is Query using available dynamic-attribute indexes.
func (s *System) QueryWithIndex(sql string) (*relstore.ResultSet, error) {
	return s.query(sql, true)
}

func (s *System) query(sql string, useIndex bool) (*relstore.ResultSet, error) {
	stmt, err := relstore.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	if len(stmt.Tables) != 1 {
		return nil, errNoMOSTTable(stmt.Tables)
	}
	ti, ok := s.tableInfo(stmt.Tables[0])
	if !ok {
		// Not a MOST table: pass the query through untouched.
		s.countQuery()
		return s.store.Exec(sql)
	}

	// Fast path: no dynamic references anywhere — pass through (§5.1: "if
	// the query does not contain a reference to a dynamic attribute ...
	// the query is simply passed to the DBMS").
	hasDynamicTargets := false
	if !stmt.Star {
		for _, tgt := range stmt.Targets {
			if len(dynamicRefs(tgt.Expr, ti)) > 0 {
				hasDynamicTargets = true
				break
			}
		}
	} else {
		hasDynamicTargets = len(ti.Dynamic) > 0
	}
	var whereAtoms []relstore.Expr
	if stmt.Where != nil {
		whereAtoms = collectDynamicAtoms(stmt.Where, ti)
	}
	if !hasDynamicTargets && len(whereAtoms) == 0 {
		s.countQuery()
		return s.store.Exec(sql)
	}

	now := s.now()
	t, _ := s.store.Table(ti.Name)

	// Decompose the WHERE clause: evaluate up to 2^k dynamic-free queries.
	type branch struct {
		where      relstore.Expr
		polarities []bool
	}
	var rows []relstore.Row
	var rec func(b branch, remaining []relstore.Expr) error
	rec = func(b branch, remaining []relstore.Expr) error {
		if len(remaining) > 0 {
			p := remaining[0]
			tr := branch{where: substituteAtom(b.where, p, relstore.Lit(relstore.Bool(true))), polarities: append(append([]bool{}, b.polarities...), true)}
			fa := branch{where: substituteAtom(b.where, p, relstore.Lit(relstore.Bool(false))), polarities: append(append([]bool{}, b.polarities...), false)}
			if err := rec(tr, remaining[1:]); err != nil {
				return err
			}
			return rec(fa, remaining[1:])
		}
		// Leaf: dynamic-free query against the DBMS.  The target list is
		// widened to the full row (sub-attributes plus key) so the MOST
		// layer can evaluate the eliminated atoms on each returned tuple.
		leaf := &relstore.SelectStmt{Star: true, Tables: []string{ti.Name}, Where: b.where}
		s.countQuery()
		rs, err := s.store.Exec(leaf.SQL())
		if err != nil {
			return err
		}
		// Per-atom satisfier sets from indexes, when requested.
		var indexSets []map[string]bool
		if useIndex {
			indexSets = make([]map[string]bool, len(whereAtoms))
			for i, atom := range whereAtoms {
				indexSets[i] = s.indexSatisfiers(ti, atom, now)
			}
		}
		for _, row := range rs.Rows {
			keep := true
			for i, atom := range whereAtoms {
				var sat bool
				if useIndex && indexSets != nil && indexSets[i] != nil {
					ki, _ := t.ColIndex(ti.Key)
					sat = indexSets[i][row[ki].String()]
				} else {
					v, err := s.evalOnRow(atom, ti, t, row, now)
					if err != nil {
						return err
					}
					if v.Kind != relstore.KBool {
						return fmt.Errorf("mostsql: dynamic atom is not boolean")
					}
					sat = v.B
				}
				if sat != b.polarities[i] {
					keep = false
					break
				}
			}
			if keep {
				rows = append(rows, row)
			}
		}
		return nil
	}
	if err := rec(branch{where: stmt.Where}, whereAtoms); err != nil {
		return nil, err
	}

	// Project onto the original target list, computing dynamic values.
	out := &relstore.ResultSet{}
	if stmt.Star {
		out.Columns = append(out.Columns, ti.Key)
		out.Columns = append(out.Columns, ti.Static...)
		out.Columns = append(out.Columns, ti.Dynamic...)
	} else {
		for _, tgt := range stmt.Targets {
			out.Columns = append(out.Columns, tgt.Name)
		}
	}
	for _, row := range rows {
		var orow relstore.Row
		if stmt.Star {
			ki, _ := t.ColIndex(ti.Key)
			orow = append(orow, row[ki])
			for _, c := range ti.Static {
				ci, _ := t.ColIndex(c)
				orow = append(orow, row[ci])
			}
			for _, a := range ti.Dynamic {
				d, err := rowDynamicAttr(t, row, a)
				if err != nil {
					return nil, err
				}
				orow = append(orow, relstore.Num(d.At(now)))
			}
		} else {
			for _, tgt := range stmt.Targets {
				v, err := s.evalOnRow(tgt.Expr, ti, t, row, now)
				if err != nil {
					return nil, err
				}
				orow = append(orow, v)
			}
		}
		out.Rows = append(out.Rows, orow)
	}
	return out, nil
}

// evalOnRow evaluates an expression over one fetched row, substituting
// dynamic attribute references by their value at time now.
func (s *System) evalOnRow(e relstore.Expr, ti *TableInfo, t *relstore.Table, row relstore.Row, now temporal.Tick) (relstore.Value, error) {
	return relstore.EvalExpr(e, func(_, col string) (relstore.Value, error) {
		if ti.IsDynamic(col) {
			d, err := rowDynamicAttr(t, row, col)
			if err != nil {
				return relstore.Value{}, err
			}
			return relstore.Num(d.At(now)), nil
		}
		ci, ok := t.ColIndex(col)
		if !ok {
			return relstore.Value{}, fmt.Errorf("mostsql: unknown column %s", col)
		}
		return row[ci], nil
	})
}

// collectDynamicAtoms returns the maximal comparison atoms of the WHERE
// clause that reference a dynamic attribute (§5.1's "atoms that refer to
// dynamic attributes").
func collectDynamicAtoms(e relstore.Expr, ti *TableInfo) []relstore.Expr {
	var out []relstore.Expr
	var walk func(relstore.Expr)
	walk = func(e relstore.Expr) {
		switch n := e.(type) {
		case relstore.BinExpr:
			op, l, r := n.Parts()
			switch op {
			case "AND", "OR":
				walk(l)
				walk(r)
			default:
				if len(dynamicRefs(n, ti)) > 0 {
					out = append(out, n)
				}
			}
		case relstore.NotExpr:
			walk(n.Inner())
		}
	}
	walk(e)
	return out
}

// substituteAtom replaces every occurrence of atom in e by repl (atoms are
// compared structurally via their SQL rendering).
func substituteAtom(e, atom, repl relstore.Expr) relstore.Expr {
	if e == nil {
		return nil
	}
	if relstore.SQLString(e) == relstore.SQLString(atom) {
		return repl
	}
	switch n := e.(type) {
	case relstore.BinExpr:
		op, l, r := n.Parts()
		return relstore.Bin(op, substituteAtom(l, atom, repl), substituteAtom(r, atom, repl))
	case relstore.NotExpr:
		return relstore.Not(substituteAtom(n.Inner(), atom, repl))
	default:
		return e
	}
}

// indexSatisfiers answers atom via a dynamic-attribute index when the atom
// has the shape A op constant and an index on A exists; it returns nil when
// the index path does not apply.  Candidates from the index probe are
// verified exactly, so strict operators are handled correctly.
func (s *System) indexSatisfiers(ti *TableInfo, atom relstore.Expr, now temporal.Tick) map[string]bool {
	bin, ok := atom.(relstore.BinExpr)
	if !ok {
		return nil
	}
	op, l, r := bin.Parts()
	colE, okL := l.(relstore.ColExpr)
	litE, okR := r.(relstore.LitExpr)
	if !okL || !okR {
		// Try constant op column.
		if litE2, ok2 := l.(relstore.LitExpr); ok2 {
			if colE2, ok3 := r.(relstore.ColExpr); ok3 {
				colE, litE = colE2, litE2
				switch op {
				case "<":
					op = ">"
				case "<=":
					op = ">="
				case ">":
					op = "<"
				case ">=":
					op = "<="
				}
				okL, okR = true, true
			}
		}
		if !okL || !okR {
			return nil
		}
	}
	_, col := colE.Parts()
	if !ti.IsDynamic(col) || litE.Value().Kind != relstore.KNum {
		return nil
	}
	ix := s.indexFor(ti.Name, col)
	if ix == nil {
		return nil
	}
	c := litE.Value().F
	var lo, hi float64
	switch op {
	case "=", "<=", "<":
		lo, hi = math.Inf(-1), c
		if op == "=" {
			lo = c
		}
	case ">=", ">":
		lo, hi = c, math.Inf(1)
	default:
		return nil
	}
	out := map[string]bool{}
	for _, id := range ix.InstantQuery(lo, hi, now) {
		out[string(id)] = true
	}
	if op == "<" || op == ">" {
		// Exclude the exact-boundary candidates.
		for _, id := range ix.InstantQuery(c, c, now) {
			delete(out, string(id))
		}
	}
	return out
}
