package client

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/server"
	"github.com/mostdb/most/internal/wire"
	"github.com/mostdb/most/internal/workload"
)

// startServer serves a small fleet for client tests.  The server package's
// own tests cover the service side; these exercise the client's API
// surface, retry discipline, and lifecycle.
func startServer(t *testing.T, n int) (*server.Server, string) {
	t.Helper()
	db, err := workload.Fleet(workload.FleetSpec{
		N:        n,
		Region:   geom.Rect{Max: geom.Point{X: 100, Y: 100}},
		MaxSpeed: 2,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, query.NewEngine(db), server.Config{
		BaseOptions: query.Options{
			Horizon: 50,
			Regions: map[string]geom.Polygon{"P": geom.RectPolygon(20, 20, 70, 70)},
		},
	})
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr().String()
}

func TestClientTypedCalls(t *testing.T) {
	_, addr := startServer(t, 8)
	c, err := Dial(addr,
		WithClientID("typed-calls"),
		WithTimeout(5*time.Second),
		WithRetries(2),
		WithMaxPayload(wire.DefaultMaxPayload))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	now, _, err := c.Query(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetMotion("car-00000", 1, 1); err != nil {
		t.Fatal(err)
	}
	tick, err := c.Advance(2)
	if err != nil {
		t.Fatal(err)
	}
	if tick != now+2 {
		t.Fatalf("advance: got %d, want %d", tick, now+2)
	}
	objs, err := c.Objects("")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs.Objects) != 8 {
		t.Fatalf("objects: %d, want 8", len(objs.Objects))
	}

	data, err := c.SnapshotSave()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := most.LoadSnapshotJSON(data); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	resp, err := c.SnapshotLoad(data)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Objects != 8 {
		t.Fatalf("load: %d objects, want 8", resp.Objects)
	}
}

func TestClientServerErrorsNotRetried(t *testing.T) {
	_, addr := startServer(t, 3)
	c, err := Dial(addr, WithRetries(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A semantic error comes back once; the retry loop must not kick in
	// (it would be visible as a multi-second backoff delay).
	start := time.Now()
	_, _, err = c.Query(`RETRIEVE`, 0)
	if err == nil {
		t.Fatal("malformed query succeeded")
	}
	if !strings.Contains(err.Error(), "server:") {
		t.Fatalf("not a server-reported error: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("server error took %v; was it retried?", d)
	}
	if err := c.SetMotion("no-such-object", 1, 0); err == nil {
		t.Fatal("update of missing object succeeded")
	}
	// The connection survives server-reported errors.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestClientClosedLifecycle(t *testing.T) {
	_, addr := startServer(t, 3)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := c.Ping(); !errors.Is(err, ErrClosed) {
		t.Fatalf("ping on closed client: %v, want ErrClosed", err)
	}
}

func TestClientDialFailure(t *testing.T) {
	// A dead address fails after the retry budget, not forever.
	_, err := Dial("127.0.0.1:1", WithRetries(1))
	if err != nil {
		return // immediate refusal is fine
	}
	t.Fatal("dial of a dead port succeeded")
}

// TestClientResolverHeal kills the node a subscribed client is talking to
// and proves the heal loop consults the WithResolver hook, redials the
// address it returns (not the dead one), and resumes the parked
// subscription on the replacement — the cluster router's mechanism for
// following objects to whichever node now owns them.
func TestClientResolverHeal(t *testing.T) {
	srvA, addrA := startServer(t, 4)
	_, addrB := startServer(t, 6) // distinguishable fleet size: 6 proves B answered

	var mu sync.Mutex
	calls := 0
	c, err := Dial(addrA,
		WithClientID("resolver-heal"),
		WithRetries(20),
		WithBackoff(10*time.Millisecond, 100*time.Millisecond),
		WithResolver(func(prev string) (string, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			if prev != addrA && prev != addrB {
				t.Errorf("resolver consulted with unknown previous address %q", prev)
			}
			return addrB, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sub, err := c.Subscribe(`RETRIEVE o FROM Vehicles o WHERE Eventually WITHIN 30 INSIDE(o, P)`, 50)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, _, err := sub.Answer(); err != nil {
		t.Fatal(err)
	}

	// Crash the original node mid-subscription.  The heal loop must ask the
	// resolver where to go and come back on B.
	srvA.Abort()
	if err := c.Ping(); err != nil {
		t.Fatalf("client never healed onto the resolved node: %v", err)
	}
	objs, err := c.Objects("")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs.Objects) != 6 {
		t.Fatalf("healed client sees %d objects, want 6 — it redialed the wrong node", len(objs.Objects))
	}
	mu.Lock()
	consulted := calls
	mu.Unlock()
	if consulted == 0 {
		t.Fatal("heal loop reconnected without consulting the resolver")
	}

	// The subscription must have followed: it is live on B and pushes when
	// B's answer changes.
	if err := sub.Err(); err != nil {
		t.Fatalf("subscription did not survive the heal: %v", err)
	}
	_, seq0, err := sub.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdateBatch([]wire.UpdateOp{parkedInsert(t, "car-healed", 25, 25)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		_, seq, err := sub.Answer()
		if err != nil {
			t.Fatalf("healed subscription failed: %v", err)
		}
		if seq > seq0 {
			break
		}
		select {
		case <-sub.Updates():
		case <-deadline:
			t.Fatal("healed subscription never pushed from the replacement node")
		}
	}
}

// parkedInsert builds an OpInsert for a fresh vehicle parked at (x, y).
func parkedInsert(t *testing.T, id string, x, y float64) wire.UpdateOp {
	t.Helper()
	o, err := most.NewObject(most.ObjectID(id), workload.VehicleClass)
	if err != nil {
		t.Fatal(err)
	}
	if o, err = o.WithStatic("PRICE", most.Float(1)); err != nil {
		t.Fatal(err)
	}
	if o, err = o.WithPosition(motion.MovingFrom(geom.Point{X: x, Y: y}, geom.Vector{}, 0)); err != nil {
		t.Fatal(err)
	}
	data, err := most.EncodeObjectJSON(o)
	if err != nil {
		t.Fatal(err)
	}
	return wire.UpdateOp{Op: wire.OpInsert, ID: id, Object: data}
}

func TestClientSubscriptionLifecycle(t *testing.T) {
	srv, addr := startServer(t, 6)
	_ = srv
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sub, err := c.Subscribe(`RETRIEVE o FROM Vehicles o WHERE Eventually WITHIN 30 INSIDE(o, P)`, 50)
	if err != nil {
		t.Fatal(err)
	}
	answer0, seq0, err := sub.Answer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Current(0); err != nil {
		t.Fatal(err)
	}
	_ = answer0

	// A deterministically answer-changing update pushes a new answer:
	// inserting a fresh vehicle parked inside P adds a tuple no matter
	// where the existing fleet is.  (A motion change on an existing car is
	// no longer guaranteed to push — it may be skipped as spatially
	// irrelevant or suppressed as a no-change install.)
	if _, err := c.UpdateBatch([]wire.UpdateOp{parkedInsert(t, "car-fresh", 25, 25)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		_, seq, err := sub.Answer()
		if err != nil {
			t.Fatal(err)
		}
		if seq > seq0 {
			break
		}
		select {
		case <-sub.Updates():
		case <-deadline:
			t.Fatal("no push within 10s")
		}
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("live subscription reports error: %v", err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done not signalled after Close")
	}
	// Answer after close still returns the last answer with the error.
	if _, _, err := sub.Answer(); err == nil {
		t.Fatal("closed subscription reports no error")
	}

	// A malformed subscription is rejected by the server.
	if _, err := c.Subscribe(`RETRIEVE`, 50); err == nil {
		t.Fatal("malformed subscribe succeeded")
	}
}

func TestClientSubscriptionFailsOnClose(t *testing.T) {
	_, addr := startServer(t, 4)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`, 50)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case <-sub.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("subscription not failed by client close")
	}
	if sub.Err() == nil {
		t.Fatal("subscription has no error after client close")
	}
}
