package eval

import (
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/most"
)

// BindDomains populates the context's variable domains from a query's FROM
// clause, using classOf to enumerate each class's objects.
func (c *Context) BindDomains(q *ftl.Query, idsOf func(class string) []most.ObjectID) error {
	if c.Domains == nil {
		c.Domains = map[string][]Val{}
	}
	for _, b := range q.Bindings {
		if _, dup := c.Domains[b.Var]; dup {
			return errf("variable %q bound twice", b.Var)
		}
		ids := idsOf(b.Class)
		dom := make([]Val, len(ids))
		for i, id := range ids {
			dom[i] = ObjVal(id)
		}
		c.Domains[b.Var] = dom
	}
	return nil
}

// EvalQueryPinned evaluates q with the FROM-bound variable pin restricted
// to the single value val, returning Answer(CQ) limited to the tuples whose
// pin column equals val.  It reuses the whole atom/term machinery (and the
// motion index, via the context's candidate hook) but enumerates only the
// pinned object's instantiations — the per-object entry point behind the
// query engine's delta maintenance.  The context is not modified.
func EvalQueryPinned(q *ftl.Query, c *Context, pin string, val Val) (*Relation, error) {
	if _, ok := c.Domains[pin]; !ok {
		return nil, errf("pinned variable %q has no FROM binding", pin)
	}
	pc := *c
	pc.Domains = make(map[string][]Val, len(c.Domains))
	for k, dom := range c.Domains {
		pc.Domains[k] = dom
	}
	pc.Domains[pin] = []Val{val}
	return EvalQuery(q, &pc)
}

// EvalQuery evaluates a full query and returns Answer(CQ): a relation over
// the target variables whose tuples carry, per instantiation, the interval
// set during which the instantiation satisfies the WHERE formula (§3.5).
// The caller must have populated Domains (directly or via BindDomains).
func EvalQuery(q *ftl.Query, c *Context) (*Relation, error) {
	for _, tgt := range q.Targets {
		if _, ok := c.Domains[tgt]; !ok {
			return nil, errf("target variable %q has no FROM binding", tgt)
		}
	}
	sub := c.Span.Child("subformula_eval")
	rel, err := c.EvalFormula(q.Where)
	sub.End()
	if err != nil {
		return nil, err
	}
	asm := c.Span.Child("answer_assembly")
	out, err := rel.Expand(q.Targets, c.Domains)
	if out != nil {
		asm.Annotate("tuples", int64(out.Len()))
	}
	asm.End()
	return out, err
}
