package experiments

// The live chaos benchmark behind `mostbench -chaos`: runs the scripted
// end-to-end fault scenarios (internal/chaos) against a real durable
// server over TCP and distills the robustness numbers an operator cares
// about — how long a crash-restart takes to recover, and how long a
// client fleet takes to land its first commit after failover.  The
// results ride in BENCH_faults.json under the "chaos" key, next to the
// simulated fault sweep (E13).

import (
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/mostdb/most/internal/chaos"
)

// ChaosStats is one scenario's aggregate across all seeds.
type ChaosStats struct {
	Scenario string  `json:"scenario"`
	Seeds    []int64 `json:"seeds"`
	Restarts int     `json:"restarts"`

	// Recovery: NewDurable's WAL/checkpoint replay time at each restart.
	RecoveryP50Ns int64 `json:"recovery_p50_ns"`
	RecoveryP99Ns int64 `json:"recovery_p99_ns"`

	// Failover: from the post-restart serve to a client's first committed
	// probe, including the client's reconnect backoff.
	FailoverP50Ns int64 `json:"failover_p50_ns"`
	FailoverP99Ns int64 `json:"failover_p99_ns"`

	Reconnects int64 `json:"client_reconnects"`
	ResumeRows int64 `json:"resume_gap_rows"`
}

// ChaosReport is the "chaos" payload in BENCH_faults.json.
type ChaosReport struct {
	Results []ChaosStats `json:"results"`
}

func pctNs(ds []time.Duration, p float64) int64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[int(p*float64(len(sorted)-1))].Nanoseconds()
}

// ChaosBench runs every scenario at each seed.  Each run gets a fresh
// scratch directory; a scenario failure is a hard error — the benchmark
// doubles as an end-to-end correctness gate.
func ChaosBench(quick bool) (*ChaosReport, error) {
	seeds := []int64{1, 7, 23}
	if quick {
		seeds = []int64{1}
	}
	scenarios := []struct {
		name string
		run  func(dir string, seed int64) (chaos.Result, error)
	}{
		{"kill-restart", chaos.KillRestart},
		{"partition", chaos.Partition},
		{"churn", chaos.Churn},
	}

	rep := &ChaosReport{}
	for _, sc := range scenarios {
		stats := ChaosStats{Scenario: sc.name, Seeds: seeds}
		var recoveries, failovers []time.Duration
		for _, seed := range seeds {
			dir, err := os.MkdirTemp("", "mostbench-chaos-*")
			if err != nil {
				return nil, err
			}
			res, err := sc.run(dir, seed)
			os.RemoveAll(dir)
			if err != nil {
				return nil, fmt.Errorf("%s seed=%d: %w", sc.name, seed, err)
			}
			recoveries = append(recoveries, res.Recoveries...)
			failovers = append(failovers, res.Failovers...)
			stats.Reconnects += res.Reconnects
			stats.ResumeRows += res.ResumeRows
		}
		stats.Restarts = len(recoveries)
		stats.RecoveryP50Ns = pctNs(recoveries, 0.50)
		stats.RecoveryP99Ns = pctNs(recoveries, 0.99)
		stats.FailoverP50Ns = pctNs(failovers, 0.50)
		stats.FailoverP99Ns = pctNs(failovers, 0.99)
		rep.Results = append(rep.Results, stats)
	}
	return rep, nil
}

// Table renders the chaos report in the experiment-table format.
func (r *ChaosReport) Table() *Table {
	t := &Table{
		ID:    "CHAOS",
		Title: "live fault injection: crash-restart recovery and client failover",
		Claim: "a durable server restarted from its WAL converges clients to the exact committed state; recovery and failover complete in milliseconds at this scale",
		Columns: []string{
			"scenario", "seeds", "restarts",
			"recover-p50", "recover-p99", "failover-p50", "failover-p99",
			"reconnects", "resume-rows",
		},
	}
	for _, s := range r.Results {
		t.AddRow(
			s.Scenario,
			fmt.Sprintf("%d", len(s.Seeds)),
			fmt.Sprintf("%d", s.Restarts),
			time.Duration(s.RecoveryP50Ns).Round(time.Microsecond).String(),
			time.Duration(s.RecoveryP99Ns).Round(time.Microsecond).String(),
			time.Duration(s.FailoverP50Ns).Round(time.Microsecond).String(),
			time.Duration(s.FailoverP99Ns).Round(time.Microsecond).String(),
			fmt.Sprintf("%d", s.Reconnects),
			fmt.Sprintf("%d", s.ResumeRows),
		)
	}
	t.Notes = append(t.Notes,
		"recovery = NewDurable replay time at restart; failover = restart-to-first-committed-probe, including client backoff",
		"every run also asserts byte-identical state against a differential oracle and gap-free notification streams",
	)
	return t
}
