package wire

import (
	"bytes"
	"testing"
)

// TestIngestZeroAlloc is the allocation-regression guard for the v2 ingest
// hot path: frame decode with a reused payload buffer (Decoder.NextReuse),
// payload decode into a reused struct with interned object IDs
// (UnmarshalInterned), pooled response encode (EncodePooled/Recycle), and
// response framing into a reused write buffer (AppendFrame) — the exact
// per-request cycle of the server's update-batch handler.  Steady state
// must be 0 allocs/op; any regression here reappears as GC pressure at
// ingest rates of hundreds of thousands of updates per second.
func TestIngestZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	// One realistic update batch: 16 motion updates over a recurring ID set.
	var req UpdateBatchReq
	for i := 0; i < 16; i++ {
		req.Ops = append(req.Ops, UpdateOp{
			Op: OpSetMotion, ID: "car-" + string(rune('a'+i)), VX: float64(i), VY: -float64(i),
		})
	}
	f, err := EncodeFrame(ProtocolV2, OpUpdateBatch, 42, &req)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}

	rd := bytes.NewReader(stream)
	dec := NewDecoder(rd, 1<<20)
	dec.SetVersion(ProtocolV2)
	intern := Interner{}
	var decoded UpdateBatchReq
	var resp UpdateBatchResp
	wbuf := make([]byte, 0, 64)

	cycle := func() {
		rd.Reset(stream)
		dec.Reset(rd)
		fr, err := dec.NextReuse()
		if err != nil {
			t.Fatal(err)
		}
		decoded.Ops = decoded.Ops[:0]
		if err := UnmarshalInterned(fr, &decoded, intern); err != nil {
			t.Fatal(err)
		}
		if len(decoded.Ops) != len(req.Ops) {
			t.Fatalf("decoded %d ops, want %d", len(decoded.Ops), len(req.Ops))
		}
		resp = UpdateBatchResp{Applied: len(decoded.Ops), Now: 7, Version: 99}
		out, err := EncodePooled(ProtocolV2, OpResult, fr.ID, &resp)
		if err != nil {
			t.Fatal(err)
		}
		wbuf, err = AppendFrame(wbuf[:0], out)
		if err != nil {
			t.Fatal(err)
		}
		Recycle(out)
	}
	cycle() // warm-up: grows the reused buffers and seeds the interner

	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("ingest hot path allocates %.1f times per request, want 0", allocs)
	}
}

// BenchmarkIngestV2 measures the full per-request decode+encode cycle the
// server runs per update batch, for the ARCHITECTURE.md profile table.
func BenchmarkIngestV2(b *testing.B) {
	benchmarkIngest(b, ProtocolV2)
}

// BenchmarkIngestV1 is the JSON baseline for the same cycle.
func BenchmarkIngestV1(b *testing.B) {
	benchmarkIngest(b, ProtocolV1)
}

func benchmarkIngest(b *testing.B, version uint8) {
	var req UpdateBatchReq
	for i := 0; i < 16; i++ {
		req.Ops = append(req.Ops, UpdateOp{
			Op: OpSetMotion, ID: "car-" + string(rune('a'+i)), VX: float64(i), VY: -float64(i),
		})
	}
	f, err := EncodeFrame(version, OpUpdateBatch, 42, &req)
	if err != nil {
		b.Fatal(err)
	}
	stream, err := AppendFrame(nil, f)
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(stream)
	dec := NewDecoder(rd, 1<<20)
	dec.SetVersion(version)
	intern := Interner{}
	var decoded UpdateBatchReq
	var resp UpdateBatchResp
	wbuf := make([]byte, 0, 64)
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(stream)
		dec.Reset(rd)
		fr, err := dec.NextReuse()
		if err != nil {
			b.Fatal(err)
		}
		decoded.Ops = decoded.Ops[:0]
		if err := UnmarshalInterned(fr, &decoded, intern); err != nil {
			b.Fatal(err)
		}
		resp = UpdateBatchResp{Applied: len(decoded.Ops), Now: 7, Version: 99}
		out, err := EncodePooled(version, OpResult, fr.ID, &resp)
		if err != nil {
			b.Fatal(err)
		}
		wbuf, err = AppendFrame(wbuf[:0], out)
		if err != nil {
			b.Fatal(err)
		}
		Recycle(out)
	}
}
