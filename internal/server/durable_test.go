package server

// Crash-safety tests for the durable server: kill -9 (Abort) and restart
// from the write-ahead log, idempotent retries straddling the crash,
// partial-batch roll-forward, checkpoint + dedup sidecar recovery,
// admission control, deadline refusal, epoch fencing, and health
// lifecycle.

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/wire"
	"github.com/mostdb/most/internal/workload"
)

func seedFleet() *most.Database {
	db, err := workload.Fleet(workload.FleetSpec{
		N:        5,
		Region:   geom.Rect{Max: geom.Point{X: 100, Y: 100}},
		MaxSpeed: 2,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	return db
}

// startDurable recovers-or-seeds a durable server from dir and serves it
// on addr ("" = fresh port).  The caller stops it (Abort or Shutdown).
func startDurable(t *testing.T, dir, addr string, cfg Config) (*Server, *RecoveryInfo) {
	t.Helper()
	srv, info, err := NewDurable(dir, cfg, seedFleet)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if err := srv.ListenAndServe(addr); err != nil {
		t.Fatal(err)
	}
	return srv, info
}

// rawConn is a hand-driven protocol-v1 connection with explicit control
// over ClientID, request IDs and epochs — the knobs the crash tests need.
type rawConn struct {
	t   *testing.T
	c   net.Conn
	dec *wire.Decoder
}

// rawDial connects and says Hello; it returns the raw Hello response
// frame so callers can assert rejections too.
func rawDial(t *testing.T, addr, clientID string, epoch uint64) (*rawConn, wire.Frame) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r := &rawConn{t: t, c: c, dec: wire.NewDecoder(c, wire.DefaultMaxPayload)}
	f, err := wire.Encode(wire.OpHello, 1, wire.HelloReq{ClientID: clientID, MaxVersion: 1, Epoch: epoch})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(c, f); err != nil {
		t.Fatal(err)
	}
	resp, err := r.dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	return r, resp
}

func mustHello(t *testing.T, addr, clientID string, epoch uint64) (*rawConn, wire.HelloResp) {
	t.Helper()
	r, f := rawDial(t, addr, clientID, epoch)
	if f.Op == wire.OpError {
		var e wire.ErrorResp
		_ = wire.Unmarshal(f, &e)
		t.Fatalf("hello rejected: %s (%s)", e.Msg, e.Code)
	}
	var hello wire.HelloResp
	if err := wire.Unmarshal(f, &hello); err != nil {
		t.Fatal(err)
	}
	return r, hello
}

func (r *rawConn) call(op wire.Opcode, id uint64, payload any) wire.Frame {
	r.t.Helper()
	f, err := wire.Encode(op, id, payload)
	if err != nil {
		r.t.Fatal(err)
	}
	if err := wire.WriteFrame(r.c, f); err != nil {
		r.t.Fatal(err)
	}
	resp, err := r.dec.Next()
	if err != nil {
		r.t.Fatal(err)
	}
	return resp
}

func (r *rawConn) update(id uint64, ops []wire.UpdateOp) wire.UpdateBatchResp {
	r.t.Helper()
	f := r.call(wire.OpUpdateBatch, id, &wire.UpdateBatchReq{Ops: ops})
	if f.Op == wire.OpError {
		var e wire.ErrorResp
		_ = wire.Unmarshal(f, &e)
		r.t.Fatalf("update %d refused: %s (%s)", id, e.Msg, e.Code)
	}
	var resp wire.UpdateBatchResp
	if err := wire.Unmarshal(f, &resp); err != nil {
		r.t.Fatal(err)
	}
	return resp
}

func (r *rawConn) snapshot() []byte {
	r.t.Helper()
	f := r.call(wire.OpSnapshotSave, 1<<40, nil)
	var resp wire.SnapshotResp
	if err := wire.Unmarshal(f, &resp); err != nil {
		r.t.Fatal(err)
	}
	return resp.Data
}

func motionOp(car int, vx, vy float64) wire.UpdateOp {
	return wire.UpdateOp{Op: wire.OpSetMotion, ID: vid(car), VX: vx, VY: vy}
}

// The satellite acceptance test: commit over TCP, hard-kill the server,
// restart from the WAL, and prove (a) the committed state survived
// byte-identically, and (b) a retry of an already-committed request is
// replayed, not re-applied.
func TestDurableCrashRestartExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	srv, info := startDurable(t, dir, "", Config{})
	if !info.Fresh {
		t.Fatal("expected fresh start")
	}
	addr := srv.Addr().String()

	r1, hello := mustHello(t, addr, "alice", 1)
	if hello.Resumed {
		t.Fatal("fresh server claims a resumed session")
	}
	first := r1.update(1, []wire.UpdateOp{motionOp(0, 3, 1), motionOp(1, -2, 0)})
	if first.Applied != 2 {
		t.Fatalf("applied %d of 2", first.Applied)
	}
	before := r1.snapshot()
	r1.c.Close()

	srv.Abort() // kill -9: no drain, no checkpoint

	srv2, info2 := startDurable(t, dir, addr, Config{})
	defer srv2.Abort()
	if info2.Fresh {
		t.Fatal("restart treated a populated directory as fresh")
	}
	if info2.Receipts == 0 {
		t.Fatal("no receipts recovered: retries would double-apply")
	}

	r2, hello2 := mustHello(t, addr, "alice", 2)
	if !hello2.Resumed {
		t.Fatal("recovered server did not report the client as resumed")
	}
	// The duplicate in-flight retry: same request ID, same payload.  It
	// must be answered from the recovered receipt with the original
	// response, not executed again.
	replay := r2.update(1, []wire.UpdateOp{motionOp(0, 3, 1), motionOp(1, -2, 0)})
	if replay.Version != first.Version || replay.Applied != first.Applied {
		t.Fatalf("retry re-executed: got version %d applied %d, want %d/%d",
			replay.Version, replay.Applied, first.Version, first.Applied)
	}
	after := r2.snapshot()
	if string(before) != string(after) {
		t.Fatal("recovered state differs from committed pre-crash state")
	}
	// A fresh mutation lands exactly one version past the original —
	// nothing was double-applied in between.
	probe := r2.update(2, []wire.UpdateOp{motionOp(2, 1, 1)})
	if probe.Version != first.Version+1 {
		t.Fatalf("version after restart+retry = %d, want %d", probe.Version, first.Version+1)
	}
}

// A checkpoint plus its dedup sidecar must carry both the state and the
// exactly-once receipts across a crash, even with the WAL truncated.
func TestDurableCheckpointSidecarSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv, _ := startDurable(t, dir, "", Config{})
	addr := srv.Addr().String()

	r1, _ := mustHello(t, addr, "alice", 1)
	first := r1.update(1, []wire.UpdateOp{motionOp(0, 5, 5)})
	r1.c.Close()
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv.Abort()

	srv2, info := startDurable(t, dir, addr, Config{})
	defer srv2.Abort()
	if info.Receipts == 0 {
		t.Fatal("sidecar receipts lost across checkpoint+crash")
	}

	// Restoring a checkpoint restarts the version counter, so sandwich the
	// replay between two fresh probes: if the retry had re-executed, the
	// second probe would land two versions past the first.
	r2, _ := mustHello(t, addr, "alice", 2)
	probeA := r2.update(2, []wire.UpdateOp{motionOp(1, 1, 0)})
	replay := r2.update(1, []wire.UpdateOp{motionOp(0, 5, 5)})
	if replay.Version != first.Version {
		t.Fatalf("post-checkpoint retry not answered from receipt: version %d, want %d", replay.Version, first.Version)
	}
	probeB := r2.update(3, []wire.UpdateOp{motionOp(2, 1, 0)})
	if probeB.Version != probeA.Version+1 {
		t.Fatalf("replay applied %d mutations, want 0", probeB.Version-probeA.Version-1)
	}
}

// A crash can land between a batch's WAL records and its receipt: the
// recovered server holds a prefix of the batch.  The client's retry must
// roll forward — apply only the unlogged suffix — so the batch still
// lands exactly once.
func TestDurablePartialBatchRollsForward(t *testing.T) {
	dir := t.TempDir()

	// Handcraft the crashed state: a WAL whose tail is two provenance-
	// stamped ops of alice's three-op request 9, receipt never written.
	db := most.NewDatabase()
	w, err := most.OpenWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineClass(workload.VehicleClass); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		o, err := most.NewObject(most.ObjectID(vid(i)), workload.VehicleClass)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	batch := []wire.UpdateOp{motionOp(0, 1, 0), motionOp(1, 2, 0), motionOp(2, 3, 0)}
	for i, op := range batch[:2] { // ...the third op never made the log
		if err := db.SetMotionProv(most.ObjectID(op.ID), geom.Vector{X: op.VX}, &most.Prov{Client: "alice", Req: 9, Op: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	srv, info := startDurable(t, dir, "", Config{})
	defer srv.Abort()
	if info.Partials != 1 {
		t.Fatalf("recovered %d partials, want 1", info.Partials)
	}

	r, hello := mustHello(t, srv.Addr().String(), "alice", 1)
	if !hello.Resumed {
		t.Fatal("client with a recovered partial not reported as resumed")
	}
	base := r.update(8, []wire.UpdateOp{motionOp(4, 9, 9)})
	retry := r.update(9, batch)
	if retry.Applied != len(batch) {
		t.Fatalf("retry applied %d of %d", retry.Applied, len(batch))
	}
	// Exactly one mutation beyond the probe: ops 0 and 1 were skipped
	// (already in the log), only op 2 executed.
	if retry.Version != base.Version+1 {
		t.Fatalf("roll-forward applied %d ops, want 1", retry.Version-base.Version)
	}
}

func TestAdmissionControlShedsAndClientRetries(t *testing.T) {
	reg := obs.New()
	dir := t.TempDir()
	srv, _ := startDurable(t, dir, "", Config{MaxInflight: 1, Reg: reg})
	defer srv.Abort()
	addr := srv.Addr().String()

	// Occupy the only slot, as a stuck in-flight request would.
	srv.admit <- struct{}{}

	r, _ := mustHello(t, addr, "raw", 1)
	if f := r.call(wire.OpPing, 2, nil); f.Op == wire.OpError {
		t.Fatal("ping must be exempt from admission control")
	}
	f := r.call(wire.OpUpdateBatch, 3, &wire.UpdateBatchReq{Ops: []wire.UpdateOp{motionOp(0, 1, 1)}})
	if f.Op != wire.OpError {
		t.Fatal("overloaded server executed instead of shedding")
	}
	var e wire.ErrorResp
	_ = wire.Unmarshal(f, &e)
	if e.Code != wire.CodeOverloaded {
		t.Fatalf("shed code = %q, want %q", e.Code, wire.CodeOverloaded)
	}
	if reg.Counter("server.shed_requests").Value() == 0 {
		t.Fatal("server.shed_requests not incremented")
	}

	// A real client rides out the shed window under backoff and lands the
	// mutation once the slot frees.
	release := time.AfterFunc(60*time.Millisecond, func() { <-srv.admit })
	defer release.Stop()
	c, err := client.Dial(addr,
		client.WithClientID("patient"),
		client.WithBackoff(2*time.Millisecond, 50*time.Millisecond),
		client.WithRetries(50),
		client.WithJitterSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.UpdateBatch([]wire.UpdateOp{motionOp(1, 2, 2)}); err != nil {
		t.Fatalf("client did not retry through shedding: %v", err)
	}
}

// A request whose deadline budget is spent is refused with a typed code
// and — critically — never cached: the retry with a fresh budget must
// execute, not replay the refusal.
func TestDeadlineRefusalNotCached(t *testing.T) {
	dir := t.TempDir()
	srv, _ := startDurable(t, dir, "", Config{})
	defer srv.Abort()

	r, _ := mustHello(t, srv.Addr().String(), "alice", 1)
	// A batch bulky enough that decoding alone outlives a 1ms budget.
	big := make([]wire.UpdateOp, 200000)
	for i := range big {
		big[i] = motionOp(0, float64(i), 0)
	}
	f := r.call(wire.OpUpdateBatch, 7, &wire.UpdateBatchReq{Ops: big, DeadlineMS: 1})
	if f.Op != wire.OpError {
		t.Skip("decode beat the 1ms deadline on this machine")
	}
	var e wire.ErrorResp
	_ = wire.Unmarshal(f, &e)
	if e.Code != wire.CodeDeadlineExceeded {
		t.Fatalf("code = %q, want %q", e.Code, wire.CodeDeadlineExceeded)
	}
	resp := r.update(7, []wire.UpdateOp{motionOp(0, 4, 4)}) // same ID, fresh budget
	if resp.Applied != 1 {
		t.Fatal("retry after deadline refusal was replayed from cache instead of executed")
	}
}

func TestEpochFencing(t *testing.T) {
	dir := t.TempDir()
	srv, _ := startDurable(t, dir, "", Config{})
	defer srv.Abort()
	addr := srv.Addr().String()

	a, helloA := mustHello(t, addr, "alice", 5)
	if helloA.Resumed {
		t.Fatal("first epoch reported resumed")
	}

	// An older epoch is a zombie predecessor: refused outright.
	b, f := rawDial(t, addr, "alice", 4)
	defer b.c.Close()
	if f.Op != wire.OpError {
		t.Fatal("stale epoch accepted")
	}
	var e wire.ErrorResp
	_ = wire.Unmarshal(f, &e)
	if e.Code != wire.CodeStaleEpoch {
		t.Fatalf("code = %q, want %q", e.Code, wire.CodeStaleEpoch)
	}

	// A newer epoch resumes the identity and fences the old session.
	c, helloC := mustHello(t, addr, "alice", 6)
	defer c.c.Close()
	if !helloC.Resumed {
		t.Fatal("newer epoch not reported as resumed")
	}
	a.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := a.dec.Next(); err == nil {
		t.Fatal("zombie session survived a newer epoch's Hello")
	}
}

func TestHealthLifecycle(t *testing.T) {
	h := &obs.Health{}
	dir := t.TempDir()
	srv, _ := startDurable(t, dir, "", Config{Health: h})
	if got := h.State(); got != obs.StateReady {
		t.Fatalf("state after serve = %v, want ready", got)
	}

	m := http.NewServeMux()
	h.Mount(m)
	resp := httptest.NewRecorder()
	m.ServeHTTP(resp, httptest.NewRequest("GET", "/readyz", nil))
	if resp.Code != 200 {
		t.Fatalf("/readyz while ready = %d", resp.Code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := h.State(); got != obs.StateDraining {
		t.Fatalf("state after shutdown = %v, want draining", got)
	}
	resp = httptest.NewRecorder()
	m.ServeHTTP(resp, httptest.NewRequest("GET", "/readyz", nil))
	if resp.Code != 503 {
		t.Fatalf("/readyz while draining = %d, want 503", resp.Code)
	}
}

// A corrupt checkpoint is a hard recovery error — the server must refuse
// to start rather than serve from a guess (mostserver exits non-zero on
// this path).
func TestDurableRecoveryFailsOnCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv, _ := startDurable(t, dir, "", Config{})
	r, _ := mustHello(t, srv.Addr().String(), "alice", 1)
	r.update(1, []wire.UpdateOp{motionOp(0, 1, 1)})
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv.Abort()

	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewDurable(dir, Config{}, seedFleet); err == nil {
		t.Fatal("recovery from a corrupt checkpoint must fail loudly")
	}
}
