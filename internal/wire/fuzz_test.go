package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzWireDecode feeds arbitrary byte streams to the frame decoder and the
// payload unmarshalers.  The invariants: the decoder never panics, never
// allocates more than its configured payload bound per frame, consumes the
// stream frame by frame until an error or EOF, and every frame it does
// accept re-encodes to bytes that decode to an identical frame.
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: valid frames of each shape, then classic hostile inputs.
	ping, _ := AppendFrame(nil, Frame{Op: OpPing, ID: 1})
	qf, _ := Encode(OpQuery, 2, QueryReq{Src: "RETRIEVE o FROM Vehicles o WHERE TRUE", Horizon: 50})
	query, _ := AppendFrame(nil, qf)
	nf, _ := Encode(OpNotify, 0, Notify{SubID: 3, Seq: 9, Answer: []AnswerRow{{Vals: []Value{{Kind: 1, Obj: "car-1"}}, Start: 0, End: 7}}})
	notify, _ := AppendFrame(nil, nf)
	two := append(append([]byte(nil), ping...), query...)

	f.Add(ping)
	f.Add(query)
	f.Add(notify)
	f.Add(two)
	f.Add([]byte{})
	f.Add([]byte("MW"))                                         // truncated header
	f.Add(append([]byte(nil), ping[:HeaderSize]...))            // header only
	f.Add([]byte("GET / HTTP/1.1\r\nHost: mostserver\r\n\r\n")) // wrong protocol
	huge := append([]byte(nil), ping...)
	huge[12], huge[13], huge[14], huge[15] = 0xff, 0xff, 0xff, 0xff // 4 GiB length
	f.Add(huge)

	const maxPayload = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data), maxPayload)
		for {
			fr, err := d.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF &&
					!bytes.Contains([]byte(err.Error()), []byte("wire:")) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(fr.Payload) > maxPayload {
				t.Fatalf("decoder returned %d payload bytes, bound is %d", len(fr.Payload), maxPayload)
			}
			// Accepted frames must re-encode losslessly.
			buf, err := AppendFrame(nil, fr)
			if err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			fr2, err := NewDecoder(bytes.NewReader(buf), maxPayload).Next()
			if err != nil {
				t.Fatalf("re-decode of accepted frame failed: %v", err)
			}
			if fr2.Op != fr.Op || fr2.ID != fr.ID || !bytes.Equal(fr2.Payload, fr.Payload) {
				t.Fatal("re-encoded frame differs")
			}
			// Payload unmarshaling must not panic either, whatever the bytes.
			switch fr.Op {
			case OpQuery:
				var q QueryReq
				_ = Unmarshal(fr, &q)
			case OpUpdateBatch:
				var u UpdateBatchReq
				_ = Unmarshal(fr, &u)
			case OpSubscribe:
				var s SubscribeReq
				_ = Unmarshal(fr, &s)
			case OpNotify:
				var n Notify
				_ = Unmarshal(fr, &n)
			}
		}
	})
}
