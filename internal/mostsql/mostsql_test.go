package mostsql

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/relstore"
	"github.com/mostdb/most/internal/temporal"
)

// fixture builds a MOST system over a vehicles table with a dynamic X
// position and static price.
func fixture(t *testing.T) (*System, *temporal.Tick) {
	t.Helper()
	now := temporal.Tick(0)
	s := New(relstore.NewStore(), func() temporal.Tick { return now })
	if _, err := s.CreateTable("vehicles", "id", []string{"price"}, []string{"X"}); err != nil {
		t.Fatal(err)
	}
	return s, &now
}

func addVehicle(t *testing.T, s *System, id string, price, x0, vx float64) {
	t.Helper()
	err := s.Insert("vehicles", relstore.Str(id),
		map[string]relstore.Value{"price": relstore.Num(price)},
		map[string]motion.DynamicAttr{"X": motion.LinearFrom(x0, 0, vx)})
	if err != nil {
		t.Fatal(err)
	}
}

func column(rs *relstore.ResultSet, col string) []string {
	ci := -1
	for i, c := range rs.Columns {
		if c == col {
			ci = i
		}
	}
	var out []string
	for _, r := range rs.Rows {
		out = append(out, r[ci].String())
	}
	sort.Strings(out)
	return out
}

func TestPassThroughStaticQuery(t *testing.T) {
	s, _ := fixture(t)
	addVehicle(t, s, "a", 50, 0, 1)
	addVehicle(t, s, "b", 150, 0, 1)
	s.ResetCounters()
	rs, err := s.Query("SELECT id FROM vehicles WHERE price <= 100")
	if err != nil {
		t.Fatal(err)
	}
	if got := column(rs, "id"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("rows = %v", got)
	}
	if s.QueriesIssued() != 1 {
		t.Fatalf("static query issued %d DBMS queries", s.QueriesIssued())
	}
}

func TestSelectClauseDynamicValue(t *testing.T) {
	s, now := fixture(t)
	addVehicle(t, s, "a", 50, 10, 2)
	*now = 5
	rs, err := s.Query("SELECT id, X FROM vehicles")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][1] != relstore.Num(20) {
		t.Fatalf("rows = %v", rs.Rows)
	}
	// The answer tracks the clock without any update.
	*now = 10
	rs, err = s.Query("SELECT X FROM vehicles")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0] != relstore.Num(30) {
		t.Fatalf("at t=10: %v", rs.Rows)
	}
}

func TestWhereSingleDynamicAtom(t *testing.T) {
	s, now := fixture(t)
	addVehicle(t, s, "fast", 50, 0, 10)  // X(5) = 50
	addVehicle(t, s, "slow", 50, 0, 1)   // X(5) = 5
	addVehicle(t, s, "rich", 999, 0, 10) // filtered by price
	*now = 5
	s.ResetCounters()
	rs, err := s.Query("SELECT id FROM vehicles WHERE X >= 40 AND price <= 100")
	if err != nil {
		t.Fatal(err)
	}
	if got := column(rs, "id"); len(got) != 1 || got[0] != "fast" {
		t.Fatalf("rows = %v", got)
	}
	// One dynamic atom: 2^1 = 2 underlying queries.
	if s.QueriesIssued() != 2 {
		t.Fatalf("issued %d queries, want 2", s.QueriesIssued())
	}
}

func TestWhereMultipleAtoms2k(t *testing.T) {
	s, now := fixture(t)
	addVehicle(t, s, "a", 10, 0, 1)
	addVehicle(t, s, "b", 10, 100, -1)
	*now = 10
	s.ResetCounters()
	// Two dynamic atoms: 4 underlying queries.
	rs, err := s.Query("SELECT id FROM vehicles WHERE X >= 5 AND X <= 50")
	if err != nil {
		t.Fatal(err)
	}
	if got := column(rs, "id"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("rows = %v", got)
	}
	if s.QueriesIssued() != 4 {
		t.Fatalf("issued %d queries, want 4", s.QueriesIssued())
	}
}

func TestWhereDisjunctionWithDynamicAtom(t *testing.T) {
	s, now := fixture(t)
	addVehicle(t, s, "near", 999, 0, 1)
	addVehicle(t, s, "cheap", 10, -500, 0)
	addVehicle(t, s, "neither", 999, -500, 0)
	*now = 5
	rs, err := s.Query("SELECT id FROM vehicles WHERE X >= 0 OR price <= 100")
	if err != nil {
		t.Fatal(err)
	}
	if got := column(rs, "id"); len(got) != 2 || got[0] != "cheap" || got[1] != "near" {
		t.Fatalf("rows = %v", got)
	}
}

func TestUpdateDynamicRedirects(t *testing.T) {
	s, now := fixture(t)
	addVehicle(t, s, "a", 10, 0, 1)
	*now = 10 // X = 10
	if err := s.UpdateDynamic("vehicles", relstore.Str("a"), "X", motion.LinearFrom(10, 10, -1)); err != nil {
		t.Fatal(err)
	}
	*now = 15
	rs, err := s.Query("SELECT X FROM vehicles")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0] != relstore.Num(5) {
		t.Fatalf("after update X = %v", rs.Rows)
	}
	if err := s.UpdateDynamic("vehicles", relstore.Str("ghost"), "X", motion.Static(0)); err == nil {
		t.Fatal("updating a missing key should fail")
	}
	if err := s.UpdateDynamic("vehicles", relstore.Str("a"), "price", motion.Static(0)); err == nil {
		t.Fatal("updating a static attribute as dynamic should fail")
	}
}

func TestSubAttributesDirectlyQueryable(t *testing.T) {
	// §2.1: "the user can ask for the objects for which
	// X.POSITION.function = 5t".
	s, _ := fixture(t)
	addVehicle(t, s, "five", 0, 0, 5)
	addVehicle(t, s, "three", 0, 0, 3)
	rs, err := s.Query("SELECT id FROM vehicles WHERE X_function = '5t'")
	if err != nil {
		t.Fatal(err)
	}
	if got := column(rs, "id"); len(got) != 1 || got[0] != "five" {
		t.Fatalf("rows = %v", got)
	}
}

func TestQueryWithIndexMatchesWithout(t *testing.T) {
	s, now := fixture(t)
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		addVehicle(t, s, fmt.Sprintf("v%03d", i),
			float64(r.Intn(200)), float64(r.Intn(100)-50), float64(r.Intn(9)-4))
	}
	if err := s.CreateDynamicIndex("vehicles", "X", 0, 1000); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT id FROM vehicles WHERE X >= 20",
		"SELECT id FROM vehicles WHERE X < -10 AND price <= 100",
		"SELECT id FROM vehicles WHERE X >= -5 AND X <= 5",
		"SELECT id FROM vehicles WHERE 30 <= X",
		"SELECT id FROM vehicles WHERE X = 0",
	}
	for _, tick := range []temporal.Tick{0, 7, 33} {
		*now = tick
		for _, q := range queries {
			plain, err := s.Query(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			indexed, err := s.QueryWithIndex(q)
			if err != nil {
				t.Fatalf("%s (indexed): %v", q, err)
			}
			a, b := column(plain, "id"), column(indexed, "id")
			if len(a) != len(b) {
				t.Fatalf("t=%d %s: plain %d rows, indexed %d rows", tick, q, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("t=%d %s: %v vs %v", tick, q, a, b)
				}
			}
		}
	}
	// Index stays consistent under updates.
	*now = 40
	if err := s.UpdateDynamic("vehicles", relstore.Str("v000"), "X", motion.LinearFrom(1000, 40, 0)); err != nil {
		t.Fatal(err)
	}
	rs, err := s.QueryWithIndex("SELECT id FROM vehicles WHERE X >= 900")
	if err != nil {
		t.Fatal(err)
	}
	if got := column(rs, "id"); len(got) != 1 || got[0] != "v000" {
		t.Fatalf("after update = %v", got)
	}
}

func TestStarSelectComputesDynamics(t *testing.T) {
	s, now := fixture(t)
	addVehicle(t, s, "a", 42, 7, 3)
	*now = 1
	rs, err := s.Query("SELECT * FROM vehicles")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Columns) != 3 || rs.Columns[2] != "X" {
		t.Fatalf("columns = %v", rs.Columns)
	}
	if rs.Rows[0][2] != relstore.Num(10) {
		t.Fatalf("X = %v", rs.Rows[0])
	}
}

func TestErrors(t *testing.T) {
	s, _ := fixture(t)
	if _, err := s.Query("SELECT id FROM a, b"); err == nil {
		t.Error("multi-table MOST query should fail")
	}
	if _, err := s.Query("not sql"); err == nil {
		t.Error("bad sql should fail")
	}
	if err := s.Insert("missing", relstore.Str("k"), nil, nil); err == nil {
		t.Error("insert into unknown MOST table should fail")
	}
	if err := s.CreateDynamicIndex("missing", "X", 0, 10); err == nil {
		t.Error("index on unknown table should fail")
	}
	if err := s.CreateDynamicIndex("vehicles", "price", 0, 10); err == nil {
		t.Error("index on static column should fail")
	}
	// Pass-through for non-MOST tables still works.
	s.store.MustExec("CREATE TABLE plain (a)")
	s.store.MustExec("INSERT INTO plain VALUES (1)")
	rs, err := s.Query("SELECT a FROM plain")
	if err != nil || len(rs.Rows) != 1 {
		t.Fatalf("pass-through: %v %v", rs, err)
	}
}

func TestParseFuncRoundTrip(t *testing.T) {
	funcs := []motion.Func{
		motion.Constant(),
		motion.Linear(5),
		motion.Linear(-2.5),
		motion.MustFunc(motion.Piece{Start: 0, Slope: 1}, motion.Piece{Start: 10, Slope: -3}),
	}
	for _, f := range funcs {
		got, err := motion.ParseFunc(f.String())
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !got.Equal(f) {
			t.Errorf("round trip %s -> %s", f, got)
		}
	}
	for _, bad := range []string{"x", "{5t", "{a:1t}", "{0:xt}", "5"} {
		if _, err := motion.ParseFunc(bad); err == nil {
			t.Errorf("ParseFunc(%q) should fail", bad)
		}
	}
}
