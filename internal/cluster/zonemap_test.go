package cluster

import (
	"reflect"
	"testing"

	"github.com/mostdb/most/internal/geom"
)

func testBounds() geom.Rect {
	return geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 300, Y: 200}}
}

func TestGridMapOwnership(t *testing.T) {
	addrs := []string{"a:1", "b:2", "c:3"}
	m, err := NewGridMap(testBounds(), 3, 2, addrs, []string{"POIs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Zones) != 6 {
		t.Fatalf("got %d zones, want 6", len(m.Zones))
	}
	// Round-robin assignment spreads zones across every node.
	for i, z := range m.Zones {
		if want := addrs[i%3]; z.Addr != want {
			t.Fatalf("zone %d assigned %s, want %s", i, z.Addr, want)
		}
	}
	cases := []struct {
		p    geom.Point
		addr string
	}{
		{geom.Point{X: 50, Y: 50}, "a:1"},   // zone 0 interior
		{geom.Point{X: 150, Y: 50}, "b:2"},  // zone 1 interior
		{geom.Point{X: 250, Y: 150}, "c:3"}, // zone 5 interior
		{geom.Point{X: 100, Y: 0}, "b:2"},   // seam: half-open, belongs right
		{geom.Point{X: 0, Y: 100}, "a:1"},   // seam: belongs upper-left zone 3
		{geom.Point{X: 300, Y: 200}, "c:3"}, // outer corner included (closed max edge)
		{geom.Point{X: -40, Y: -40}, "a:1"}, // outside: clamps to nearest
		{geom.Point{X: 900, Y: 900}, "c:3"}, // outside: clamps to nearest
		{geom.Point{X: 150, Y: -10}, "b:2"}, // outside below middle column
	}
	for _, tc := range cases {
		if got := m.OwnerAt(tc.p); got != tc.addr {
			t.Errorf("OwnerAt(%+v) = %s, want %s", tc.p, got, tc.addr)
		}
	}
	// The ownership function is total and single-valued over a fine sweep.
	for x := -10.0; x <= 310; x += 7 {
		for y := -10.0; y <= 210; y += 7 {
			if m.OwnerAt(geom.Point{X: x, Y: y}) == "" {
				t.Fatalf("OwnerAt(%g, %g) returned no owner", x, y)
			}
		}
	}
	if !m.IsReplicated("POIs") || m.IsReplicated("Cars") {
		t.Fatal("replicated-class set wrong")
	}
	if got := len(m.ZonesOf("a:1")); got != 2 {
		t.Fatalf("ZonesOf(a:1) = %d zones, want 2", got)
	}
}

func TestZoneMapWireRoundTrip(t *testing.T) {
	m, err := NewGridMap(testBounds(), 2, 2, []string{"x:1", "y:2"}, []string{"Buses", "POIs"})
	if err != nil {
		t.Fatal(err)
	}
	back := FromWire(m.Wire())
	if back.Epoch != m.Epoch || !reflect.DeepEqual(back.Zones, m.Zones) ||
		!reflect.DeepEqual(back.Replicated, m.Replicated) {
		t.Fatalf("wire round trip changed the map:\n got %+v\nwant %+v", back, m)
	}
	if back.Bounds != m.Bounds {
		t.Fatalf("bounds not rederived: got %+v, want %+v", back.Bounds, m.Bounds)
	}
	for x := 0.0; x <= 300; x += 11 {
		for y := 0.0; y <= 200; y += 11 {
			p := geom.Point{X: x, Y: y}
			if back.OwnerAt(p) != m.OwnerAt(p) {
				t.Fatalf("ownership diverged after round trip at %+v", p)
			}
		}
	}
}

func TestNeedsSplit(t *testing.T) {
	m, err := NewGridMap(testBounds(), 2, 1, []string{"a:1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{0: 10, 1: 31}
	if got := m.NeedsSplit(counts, 30); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("NeedsSplit = %v, want [1]", got)
	}
	if got := m.NeedsSplit(counts, 0); got != nil {
		t.Fatalf("threshold 0 must disable splitting, got %v", got)
	}
	if got := m.NeedsSplit(map[int]int{}, 5); got != nil {
		t.Fatalf("empty counts must not split, got %v", got)
	}
}

func TestGridMapRejectsDegenerate(t *testing.T) {
	if _, err := NewGridMap(testBounds(), 0, 1, []string{"a:1"}, nil); err == nil {
		t.Fatal("0-column grid accepted")
	}
	if _, err := NewGridMap(testBounds(), 1, 1, nil, nil); err == nil {
		t.Fatal("empty address list accepted")
	}
	if _, err := NewGridMap(geom.Rect{}, 1, 1, []string{"a:1"}, nil); err == nil {
		t.Fatal("degenerate bounds accepted")
	}
}
