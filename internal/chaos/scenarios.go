package chaos

import (
	"time"
)

// The three scripted scenarios.  Each is deterministic in outcome for a
// given seed — the schedule the scheduler actually produces varies, but
// the committed state it must converge to does not, and that is what the
// harness asserts.

// KillRestart hard-kills the server in the middle of a committing phase
// and restarts it from the write-ahead log alone (no checkpoints), the
// purest crash-recovery path: every acknowledged mutation must survive,
// every in-flight retry must land exactly once, every subscription must
// resume without the caller noticing.
func KillRestart(dir string, seed int64) (Result, error) {
	cfg := DefaultConfig(dir, seed)
	cfg.CheckpointEvery = 0 // recovery replays the full log
	h, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	defer h.Close()

	if err := h.RunPhase(nil); err != nil {
		return h.Result(), err
	}
	if err := h.RunPhase(func() error {
		time.Sleep(20 * time.Millisecond) // let commits get in flight
		h.Kill()
		return h.Restart()
	}); err != nil {
		return h.Result(), err
	}
	if err := h.RunPhase(nil); err != nil {
		return h.Result(), err
	}
	if err := h.Verify(true); err != nil {
		return h.Result(), err
	}
	return h.Result(), nil
}

// Partition severs client↔server links mid-phase — first a minority of
// clients, then every client at once — without ever touching the server.
// Self-healing alone must carry it: calls ride out the partition under
// one request ID, subscriptions park and resume, and the healed fleet's
// state matches the oracle exactly.
func Partition(dir string, seed int64) (Result, error) {
	cfg := DefaultConfig(dir, seed)
	cfg.CheckpointEvery = 0
	h, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	defer h.Close()

	if err := h.RunPhase(nil); err != nil {
		return h.Result(), err
	}
	if err := h.RunPhase(func() error {
		time.Sleep(15 * time.Millisecond)
		gates := h.Gates()
		gates[1].Sever()
		gates[len(gates)-1].Sever()
		time.Sleep(80 * time.Millisecond)
		gates[1].Heal()
		gates[len(gates)-1].Heal()
		return nil
	}); err != nil {
		return h.Result(), err
	}
	if err := h.RunPhase(func() error {
		time.Sleep(10 * time.Millisecond)
		for _, g := range h.Gates() {
			g.Sever()
		}
		time.Sleep(80 * time.Millisecond)
		for _, g := range h.Gates() {
			g.Heal()
		}
		return nil
	}); err != nil {
		return h.Result(), err
	}
	if err := h.Verify(true); err != nil {
		return h.Result(), err
	}
	return h.Result(), nil
}

// Churn is sustained failure under checkpointing: frequent auto
// checkpoints, an explicit one, two kill/restart cycles, and finally a
// clean drain followed by one more recovery — proving the checkpoint
// fast path, the checkpoint+log mixed path, and the clean-shutdown path
// all reproduce the same oracle state.  (Checkpoint restore resets the
// internal version counter, so Churn verifies state identity without the
// version probe.)
func Churn(dir string, seed int64) (Result, error) {
	cfg := DefaultConfig(dir, seed)
	cfg.CheckpointEvery = 5
	h, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	defer h.Close()

	if err := h.RunPhase(nil); err != nil {
		return h.Result(), err
	}
	if err := h.RunPhase(func() error {
		time.Sleep(15 * time.Millisecond)
		h.Kill()
		return h.Restart()
	}); err != nil {
		return h.Result(), err
	}
	if err := h.Checkpoint(); err != nil {
		return h.Result(), err
	}
	if err := h.RunPhase(func() error {
		time.Sleep(25 * time.Millisecond)
		h.Kill()
		return h.Restart()
	}); err != nil {
		return h.Result(), err
	}
	if err := h.Verify(false); err != nil {
		return h.Result(), err
	}

	// Clean drain checkpoints; the next recovery replays (almost) nothing
	// and must still land on the oracle's exact state.
	if err := h.Shutdown(10 * time.Second); err != nil {
		return h.Result(), err
	}
	if err := h.Restart(); err != nil {
		return h.Result(), err
	}
	if err := h.Verify(false); err != nil {
		return h.Result(), err
	}
	return h.Result(), nil
}
