package experiments

import (
	"fmt"

	"github.com/mostdb/most/internal/dist"
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
)

// distFleet builds a simulation where selectivity*n of the nodes will
// satisfy "EVENTUALLY INSIDE(o, P)".
func distFleet(n int, selectivity float64, seed int64) *dist.Sim {
	sim := dist.NewSim(seed)
	cls := most.MustClass("Vehicles", true)
	match := int(float64(n) * selectivity)
	for i := 0; i < n; i++ {
		id := most.ObjectID(fmt.Sprintf("v%05d", i))
		o, err := most.NewObject(id, cls)
		if err != nil {
			panic(err)
		}
		v := geom.Vector{Y: 1} // heads away from P
		if i < match {
			v = geom.Vector{X: 1} // heads into P
		}
		o, err = o.WithPosition(motion.MovingFrom(geom.Point{X: float64(-10 - i%40)}, v, 0))
		if err != nil {
			panic(err)
		}
		if _, err := sim.AddNode(o); err != nil {
			panic(err)
		}
	}
	sim.Regions["P"] = geom.RectPolygon(0, -5, 1000, 5)
	return sim
}

// E9DistStrategies compares the §5.3 object-query strategies by actual
// message and byte counts, one-shot and continuous.
func E9DistStrategies(quick bool) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "distributed object query: ship-objects vs broadcast-query (§5.3)",
		Claim:   "broadcasting the query and letting satisfying nodes reply costs less than shipping every object, and the gap widens for continuous queries",
		Columns: []string{"nodes", "selectivity", "ship msgs", "ship bytes", "bcast msgs", "bcast bytes", "cont. ship bytes", "cont. bcast bytes"},
	}
	sizes := []int{50, 200, 1000}
	if quick {
		sizes = []int{50, 200}
	}
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 100 INSIDE(o, P)`)
	for _, n := range sizes {
		for _, sel := range []float64{0.05, 0.25} {
			shipSim := distFleet(n, sel, 1)
			ship, err := shipSim.RunObjectQuery(shipSim.Nodes()[0], q, 200, dist.ShipObjects)
			if err != nil {
				panic(err)
			}
			bSim := distFleet(n, sel, 1)
			bcast, err := bSim.RunObjectQuery(bSim.Nodes()[0], q, 200, dist.BroadcastQuery)
			if err != nil {
				panic(err)
			}
			if ship.Relation.Len() != bcast.Relation.Len() {
				panic("E9: strategies disagree on the answer")
			}
			// Continuous variant: each node changes course 20 times; a
			// change satisfies the predicate with probability = selectivity.
			cSim := distFleet(n, sel, 2)
			updates := map[most.ObjectID]int{}
			for _, id := range cSim.Nodes() {
				updates[id] = 20
			}
			period := int(1 / sel)
			cs, cb := cSim.ContinuousTraffic(q, updates, func(_ most.ObjectID, k int) bool {
				return k%period == 0
			})
			t.AddRow(itoa(n), f2(sel), itoa(ship.Traffic.Messages), itoa(ship.Traffic.Bytes),
				itoa(bcast.Traffic.Messages), itoa(bcast.Traffic.Bytes),
				itoa(cs.Bytes), itoa(cb.Bytes))
		}
	}
	t.Notes = append(t.Notes, "cost model: object = 256 bytes, query = 128 bytes, answer tuple = 64 bytes")
	return t
}
