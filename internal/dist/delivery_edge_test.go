package dist

import (
	"testing"

	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/temporal"
)

// §5.2 edge cases: the degenerate memory settings, empty answer sets, and
// display windows that close before the client ever reconnects.

// TestDeliverMemoryZeroVsOne: memoryB=0 means unlimited (one bulk message);
// memoryB=1 degenerates Immediate into one message per tuple, each timed to
// the tuple's begin — the extreme of the paper's "blocks of B tuples".
func TestDeliverMemoryZeroVsOne(t *testing.T) {
	s := NewSim(1)
	answers := mkAnswers(6, 10)
	always := func(temporal.Tick) bool { return true }

	unlimited := s.DeliverAnswer(answers, Immediate, 0, 0, 100, always)
	if unlimited.Messages != 1 || unlimited.PeakMemory != 6 {
		t.Fatalf("memoryB=0: %+v", unlimited)
	}
	one := s.DeliverAnswer(answers, Immediate, 1, 0, 100, always)
	if one.Messages != 6 || one.PeakMemory != 1 {
		t.Fatalf("memoryB=1: %+v", one)
	}
	if one.Bytes != unlimited.Bytes {
		t.Fatalf("blocking changed total bytes: %d vs %d", one.Bytes, unlimited.Bytes)
	}
	if one.MissedDisplays != 0 || unlimited.MissedDisplays != 0 {
		t.Fatal("perfect connectivity missed displays")
	}
}

// TestDeliverEmptyAnswerSet: no tuples, no traffic, no misses — in every
// mode, with and without retry.
func TestDeliverEmptyAnswerSet(t *testing.T) {
	s := NewSim(1)
	never := func(temporal.Tick) bool { return false }
	for _, mode := range []DeliveryMode{Immediate, Delayed} {
		for _, memoryB := range []int{0, 1, 3} {
			got := s.DeliverAnswer(nil, mode, memoryB, 0, 100, never)
			want := DeliveryStats{}
			if mode == Immediate && memoryB <= 0 {
				want.Messages = 1 // the (empty) bulk transmission
			}
			got.Bytes = 0
			if got != want {
				t.Fatalf("mode %d memoryB %d: %+v", mode, memoryB, got)
			}
			retry := s.DeliverAnswerWithRetry(nil, mode, memoryB, 0, 100, never)
			retry.Bytes = 0
			if retry != want {
				t.Fatalf("retry mode %d memoryB %d: %+v", mode, memoryB, retry)
			}
		}
	}
}

// TestRetryRecoversAfterReconnection: the client is unreachable when the
// tuples are first sent but reconnects while their windows are still open;
// the retrying path converts every miss into a recovery.
func TestRetryRecoversAfterReconnection(t *testing.T) {
	s := NewSim(1)
	answers := []eval.Answer{
		{Vals: []eval.Val{eval.NumVal(1)}, Interval: temporal.Interval{Start: 0, End: 40}},
		{Vals: []eval.Val{eval.NumVal(2)}, Interval: temporal.Interval{Start: 5, End: 40}},
	}
	conn := func(t temporal.Tick) bool { return t >= 10 } // reconnect at 10
	legacy := s.DeliverAnswer(answers, Delayed, 0, 0, 100, conn)
	if legacy.MissedDisplays != 2 || legacy.RecoveredDisplays != 0 {
		t.Fatalf("legacy: %+v", legacy)
	}
	retry := s.DeliverAnswerWithRetry(answers, Delayed, 0, 0, 100, conn)
	if retry.MissedDisplays != 0 || retry.RecoveredDisplays != 2 {
		t.Fatalf("retry: %+v", retry)
	}
	if retry.Messages <= legacy.Messages {
		t.Fatalf("retry traffic %d not above legacy %d", retry.Messages, legacy.Messages)
	}
}

// TestWindowEndsBeforeFirstReconnection: the display window closes while
// the client is still unreachable — even the retrying path must report the
// display as missed, and must stop retransmitting at the window's end.
func TestWindowEndsBeforeFirstReconnection(t *testing.T) {
	s := NewSim(1)
	answers := []eval.Answer{
		{Vals: []eval.Val{eval.NumVal(1)}, Interval: temporal.Interval{Start: 0, End: 8}},
	}
	conn := func(t temporal.Tick) bool { return t >= 50 } // reconnects too late
	retry := s.DeliverAnswerWithRetry(answers, Delayed, 0, 0, 100, conn)
	if retry.MissedDisplays != 1 || retry.RecoveredDisplays != 0 {
		t.Fatalf("retry: %+v", retry)
	}
	// 1 initial send at begin=0 plus re-attempts at ticks 1..8 only: the
	// server gives up when the window closes instead of spamming until 100.
	if retry.Messages != 1+8 {
		t.Fatalf("messages = %d, want 9", retry.Messages)
	}
}

// TestRetryWindowClampedBySimulationEnd: re-attempts also stop at the
// simulation horizon when it precedes the window end.
func TestRetryWindowClampedBySimulationEnd(t *testing.T) {
	s := NewSim(1)
	answers := []eval.Answer{
		{Vals: []eval.Val{eval.NumVal(1)}, Interval: temporal.Interval{Start: 0, End: 1000}},
	}
	never := func(temporal.Tick) bool { return false }
	retry := s.DeliverAnswerWithRetry(answers, Immediate, 0, 0, 20, never)
	if retry.MissedDisplays != 1 {
		t.Fatalf("retry: %+v", retry)
	}
	if retry.Messages != 1+20 { // initial bulk + retries at 1..20
		t.Fatalf("messages = %d, want 21", retry.Messages)
	}
}
