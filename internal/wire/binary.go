package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"github.com/mostdb/most/internal/temporal"
)

// This file is the protocol-version-2 payload codec: a compact binary
// encoding of every request, response, and push payload, replacing the
// version-1 JSON bodies on the hot path.  The grammar (specified byte by
// byte in PROTOCOL.md) uses four primitives:
//
//	u8/u32/u64  fixed-width little-endian unsigned integers
//	i64         fixed-width little-endian two's-complement (clock ticks)
//	f64         IEEE-754 binary64 bits, little-endian — coordinates and
//	            numeric values round-trip exactly, bit for bit
//	str/bytes   uvarint byte length followed by the raw bytes
//
// Encoders are append-style ([]byte in, []byte out) so callers own buffer
// reuse; decoders decode into caller-provided structs, reusing slice
// capacity and (through Interner) previously allocated strings, which is
// what makes the server's steady-state ingest path allocation-free
// (TestIngestZeroAlloc).
//
// Every payload type implements the unexported binaryPayload interface;
// EncodeFrame/Unmarshal dispatch on it, so adding a payload type means
// adding the two methods and a PROTOCOL.md grammar entry.

// binaryPayload is implemented (on pointer receivers) by every payload
// type that has a version-2 binary form.
type binaryPayload interface {
	appendBinary(buf []byte) []byte
	decodeBinary(r *binReader) error
}

// Interner resolves recurring byte strings (object IDs, attribute names)
// to previously allocated string instances so a steady-state decode stream
// stops allocating.  The zero/nil Interner disables interning; a session
// typically owns one Interner for its lifetime.
type Interner map[string]string

// maxInternEntries caps an Interner so a hostile client cycling through
// unique IDs cannot grow a session's memory without bound; past the cap,
// lookups still hit but misses allocate without being retained.
const maxInternEntries = 1 << 16

// Intern returns a string equal to b, reusing a prior allocation when one
// exists.  The compiler elides the []byte→string conversion in the map
// lookup, so steady-state hits are allocation-free.
func (in Interner) Intern(b []byte) string {
	if in == nil {
		return string(b)
	}
	if s, ok := in[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(in) < maxInternEntries {
		in[s] = s
	}
	return s
}

// ---- primitives ----

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
func appendTick(b []byte, t temporal.Tick) []byte { return appendI64(b, int64(t)) }
func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}
func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// binReader decodes the v2 grammar with a sticky error: after the first
// violation every subsequent read returns zero values, and decodeBinary
// surfaces the recorded error.  All bounds are checked against the
// remaining payload before any slice or string is materialized.
type binReader struct {
	data []byte
	off  int
	in   Interner
	err  error
}

// binReaderPool recycles binReaders across UnmarshalInterned calls (the
// pointer would otherwise escape to the heap through the binaryPayload
// interface on every decode).
var binReaderPool = sync.Pool{New: func() any { return new(binReader) }}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *binReader) remaining() int { return len(r.data) - r.off }

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.remaining() < n {
		r.fail("truncated: need %d bytes, have %d", n, r.remaining())
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *binReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *binReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *binReader) i64() int64          { return int64(r.u64()) }
func (r *binReader) f64() float64        { return math.Float64frombits(r.u64()) }
func (r *binReader) tick() temporal.Tick { return temporal.Tick(r.i64()) }
func (r *binReader) boolean() bool       { return r.u8() != 0 }
func (r *binReader) strBytes() []byte {
	if r.err != nil {
		return nil
	}
	n, w := binary.Uvarint(r.data[r.off:])
	if w <= 0 {
		r.fail("bad varint length")
		return nil
	}
	r.off += w
	if n > uint64(r.remaining()) {
		r.fail("truncated string: declared %d bytes, have %d", n, r.remaining())
		return nil
	}
	return r.take(int(n))
}

// str decodes a varint-prefixed string, allocating.
func (r *binReader) str() string { return string(r.strBytes()) }

// internedStr decodes a varint-prefixed string through the interner, so
// recurring values (object IDs) are allocation-free in steady state.
func (r *binReader) internedStr() string {
	b := r.strBytes()
	if r.err != nil {
		return ""
	}
	return r.in.Intern(b)
}

// count reads a u32 element count and sanity-checks it against the bytes
// remaining (each element needs at least minElem bytes), so a hostile
// count cannot force a huge allocation from a short payload.
func (r *binReader) count(minElem int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if minElem > 0 && int64(n)*int64(minElem) > int64(r.remaining()) {
		r.fail("count %d exceeds remaining payload (%d bytes)", n, r.remaining())
		return 0
	}
	return int(n)
}

// ---- values and answer rows ----

// Minimum encoded sizes, used to bound hostile element counts.
const (
	minValueSize      = 12 // kind + 2 empty strings + f64 + bool
	minAnswerRowSize  = 4 + 16
	minObjectInfoSize = 1 + 1 + 1 + 8 + 8
	minUpdateOpSize   = 1 + 1
	minRowSize        = 4
)

func (v *Value) appendBinary(b []byte) []byte {
	b = appendU8(b, v.Kind)
	b = appendStr(b, v.Obj)
	b = appendF64(b, v.Num)
	b = appendStr(b, v.Str)
	return appendBool(b, v.Bool)
}

func (v *Value) decodeBinary(r *binReader) error {
	v.Kind = r.u8()
	v.Obj = r.internedStr()
	v.Num = r.f64()
	v.Str = r.str()
	v.Bool = r.boolean()
	return r.err
}

func appendValues(b []byte, vals []Value) []byte {
	b = appendU32(b, uint32(len(vals)))
	for i := range vals {
		b = vals[i].appendBinary(b)
	}
	return b
}

func decodeValues(r *binReader, dst []Value) []Value {
	n := r.count(minValueSize)
	if cap(dst) < n {
		dst = make([]Value, n)
	}
	dst = dst[:n]
	for i := range dst {
		if err := dst[i].decodeBinary(r); err != nil {
			return nil
		}
	}
	return dst
}

func (a *AnswerRow) appendBinary(b []byte) []byte {
	b = appendValues(b, a.Vals)
	b = appendTick(b, a.Start)
	return appendTick(b, a.End)
}

func (a *AnswerRow) decodeBinary(r *binReader) error {
	a.Vals = decodeValues(r, a.Vals)
	a.Start = r.tick()
	a.End = r.tick()
	return r.err
}

func appendAnswerRows(b []byte, rows []AnswerRow) []byte {
	b = appendU32(b, uint32(len(rows)))
	for i := range rows {
		b = rows[i].appendBinary(b)
	}
	return b
}

func decodeAnswerRows(r *binReader, dst []AnswerRow) []AnswerRow {
	n := r.count(minAnswerRowSize)
	if cap(dst) < n {
		dst = make([]AnswerRow, n)
	}
	dst = dst[:n]
	for i := range dst {
		if err := dst[i].decodeBinary(r); err != nil {
			return nil
		}
	}
	return dst
}

// ---- request payloads ----

func (q *QueryReq) appendBinary(b []byte) []byte {
	b = appendStr(b, q.Src)
	b = appendTick(b, q.Horizon)
	return appendI64(b, q.DeadlineMS)
}

func (q *QueryReq) decodeBinary(r *binReader) error {
	q.Src = r.str()
	q.Horizon = r.tick()
	q.DeadlineMS = r.i64()
	return r.err
}

// Binary update-op kind codes (v2 form of the UpdateOp.Op strings).
const (
	binOpSetMotion uint8 = 1
	binOpSetStatic uint8 = 2
	binOpInsert    uint8 = 3
	binOpDelete    uint8 = 4
)

func (op *UpdateOp) appendBinary(b []byte) []byte {
	switch op.Op {
	case OpSetMotion:
		b = appendU8(b, binOpSetMotion)
		b = appendStr(b, op.ID)
		b = appendF64(b, op.VX)
		return appendF64(b, op.VY)
	case OpSetStatic:
		b = appendU8(b, binOpSetStatic)
		b = appendStr(b, op.ID)
		b = appendStr(b, op.Attr)
		if op.Value == nil {
			return appendU8(b, 0)
		}
		b = appendU8(b, 1)
		return op.Value.appendBinary(b)
	case OpInsert:
		b = appendU8(b, binOpInsert)
		b = appendStr(b, op.ID)
		return appendBytes(b, op.Object)
	case OpDelete:
		b = appendU8(b, binOpDelete)
		return appendStr(b, op.ID)
	default:
		// Unknown ops cannot be expressed in v2; encode a kind byte the
		// decoder rejects so the failure is loud, not silent.
		b = appendU8(b, 0)
		return appendStr(b, op.ID)
	}
}

func (op *UpdateOp) decodeBinary(r *binReader) error {
	kind := r.u8()
	id := r.internedStr()
	// Reset fields not carried by this kind so decode-into-reused-struct
	// never leaks a previous op's values.
	*op = UpdateOp{ID: id}
	switch kind {
	case binOpSetMotion:
		op.Op = OpSetMotion
		op.VX = r.f64()
		op.VY = r.f64()
	case binOpSetStatic:
		op.Op = OpSetStatic
		op.Attr = r.internedStr()
		if r.boolean() {
			var v Value
			if err := v.decodeBinary(r); err != nil {
				return err
			}
			op.Value = &v
		}
	case binOpInsert:
		op.Op = OpInsert
		op.Object = json.RawMessage(r.strBytes())
	case binOpDelete:
		op.Op = OpDelete
	default:
		r.fail("unknown update op kind %d", kind)
	}
	return r.err
}

func (u *UpdateBatchReq) appendBinary(b []byte) []byte {
	b = appendI64(b, u.DeadlineMS)
	b = appendU32(b, uint32(len(u.Ops)))
	for i := range u.Ops {
		b = u.Ops[i].appendBinary(b)
	}
	return b
}

func (u *UpdateBatchReq) decodeBinary(r *binReader) error {
	u.DeadlineMS = r.i64()
	n := r.count(minUpdateOpSize)
	if cap(u.Ops) < n {
		u.Ops = make([]UpdateOp, n)
	}
	u.Ops = u.Ops[:n]
	for i := range u.Ops {
		if err := u.Ops[i].decodeBinary(r); err != nil {
			return err
		}
	}
	return r.err
}

func (a *AdvanceReq) appendBinary(b []byte) []byte { return appendTick(b, a.D) }
func (a *AdvanceReq) decodeBinary(r *binReader) error {
	a.D = r.tick()
	return r.err
}

func (o *ObjectsReq) appendBinary(b []byte) []byte { return appendStr(b, o.Class) }
func (o *ObjectsReq) decodeBinary(r *binReader) error {
	o.Class = r.str()
	return r.err
}

func (s *SnapshotLoadReq) appendBinary(b []byte) []byte { return appendBytes(b, s.Data) }
func (s *SnapshotLoadReq) decodeBinary(r *binReader) error {
	s.Data = json.RawMessage(r.strBytes())
	return r.err
}

func (s *SubscribeReq) appendBinary(b []byte) []byte {
	b = appendStr(b, s.Src)
	return appendTick(b, s.Horizon)
}

func (s *SubscribeReq) decodeBinary(r *binReader) error {
	s.Src = r.str()
	s.Horizon = r.tick()
	return r.err
}

func (u *UnsubscribeReq) appendBinary(b []byte) []byte { return appendU64(b, u.SubID) }
func (u *UnsubscribeReq) decodeBinary(r *binReader) error {
	u.SubID = r.u64()
	return r.err
}

// ---- response and push payloads ----

func (q *QueryResp) appendBinary(b []byte) []byte {
	b = appendTick(b, q.Now)
	b = appendU32(b, uint32(len(q.Rows)))
	for i := range q.Rows {
		b = appendValues(b, q.Rows[i])
	}
	return b
}

func (q *QueryResp) decodeBinary(r *binReader) error {
	q.Now = r.tick()
	n := r.count(minRowSize)
	if cap(q.Rows) < n {
		q.Rows = make([][]Value, n)
	}
	q.Rows = q.Rows[:n]
	for i := range q.Rows {
		q.Rows[i] = decodeValues(r, q.Rows[i])
		if r.err != nil {
			return r.err
		}
	}
	return r.err
}

func (u *UpdateBatchResp) appendBinary(b []byte) []byte {
	b = appendU32(b, uint32(u.Applied))
	b = appendTick(b, u.Now)
	return appendU64(b, u.Version)
}

func (u *UpdateBatchResp) decodeBinary(r *binReader) error {
	u.Applied = int(r.u32())
	u.Now = r.tick()
	u.Version = r.u64()
	return r.err
}

func (a *AdvanceResp) appendBinary(b []byte) []byte { return appendTick(b, a.Now) }
func (a *AdvanceResp) decodeBinary(r *binReader) error {
	a.Now = r.tick()
	return r.err
}

func (o *ObjectInfo) appendBinary(b []byte) []byte {
	b = appendStr(b, o.ID)
	b = appendStr(b, o.Class)
	b = appendBool(b, o.HasPos)
	b = appendF64(b, o.X)
	return appendF64(b, o.Y)
}

func (o *ObjectInfo) decodeBinary(r *binReader) error {
	o.ID = r.internedStr()
	o.Class = r.internedStr()
	o.HasPos = r.boolean()
	o.X = r.f64()
	o.Y = r.f64()
	return r.err
}

func (o *ObjectsResp) appendBinary(b []byte) []byte {
	b = appendTick(b, o.Now)
	b = appendU32(b, uint32(len(o.Objects)))
	for i := range o.Objects {
		b = o.Objects[i].appendBinary(b)
	}
	return b
}

func (o *ObjectsResp) decodeBinary(r *binReader) error {
	o.Now = r.tick()
	n := r.count(minObjectInfoSize)
	if cap(o.Objects) < n {
		o.Objects = make([]ObjectInfo, n)
	}
	o.Objects = o.Objects[:n]
	for i := range o.Objects {
		if err := o.Objects[i].decodeBinary(r); err != nil {
			return err
		}
	}
	return r.err
}

func (s *SnapshotResp) appendBinary(b []byte) []byte { return appendBytes(b, s.Data) }
func (s *SnapshotResp) decodeBinary(r *binReader) error {
	s.Data = json.RawMessage(r.strBytes())
	return r.err
}

func (s *SnapshotLoadResp) appendBinary(b []byte) []byte {
	b = appendTick(b, s.Now)
	return appendU32(b, uint32(s.Objects))
}

func (s *SnapshotLoadResp) decodeBinary(r *binReader) error {
	s.Now = r.tick()
	s.Objects = int(r.u32())
	return r.err
}

func (s *SubscribeResp) appendBinary(b []byte) []byte {
	b = appendU64(b, s.SubID)
	b = appendTick(b, s.Now)
	return appendAnswerRows(b, s.Answer)
}

func (s *SubscribeResp) decodeBinary(r *binReader) error {
	s.SubID = r.u64()
	s.Now = r.tick()
	s.Answer = decodeAnswerRows(r, s.Answer)
	return r.err
}

func (n *Notify) appendBinary(b []byte) []byte {
	b = appendU64(b, n.SubID)
	b = appendU64(b, n.Seq)
	return appendAnswerRows(b, n.Answer)
}

func (n *Notify) decodeBinary(r *binReader) error {
	n.SubID = r.u64()
	n.Seq = r.u64()
	n.Answer = decodeAnswerRows(r, n.Answer)
	return r.err
}

func (s *SubClosed) appendBinary(b []byte) []byte {
	b = appendU64(b, s.SubID)
	return appendStr(b, s.Reason)
}

func (s *SubClosed) decodeBinary(r *binReader) error {
	s.SubID = r.u64()
	s.Reason = r.str()
	return r.err
}

func (e *ErrorResp) appendBinary(b []byte) []byte {
	b = appendStr(b, e.Msg)
	b = appendStr(b, e.Code)
	b = appendStr(b, e.Addr)
	// The redirects block is optional-trailing: omitted entirely (not even
	// a zero count) on the overwhelmingly common redirect-free error, so
	// pre-cluster frames and new redirect-free frames are byte-identical.
	if len(e.Redirects) > 0 {
		b = appendU32(b, uint32(len(e.Redirects)))
		for _, a := range e.Redirects {
			b = appendStr(b, a)
		}
	}
	return b
}

func (e *ErrorResp) decodeBinary(r *binReader) error {
	e.Msg = r.str()
	e.Code = r.str()
	e.Addr = r.str()
	e.Redirects = nil
	if r.err == nil && r.remaining() > 0 {
		n := r.count(1) // each element is at least a 1-byte string header
		if n > 0 {
			e.Redirects = make([]string, n)
			for i := range e.Redirects {
				e.Redirects[i] = r.str()
			}
		}
	}
	return r.err
}

// ---- cluster payloads ----

// Minimum encoded zone size: u32 id + 4 f64 bounds + empty addr string.
const minZoneSize = 4 + 4*8 + 1

func (z *Zone) appendBinary(b []byte) []byte {
	b = appendU32(b, uint32(z.ID))
	b = appendF64(b, z.MinX)
	b = appendF64(b, z.MinY)
	b = appendF64(b, z.MaxX)
	b = appendF64(b, z.MaxY)
	return appendStr(b, z.Addr)
}

func (z *Zone) decodeBinary(r *binReader) error {
	z.ID = int(r.u32())
	z.MinX = r.f64()
	z.MinY = r.f64()
	z.MaxX = r.f64()
	z.MaxY = r.f64()
	z.Addr = r.internedStr()
	return r.err
}

func (m *ZoneMapResp) appendBinary(b []byte) []byte {
	b = appendU64(b, m.Epoch)
	b = appendU32(b, uint32(len(m.Zones)))
	for i := range m.Zones {
		b = m.Zones[i].appendBinary(b)
	}
	b = appendU32(b, uint32(len(m.Replicated)))
	for _, c := range m.Replicated {
		b = appendStr(b, c)
	}
	return b
}

func (m *ZoneMapResp) decodeBinary(r *binReader) error {
	m.Epoch = r.u64()
	n := r.count(minZoneSize)
	if cap(m.Zones) < n {
		m.Zones = make([]Zone, n)
	}
	m.Zones = m.Zones[:n]
	for i := range m.Zones {
		if err := m.Zones[i].decodeBinary(r); err != nil {
			return err
		}
	}
	k := r.count(1)
	if cap(m.Replicated) < k {
		m.Replicated = make([]string, k)
	}
	m.Replicated = m.Replicated[:k]
	for i := range m.Replicated {
		m.Replicated[i] = r.internedStr()
	}
	return r.err
}

func (h *HandoffReq) appendBinary(b []byte) []byte {
	b = appendStr(b, h.ID)
	b = appendU64(b, h.Version)
	b = appendStr(b, h.From)
	return appendBytes(b, h.Object)
}

func (h *HandoffReq) decodeBinary(r *binReader) error {
	h.ID = r.internedStr()
	h.Version = r.u64()
	h.From = r.internedStr()
	h.Object = json.RawMessage(r.strBytes())
	return r.err
}

func (h *HandoffResp) appendBinary(b []byte) []byte {
	b = appendBool(b, h.Accepted)
	return appendTick(b, h.Now)
}

func (h *HandoffResp) decodeBinary(r *binReader) error {
	h.Accepted = r.boolean()
	h.Now = r.tick()
	return r.err
}

func (f *ForwardReq) appendBinary(b []byte) []byte {
	b = appendStr(b, f.Origin)
	b = appendU64(b, f.ReqID)
	b = appendU32(b, uint32(len(f.Ops)))
	for i := range f.Ops {
		b = f.Ops[i].appendBinary(b)
	}
	return b
}

func (f *ForwardReq) decodeBinary(r *binReader) error {
	f.Origin = r.internedStr()
	f.ReqID = r.u64()
	n := r.count(minUpdateOpSize)
	if cap(f.Ops) < n {
		f.Ops = make([]UpdateOp, n)
	}
	f.Ops = f.Ops[:n]
	for i := range f.Ops {
		if err := f.Ops[i].decodeBinary(r); err != nil {
			return err
		}
	}
	return r.err
}
