// Package rtree is a from-scratch in-memory R-tree (Guttman 1984, the
// classic representative of the spatial access methods the paper's §4
// builds its dynamic-attribute index on: "we use a spatial index (see [9]
// for a survey of spatial access indexes) for each dynamic attribute A").
//
// The tree is dimension-generic up to three axes, so the same structure
// serves the (time, value) plane of a one-dimensional dynamic attribute and
// the (x, y, time) space of an object moving in the plane ("for an object
// moving in 2-dimensional space, the above scheme can be mimicked using an
// index of 3-dimensional space, with the third dimension being, obviously,
// time").
package rtree

import "math"

// MaxDims is the maximum number of axes supported.
const MaxDims = 3

// Rect is an axis-aligned box in up to MaxDims dimensions; only the first
// Dims axes are significant.
type Rect struct {
	Min, Max [MaxDims]float64
}

// Rect2 builds a 2-D rectangle.
func Rect2(minX, minY, maxX, maxY float64) Rect {
	return Rect{Min: [MaxDims]float64{minX, minY, 0}, Max: [MaxDims]float64{maxX, maxY, 0}}
}

// Rect3 builds a 3-D box.
func Rect3(minX, minY, minZ, maxX, maxY, maxZ float64) Rect {
	return Rect{Min: [MaxDims]float64{minX, minY, minZ}, Max: [MaxDims]float64{maxX, maxY, maxZ}}
}

// Intersects reports whether two boxes share any point in the first dims
// axes.
func (r Rect) Intersects(o Rect, dims int) bool {
	for d := 0; d < dims; d++ {
		if r.Min[d] > o.Max[d] || o.Min[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// contains reports whether o lies entirely within r.
func (r Rect) contains(o Rect, dims int) bool {
	for d := 0; d < dims; d++ {
		if o.Min[d] < r.Min[d] || o.Max[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// union returns the bounding box of r and o.
func (r Rect) union(o Rect, dims int) Rect {
	out := r
	for d := 0; d < dims; d++ {
		out.Min[d] = math.Min(r.Min[d], o.Min[d])
		out.Max[d] = math.Max(r.Max[d], o.Max[d])
	}
	return out
}

// area returns the volume of the box in the first dims axes.
func (r Rect) area(dims int) float64 {
	a := 1.0
	for d := 0; d < dims; d++ {
		a *= r.Max[d] - r.Min[d]
	}
	return a
}

// enlargement returns how much r's volume grows to absorb o.
func (r Rect) enlargement(o Rect, dims int) float64 {
	return r.union(o, dims).area(dims) - r.area(dims)
}

// Tree is an R-tree mapping rectangles to values of type T.  Values are
// compared with == on deletion.  The zero value is not ready to use; call
// New.
type Tree[T comparable] struct {
	dims     int
	maxEntry int
	minEntry int
	root     *node[T]
	size     int
}

type entry[T comparable] struct {
	rect  Rect
	child *node[T] // nil at leaves
	value T
}

type node[T comparable] struct {
	leaf    bool
	entries []entry[T]
}

// New returns an empty R-tree over the given number of dimensions (1 to 3).
// maxEntries controls the node fan-out; values below 4 default to 16.
func New[T comparable](dims, maxEntries int) *Tree[T] {
	if dims < 1 || dims > MaxDims {
		panic("rtree: dims must be between 1 and 3")
	}
	if maxEntries < 4 {
		maxEntries = 16
	}
	return &Tree[T]{
		dims:     dims,
		maxEntry: maxEntries,
		minEntry: maxEntries * 2 / 5, // Guttman suggests m ~ 40% of M
		root:     &node[T]{leaf: true},
	}
}

// Len returns the number of stored entries.
func (t *Tree[T]) Len() int { return t.size }

// Insert adds value with bounding box r.
func (t *Tree[T]) Insert(r Rect, value T) {
	t.insertEntry(entry[T]{rect: r, value: value})
	t.size++
}

func (t *Tree[T]) insertEntry(e entry[T]) {
	path := t.descend(e.rect)
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries, e)
	t.splitAlong(path)
}

// descend walks from the root to the leaf whose box needs least enlargement
// to absorb r (ties broken by smaller area), widening boxes on the way down,
// and returns the path root..leaf.
func (t *Tree[T]) descend(r Rect) []*node[T] {
	path := []*node[T]{t.root}
	n := t.root
	for !n.leaf {
		best := -1
		bestEnl, bestArea := math.Inf(1), math.Inf(1)
		for i := range n.entries {
			enl := n.entries[i].rect.enlargement(r, t.dims)
			area := n.entries[i].rect.area(t.dims)
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n.entries[best].rect = n.entries[best].rect.union(r, t.dims)
		n = n.entries[best].child
		path = append(path, n)
	}
	return path
}

// splitAlong splits overfull nodes from the leaf at the end of the path
// back up to the root.
func (t *Tree[T]) splitAlong(path []*node[T]) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.entries) <= t.maxEntry {
			return
		}
		left, right := t.splitNode(n)
		if i == 0 {
			t.root = &node[T]{
				leaf: false,
				entries: []entry[T]{
					{rect: boundsOf(left, t.dims), child: left},
					{rect: boundsOf(right, t.dims), child: right},
				},
			}
			return
		}
		parent := path[i-1]
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j] = entry[T]{rect: boundsOf(left, t.dims), child: left}
				break
			}
		}
		parent.entries = append(parent.entries, entry[T]{rect: boundsOf(right, t.dims), child: right})
	}
}

// splitNode performs Guttman's quadratic split, returning two nodes that
// partition n's entries.
func (t *Tree[T]) splitNode(n *node[T]) (*node[T], *node[T]) {
	es := n.entries
	// Pick seeds: the pair wasting the most area if grouped.
	si, sj, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(es); i++ {
		for j := i + 1; j < len(es); j++ {
			d := es[i].rect.union(es[j].rect, t.dims).area(t.dims) -
				es[i].rect.area(t.dims) - es[j].rect.area(t.dims)
			if d > worst {
				si, sj, worst = i, j, d
			}
		}
	}
	left := &node[T]{leaf: n.leaf, entries: []entry[T]{es[si]}}
	right := &node[T]{leaf: n.leaf, entries: []entry[T]{es[sj]}}
	lBox, rBox := es[si].rect, es[sj].rect
	rest := make([]entry[T], 0, len(es)-2)
	for i := range es {
		if i != si && i != sj {
			rest = append(rest, es[i])
		}
	}
	for len(rest) > 0 {
		// If one group must take everything to reach the minimum, do so.
		if len(left.entries)+len(rest) == t.minEntry {
			left.entries = append(left.entries, rest...)
			for _, e := range rest {
				lBox = lBox.union(e.rect, t.dims)
			}
			break
		}
		if len(right.entries)+len(rest) == t.minEntry {
			right.entries = append(right.entries, rest...)
			for _, e := range rest {
				rBox = rBox.union(e.rect, t.dims)
			}
			break
		}
		// PickNext: entry with the greatest preference difference.
		bi, bd := 0, math.Inf(-1)
		for i, e := range rest {
			d1 := lBox.enlargement(e.rect, t.dims)
			d2 := rBox.enlargement(e.rect, t.dims)
			if diff := math.Abs(d1 - d2); diff > bd {
				bi, bd = i, diff
			}
		}
		e := rest[bi]
		rest[bi] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		d1 := lBox.enlargement(e.rect, t.dims)
		d2 := rBox.enlargement(e.rect, t.dims)
		if d1 < d2 || (d1 == d2 && len(left.entries) < len(right.entries)) {
			left.entries = append(left.entries, e)
			lBox = lBox.union(e.rect, t.dims)
		} else {
			right.entries = append(right.entries, e)
			rBox = rBox.union(e.rect, t.dims)
		}
	}
	return left, right
}

func boundsOf[T comparable](n *node[T], dims int) Rect {
	b := n.entries[0].rect
	for _, e := range n.entries[1:] {
		b = b.union(e.rect, dims)
	}
	return b
}

// Search invokes fn for every entry whose box intersects q; returning false
// from fn stops the search early.
func (t *Tree[T]) Search(q Rect, fn func(Rect, T) bool) {
	t.search(t.root, q, fn)
}

func (t *Tree[T]) search(n *node[T], q Rect, fn func(Rect, T) bool) bool {
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Intersects(q, t.dims) {
			continue
		}
		if n.leaf {
			if !fn(e.rect, e.value) {
				return false
			}
		} else if !t.search(e.child, q, fn) {
			return false
		}
	}
	return true
}

// SearchAll returns all values whose boxes intersect q.
func (t *Tree[T]) SearchAll(q Rect) []T {
	var out []T
	t.Search(q, func(_ Rect, v T) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Delete removes one entry with the given value whose box intersects r,
// reporting whether an entry was removed.  Underfull nodes are condensed
// and their entries reinserted (Guttman's CondenseTree).
func (t *Tree[T]) Delete(r Rect, value T) bool {
	var orphans []entry[T]
	removed := t.deleteRec(t.root, r, value, &orphans)
	if !removed {
		return false
	}
	t.size--
	// Shrink the root if it has a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node[T]{leaf: true}
	}
	for _, e := range orphans {
		if e.child == nil {
			t.insertEntry(e)
		} else {
			t.reinsertSubtree(e.child)
		}
	}
	return true
}

func (t *Tree[T]) reinsertSubtree(n *node[T]) {
	if n.leaf {
		for _, e := range n.entries {
			t.insertEntry(e)
		}
		return
	}
	for _, e := range n.entries {
		t.reinsertSubtree(e.child)
	}
}

// deleteRec removes the entry from the subtree; underfull children are cut
// out and queued for reinsertion.
func (t *Tree[T]) deleteRec(n *node[T], r Rect, value T, orphans *[]entry[T]) bool {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].value == value && n.entries[i].rect.Intersects(r, t.dims) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Intersects(r, t.dims) {
			continue
		}
		if t.deleteRec(e.child, r, value, orphans) {
			if len(e.child.entries) < t.minEntry {
				// Cut the child out; its surviving entries reinsert later.
				for _, oe := range e.child.entries {
					*orphans = append(*orphans, oe)
				}
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
			} else {
				e.rect = boundsOf(e.child, t.dims)
			}
			return true
		}
	}
	return false
}

// Height returns the tree height (leaf = 1); exposed so tests and the E3
// experiment can verify logarithmic growth.
func (t *Tree[T]) Height() int {
	h, n := 1, t.root
	for !n.leaf {
		h++
		n = n.entries[0].child
	}
	return h
}
