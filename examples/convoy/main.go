// Convoy: the distributed architecture of §5.3.  Every vehicle's object
// lives only on the vehicle's own computer; queries are classified as
// self-referencing, object, or relationship queries, and the two object-
// query processing strategies — ship every object to the issuer versus
// broadcast the query and let satisfying nodes reply — are compared on
// real message counts.
package main

import (
	"fmt"
	"log"

	mostdb "github.com/mostdb/most"
)

func main() {
	const fleet = 50

	build := func(seed int64) *mostdb.Sim {
		sim := mostdb.NewSim(seed)
		vehicles, err := mostdb.NewClass("Vehicles", true)
		if err != nil {
			log.Fatal(err)
		}
		// A convoy of 8 trucks driving together, and independent traffic.
		for i := 0; i < fleet; i++ {
			id := mostdb.ObjectID(fmt.Sprintf("truck-%02d", i))
			o, err := mostdb.NewObject(id, vehicles)
			if err != nil {
				log.Fatal(err)
			}
			var pos mostdb.Position
			if i < 8 {
				// Convoy members: nose-to-tail, same velocity.
				pos = mostdb.MovingFrom(mostdb.Point{X: float64(i) * 2}, mostdb.Vector{X: 1}, 0)
			} else {
				pos = mostdb.MovingFrom(
					mostdb.Point{X: float64(i * 50), Y: float64(i%10) * 30},
					mostdb.Vector{X: float64(i%5) - 2, Y: 1},
					0)
			}
			o, err = o.WithPosition(pos)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := sim.AddNode(o); err != nil {
				log.Fatal(err)
			}
		}
		sim.Regions["depot"] = mostdb.RectPolygon(90, -20, 130, 20)
		return sim
	}

	// Self-referencing query: answered with zero communication.
	sim := build(1)
	self := mostdb.MustParseQuery(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 120 INSIDE(o, depot)`)
	rel, err := sim.SelfQuery("truck-00", self, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-referencing: will truck-00 reach the depot within 120 min? %v (messages: %d)\n",
		rel.Len() > 0, sim.NetStats().Messages)

	// Object query under both strategies.
	objQ := mostdb.MustParseQuery(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 120 INSIDE(o, depot)`)
	shipSim := build(2)
	ship, err := shipSim.RunObjectQuery("truck-00", objQ, 200, mostdb.ShipObjects)
	if err != nil {
		log.Fatal(err)
	}
	bcastSim := build(2)
	bcast, err := bcastSim.RunObjectQuery("truck-00", objQ, 200, mostdb.BroadcastQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("object query (%d nodes, %d qualify):\n", fleet, ship.Relation.Len())
	fmt.Printf("  ship-objects:    %4d messages, %6d bytes\n", ship.Traffic.Messages, ship.Traffic.Bytes)
	fmt.Printf("  broadcast-query: %4d messages, %6d bytes\n", bcast.Traffic.Messages, bcast.Traffic.Bytes)

	// Relationship query: which trucks stay within 2 miles of each other
	// for the next 30 minutes?  Processed centrally at the issuer.
	relSim := build(3)
	relQ := mostdb.MustParseQuery(`
		RETRIEVE o, n FROM Vehicles o, Vehicles n
		WHERE ALWAYS FOR 30 DIST(o, n) <= 2`)
	res, err := relSim.RunRelationshipQuery("truck-00", relQ, 60)
	if err != nil {
		log.Fatal(err)
	}
	pairs := 0
	for _, t := range res.Relation.Tuples() {
		if t.Vals[0].String() < t.Vals[1].String() {
			pairs++
		}
	}
	fmt.Printf("relationship query: %d convoy pairs found; %d messages to centralize\n",
		pairs, res.Traffic.Messages)
}
