package query

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/temporal"
)

// checkAgainstNaive asserts the continuous query's presentation at the
// current tick matches a from-scratch evaluation.
func checkAgainstNaive(t *testing.T, db *most.Database, cq *Continuous, q *ftl.Query, regions map[string]geom.Polygon, horizon temporal.Tick, label string) {
	t.Helper()
	now := db.Now()
	got, err := cq.Current(now)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	naive := naiveEval(t, db, q, regions, horizon)
	var want []Row
	for _, vals := range naive.At(now) {
		want = append(want, Row(vals))
	}
	if !sameRows(got, want) {
		t.Errorf("%s: engine %v, naive %v", label, rowKeys(got), rowKeys(want))
	}
}

// TestContinuousDeltaMaintenance drives decomposable queries through motion
// updates, inserts and deletes, asserting per-update equality with the
// naive evaluator, that maintenance went through the delta path (counter
// and evaluation accounting), and that the full path is only used to
// re-anchor.
func TestContinuousDeltaMaintenance(t *testing.T) {
	db, cls := testDB(t)
	reg := obs.New()
	e := NewEngine(db)
	e.Instrument(reg)
	for i := 0; i < 8; i++ {
		addCar(t, db, cls, most.ObjectID(fmt.Sprintf("car-%d", i)),
			geom.Point{X: float64(5 * i), Y: float64(i) - 4}, geom.Vector{X: 1})
	}
	regions := regionP()
	horizon := temporal.Tick(100)

	qSingle := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 10 INSIDE(o, P)`)
	qPair := ftl.MustParse(`RETRIEVE o, n FROM Vehicles o, Vehicles n WHERE ALWAYS FOR 5 DIST(o, n) <= 12`)
	opts := Options{Horizon: horizon, Regions: regions}

	cqSingle, err := e.Continuous(qSingle, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cqSingle.Cancel()
	cqPair, err := e.Continuous(qPair, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cqPair.Cancel()

	base := e.Evaluations()

	// One motion update: the single-binding query patches with exactly one
	// pinned evaluation, the pair query with two (o and n pinned in turn).
	if err := db.SetMotion("car-3", geom.Vector{X: -2}); err != nil {
		t.Fatal(err)
	}
	if got := e.Evaluations(); got != base+3 {
		t.Errorf("evaluations after one update = %d, want %d (1 pinned for single + 2 for pair)", got, base+3)
	}
	checkAgainstNaive(t, db, cqSingle, qSingle, regions, horizon, "single after motion")
	checkAgainstNaive(t, db, cqPair, qPair, regions, horizon, "pair after motion")

	// A burst of updates with the clock advancing stays on the delta path
	// (depth 10 and 5 against horizon 100) and stays equal to naive.
	for i := 0; i < 10; i++ {
		db.Advance(3)
		id := most.ObjectID(fmt.Sprintf("car-%d", i%8))
		if err := db.SetMotion(id, geom.Vector{X: float64(i%5) - 2, Y: float64(i % 2)}); err != nil {
			t.Fatal(err)
		}
		checkAgainstNaive(t, db, cqSingle, qSingle, regions, horizon, fmt.Sprintf("single step %d", i))
		checkAgainstNaive(t, db, cqPair, qPair, regions, horizon, fmt.Sprintf("pair step %d", i))
	}

	// Insert: the new object's tuples (and, for pairs, its combinations
	// with every existing object) appear via the patch.
	addCar(t, db, cls, "late", geom.Point{X: 30}, geom.Vector{X: -1})
	checkAgainstNaive(t, db, cqSingle, qSingle, regions, horizon, "single after insert")
	checkAgainstNaive(t, db, cqPair, qPair, regions, horizon, "pair after insert")

	// Delete: every tuple naming the object disappears, in either column.
	if err := db.Delete("car-5"); err != nil {
		t.Fatal(err)
	}
	checkAgainstNaive(t, db, cqSingle, qSingle, regions, horizon, "single after delete")
	checkAgainstNaive(t, db, cqPair, qPair, regions, horizon, "pair after delete")

	snap := reg.Snapshot()
	if snap.Counters["query.continuous.delta"] <= 0 {
		t.Errorf("delta counter = %d, want > 0", snap.Counters["query.continuous.delta"])
	}
	if snap.Counters["query.continuous.fallback"] != 0 {
		t.Errorf("fallback counter = %d, want 0 (all shapes decomposable)", snap.Counters["query.continuous.fallback"])
	}
	// The clock advanced 30 ticks against validity horizon-depth >= 90, so
	// no re-anchoring full reevaluation was needed either.
	if snap.Counters["query.continuous.full"] != 0 {
		t.Errorf("full counter = %d, want 0", snap.Counters["query.continuous.full"])
	}
}

// TestContinuousDeltaReanchor pins the window-validity fallback: with depth
// 30 against horizon 50, tuples anchored at the last full evaluation stop
// being presentable 20 ticks later, so maintenance past that point must
// re-anchor with a full reevaluation — and stay equal to naive throughout.
func TestContinuousDeltaReanchor(t *testing.T) {
	db, cls := testDB(t)
	reg := obs.New()
	e := NewEngine(db)
	e.Instrument(reg)
	addCar(t, db, cls, "a", geom.Point{X: 0}, geom.Vector{X: 1})
	addCar(t, db, cls, "b", geom.Point{X: 40}, geom.Vector{X: -1})
	regions := regionP()
	horizon := temporal.Tick(50)

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 30 INSIDE(o, P)`)
	cq, err := e.Continuous(q, Options{Horizon: horizon, Regions: regions})
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Cancel()

	for i := 0; i < 12; i++ {
		db.Advance(7) // crosses the 20-tick validity every third step
		if err := db.SetMotion("a", geom.Vector{X: float64(i%3) - 1}); err != nil {
			t.Fatal(err)
		}
		checkAgainstNaive(t, db, cq, q, regions, horizon, fmt.Sprintf("step %d", i))
	}
	snap := reg.Snapshot()
	if snap.Counters["query.continuous.delta"] <= 0 {
		t.Errorf("delta counter = %d, want > 0", snap.Counters["query.continuous.delta"])
	}
	if snap.Counters["query.continuous.full"] <= 0 {
		t.Errorf("full counter = %d, want > 0 (re-anchoring required)", snap.Counters["query.continuous.full"])
	}
	// Re-anchoring is not a decomposability failure.
	if snap.Counters["query.continuous.fallback"] != 0 {
		t.Errorf("fallback counter = %d, want 0", snap.Counters["query.continuous.fallback"])
	}
}

// TestContinuousDeltaFallbacks pins the structural fallback conditions:
// unbounded operators, bindings projected away by answer assembly,
// assignment-coupled bindings, and the DisableDelta knob all must route
// maintenance through full reevaluation — with answers still equal to
// naive.
func TestContinuousDeltaFallbacks(t *testing.T) {
	cases := []struct {
		name         string
		src          string
		disable      bool
		wantFallback bool // counted as fallback (vs. deliberate DisableDelta)
	}{
		{"unbounded-eventually", `RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, P)`, false, true},
		{"non-target-binding", `RETRIEVE o FROM Vehicles o, Vehicles n WHERE EVENTUALLY WITHIN 5 DIST(o, n) <= 3`, false, true},
		{"assign-coupled", `RETRIEVE o, n FROM Vehicles o, Vehicles n
			WHERE [x <- SPEED(o.X.POSITION)] EVENTUALLY WITHIN 5 SPEED(n.X.POSITION) >= x + 1`, false, true},
		{"disable-delta", `RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`, true, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			db, cls := testDB(t)
			reg := obs.New()
			e := NewEngine(db)
			e.Instrument(reg)
			addCar(t, db, cls, "u", geom.Point{X: 12}, geom.Vector{})
			addCar(t, db, cls, "v", geom.Point{X: 30}, geom.Vector{X: -1})
			regions := regionP()
			horizon := temporal.Tick(100)

			q := ftl.MustParse(c.src)
			cq, err := e.Continuous(q, Options{Horizon: horizon, Regions: regions, DisableDelta: c.disable})
			if err != nil {
				t.Fatal(err)
			}
			defer cq.Cancel()

			for i := 0; i < 3; i++ {
				db.Advance(1)
				// Always head toward region P: every update's motion
				// envelope overlaps P, so the spatial relevance filter
				// never skips it and the scheduling counters below stay
				// exact.
				if err := db.SetMotion("v", geom.Vector{X: -float64(i) - 1}); err != nil {
					t.Fatal(err)
				}
				checkAgainstNaive(t, db, cq, q, regions, horizon, fmt.Sprintf("step %d", i))
			}
			snap := reg.Snapshot()
			if snap.Counters["query.continuous.delta"] != 0 {
				t.Errorf("delta counter = %d, want 0", snap.Counters["query.continuous.delta"])
			}
			if snap.Counters["query.continuous.full"] != 3 {
				t.Errorf("full counter = %d, want 3", snap.Counters["query.continuous.full"])
			}
			gotFallback := snap.Counters["query.continuous.fallback"] > 0
			if gotFallback != c.wantFallback {
				t.Errorf("fallback counter = %d, want >0=%v", snap.Counters["query.continuous.fallback"], c.wantFallback)
			}
		})
	}
}

// Registration-window regression tests.  The fleet is sized so the initial
// evaluation runs well past the runtime's preemption threshold (~10ms):
// even with GOMAXPROCS=1 the armed updater goroutine is scheduled in the
// middle of the evaluation and its commit lands inside the registration
// window.  An update committed there used to vanish — the handle was not
// yet in the engine's map, so onUpdate never saw it, and the installed
// answer reflected the pre-update snapshot — leaving Answer(CQ) stale
// until the next relevant update.  With registration-before-evaluation the
// update either lands in the evaluated snapshot or is queued behind the
// held maintenance loop, so the answer always converges.  Run with -race.
// The fleet sizes differ because the two registration paths have very
// different per-object cost: a continuous registration evaluates one
// snapshot, a persistent registration replays the logged history.  Both
// sizes put the initial evaluation at roughly 15-30ms on a modern core.
const (
	windowCarsContinuous = 16000
	windowCarsPersistent = 1500
	windowIters          = 6
	windowHorizon        = temporal.Tick(100)
)

// armCommit readies a goroutine that commits one motion update (sending
// car-0 toward P, flipping its membership) delay after fire is called.
// The goroutine is already running and hot-spinning on an atomic flag when
// fire returns, so the commit time is not distorted by goroutine start-up
// latency; on a single-P runtime the spin also keeps it runnable so the
// scheduler hands it the P as soon as the evaluation is preempted.
func armCommit(t *testing.T, db *most.Database, delay time.Duration) (fire, wait func()) {
	t.Helper()
	var fireAt atomic.Int64
	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(ready)
		var start time.Time
		for {
			if ns := fireAt.Load(); ns != 0 {
				start = time.Unix(0, ns)
				break
			}
		}
		for time.Since(start) < delay {
		}
		done <- db.SetMotion("car-0", geom.Vector{X: -1})
	}()
	<-ready
	fire = func() { fireAt.Store(time.Now().UnixNano()) }
	wait = func() {
		if err := <-done; err != nil {
			t.Fatalf("concurrent SetMotion: %v", err)
		}
	}
	return fire, wait
}

func windowFleet(t *testing.T, nCars int) (*most.Database, *Engine) {
	t.Helper()
	db, cls := testDB(t)
	e := NewEngine(db)
	// All cars parked right of P: the answer starts empty.
	for i := 0; i < nCars; i++ {
		addCar(t, db, cls, most.ObjectID(fmt.Sprintf("car-%d", i)),
			geom.Point{X: float64(30 + i%40)}, geom.Vector{})
	}
	return db, e
}

func TestRegistrationWindowContinuous(t *testing.T) {
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 90 INSIDE(o, P)`)
	regions := regionP()
	for iter := 0; iter < windowIters; iter++ {
		db, e := windowFleet(t, windowCarsContinuous)
		// The delay sweeps across the iterations so commits land at
		// different points of the registration regardless of how long the
		// evaluation takes on this machine.
		fire, wait := armCommit(t, db, time.Duration(iter)*2*time.Millisecond)
		fire()
		cq, err := e.Continuous(q, Options{Horizon: windowHorizon, Regions: regions})
		wait()
		if err != nil {
			t.Fatal(err)
		}
		// Both the registration drain and the updater's synchronous
		// maintenance have returned: the answer must reflect the update.
		checkAgainstNaive(t, db, cq, q, regions, windowHorizon, fmt.Sprintf("iter %d", iter))
		cq.Cancel()
	}
}

// TestRegistrationWindowPersistent is the same regression for Persistent:
// an update committed during the initial history replay must be absorbed.
func TestRegistrationWindowPersistent(t *testing.T) {
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 90 INSIDE(o, P)`)
	regions := regionP()
	for iter := 0; iter < windowIters; iter++ {
		db, e := windowFleet(t, windowCarsPersistent)
		fire, wait := armCommit(t, db, time.Duration(iter)*2*time.Millisecond)
		fire()
		pq, err := e.Persistent(q, Options{Horizon: windowHorizon, Regions: regions})
		wait()
		if err != nil {
			t.Fatal(err)
		}
		got, err := pq.Current()
		if err != nil {
			t.Fatal(err)
		}
		want := naivePersistent(t, db, q, regions, pq.Anchor(), windowHorizon)
		if !sameRows(got, want) {
			t.Errorf("iter %d: engine %v, naive %v", iter, rowKeys(got), rowKeys(want))
		}
		pq.Cancel()
	}
}

// TestSubscribeAfterCancel pins the errUnregistered contract: subscribing
// to a cancelled handle fails like Answer/Current do, and the listener is
// never invoked.
func TestSubscribeAfterCancel(t *testing.T) {
	db, cls := testDB(t)
	e := NewEngine(db)
	addCar(t, db, cls, "v", geom.Point{X: 15}, geom.Vector{})
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`)
	opts := Options{Horizon: 50, Regions: regionP()}

	cq, err := e.Continuous(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := e.Persistent(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	cq.Cancel()
	pq.Cancel()

	cqFired, pqFired := false, false
	if err := cq.Subscribe(func(*eval.Relation) { cqFired = true }); err != errUnregistered {
		t.Errorf("Continuous.Subscribe after Cancel = %v, want errUnregistered", err)
	}
	if err := pq.Subscribe(func([]Row) { pqFired = true }); err != errUnregistered {
		t.Errorf("Persistent.Subscribe after Cancel = %v, want errUnregistered", err)
	}
	if err := db.SetMotion("v", geom.Vector{X: 1}); err != nil {
		t.Fatal(err)
	}
	if cqFired || pqFired {
		t.Errorf("listener fired after cancel: cq=%v pq=%v", cqFired, pqFired)
	}
}

// TestPersistentSkipsIrrelevantUpdates mirrors the continuous-query test:
// updates to a class the persistent query does not range over cannot change
// the replayed history, so they must not cost a reevaluation.
func TestPersistentSkipsIrrelevantUpdates(t *testing.T) {
	db, cls := testDB(t)
	walkers := most.MustClass("Pedestrians", true)
	if err := db.DefineClass(walkers); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db)
	addCar(t, db, cls, "v", geom.Point{X: 0}, geom.Vector{X: 1})
	w, err := most.NewObject("w", walkers)
	if err != nil {
		t.Fatal(err)
	}
	w, err = w.WithPosition(motion.MovingFrom(geom.Point{X: 5}, geom.Vector{}, db.Now()))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(w); err != nil {
		t.Fatal(err)
	}

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 20 INSIDE(o, P)`)
	pq, err := e.Persistent(q, Options{Horizon: 50, Regions: regionP()})
	if err != nil {
		t.Fatal(err)
	}
	defer pq.Cancel()

	base := e.Evaluations()
	for i := 0; i < 5; i++ {
		if err := db.SetMotion("w", geom.Vector{X: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Evaluations(); got != base {
		t.Errorf("evaluations after irrelevant updates = %d, want %d", got, base)
	}
	if err := db.SetMotion("v", geom.Vector{X: 2}); err != nil {
		t.Fatal(err)
	}
	if got := e.Evaluations(); got != base+1 {
		t.Errorf("evaluations after relevant update = %d, want %d", got, base+1)
	}
}
