package relstore

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ResultSet is the output of a SELECT.
type ResultSet struct {
	Columns []string
	Rows    []Row
}

// Exec parses and executes one SQL statement against the store.  SELECT
// returns a ResultSet; other statements return a ResultSet whose single
// row holds the affected-row count.
func (s *Store) Exec(sql string) (*ResultSet, error) {
	toks, err := sqlLex(sql)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{store: s, toks: toks}
	return p.statement()
}

// MustExec is Exec that panics on error; for fixtures.
func (s *Store) MustExec(sql string) *ResultSet {
	rs, err := s.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("relstore.MustExec(%q): %v", sql, err))
	}
	return rs
}

// ---- lexer ----

type sqlTok struct {
	kind sqlTokKind
	text string
	num  float64
}

type sqlTokKind uint8

const (
	sqlEOF sqlTokKind = iota
	sqlIdent
	sqlNum
	sqlStr
	sqlSym
)

var sqlKeywords = map[string]bool{
	"CREATE": true, "TABLE": true, "INDEX": true, "ON": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true,
	"DELETE": true, "UPDATE": true, "SET": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"DROP": true,
	"AND":  true, "OR": true, "NOT": true,
	"TRUE": true, "FALSE": true, "NULL": true,
}

func sqlLex(src string) ([]sqlTok, error) {
	var out []sqlTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '_' || unicode.IsLetter(rune(c)):
			j := i
			for j < len(src) && (src[j] == '_' || unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j]))) {
				j++
			}
			word := src[i:j]
			if sqlKeywords[strings.ToUpper(word)] {
				out = append(out, sqlTok{kind: sqlIdent, text: strings.ToUpper(word)})
			} else {
				out = append(out, sqlTok{kind: sqlIdent, text: word})
			}
			i = j
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9' && numContext(out)):
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			f, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("relstore: bad number %q", src[i:j])
			}
			out = append(out, sqlTok{kind: sqlNum, num: f})
			i = j
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("relstore: unterminated string")
			}
			out = append(out, sqlTok{kind: sqlStr, text: src[i+1 : j]})
			i = j + 1
		default:
			for _, two := range []string{"<=", ">=", "!=", "<>"} {
				if strings.HasPrefix(src[i:], two) {
					out = append(out, sqlTok{kind: sqlSym, text: two})
					i += 2
					goto next
				}
			}
			switch c {
			case '(', ')', ',', '*', '=', '<', '>', '+', '-', '/', '.':
				out = append(out, sqlTok{kind: sqlSym, text: string(c)})
				i++
			default:
				return nil, fmt.Errorf("relstore: unexpected character %q", string(c))
			}
		next:
		}
	}
	out = append(out, sqlTok{kind: sqlEOF})
	return out, nil
}

// numContext reports whether a '-' here starts a negative literal (after an
// operator or opening paren or comma) rather than a subtraction.
func numContext(toks []sqlTok) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	if last.kind == sqlSym {
		switch last.text {
		case ")", ".":
			return false
		}
		return true
	}
	if last.kind == sqlIdent {
		switch last.text {
		case "VALUES", "WHERE", "AND", "OR", "NOT", "SET":
			return true
		}
	}
	return false
}

// ---- parser / executor ----

type sqlParser struct {
	store *Store
	toks  []sqlTok
	pos   int
}

func (p *sqlParser) peek() sqlTok { return p.toks[p.pos] }
func (p *sqlParser) next() sqlTok { t := p.toks[p.pos]; p.pos++; return t }

func (p *sqlParser) acceptKw(kw string) bool {
	if p.peek().kind == sqlIdent && p.peek().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) acceptSym(sym string) bool {
	if p.peek().kind == sqlSym && p.peek().text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("relstore: expected %s, found %v", kw, p.peek().text)
	}
	return nil
}

func (p *sqlParser) expectSym(sym string) error {
	if !p.acceptSym(sym) {
		return fmt.Errorf("relstore: expected %q, found %v", sym, p.peek().text)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.peek()
	if t.kind != sqlIdent || sqlKeywords[t.text] {
		return "", fmt.Errorf("relstore: expected identifier, found %v", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *sqlParser) statement() (*ResultSet, error) {
	switch {
	case p.acceptKw("CREATE"):
		if p.acceptKw("TABLE") {
			return p.createTable()
		}
		if p.acceptKw("INDEX") {
			return p.createIndex()
		}
		return nil, fmt.Errorf("relstore: CREATE must be followed by TABLE or INDEX")
	case p.acceptKw("INSERT"):
		return p.insert()
	case p.acceptKw("SELECT"):
		return p.selectStmt()
	case p.acceptKw("DELETE"):
		return p.deleteStmt()
	case p.acceptKw("UPDATE"):
		return p.updateStmt()
	case p.acceptKw("DROP"):
		if err := p.expectKw("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.store.DropTable(name); err != nil {
			return nil, err
		}
		return countResult(0), nil
	default:
		return nil, fmt.Errorf("relstore: unknown statement starting with %v", p.peek().text)
	}
}

func countResult(n int) *ResultSet {
	return &ResultSet{Columns: []string{"count"}, Rows: []Row{{Num(float64(n))}}}
}

func (p *sqlParser) createTable() (*ResultSet, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if _, err := p.store.CreateTable(name, cols...); err != nil {
		return nil, err
	}
	return countResult(0), nil
}

func (p *sqlParser) createIndex() (*ResultSet, error) {
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	t, ok := p.store.Table(name)
	if !ok {
		return nil, fmt.Errorf("relstore: no table %s", name)
	}
	if err := t.CreateIndex(col); err != nil {
		return nil, err
	}
	return countResult(0), nil
}

func (p *sqlParser) insert() (*ResultSet, error) {
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t, ok := p.store.Table(name)
	if !ok {
		return nil, fmt.Errorf("relstore: no table %s", name)
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	n := 0
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row Row
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
		n++
		if !p.acceptSym(",") {
			break
		}
	}
	return countResult(n), nil
}

func (p *sqlParser) literal() (Value, error) {
	t := p.peek()
	switch {
	case t.kind == sqlNum:
		p.pos++
		return Num(t.num), nil
	case t.kind == sqlStr:
		p.pos++
		return Str(t.text), nil
	case t.kind == sqlIdent && t.text == "TRUE":
		p.pos++
		return Bool(true), nil
	case t.kind == sqlIdent && t.text == "FALSE":
		p.pos++
		return Bool(false), nil
	case t.kind == sqlIdent && t.text == "NULL":
		p.pos++
		return Null(), nil
	default:
		return Value{}, fmt.Errorf("relstore: expected literal, found %v", t.text)
	}
}
