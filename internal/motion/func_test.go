package motion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearValue(t *testing.T) {
	f := Linear(5)
	for _, tc := range []struct{ t, want float64 }{{0, 0}, {1, 5}, {2.5, 12.5}, {-1, -5}} {
		if got := f.Value(tc.t); got != tc.want {
			t.Errorf("Value(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if !Constant().IsZero() || !Linear(0).IsZero() {
		t.Error("zero functions should report IsZero")
	}
	if Linear(5).IsZero() {
		t.Error("5t is not zero")
	}
}

func TestNewFuncValidation(t *testing.T) {
	if _, err := NewFunc(Piece{Start: -1, Slope: 2}); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := NewFunc(Piece{Start: 0, Slope: 1}, Piece{Start: 0, Slope: 2}); err == nil {
		t.Error("duplicate offset should fail")
	}
	// A leading gap gets a zero lead-in.
	f := MustFunc(Piece{Start: 10, Slope: 3})
	if got := f.Value(10); got != 0 {
		t.Errorf("Value(10) = %v, want 0 (zero lead-in)", got)
	}
	if got := f.Value(12); got != 6 {
		t.Errorf("Value(12) = %v, want 6", got)
	}
}

func TestPiecewiseValueContinuity(t *testing.T) {
	// Speed 5 for 10 ticks, then 7 for 10 ticks, then -2.
	f := MustFunc(Piece{0, 5, 0}, Piece{10, 7, 0}, Piece{20, -2, 0})
	tests := []struct{ t, want float64 }{
		{0, 0}, {10, 50}, {15, 85}, {20, 120}, {25, 110},
	}
	for _, tc := range tests {
		if got := f.Value(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Value(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	for _, tc := range []struct{ t, want float64 }{{0, 5}, {9.9, 5}, {10.1, 7}, {25, -2}} {
		if got := f.SlopeAt(tc.t); got != tc.want {
			t.Errorf("SlopeAt(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestFuncScale(t *testing.T) {
	f := MustFunc(Piece{0, 4, 0}, Piece{5, -2, 0})
	g := f.Scale(0.5)
	for _, tt := range []float64{0, 3, 5, 8} {
		if got, want := g.Value(tt), f.Value(tt)/2; math.Abs(got-want) > 1e-12 {
			t.Errorf("scaled Value(%v) = %v, want %v", tt, got, want)
		}
	}
}

func TestFuncString(t *testing.T) {
	if got := Linear(5).String(); got != "5t" {
		t.Errorf("String = %q", got)
	}
	if got := Constant().String(); got != "0" {
		t.Errorf("String = %q", got)
	}
	if got := MustFunc(Piece{0, 1, 0}, Piece{3, 2, 0}).String(); got != "{0:1t, 3:2t}" {
		t.Errorf("String = %q", got)
	}
}

// randomFunc builds a random piecewise-linear function with up to 4 pieces.
func randomFunc(r *rand.Rand) Func {
	n := 1 + r.Intn(4)
	pieces := make([]Piece, n)
	off := 0.0
	for i := range pieces {
		pieces[i] = Piece{Start: off, Slope: float64(r.Intn(21) - 10)}
		off += 1 + float64(r.Intn(10))
	}
	return MustFunc(pieces...)
}

func TestFuncQuickProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}

	// f(0) == 0 always (the paper's defining constraint).
	zeroAtZero := func(seed int64) bool {
		f := randomFunc(rand.New(rand.NewSource(seed)))
		return f.Value(0) == 0
	}
	if err := quick.Check(zeroAtZero, cfg); err != nil {
		t.Error(err)
	}

	// Continuity at breakpoints.
	continuous := func(seed int64) bool {
		f := randomFunc(rand.New(rand.NewSource(seed)))
		for _, p := range f.Pieces() {
			if math.Abs(f.Value(p.Start-1e-9)-f.Value(p.Start+1e-9)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(continuous, cfg); err != nil {
		t.Error(err)
	}

	// Value is the integral of SlopeAt: check by finite differences.
	integral := func(seed int64) bool {
		f := randomFunc(rand.New(rand.NewSource(seed)))
		for x := 0.25; x < 40; x += 1.0 {
			got := (f.Value(x+1e-6) - f.Value(x-1e-6)) / 2e-6
			if math.Abs(got-f.SlopeAt(x)) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(integral, cfg); err != nil {
		t.Error(err)
	}
}
