package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/wire"
)

// Router is the client-side face of a cluster: it holds one connection
// per node, routes update batches to the owning node, scatters queries to
// every node and merges the per-zone answers, and keeps continuous
// queries registered everywhere so a merged subscription follows objects
// across zone crossings.
//
// Routing state is a cache, not a source of truth.  The owner map is
// seeded from each node's object listing and corrected by the nodes
// themselves: a batch that lands wholesale on a wrong node is relayed
// server-side (OpForward), and a mixed or unknown batch comes back as a
// wrong_zone redirect carrying the owner's address.  Either way the
// router learns and the next batch flies direct.
type Router struct {
	zm   atomic.Pointer[ZoneMap]
	dial func(addr string) (net.Conn, error)

	mu       sync.Mutex
	clients  map[string]*client.Client // by node address
	order    []string                  // node addresses, zone-map order
	owner    map[string]string         // object id -> node address (cache)
	repl     map[string]bool           // object id -> replicated class member
	ownerGen uint64                    // bumped by each completed refreshOwners
	nonce    string

	refreshMu sync.Mutex // single-flights refreshOwners
}

// NewRouter bootstraps a router from any live node: it fetches the zone
// map, connects to every node in it, and seeds the ownership cache from
// the nodes' object listings.  nonce makes the router's per-node client
// identities unique per process, dial (nil = TCP) injects the transport.
func NewRouter(addr, nonce string, dial func(addr string) (net.Conn, error)) (*Router, error) {
	r := &Router{
		dial:    dial,
		clients: map[string]*client.Client{},
		owner:   map[string]string{},
		repl:    map[string]bool{},
		nonce:   nonce,
	}
	boot, err := r.connect(addr)
	if err != nil {
		return nil, err
	}
	zmw, err := boot.ZoneMap()
	if err != nil {
		r.Close()
		return nil, fmt.Errorf("cluster: fetch zone map: %w", err)
	}
	zm := FromWire(&zmw)
	r.zm.Store(zm)
	seen := map[string]bool{}
	for _, z := range zm.Zones {
		if seen[z.Addr] {
			continue
		}
		seen[z.Addr] = true
		r.order = append(r.order, z.Addr)
		if _, err := r.connect(z.Addr); err != nil {
			r.Close()
			return nil, err
		}
	}
	if err := r.seedOwners(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// connect returns (dialing on first use) the client for one node.  Each
// per-node client carries a distinct identity: a forwarded request is
// deduplicated on the destination under (origin identity, request id),
// and two clients with one identity but independent id counters could
// collide there.
func (r *Router) connect(addr string) (*client.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cl, ok := r.clients[addr]; ok {
		return cl, nil
	}
	opts := []client.Option{
		client.WithClientID("router:" + r.nonce + ":" + addr),
		client.WithRetries(400),
		client.WithTimeout(10 * time.Second),
		client.WithBackoff(2*time.Millisecond, 250*time.Millisecond),
		// If the cluster is ever re-homed, a healing subscription re-asks
		// the zone map for the address now serving this node's zones
		// instead of redialing a dead one forever.
		client.WithResolver(func(prev string) (string, error) { return r.resolveNode(prev) }),
	}
	if r.dial != nil {
		opts = append(opts, client.WithDialer(r.dial))
	}
	cl, err := client.Dial(addr, opts...)
	if err != nil {
		return nil, err
	}
	r.clients[addr] = cl
	return cl, nil
}

// resolveNode maps a (possibly dead) node address to the address serving
// its zones in the current map — the heal-loop's zone-map indirection.
func (r *Router) resolveNode(prev string) (string, error) {
	zm := r.zm.Load()
	if zm == nil {
		return prev, nil
	}
	for _, z := range zm.Zones {
		if z.Addr == prev {
			return z.Addr, nil
		}
	}
	// The address vanished from the map entirely: its zones were re-homed;
	// any surviving node can say where.  With a static map this is
	// unreachable, but the contract keeps the heal loop zone-map-driven.
	if len(zm.Zones) > 0 {
		return zm.Zones[0].Addr, nil
	}
	return prev, nil
}

// seedOwners fills the ownership cache from every node's object listing
// and records which objects belong to replicated classes.
func (r *Router) seedOwners() error {
	zm := r.zm.Load()
	for _, addr := range r.nodes() {
		cl, err := r.connect(addr)
		if err != nil {
			return err
		}
		resp, err := cl.Objects("")
		if err != nil {
			return fmt.Errorf("cluster: seed owners from %s: %w", addr, err)
		}
		r.mu.Lock()
		for _, o := range resp.Objects {
			if zm != nil && zm.IsReplicated(o.Class) {
				r.repl[o.ID] = true
				continue
			}
			r.owner[o.ID] = addr
		}
		r.mu.Unlock()
	}
	return nil
}

// nodes returns the node addresses in zone-map order.
func (r *Router) nodes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// ZoneMap returns the topology the router currently routes by.
func (r *Router) ZoneMap() *ZoneMap { return r.zm.Load() }

// NodeClient returns the router's connection to one node, for callers
// that need per-node inspection (tests, benchmarks).
func (r *Router) NodeClient(addr string) (*client.Client, error) { return r.connect(addr) }

// Close tears down every node connection.
func (r *Router) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for addr, cl := range r.clients {
		cl.Close()
		delete(r.clients, addr)
	}
}

// ---- updates ----

// UpdateBatch routes ops to their owning nodes and applies them.  Ops on
// replicated-class objects broadcast to every node (each maintains its
// own full copy); the rest group by cached owner and fly direct, with
// server-side relaying and wrong_zone redirects correcting stale cache
// entries.  Applied counts each original op once, however many replicas
// applied it; Now and Version are taken from the last response and are
// only meaningful to callers quiescing at barriers.
func (r *Router) UpdateBatch(ops []wire.UpdateOp) (wire.UpdateBatchResp, error) {
	groups := map[string][]wire.UpdateOp{}
	var bcast []wire.UpdateOp
	r.mu.Lock()
	fallback := ""
	if len(r.order) > 0 {
		fallback = r.order[0]
	}
	for _, op := range ops {
		if r.repl[op.ID] {
			bcast = append(bcast, op)
			continue
		}
		addr, ok := r.owner[op.ID]
		if !ok || addr == "" {
			addr = r.routeColdLocked(&op, fallback)
		}
		groups[addr] = append(groups[addr], op)
	}
	r.mu.Unlock()

	var out wire.UpdateBatchResp
	addrs := sortedKeys(groups)
	resps := make([]wire.UpdateBatchResp, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		// Per-node groups are independent requests on independent
		// connections: scatter them concurrently so a batch spanning N
		// zones costs one round trip, not N.
		i, addr := i, addr
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := r.sendGroup(addr, groups[addr])
			if err != nil {
				resp, err = r.healGroup(addr, groups[addr], err)
			}
			resps[i], errs[i] = resp, err
		}()
	}
	wg.Wait()
	for i := range addrs {
		if errs[i] != nil {
			return out, errs[i]
		}
		out.Applied += resps[i].Applied
		out.Now, out.Version = resps[i].Now, resps[i].Version
	}
	if len(bcast) > 0 {
		for _, addr := range r.nodes() {
			cl, err := r.connect(addr)
			if err != nil {
				return out, err
			}
			resp, err := cl.UpdateBatch(bcast)
			if err != nil {
				return out, fmt.Errorf("cluster: replicated batch on %s: %w", addr, err)
			}
			out.Now, out.Version = resp.Now, resp.Version
		}
		out.Applied += len(bcast)
	}
	return out, nil
}

// routeColdLocked picks a destination for an op whose owner is unknown:
// inserts route by the encoded object's start position, everything else
// goes to the fallback node, whose gate will redirect or relay.
func (r *Router) routeColdLocked(op *wire.UpdateOp, fallback string) string {
	if op.Op == wire.OpInsert && len(op.Object) > 0 {
		if zm := r.zm.Load(); zm != nil {
			var probe struct {
				Class string `json:"class"`
			}
			if json.Unmarshal(op.Object, &probe) == nil && zm.IsReplicated(probe.Class) {
				// Newly inserted replicated objects are rare enough to
				// learn lazily: send to fallback, remember the class.
				r.repl[op.ID] = true
			}
		}
	}
	return fallback
}

// sendGroup delivers one single-owner group, following wrong_zone
// redirects (bounded) and splitting when a group turns out to be mixed.
func (r *Router) sendGroup(addr string, ops []wire.UpdateOp) (wire.UpdateBatchResp, error) {
	return r.sendGroupOpts(addr, ops, true)
}

// sendGroupOpts is sendGroup with the mixed-batch resplit budget made
// explicit: a regrouped subgroup must not trigger another cache refresh,
// or two stale routers could ping-pong indefinitely.
func (r *Router) sendGroupOpts(addr string, ops []wire.UpdateOp, canResplit bool) (wire.UpdateBatchResp, error) {
	var resp wire.UpdateBatchResp
	for hop := 0; hop < 4; hop++ {
		cl, err := r.connect(addr)
		if err != nil {
			return resp, err
		}
		resp, err = cl.UpdateBatch(ops)
		if err == nil {
			r.learn(ops, addr)
			return resp, nil
		}
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != wire.CodeWrongZone {
			return resp, err
		}
		if se.Addr == "" {
			// Mixed batch: no single owner to redirect to.
			if len(ops) == 1 {
				return resp, err
			}
			if len(se.Redirects) == len(ops) && canResplit {
				return r.regroupByRedirects(addr, ops, se.Redirects)
			}
			return r.splitGroup(addr, ops, canResplit)
		}
		addr = se.Addr
	}
	return resp, fmt.Errorf("cluster: redirect loop routing %d ops", len(ops))
}

// regroupByRedirects resends a refused batch along the per-op owners the
// gate answered with: ops the refusing node owns go straight back to it,
// the rest to the named owners.  One failed round trip buys an exact
// regrouping — no ownership sweep, no per-op probing.  Subgroups run with
// the resplit budget spent, so two mutually-stale nodes cannot ping-pong
// a batch between them forever.
func (r *Router) regroupByRedirects(addr string, ops []wire.UpdateOp, redirects []string) (wire.UpdateBatchResp, error) {
	groups := map[string][]wire.UpdateOp{}
	for i, op := range ops {
		a := redirects[i]
		if a == "" {
			a = addr
		}
		groups[a] = append(groups[a], op)
	}
	var out wire.UpdateBatchResp
	for _, a := range sortedKeys(groups) {
		one, err := r.sendGroupOpts(a, groups[a], false)
		if err != nil {
			one, err = r.healGroup(a, groups[a], err)
		}
		if err != nil {
			return out, err
		}
		out.Applied += one.Applied
		out.Now, out.Version = one.Now, one.Version
	}
	return out, nil
}

// splitGroup recovers a group the gate refused as mixed.  The cheap path
// refreshes the ownership cache (one coalesced listing sweep covers a
// whole barrier's worth of moved objects) and resends the regrouped
// subgroups; only if the refresh changes nothing does it fall back to
// routing each op on its own — singles always carry a redirect address
// or get relayed server-side.
func (r *Router) splitGroup(addr string, ops []wire.UpdateOp, canResplit bool) (wire.UpdateBatchResp, error) {
	if canResplit && r.refreshOwners() == nil {
		groups := map[string][]wire.UpdateOp{}
		r.mu.Lock()
		for _, op := range ops {
			a, ok := r.owner[op.ID]
			if !ok || a == "" {
				a = r.routeColdLocked(&op, addr)
			}
			groups[a] = append(groups[a], op)
		}
		r.mu.Unlock()
		if len(groups) > 1 || groups[addr] == nil {
			var out wire.UpdateBatchResp
			for _, a := range sortedKeys(groups) {
				one, err := r.sendGroupOpts(a, groups[a], false)
				if err != nil {
					one, err = r.healGroup(a, groups[a], err)
				}
				if err != nil {
					return out, err
				}
				out.Applied += one.Applied
				out.Now, out.Version = one.Now, one.Version
			}
			return out, nil
		}
		// The refresh reproduced the same single group: the cache cannot
		// explain the refusal, so isolate the offender op by op.
	}
	var out wire.UpdateBatchResp
	for _, op := range ops {
		one, err := r.sendGroupOpts(addr, []wire.UpdateOp{op}, false)
		if err != nil {
			// Singles get the same last-line recovery as top-level groups:
			// rebuild the possession map and retry once at the actual holder.
			one, err = r.healGroup(addr, []wire.UpdateOp{op}, err)
		}
		if err != nil {
			return out, err
		}
		out.Applied += one.Applied
		out.Now, out.Version = one.Now, one.Version
	}
	return out, nil
}

// refreshOwners rebuilds the ownership cache from the nodes, coalescing
// concurrent callers on a generation counter: whoever loses the race
// returns once the winner's sweep lands instead of sweeping again.
func (r *Router) refreshOwners() error {
	r.mu.Lock()
	gen := r.ownerGen
	r.mu.Unlock()
	r.refreshMu.Lock()
	defer r.refreshMu.Unlock()
	r.mu.Lock()
	cur := r.ownerGen
	r.mu.Unlock()
	if cur != gen {
		return nil // refreshed while we waited for the lock
	}
	if err := r.seedOwners(); err != nil {
		return err
	}
	r.mu.Lock()
	r.ownerGen++
	r.mu.Unlock()
	return nil
}

// healGroup is the last line of routing recovery: a single op the cached
// owner refused or failed outright.  Redirects normally correct the
// cache, but a restarted node loses its tombstones — it can no longer
// point at where a departed object went, so it answers with the
// database's own unknown-object error even though the object lives
// elsewhere.  Rebuild the possession map from the nodes and retry once
// wherever the object actually is; if no node holds it, the original
// error stands (the object really is unknown).
func (r *Router) healGroup(addr string, ops []wire.UpdateOp, orig error) (wire.UpdateBatchResp, error) {
	var se *client.ServerError
	if len(ops) != 1 || !errors.As(orig, &se) {
		return wire.UpdateBatchResp{}, orig
	}
	r.mu.Lock()
	delete(r.owner, ops[0].ID)
	r.mu.Unlock()
	if err := r.seedOwners(); err != nil {
		return wire.UpdateBatchResp{}, orig
	}
	r.mu.Lock()
	next := r.owner[ops[0].ID]
	r.mu.Unlock()
	if next == "" || next == addr {
		return wire.UpdateBatchResp{}, orig
	}
	return r.sendGroup(next, ops)
}

// learn records a confirmed owner for every op in a delivered group.
func (r *Router) learn(ops []wire.UpdateOp, addr string) {
	r.mu.Lock()
	for _, op := range ops {
		if !r.repl[op.ID] {
			r.owner[op.ID] = addr
		}
	}
	r.mu.Unlock()
}

// SetMotion routes a single motion update.
func (r *Router) SetMotion(id string, vx, vy float64) error {
	_, err := r.UpdateBatch([]wire.UpdateOp{{Op: wire.OpSetMotion, ID: id, VX: vx, VY: vy}})
	return err
}

// ---- clock ----

// Advance moves every node's clock by d in lockstep, then runs the
// rebalance barrier: one zero-tick advance per node, which triggers the
// full handoff scan now that every clock agrees.  Handoffs triggered by
// the barrier complete before the barrier's response (the server runs the
// scan before acknowledging), so when Advance returns the cluster is
// quiesced: every object sits on its owner, no transfer in flight.
func (r *Router) Advance(d temporal.Tick) (temporal.Tick, error) {
	// Each round (the clock move, then the barrier) hits every node
	// concurrently; the rounds themselves stay sequential so the barrier
	// scan always runs on agreeing clocks.
	addrs := r.nodes()
	ticks := make([]temporal.Tick, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		i, addr := i, addr
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := r.connect(addr)
			if err != nil {
				errs[i] = err
				return
			}
			got, err := cl.Advance(d)
			if err != nil {
				errs[i] = fmt.Errorf("cluster: advance on %s: %w", addr, err)
				return
			}
			ticks[i] = got
		}()
	}
	wg.Wait()
	var now temporal.Tick
	for i := range addrs {
		if errs[i] != nil {
			return 0, errs[i]
		}
		if i == 0 {
			now = ticks[i]
		} else if ticks[i] != now {
			return 0, fmt.Errorf("cluster: clocks diverged: %s at %d, want %d", addrs[i], ticks[i], now)
		}
	}
	if d != 0 {
		if _, err := r.Advance(0); err != nil {
			return 0, err
		}
	}
	return now, nil
}

// ---- queries ----

// Query scatters src to every node and merges the per-zone answers by
// canonical-row union.  Partitioned-class rows come from exactly one node
// (each object has one owner at a quiesced barrier) and replicated-class
// rows identically from all, so deduplicating by canonical row key
// reconstructs precisely the single-database answer.  Rows come back
// sorted by that key, making the merge deterministic.
func (r *Router) Query(src string, horizon temporal.Tick) (temporal.Tick, [][]wire.Value, error) {
	addrs := r.nodes()
	ticks := make([]temporal.Tick, len(addrs))
	rowsPer := make([][][]wire.Value, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		i, addr := i, addr
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := r.connect(addr)
			if err != nil {
				errs[i] = err
				return
			}
			got, rows, err := cl.Query(src, horizon)
			if err != nil {
				errs[i] = fmt.Errorf("cluster: query on %s: %w", addr, err)
				return
			}
			ticks[i], rowsPer[i] = got, rows
		}()
	}
	wg.Wait()
	var now temporal.Tick
	merged := map[string][]wire.Value{}
	for i := range addrs {
		if errs[i] != nil {
			return 0, nil, errs[i]
		}
		if i == 0 {
			now = ticks[i]
		} else if ticks[i] != now {
			return 0, nil, fmt.Errorf("cluster: query clocks diverged: %s at %d, want %d", addrs[i], ticks[i], now)
		}
		for _, row := range rowsPer[i] {
			merged[rowKey(row)] = row
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]wire.Value, len(keys))
	for i, k := range keys {
		out[i] = merged[k]
	}
	return now, out, nil
}

// rowKey is the canonical form of one presented row.
func rowKey(row []wire.Value) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	return b.String()
}

// ---- subscriptions ----

// MergedSub is a continuous query followed across the whole cluster: the
// same template registered on every node, presented as one stream whose
// answer is the canonical union of the per-node answers.  When an object
// hands off mid-subscription, its rows leave one node's answer and enter
// another's; the union is briefly recomputed and the merged stream
// converges to exactly the single-database answer — the subscription
// follows the object.
type MergedSub struct {
	subs  []*client.Subscription
	addrs []string

	mu      sync.Mutex
	answer  []wire.AnswerRow
	canon   string
	seq     uint64
	err     error
	updates chan struct{}
	done    chan struct{}
	once    sync.Once
}

// Subscribe registers src on every node and returns the merged stream.
func (r *Router) Subscribe(src string, horizon temporal.Tick) (*MergedSub, error) {
	m := &MergedSub{
		updates: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	for _, addr := range r.nodes() {
		cl, err := r.connect(addr)
		if err != nil {
			m.Close()
			return nil, err
		}
		sub, err := cl.Subscribe(src, horizon)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("cluster: subscribe on %s: %w", addr, err)
		}
		m.subs = append(m.subs, sub)
		m.addrs = append(m.addrs, addr)
	}
	m.recompute()
	for i := range m.subs {
		go m.watch(i)
	}
	return m, nil
}

// watch folds one node's notifications into the merged answer.
func (m *MergedSub) watch(i int) {
	sub := m.subs[i]
	for {
		select {
		case <-m.done:
			return
		case <-sub.Done():
			m.fail(fmt.Errorf("cluster: subscription on %s failed: %w", m.addrs[i], sub.Err()))
			return
		case <-sub.Updates():
			m.recompute()
		}
	}
}

// recompute rebuilds the union of the per-node answers; a change bumps
// the merged sequence number and signals Updates.
func (m *MergedSub) recompute() {
	merged := map[string]wire.AnswerRow{}
	for _, sub := range m.subs {
		ans, _, err := sub.Answer()
		if err != nil {
			continue // the watcher surfaces the failure
		}
		for _, row := range ans {
			merged[wire.CanonicalAnswers([]wire.AnswerRow{row})] = row
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]wire.AnswerRow, len(keys))
	for i, k := range keys {
		rows[i] = merged[k]
	}
	canon := wire.CanonicalAnswers(rows)
	m.mu.Lock()
	if canon != m.canon {
		m.canon = canon
		m.answer = rows
		m.seq++
		select {
		case m.updates <- struct{}{}:
		default:
		}
	}
	m.mu.Unlock()
}

func (m *MergedSub) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.once.Do(func() { close(m.done) })
}

// Answer returns the current merged answer and its sequence number.
func (m *MergedSub) Answer() ([]wire.AnswerRow, uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]wire.AnswerRow(nil), m.answer...), m.seq, m.err
}

// Updates signals (coalesced) that the merged answer changed.
func (m *MergedSub) Updates() <-chan struct{} { return m.updates }

// Done closes when the merged stream fails.
func (m *MergedSub) Done() <-chan struct{} { return m.done }

// Err returns the failure that closed the stream, if any.
func (m *MergedSub) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Close cancels every per-node subscription.
func (m *MergedSub) Close() {
	m.once.Do(func() { close(m.done) })
	for _, sub := range m.subs {
		sub.Close()
	}
}

// ---- small helpers ----

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
