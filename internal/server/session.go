package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/wire"
)

var (
	errSessionClosed = errors.New("server: session closed")
	errSlowConsumer  = errors.New("server: slow consumer")
)

// session is one connection's server-side state: a reader goroutine
// dispatching pipelined requests in order, a writer goroutine owning the
// socket, and one pump goroutine per live subscription.
//
// The ingest hot path is allocation-free in steady state: the decoder
// reuses one payload buffer per session (Decoder.NextReuse), update
// batches decode into a reused request struct with object IDs resolved
// through a per-session string interner, responses encode into pooled
// buffers (wire.EncodePooled) that the writer recycles after the socket
// write, and the writer serializes frames into one reusable buffer
// instead of allocating per frame.
type session struct {
	srv  *Server
	conn net.Conn

	// proto is the session's negotiated protocol version: ProtocolV1 until
	// a Hello negotiates higher.  Read by the reader, writer, and pumps.
	proto atomic.Uint32

	out        chan wire.Frame // all outbound frames
	dead       chan struct{}   // closed by kill: stop everything now
	flushc     chan struct{}   // closed by the reader on exit: flush and close
	writerDone chan struct{}

	killOnce sync.Once
	draining sync.Once

	// Reader-goroutine-only decode scratch (no locking needed): the reused
	// update-batch request and the session's string interner.
	reqUB  wire.UpdateBatchReq
	intern wire.Interner

	// Reader-goroutine-only per-request state: when the request entered
	// handling (deadline accounting), how many leading batch ops a retry of
	// a crashed request must skip (recovery roll-forward), and the error
	// code of the response being produced ("" for plain errors/successes;
	// any typed code means the request was refused without executing, so
	// its dedup reservation must be forgotten rather than replayed).
	reqStart    time.Time
	rollForward int
	lastCode    string

	// Reader-goroutine-only cluster state: peer marks a session that
	// identified as another node (HelloReq.Peer — gets the raised decoder
	// bound); inForward/forwardOrigin are set while executing a relayed
	// batch on behalf of the origin client (the batch may not be relayed
	// again — one hop only); touched/scanAll accumulate what the request
	// mutated so the post-dispatch handoff scan knows where to look.
	peer          bool
	inForward     bool
	forwardOrigin string
	touched       []string
	scanAll       bool

	// Writer-goroutine-only frame serialization buffer.
	wbuf []byte

	mu         sync.Mutex
	clientID   string
	dedup      *dedupCache
	subs       map[uint64]*serverSub
	subsClosed bool
}

func newSession(srv *Server, conn net.Conn) *session {
	s := &session{
		srv:        srv,
		conn:       conn,
		out:        make(chan wire.Frame, srv.cfg.OutQueue),
		dead:       make(chan struct{}),
		flushc:     make(chan struct{}),
		writerDone: make(chan struct{}),
		subs:       map[uint64]*serverSub{},
		intern:     wire.Interner{},
	}
	s.proto.Store(wire.ProtocolV1)
	return s
}

// run is the session main loop; it returns when the connection is done.
//
// The decoder is pinned to the session's protocol version at every frame:
// before negotiation only version-1 frames are legal (Hello is always
// spoken at v1), afterwards only the negotiated version — a frame carrying
// any other version is a protocol violation that disconnects the session
// after a best-effort error push.
func (s *session) run() {
	go s.writeLoop()
	dec := wire.NewDecoder(bufio.NewReaderSize(s.conn, 64<<10), s.srv.cfg.MaxPayload)
	peerRaised := false
	for {
		if s.peer && !peerRaised && s.srv.cfg.PeerMaxPayload > 0 {
			// The session identified as a cluster peer in its Hello: raise
			// the frame bound so bulk handoff transfers fit.  Ordinary
			// connections keep the hostile-input cap.
			dec.SetMax(s.srv.cfg.PeerMaxPayload)
			peerRaised = true
		}
		dec.SetVersion(uint8(s.proto.Load()))
		f, err := dec.NextReuse()
		if err != nil {
			// EOF, the drain deadline, a kill, or a protocol violation: in
			// every case the session winds down.  Protocol violations get a
			// best-effort error frame first.
			if errors.Is(err, wire.ErrBadFrame) || errors.Is(err, wire.ErrFrameTooLarge) {
				s.srv.m.protocolViolations.Inc()
				s.tryEnqueue(s.enc(wire.OpError, 0, &wire.ErrorResp{Msg: err.Error()}))
			}
			break
		}
		s.srv.m.framesIn.Inc()
		s.handle(f)
	}
	s.closeSubs("")
	close(s.flushc)
	<-s.writerDone
}

// beginDrain stops the reader after its current request: subsequent reads
// fail immediately, the reader exits, and the writer flushes the queue
// before closing.  Responses already computed still reach the client.
func (s *session) beginDrain() {
	s.draining.Do(func() {
		s.conn.SetReadDeadline(time.Now())
	})
}

// kill tears the session down without flushing.
func (s *session) kill(reason string) {
	s.killOnce.Do(func() {
		_ = reason
		close(s.dead)
		s.conn.Close()
	})
}

// slowConsumer records and disconnects a session that cannot keep up.
func (s *session) slowConsumer() {
	s.srv.m.slowConsumers.Inc()
	s.kill("slow consumer")
}

// writeLoop owns conn writes.  Every write carries the WriteBudget
// deadline, so a stalled peer cannot hold the goroutine hostage.
func (s *session) writeLoop() {
	defer close(s.writerDone)
	for {
		select {
		case f := <-s.out:
			if !s.write(f) {
				return
			}
		case <-s.dead:
			return
		case <-s.flushc:
			// Reader exited: flush what is queued, then close.
			for {
				select {
				case f := <-s.out:
					if !s.write(f) {
						return
					}
				case <-s.dead:
					return
				default:
					s.conn.Close()
					return
				}
			}
		}
	}
}

// write serializes one frame into the session's reusable buffer, writes it
// in one syscall, and recycles pool-backed payloads.
func (s *session) write(f wire.Frame) bool {
	buf, err := wire.AppendFrame(s.wbuf[:0], f)
	if err != nil {
		// Frames are produced by our own encoders; an unframeable one is a bug.
		panic(err)
	}
	s.wbuf = buf[:0]
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteBudget))
	_, werr := s.conn.Write(buf)
	wire.Recycle(f)
	if werr != nil {
		var ne net.Error
		if errors.As(werr, &ne) && ne.Timeout() {
			s.slowConsumer()
		} else {
			s.kill(werr.Error())
		}
		return false
	}
	s.srv.m.framesOut.Inc()
	return true
}

// enqueue queues an outbound frame, waiting at most WriteBudget; a full
// queue past the budget marks the session a slow consumer.
func (s *session) enqueue(f wire.Frame) error {
	select {
	case s.out <- f:
		return nil
	case <-s.dead:
		return errSessionClosed
	default:
	}
	t := time.NewTimer(s.srv.cfg.WriteBudget)
	defer t.Stop()
	select {
	case s.out <- f:
		return nil
	case <-s.dead:
		return errSessionClosed
	case <-t.C:
		s.slowConsumer()
		return errSlowConsumer
	}
}

// tryEnqueue queues a frame only if there is room right now.
func (s *session) tryEnqueue(f wire.Frame) {
	select {
	case s.out <- f:
	default:
	}
}

// ---- request dispatch ----

// enc encodes a response or push payload at the session's negotiated
// protocol version, drawing v2 payload buffers from the encode pool (the
// writer recycles them after the socket write).
func (s *session) enc(op wire.Opcode, id uint64, payload any) wire.Frame {
	f, err := wire.EncodePooled(uint8(s.proto.Load()), op, id, payload)
	if err != nil {
		// Payloads are our own types; failure to marshal them is a bug.
		panic(err)
	}
	return f
}

func (s *session) errFrame(id uint64, err error) wire.Frame {
	return s.enc(wire.OpError, id, &wire.ErrorResp{Msg: err.Error()})
}

// handle executes one request and enqueues its response, recording the
// per-opcode latency and the in-flight gauge.  Admission control runs
// first: past MaxInflight the request is shed with a typed, retryable
// error before it touches the idempotence cache or the database — Hello
// and Ping always pass, so a client can still handshake under load.
func (s *session) handle(f wire.Frame) {
	m := s.srv.m
	if s.srv.admit != nil && f.Op != wire.OpHello && f.Op != wire.OpPing {
		select {
		case s.srv.admit <- struct{}{}:
			defer func() { <-s.srv.admit }()
		default:
			m.shedRequests.Inc()
			_ = s.enqueue(s.enc(wire.OpError, f.ID,
				&wire.ErrorResp{Msg: "server overloaded, retry later", Code: wire.CodeOverloaded}))
			return
		}
	}
	s.reqStart = time.Now()
	m.inflight.Add(1)
	t0 := m.reg.Start()
	s.touched = s.touched[:0]
	s.scanAll = false
	resp := s.dispatch(f)
	if hooks := s.srv.cfg.Cluster; hooks != nil && (s.scanAll || len(s.touched) > 0) {
		// Handoff scan: runs after the commit lock is released (no lock is
		// held across the peer network calls) but before the response is
		// enqueued, so when a caller's request returns, every zone exit it
		// caused has already been transferred — a quiesced cluster has no
		// handoffs in flight.
		if s.scanAll {
			hooks.AfterCommit(nil)
		} else {
			hooks.AfterCommit(s.touched)
		}
	}
	m.opHist(f.Op).Since(t0)
	m.inflight.Add(-1)
	if resp.Op == wire.OpError {
		m.errors.Inc()
	}
	_ = s.enqueue(resp)
}

// deadlineExpired reports whether a request's per-attempt budget ran out
// before its handler could start real work (e.g. while blocked behind a
// checkpoint's commit lock).
func (s *session) deadlineExpired(ms int64) bool {
	return ms > 0 && time.Since(s.reqStart) > time.Duration(ms)*time.Millisecond
}

// deadlineFrame is the typed refusal for an expired budget.
func (s *session) deadlineFrame(id uint64) wire.Frame {
	s.lastCode = wire.CodeDeadlineExceeded
	return s.enc(wire.OpError, id,
		&wire.ErrorResp{Msg: "deadline expired before execution", Code: wire.CodeDeadlineExceeded})
}

// reqClientID is the identity mutations execute under: the session's
// Hello-bound client, or — while executing a relayed batch — the origin
// client the owning node acts on behalf of, so idempotence and provenance
// stay keyed to the real author cluster-wide.
func (s *session) reqClientID() string {
	if s.inForward {
		return s.forwardOrigin
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clientID
}

// dispatch routes one request.  Mutating opcodes pass through the client's
// idempotence cache when a Hello established one, and through the durable
// commit protocol on a durable server.
func (s *session) dispatch(f wire.Frame) wire.Frame {
	switch f.Op {
	case wire.OpUpdateBatch, wire.OpAdvance, wire.OpSnapshotLoad, wire.OpHandoff:
		clientID := s.reqClientID()
		cache := s.srv.dedupFor(clientID)
		if s.srv.durable {
			return s.dispatchDurable(f, clientID, cache)
		}
		if cache == nil {
			return s.execute(f)
		}
		e, replay := cache.begin(f.ID)
		if replay {
			s.srv.m.dedupHits.Inc()
			<-e.done
			return s.transcode(e.frame, f.Op)
		}
		s.lastCode = ""
		resp := s.execute(f)
		if s.lastCode != "" {
			// Refused without executing (deadline expired, wrong zone,
			// mid-handoff): forget the reservation so a retry runs afresh
			// instead of replaying the refusal.
			cache.remove(f.ID)
		}
		// The cache owns a detached copy: the enqueued original may be
		// pool-backed and is recycled by the writer after the socket write.
		e.finish(resp.Detach())
		return resp
	default:
		return s.execute(f)
	}
}

// dispatchDurable is the mutating path on a durable server: execute and
// append the receipt note under the commit lock (shared — exclusive for
// SnapshotLoad, which rebases the WAL), so a checkpoint can never separate
// a request's WAL records from its receipt.  The cache and the WAL both
// store the version-1 encoding of the response; transcode re-frames
// replays for whatever version the retrying connection negotiated.
func (s *session) dispatchDurable(f wire.Frame, clientID string, cache *dedupCache) wire.Frame {
	var e *dedupEntry
	if cache != nil {
		var replay bool
		e, replay = cache.begin(f.ID)
		if replay {
			s.srv.m.dedupHits.Inc()
			<-e.done
			return s.transcode(e.frame, f.Op)
		}
	}
	exclusive := f.Op == wire.OpSnapshotLoad
	if exclusive {
		s.srv.commitMu.Lock()
	} else {
		s.srv.commitMu.RLock()
	}
	if skip, ok := s.srv.takePartial(clientID, f.ID); ok {
		// This request crashed mid-flight in a previous server life and
		// operations 0..skip were already applied (recovered from the WAL's
		// provenance stamps): roll the retry forward past them.
		s.rollForward = skip + 1
	}
	s.lastCode = ""
	resp := s.execute(f)
	s.rollForward = 0
	var v1 wire.Frame
	if e != nil {
		v1 = s.transcodeTo(wire.ProtocolV1, resp, f.Op).Detach()
		if s.lastCode != "" {
			cache.remove(f.ID)
		} else {
			s.srv.logReceipt(clientID, f.ID, v1)
		}
	}
	if exclusive {
		s.srv.commitMu.Unlock()
	} else {
		s.srv.commitMu.RUnlock()
	}
	if e != nil {
		e.finish(v1)
	}
	s.srv.afterMutation()
	return resp
}

// transcode re-frames a cached response at this session's negotiated
// protocol version.  The dedup cache stores responses as encoded for the
// session that executed them; a retry arriving on a reconnect that
// negotiated a different version must still receive a frame its pinned
// decoder accepts (PROTOCOL.md §5: replay encoding follows the retrying
// connection).  reqOp selects the payload type of an OpResult frame.
func (s *session) transcode(f wire.Frame, reqOp wire.Opcode) wire.Frame {
	return s.transcodeTo(uint8(s.proto.Load()), f, reqOp)
}

// transcodeTo re-frames f at protocol version v (see transcode; the
// durable commit path also uses it to pin cached responses to version 1
// regardless of the executing session's negotiated version).
func (s *session) transcodeTo(v uint8, f wire.Frame, reqOp wire.Opcode) wire.Frame {
	if f.Version == v || (f.Version == 0 && v == wire.ProtocolV1) {
		return f
	}
	var payload any
	switch {
	case f.Op == wire.OpError:
		payload = &wire.ErrorResp{}
	case reqOp == wire.OpUpdateBatch:
		payload = &wire.UpdateBatchResp{}
	case reqOp == wire.OpAdvance:
		payload = &wire.AdvanceResp{}
	case reqOp == wire.OpSnapshotLoad:
		payload = &wire.SnapshotLoadResp{}
	case reqOp == wire.OpHandoff:
		payload = &wire.HandoffResp{}
	default:
		return f
	}
	if err := wire.Unmarshal(f, payload); err != nil {
		return s.errFrame(f.ID, err)
	}
	out, err := wire.EncodeFrame(v, f.Op, f.ID, payload)
	if err != nil {
		// Re-encoding our own payload types cannot fail.
		panic(err)
	}
	return out
}

func (s *session) execute(f wire.Frame) wire.Frame {
	switch f.Op {
	case wire.OpHello:
		return s.handleHello(f)
	case wire.OpPing:
		return s.enc(wire.OpResult, f.ID, nil)
	case wire.OpQuery:
		return s.handleQuery(f)
	case wire.OpUpdateBatch:
		return s.handleUpdateBatch(f)
	case wire.OpAdvance:
		return s.handleAdvance(f)
	case wire.OpObjects:
		return s.handleObjects(f)
	case wire.OpSnapshotSave:
		return s.handleSnapshotSave(f)
	case wire.OpSnapshotLoad:
		return s.handleSnapshotLoad(f)
	case wire.OpSubscribe:
		return s.handleSubscribe(f)
	case wire.OpUnsubscribe:
		return s.handleUnsubscribe(f)
	case wire.OpZoneMap:
		return s.handleZoneMap(f)
	case wire.OpHandoff:
		return s.handleHandoff(f)
	case wire.OpForward:
		return s.handleForward(f)
	default:
		return s.errFrame(f.ID, fmt.Errorf("server: %s is not a request opcode", f.Op))
	}
}

// handleHello binds the client identity and negotiates the session
// protocol version.  The response is always encoded at version 1 — the
// client only switches encodings after reading it — and the session's
// version changes just before the response is enqueued, so the next frame
// the reader decodes is already held to the negotiated version.
func (s *session) handleHello(f wire.Frame) wire.Frame {
	var req wire.HelloReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return s.errFrame(f.ID, err)
	}
	resumed, zombie, ok := s.srv.fenceEpoch(req.ClientID, req.Epoch, s)
	if !ok {
		resp, err := wire.EncodeFrame(wire.ProtocolV1, wire.OpError, f.ID, &wire.ErrorResp{
			Msg:  fmt.Sprintf("epoch %d superseded by a newer session of %q", req.Epoch, req.ClientID),
			Code: wire.CodeStaleEpoch,
		})
		if err != nil {
			panic(err)
		}
		return resp
	}
	if zombie != nil && zombie != s {
		// A newer epoch of the same client fences its predecessor: the old
		// connection (possibly a half-dead socket the client abandoned) is
		// killed so it cannot interleave stale writes.
		zombie.kill("superseded by newer epoch")
	}
	s.mu.Lock()
	s.clientID = req.ClientID
	s.dedup = s.srv.dedupFor(req.ClientID)
	s.mu.Unlock()
	s.peer = req.Peer
	v := wire.NegotiateVersion(req.MaxVersion, s.srv.cfg.MaxProtocol)
	resp, err := wire.EncodeFrame(wire.ProtocolV1, wire.OpResult, f.ID,
		&wire.HelloResp{Server: s.srv.cfg.Name, Version: int(v), Resumed: resumed})
	if err != nil {
		panic(err)
	}
	s.proto.Store(uint32(v))
	return resp
}

func (s *session) handleQuery(f wire.Frame) wire.Frame {
	var req wire.QueryReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return s.errFrame(f.ID, err)
	}
	if s.deadlineExpired(req.DeadlineMS) {
		return s.deadlineFrame(f.ID)
	}
	st := s.srv.state()
	opts := s.srv.cfg.BaseOptions
	if req.Horizon > 0 {
		opts.Horizon = req.Horizon
	}
	rows, err := st.eng.Query(req.Src, opts)
	if err != nil {
		return s.errFrame(f.ID, err)
	}
	evRows := make([][]eval.Val, len(rows))
	for i, r := range rows {
		evRows[i] = r
	}
	return s.enc(wire.OpResult, f.ID, &wire.QueryResp{Now: st.db.Now(), Rows: wire.FromRows(evRows)})
}

// handleUpdateBatch is the ingest hot path.  The request decodes into the
// session's reused struct (slice capacity and interned object IDs carry
// over between batches), is applied op by op, and the small fixed-size
// acknowledgement encodes into a pooled buffer — zero steady-state
// allocations end to end on the v2 decode path (TestIngestZeroAlloc).
func (s *session) handleUpdateBatch(f wire.Frame) wire.Frame {
	req := &s.reqUB
	// Zero the recycled op slots before decoding into them: v1 JSON omits
	// zero-valued fields (omitempty), so a stale element would otherwise
	// leak the previous batch's values into ops that legitimately carry
	// zeros (e.g. a stop — SetMotion with a zero vector).  DeadlineMS is
	// omitempty too: without the reset, one deadline-bearing request would
	// impose its budget on every later batch on the session.
	clear(req.Ops[:cap(req.Ops)])
	req.Ops = req.Ops[:0]
	req.DeadlineMS = 0
	if err := wire.UnmarshalInterned(f, req, s.intern); err != nil {
		return s.errFrame(f.ID, err)
	}
	if s.deadlineExpired(req.DeadlineMS) {
		return s.deadlineFrame(f.ID)
	}
	st := s.srv.state()
	hooks := s.srv.cfg.Cluster
	if hooks != nil {
		if rf, done := s.gateBatch(f, req, hooks); done {
			return rf
		}
	}
	// On a durable server with an identified client, each op is stamped
	// with provenance so a crash mid-batch is recoverable exactly-once; the
	// plain path stays allocation-free.  skip > 0 replays a recovered
	// partial batch: the first skip ops are already in the database.
	durable := s.srv.durable
	clientID := s.reqClientID()
	skip := s.rollForward
	t0 := s.srv.m.reg.Start()
	applied := 0
	var failure error
	for i := range req.Ops {
		if i < skip {
			applied++
			continue
		}
		var p *most.Prov
		if durable && clientID != "" {
			p = &most.Prov{Client: clientID, Req: f.ID, Op: i}
		}
		if err := applyOp(st, &req.Ops[i], p); err != nil {
			failure = fmt.Errorf("op %d (%s %s): %w", applied, req.Ops[i].Op, req.Ops[i].ID, err)
			break
		}
		if hooks != nil && req.Ops[i].ID != "" {
			s.touched = append(s.touched, req.Ops[i].ID)
		}
		applied++
	}
	s.srv.m.applyNs.Since(t0)
	if failure != nil {
		return s.errFrame(f.ID, failure)
	}
	resp := wire.UpdateBatchResp{Applied: applied, Now: st.db.Now(), Version: st.db.Version()}
	return s.enc(wire.OpResult, f.ID, &resp)
}

// applyOp applies one explicit update.  Continuous-query maintenance runs
// synchronously inside the database call (the engine subscribes to
// updates), so when the batch response goes out every registered query
// already reflects it.
func applyOp(st *state, op *wire.UpdateOp, p *most.Prov) error {
	switch op.Op {
	case wire.OpSetMotion:
		return st.db.SetMotionProv(most.ObjectID(op.ID), geom.Vector{X: op.VX, Y: op.VY}, p)
	case wire.OpSetStatic:
		if op.Value == nil {
			return errors.New("set_static without value")
		}
		v, err := mostValue(*op.Value)
		if err != nil {
			return err
		}
		return st.db.SetStaticProv(most.ObjectID(op.ID), op.Attr, v, p)
	case wire.OpDelete:
		return st.db.DeleteProv(most.ObjectID(op.ID), p)
	case wire.OpInsert:
		o, err := most.DecodeObjectJSON(st.db, op.Object)
		if err != nil {
			return err
		}
		return st.db.InsertProv(o, p)
	default:
		return fmt.Errorf("unknown update op %q", op.Op)
	}
}

func mostValue(v wire.Value) (most.Value, error) {
	ev := v.Val()
	switch ev.Kind {
	case eval.ValNum:
		return most.Float(ev.Num), nil
	case eval.ValStr:
		return most.Str(ev.Str), nil
	case eval.ValBool:
		return most.Bool(ev.Bool), nil
	case eval.ValNull:
		return most.Null(), nil
	default:
		return most.Value{}, fmt.Errorf("value kind %d has no static-attribute form", ev.Kind)
	}
}

func (s *session) handleAdvance(f wire.Frame) wire.Frame {
	var req wire.AdvanceReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return s.errFrame(f.ID, err)
	}
	if req.D < 0 {
		return s.errFrame(f.ID, errors.New("the clock cannot run backwards"))
	}
	if s.rollForward > 0 {
		// A recovered partial advance already moved the clock before the
		// crash; acknowledge with the current tick instead of advancing
		// twice.
		return s.enc(wire.OpResult, f.ID, &wire.AdvanceResp{Now: s.srv.state().db.Now()})
	}
	var p *most.Prov
	if s.srv.durable {
		if clientID := s.reqClientID(); clientID != "" {
			p = &most.Prov{Client: clientID, Req: f.ID}
		}
	}
	now := s.srv.state().db.AdvanceProv(req.D, p)
	if s.srv.cfg.Cluster != nil && req.D == 0 {
		// A zero-tick advance is the cluster's rebalance barrier: the router
		// sends one to every node once all clocks agree, and only then does
		// the full handoff scan run.  Scanning during a real advance would
		// evaluate zone ownership while nodes sit at different ticks — the
		// ownership function is not yet well defined and eager transfers can
		// ping-pong between neighbors until the clocks catch up.
		s.scanAll = true
	}
	return s.enc(wire.OpResult, f.ID, &wire.AdvanceResp{Now: now})
}

func (s *session) handleObjects(f wire.Frame) wire.Frame {
	var req wire.ObjectsReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return s.errFrame(f.ID, err)
	}
	st := s.srv.state()
	now := st.db.Now()
	objs := st.db.Objects(req.Class)
	resp := wire.ObjectsResp{Now: now, Objects: make([]wire.ObjectInfo, 0, len(objs))}
	for _, o := range objs {
		info := wire.ObjectInfo{ID: string(o.ID()), Class: o.Class().Name()}
		if p, err := o.PositionAt(now); err == nil {
			info.HasPos, info.X, info.Y = true, p.X, p.Y
		}
		resp.Objects = append(resp.Objects, info)
	}
	return s.enc(wire.OpResult, f.ID, &resp)
}

func (s *session) handleSnapshotSave(f wire.Frame) wire.Frame {
	data, err := s.srv.state().db.SnapshotJSON()
	if err != nil {
		return s.errFrame(f.ID, err)
	}
	return s.enc(wire.OpResult, f.ID, &wire.SnapshotResp{Data: data})
}

func (s *session) handleSnapshotLoad(f wire.Frame) wire.Frame {
	var req wire.SnapshotLoadReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return s.errFrame(f.ID, err)
	}
	db, err := most.LoadSnapshotJSON(req.Data)
	if err != nil {
		return s.errFrame(f.ID, err)
	}
	if s.srv.durable {
		// Wholesale replacement on a durable server rebases the WAL onto
		// the new database (a "reset" record plus a fresh base image), so
		// the log alone reconstructs the post-replacement state even over a
		// stale checkpoint snapshot.  dispatchDurable holds the commit lock
		// exclusively here, so no concurrent commit can interleave with the
		// rebase.
		old := s.srv.state().db
		w := old.DetachWAL()
		if err := db.RebaseWAL(w); err != nil {
			// Keep serving (and logging) the state we still have.
			old.AttachWALNoBase(w)
			return s.errFrame(f.ID, err)
		}
	}
	s.srv.swapState(db)
	return s.enc(wire.OpResult, f.ID, &wire.SnapshotLoadResp{Now: db.Now(), Objects: db.Count()})
}

// ---- cluster ----

// gateBatch enforces zone ownership on a cluster node before any op is
// applied (rejections are therefore always safe to retry elsewhere).  It
// returns (frame, true) when the batch was handled — relayed to the owner
// or refused — and (_, false) when every op is this node's to apply.
func (s *session) gateBatch(f wire.Frame, req *wire.UpdateBatchReq, hooks ClusterHooks) (wire.Frame, bool) {
	foreignAddr := ""
	foreign := 0
	for i := range req.Ops {
		addr, owned, frozen := hooks.RouteOp(&req.Ops[i])
		if frozen {
			// Mid-handoff: ownership is in flight.  Refuse with the one
			// retryable code — by the retry the transfer has resolved and
			// the op either applies here or redirects to the new owner.
			s.lastCode = wire.CodeOverloaded
			return s.enc(wire.OpError, f.ID, &wire.ErrorResp{
				Msg:  fmt.Sprintf("object %s is mid-handoff, retry", req.Ops[i].ID),
				Code: wire.CodeOverloaded,
			}), true
		}
		if owned {
			continue
		}
		foreign++
		if foreign == 1 {
			foreignAddr = addr
		} else if addr != foreignAddr {
			foreignAddr = "" // mixed destinations: cannot answer with one redirect
		}
	}
	if foreign == 0 {
		return wire.Frame{}, false
	}
	if foreign == len(req.Ops) && foreignAddr != "" && !s.inForward {
		// The whole batch belongs to one other node: relay it on behalf of
		// the origin client instead of bouncing it back.  A relayed batch
		// is never relayed again (one hop); if ownership moved meanwhile
		// the owner's redirect propagates to the client.
		return s.relayBatch(f, req, hooks, foreignAddr), true
	}
	s.lastCode = wire.CodeWrongZone
	var redirects []string
	if foreign < len(req.Ops) || foreignAddr == "" {
		// Mixed owned/foreign batch (or foreign ops spread over several
		// owners): a single redirect address would misroute part of the
		// batch.  Instead answer with per-op owners so the router can
		// regroup the whole batch in one step; Addr stays empty.
		foreignAddr = ""
		redirects = make([]string, len(req.Ops))
		for i := range req.Ops {
			if addr, owned, _ := hooks.RouteOp(&req.Ops[i]); !owned {
				redirects[i] = addr
			}
		}
	}
	return s.enc(wire.OpError, f.ID, &wire.ErrorResp{
		Msg:       "update addressed to a zone this node does not own",
		Code:      wire.CodeWrongZone,
		Addr:      foreignAddr,
		Redirects: redirects,
	}), true
}

// relayBatch forwards a whole client batch to the owning node.  The remote
// executes it under the origin's identity and request ID, so cluster-wide
// idempotence is preserved even when the client later retries the same
// request directly at the owner.
func (s *session) relayBatch(f wire.Frame, req *wire.UpdateBatchReq, hooks ClusterHooks, addr string) wire.Frame {
	resp, err := hooks.Relay(addr, &wire.ForwardReq{Origin: s.reqClientID(), ReqID: f.ID, Ops: req.Ops})
	if err != nil {
		var re *RelayError
		if errors.As(err, &re) {
			s.lastCode = re.Code
			return s.enc(wire.OpError, f.ID, &wire.ErrorResp{Msg: re.Msg, Code: re.Code, Addr: re.Addr})
		}
		// Transport failure: the owner may or may not have applied the
		// batch, but its receipt is keyed (origin, request ID), so telling
		// the client to retry is safe — a duplicate replays the receipt.
		s.lastCode = wire.CodeOverloaded
		return s.enc(wire.OpError, f.ID, &wire.ErrorResp{
			Msg:  fmt.Sprintf("relay to %s failed: %v", addr, err),
			Code: wire.CodeOverloaded,
		})
	}
	return s.enc(wire.OpResult, f.ID, resp)
}

func (s *session) handleZoneMap(f wire.Frame) wire.Frame {
	hooks := s.srv.cfg.Cluster
	if hooks == nil {
		return s.errFrame(f.ID, errors.New("server: not a cluster node"))
	}
	return s.enc(wire.OpResult, f.ID, hooks.ZoneMap())
}

// handleHandoff applies an incoming object transfer.  It sits in the
// mutating dispatch set, so on a durable node the response is receipted in
// the WAL: a sender retrying after the receiver crashed replays the
// receipt instead of re-applying (exactly-once across crash-during-
// handoff), and the version fence inside the hook covers retries that
// arrive under a fresh identity.
func (s *session) handleHandoff(f wire.Frame) wire.Frame {
	hooks := s.srv.cfg.Cluster
	if hooks == nil {
		return s.errFrame(f.ID, errors.New("server: not a cluster node"))
	}
	var req wire.HandoffReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return s.errFrame(f.ID, err)
	}
	if s.rollForward > 0 {
		// The apply committed before a crash (recovered from WAL
		// provenance); only the acknowledgement was lost.  Re-ack.
		return s.enc(wire.OpResult, f.ID, &wire.HandoffResp{Accepted: true, Now: s.srv.state().db.Now()})
	}
	var p *most.Prov
	if s.srv.durable {
		if id := s.reqClientID(); id != "" {
			p = &most.Prov{Client: id, Req: f.ID}
		}
	}
	resp, err := hooks.Handoff(&req, p)
	if err != nil {
		return s.errFrame(f.ID, err)
	}
	if resp.Accepted {
		// The arrival might itself sit outside this node's zones (a stale
		// copy bounced back after a crash): let the post-dispatch scan
		// re-check it and forward it onward if so.
		s.touched = append(s.touched, req.ID)
	}
	return s.enc(wire.OpResult, f.ID, resp)
}

// handleForward executes a relayed batch on behalf of the origin client:
// the inner UpdateBatch is re-dispatched under (Origin, ReqID), reusing
// the exact dedup, durability, and roll-forward machinery a direct request
// would hit.  One hop only — a forwarded batch that still isn't ours
// answers with a redirect, never another relay.
func (s *session) handleForward(f wire.Frame) wire.Frame {
	if s.srv.cfg.Cluster == nil {
		return s.errFrame(f.ID, errors.New("server: not a cluster node"))
	}
	var req wire.ForwardReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return s.errFrame(f.ID, err)
	}
	if s.inForward {
		return s.errFrame(f.ID, errors.New("server: forward loop"))
	}
	inner, err := wire.EncodeFrame(uint8(s.proto.Load()), wire.OpUpdateBatch, req.ReqID,
		&wire.UpdateBatchReq{Ops: req.Ops})
	if err != nil {
		panic(err)
	}
	s.inForward = true
	s.forwardOrigin = req.Origin
	resp := s.dispatch(inner)
	s.inForward = false
	s.forwardOrigin = ""
	// The response frame answers the Forward request, not the inner batch.
	resp.ID = f.ID
	return resp
}

// ---- subscriptions ----

// serverSub is one continuous-query subscription: the engine's maintenance
// callback deposits the newest answer in the mailbox (latest/seq) and sets
// the dirty flag; the pump converts and sends.  Rounds that arrive while
// the pump or connection is busy coalesce — the newest answer supersedes
// anything unsent.
type serverSub struct {
	id uint64
	cq *query.Continuous

	mu     sync.Mutex
	latest *eval.Relation
	seq    uint64

	dirty chan struct{} // capacity 1
	stop  chan struct{}

	// conv is the plan-wide conversion memo shared with every other
	// subscription on the same engine plan: an install is converted to
	// wire rows once per plan, not once per subscriber.
	conv *planConv
}

// planConv memoizes the wire-row conversion of one shared plan's installed
// relations.  The engine shares one maintained plan across subscriptions
// that canonicalize to the same planKey and installs each changed answer
// as a fresh relation object (no-change rounds keep the old object), so
// relation identity is a sound memo key: with N subscribers on one plan,
// each install is converted once and all pumps encode the same rows.
type planConv struct {
	refs int // guarded by Server.convMu

	mu   sync.Mutex
	rel  *eval.Relation
	rows []wire.AnswerRow
}

// rowsFor returns the wire rows of rel, converting only when rel is not
// the memoized relation.  The returned slice is shared across pumps and
// must be treated as immutable.
func (pc *planConv) rowsFor(rel *eval.Relation, m *metrics) []wire.AnswerRow {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.rel != rel {
		pc.rows = wire.AppendRelation(nil, rel)
		pc.rel = rel
		m.convMisses.Inc()
	} else {
		m.convHits.Inc()
	}
	return pc.rows
}

// acquireConv returns the refcounted conversion memo for a plan.
func (srv *Server) acquireConv(planID uint64) *planConv {
	srv.convMu.Lock()
	defer srv.convMu.Unlock()
	pc, ok := srv.convs[planID]
	if !ok {
		pc = &planConv{}
		srv.convs[planID] = pc
	}
	pc.refs++
	return pc
}

// releaseConv drops one reference; the last release frees the memo.
func (srv *Server) releaseConv(planID uint64) {
	srv.convMu.Lock()
	defer srv.convMu.Unlock()
	pc, ok := srv.convs[planID]
	if !ok {
		return
	}
	pc.refs--
	if pc.refs <= 0 {
		delete(srv.convs, planID)
	}
}

// onAnswer runs on the updater's commit path: store and signal, never
// block.
func (sub *serverSub) onAnswer(rel *eval.Relation) {
	sub.mu.Lock()
	sub.latest = rel
	sub.seq++
	sub.mu.Unlock()
	select {
	case sub.dirty <- struct{}{}:
	default:
	}
}

// pump streams mailbox contents to the session until the subscription or
// session ends.
func (s *session) pump(sub *serverSub) {
	var sent uint64
	for {
		select {
		case <-sub.stop:
			return
		case <-s.dead:
			return
		case <-sub.dirty:
			sub.mu.Lock()
			rel, seq := sub.latest, sub.seq
			sub.mu.Unlock()
			if seq == sent || rel == nil {
				continue
			}
			s.srv.m.notifies.Inc()
			if seq > sent+1 {
				s.srv.m.notifyCoalesced.Add(int64(seq - sent - 1))
			}
			rows := sub.conv.rowsFor(rel, s.srv.m)
			n := wire.Notify{SubID: sub.id, Seq: seq, Answer: rows}
			if err := s.enqueue(s.enc(wire.OpNotify, 0, &n)); err != nil {
				return
			}
			sent = seq
		}
	}
}

func (s *session) handleSubscribe(f wire.Frame) wire.Frame {
	var req wire.SubscribeReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return s.errFrame(f.ID, err)
	}
	st := s.srv.state()
	q, err := ftl.Parse(req.Src)
	if err != nil {
		return s.errFrame(f.ID, err)
	}
	opts := s.srv.cfg.BaseOptions
	if req.Horizon > 0 {
		opts.Horizon = req.Horizon
	}
	cq, err := st.eng.Continuous(q, opts)
	if err != nil {
		return s.errFrame(f.ID, err)
	}
	sub := &serverSub{
		id:    s.srv.nextSub.Add(1),
		cq:    cq,
		dirty: make(chan struct{}, 1),
		stop:  make(chan struct{}),
		conv:  s.srv.acquireConv(cq.PlanID()),
	}
	if err := cq.Subscribe(sub.onAnswer); err != nil {
		cq.Cancel()
		s.srv.releaseConv(cq.PlanID())
		return s.errFrame(f.ID, err)
	}
	s.mu.Lock()
	if s.subsClosed {
		s.mu.Unlock()
		cq.Cancel()
		s.srv.releaseConv(cq.PlanID())
		return s.errFrame(f.ID, errSessionClosed)
	}
	s.subs[sub.id] = sub
	s.mu.Unlock()
	s.srv.m.subscriptions.Add(1)
	go s.pump(sub)
	// The initial answer is read after the listener is live, so any update
	// racing the registration is covered either here or by a notify.
	rel, err := cq.Answer()
	if err != nil {
		s.removeSub(sub.id, "", false)
		return s.errFrame(f.ID, err)
	}
	return s.enc(wire.OpResult, f.ID, &wire.SubscribeResp{
		SubID: sub.id, Now: st.db.Now(), Answer: wire.FromRelation(rel),
	})
}

func (s *session) handleUnsubscribe(f wire.Frame) wire.Frame {
	var req wire.UnsubscribeReq
	if err := wire.Unmarshal(f, &req); err != nil {
		return s.errFrame(f.ID, err)
	}
	if !s.removeSub(req.SubID, "", false) {
		return s.errFrame(f.ID, fmt.Errorf("no subscription %d", req.SubID))
	}
	return s.enc(wire.OpResult, f.ID, nil)
}

// removeSub cancels one subscription; with push it also notifies the
// client via OpSubClosed.
func (s *session) removeSub(id uint64, reason string, push bool) bool {
	s.mu.Lock()
	sub, ok := s.subs[id]
	if ok {
		delete(s.subs, id)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	sub.cq.Cancel()
	s.srv.releaseConv(sub.cq.PlanID())
	close(sub.stop)
	s.srv.m.subscriptions.Add(-1)
	if push {
		s.tryEnqueue(s.enc(wire.OpSubClosed, 0, &wire.SubClosed{SubID: id, Reason: reason}))
	}
	return true
}

// closeSubs tears down every subscription; a non-empty reason is pushed to
// the client (used when the database is replaced under live sessions).
func (s *session) closeSubs(reason string) {
	s.mu.Lock()
	subs := make([]*serverSub, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.subs = map[uint64]*serverSub{}
	if reason == "" {
		// Terminal teardown: refuse new subscriptions from here on.
		s.subsClosed = true
	}
	s.mu.Unlock()
	for _, sub := range subs {
		sub.cq.Cancel()
		s.srv.releaseConv(sub.cq.PlanID())
		close(sub.stop)
		s.srv.m.subscriptions.Add(-1)
		if reason != "" {
			s.tryEnqueue(s.enc(wire.OpSubClosed, 0, &wire.SubClosed{SubID: sub.id, Reason: reason}))
		}
	}
}
