// mostbench regenerates every experiment table (E1..E14): the paper's
// quantitative claims, measured on this implementation.  See DESIGN.md for
// the experiment index and EXPERIMENTS.md for claim-versus-measured.
//
// Usage:
//
//	mostbench [-quick] [-only E3,E7] [-out dir] [-parallel] [-delta] [-faults] [-chaos] [-obs] [-server] [-city] [-cluster] [-http :6060]
//
// With -parallel it instead runs the parallel-evaluation benchmark
// (sequential vs worker-pool at 1k/10k/100k objects) and writes the
// machine-readable results to BENCH_parallel.json.  With -delta it runs
// the continuous-query maintenance benchmark (per-object delta patches vs
// full reevaluation per update) and writes BENCH_delta.json.  With -faults it runs
// the fault-tolerance sweep (loss × partition × crashes; legacy vs reliable
// delivery, staleness marking, WAL recovery) and writes BENCH_faults.json.
// With -chaos it runs the live chaos scenarios (internal/chaos: real
// durable server over TCP under kill/restart, partitions and churn) and
// records recovery-time and failover-latency percentiles under the
// "chaos" key of BENCH_faults.json, preserving any simulated sweep
// already in the file.
// With -obs it measures the observability instrumentation overhead on the
// parallel benchmark and writes BENCH_obs.json, including a full metrics
// snapshot from an instrumented three-query-type scenario.  With -server
// it benchmarks the TCP network service (concurrent pipelining clients
// committing update batches over loopback) and writes BENCH_server.json.
// With -city it runs the city-scale application benchmark (internal/city:
// a seeded road-network city served over loopback TCP to concurrent CQ
// subscribers, updaters and queriers) and writes the SLO report to
// BENCH_city.json.  With -cluster it replays the same city against a
// single node and a 3-node spatially partitioned cluster (internal/cluster:
// zone routing, object handoff, scatter-gather queries and merged CQs) and
// writes the throughput comparison to BENCH_cluster.json.
//
// -out dir redirects every BENCH_*.json to dir (default: the working
// directory); the absolute path of each written file is printed.
//
// -http addr serves the observability endpoints for the duration of the
// run: /obs (metrics + trace snapshot), /debug/vars (expvar), and
// /debug/pprof/* (net/http/pprof profiling).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/mostdb/most/internal/experiments"
	"github.com/mostdb/most/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so the mode smoke tests can
// drive every flag in-process.  It returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mostbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "shrink sweeps for a fast run")
	only := fs.String("only", "", "comma-separated experiment ids (e.g. E3,E7); empty runs all")
	outDir := fs.String("out", "", "directory for BENCH_*.json files (default: working directory)")
	parallel := fs.Bool("parallel", false, "benchmark parallel vs sequential evaluation and write BENCH_parallel.json")
	deltaBench := fs.Bool("delta", false, "benchmark delta maintenance vs full reevaluation and write BENCH_delta.json")
	faultsSweep := fs.Bool("faults", false, "run the fault-tolerance sweep and write BENCH_faults.json")
	chaosBench := fs.Bool("chaos", false, "run the live chaos scenarios and record recovery/failover latency under the chaos key of BENCH_faults.json")
	obsBench := fs.Bool("obs", false, "measure observability overhead and write BENCH_obs.json")
	serverBench := fs.Bool("server", false, "benchmark the TCP network service and write BENCH_server.json")
	cityBench := fs.Bool("city", false, "run the city-scale application benchmark and write BENCH_city.json")
	clusterBench := fs.Bool("cluster", false, "benchmark the spatially partitioned cluster vs a single node and write BENCH_cluster.json")
	cityGate := fs.String("gate", "", "with -city/-cluster: baseline report to gate against (fail if updates/sec drops below 75% of it)")
	httpAddr := fs.String("http", "", "serve /obs, /debug/vars and /debug/pprof on this address (e.g. :6060)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "mostbench: %v\n", err)
		return 1
	}
	// writeReport marshals a report into the output directory and prints
	// the absolute path, so a sweep's artifacts are always locatable.
	writeReport := func(name string, rep any) error {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		if abs, err := filepath.Abs(path); err == nil {
			path = abs
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
		return nil
	}

	if *httpAddr != "" {
		reg := obs.New()
		obs.Serve(*httpAddr, "mostbench", reg)
		experiments.Instrument(reg)
		fmt.Fprintf(stderr, "mostbench: observability endpoints on http://%s/obs and /debug/pprof/\n", *httpAddr)
	}

	switch {
	case *clusterBench:
		rep, err := experiments.ClusterBench(*quick)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, rep.Table().Render())
		if err := writeReport("BENCH_cluster.json", rep); err != nil {
			return fail(err)
		}
		if *cityGate != "" {
			if err := gateClusterThroughput(*cityGate, rep, stdout); err != nil {
				return fail(err)
			}
		}
		return 0

	case *cityBench:
		rep, err := experiments.CityBench(*quick)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, rep.Table().Render())
		if err := writeReport("BENCH_city.json", rep); err != nil {
			return fail(err)
		}
		if *cityGate != "" {
			if err := gateCityThroughput(*cityGate, rep, stdout); err != nil {
				return fail(err)
			}
		}
		return 0

	case *serverBench:
		rep := experiments.ServerBench(*quick)
		fmt.Fprintln(stdout, rep.Table().Render())
		if err := writeReport("BENCH_server.json", rep); err != nil {
			return fail(err)
		}
		return 0

	case *obsBench:
		rep := experiments.ObsBench(*quick)
		fmt.Fprintln(stdout, rep.Table().Render())
		if err := writeReport("BENCH_obs.json", rep); err != nil {
			return fail(err)
		}
		return 0

	case *faultsSweep || *chaosBench:
		// The two fault benchmarks share BENCH_faults.json: -faults owns
		// the simulated sweep, -chaos owns the live-injection "chaos" key.
		// Running one preserves the other's half of an existing file.
		rep := &experiments.FaultsReport{}
		if prior, err := os.ReadFile(filepath.Join(*outDir, "BENCH_faults.json")); err == nil {
			_ = json.Unmarshal(prior, rep)
		}
		if *faultsSweep {
			chaos := rep.Chaos
			rep = experiments.FaultsBench(*quick)
			rep.Chaos = chaos
			fmt.Fprintln(stdout, rep.Table().Render())
		}
		if *chaosBench {
			chaos, err := experiments.ChaosBench(*quick)
			if err != nil {
				return fail(fmt.Errorf("chaos scenario failed: %w", err))
			}
			rep.Chaos = chaos
			fmt.Fprintln(stdout, chaos.Table().Render())
		}
		if err := writeReport("BENCH_faults.json", rep); err != nil {
			return fail(err)
		}
		return 0

	case *deltaBench:
		rep := experiments.DeltaBench(*quick)
		fmt.Fprintln(stdout, rep.Table().Render())
		if err := writeReport("BENCH_delta.json", rep); err != nil {
			return fail(err)
		}
		return 0

	case *parallel:
		rep := experiments.ParallelBench(*quick)
		fmt.Fprintln(stdout, rep.Table().Render())
		if err := writeReport("BENCH_parallel.json", rep); err != nil {
			return fail(err)
		}
		return 0
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ran := 0
	for _, tbl := range experiments.Run(want, *quick) {
		fmt.Fprintln(stdout, tbl.Render())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(stderr, "mostbench: no experiment matches %q\n", *only)
		return 1
	}
	return 0
}

// gateClusterThroughput gates the cluster benchmark the same way the city
// gate works: aggregate cluster updates/sec must stay within 75% of the
// checked-in baseline, and partitioning must still be a win — a cluster
// run slower than its own single-node phase means routing or handoff
// overhead ate the parallelism.
func gateClusterThroughput(baselinePath string, rep *experiments.ClusterReport, stdout io.Writer) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("gate: read baseline: %w", err)
	}
	var base experiments.ClusterReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("gate: parse baseline %s: %w", baselinePath, err)
	}
	if base.UpdatesPerSec <= 0 {
		return fmt.Errorf("gate: baseline %s has no updates_per_sec", baselinePath)
	}
	if base.Quick != rep.Quick {
		return fmt.Errorf("gate: baseline quick=%v but run quick=%v — modes are not comparable", base.Quick, rep.Quick)
	}
	const floor = 0.75
	ratio := rep.UpdatesPerSec / base.UpdatesPerSec
	fmt.Fprintf(stdout, "gate: cluster %.0f updates/s vs baseline %.0f (%.2fx, floor %.2fx); speedup over single node %.2fx\n",
		rep.UpdatesPerSec, base.UpdatesPerSec, ratio, floor, rep.Speedup)
	if ratio < floor {
		return fmt.Errorf("gate: cluster throughput regressed to %.2fx of baseline (floor %.2fx)", ratio, floor)
	}
	if rep.Speedup < 1 {
		return fmt.Errorf("gate: cluster is %.2fx of single-node throughput — partitioning no longer pays for itself", rep.Speedup)
	}
	return nil
}

// gateCityThroughput compares the fresh city report's sustained update
// throughput against a checked-in baseline report and fails when it drops
// below 75% of the baseline — a CI tripwire for regressions on the
// continuous-query maintenance hot path.  A faster run quietly passes;
// refresh the baseline when the ceiling moves up for real.
func gateCityThroughput(baselinePath string, rep *experiments.CityReport, stdout io.Writer) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("gate: read baseline: %w", err)
	}
	var base experiments.CityReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("gate: parse baseline %s: %w", baselinePath, err)
	}
	if base.UpdatesPerSec <= 0 {
		return fmt.Errorf("gate: baseline %s has no updates_per_sec", baselinePath)
	}
	if base.Quick != rep.Quick {
		return fmt.Errorf("gate: baseline quick=%v but run quick=%v — modes are not comparable", base.Quick, rep.Quick)
	}
	const floor = 0.75
	ratio := rep.UpdatesPerSec / base.UpdatesPerSec
	fmt.Fprintf(stdout, "gate: %.0f updates/s vs baseline %.0f (%.2fx, floor %.2fx)\n",
		rep.UpdatesPerSec, base.UpdatesPerSec, ratio, floor)
	if ratio < floor {
		return fmt.Errorf("gate: throughput regressed to %.2fx of baseline (floor %.2fx)", ratio, floor)
	}
	return nil
}
