package ftl

import "testing"

// FuzzParse asserts the FTL parser never panics and that anything it
// accepts renders to a string that parses again to the same rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`RETRIEVE o FROM V o WHERE TRUE`,
		`RETRIEVE o, n FROM A o, B n WHERE DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))`,
		`RETRIEVE o WHERE [x <- SPEED(o.X.POSITION)] EVENTUALLY WITHIN 10 SPEED(o.X.POSITION) >= 2 * x`,
		`RETRIEVE o WHERE EVENTUALLY WITHIN 3 (INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P))`,
		`RETRIEVE o WHERE NOT OUTSIDE(o, P) OR o.PRICE != 'cheap'`,
		`RETRIEVE o WHERE time + 1 >= 2 IMPLIES NEXTTIME TRUE`,
		`RETRIEVE o WHERE WITHIN_SPHERE(2.5, a, b, c)`,
		`RETRIEVE`,
		`[`,
		`RETRIEVE o WHERE ((((TRUE))))`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Round-trip stability for accepted inputs.
		rendered := q.Where.String()
		again, err := ParseFormula(rendered)
		if err != nil {
			t.Fatalf("rendering %q of accepted input does not re-parse: %v", rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("unstable rendering: %q -> %q", rendered, again.String())
		}
	})
}
