package eval

import (
	"strings"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/temporal"
)

// runQuery evaluates src against the fixture and returns the relation or
// the error.
func (f *fixture) tryRun(src string) (*Relation, error) {
	q, err := ftl.Parse(src)
	if err != nil {
		return nil, err
	}
	for _, b := range q.Bindings {
		if _, ok := f.ctx.Domains[b.Var]; !ok {
			f.ctx.Domains[b.Var] = append([]Val{}, f.ctx.Domains["o"]...)
		}
	}
	return EvalQuery(q, f.ctx)
}

func TestArithmeticAndCalls(t *testing.T) {
	f := newFixture(t)
	f.ctx.Horizon = 20
	f.addCar(t, "v", 60, geom.Point{X: 0}, geom.Vector{X: 2})

	cases := []struct {
		src  string
		want bool // satisfied at tick 0
	}{
		{`RETRIEVE o FROM V o WHERE o.PRICE / 2 = 30`, true},
		{`RETRIEVE o FROM V o WHERE o.PRICE * 2 >= 120`, true},
		{`RETRIEVE o FROM V o WHERE -o.PRICE <= -60`, true},
		{`RETRIEVE o FROM V o WHERE ABS(0 - o.PRICE) = 60`, true},
		{`RETRIEVE o FROM V o WHERE MIN(o.PRICE, 10) = 10`, true},
		{`RETRIEVE o FROM V o WHERE MAX(o.PRICE, o.X.POSITION) >= 60`, true},
		{`RETRIEVE o FROM V o WHERE o.PRICE + 1 - 1 = o.PRICE`, true},
		{`RETRIEVE o FROM V o WHERE o.X.POSITION * o.X.POSITION >= 100`, false}, // x(0)=0
		{`RETRIEVE o FROM V o WHERE o.X.POSITION.value = 0`, true},
		{`RETRIEVE o FROM V o WHERE o.X.POSITION.updatetime = 0`, true},
		{`RETRIEVE o FROM V o WHERE o.X.POSITION.speed = 2`, true},
	}
	for _, tc := range cases {
		rel, err := f.tryRun(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		got := len(rel.At(0)) == 1
		if got != tc.want {
			t.Errorf("%s: satisfied=%v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestTermErrorPaths(t *testing.T) {
	f := newFixture(t)
	f.addCar(t, "v", 60, geom.Point{}, geom.Vector{})
	bad := []string{
		`RETRIEVE o FROM V o WHERE o.PRICE / 0 = 1`,                // division by zero
		`RETRIEVE o FROM V o WHERE o.NOPE = 1`,                     // unknown attribute
		`RETRIEVE o FROM V o WHERE SPEED(o.NOPE) = 1`,              // SPEED of unknown attr
		`RETRIEVE o FROM V o WHERE DIST(o, 3) <= 5`,                // DIST arg not an object
		`RETRIEVE o FROM V o WHERE 'a' + 1 = 2`,                    // non-numeric arithmetic
		`RETRIEVE o FROM V o WHERE WITHIN_SPHERE(o.X.POSITION, o)`, // non-constant radius
		`RETRIEVE o FROM V o WHERE EVENTUALLY WITHIN o.PRICE TRUE`, // non-constant bound
		`RETRIEVE o FROM V o WHERE [o <- 1] TRUE`,                  // shadowing a FROM var
		`RETRIEVE o FROM V o WHERE [x <- zzz] x = 1`,               // unbound term var
		`RETRIEVE o FROM V o WHERE INSIDE(3, P)`,                   // non-variable object
		`RETRIEVE o FROM V o WHERE ABS('x') = 1`,                   // non-numeric call arg
	}
	for _, src := range bad {
		if _, err := f.tryRun(src); err == nil {
			t.Errorf("%s: expected error", src)
		}
	}
}

func TestNegativeBoundRejected(t *testing.T) {
	f := newFixture(t)
	f.addCar(t, "v", 1, geom.Point{}, geom.Vector{})
	if _, err := f.tryRun(`RETRIEVE o FROM V o WHERE EVENTUALLY WITHIN 0-5 TRUE`); err == nil {
		t.Error("negative bound should fail")
	}
}

func TestStringAndBoolComparisons(t *testing.T) {
	f := newFixture(t)
	f.ctx.Horizon = 5
	f.addCar(t, "v", 60, geom.Point{}, geom.Vector{})
	cases := []struct {
		src  string
		want bool
	}{
		{`RETRIEVE o FROM V o WHERE 'abc' < 'abd'`, true},
		{`RETRIEVE o FROM V o WHERE 'abc' != 'abd'`, true},
		{`RETRIEVE o FROM V o WHERE (TRUE) = TRUE`, true},
		{`RETRIEVE o FROM V o WHERE (FALSE) != TRUE`, true},
		{`RETRIEVE o FROM V o WHERE 'a' = 'b'`, false},
	}
	for _, tc := range cases {
		rel, err := f.tryRun(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got := len(rel.At(0)) == 1; got != tc.want {
			t.Errorf("%s: satisfied=%v want %v", tc.src, got, tc.want)
		}
	}
}

func TestRelationExpandErrors(t *testing.T) {
	r := NewRelation("x")
	r.Add([]Val{NumVal(1)}, temporal.NewSet(temporal.Interval{Start: 0, End: 5}))
	if _, err := r.Expand([]string{"x", "y"}, map[string][]Val{}); err == nil {
		t.Error("expanding over a variable without a domain should fail")
	}
	if _, err := r.ComplementOver(map[string][]Val{}, temporal.Interval{Start: 0, End: 5}); err == nil {
		t.Error("complement without domains should fail")
	}
	// Valid expansion multiplies instantiations.
	out, err := r.Expand([]string{"x", "y"}, map[string][]Val{"y": {StrVal("a"), StrVal("b")}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("expanded Len = %d", out.Len())
	}
}

func TestWindowSphereRadiusVariable(t *testing.T) {
	// A radius bound through Params is constant and accepted.
	f := newFixture(t)
	f.ctx.Horizon = 10
	f.ctx.Params["r"] = NumVal(100)
	f.addCar(t, "a", 0, geom.Point{X: 0}, geom.Vector{})
	f.addCar(t, "b", 0, geom.Point{X: 50}, geom.Vector{})
	q := ftl.MustParse(`RETRIEVE o, n FROM V o, V n WHERE WITHIN_SPHERE(r, o, n)`)
	f.ctx.Domains["n"] = append([]Val{}, f.ctx.Domains["o"]...)
	rel, err := EvalQuery(q, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Fatalf("pairs = %d, want 4", rel.Len())
	}
}

func TestValStringRendering(t *testing.T) {
	vals := map[string]Val{
		"obj-1": ObjVal("obj-1"),
		"2.5":   NumVal(2.5),
		"hi":    StrVal("hi"),
		"true":  BoolVal(true),
		"NULL":  {},
	}
	for want, v := range vals {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
	if ObjVal("a").Compare(ObjVal("b")) >= 0 || NumVal(1).Compare(StrVal("x")) >= 0 {
		t.Error("Compare ordering wrong")
	}
}

func TestDumpAndAnswerHelpers(t *testing.T) {
	f := newFixture(t)
	f.ctx.Horizon = 10
	f.addCar(t, "v", 10, geom.Point{X: 15}, geom.Vector{})
	rel, err := f.tryRun(`RETRIEVE o FROM V o WHERE INSIDE(o, P)`)
	if err != nil {
		t.Fatal(err)
	}
	ans := rel.Answers()
	if len(ans) != 1 || ans[0].Interval.Start != 0 {
		t.Fatalf("answers = %+v", ans)
	}
	if s := dumpRelation(rel); !strings.Contains(s, "v") {
		t.Fatalf("dump = %q", s)
	}
	if s := dumpRelation(NewRelation()); s != "(empty)" {
		t.Fatalf("empty dump = %q", s)
	}
}
