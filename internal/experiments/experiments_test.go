package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func atoiCell(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("cell %q is not an integer: %v", s, err)
	}
	return n
}

func TestE1ShapeMatchesPaper(t *testing.T) {
	tbl := E1QueryTypes()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Instantaneous and continuous stay empty throughout; persistent
	// becomes {o} at time 2 and stays.
	for i, r := range tbl.Rows {
		if r[2] != "{}" || r[3] != "{}" {
			t.Errorf("row %d: instantaneous/continuous = %s/%s, want empty", i, r[2], r[3])
		}
	}
	if tbl.Rows[0][4] != "{}" || tbl.Rows[1][4] != "{}" {
		t.Error("persistent should be empty before the doubling")
	}
	if tbl.Rows[2][4] != "{o}" || tbl.Rows[3][4] != "{o}" {
		t.Error("persistent should retrieve o from time 2 on")
	}
}

func TestE2VectorTrafficFarBelowPosition(t *testing.T) {
	tbl := E2UpdateTraffic(true)
	for _, r := range tbl.Rows {
		pos := atoiCell(t, r[3])
		vec := atoiCell(t, r[4])
		if vec*5 > pos {
			t.Errorf("n=%s rate=%s: vector msgs %d not well below position msgs %d", r[0], r[1], vec, pos)
		}
	}
}

func TestE3IndexBeatsScanAtScale(t *testing.T) {
	tbl := E3IndexVsScan(true)
	last := tbl.Rows[len(tbl.Rows)-1]
	speedup := strings.TrimSuffix(last[4], "x")
	v, err := strconv.ParseFloat(speedup, 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 2 {
		t.Errorf("at the largest size the index should win clearly, got %sx", speedup)
	}
}

func TestE4SingleProbeBeatsPerTick(t *testing.T) {
	tbl := E4ContinuousIndex(true)
	for _, r := range tbl.Rows {
		ratio := strings.TrimSuffix(r[5], "x")
		v, err := strconv.ParseFloat(ratio, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 1.5 {
			t.Errorf("per-tick/single ratio = %sx, want clearly above 1.5x", ratio)
		}
	}
}

func TestE5EvaluationCounts(t *testing.T) {
	tbl := E5ContinuousVsPerTick(true)
	for _, r := range tbl.Rows {
		ticks := atoiCell(t, r[1])
		updates := atoiCell(t, r[2])
		ce := atoiCell(t, r[3])
		ne := atoiCell(t, r[4])
		if ce != 1+updates {
			t.Errorf("continuous evals = %d, want %d", ce, 1+updates)
		}
		if ne != ticks {
			t.Errorf("per-tick evals = %d, want %d", ne, ticks)
		}
	}
}

func TestE6AlgorithmsAgreeAndDiverge(t *testing.T) {
	tbl := E6UntilJoin(true)
	if len(tbl.Rows) < 2 {
		t.Fatal("need at least two sizes")
	}
	// The pairwise/linear ratio should grow with size.
	first := strings.TrimSuffix(tbl.Rows[0][3], "x")
	lastR := strings.TrimSuffix(tbl.Rows[len(tbl.Rows)-1][3], "x")
	a, _ := strconv.ParseFloat(first, 64)
	b, _ := strconv.ParseFloat(lastR, 64)
	if b <= a {
		t.Errorf("pairwise/linear ratio should grow: %v -> %v", a, b)
	}
}

func TestE7Exactly2kQueries(t *testing.T) {
	tbl := E7Decomposition(true)
	for _, r := range tbl.Rows {
		k := atoiCell(t, r[0])
		issued := atoiCell(t, r[1])
		if issued != 1<<k {
			t.Errorf("k=%d issued %d queries", k, issued)
		}
	}
}

func TestE9BroadcastCheaper(t *testing.T) {
	tbl := E9DistStrategies(true)
	for _, r := range tbl.Rows {
		shipB := atoiCell(t, r[3])
		bcastB := atoiCell(t, r[5])
		if bcastB >= shipB {
			t.Errorf("nodes=%s sel=%s: broadcast bytes %d >= ship %d", r[0], r[1], bcastB, shipB)
		}
		cShip := atoiCell(t, r[6])
		cBcast := atoiCell(t, r[7])
		if cBcast >= cShip {
			t.Errorf("continuous: broadcast bytes %d >= ship %d", cBcast, cShip)
		}
	}
}

func TestE10Shape(t *testing.T) {
	tbl := E10ImmediateVsDelayed(true)
	for i := 0; i+1 < len(tbl.Rows); i += 2 {
		im, de := tbl.Rows[i], tbl.Rows[i+1]
		imMsgs := atoiCell(t, im[4])
		deMsgs := atoiCell(t, de[4])
		if imMsgs >= deMsgs {
			t.Errorf("immediate msgs %d >= delayed %d", imMsgs, deMsgs)
		}
		// With unlimited memory and p=0, nothing is missed either way.
		if im[2] == "0.00" && atoiCell(t, im[6])+atoiCell(t, de[6]) != 0 {
			t.Error("misses at p=0")
		}
		// Delayed bounds memory below immediate-unlimited.
		if im[1] == "inf" {
			if atoiCell(t, de[7]) > atoiCell(t, im[7]) {
				t.Error("delayed peak memory should not exceed immediate-unlimited")
			}
		}
	}
}

func TestAllRender(t *testing.T) {
	for _, tbl := range All(true) {
		out := tbl.Render()
		if !strings.Contains(out, tbl.ID) || len(tbl.Rows) == 0 {
			t.Errorf("table %s renders badly or is empty", tbl.ID)
		}
	}
}

func TestE11MechanismsBeatScan(t *testing.T) {
	tbl := E11IndexMechanisms(true)
	last := tbl.Rows[len(tbl.Rows)-1]
	scan := parseDur(t, last[1])
	rtree := parseDur(t, last[2])
	grid := parseDur(t, last[3])
	if rtree >= scan || grid >= scan {
		t.Errorf("at the largest size both indexes should beat the scan: scan=%v rtree=%v grid=%v", scan, rtree, grid)
	}
}

func TestE12HorizonShape(t *testing.T) {
	tbl := E12HorizonChoice(true)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Rebuild count falls and continuous reach grows as T grows; entries
	// scale linearly with T at fixed strip width.
	r0 := atoiCell(t, tbl.Rows[0][3])
	r2 := atoiCell(t, tbl.Rows[2][3])
	if r0 <= r2 {
		t.Errorf("rebuilds should fall with T: %d -> %d", r0, r2)
	}
	reach0 := atoiCell(t, tbl.Rows[0][7])
	reach2 := atoiCell(t, tbl.Rows[2][7])
	if reach0 >= reach2 {
		t.Errorf("continuous reach should grow with T: %d -> %d", reach0, reach2)
	}
	e0 := atoiCell(t, tbl.Rows[0][2])
	e2 := atoiCell(t, tbl.Rows[2][2])
	if e2 <= e0 {
		t.Errorf("entries should grow with T: %d -> %d", e0, e2)
	}
}

// parseDur parses the ns() rendering back to a duration for comparisons.
func parseDur(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	var unit string
	if _, err := fmt.Sscanf(s, "%f%s", &v, &unit); err != nil {
		t.Fatalf("bad duration %q: %v", s, err)
	}
	switch unit {
	case "ns":
		return v
	case "us":
		return v * 1e3
	case "ms":
		return v * 1e6
	default:
		t.Fatalf("bad duration unit %q", s)
		return 0
	}
}

func TestParallelBenchShape(t *testing.T) {
	rep := ParallelBench(true)
	if rep.GOMAXPROCS < 1 {
		t.Fatalf("GOMAXPROCS = %d", rep.GOMAXPROCS)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range rep.Results {
		if r.SequentialNs <= 0 || r.ParallelNs <= 0 || r.Speedup <= 0 {
			t.Errorf("objects=%d: bad timings %+v", r.Objects, r)
		}
	}
	if out := rep.Table().Render(); !strings.Contains(out, "PAR") {
		t.Errorf("table renders badly:\n%s", out)
	}
}

// TestE13FaultsRobustness asserts the robustness claims on the quick sweep:
// on every fault schedule the reliable paths lose no more than the legacy
// ones; the legacy paths demonstrably lose displays and updates; and the
// reliable paths lose nothing at all (the schedules are crafted so every
// display window outlasts the worst outage plus the retry backoff).
func TestE13FaultsRobustness(t *testing.T) {
	rep := FaultsBench(true)
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range rep.Results {
		if r.ReliableMissed > r.LegacyImmMissed || r.ReliableMissed > r.LegacyDelMissed {
			t.Errorf("row %+v: reliable missed more than legacy", r)
		}
		if r.ReliableMissed != 0 {
			t.Errorf("row %+v: reliable missed %d displays", r, r.ReliableMissed)
		}
		if r.LegacyImmMissed == 0 || r.LegacyDelMissed == 0 {
			t.Errorf("row %+v: legacy delivery missed nothing under faults", r)
		}
		if r.ReliableUpdatesLost != 0 {
			t.Errorf("row %+v: reliable propagation lost %d updates", r, r.ReliableUpdatesLost)
		}
		if r.LegacyUpdatesLost == 0 {
			t.Errorf("row %+v: legacy propagation lost nothing under faults", r)
		}
		if r.StaleReliable != 0 {
			t.Errorf("row %+v: reliable picture marked %d answers stale", r, r.StaleReliable)
		}
		if r.StaleLegacy == 0 {
			t.Errorf("row %+v: legacy picture marked nothing stale", r)
		}
		if r.RecoveryNs <= 0 {
			t.Errorf("row %+v: no recovery measurement", r)
		}
	}
	if out := FaultsBench(true).Table().Render(); !strings.Contains(out, "E13") {
		t.Errorf("table renders badly:\n%s", out)
	}
}
