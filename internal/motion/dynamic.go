package motion

import (
	"fmt"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/temporal"
)

// DynamicAttr is the paper's dynamic attribute: a value that "changes over
// time according to some given function, even if it is not explicitly
// updated" (§2.1).  A user can query the derived value At(t) or each
// sub-attribute independently.
type DynamicAttr struct {
	Value      float64       // A.value: value at UpdateTime
	UpdateTime temporal.Tick // A.updatetime: when the last explicit update occurred
	Function   Func          // A.function: offset function with f(0)=0
}

// Static wraps a plain value as a dynamic attribute with a zero function:
// the value holds until explicitly updated, like a traditional attribute.
func Static(v float64) DynamicAttr { return DynamicAttr{Value: v} }

// LinearFrom returns an attribute with value v at time t0, changing at the
// given slope per tick.
func LinearFrom(v float64, t0 temporal.Tick, slope float64) DynamicAttr {
	return DynamicAttr{Value: v, UpdateTime: t0, Function: Linear(slope)}
}

// At returns the attribute's value at tick t: A.value + A.function(t -
// A.updatetime).  This is what the DBMS returns when the attribute is
// queried at time t (§2.1).
func (a DynamicAttr) At(t temporal.Tick) float64 { return a.AtReal(float64(t)) }

// AtReal returns the value at a real-valued instant.
func (a DynamicAttr) AtReal(t float64) float64 {
	return a.Value + a.Function.Value(t-float64(a.UpdateTime))
}

// SpeedAt returns the attribute's rate of change at tick t.
func (a DynamicAttr) SpeedAt(t temporal.Tick) float64 {
	return a.Function.SlopeAt(float64(t - a.UpdateTime))
}

// Updated returns a copy explicitly updated at tick t: the value
// sub-attribute is re-based to the current value (so the trajectory stays
// continuous) and the function sub-attribute is replaced.  "An explicit
// update of a dynamic attribute may change its value sub-attribute, or its
// function sub-attribute, or both" (§2.1); SetAt covers the general case.
func (a DynamicAttr) Updated(t temporal.Tick, f Func) DynamicAttr {
	return DynamicAttr{Value: a.At(t), UpdateTime: t, Function: f}
}

// SetAt returns a copy with both sub-attributes replaced at tick t.
func (a DynamicAttr) SetAt(t temporal.Tick, value float64, f Func) DynamicAttr {
	return DynamicAttr{Value: value, UpdateTime: t, Function: f}
}

// Segment is one polynomial piece of the attribute's trajectory in the
// (time, value) plane: for absolute times in [T0, T1] the attribute's value
// is V0 + Slope*(t-T0) + Accel*(t-T0)^2/2.  Segments are what the §4 index
// stores: "the method plots all the functions representing the way a
// dynamic attribute A changes with time".  Linear motion has Accel == 0.
type Segment struct {
	T0, T1 float64 // absolute time span
	V0     float64 // value at T0
	Slope  float64 // instantaneous rate of change at T0
	Accel  float64 // constant acceleration over the segment
}

// ValueAt returns the segment's value at absolute time t.
func (s Segment) ValueAt(t float64) float64 {
	d := t - s.T0
	return s.V0 + s.Slope*d + s.Accel*d*d/2
}

// SlopeAt returns the instantaneous rate of change at absolute time t.
func (s Segment) SlopeAt(t float64) float64 { return s.Slope + s.Accel*(t-s.T0) }

// Bounds returns the segment's bounding box in the (time, value) plane; a
// quadratic segment's extremum (its vertex) is accounted for when it falls
// inside the span.
func (s Segment) Bounds() (tMin, tMax, vMin, vMax float64) {
	v1 := s.ValueAt(s.T1)
	vMin, vMax = s.V0, v1
	if vMin > vMax {
		vMin, vMax = vMax, vMin
	}
	if s.Accel != 0 {
		tv := s.T0 - s.Slope/s.Accel // vertex: where the slope is zero
		if tv > s.T0 && tv < s.T1 {
			v := s.ValueAt(tv)
			if v < vMin {
				vMin = v
			}
			if v > vMax {
				vMax = v
			}
		}
	}
	return s.T0, s.T1, vMin, vMax
}

// Sub returns the sub-segment of s over [t0, t1] (which must lie within
// [T0, T1]), re-anchored at t0.
func (s Segment) Sub(t0, t1 float64) Segment {
	return Segment{T0: t0, T1: t1, V0: s.ValueAt(t0), Slope: s.SlopeAt(t0), Accel: s.Accel}
}

// Trajectory returns the attribute's straight segments over the absolute
// time window [from, to].
func (a DynamicAttr) Trajectory(from, to float64) []Segment {
	if from > to {
		return nil
	}
	pieces := a.Function.Pieces()
	base := float64(a.UpdateTime)
	if len(pieces) == 0 {
		return []Segment{{T0: from, T1: to, V0: a.Value, Slope: 0}}
	}
	var out []Segment
	for i, p := range pieces {
		t0 := base + p.Start
		t1 := to
		if i+1 < len(pieces) {
			t1 = base + pieces[i+1].Start
		}
		if i == 0 {
			t0 = min(t0, from) // extrapolate the first piece backwards
		}
		s, e := max(t0, from), min(t1, to)
		if s > e {
			continue
		}
		out = append(out, Segment{
			T0:    s,
			T1:    e,
			V0:    a.AtReal(s),
			Slope: p.Slope + p.Accel*(s-(base+p.Start)),
			Accel: p.Accel,
		})
	}
	return out
}

// RangeTimes returns the real times t in [from, to] at which
// lo <= A(t) <= hi: the kinetic form of a one-dimensional range predicate,
// used both by FTL atomic predicates on dynamic attributes and by the §4
// index to turn "retrieve the objects for which currently 4 < A < 5" into
// per-object time intervals for continuous queries.
func (a DynamicAttr) RangeTimes(lo, hi, from, to float64) geom.RealSet {
	if lo > hi || from > to {
		return geom.RealSet{}
	}
	var out []geom.RealInterval
	for _, seg := range a.Trajectory(from, to) {
		out = append(out, SegRangeTimes(seg, lo, hi).Intervals()...)
	}
	return geom.NewRealSet(out...)
}

// SegRangeTimes solves lo <= seg(t) <= hi on [seg.T0, seg.T1], exactly for
// both linear and quadratic segments.
func SegRangeTimes(seg Segment, lo, hi float64) geom.RealSet {
	// In offsets d = t - T0: q(d) = Accel/2 d^2 + Slope d + V0.
	// lo <= q(d): (-q(d) + lo) <= 0;  q(d) <= hi: (q(d) - hi) <= 0.
	span := seg.T1 - seg.T0
	above := geom.QuadraticLE(-seg.Accel/2, -seg.Slope, lo-seg.V0, 0, span)
	below := geom.QuadraticLE(seg.Accel/2, seg.Slope, seg.V0-hi, 0, span)
	shifted := above.Intersect(below)
	// Shift offsets back to absolute time.
	ivs := shifted.Intervals()
	out := make([]geom.RealInterval, 0, len(ivs))
	for _, iv := range ivs {
		out = append(out, geom.RealInterval{Lo: iv.Lo + seg.T0, Hi: iv.Hi + seg.T0})
	}
	return geom.NewRealSet(out...)
}

// CompareTimes returns the real times in [from, to] at which A(t) op c
// holds, for the closed operators "<=", ">=", "=".  Strict operators differ
// from their closed counterparts only on a measure-zero set, which cannot
// be represented by closed real intervals; use CompareTicks for them — on
// the discrete clock the distinction is exact.
func (a DynamicAttr) CompareTimes(op string, c, from, to float64) (geom.RealSet, error) {
	// inf is large enough to act as an open bound yet small enough that the
	// quadratic discriminant B^2 - 4AC cannot overflow.
	const inf = 1e150
	switch op {
	case "<=":
		return a.RangeTimes(-inf, c, from, to), nil
	case ">=":
		return a.RangeTimes(c, inf, from, to), nil
	case "=", "==":
		return a.RangeTimes(c, c, from, to), nil
	default:
		return geom.RealSet{}, fmt.Errorf("motion: operator %q needs tick semantics; use CompareTicks", op)
	}
}

// CompareTicks returns the clock ticks in window w at which A(t) op c
// holds, where op is one of "<", "<=", ">", ">=", "=", "==", "!=", "<>".
// A tick satisfies a strict predicate iff the value at that integer instant
// strictly satisfies it, so boundary ticks where A(t) == c exactly are
// excluded from "<" and ">" and from "!=".
func (a DynamicAttr) CompareTicks(op string, c float64, w temporal.Interval) (temporal.Set, error) {
	if !w.Valid() {
		return temporal.Set{}, nil
	}
	from, to := float64(w.Start), float64(w.End)
	eq := func() temporal.Set { return a.RangeTimes(c, c, from, to).Ticks(w) }
	switch op {
	case "<=", ">=", "=", "==":
		closed, err := a.CompareTimes(op, c, from, to)
		if err != nil {
			return temporal.Set{}, err
		}
		return closed.Ticks(w), nil
	case "<":
		closed, _ := a.CompareTimes("<=", c, from, to)
		return closed.Ticks(w).Subtract(eq()), nil
	case ">":
		closed, _ := a.CompareTimes(">=", c, from, to)
		return closed.Ticks(w).Subtract(eq()), nil
	case "!=", "<>":
		return eq().ComplementWithin(w), nil
	default:
		return temporal.Set{}, fmt.Errorf("motion: unknown comparison operator %q", op)
	}
}
