package geom

import (
	"math"
	"math/rand"
	"testing"
)

// This file pins the kinetic solvers against a dense time-sampling oracle
// and against hand-picked boundary and tangency configurations.  The
// sampling oracle evaluates the instantaneous predicate at 1000 uniform
// times and requires the closed-form interval set to agree everywhere
// except within a hair of an interval endpoint, where the instantaneous
// test is legitimately ambiguous at floating-point resolution.

// checkAgainstOracle samples pred over [lo,hi] and compares with
// set.Contains, skipping samples within tol of any interval endpoint.
func checkAgainstOracle(t *testing.T, name string, set RealSet, pred func(float64) bool, lo, hi float64) {
	t.Helper()
	const samples = 1000
	const tol = 1e-6
	nearEndpoint := func(x float64) bool {
		for _, iv := range set.Intervals() {
			if math.Abs(x-iv.Lo) < tol || math.Abs(x-iv.Hi) < tol {
				return true
			}
		}
		return false
	}
	mismatches := 0
	for i := 0; i <= samples; i++ {
		x := lo + (hi-lo)*float64(i)/samples
		if nearEndpoint(x) {
			continue
		}
		if set.Contains(x) != pred(x) {
			mismatches++
			if mismatches <= 3 {
				t.Errorf("%s: at t=%.9f solver says %v, oracle says %v (set %v)",
					name, x, set.Contains(x), pred(x), set.Intervals())
			}
		}
	}
	if mismatches > 3 {
		t.Errorf("%s: %d total mismatches", name, mismatches)
	}
}

func TestInsideTimesOracleRandom(t *testing.T) {
	polys := []Polygon{
		RectPolygon(-5, -5, 5, 5),
		mustPoly(Point{X: 0, Y: 6}, Point{X: -6, Y: -4}, Point{X: 6, Y: -4}), // triangle
		// Concave "C" shape: entry and exit through the same gap.
		mustPoly(
			Point{X: -4, Y: -4}, Point{X: 4, Y: -4}, Point{X: 4, Y: -2},
			Point{X: -2, Y: -2}, Point{X: -2, Y: 2}, Point{X: 4, Y: 2},
			Point{X: 4, Y: 4}, Point{X: -4, Y: 4},
		),
	}
	r := rand.New(rand.NewSource(99))
	for pi, pg := range polys {
		for trial := 0; trial < 40; trial++ {
			m := MovingPoint{
				P: Point{X: r.Float64()*30 - 15, Y: r.Float64()*30 - 15},
				V: Vector{X: r.Float64()*4 - 2, Y: r.Float64()*4 - 2},
				T: r.Float64() * 4,
			}
			lo, hi := 0.0, 20.0
			set := InsideTimes(m, pg, lo, hi)
			checkAgainstOracle(t, "InsideTimes", set,
				func(x float64) bool { return pg.Contains(m.At(x)) }, lo, hi)
			// OutsideTimes must be the exact complement away from endpoints.
			out := OutsideTimes(m, pg, lo, hi)
			checkAgainstOracle(t, "OutsideTimes", out,
				func(x float64) bool { return !pg.Contains(m.At(x)) }, lo, hi)
			_ = pi
		}
	}
}

func TestInsideTimesBoundaryAndTangency(t *testing.T) {
	sq := RectPolygon(0, 0, 10, 10)
	cases := []struct {
		name  string
		m     MovingPoint
		lo    float64
		hi    float64
		empty bool       // expected emptiness
		span  [2]float64 // expected single interval when !empty (approx)
	}{
		{
			// Path grazes the top edge y=10 exactly: boundary counts as
			// inside, so the tangent stretch is satisfied.
			name: "tangent-to-edge",
			m:    MovingPoint{P: Point{X: -5, Y: 10}, V: Vector{X: 1}},
			lo:   0, hi: 20, span: [2]float64{5, 15},
		},
		{
			// Path grazing a single corner: the line x+y=20 meets the
			// square only at (10, 10), a degenerate touch point at t=2.
			name: "corner-graze",
			m:    MovingPoint{P: Point{X: 8, Y: 12}, V: Vector{X: 1, Y: -1}},
			lo:   0, hi: 20, span: [2]float64{2, 2},
		},
		{
			// Collinear with the bottom edge: enters at x=0, leaves at x=10.
			name: "collinear-with-edge",
			m:    MovingPoint{P: Point{X: -3, Y: 0}, V: Vector{X: 1}},
			lo:   0, hi: 20, span: [2]float64{3, 13},
		},
		{
			// Parallel to an edge just outside: never inside.
			name: "parallel-outside",
			m:    MovingPoint{P: Point{X: -3, Y: 10.001}, V: Vector{X: 1}},
			lo:   0, hi: 20, empty: true,
		},
		{
			// Static on the boundary.
			name: "static-on-boundary",
			m:    MovingPoint{P: Point{X: 10, Y: 5}},
			lo:   0, hi: 20, span: [2]float64{0, 20},
		},
		{
			// Window entirely before the crossing.
			name: "window-misses-crossing",
			m:    MovingPoint{P: Point{X: -100, Y: 5}, V: Vector{X: 1}},
			lo:   0, hi: 50, empty: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			set := InsideTimes(tc.m, sq, tc.lo, tc.hi)
			if tc.empty {
				if !set.IsEmpty() {
					t.Fatalf("want empty, got %v", set.Intervals())
				}
				return
			}
			ivs := set.Intervals()
			if len(ivs) != 1 {
				t.Fatalf("want one interval, got %v", ivs)
			}
			const tol = 1e-6
			if math.Abs(ivs[0].Lo-tc.span[0]) > tol || math.Abs(ivs[0].Hi-tc.span[1]) > tol {
				t.Fatalf("want [%g, %g], got [%g, %g]", tc.span[0], tc.span[1], ivs[0].Lo, ivs[0].Hi)
			}
		})
	}
}

func TestDistWithinTimesOracleRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		a := MovingPoint{
			P: Point{X: r.Float64()*20 - 10, Y: r.Float64()*20 - 10},
			V: Vector{X: r.Float64()*4 - 2, Y: r.Float64()*4 - 2},
			T: r.Float64() * 3,
		}
		b := MovingPoint{
			P: Point{X: r.Float64()*20 - 10, Y: r.Float64()*20 - 10},
			V: Vector{X: r.Float64()*4 - 2, Y: r.Float64()*4 - 2},
		}
		rad := r.Float64() * 8
		lo, hi := 0.0, 15.0
		set := DistWithinTimes(a, b, rad, lo, hi)
		checkAgainstOracle(t, "DistWithinTimes", set,
			func(x float64) bool { return a.At(x).Sub(b.At(x)).Norm() <= rad }, lo, hi)
	}
}

func TestDistWithinTimesTangency(t *testing.T) {
	// Closest approach exactly equals the radius: the parallel movers stay
	// at distance 3 forever, so DIST <= 3 holds everywhere and DIST <= 2.999
	// nowhere.
	a := MovingPoint{P: Point{Y: 3}, V: Vector{X: 1}}
	b := MovingPoint{P: Point{}, V: Vector{X: 1}}
	if got := DistWithinTimes(a, b, 3, 0, 10); got.IsEmpty() {
		t.Errorf("tangent distance should satisfy <=: got empty")
	}
	if got := DistWithinTimes(a, b, 2.999, 0, 10); !got.IsEmpty() {
		t.Errorf("sub-tangent radius should be empty, got %v", got.Intervals())
	}
	// Head-on tangency at a single instant: passing at closest approach 0
	// with radius 0 yields the touch instant alone.
	c := MovingPoint{P: Point{X: -5}, V: Vector{X: 1}}
	d := MovingPoint{P: Point{X: 5}, V: Vector{X: -1}}
	got := DistWithinTimes(c, d, 0, 0, 10)
	ivs := got.Intervals()
	if len(ivs) != 1 || math.Abs(ivs[0].Lo-5) > 1e-9 || math.Abs(ivs[0].Hi-5) > 1e-9 {
		t.Errorf("touch instant: want [5,5], got %v", ivs)
	}
}

func TestWithinSphereTimesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(2)
		pts := make([]MovingPoint, n)
		for i := range pts {
			pts[i] = MovingPoint{
				P: Point{X: r.Float64()*10 - 5, Y: r.Float64()*10 - 5},
				V: Vector{X: r.Float64()*2 - 1, Y: r.Float64()*2 - 1},
			}
		}
		rad := 1 + r.Float64()*4
		lo, hi := 0.0, 10.0
		set := WithinSphereTimes(rad, pts, lo, hi, 1000)
		// The bisection solver is approximate; use a wider endpoint margin.
		const tol = 1e-2
		nearEndpoint := func(x float64) bool {
			for _, iv := range set.Intervals() {
				if math.Abs(x-iv.Lo) < tol || math.Abs(x-iv.Hi) < tol {
					return true
				}
			}
			return false
		}
		for i := 0; i <= 1000; i++ {
			x := lo + (hi-lo)*float64(i)/1000
			if nearEndpoint(x) {
				continue
			}
			cur := make([]Point, n)
			for j, p := range pts {
				cur[j] = p.At(x)
			}
			want := MinEnclosingBall(cur).Radius <= rad
			if set.Contains(x) != want {
				t.Errorf("trial %d: at t=%.4f solver %v oracle %v (r=%.3f, set %v)",
					trial, x, set.Contains(x), want, rad, set.Intervals())
				break
			}
		}
	}
}

func TestWithinSphereTimesTwoPointsMatchesClosedForm(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a := MovingPoint{
			P: Point{X: r.Float64()*20 - 10, Y: r.Float64()*20 - 10},
			V: Vector{X: r.Float64()*2 - 1, Y: r.Float64()*2 - 1},
		}
		b := MovingPoint{
			P: Point{X: r.Float64()*20 - 10, Y: r.Float64()*20 - 10},
			V: Vector{X: r.Float64()*2 - 1, Y: r.Float64()*2 - 1},
		}
		rad := r.Float64() * 5
		got := WithinSphereTimes(rad, []MovingPoint{a, b}, 0, 10, 0)
		want := DistWithinTimes(a, b, 2*rad, 0, 10)
		gi, wi := got.Intervals(), want.Intervals()
		if len(gi) != len(wi) {
			t.Fatalf("trial %d: %v vs %v", trial, gi, wi)
		}
		for i := range gi {
			if math.Abs(gi[i].Lo-wi[i].Lo) > 1e-9 || math.Abs(gi[i].Hi-wi[i].Hi) > 1e-9 {
				t.Fatalf("trial %d: %v vs %v", trial, gi, wi)
			}
		}
	}
}

func mustPoly(vs ...Point) Polygon {
	pg, err := NewPolygon(vs...)
	if err != nil {
		panic(err)
	}
	return pg
}
