package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/server"
	"github.com/mostdb/most/internal/wire"
)

// Node is one cluster member: the glue between a server.Server and the
// zone map.  It implements server.ClusterHooks — the server calls in on
// its session goroutines to route ops, apply incoming handoffs, relay
// foreign batches, and scan for zone exits after each commit.
//
// # Ownership and the version fence
//
// Possession is ownership: a node owns every partitioned-class object in
// its database, whatever the object's current position says (the position
// may have drifted out; the object still belongs here until a handoff
// completes).  A handoff transfers exactly that: the sender freezes the
// object, sends its motion record with version fence[id]+1, and deletes
// its copy only after the receiver acknowledges.  The receiver accepts
// when the version beats its own fence for the id — insert re-derives all
// in-flight continuous-query state from the node's registered plans — and
// otherwise acknowledges a duplicate without re-applying.  Fences and
// tombstones are in-memory; what makes exactly-once survive a crash is
// the durable layer underneath (OpHandoff is a mutating request, so the
// receiver's WAL carries a receipt per transfer and a crashed receiver
// re-acknowledges retries without re-applying) plus bounce-healing: a
// recovered node that finds a stale copy re-hands it toward the zone
// owner, where the live copy's higher fence rejects it as a duplicate and
// the stale copy is released.
//
// # In-doubt transfers
//
// A transfer whose acknowledgement never arrives is in doubt: the
// receiver may or may not have applied it.  The object must not accept
// writes in that state — if the receiver did apply, a later duplicate
// acknowledgement releases this copy, and any write it took in between
// would vanish.  So the object stays frozen (writes bounce with a
// retryable code) and the transfer parks in the pending set, which a
// background loop re-offers until the receiver answers.  The same
// discipline covers crash amnesia: recovery wipes fences and the pending
// set, so Quarantine re-freezes every out-of-zone object a recovered
// node still holds and parks it as an in-doubt transfer to the zone
// owner.  The receiver side completes the argument: it acknowledges a
// stale version as a duplicate only while it actually possesses the
// object (possession is what makes the release safe); a stale offer it
// cannot vouch for is accepted instead — the offer is the only live copy.
type Node struct {
	name string // this node's advertised address (zone map key)

	srv *server.Server
	zm  atomic.Pointer[ZoneMap]

	mu     sync.Mutex
	fences map[string]uint64   // highest handoff version seen per object
	tomb   map[string]string   // departed object -> address it went to
	frozen map[string]bool     // mid-handoff: reject writes, retryable
	pend   map[string]pendXfer // in-doubt transfers, still frozen

	pmu   sync.Mutex
	peers map[string]*client.Client
	nonce string // per-boot peer identity suffix
	dial  func(addr string) (net.Conn, error)

	retryStop chan struct{}
	retryOnce sync.Once
	retryWG   sync.WaitGroup

	handoffsOut atomic.Uint64
	handoffsIn  atomic.Uint64
	handoffDups atomic.Uint64
	bounces     atomic.Uint64
}

// pendXfer is one in-doubt transfer: sent, never acknowledged.  The
// object stays frozen until the retry loop gets an answer.
type pendXfer struct {
	ver  uint64
	doc  []byte
	dest string
}

// NewNode returns an unbound node; Bind attaches it to a server and
// database once they exist (the server config needs the node first).
// nonce distinguishes this boot's peer sessions from a previous
// incarnation's, so retried request IDs never collide with recovered
// receipts that belong to the old process.
func NewNode(nonce string, dial func(addr string) (net.Conn, error)) *Node {
	return &Node{
		fences:    map[string]uint64{},
		tomb:      map[string]string{},
		frozen:    map[string]bool{},
		pend:      map[string]pendXfer{},
		peers:     map[string]*client.Client{},
		nonce:     nonce,
		dial:      dial,
		retryStop: make(chan struct{}),
	}
}

// Bind attaches the node to its server and advertised address.  Must be
// called before the server starts serving.  The database is always read
// through the server (srv.DB()), so a durable restart or snapshot swap
// never leaves the node holding a stale pointer.
func (n *Node) Bind(srv *server.Server, addr string) {
	n.srv = srv
	n.name = addr
	n.retryWG.Add(1)
	go n.retryLoop()
}

// retryLoop re-offers in-doubt transfers until each gets an answer.  It
// runs between barriers on purpose: resolution must not wait for the
// next rebalance, or a frozen object would bounce writes for a whole
// tick after the partition heals.
func (n *Node) retryLoop() {
	defer n.retryWG.Done()
	tick := time.NewTicker(150 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-n.retryStop:
			return
		case <-tick.C:
		}
		n.mu.Lock()
		snap := make(map[string]pendXfer, len(n.pend))
		for id, p := range n.pend {
			snap[id] = p
		}
		n.mu.Unlock()
		for id, p := range snap {
			select {
			case <-n.retryStop:
				return
			default:
			}
			n.send(id, p.ver, p.doc, p.dest)
		}
	}
}

// Install publishes the zone map the node routes by.
func (n *Node) Install(zm *ZoneMap) { n.zm.Store(zm) }

// Name returns the node's advertised address.
func (n *Node) Name() string { return n.name }

// Stats returns the node's handoff counters: sent, received, duplicate
// acknowledgements, and bounce-healed stale copies.
func (n *Node) Stats() (out, in, dups, bounces uint64) {
	return n.handoffsOut.Load(), n.handoffsIn.Load(), n.handoffDups.Load(), n.bounces.Load()
}

// Prune deletes every partitioned-class object whose position at the
// current tick falls outside this node's zones — the bootstrap step that
// turns a full seed world into this node's shard.  Replicated classes are
// kept whole.  Only valid on a fresh node: a recovered node must keep
// out-of-zone objects (it still owns them) and rebalance them via
// handoff instead.
func (n *Node) Prune() error {
	zm := n.zm.Load()
	if zm == nil {
		return errors.New("cluster: prune before zone map installed")
	}
	now := n.srv.DB().Now()
	for _, o := range n.srv.DB().Objects("") {
		if zm.IsReplicated(o.Class().Name()) {
			continue
		}
		p, err := o.PositionAt(now)
		if err != nil {
			continue
		}
		if zm.OwnerAt(p) != n.name {
			if err := n.srv.DB().Delete(o.ID()); err != nil {
				return fmt.Errorf("cluster: prune %s: %w", o.ID(), err)
			}
		}
	}
	return nil
}

// ---- server.ClusterHooks ----

// RouteOp classifies one update op for the ownership gate.
func (n *Node) RouteOp(op *wire.UpdateOp) (string, bool, bool) {
	zm := n.zm.Load()
	if zm == nil {
		return "", true, false // not yet clustered: apply everything
	}
	n.mu.Lock()
	if n.frozen[op.ID] {
		n.mu.Unlock()
		return "", false, true
	}
	tombAddr, departed := n.tomb[op.ID]
	n.mu.Unlock()
	if _, ok := n.srv.DB().Get(most.ObjectID(op.ID)); ok {
		return "", true, false // possession is ownership
	}
	if departed {
		return tombAddr, false, false
	}
	if op.Op == wire.OpInsert {
		// A fresh insert routes by the position encoded in the object.
		if o, err := most.DecodeObjectJSON(n.srv.DB(), op.Object); err == nil {
			if zm.IsReplicated(o.Class().Name()) {
				return "", true, false
			}
			if p, err := o.PositionAt(n.srv.DB().Now()); err == nil {
				if owner := zm.OwnerAt(p); owner != "" && owner != n.name {
					return owner, false, false
				}
			}
		}
	}
	// Unknown object with no forwarding address: apply locally so the
	// client sees the database's own (deterministic) unknown-object error
	// instead of a routing loop.
	return "", true, false
}

// ZoneMap serves the cluster topology to OpZoneMap requests.
func (n *Node) ZoneMap() *wire.ZoneMapResp {
	if zm := n.zm.Load(); zm != nil {
		return zm.Wire()
	}
	return &wire.ZoneMapResp{}
}

// Handoff is the receiver side of an object transfer.  Runs on a session
// goroutine with the commit lock held (shared), like any other mutation.
func (n *Node) Handoff(req *wire.HandoffReq, prov *most.Prov) (*wire.HandoffResp, error) {
	n.mu.Lock()
	fence := n.fences[req.ID]
	if req.Version <= fence {
		if _, held := n.srv.DB().Get(most.ObjectID(req.ID)); held {
			// A retransmit of a transfer this node already accepted: the
			// local copy derives from that very transfer (or a newer one),
			// so acknowledging lets the sender release safely.  Possession
			// is the load-bearing condition — without it this node cannot
			// vouch that the lineage survives the sender's delete.
			n.mu.Unlock()
			n.handoffDups.Add(1)
			return &wire.HandoffResp{Accepted: false, Now: n.srv.DB().Now()}, nil
		}
		// Stale version, but nothing here to vouch with: the sender's copy
		// is the only live one (a recovered sender restarts its fence at
		// one), so accept the transfer rather than strand the object.  The
		// fence keeps its high-water mark.
	}
	if req.Version > fence {
		n.fences[req.ID] = req.Version
	}
	// Freeze for the duration of the apply: mutating requests hold the
	// commit lock shared, so an update for this object can race the
	// transfer — between tombstone removal and the insert committing the
	// object would otherwise be routable nowhere, and the router would see
	// the database's non-retryable unknown-object error instead of the
	// retryable mid-handoff refusal.  If the object is already frozen (an
	// in-doubt outbound transfer parked here), that freeze stays owned by
	// the retry loop.
	selfFrozen := !n.frozen[req.ID]
	if selfFrozen {
		n.frozen[req.ID] = true
	}
	n.mu.Unlock()
	defer func() {
		if selfFrozen {
			n.mu.Lock()
			delete(n.frozen, req.ID)
			n.mu.Unlock()
		}
	}()

	o, err := most.DecodeObjectJSON(n.srv.DB(), req.Object)
	if err != nil {
		n.mu.Lock()
		if req.Version > fence && n.fences[req.ID] == req.Version {
			n.fences[req.ID] = fence
		}
		n.mu.Unlock()
		return nil, fmt.Errorf("cluster: handoff decode %s: %w", req.ID, err)
	}
	// Replace any local copy.  The pre-delete carries no provenance on
	// purpose: if the node crashes between delete and insert, recovery
	// finds no receipt and no partial for the request, the sender's retry
	// re-executes from the top, and the (now absent) object inserts
	// cleanly.  Only the insert is stamped, so a crash after it rolls the
	// retry forward without re-applying.
	if _, ok := n.srv.DB().Get(o.ID()); ok {
		if err := n.srv.DB().Delete(o.ID()); err != nil {
			return nil, fmt.Errorf("cluster: handoff replace %s: %w", req.ID, err)
		}
	}
	if err := n.srv.DB().InsertProv(o, prov); err != nil {
		return nil, fmt.Errorf("cluster: handoff insert %s: %w", req.ID, err)
	}
	// Only now that the insert is committed does the departure record go:
	// dropping it earlier would leave a window with neither possession nor
	// a forwarding address (and a decode error above would have destroyed
	// it for nothing).  A stale tombstone is harmless in the meantime —
	// possession wins in RouteOp.
	n.mu.Lock()
	delete(n.tomb, req.ID)
	n.mu.Unlock()
	n.handoffsIn.Add(1)
	return &wire.HandoffResp{Accepted: true, Now: n.srv.DB().Now()}, nil
}

// Relay forwards a wrong-node batch to its owner on behalf of the origin
// client.
func (n *Node) Relay(addr string, req *wire.ForwardReq) (*wire.UpdateBatchResp, error) {
	cl, err := n.peerClient(addr)
	if err != nil {
		return nil, err
	}
	resp, err := cl.Forward(req)
	if err != nil {
		var se *client.ServerError
		if errors.As(err, &se) {
			return nil, &server.RelayError{Code: se.Code, Msg: se.Msg, Addr: se.Addr}
		}
		return nil, err
	}
	return &resp, nil
}

// AfterCommit scans for zone exits once a mutating request has committed
// and released the commit lock.  touched lists the batch's object IDs;
// nil means a rebalance barrier — scan the whole shard.  Handoffs run to
// completion (or give up for this round) before returning, so when a
// quiesced cluster answers a query no transfer is still in flight.
func (n *Node) AfterCommit(touched []string) {
	zm := n.zm.Load()
	if zm == nil {
		return
	}
	now := n.srv.DB().Now()
	type mover struct {
		o    *most.Object
		dest string
	}
	var movers []mover
	consider := func(o *most.Object) {
		if zm.IsReplicated(o.Class().Name()) {
			return
		}
		p, err := o.PositionAt(now)
		if err != nil {
			return
		}
		if dest := zm.OwnerAt(p); dest != "" && dest != n.name {
			movers = append(movers, mover{o, dest})
		}
	}
	if touched == nil {
		for _, o := range n.srv.DB().Objects("") {
			consider(o)
		}
	} else {
		for _, id := range touched {
			if o, ok := n.srv.DB().Get(most.ObjectID(id)); ok {
				consider(o)
			}
		}
	}
	// Transfers are independent (one object never has two movers — the
	// frozen flag guards the retry loop), so fan them out: pipelined peer
	// connections let the receiver commit back-to-back transfers without a
	// round trip between each, which is what keeps the rebalance barrier
	// short when a whole seam's worth of objects crosses at once.
	var wg sync.WaitGroup
	for _, m := range movers {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.handoff(m.o, m.dest)
		}()
	}
	wg.Wait()
}

// handoff transfers one object to dest: freeze, send fenced, delete on
// acknowledgement.  A transport failure leaves the object frozen and
// parked as an in-doubt transfer — the receiver may have applied it, so
// no write may land here until the retry loop gets an answer.
func (n *Node) handoff(o *most.Object, dest string) {
	id := string(o.ID())
	n.mu.Lock()
	if n.frozen[id] {
		n.mu.Unlock()
		return
	}
	n.frozen[id] = true
	ver := n.fences[id] + 1
	n.mu.Unlock()

	doc, err := most.EncodeObjectJSON(o)
	if err != nil {
		n.mu.Lock()
		delete(n.frozen, id)
		n.mu.Unlock()
		return
	}
	if n.send(id, ver, doc, dest) != nil {
		n.mu.Lock()
		n.pend[id] = pendXfer{ver: ver, doc: doc, dest: dest}
		n.mu.Unlock()
	}
}

// send pushes one fenced transfer and, on any acknowledgement — accepted
// or duplicate, either way the receiver vouches for the object's lineage
// — releases the local copy.  The delete holds the commit lock shared,
// so a checkpoint never splits it from the WAL records around it.  A
// non-nil return means the receiver never answered; the caller keeps the
// transfer in doubt.
func (n *Node) send(id string, ver uint64, doc []byte, dest string) error {
	cl, err := n.peerClient(dest)
	if err != nil {
		return err
	}
	resp, err := cl.Handoff(&wire.HandoffReq{ID: id, Version: ver, From: n.name, Object: doc})
	if err != nil {
		return err
	}
	n.srv.WithCommitLock(func() {
		n.srv.DB().Delete(most.ObjectID(id))
		n.mu.Lock()
		n.tomb[id] = dest
		if ver > n.fences[id] {
			n.fences[id] = ver
		}
		delete(n.frozen, id)
		delete(n.pend, id)
		n.mu.Unlock()
	})
	if resp.Accepted {
		n.handoffsOut.Add(1)
	} else {
		n.bounces.Add(1)
	}
	return nil
}

// Pending returns the number of in-doubt transfers parked on the node.
func (n *Node) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pend)
}

// Quarantine freezes every out-of-zone partitioned object a recovered
// node still holds and parks each as an in-doubt transfer to its zone
// owner.  A crash wipes the fences and the pending set, so a recovered
// node cannot know which of those objects were mid-handoff when it died
// — the receiver may hold an acknowledged copy already.  Freezing them
// until the owner answers restores the no-lost-writes guarantee: no
// update can land on a copy that a duplicate acknowledgement would then
// release.  Returns the number of objects quarantined.
func (n *Node) Quarantine() (int, error) {
	zm := n.zm.Load()
	if zm == nil {
		return 0, errors.New("cluster: quarantine before zone map installed")
	}
	db := n.srv.DB()
	now := db.Now()
	count := 0
	for _, o := range db.Objects("") {
		if zm.IsReplicated(o.Class().Name()) {
			continue
		}
		p, err := o.PositionAt(now)
		if err != nil {
			continue
		}
		dest := zm.OwnerAt(p)
		if dest == "" || dest == n.name {
			continue
		}
		doc, err := most.EncodeObjectJSON(o)
		if err != nil {
			continue
		}
		id := string(o.ID())
		n.mu.Lock()
		if !n.frozen[id] {
			n.frozen[id] = true
			n.pend[id] = pendXfer{ver: n.fences[id] + 1, doc: doc, dest: dest}
			count++
		}
		n.mu.Unlock()
	}
	return count, nil
}

// peerClient returns (dialing on first use) the reliable client for a
// peer node.  Peer sessions authenticate as peers (HelloReq.Peer) so the
// server raises their frame bound, and carry a per-boot client identity
// so request IDs never collide with a previous incarnation's receipts.
func (n *Node) peerClient(addr string) (*client.Client, error) {
	n.pmu.Lock()
	defer n.pmu.Unlock()
	if cl, ok := n.peers[addr]; ok {
		return cl, nil
	}
	// The retry budget is deliberately modest: a transfer that cannot
	// reach its receiver (partition, crash) is not worth stalling the
	// commit path for — the object stays owned here and the next
	// rebalance barrier retries the whole handoff.
	opts := []client.Option{
		client.WithClientID("peer:" + n.name + ":" + n.nonce),
		client.WithPeer(),
		client.WithRetries(25),
		client.WithTimeout(10 * time.Second),
		client.WithBackoff(2*time.Millisecond, 100*time.Millisecond),
	}
	if n.dial != nil {
		opts = append(opts, client.WithDialer(n.dial))
	}
	cl, err := client.Dial(addr, opts...)
	if err != nil {
		return nil, err
	}
	n.peers[addr] = cl
	return cl, nil
}

// closePeers stops the in-doubt retry loop and tears down the node's
// peer connections (cluster shutdown).
func (n *Node) closePeers() {
	n.retryOnce.Do(func() { close(n.retryStop) })
	n.retryWG.Wait()
	n.pmu.Lock()
	defer n.pmu.Unlock()
	for addr, cl := range n.peers {
		cl.Close()
		delete(n.peers, addr)
	}
}
