package city

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/temporal"
)

// This file is the city-scale arm of the differential-oracle
// discipline (internal/query/oracle_test.go): a full city scenario is
// replayed tick by tick and EVERY catalog template — instantaneous and
// continuous — is cross-checked against a from-scratch naive
// evaluation (fresh snapshot, no normalization, no index, sequential)
// at every tick, across multiple seeds.  Zero divergence is the gate
// the city benchmark rides on.
//
// Window alignment: Answer(CQ) is anchored at its last reevaluation,
// so exact equality with an evaluation anchored at Now requires a
// relevant update every tick for every class a CQ ranges over.  The
// driver guarantees that with per-class "stirrers": if the schedule
// has no Cars (or Buses) event this tick, it re-issues one object's
// current motion vector — a semantic no-op that re-anchors the CQs.

// naiveCityEval is the definitional from-scratch evaluation.
func naiveCityEval(t *testing.T, db *most.Database, q *ftl.Query, regions map[string]geom.Polygon, horizon temporal.Tick) *eval.Relation {
	t.Helper()
	ctx := &eval.Context{
		Now:     db.Now(),
		Horizon: horizon,
		Objects: db.Snapshot(),
		Regions: regions,
		Domains: map[string][]eval.Val{},
	}
	if err := ctx.BindDomains(q, eval.IDsOf(db)); err != nil {
		t.Fatalf("naive bind: %v", err)
	}
	rel, err := eval.EvalQuery(q, ctx)
	if err != nil {
		t.Fatalf("naive eval: %v", err)
	}
	return rel
}

// rowsKey renders presented rows as a sorted multiset key.
func rowsKey(rows [][]eval.Val) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.String())
			b.WriteByte(0)
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x01")
}

func presentKey(rows []query.Row) string {
	vals := make([][]eval.Val, len(rows))
	for i, r := range rows {
		vals[i] = r
	}
	return rowsKey(vals)
}

func TestCityCorrectnessOracle(t *testing.T) {
	seeds := []int64{11, 12}
	ticks := temporal.Tick(36)
	if testing.Short() {
		seeds = []int64{11}
		ticks = 16
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCityOracle(t, seed, ticks)
		})
	}
}

func runCityOracle(t *testing.T, seed int64, ticks temporal.Tick) {
	c, err := Generate(Spec{
		Seed: seed, Cars: 150, Buses: 4,
		GridW: 8, GridH: 8, DistrictsX: 2, DistrictsY: 2, POIsPerDistrict: 2,
		Ticks: ticks, Horizon: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := c.Database()
	if err != nil {
		t.Fatal(err)
	}
	cat := c.Catalog()
	eng := query.NewEngine(db)
	opts := query.Options{Horizon: c.Spec.Horizon, Regions: cat.Regions}

	type instQ struct {
		tpl Template
		q   *ftl.Query
	}
	var insts []instQ
	type contQ struct {
		tpl Template
		q   *ftl.Query
		cq  *query.Continuous
	}
	var conts []contQ
	for _, tpl := range cat.Templates {
		q, err := ftl.Parse(tpl.Src)
		if err != nil {
			t.Fatalf("%s: %v", tpl.Name, err)
		}
		if tpl.Kind == Instantaneous {
			insts = append(insts, instQ{tpl, q})
			continue
		}
		cq, err := eng.Continuous(q, opts)
		if err != nil {
			t.Fatalf("%s: %v", tpl.Name, err)
		}
		defer cq.Cancel()
		conts = append(conts, contQ{tpl, q, cq})
	}

	// Group the schedule by tick and track each object's last vector
	// for the stirrers.
	byTick := map[temporal.Tick][]int{}
	for i, e := range c.Events {
		byTick[e.Tick] = append(byTick[e.Tick], i)
	}
	lastVec := map[most.ObjectID]geom.Vector{}
	carStir := c.Cars[0].ID
	busStir := most.ObjectID(c.Buses[0].Plate)

	for tk := temporal.Tick(1); tk <= ticks; tk++ {
		db.Advance(1)
		carsTouched, busesTouched := false, false
		for _, i := range byTick[tk] {
			e := c.Events[i]
			if err := db.SetMotion(e.Object, e.Vector); err != nil {
				t.Fatalf("tick %d: %v", tk, err)
			}
			lastVec[e.Object] = e.Vector
			if strings.HasPrefix(string(e.Object), "car-") {
				carsTouched = true
			} else {
				busesTouched = true
			}
		}
		if !carsTouched {
			if err := db.SetMotion(carStir, lastVec[carStir]); err != nil {
				t.Fatal(err)
			}
		}
		if !busesTouched {
			if err := db.SetMotion(busStir, lastVec[busStir]); err != nil {
				t.Fatal(err)
			}
		}

		for _, iq := range insts {
			got, err := eng.Instantaneous(iq.q, opts)
			if err != nil {
				t.Fatalf("tick %d: %s: %v", tk, iq.tpl.Name, err)
			}
			want := naiveCityEval(t, db, iq.q, cat.Regions, c.Spec.Horizon).At(db.Now())
			if g, w := presentKey(got), rowsKey(want); g != w {
				t.Fatalf("tick %d: %s diverged from naive oracle:\n  engine: %q\n  naive:  %q",
					tk, iq.tpl.Name, g, w)
			}
		}
		// Continuous queries present per tick (§2.3); Current(tk) is the
		// contract surface, exactly as in oracle_test.go — Answer(CQ)
		// itself is anchored per-row at the last maintenance touching
		// that row, so full-relation interval equality with a
		// from-scratch evaluation is not the invariant.
		for _, cq := range conts {
			rows, err := cq.cq.Current(db.Now())
			if err != nil {
				t.Fatalf("tick %d: %s: %v", tk, cq.tpl.Name, err)
			}
			want := naiveCityEval(t, db, cq.q, cat.Regions, c.Spec.Horizon).At(db.Now())
			if g, w := presentKey(rows), rowsKey(want); g != w {
				t.Fatalf("tick %d: CQ %s diverged from naive oracle:\n  engine: %q\n  naive:  %q",
					tk, cq.tpl.Name, g, w)
			}
		}
	}
}
