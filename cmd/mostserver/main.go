// mostserver serves a moving-objects database over TCP using the MOST wire
// protocol: pipelined requests, batched motion updates, FTL queries,
// snapshot save/load, and server-push streaming of continuous-query answer
// changes.  It loads the same synthetic world as mostql (a vehicle fleet
// plus the MOTELS relation, with the named regions P, Q and downtown), so
// `mostql -connect` against a fresh mostserver behaves like a local mostql.
//
// Usage:
//
//	mostserver [-addr :7654] [-n 100] [-seed 1] [-horizon 500] [-http :6060]
//	           [-proto 2] [-wal DIR] [-checkpoint-every 256] [-max-inflight 0]
//
// -proto caps the wire protocol version the server offers during the Hello
// handshake (PROTOCOL.md): 1 forces JSON payloads for every session, the
// default offers the newest implemented version (currently 2, binary) and
// lets each client negotiate down.
//
// With -wal set the server is durable: every committed mutation is
// write-ahead logged under DIR before its response is sent, and on startup
// the database — plus the idempotence receipts that make client retries
// exactly-once across a crash — is recovered from DIR's checkpoint and log.
// The synthetic world seeds only a fresh directory; a recovered one keeps
// its own state.  -checkpoint-every bounds replay time by checkpointing
// after every N mutating requests (0 = only on clean shutdown).  A failed
// recovery is fatal: the process reports the corruption and exits non-zero
// rather than serving from a guess.
//
// With -http set, /obs, /debug/vars, /debug/pprof, /healthz and /readyz are
// served on that address; /readyz answers 503 while recovering or draining.
// -max-inflight > 0 sheds requests beyond that concurrency with a
// retryable `overloaded` error instead of queueing without bound.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	mostdb "github.com/mostdb/most"
	"github.com/mostdb/most/internal/obs"
)

func main() {
	addr := flag.String("addr", ":7654", "TCP listen address")
	n := flag.Int("n", 100, "fleet size")
	seed := flag.Int64("seed", 1, "workload seed")
	horizon := flag.Int64("horizon", 500, "default query horizon (ticks)")
	httpAddr := flag.String("http", "", "serve /obs, /debug/pprof, /healthz, /readyz on this address (e.g. :6060)")
	proto := flag.Int("proto", 0, "highest wire protocol version to offer (1 = JSON only, 0 = newest)")
	walDir := flag.String("wal", "", "durable mode: write-ahead log and checkpoints under this directory")
	checkpointEvery := flag.Int("checkpoint-every", 256, "checkpoint after every N mutating requests (0 = only on clean shutdown; needs -wal)")
	maxInflight := flag.Int("max-inflight", 0, "shed requests beyond this concurrency (0 = unbounded)")
	flag.Parse()

	reg := obs.New()
	health := &obs.Health{}
	// The health endpoints come up before recovery so orchestrators can
	// watch /readyz flip starting → recovering → ready.
	if *httpAddr != "" {
		obs.Publish("mostserver", reg)
		mux := obs.NewServeMux(reg)
		health.Mount(mux)
		go http.ListenAndServe(*httpAddr, mux)
	}

	world := func() *mostdb.Database {
		db, err := mostdb.Fleet(mostdb.FleetSpec{
			N:        *n,
			Region:   mostdb.Rect(0, 0, 1000, 1000),
			MaxSpeed: 3,
			Seed:     *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mostserver:", err)
			os.Exit(1)
		}
		if err := mostdb.AddMotels(db, mostdb.MotelsSpec{N: 30, Region: mostdb.Rect(0, 0, 1000, 1000), Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, "mostserver:", err)
			os.Exit(1)
		}
		return db
	}

	cfg := mostdb.ServerConfig{
		BaseOptions: mostdb.QueryOptions{
			Horizon: mostdb.Tick(*horizon),
			Regions: map[string]mostdb.Polygon{
				"P":        mostdb.RectPolygon(100, 100, 300, 300),
				"Q":        mostdb.RectPolygon(600, 600, 900, 900),
				"downtown": mostdb.RectPolygon(400, 400, 600, 600),
			},
		},
		Reg:             reg,
		Name:            "mostserver",
		MaxProtocol:     *proto,
		Health:          health,
		MaxInflight:     *maxInflight,
		CheckpointEvery: *checkpointEvery,
	}

	var srv *mostdb.Server
	if *walDir != "" {
		durable, info, err := mostdb.NewDurableServer(*walDir, cfg, world)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mostserver: recovery from %s failed: %v\n", *walDir, err)
			fmt.Fprintln(os.Stderr, "mostserver: refusing to serve partial state; inspect wal.log / checkpoint.json or move the directory aside to reseed")
			os.Exit(1)
		}
		srv = durable
		if info.Fresh {
			fmt.Printf("mostserver: fresh durable start in %s (seeded world logged as base image)\n", *walDir)
		} else {
			records := 0
			if info.Report != nil {
				records = info.Report.Records
				if info.Report.Truncated {
					fmt.Fprintf(os.Stderr, "mostserver: wal replay stopped early (%s) — expected after a crash mid-checkpoint, state is complete\n", info.Report.Reason)
				}
			}
			fmt.Printf("mostserver: recovered %d objects at tick %d from %s (%d wal records, %d receipts, %d partials) in %s\n",
				info.Objects, info.Now, *walDir, records, info.Receipts, info.Partials, info.Elapsed.Round(time.Millisecond))
		}
	} else {
		db := world()
		eng := mostdb.NewEngine(db)
		db.Instrument(reg)
		eng.Instrument(reg)
		srv = mostdb.NewServer(db, eng, cfg)
	}

	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "mostserver:", err)
		os.Exit(1)
	}
	fmt.Printf("mostserver: serving on %s; horizon %d\n", srv.Addr(), *horizon)
	if *httpAddr != "" {
		fmt.Printf("mostserver: observability on http://%s/obs, /debug/pprof/, /healthz, /readyz\n", *httpAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "mostserver: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mostserver: shutdown:", err)
		os.Exit(1)
	}
}
