package motion

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mostdb/most/internal/temporal"
)

func TestAcceleratingValueAndSlope(t *testing.T) {
	// f(t) = 3t + t^2 (slope 3, accel 2).
	f := Accelerating(3, 2)
	for _, tc := range []struct{ t, v, s float64 }{
		{0, 0, 3}, {1, 4, 5}, {2, 10, 7}, {10, 130, 23},
	} {
		if got := f.Value(tc.t); math.Abs(got-tc.v) > 1e-12 {
			t.Errorf("Value(%v) = %v, want %v", tc.t, got, tc.v)
		}
		if got := f.SlopeAt(tc.t); math.Abs(got-tc.s) > 1e-12 {
			t.Errorf("SlopeAt(%v) = %v, want %v", tc.t, got, tc.s)
		}
	}
	if Accelerating(0, 0).String() != "0" {
		t.Error("zero accelerating should normalize")
	}
	if f.IsLinear() || !Linear(3).IsLinear() {
		t.Error("IsLinear wrong")
	}
}

func TestQuadraticPiecewiseContinuity(t *testing.T) {
	// Accelerate (accel 2) for 5 ticks from rest, then cruise at the
	// reached speed 10.
	f := MustFunc(Piece{0, 0, 2}, Piece{5, 10, 0})
	if got := f.Value(5); got != 25 {
		t.Fatalf("Value(5) = %v, want 25", got)
	}
	if got := f.Value(7); got != 45 {
		t.Fatalf("Value(7) = %v, want 45", got)
	}
	if got := f.SlopeAt(4.999); math.Abs(got-9.998) > 1e-9 {
		t.Fatalf("SlopeAt(4.999) = %v", got)
	}
	if got := f.SlopeAt(6); got != 10 {
		t.Fatalf("SlopeAt(6) = %v", got)
	}
}

func TestQuadraticSegmentBounds(t *testing.T) {
	// Parabola dipping inside the span: v(t) = (t-5)^2 anchored at T0=0:
	// V0=25, Slope=-10, Accel=2 over [0,10]; min 0 at t=5.
	s := Segment{T0: 0, T1: 10, V0: 25, Slope: -10, Accel: 2}
	_, _, vMin, vMax := s.Bounds()
	if vMin != 0 || vMax != 25 {
		t.Fatalf("Bounds = [%v, %v], want [0, 25]", vMin, vMax)
	}
	// Sub re-anchors exactly.
	sub := s.Sub(3, 8)
	if math.Abs(sub.V0-4) > 1e-12 || math.Abs(sub.Slope+4) > 1e-12 || sub.Accel != 2 {
		t.Fatalf("Sub = %+v", sub)
	}
	for tt := 3.0; tt <= 8; tt += 0.5 {
		if math.Abs(sub.ValueAt(tt)-s.ValueAt(tt)) > 1e-9 {
			t.Fatalf("Sub disagrees at %v", tt)
		}
	}
}

func TestQuadraticRangeTimes(t *testing.T) {
	// v(t) = t^2/2 (accel 1): in [8, 18] for t in [4, 6].
	a := DynamicAttr{Function: Accelerating(0, 1)}
	got := a.RangeTimes(8, 18, 0, 100)
	ivs := got.Intervals()
	if len(ivs) != 1 || math.Abs(ivs[0].Lo-4) > 1e-9 || math.Abs(ivs[0].Hi-6) > 1e-9 {
		t.Fatalf("RangeTimes = %v, want [4,6]", ivs)
	}
	// A dipping parabola enters the band twice: v(t) = (t-10)^2/1 - no,
	// use V0=50, slope -10, accel 1: v(t)=50-10t+t^2/2, min 0 at t=10.
	b := DynamicAttr{Value: 50, Function: Accelerating(-10, 1)}
	got = b.RangeTimes(20, 30, 0, 100)
	if len(got.Intervals()) != 2 {
		t.Fatalf("dip RangeTimes = %v, want two crossings", got.Intervals())
	}
}

// randomQuadFunc builds a random piecewise function with acceleration.
func randomQuadFunc(r *rand.Rand) Func {
	n := 1 + r.Intn(3)
	pieces := make([]Piece, n)
	off := 0.0
	for i := range pieces {
		pieces[i] = Piece{
			Start: off,
			Slope: float64(r.Intn(11) - 5),
			Accel: float64(r.Intn(5) - 2),
		}
		off += 2 + float64(r.Intn(10))
	}
	return MustFunc(pieces...)
}

func TestQuadraticCompareTicksBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	w := temporal.Interval{Start: 0, End: 40}
	ops := []string{"<", "<=", ">", ">=", "=", "!="}
	for i := 0; i < 200; i++ {
		a := DynamicAttr{
			Value:      float64(r.Intn(41) - 20),
			UpdateTime: temporal.Tick(r.Intn(5)),
			Function:   randomQuadFunc(r),
		}
		c := float64(r.Intn(201) - 100)
		for _, op := range ops {
			got, err := a.CompareTicks(op, c, w)
			if err != nil {
				t.Fatal(err)
			}
			for tick := w.Start; tick <= w.End; tick++ {
				v := a.At(tick)
				var want bool
				switch op {
				case "<":
					want = v < c
				case "<=":
					want = v <= c
				case ">":
					want = v > c
				case ">=":
					want = v >= c
				case "=":
					want = v == c
				case "!=":
					want = v != c
				}
				if got.Contains(tick) != want {
					if math.Abs(v-c) < 1e-6 {
						continue
					}
					t.Fatalf("case %d op %s tick %d: got %v want %v (v=%v c=%v f=%s)",
						i, op, tick, got.Contains(tick), want, v, c, a.Function)
				}
			}
		}
	}
}

func TestQuadraticStringRoundTrip(t *testing.T) {
	funcs := []Func{
		Accelerating(3, 2),
		Accelerating(0, -1.5),
		MustFunc(Piece{0, 0, 2}, Piece{5, 10, 0}),
		MustFunc(Piece{0, 1, 0}, Piece{4, -2, 0.5}),
	}
	for _, f := range funcs {
		got, err := ParseFunc(f.String())
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !got.Equal(f) {
			t.Errorf("round trip %s -> %s", f, got)
		}
	}
}
