package temporal

import "sort"

// This file implements the FTL temporal operators as transformations on
// per-instantiation satisfaction sets.  For a fixed instantiation of the
// free variables, let F be the set of ticks at which subformula f holds and
// H the set at which h holds; each operator computes the set at which the
// compound formula holds.
//
// The evaluation window is the query expiry horizon (paper §2.3: "we will
// assume in this paper that a continuous query expires after a predefined
// (but very large) amount of time").  Operators that quantify over all
// future states (Always) quantify up to the end of the window.

// Nexttime returns the ticks at which "Nexttime f" holds: f holds at the
// next state of the history (paper §3.3).
func Nexttime(f Set) Set { return f.Shift(-1) }

// Eventually returns the ticks t in window w at which "Eventually f" holds:
// f is satisfied at some state t' >= t.  It is definable as true Until f
// (paper §3.3).
func Eventually(f Set, w Interval) Set {
	fw := f.Clip(w)
	out := make([]Interval, 0, fw.Len())
	for _, iv := range fw.Intervals() {
		out = append(out, Interval{Start: w.Start, End: iv.End})
	}
	return NewSet(out...)
}

// Always returns the ticks t in window w at which "Always f" holds: f is
// satisfied at all states from t (inclusive) to the end of the window.
func Always(f Set, w Interval) Set {
	if !w.Valid() {
		return Set{}
	}
	fw := f.Clip(w)
	ivs := fw.Intervals()
	if n := len(ivs); n > 0 && ivs[n-1].End >= w.End {
		return NewSet(ivs[n-1])
	}
	return Set{}
}

// EventuallyWithin returns the ticks at which "Eventually_within_c f" holds:
// f will be satisfied within c time units from the current position
// (paper §3.4).  Each f-interval [s,e] admits every t in [s-c, e].
func EventuallyWithin(f Set, c Tick, w Interval) Set {
	fw := f.Clip(w)
	out := make([]Interval, 0, fw.Len())
	for _, iv := range fw.Intervals() {
		out = append(out, Interval{Start: iv.Start.Sub(c), End: iv.End})
	}
	return NewSet(out...).Clip(w)
}

// EventuallyAfter returns the ticks at which "Eventually_after_c f" holds:
// f holds at some state at least c units in the future (paper §3.4).
// t qualifies iff some f-interval [s,e] has e >= t+c, i.e. t <= e-c.
func EventuallyAfter(f Set, c Tick, w Interval) Set {
	fw := f.Clip(w)
	last, ok := fw.Max()
	if !ok {
		return Set{}
	}
	iv, ok := NewInterval(w.Start, last.Sub(c))
	if !ok {
		return Set{}
	}
	return NewSet(iv).Clip(w)
}

// AlwaysFor returns the ticks at which "Always_for_c f" holds: f holds
// continuously for the next c units of time, i.e. on all of [t, t+c]
// (paper §3.4).  Each f-interval [s,e] contributes [s, e-c].
func AlwaysFor(f Set, c Tick, w Interval) Set {
	fw := f.Clip(w)
	out := make([]Interval, 0, fw.Len())
	for _, iv := range fw.Intervals() {
		if e := iv.End.Sub(c); e >= iv.Start {
			out = append(out, Interval{Start: iv.Start, End: e})
		}
	}
	return NewSet(out...)
}

// Until returns the ticks t in window w at which "f Until h" holds: either
// h is satisfied at t, or there is a future state w' where h is satisfied
// and until then f continues to be satisfied (paper §3.3).
//
// For each h-interval [m,n]: every t in [m,n] qualifies immediately, and a
// t < m qualifies iff f holds on all of [t, m-1], i.e. t lies in the f-run
// that covers m-1.  The union over h-intervals equals the union of the
// paper's maximal chains (see UntilChains, kept as the literal appendix
// algorithm and cross-checked in tests).
func Until(f, h Set, w Interval) Set {
	return untilBounded(f, h, MaxTick, w)
}

// UntilWithin returns the ticks at which "f until_within_c h" holds: there
// is a future instance within c units where h holds, and until then f
// continues to be satisfied (paper §3.4).
func UntilWithin(f, h Set, c Tick, w Interval) Set {
	return untilBounded(f, h, c, w)
}

func untilBounded(f, h Set, c Tick, w Interval) Set {
	fw := f.Clip(w)
	hw := h.Clip(w)
	runs := fw.Intervals()
	out := make([]Interval, 0, 2*hw.Len())
	for _, hv := range hw.Intervals() {
		out = append(out, hv)
		if hv.Start == MinTick {
			continue
		}
		prev := hv.Start - 1
		// Find the f-run containing prev: first run with End >= prev.
		i := sort.Search(len(runs), func(i int) bool { return runs[i].End >= prev })
		if i == len(runs) || runs[i].Start > prev {
			continue
		}
		start := runs[i].Start
		if withWitness := hv.Start.Sub(c); withWitness > start {
			start = withWitness
		}
		if start <= prev {
			out = append(out, Interval{Start: start, End: prev})
		}
	}
	return NewSet(out...)
}
