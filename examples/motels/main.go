// Motels: the paper's §1 continuous query — a moving car asks "display
// motels (with availability and cost) within a radius of 5 miles", the
// answer is computed once as a set of (motel, begin, end) tuples, and the
// display changes as the car moves without the query ever being
// reevaluated.  When the car changes course, the materialized answer is
// revised automatically.
package main

import (
	"fmt"
	"log"

	mostdb "github.com/mostdb/most"
)

func main() {
	// A highway stretch with motels scattered alongside.
	db := mostdb.NewDatabase()
	vehicles, err := mostdb.NewClass("Vehicles", true)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.DefineClass(vehicles); err != nil {
		log.Fatal(err)
	}
	if err := mostdb.AddMotels(db, mostdb.MotelsSpec{
		N:      40,
		Region: mostdb.Rect(0, -4, 200, 4),
		Seed:   7,
	}); err != nil {
		log.Fatal(err)
	}

	// The car drives east along the highway at 1 mile per minute.
	car, _ := mostdb.NewObject("car", vehicles)
	car, err = car.WithPosition(mostdb.MovingFrom(mostdb.Point{X: 0, Y: 0}, mostdb.Vector{X: 1}, 0))
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Insert(car); err != nil {
		log.Fatal(err)
	}

	engine := mostdb.NewEngine(db)
	q := mostdb.MustParseQuery(`
		RETRIEVE m, c FROM Motels m, Vehicles c
		WHERE DIST(m, c) <= 5 AND m.AVAILABLE = TRUE`)
	cq, err := engine.Continuous(q, mostdb.QueryOptions{Horizon: 200})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("single evaluation; display as the car moves:")
	for _, t := range []mostdb.Tick{0, 50, 100, 150} {
		rows, err := cq.Current(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  t=%-4d motels within 5 miles: %d\n", t, len(rows))
	}
	fmt.Printf("evaluations so far: %d (one)\n", engine.Evaluations())

	// The materialized answer: (motel, interval) tuples.
	rel0, err := cq.Answer()
	if err != nil {
		log.Fatal(err)
	}
	answers0 := rel0.Answers()
	fmt.Printf("Answer(CQ) holds %d (motel, interval) tuples; first few:\n", len(answers0))
	for i, a := range answers0 {
		if i >= 3 {
			break
		}
		fmt.Printf("  %s drive-by during %s\n", a.Vals[0], a.Interval)
	}

	// At t=60 the driver leaves the highway heading north; the answer set
	// is revised on this single update.
	db.Advance(60)
	if err := db.SetMotion("car", mostdb.Vector{Y: 1}); err != nil {
		log.Fatal(err)
	}
	rows, err := cq.Current(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after turning north at t=60: motels near the car at t=100: %d\n", len(rows))
	fmt.Printf("evaluations total: %d (reevaluated once, on the update)\n", engine.Evaluations())
}
