package query

import (
	"encoding/json"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/obs"
)

// instrumentedScenario runs all three query types (§2.3) against a fully
// instrumented engine, database and motion index, and returns the registry.
func instrumentedScenario(t *testing.T) *obs.Registry {
	t.Helper()
	db, cls := testDB(t)
	reg := obs.New()
	db.Instrument(reg)
	e := NewEngine(db)
	e.Instrument(reg)

	ix := index.NewMotionIndex(0, 256)
	ix.Instrument(reg)
	for i := 0; i < 20; i++ {
		id := most.ObjectID(string(rune('a'+i)) + "-car")
		p := geom.Point{X: float64(i * 3)}
		v := geom.Vector{X: 1}
		addCar(t, db, cls, id, p, v)
		if err := ix.Insert(id, motion.MovingFrom(p, v, 0)); err != nil {
			t.Fatal(err)
		}
	}

	opts := Options{Horizon: 100, Regions: regionP(), MotionIndex: ix}

	// Instantaneous, through the text entry point so the parse stage runs.
	if _, err := e.Query(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`, opts); err != nil {
		t.Fatal(err)
	}

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`)
	cq, err := e.Continuous(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := e.Persistent(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A real motion update forces both registered queries to reevaluate,
	// and gives the persistent query a logged history to synthesize.
	db.Tick()
	if err := db.SetMotion("a-car", geom.Vector{X: 2}); err != nil {
		t.Fatal(err)
	}
	if o, ok := db.Get("a-car"); ok {
		if pos, err := o.Position(); err == nil {
			if err := ix.Update("a-car", pos, db.Now()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := cq.Current(db.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Current(); err != nil {
		t.Fatal(err)
	}
	cq.Cancel()
	pq.Cancel()
	return reg
}

// TestObsSnapshotSchema locks in the metrics schema BENCH_obs.json and the
// /obs endpoint serve: after one run of each query type, the snapshot holds
// the per-type counters and latency histograms, and every query type has a
// non-empty span tree with the expected stage children.
func TestObsSnapshotSchema(t *testing.T) {
	reg := instrumentedScenario(t)
	snap := reg.Snapshot()

	for _, c := range []string{
		"query.instantaneous",
		"query.continuous",
		"query.persistent",
		"query.continuous.reevals",
		"query.persistent.reevals",
		"eval.subformulas",
		"eval.instantiations",
		"index.probes",
		"index.inserts",
		"index.updates",
		"db.commits",
		"db.snapshots",
	} {
		if snap.Counters[c] <= 0 {
			t.Errorf("counter %q = %d, want > 0", c, snap.Counters[c])
		}
	}

	for _, h := range []string{
		"query.instantaneous_ns",
		"query.continuous_ns",
		"query.persistent_ns",
		"db.commit_ns",
	} {
		hs, ok := snap.Histograms[h]
		if !ok || hs.Count <= 0 {
			t.Errorf("histogram %q missing or empty (count=%d)", h, hs.Count)
		}
	}

	// Every query type must leave a non-empty span tree with its stages.
	stages := map[string][]string{
		"query.instantaneous": {"parse", "rewrite", "snapshot", "bind", "subformula_eval", "index_probe", "answer_assembly"},
		"query.continuous":    {"rewrite", "snapshot", "bind", "subformula_eval", "index_probe", "answer_assembly"},
		"query.persistent":    {"synthesize_history", "rewrite", "bind", "subformula_eval", "answer_assembly"},
	}
	for root, want := range stages {
		tr, ok := snap.Traces[root]
		if !ok {
			t.Errorf("no trace for %q", root)
			continue
		}
		if len(tr.Children) == 0 {
			t.Errorf("trace %q has no children", root)
		}
		if tr.DurationNs <= 0 {
			t.Errorf("trace %q duration = %d, want > 0", root, tr.DurationNs)
		}
		for _, stage := range want {
			if _, ok := tr.Find(stage); !ok {
				t.Errorf("trace %q missing stage span %q", root, stage)
			}
		}
	}
	if tr, ok := snap.Traces["query.instantaneous"]; ok {
		if probe, found := tr.Find("index_probe"); found && probe.Attrs["candidates"] <= 0 {
			t.Errorf("index_probe candidates attr = %d, want > 0", probe.Attrs["candidates"])
		}
	}

	// The snapshot must round-trip as JSON — this is the wire schema of
	// /obs and the Snapshot field of BENCH_obs.json.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != len(snap.Counters) || len(back.Traces) != len(snap.Traces) {
		t.Errorf("JSON round-trip lost entries: counters %d->%d traces %d->%d",
			len(snap.Counters), len(back.Counters), len(snap.Traces), len(back.Traces))
	}
	// And the expvar String() form must itself be valid JSON of the schema.
	var fromString obs.Snapshot
	if err := json.Unmarshal([]byte(reg.String()), &fromString); err != nil {
		t.Fatalf("Registry.String() is not valid snapshot JSON: %v", err)
	}
}

// TestObsDetach verifies Instrument(nil) detaches cleanly: queries keep
// answering and the registry stops moving.
func TestObsDetach(t *testing.T) {
	db, cls := testDB(t)
	reg := obs.New()
	db.Instrument(reg)
	e := NewEngine(db)
	e.Instrument(reg)
	addCar(t, db, cls, "v1", geom.Point{X: 15}, geom.Vector{})

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`)
	if _, err := e.Instantaneous(q, Options{Horizon: 50, Regions: regionP()}); err != nil {
		t.Fatal(err)
	}
	before := reg.Snapshot().Counters["query.instantaneous"]
	if before != 1 {
		t.Fatalf("query.instantaneous = %d, want 1", before)
	}

	e.Instrument(nil)
	db.Instrument(nil)
	rows, err := e.Instantaneous(q, Options{Horizon: 50, Regions: regionP()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("detached query returned %d rows, want 1", len(rows))
	}
	if after := reg.Snapshot().Counters["query.instantaneous"]; after != before {
		t.Errorf("detached engine still counted: %d -> %d", before, after)
	}
}
