package most

// Tests for the WAL features the durable server is built on: opaque note
// records, provenance-stamped mutations surfaced through WALObserver at
// replay, and RebaseWAL (snapshot-load over a live log).

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/temporal"
)

func TestWALNotesReplayOpaque(t *testing.T) {
	var buf bytes.Buffer
	db, c := newTestDB(t)
	w := NewWAL(&buf)
	if err := db.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	insertCar(t, db, c, "car1", geom.Point{X: 1}, geom.Vector{X: 1})
	if err := w.AppendNote("req", []byte(`{"c":"alice","r":7}`)); err != nil {
		t.Fatal(err)
	}
	db.Advance(2)
	if err := w.AppendNote("req", []byte(`{"c":"alice","r":8}`)); err != nil {
		t.Fatal(err)
	}

	var notes []string
	got, rep, err := RecoverObserved(nil, buf.Bytes(), &WALObserver{
		Note: func(tag string, data []byte) {
			notes = append(notes, tag+":"+string(data))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated {
		t.Fatalf("unexpected truncation: %s", rep.Reason)
	}
	if len(notes) != 2 || notes[0] != `req:{"c":"alice","r":7}` || notes[1] != `req:{"c":"alice","r":8}` {
		t.Fatalf("notes = %q", notes)
	}
	if string(snap(t, got)) != string(snap(t, db)) {
		t.Fatal("notes changed replayed state")
	}
}

func TestWALProvSurfacedPerMutationAtReplay(t *testing.T) {
	var buf bytes.Buffer
	db, c := newTestDB(t)
	w := NewWAL(&buf)
	if err := db.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	insertCar(t, db, c, "car1", geom.Point{X: 1}, geom.Vector{X: 1})
	if err := db.SetMotionProv("car1", geom.Vector{X: 2}, &Prov{Client: "alice", Req: 5, Op: 0}); err != nil {
		t.Fatal(err)
	}
	if err := db.SetStaticProv("car1", "PRICE", Float(42), &Prov{Client: "alice", Req: 5, Op: 1}); err != nil {
		t.Fatal(err)
	}
	db.AdvanceProv(3, &Prov{Client: "bob", Req: 1, Op: 0})

	var seen []string
	got, _, err := RecoverObserved(nil, buf.Bytes(), &WALObserver{
		Applied: func(p Prov, now temporal.Tick) {
			seen = append(seen, fmt.Sprintf("%s/%d/%d@%d", p.Client, p.Req, p.Op, now))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The unstamped insert is replayed but not surfaced; the three stamped
	// mutations are, in order, with the clock at application time.
	want := []string{"alice/5/0@0", "alice/5/1@0", "bob/1/0@3"}
	if len(seen) != len(want) {
		t.Fatalf("surfaced %q, want %q", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("surfaced[%d] = %q, want %q", i, seen[i], want[i])
		}
	}
	if string(snap(t, got)) != string(snap(t, db)) {
		t.Fatal("provenance changed replayed state")
	}
}

func TestRebaseWALReplaysLoadedSnapshot(t *testing.T) {
	// World A runs for a while on a WAL; then its database is replaced
	// wholesale by world B (the SnapshotLoad path).  RebaseWAL must leave
	// the log replaying to exactly B's state — the pre-load records are
	// dead weight behind the reset record.
	var buf bytes.Buffer
	dbA, cA := newTestDB(t)
	w := NewWAL(&buf)
	if err := dbA.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	buildScript(t, dbA, cA)

	dbB, cB := newTestDB(t)
	insertCar(t, dbB, cB, "fresh", geom.Point{X: 7, Y: 7}, geom.Vector{Y: -1})
	dbB.Advance(11)

	moved := dbA.DetachWAL()
	if moved != w {
		t.Fatal("DetachWAL returned a different handle")
	}
	if err := dbB.RebaseWAL(moved); err != nil {
		t.Fatal(err)
	}
	// Post-rebase traffic lands in the same log.
	if err := dbB.SetMotion("fresh", geom.Vector{X: 4}); err != nil {
		t.Fatal(err)
	}
	dbB.Advance(2)

	got, rep, err := Recover(nil, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated {
		t.Fatalf("unexpected truncation: %s", rep.Reason)
	}
	if string(snap(t, got)) != string(snap(t, dbB)) {
		t.Fatal("replay after rebase does not match the loaded database")
	}
	if _, ok := got.Get("car1"); ok {
		t.Fatal("pre-rebase object survived the reset record")
	}
}
