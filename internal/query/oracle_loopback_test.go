package query_test

// The loopback network oracle: the differential-oracle discipline of
// oracle_test.go extended across the wire.  Two identical seeded fleets are
// driven in lockstep — one in-process, one behind a real TCP server — with
// every clock advance and motion update applied to both.  After every tick
// the test demands bit-identical answers from both sides:
//
//   - instantaneous queries through client.Query against the in-process
//     engine's rows (float64 values survive the JSON wire encoding exactly;
//     the comparison keys use shortest-round-trip formatting);
//   - the streamed continuous query's pushed Answer(CQ) against the
//     in-process Continuous relation, including the notification stream:
//     after each relevant update the subscription must converge to the
//     in-process answer through server-push notifications alone.
//
// This lives in an external test package (query_test) because the server
// imports internal/query; the oracle itself only drives public APIs.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/mostdb/most/internal/city"
	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/server"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/wire"
	"github.com/mostdb/most/internal/workload"
)

// canonRows renders presented rows as a sorted multiset key, mirroring
// wire.CanonicalAnswers for interval-free row sets.
func canonRows(rows [][]wire.Value) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.String())
			b.WriteByte(0)
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x01")
}

func TestLoopbackOracle(t *testing.T) {
	seeds := []int64{1, 2}
	ticks := temporal.Tick(80)
	if testing.Short() {
		seeds = []int64{1}
		ticks = 30
	}
	// The oracle runs at both protocol versions: the v2 binary codec must
	// stay bit-identical to in-process evaluation exactly like v1 JSON.
	for _, proto := range []int{1, 2} {
		for _, seed := range seeds {
			proto, seed := proto, seed
			t.Run(fmt.Sprintf("proto=%d/seed=%d", proto, seed), func(t *testing.T) {
				runLoopbackOracle(t, proto, seed, ticks)
			})
		}
	}
}

func runLoopbackOracle(t *testing.T, proto int, seed int64, ticks temporal.Tick) {
	const (
		nVehicles = 6
		horizon   = temporal.Tick(50)
	)
	spec := workload.FleetSpec{
		N:        nVehicles,
		Region:   geom.Rect{Max: geom.Point{X: 100, Y: 100}},
		MaxSpeed: 2,
		Seed:     seed,
	}
	regions := map[string]geom.Polygon{"P": geom.RectPolygon(20, 20, 70, 70)}
	opts := query.Options{Horizon: horizon, Regions: regions}

	servedDB, err := workload.Fleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	localDB, err := workload.Fleet(spec)
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(servedDB, query.NewEngine(servedDB), server.Config{BaseOptions: opts})
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := client.Dial(srv.Addr().String(), client.WithProtocol(proto))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Protocol(); got != proto {
		t.Fatalf("negotiated protocol %d, want %d", got, proto)
	}

	localEng := query.NewEngine(localDB)
	const cqSrc = `RETRIEVE o FROM Vehicles o WHERE Eventually INSIDE(o, P)`
	const instSrc = `RETRIEVE o, n FROM Vehicles o, Vehicles n WHERE ALWAYS FOR 10 DIST(o, n) <= 40`
	localCQ, err := localEng.Continuous(ftl.MustParse(cqSrc), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer localCQ.Cancel()
	sub, err := c.Subscribe(cqSrc, horizon)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// awaitCQ polls the subscription until its pushed answer matches the
	// in-process Answer(CQ) bit for bit; pump coalescing makes the exact
	// notification count nondeterministic, so convergence — not frame
	// count — is the contract.
	awaitCQ := func(tk temporal.Tick) uint64 {
		t.Helper()
		rel, err := localCQ.Answer()
		if err != nil {
			t.Fatalf("tick %d: local answer: %v", tk, err)
		}
		want := wire.CanonicalAnswers(wire.FromRelation(rel))
		deadline := time.After(10 * time.Second)
		for {
			ans, seq, err := sub.Answer()
			if err != nil {
				t.Fatalf("tick %d: remote answer: %v", tk, err)
			}
			if wire.CanonicalAnswers(ans) == want {
				return seq
			}
			select {
			case <-sub.Updates():
			case <-deadline:
				t.Fatalf("tick %d: remote Answer(CQ) never converged:\n  remote: %q\n  local:  %q",
					tk, wire.CanonicalAnswers(ans), want)
			}
		}
	}
	awaitCQ(0)

	rng := rand.New(rand.NewSource(seed * 7919))
	vid := func(i int) string { return fmt.Sprintf("car-%05d", i) }
	var lastSeq uint64

	for tk := temporal.Tick(1); tk <= ticks; tk++ {
		if _, err := c.Advance(1); err != nil {
			t.Fatal(err)
		}
		localDB.Advance(1)

		// Identical update streams on both sides, at least one per tick.
		n := 1 + rng.Intn(2)
		for j := 0; j < n; j++ {
			id := rng.Intn(nVehicles)
			v := geom.Vector{X: (rng.Float64() - 0.5) * 4, Y: (rng.Float64() - 0.5) * 4}
			if rng.Intn(10) == 0 {
				v = geom.Vector{}
			}
			if err := c.SetMotion(vid(id), v.X, v.Y); err != nil {
				t.Fatal(err)
			}
			if err := localDB.SetMotion(most.ObjectID(vid(id)), v); err != nil {
				t.Fatal(err)
			}
		}

		// Instantaneous queries answer identically through the wire.
		now, remoteRows, err := c.Query(instSrc, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if now != localDB.Now() {
			t.Fatalf("tick %d: clocks diverged: remote %d, local %d", tk, now, localDB.Now())
		}
		localRows, err := localEng.Query(instSrc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := canonRows(remoteRows), canonRows(wireRows(localRows)); got != want {
			t.Fatalf("tick %d: instantaneous answers diverged:\n  remote: %q\n  local:  %q", tk, got, want)
		}

		// The streamed Answer(CQ) converges to the in-process one.
		lastSeq = awaitCQ(tk)
	}
	if lastSeq == 0 {
		t.Fatal("subscription saw no pushed notifications over the whole run")
	}
}

// wireRows converts engine rows to wire values for comparison.
func wireRows(rows []query.Row) [][]wire.Value {
	out := make([][]wire.Value, len(rows))
	for i, r := range rows {
		vals := make([]wire.Value, len(r))
		for j, v := range r {
			vals[j] = wire.FromVal(v)
		}
		out[i] = vals
	}
	return out
}

// TestLoopbackCityOracle runs the loopback oracle over a small city
// scenario (internal/city): a seeded road-network city is replayed in
// lockstep against a served and a local database, and every template of
// the city's query catalog is answered three ways — remote client, local
// engine, and a from-scratch naive evaluation — demanding bit-identical
// presented rows each tick.  Every continuous template is additionally
// subscribed remotely and must converge, through server-push
// notifications alone, to the local Answer(CQ) after each tick's updates.
func TestLoopbackCityOracle(t *testing.T) {
	ticks := temporal.Tick(12)
	if testing.Short() {
		ticks = 6
	}
	spec := city.Spec{
		Seed: 5, Cars: 60, Buses: 3,
		GridW: 6, GridH: 6, DistrictsX: 2, DistrictsY: 2, POIsPerDistrict: 1,
		Ticks: ticks, Horizon: 12,
	}
	cty, err := city.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	servedDB, err := cty.Database()
	if err != nil {
		t.Fatal(err)
	}
	localDB, err := cty.Database()
	if err != nil {
		t.Fatal(err)
	}
	cat := cty.Catalog()
	opts := query.Options{Horizon: spec.Horizon, Regions: cat.Regions}

	srv := server.New(servedDB, query.NewEngine(servedDB), server.Config{BaseOptions: opts})
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	localEng := query.NewEngine(localDB)

	// naive is the definitional from-scratch evaluation on the local
	// database: fresh snapshot, no rewrite state, sequential.
	naive := func(src string) *eval.Relation {
		t.Helper()
		q := ftl.MustParse(src)
		ctx := &eval.Context{
			Now:     localDB.Now(),
			Horizon: spec.Horizon,
			Objects: localDB.Snapshot(),
			Regions: cat.Regions,
			Domains: map[string][]eval.Val{},
		}
		if err := ctx.BindDomains(q, eval.IDsOf(localDB)); err != nil {
			t.Fatalf("naive bind: %v", err)
		}
		rel, err := eval.EvalQuery(q, ctx)
		if err != nil {
			t.Fatalf("naive eval: %v", err)
		}
		return rel
	}
	naiveKey := func(src string) string {
		var rows [][]wire.Value
		for _, vals := range naive(src).At(localDB.Now()) {
			row := make([]wire.Value, len(vals))
			for j, v := range vals {
				row[j] = wire.FromVal(v)
			}
			rows = append(rows, row)
		}
		return canonRows(rows)
	}

	type cityCQ struct {
		tpl city.Template
		cq  *query.Continuous
		sub *client.Subscription
	}
	var cqs []cityCQ
	for _, tpl := range cat.Continuous() {
		cq, err := localEng.Continuous(ftl.MustParse(tpl.Src), opts)
		if err != nil {
			t.Fatalf("%s: %v", tpl.Name, err)
		}
		defer cq.Cancel()
		sub, err := c.Subscribe(tpl.Src, spec.Horizon)
		if err != nil {
			t.Fatalf("%s: %v", tpl.Name, err)
		}
		defer sub.Close()
		cqs = append(cqs, cityCQ{tpl, cq, sub})
	}
	awaitCity := func(tk temporal.Tick, e cityCQ) {
		t.Helper()
		rel, err := e.cq.Answer()
		if err != nil {
			t.Fatalf("tick %d: %s: local answer: %v", tk, e.tpl.Name, err)
		}
		want := wire.CanonicalAnswers(wire.FromRelation(rel))
		deadline := time.After(10 * time.Second)
		for {
			ans, _, err := e.sub.Answer()
			if err != nil {
				t.Fatalf("tick %d: %s: remote answer: %v", tk, e.tpl.Name, err)
			}
			if wire.CanonicalAnswers(ans) == want {
				return
			}
			select {
			case <-e.sub.Updates():
			case <-deadline:
				t.Fatalf("tick %d: CQ %s never converged:\n  remote: %q\n  local:  %q",
					tk, e.tpl.Name, wire.CanonicalAnswers(ans), want)
			}
		}
	}

	byTick := map[temporal.Tick][]workload.UpdateEvent{}
	for _, e := range cty.Events {
		byTick[e.Tick] = append(byTick[e.Tick], e)
	}
	lastVec := map[most.ObjectID]geom.Vector{}
	carStir := cty.Cars[0].ID
	busStir := most.ObjectID(cty.Buses[0].Plate)

	for tk := temporal.Tick(1); tk <= ticks; tk++ {
		if _, err := c.Advance(1); err != nil {
			t.Fatal(err)
		}
		localDB.Advance(1)

		// Identical update streams both sides, with per-class stirrers so
		// every continuous query re-anchors every tick (window alignment,
		// see internal/city's correctness oracle).
		evs := byTick[tk]
		carsTouched, busesTouched := false, false
		for _, e := range evs {
			lastVec[e.Object] = e.Vector
			if strings.HasPrefix(string(e.Object), "car-") {
				carsTouched = true
			} else {
				busesTouched = true
			}
		}
		if !carsTouched {
			evs = append(evs, workload.UpdateEvent{Object: carStir, Vector: lastVec[carStir]})
		}
		if !busesTouched {
			evs = append(evs, workload.UpdateEvent{Object: busStir, Vector: lastVec[busStir]})
		}
		for _, e := range evs {
			if err := c.SetMotion(string(e.Object), e.Vector.X, e.Vector.Y); err != nil {
				t.Fatal(err)
			}
			if err := localDB.SetMotion(e.Object, e.Vector); err != nil {
				t.Fatal(err)
			}
		}

		// Every instantaneous template answers identically three ways.
		for _, tpl := range cat.Instantaneous() {
			now, remoteRows, err := c.Query(tpl.Src, spec.Horizon)
			if err != nil {
				t.Fatalf("tick %d: %s: %v", tk, tpl.Name, err)
			}
			if now != localDB.Now() {
				t.Fatalf("tick %d: clocks diverged: remote %d, local %d", tk, now, localDB.Now())
			}
			localRows, err := localEng.Query(tpl.Src, opts)
			if err != nil {
				t.Fatalf("tick %d: %s: %v", tk, tpl.Name, err)
			}
			remote, local, want := canonRows(remoteRows), canonRows(wireRows(localRows)), naiveKey(tpl.Src)
			if remote != local || local != want {
				t.Fatalf("tick %d: %s diverged:\n  remote: %q\n  local:  %q\n  naive:  %q",
					tk, tpl.Name, remote, local, want)
			}
		}

		// Every continuous template: the local Answer(CQ) presents exactly
		// the naive rows, and the remote stream converges to the local
		// answer bit for bit.
		for _, e := range cqs {
			rows, err := e.cq.Current(localDB.Now())
			if err != nil {
				t.Fatalf("tick %d: %s: %v", tk, e.tpl.Name, err)
			}
			if got, want := canonRows(wireRows(rows)), naiveKey(e.tpl.Src); got != want {
				t.Fatalf("tick %d: CQ %s diverged from naive oracle:\n  engine: %q\n  naive:  %q",
					tk, e.tpl.Name, got, want)
			}
			awaitCity(tk, e)
		}
	}
}
