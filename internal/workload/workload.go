// Package workload generates the synthetic scenarios the experiments and
// examples run on: vehicle fleets with motion-vector update streams, the
// MOTELS relation of the paper's introduction, and an air-traffic-control
// airspace for the §1 query "retrieve all the airplanes that will come
// within 30 miles of the airport in the next 10 minutes".
//
// Real GPS traces are not available (and the paper used none); generators
// are seeded and deterministic so every experiment is reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// VehicleClass is the spatial class used by fleet scenarios.
var VehicleClass = most.MustClass("Vehicles", true,
	most.AttrDef{Name: "PRICE", Kind: most.Static},
)

// AircraftClass is the spatial class used by air-traffic scenarios.
var AircraftClass = most.MustClass("Aircraft", true,
	most.AttrDef{Name: "FLIGHT", Kind: most.Static},
	most.AttrDef{Name: "FUEL", Kind: most.Dynamic},
)

// MotelClass is the static class of the MOTELS relation (§1: "a relation
// MOTELS ... giving for each motel its geographic-coordinates, room-price,
// and availability").
var MotelClass = most.MustClass("Motels", true,
	most.AttrDef{Name: "NAME", Kind: most.Static},
	most.AttrDef{Name: "PRICE", Kind: most.Static},
	most.AttrDef{Name: "AVAILABLE", Kind: most.Static},
)

// FleetSpec parameterizes a vehicle fleet.
type FleetSpec struct {
	N        int
	Region   geom.Rect // initial positions drawn uniformly from this box
	MaxSpeed float64   // per-tick speed drawn from [0, MaxSpeed]
	Seed     int64
}

// Fleet builds a database holding N moving vehicles.
func Fleet(spec FleetSpec) (*most.Database, error) {
	db := most.NewDatabase()
	if err := db.DefineClass(VehicleClass); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(spec.Seed))
	for i := 0; i < spec.N; i++ {
		id := most.ObjectID(fmt.Sprintf("car-%05d", i))
		o, err := most.NewObject(id, VehicleClass)
		if err != nil {
			return nil, err
		}
		o, err = o.WithStatic("PRICE", most.Float(float64(20+r.Intn(300))))
		if err != nil {
			return nil, err
		}
		p := randPoint(r, spec.Region)
		v := randVelocity(r, spec.MaxSpeed)
		o, err = o.WithPosition(motion.MovingFrom(p, v, db.Now()))
		if err != nil {
			return nil, err
		}
		if err := db.Insert(o); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func randPoint(r *rand.Rand, box geom.Rect) geom.Point {
	return geom.Point{
		X: box.Min.X + r.Float64()*(box.Max.X-box.Min.X),
		Y: box.Min.Y + r.Float64()*(box.Max.Y-box.Min.Y),
	}
}

func randVelocity(r *rand.Rand, maxSpeed float64) geom.Vector {
	speed := r.Float64() * maxSpeed
	return geom.Heading(r.Float64() * 2 * math.Pi).Scale(speed)
}

// UpdateEvent is one motion-vector change: the event that actually reaches
// a MOST database (§1: "the motion vector of an object can change (thus it
// can be updated), but in most cases it does so less frequently than the
// position of the object").
type UpdateEvent struct {
	Tick   temporal.Tick
	Object most.ObjectID
	Vector geom.Vector
}

// UpdateStream generates motion-vector changes for a fleet over [1, until]:
// each vehicle changes course independently with probability rate per tick.
func UpdateStream(spec FleetSpec, rate float64, until temporal.Tick) []UpdateEvent {
	r := rand.New(rand.NewSource(spec.Seed + 1))
	var out []UpdateEvent
	for t := temporal.Tick(1); t <= until; t++ {
		for i := 0; i < spec.N; i++ {
			if r.Float64() < rate {
				out = append(out, UpdateEvent{
					Tick:   t,
					Object: most.ObjectID(fmt.Sprintf("car-%05d", i)),
					Vector: randVelocity(r, spec.MaxSpeed),
				})
			}
		}
	}
	return out
}

// Apply advances the database clock to each event's tick and applies the
// motion update, returning the number applied.
func Apply(db *most.Database, events []UpdateEvent) (int, error) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].Tick < events[j].Tick })
	n := 0
	for _, e := range events {
		if e.Tick > db.Now() {
			db.Advance(e.Tick - db.Now())
		}
		if err := db.SetMotion(e.Object, e.Vector); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// MotelsSpec parameterizes the MOTELS relation.
type MotelsSpec struct {
	N      int
	Region geom.Rect
	Seed   int64
}

// AddMotels inserts N stationary motels into db (defining MotelClass if
// needed).
func AddMotels(db *most.Database, spec MotelsSpec) error {
	if _, ok := db.Class(MotelClass.Name()); !ok {
		if err := db.DefineClass(MotelClass); err != nil {
			return err
		}
	}
	r := rand.New(rand.NewSource(spec.Seed + 2))
	for i := 0; i < spec.N; i++ {
		id := most.ObjectID(fmt.Sprintf("motel-%04d", i))
		o, err := most.NewObject(id, MotelClass)
		if err != nil {
			return err
		}
		o, _ = o.WithStatic("NAME", most.Str(fmt.Sprintf("Motel %d", i)))
		o, _ = o.WithStatic("PRICE", most.Float(float64(30+r.Intn(200))))
		o, _ = o.WithStatic("AVAILABLE", most.Bool(r.Intn(4) != 0))
		o, err = o.WithPosition(motion.PositionAt(randPoint(r, spec.Region), db.Now()))
		if err != nil {
			return err
		}
		if err := db.Insert(o); err != nil {
			return err
		}
	}
	return nil
}

// AirspaceSpec parameterizes an air-traffic scenario.
type AirspaceSpec struct {
	N       int
	Radius  float64    // aircraft start on a ring of this radius
	Airport geom.Point // the airport's location
	Speed   float64    // per-tick speed
	Inbound float64    // fraction of aircraft headed at the airport
	Seed    int64
}

// Airspace builds a database of aircraft, a fraction of which are headed
// directly at the airport — the §1 air-traffic-control setting.
func Airspace(spec AirspaceSpec) (*most.Database, error) {
	db := most.NewDatabase()
	if err := db.DefineClass(AircraftClass); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(spec.Seed + 3))
	for i := 0; i < spec.N; i++ {
		id := most.ObjectID(fmt.Sprintf("AC%04d", i))
		o, err := most.NewObject(id, AircraftClass)
		if err != nil {
			return nil, err
		}
		o, _ = o.WithStatic("FLIGHT", most.Str(fmt.Sprintf("FL%04d", 100+i)))
		angle := r.Float64() * 2 * math.Pi
		p := geom.Point{
			X: spec.Airport.X + spec.Radius*math.Cos(angle),
			Y: spec.Airport.Y + spec.Radius*math.Sin(angle),
		}
		var v geom.Vector
		if r.Float64() < spec.Inbound {
			// Straight at the airport.
			d := spec.Airport.Sub(p)
			v = d.Scale(spec.Speed / d.Norm())
		} else {
			// Tangential: passes by without approaching.
			v = geom.Heading(angle + math.Pi/2).Scale(spec.Speed)
		}
		o, err = o.WithPosition(motion.MovingFrom(p, v, db.Now()))
		if err != nil {
			return nil, err
		}
		// Fuel burns linearly.
		o, err = o.WithDynamic("FUEL", motion.LinearFrom(1000+float64(r.Intn(500)), db.Now(), -1))
		if err != nil {
			return nil, err
		}
		if err := db.Insert(o); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// UpdateTraffic models the §1 bandwidth argument: a fleet tracked by
// per-tick position updates sends N messages every tick, while a MOST
// database receives only the motion-vector changes.  It returns both
// message counts over the window.
func UpdateTraffic(spec FleetSpec, rate float64, until temporal.Tick) (positionMsgs, vectorMsgs int) {
	positionMsgs = spec.N * int(until)
	vectorMsgs = len(UpdateStream(spec, rate, until))
	return positionMsgs, vectorMsgs
}
