package geom

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mostdb/most/internal/temporal"
)

func TestDistWithinTimesHeadOn(t *testing.T) {
	// Two objects approaching head-on at combined speed 2, starting 20 apart.
	a := MovingPoint{P: Point{0, 0, 0}, V: Vector{1, 0, 0}}
	b := MovingPoint{P: Point{20, 0, 0}, V: Vector{-1, 0, 0}}
	got := DistWithinTimes(a, b, 4, 0, 100)
	ivs := got.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("intervals = %v", ivs)
	}
	// Distance is |20-2t| <= 4  =>  t in [8, 12].
	if math.Abs(ivs[0].Lo-8) > 1e-9 || math.Abs(ivs[0].Hi-12) > 1e-9 {
		t.Fatalf("interval = %+v, want [8,12]", ivs[0])
	}
}

func TestDistWithinTimesNeverClose(t *testing.T) {
	// Parallel tracks 10 apart.
	a := MovingPoint{P: Point{0, 0, 0}, V: Vector{1, 0, 0}}
	b := MovingPoint{P: Point{0, 10, 0}, V: Vector{1, 0, 0}}
	if got := DistWithinTimes(a, b, 5, 0, 100); !got.IsEmpty() {
		t.Fatalf("got %v, want empty", got.Intervals())
	}
	if got := DistWithinTimes(a, b, 10, 0, 100); got.IsEmpty() {
		t.Fatal("exactly at range should hold")
	}
	// Beyond is the complement.
	if got := DistBeyondTimes(a, b, 11, 0, 100); !got.IsEmpty() {
		t.Fatalf("DistBeyondTimes = %v, want empty", got.Intervals())
	}
}

func TestDistWithinTimesStatic(t *testing.T) {
	a := Static(Point{0, 0, 0})
	b := Static(Point{3, 4, 0})
	if got := DistWithinTimes(a, b, 5, 0, 10); got.IsEmpty() {
		t.Fatal("distance 5 <= 5 should hold everywhere")
	}
	if got := DistWithinTimes(a, b, 4.9, 0, 10); !got.IsEmpty() {
		t.Fatal("distance 5 > 4.9 should hold nowhere")
	}
	if got := DistWithinTimes(a, b, -1, 0, 10); !got.IsEmpty() {
		t.Fatal("negative radius holds nowhere")
	}
}

func TestDistWithinTimesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		a := MovingPoint{
			P: Point{r.Float64()*40 - 20, r.Float64()*40 - 20, 0},
			V: Vector{r.Float64()*4 - 2, r.Float64()*4 - 2, 0},
		}
		b := MovingPoint{
			P: Point{r.Float64()*40 - 20, r.Float64()*40 - 20, 0},
			V: Vector{r.Float64()*4 - 2, r.Float64()*4 - 2, 0},
		}
		rad := r.Float64() * 15
		got := DistWithinTimes(a, b, rad, 0, 50)
		for tt := 0.25; tt < 50; tt += 0.5 {
			want := Dist(a.At(tt), b.At(tt)) <= rad
			if got.Contains(tt) != want {
				// Tolerate disagreement within root noise of the boundary.
				if math.Abs(Dist(a.At(tt), b.At(tt))-rad) < 1e-6 {
					continue
				}
				t.Fatalf("case %d t=%v: got %v want %v (d=%v r=%v, set=%v)",
					i, tt, got.Contains(tt), want, Dist(a.At(tt), b.At(tt)), rad, got.Intervals())
			}
		}
	}
}

func TestInsideTimesCrossing(t *testing.T) {
	// Object crossing a 10x10 square from the left at unit speed.
	square := RectPolygon(10, 0, 20, 10)
	m := MovingPoint{P: Point{0, 5, 0}, V: Vector{1, 0, 0}}
	got := InsideTimes(m, square, 0, 100)
	ivs := got.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("intervals = %v", ivs)
	}
	if math.Abs(ivs[0].Lo-10) > 1e-9 || math.Abs(ivs[0].Hi-20) > 1e-9 {
		t.Fatalf("interval = %+v, want [10,20]", ivs[0])
	}
	// Outside is the complement within the window.
	out := OutsideTimes(m, square, 0, 100)
	if !out.Contains(5) || out.Contains(15) || !out.Contains(25) {
		t.Fatalf("OutsideTimes = %v", out.Intervals())
	}
}

func TestInsideTimesMiss(t *testing.T) {
	square := RectPolygon(10, 0, 20, 10)
	m := MovingPoint{P: Point{0, 50, 0}, V: Vector{1, 0, 0}}
	if got := InsideTimes(m, square, 0, 100); !got.IsEmpty() {
		t.Fatalf("got %v, want empty", got.Intervals())
	}
}

func TestInsideTimesStatic(t *testing.T) {
	square := RectPolygon(0, 0, 10, 10)
	if got := InsideTimes(Static(Point{5, 5, 0}), square, 0, 9); got.IsEmpty() {
		t.Fatal("static inside point should hold everywhere")
	}
	if got := InsideTimes(Static(Point{50, 5, 0}), square, 0, 9); !got.IsEmpty() {
		t.Fatal("static outside point should hold nowhere")
	}
}

func TestInsideTimesConcaveDoubleEntry(t *testing.T) {
	// Crossing the "U" horizontally at prong height enters twice.
	u := MustPolygon(
		Point{0, 0, 0}, Point{10, 0, 0}, Point{10, 10, 0}, Point{7, 10, 0},
		Point{7, 3, 0}, Point{3, 3, 0}, Point{3, 10, 0}, Point{0, 10, 0},
	)
	m := MovingPoint{P: Point{-5, 7, 0}, V: Vector{1, 0, 0}}
	got := InsideTimes(m, u, 0, 30)
	ivs := got.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %v, want two entries", ivs)
	}
	// Prongs span x in [0,3] and [7,10]; entry times t = x+5.
	if math.Abs(ivs[0].Lo-5) > 1e-9 || math.Abs(ivs[0].Hi-8) > 1e-9 {
		t.Errorf("first = %+v, want [5,8]", ivs[0])
	}
	if math.Abs(ivs[1].Lo-12) > 1e-9 || math.Abs(ivs[1].Hi-15) > 1e-9 {
		t.Errorf("second = %+v, want [12,15]", ivs[1])
	}
}

func TestInsideTimesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 200; i++ {
		n := 3 + r.Intn(5)
		pg := RegularPolygon(Point{r.Float64()*20 - 10, r.Float64()*20 - 10, 0}, 1+r.Float64()*8, n)
		m := MovingPoint{
			P: Point{r.Float64()*60 - 30, r.Float64()*60 - 30, 0},
			V: Vector{r.Float64()*4 - 2, r.Float64()*4 - 2, 0},
		}
		got := InsideTimes(m, pg, 0, 40)
		for tt := 0.13; tt < 40; tt += 0.37 {
			want := pg.Contains(m.At(tt))
			if got.Contains(tt) != want {
				// Tolerate points within noise of the boundary.
				if nearBoundary(pg, m.At(tt), 1e-6) {
					continue
				}
				t.Fatalf("case %d t=%v: got %v want %v (set=%v)", i, tt, got.Contains(tt), want, got.Intervals())
			}
		}
	}
}

func nearBoundary(pg Polygon, p Point, eps float64) bool {
	vs := pg.Vertices()
	n := len(vs)
	for i := 0; i < n; i++ {
		a, b := vs[i], vs[(i+1)%n]
		if distPointSegment(p, a, b) < eps {
			return true
		}
	}
	return false
}

func distPointSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	t := p.Sub(a).Dot(ab) / math.Max(ab.Norm2(), 1e-18)
	t = math.Max(0, math.Min(1, t))
	return Dist(p, a.Add(ab.Scale(t)))
}

func TestRealSetTicks(t *testing.T) {
	s := NewRealSet(RealInterval{1.2, 4.8}, RealInterval{10, 12})
	w := temporal.Interval{Start: 0, End: 100}
	got := s.Ticks(w)
	want := temporal.NewSet(temporal.Interval{Start: 2, End: 4}, temporal.Interval{Start: 10, End: 12})
	if !got.Equal(want) {
		t.Fatalf("Ticks = %s, want %s", got, want)
	}
	// An interval with no integer inside yields nothing.
	if got := NewRealSet(RealInterval{1.2, 1.8}).Ticks(w); !got.IsEmpty() {
		t.Fatalf("Ticks of fractional sliver = %s", got)
	}
	// Clipping applies.
	if got := s.Ticks(temporal.Interval{Start: 3, End: 11}); !got.Equal(temporal.NewSet(temporal.Interval{Start: 3, End: 4}, temporal.Interval{Start: 10, End: 11})) {
		t.Fatalf("clipped Ticks = %s", got)
	}
}

func TestRealSetOps(t *testing.T) {
	a := NewRealSet(RealInterval{0, 5}, RealInterval{10, 15})
	b := NewRealSet(RealInterval{4, 11})
	u := a.Union(b)
	if len(u.Intervals()) != 1 || u.Intervals()[0] != (RealInterval{0, 15}) {
		t.Fatalf("Union = %v", u.Intervals())
	}
	x := a.Intersect(b)
	if len(x.Intervals()) != 2 {
		t.Fatalf("Intersect = %v", x.Intervals())
	}
	c := a.ComplementWithin(-5, 20)
	if !c.Contains(-1) || c.Contains(2) || !c.Contains(7) || c.Contains(12) || !c.Contains(18) {
		t.Fatalf("Complement = %v", c.Intervals())
	}
}
