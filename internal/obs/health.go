package obs

import (
	"net/http"
	"sync/atomic"
)

// Health is a process lifecycle signal for load balancers and init systems,
// served as the conventional pair of endpoints:
//
//	/healthz   liveness  — 200 whenever the process can answer at all
//	/readyz    readiness — 200 only in StateReady; 503 while starting,
//	           recovering a write-ahead log, or draining for shutdown
//
// All methods are safe on a nil *Health (they no-op / report ready), so
// components can thread an optional health handle without nil checks.
type Health struct {
	state atomic.Int32
}

// HealthState is a coarse lifecycle phase.
type HealthState int32

const (
	// StateStarting is the zero state: the process is up but not serving.
	StateStarting HealthState = iota
	// StateRecovering means durable state is being rebuilt (WAL replay);
	// the listener may not be installed yet and requests would miss data.
	StateRecovering
	// StateReady means the service is accepting and answering requests.
	StateReady
	// StateDraining means shutdown has begun: in-flight work finishes but
	// new traffic should go elsewhere.
	StateDraining
)

func (s HealthState) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateRecovering:
		return "recovering"
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	default:
		return "unknown"
	}
}

// Set moves the health to state.
func (h *Health) Set(state HealthState) {
	if h == nil {
		return
	}
	h.state.Store(int32(state))
}

// State returns the current lifecycle phase.
func (h *Health) State() HealthState {
	if h == nil {
		return StateReady
	}
	return HealthState(h.state.Load())
}

// Ready reports whether the service should receive traffic.
func (h *Health) Ready() bool { return h.State() == StateReady }

// Mount installs /healthz and /readyz on mux.  Mounting a nil *Health
// serves an always-live, always-ready pair.
func (h *Health) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		st := h.State()
		if st != StateReady {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write([]byte(st.String() + "\n"))
	})
}
