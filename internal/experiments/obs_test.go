package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestObsBenchReport(t *testing.T) {
	rep := ObsBench(true)
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range rep.Results {
		if r.DisabledNs <= 0 || r.EnabledNs <= 0 {
			t.Errorf("objects=%d: non-positive timings %d/%d", r.Objects, r.DisabledNs, r.EnabledNs)
		}
	}
	for _, root := range []string{"query.instantaneous", "query.continuous", "query.persistent"} {
		tr, ok := rep.Snapshot.Traces[root]
		if !ok || len(tr.Children) == 0 {
			t.Errorf("snapshot missing a non-empty %q trace", root)
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back ObsReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Errorf("JSON round-trip lost results")
	}
	tbl := rep.Table().Render()
	if !strings.Contains(tbl, "OBS") || !strings.Contains(tbl, "overhead") {
		t.Errorf("table missing expected headers:\n%s", tbl)
	}
}
