package eval

import (
	"math"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/temporal"
)

// EvalFormula computes the relation Rf of a formula: per instantiation of
// its free variables, the normalized set of ticks at which the formula is
// satisfied within the evaluation window.  This is the appendix algorithm,
// computed "inductively, for each subformula g in increasing lengths".
func (c *Context) EvalFormula(f ftl.Formula) (*Relation, error) {
	c.Obs.Counter("eval.subformulas").Inc()
	w := c.Window()
	switch n := f.(type) {
	case ftl.BoolLit:
		rel := NewRelation()
		if n.V {
			rel.Add(nil, temporal.NewSet(w))
		}
		return rel, nil

	case ftl.Compare:
		return c.evalCompare(n)
	case ftl.Inside:
		return c.evalInside(n)
	case ftl.Outside:
		return c.evalOutside(n)
	case ftl.WithinSphere:
		return c.evalWithinSphere(n)

	case ftl.And:
		l, err := c.EvalFormula(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.EvalFormula(n.R)
		if err != nil {
			return nil, err
		}
		return Join(l, r), nil

	case ftl.Or:
		return c.evalBinaryAligned(n.L, n.R, func(a, b temporal.Set) temporal.Set {
			return a.Union(b)
		})

	case ftl.Implies:
		return c.EvalFormula(ftl.Or{L: ftl.Not{F: n.L}, R: n.R})

	case ftl.Not:
		inner, err := c.EvalFormula(n.F)
		if err != nil {
			return nil, err
		}
		return inner.ComplementOver(c.Domains, w)

	case ftl.Until:
		limit := temporal.MaxTick
		if n.Within != nil {
			b, err := c.constTick(n.Within)
			if err != nil {
				return nil, err
			}
			limit = b
		}
		return c.evalBinaryAligned(n.L, n.R, func(a, b temporal.Set) temporal.Set {
			return temporal.UntilWithin(a, b, limit, w)
		})

	case ftl.Nexttime:
		inner, err := c.EvalFormula(n.F)
		if err != nil {
			return nil, err
		}
		return inner.Map(func(s temporal.Set) temporal.Set {
			return temporal.Nexttime(s).Clip(w)
		}), nil

	case ftl.Eventually:
		inner, err := c.EvalFormula(n.F)
		if err != nil {
			return nil, err
		}
		switch {
		case n.Within != nil:
			b, err := c.constTick(n.Within)
			if err != nil {
				return nil, err
			}
			return inner.Map(func(s temporal.Set) temporal.Set {
				return temporal.EventuallyWithin(s, b, w)
			}), nil
		case n.After != nil:
			b, err := c.constTick(n.After)
			if err != nil {
				return nil, err
			}
			return inner.Map(func(s temporal.Set) temporal.Set {
				return temporal.EventuallyAfter(s, b, w)
			}), nil
		default:
			return inner.Map(func(s temporal.Set) temporal.Set {
				return temporal.Eventually(s, w)
			}), nil
		}

	case ftl.Always:
		inner, err := c.EvalFormula(n.F)
		if err != nil {
			return nil, err
		}
		if n.For != nil {
			b, err := c.constTick(n.For)
			if err != nil {
				return nil, err
			}
			return inner.Map(func(s temporal.Set) temporal.Set {
				return temporal.AlwaysFor(s, b, w)
			}), nil
		}
		return inner.Map(func(s temporal.Set) temporal.Set {
			return temporal.Always(s, w)
		}), nil

	case ftl.Assign:
		return c.evalAssign(n)

	default:
		return nil, errf("unsupported formula %T", f)
	}
}

// evalBinaryAligned evaluates both operands, aligns them on the union of
// their columns (expanding missing variables over their domains), and
// combines per instantiation.  Used for Or and Until, where an
// instantiation missing from one operand still contributes.
func (c *Context) evalBinaryAligned(lf, rf ftl.Formula, op func(a, b temporal.Set) temporal.Set) (*Relation, error) {
	l, err := c.EvalFormula(lf)
	if err != nil {
		return nil, err
	}
	r, err := c.EvalFormula(rf)
	if err != nil {
		return nil, err
	}
	_, rOnly := alignCols(l.Cols, r.Cols)
	cols := append(append([]string{}, l.Cols...), rOnly...)
	le, err := l.Expand(cols, c.Domains)
	if err != nil {
		return nil, err
	}
	re, err := r.Expand(cols, c.Domains)
	if err != nil {
		return nil, err
	}
	return CombineAligned(le, re, op)
}

// constTick evaluates a bound expression (the c of a bounded operator) to a
// constant number of ticks.
func (c *Context) constTick(e ftl.Expr) (temporal.Tick, error) {
	tv, err := c.evalTerm(e, env{})
	if err != nil {
		return 0, err
	}
	if !tv.isConst || tv.c.Kind != ValNum {
		return 0, errf("temporal bound %s must be a constant number", e)
	}
	if tv.c.Num < 0 {
		return 0, errf("temporal bound %s is negative", e)
	}
	return temporal.Tick(math.Round(tv.c.Num)), nil
}

// evalAssign implements the assignment quantifier [x <- q] f per the
// appendix: build the relation Q of the atomic query q — per instantiation
// of q's free variables, the value of q during each interval — then join
// with Rf on x = value and intersecting intervals, and project x away.
func (c *Context) evalAssign(n ftl.Assign) (*Relation, error) {
	if _, clash := c.Domains[n.Var]; clash {
		return nil, errf("assignment variable %q shadows a bound variable", n.Var)
	}
	if _, clash := c.Params[n.Var]; clash {
		return nil, errf("assignment variable %q shadows a parameter", n.Var)
	}

	// Columns of Q: enumerable free variables of the term.
	var qcols []string
	var probe []string
	collectTermVars(n.Term, &probe)
	for _, v := range probe {
		if _, ok := c.Domains[v]; ok {
			qcols = append(qcols, v)
		} else if _, ok := c.Params[v]; !ok {
			return nil, errf("unbound variable %q in assignment term", v)
		}
	}

	// The per-binding enumeration of the term's value rows fans out over
	// the context's worker pool; the merge into Q stays sequential and in
	// instantiation order.
	q := NewRelation(append(append([]string{}, qcols...), n.Var)...)
	distinct := map[Val]bool{}
	err := solveInstantiations(c,
		qcols,
		func(en env, _ []Val) ([]termRow, error) {
			tv, err := c.evalTerm(n.Term, en)
			if err != nil {
				return nil, err
			}
			return c.termRows(tv)
		},
		func(vals []Val, rows []termRow) error {
			for _, row := range rows {
				distinct[row.val] = true
				q.Add(append(append([]Val{}, vals...), row.val), row.times)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}

	// Evaluate the body with the assignment variable's domain extended to
	// the values Q can produce, so atoms mentioning x stay enumerable.
	bodyCtx := *c
	bodyCtx.Domains = make(map[string][]Val, len(c.Domains)+1)
	for k, v := range c.Domains {
		bodyCtx.Domains[k] = v
	}
	dom := make([]Val, 0, len(distinct))
	for v := range distinct {
		dom = append(dom, v)
	}
	sortVals(dom)
	bodyCtx.Domains[n.Var] = dom

	body, err := bodyCtx.EvalFormula(n.Body)
	if err != nil {
		return nil, err
	}

	joined := Join(q, body) // matches on shared columns incl. x if present
	// Free variables of the whole formula: q's columns plus body's columns
	// minus the bound variable.
	outCols := append([]string{}, qcols...)
	seen := map[string]bool{}
	for _, cname := range outCols {
		seen[cname] = true
	}
	for _, cname := range body.Cols {
		if cname != n.Var && !seen[cname] {
			outCols = append(outCols, cname)
			seen[cname] = true
		}
	}
	return joined.Project(outCols)
}

// termRow is one piecewise-constant piece of an assignment term's value.
type termRow struct {
	val   Val
	times temporal.Set
}

// termRows decomposes a term's temporal value into (value, interval) rows:
// exactly for constants and piecewise-constant trajectories, per tick
// otherwise (bounded by MaxAssignStates).
func (c *Context) termRows(tv termVal) ([]termRow, error) {
	w := c.Window()
	if tv.isConst {
		return []termRow{{val: tv.c, times: temporal.NewSet(w)}}, nil
	}
	if !tv.numeric() {
		return nil, errf("assignment term must be a constant or numeric")
	}
	if tv.segs != nil {
		constant := true
		for _, s := range tv.segs {
			if s.Slope != 0 || s.Accel != 0 {
				constant = false
				break
			}
		}
		if constant {
			// A tick at a breakpoint belongs to the *following* segment
			// (the new function applies from its start instant).
			rows := make([]termRow, 0, len(tv.segs))
			for i, s := range tv.segs {
				start := temporal.CeilTick(s.T0 - 1e-9)
				var end temporal.Tick
				if i+1 < len(tv.segs) {
					end = temporal.CeilTick(tv.segs[i+1].T0-1e-9) - 1
				} else {
					end = temporal.FloorTick(s.T1 + 1e-9)
				}
				set := temporal.NewSet(temporal.Interval{Start: start, End: end}).Clip(w)
				if !set.IsEmpty() {
					rows = append(rows, termRow{val: NumVal(s.V0), times: set})
				}
			}
			return mergeRows(rows), nil
		}
	}
	// Discretize per tick.
	n := int(w.Len())
	if n > c.maxAssignStates() {
		return nil, errf("assignment term varies continuously over %d states (limit %d); raise MaxAssignStates or bind a piecewise-constant term", n, c.maxAssignStates())
	}
	rows := make([]termRow, 0, n)
	for t := w.Start; t <= w.End; t++ {
		rows = append(rows, termRow{
			val:   NumVal(tv.fn(float64(t))),
			times: temporal.SinglePoint(t),
		})
	}
	return mergeRows(rows), nil
}

// mergeRows unions rows with equal values.
func mergeRows(rows []termRow) []termRow {
	byVal := map[Val]temporal.Set{}
	order := []Val{}
	for _, r := range rows {
		if _, ok := byVal[r.val]; !ok {
			order = append(order, r.val)
		}
		byVal[r.val] = byVal[r.val].Union(r.times)
	}
	out := make([]termRow, len(order))
	for i, v := range order {
		out[i] = termRow{val: v, times: byVal[v]}
	}
	return out
}

func collectTermVars(e ftl.Expr, out *[]string) {
	seen := map[string]bool{}
	var bound []string
	collectExprVars(e, out, seen, &bound)
}

// collectExprVars mirrors ftl's internal collector for expressions.
func collectExprVars(e ftl.Expr, out *[]string, seen map[string]bool, bound *[]string) {
	switch n := e.(type) {
	case ftl.Var:
		if !seen[n.Name] {
			seen[n.Name] = true
			*out = append(*out, n.Name)
		}
	case ftl.AttrRef:
		collectExprVars(n.Obj, out, seen, bound)
	case ftl.Bin:
		collectExprVars(n.L, out, seen, bound)
		collectExprVars(n.R, out, seen, bound)
	case ftl.Neg:
		collectExprVars(n.E, out, seen, bound)
	case ftl.DistOf:
		collectExprVars(n.A, out, seen, bound)
		collectExprVars(n.B, out, seen, bound)
	case ftl.SpeedOf:
		collectExprVars(n.Attr.Obj, out, seen, bound)
	case ftl.Call:
		for _, a := range n.Args {
			collectExprVars(a, out, seen, bound)
		}
	}
}

func sortVals(vs []Val) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].Compare(vs[j-1]) < 0; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}
