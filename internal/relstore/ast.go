package relstore

import (
	"fmt"
	"strings"
)

// This file exposes the SELECT syntax tree so layers above the DBMS can
// rewrite queries — exactly the architecture of the paper's §5.1: "any
// query posed to the DBMS is first examined (and possibly modified) by the
// MOST system".  The MOST layer parses a query, transforms the WHERE
// clause, renders it back to SQL and submits it to the store.

// Lit builds a literal expression.
func Lit(v Value) Expr { return LitExpr{v: v} }

// Col builds a column reference; table may be empty.
func Col(table, col string) Expr { return ColExpr{table: table, col: col} }

// Bin builds a binary expression (arithmetic, comparison, AND/OR).
func Bin(op string, l, r Expr) Expr { return BinExpr{op: op, l: l, r: r} }

// Not builds a negation.
func Not(e Expr) Expr { return NotExpr{e: e} }

// Value returns the literal's value.
func (e LitExpr) Value() Value { return e.v }

// Parts returns the column reference's qualifier and name.
func (e ColExpr) Parts() (table, col string) { return e.table, e.col }

// Parts returns the operator and operands.
func (e BinExpr) Parts() (op string, l, r Expr) { return e.op, e.l, e.r }

// Inner returns the negated expression.
func (e NotExpr) Inner() Expr { return e.e }

// SQLString renders an expression back to SQL text.
func SQLString(e Expr) string {
	switch n := e.(type) {
	case LitExpr:
		switch n.v.Kind {
		case KStr:
			return "'" + n.v.S + "'"
		case KBool:
			if n.v.B {
				return "TRUE"
			}
			return "FALSE"
		case KNull:
			return "NULL"
		default:
			return n.v.String()
		}
	case ColExpr:
		if n.table != "" {
			return n.table + "." + n.col
		}
		return n.col
	case BinExpr:
		return "(" + SQLString(n.l) + " " + n.op + " " + SQLString(n.r) + ")"
	case NotExpr:
		return "(NOT " + SQLString(n.e) + ")"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// EvalExpr evaluates an expression with an external column resolver,
// letting layers above the store (the MOST system) compute predicates over
// rows they fetched — with dynamic attributes substituted by their current
// values.
func EvalExpr(e Expr, lookup func(table, col string) (Value, error)) (Value, error) {
	env := &externEnv{lookup: lookup}
	return exprEvalExtern(e, env)
}

type externEnv struct {
	lookup func(table, col string) (Value, error)
}

// evalExtern mirrors eval but resolves columns through the external lookup.
func (e LitExpr) evalExtern(*externEnv) (Value, error) { return e.v, nil }

func (e ColExpr) evalExtern(env *externEnv) (Value, error) { return env.lookup(e.table, e.col) }

func (e NotExpr) evalExtern(env *externEnv) (Value, error) {
	v, err := exprEvalExtern(e.e, env)
	if err != nil {
		return Value{}, err
	}
	if v.Kind != KBool {
		return Value{}, fmt.Errorf("relstore: NOT needs a boolean")
	}
	return Bool(!v.B), nil
}

func (e BinExpr) evalExtern(env *externEnv) (Value, error) {
	// Delegate to the row-based evaluator via a shim environment.
	l, err := exprEvalExtern(e.l, env)
	if err != nil {
		return Value{}, err
	}
	if e.op == "AND" || e.op == "OR" {
		if l.Kind != KBool {
			return Value{}, fmt.Errorf("relstore: %s needs booleans", e.op)
		}
		if e.op == "AND" && !l.B {
			return Bool(false), nil
		}
		if e.op == "OR" && l.B {
			return Bool(true), nil
		}
		r, err := exprEvalExtern(e.r, env)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != KBool {
			return Value{}, fmt.Errorf("relstore: %s needs booleans", e.op)
		}
		return r, nil
	}
	r, err := exprEvalExtern(e.r, env)
	if err != nil {
		return Value{}, err
	}
	return applyBinOp(e.op, l, r)
}

func exprEvalExtern(e Expr, env *externEnv) (Value, error) {
	switch n := e.(type) {
	case LitExpr:
		return n.evalExtern(env)
	case ColExpr:
		return n.evalExtern(env)
	case NotExpr:
		return n.evalExtern(env)
	case BinExpr:
		return n.evalExtern(env)
	default:
		return Value{}, fmt.Errorf("relstore: unknown expression node %T", e)
	}
}

// applyBinOp applies a non-boolean binary operator to evaluated operands.
func applyBinOp(op string, l, r Value) (Value, error) {
	switch op {
	case "+", "-", "*", "/":
		if l.Kind != KNum || r.Kind != KNum {
			return Value{}, fmt.Errorf("relstore: arithmetic needs numbers")
		}
		switch op {
		case "+":
			return Num(l.F + r.F), nil
		case "-":
			return Num(l.F - r.F), nil
		case "*":
			return Num(l.F * r.F), nil
		default:
			if r.F == 0 {
				return Value{}, fmt.Errorf("relstore: division by zero")
			}
			return Num(l.F / r.F), nil
		}
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		c := l.Compare(r)
		switch op {
		case "=":
			return Bool(c == 0), nil
		case "!=", "<>":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	}
	return Value{}, fmt.Errorf("relstore: unknown operator %s", op)
}

// SelectItem is one target of a SELECT.
type SelectItem struct {
	Expr Expr
	Name string
}

// SelectStmt is a parsed (not yet executed) SELECT.
type SelectStmt struct {
	Star    bool
	Targets []SelectItem
	Tables  []string
	Where   Expr // nil when absent
}

// ParseSelect parses a SELECT without executing it and without resolving
// table names.
func ParseSelect(sql string) (*SelectStmt, error) {
	toks, err := sqlLex(sql)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	if p.acceptSym("*") {
		stmt.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			name := "expr"
			if ce, ok := e.(ColExpr); ok {
				name = ce.col
			}
			stmt.Targets = append(stmt.Targets, SelectItem{Expr: e, Name: name})
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.Tables = append(stmt.Tables, name)
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.peek().kind != sqlEOF {
		return nil, fmt.Errorf("relstore: unexpected %v after statement", p.peek().text)
	}
	return stmt, nil
}

// SQL renders the statement back to executable SQL.
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Star {
		b.WriteString("*")
	} else {
		for i, t := range s.Targets {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(SQLString(t.Expr))
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(s.Tables, ", "))
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(SQLString(s.Where))
	}
	return b.String()
}
