package cluster_test

// The cluster differential oracle: a 3-node loopback cluster replays a
// seeded city scenario in lockstep with a single in-process database, and
// after every tick each catalog template must answer bit-identically
// through the scatter-gather router — instantaneous queries against a
// from-scratch naive evaluation, continuous queries through merged
// per-node subscription streams that must converge by push alone.  Cars
// cross zone boundaries as the city plays out, so the run exercises real
// handoffs (asserted at the end): the same car answers from one node at
// tick t and another at t+1, and nothing in the merged answers shows it.

import (
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/mostdb/most/internal/city"
	"github.com/mostdb/most/internal/cluster"
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/wire"
	"github.com/mostdb/most/internal/workload"
)

func canonRows(rows [][]wire.Value) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.String())
			b.WriteByte(0)
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x01")
}

// citySpec is the shared scenario: small enough to replay quickly, big
// enough that cars migrate between districts (and therefore zones).
func citySpec(ticks temporal.Tick) city.Spec {
	return city.Spec{
		Seed: 5, Cars: 60, Buses: 3,
		GridW: 6, GridH: 6, DistrictsX: 2, DistrictsY: 2, POIsPerDistrict: 1,
		Ticks: ticks, Horizon: 12,
	}
}

func TestClusterCityOracle(t *testing.T) {
	ticks := temporal.Tick(12)
	if testing.Short() {
		ticks = 6
	}
	spec := citySpec(ticks)
	cty, err := city.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cat := cty.Catalog()
	opts := query.Options{Horizon: spec.Horizon, Regions: cat.Regions}

	// The city road grid spans [0, (GridW-1)*Block]²; three vertical
	// zone stripes split it across the nodes.
	side := float64(spec.GridW-1) * 100
	cl, err := cluster.Start(cluster.Config{
		Nodes: 3, GridX: 3, GridY: 1,
		Bounds:     geom.Rect{Max: geom.Point{X: side, Y: side}},
		Replicated: []string{city.BusClass.Name(), city.POIClass.Name()},
		Seed:       cty.Database,
		Opts:       opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	router, err := cl.Router(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	localDB, err := cty.Database()
	if err != nil {
		t.Fatal(err)
	}
	localEng := query.NewEngine(localDB)

	// naive is the definitional from-scratch evaluation on the oracle
	// database: fresh snapshot, no incremental state.
	naiveKey := func(src string) string {
		t.Helper()
		q := ftl.MustParse(src)
		ctx := &eval.Context{
			Now:     localDB.Now(),
			Horizon: spec.Horizon,
			Objects: localDB.Snapshot(),
			Regions: cat.Regions,
			Domains: map[string][]eval.Val{},
		}
		if err := ctx.BindDomains(q, eval.IDsOf(localDB)); err != nil {
			t.Fatalf("naive bind: %v", err)
		}
		rel, err := eval.EvalQuery(q, ctx)
		if err != nil {
			t.Fatalf("naive eval: %v", err)
		}
		var rows [][]wire.Value
		for _, vals := range rel.At(localDB.Now()) {
			row := make([]wire.Value, len(vals))
			for j, v := range vals {
				row[j] = wire.FromVal(v)
			}
			rows = append(rows, row)
		}
		return canonRows(rows)
	}

	// Every continuous template: a single-database engine CQ as the
	// oracle, a merged cluster subscription as the system under test.
	type clusterCQ struct {
		tpl city.Template
		cq  *query.Continuous
		sub *cluster.MergedSub
	}
	var cqs []clusterCQ
	for _, tpl := range cat.Continuous() {
		cq, err := localEng.Continuous(ftl.MustParse(tpl.Src), opts)
		if err != nil {
			t.Fatalf("%s: %v", tpl.Name, err)
		}
		defer cq.Cancel()
		sub, err := router.Subscribe(tpl.Src, spec.Horizon)
		if err != nil {
			t.Fatalf("%s: %v", tpl.Name, err)
		}
		defer sub.Close()
		cqs = append(cqs, clusterCQ{tpl, cq, sub})
	}
	// rowsAt canonicalizes the rows an answer presents at tick now — the
	// same per-tick membership contract the chaos watcher enforces.  The
	// comparison is membership-at-now rather than interval-for-interval
	// because a handoff re-derives the moved object's CQ state on the new
	// owner: re-derivation reproduces what holds at and after the current
	// tick exactly, but re-anchors the row's prediction window, so the
	// interval endpoints can legitimately differ from the oracle's
	// incrementally-maintained (staler-anchored) row.  Checking exact
	// membership at every tick of the run pins the stream to the oracle
	// tick by tick, which is the strongest invariant both maintenance
	// paths share.
	rowsAt := func(ans []wire.AnswerRow, now temporal.Tick) string {
		var rows [][]wire.Value
		for _, r := range ans {
			if r.Start <= now && now <= r.End {
				rows = append(rows, r.Vals)
			}
		}
		return canonRows(rows)
	}
	awaitCQ := func(tk temporal.Tick, e clusterCQ) {
		t.Helper()
		rel, err := e.cq.Answer()
		if err != nil {
			t.Fatalf("tick %d: %s: oracle answer: %v", tk, e.tpl.Name, err)
		}
		now := localDB.Now()
		want := rowsAt(wire.FromRelation(rel), now)
		deadline := time.After(10 * time.Second)
		for {
			ans, _, err := e.sub.Answer()
			if err != nil {
				t.Fatalf("tick %d: %s: merged answer: %v", tk, e.tpl.Name, err)
			}
			got := rowsAt(ans, now)
			if got == want {
				return
			}
			select {
			case <-e.sub.Updates():
			case <-deadline:
				t.Fatalf("tick %d: merged CQ %s never converged:\n  cluster: %q\n  oracle:  %q",
					tk, e.tpl.Name, got, want)
			}
		}
	}
	for _, e := range cqs {
		awaitCQ(0, e)
	}

	byTick := map[temporal.Tick][]workload.UpdateEvent{}
	for _, e := range cty.Events {
		byTick[e.Tick] = append(byTick[e.Tick], e)
	}
	lastVec := map[most.ObjectID]geom.Vector{}
	carStir := cty.Cars[0].ID
	busStir := most.ObjectID(cty.Buses[0].Plate)

	for tk := temporal.Tick(1); tk <= ticks; tk++ {
		if _, err := router.Advance(1); err != nil {
			t.Fatal(err)
		}
		localDB.Advance(1)

		evs := byTick[tk]
		carsTouched, busesTouched := false, false
		for _, e := range evs {
			lastVec[e.Object] = e.Vector
			if strings.HasPrefix(string(e.Object), "car-") {
				carsTouched = true
			} else {
				busesTouched = true
			}
		}
		if !carsTouched {
			evs = append(evs, workload.UpdateEvent{Object: carStir, Vector: lastVec[carStir]})
		}
		if !busesTouched {
			evs = append(evs, workload.UpdateEvent{Object: busStir, Vector: lastVec[busStir]})
		}
		for _, e := range evs {
			if err := router.SetMotion(string(e.Object), e.Vector.X, e.Vector.Y); err != nil {
				t.Fatalf("tick %d: %s: %v", tk, e.Object, err)
			}
			if err := localDB.SetMotion(e.Object, e.Vector); err != nil {
				t.Fatal(err)
			}
		}

		for _, tpl := range cat.Instantaneous() {
			now, rows, err := router.Query(tpl.Src, spec.Horizon)
			if err != nil {
				t.Fatalf("tick %d: %s: %v", tk, tpl.Name, err)
			}
			if now != localDB.Now() {
				t.Fatalf("tick %d: clocks diverged: cluster %d, oracle %d", tk, now, localDB.Now())
			}
			if got, want := canonRows(rows), naiveKey(tpl.Src); got != want {
				t.Fatalf("tick %d: %s diverged:\n  cluster: %q\n  naive:   %q", tk, tpl.Name, got, want)
			}
		}
		for _, e := range cqs {
			awaitCQ(tk, e)
		}
	}

	// The run must have exercised actual ownership transfers, and the
	// cars must end distributed: every node holds its shard, no car
	// duplicated, none lost.
	var handoffs uint64
	for i := 0; i < 3; i++ {
		out, _, _, _ := cl.Node(i).Stats()
		handoffs += out
	}
	if handoffs == 0 {
		t.Fatal("city run crossed no zone boundary: the oracle proved nothing about handoff")
	}
	assertPartition(t, cl, router, spec.Cars)
}

// assertPartition proves exactly-once placement: across all nodes every
// car exists exactly once, and replicated classes exist in full
// everywhere.
func assertPartition(t *testing.T, cl *cluster.Cluster, router *cluster.Router, cars int) {
	t.Helper()
	seen := map[string]int{}
	for i, addr := range cl.Addrs() {
		c, err := router.NodeClient(addr)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Objects(city.CarClass.Name())
		if err != nil {
			t.Fatalf("node %d objects: %v", i, err)
		}
		for _, o := range resp.Objects {
			seen[o.ID]++
		}
	}
	if len(seen) != cars {
		t.Fatalf("cluster holds %d distinct cars, want %d", len(seen), cars)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("car %s present on %d nodes, want exactly 1", id, n)
		}
	}
}
