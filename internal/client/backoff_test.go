package client

// White-box tests for the retry/reconnect backoff schedule and the
// subscription resume reconciliation — the two pieces of self-healing
// with arithmetic worth pinning down in isolation.

import (
	mathrand "math/rand"
	"testing"
	"time"

	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/wire"
)

func backoffClient(base, max time.Duration) *Client {
	return &Client{
		backoff:    base,
		maxBackoff: max,
		jitter:     mathrand.New(mathrand.NewSource(1)),
	}
}

// Regression test for the unbounded shift the old retry loop used
// (c.backoff << (attempt-1)): by attempt 64 that is zero or negative and
// either panics the jitter draw or spins with no pause at all.  The
// schedule must stay positive and capped for any attempt count.
func TestBackoffDelayCappedAtAnyAttempt(t *testing.T) {
	base, max := 10*time.Millisecond, 2*time.Second
	c := backoffClient(base, max)
	ceiling := max + max/4 // cap plus the +25% jitter allowance
	for _, attempt := range []int{1, 2, 3, 10, 31, 63, 64, 65, 100, 1 << 20} {
		d := c.backoffDelay(attempt)
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %s (shift overflow)", attempt, d)
		}
		if d > ceiling {
			t.Fatalf("attempt %d: delay %s above cap %s", attempt, d, ceiling)
		}
	}
}

func TestBackoffDelayGrowsExponentiallyWithJitter(t *testing.T) {
	base, max := 8*time.Millisecond, time.Second
	c := backoffClient(base, max)
	for attempt := 1; attempt <= 6; attempt++ {
		want := base << (attempt - 1) // well below the cap for these attempts
		d := c.backoffDelay(attempt)
		if d < want-want/4 || d > want+want/4 {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", attempt, d, want-want/4, want+want/4)
		}
	}
}

func TestBackoffDelayDeterministicPerSeed(t *testing.T) {
	a := backoffClient(5*time.Millisecond, time.Second)
	b := backoffClient(5*time.Millisecond, time.Second)
	for attempt := 1; attempt <= 10; attempt++ {
		if da, db := a.backoffDelay(attempt), b.backoffDelay(attempt); da != db {
			t.Fatalf("attempt %d: same seed diverged: %s vs %s", attempt, da, db)
		}
	}
}

func row(val float64, start, end int64) wire.AnswerRow {
	return wire.AnswerRow{
		Vals:  []wire.Value{{Num: val}},
		Start: temporal.Tick(start),
		End:   temporal.Tick(end),
	}
}

func testSub(answer []wire.AnswerRow, seq uint64) *Subscription {
	return &Subscription{
		answer:  answer,
		seq:     seq,
		updates: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
}

func signaled(s *Subscription) bool {
	select {
	case <-s.updates:
		return true
	default:
		return false
	}
}

// An unchanged answer at resume must be suppressed — the consumer sees no
// duplicate notification — while the sequence rebases so the fresh
// registration's counter (restarting at zero) continues the old stream.
func TestResumeReconcileSuppressesUnchangedAnswer(t *testing.T) {
	ans := []wire.AnswerRow{row(1, 0, 10)}
	s := testSub(ans, 5)

	rows, changed := s.resumeReconcile([]wire.AnswerRow{row(1, 0, 10)})
	if changed || rows != 0 {
		t.Fatalf("identical answer reported as change: rows=%d changed=%v", rows, changed)
	}
	if signaled(s) {
		t.Fatal("duplicate notification delivered for an unchanged resume answer")
	}
	if _, seq, _ := s.Answer(); seq != 5 {
		t.Fatalf("seq moved to %d on a suppressed resume", seq)
	}

	// The re-registration's first real notification (server seq 1) must
	// land at exactly seq+1: gap-free continuation.
	s.deliver(wire.Notify{Seq: 1, Answer: []wire.AnswerRow{row(2, 0, 10)}})
	if _, seq, _ := s.Answer(); seq != 6 {
		t.Fatalf("post-resume delivery landed at seq %d, want 6", seq)
	}
	if !signaled(s) {
		t.Fatal("real post-resume change not signaled")
	}
}

// A changed answer at resume is one gap-free step: everything missed
// during the outage arrives as a single transition at seq+1.
func TestResumeReconcileInstallsChangedAnswer(t *testing.T) {
	s := testSub([]wire.AnswerRow{row(1, 0, 10)}, 5)

	next := []wire.AnswerRow{row(2, 0, 10), row(3, 5, 10)}
	rows, changed := s.resumeReconcile(next)
	if !changed || rows != len(next) {
		t.Fatalf("changed answer not installed: rows=%d changed=%v", rows, changed)
	}
	if !signaled(s) {
		t.Fatal("changed resume answer not signaled")
	}
	ans, seq, _ := s.Answer()
	if seq != 6 {
		t.Fatalf("resume transition at seq %d, want 6", seq)
	}
	if wire.CanonicalAnswers(ans) != wire.CanonicalAnswers(next) {
		t.Fatal("installed answer differs from resume answer")
	}

	// A stale notification from the dead registration (server seq ≤ the
	// rebased offset) must not regress the stream.
	s.deliver(wire.Notify{Seq: 0, Answer: []wire.AnswerRow{row(9, 0, 1)}})
	if got, seq, _ := s.Answer(); seq != 6 || wire.CanonicalAnswers(got) != wire.CanonicalAnswers(next) {
		t.Fatal("stale pre-resume notification regressed the stream")
	}
	s.deliver(wire.Notify{Seq: 1, Answer: []wire.AnswerRow{row(4, 0, 10)}})
	if _, seq, _ := s.Answer(); seq != 7 {
		t.Fatalf("next delivery landed at seq %d, want 7", seq)
	}
}
