// mostql is an interactive FTL shell over a synthetic moving-objects
// database.  It loads a vehicle fleet plus the MOTELS relation, defines a
// few named regions, and evaluates FTL queries typed at the prompt.
//
// Usage:
//
//	mostql [-n 100] [-seed 1] [-horizon 500]
//	mostql -connect host:7654        # drive a remote mostserver instead
//	mostql -connect host:7654 -proto 1   # force the v1 JSON wire encoding
//
// Commands:
//
//	RETRIEVE ... [FROM ...] WHERE ...   evaluate an instantaneous query
//	.continuous <query>                 register a continuous query
//	.tick [n]                           advance the clock
//	.turn <id> <vx> <vy>                update an object's motion vector
//	.objects [class]                    list objects with current positions
//	.regions                            list named regions
//	.save <file> / .load <file>         snapshot the database to/from JSON
//	.help                               this text
//	.quit                               exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	mostdb "github.com/mostdb/most"
)

type shell struct {
	db      *mostdb.Database
	engine  *mostdb.Engine
	opts    mostdb.QueryOptions
	cont    map[int]*mostdb.ContinuousQuery
	contSrc map[int]string
	nextCQ  int
}

func main() {
	n := flag.Int("n", 100, "fleet size")
	seed := flag.Int64("seed", 1, "workload seed")
	horizon := flag.Int64("horizon", 500, "query expiry horizon (ticks)")
	connect := flag.String("connect", "", "address of a mostserver to drive instead of an in-process database")
	proto := flag.Int("proto", 0, "with -connect: highest wire protocol version to offer (1 = JSON only, 0 = newest)")
	flag.Parse()

	if *connect != "" {
		runRemote(*connect, *horizon, *proto)
		return
	}

	db, err := mostdb.Fleet(mostdb.FleetSpec{
		N:        *n,
		Region:   mostdb.Rect(0, 0, 1000, 1000),
		MaxSpeed: 3,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := mostdb.AddMotels(db, mostdb.MotelsSpec{N: 30, Region: mostdb.Rect(0, 0, 1000, 1000), Seed: *seed}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sh := &shell{
		db:     db,
		engine: mostdb.NewEngine(db),
		opts: mostdb.QueryOptions{
			Horizon: mostdb.Tick(*horizon),
			Regions: map[string]mostdb.Polygon{
				"P":        mostdb.RectPolygon(100, 100, 300, 300),
				"Q":        mostdb.RectPolygon(600, 600, 900, 900),
				"downtown": mostdb.RectPolygon(400, 400, 600, 600),
			},
		},
		cont:    map[int]*mostdb.ContinuousQuery{},
		contSrc: map[int]string{},
	}
	fmt.Printf("mostql: %d vehicles + 30 motels; clock at %d; horizon %d\n", *n, db.Now(), *horizon)
	fmt.Println(`type ".help" for commands`)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("t=%d> ", sh.db.Now())
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if sh.command(line) {
				return
			}
			continue
		}
		sh.query(line)
	}
}

func (sh *shell) query(src string) {
	q, err := mostdb.ParseQuery(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rel, err := sh.engine.InstantaneousRelation(q, sh.opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	now := sh.db.Now()
	rows := rel.At(now)
	fmt.Printf("%d instantiation(s) satisfied at t=%d:\n", len(rows), now)
	for i, vals := range rows {
		if i >= 20 {
			fmt.Printf("  ... and %d more\n", len(rows)-20)
			break
		}
		parts := make([]string, len(vals))
		for j, v := range vals {
			parts[j] = v.String()
		}
		fmt.Println(" ", strings.Join(parts, ", "))
	}
	answers := rel.Answers()
	if len(answers) > 0 && len(answers) <= 10 {
		fmt.Println("full answer intervals:")
		for _, a := range answers {
			parts := make([]string, len(a.Vals))
			for j, v := range a.Vals {
				parts[j] = v.String()
			}
			fmt.Printf("  (%s) during %s\n", strings.Join(parts, ", "), a.Interval)
		}
	}
}

// command handles a dot-command; it returns true to exit.
func (sh *shell) command(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".help":
		fmt.Println(`commands:
  RETRIEVE ... WHERE ...    instantaneous FTL query (classes: Vehicles, Motels)
  .continuous <query>       register a continuous query; answers update with the clock
  .tick [n]                 advance the clock by n (default 1)
  .turn <id> <vx> <vy>      change an object's motion vector
  .objects [class]          list objects and current positions
  .regions                  list named regions (P, Q, downtown)
  .save <file>              snapshot the database to JSON
  .load <file>              replace the database from a snapshot
  .quit                     exit`)
	case ".tick":
		n := int64(1)
		if len(fields) > 1 {
			if v, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				n = v
			}
		}
		sh.db.Advance(mostdb.Tick(n))
		for id, cq := range sh.cont {
			rows, err := cq.Current(sh.db.Now())
			if err != nil {
				continue
			}
			fmt.Printf("[cq%d] %d row(s) at t=%d\n", id, len(rows), sh.db.Now())
		}
	case ".turn":
		if len(fields) != 4 {
			fmt.Println("usage: .turn <id> <vx> <vy>")
			return false
		}
		vx, err1 := strconv.ParseFloat(fields[2], 64)
		vy, err2 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil {
			fmt.Println("bad vector")
			return false
		}
		if err := sh.db.SetMotion(mostdb.ObjectID(fields[1]), mostdb.Vector{X: vx, Y: vy}); err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("%s now heads (%g, %g)\n", fields[1], vx, vy)
	case ".continuous":
		src := strings.TrimSpace(strings.TrimPrefix(line, ".continuous"))
		q, err := mostdb.ParseQuery(src)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		cq, err := sh.engine.Continuous(q, sh.opts)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		sh.nextCQ++
		sh.cont[sh.nextCQ] = cq
		sh.contSrc[sh.nextCQ] = src
		fmt.Printf("registered cq%d; it reports on every .tick\n", sh.nextCQ)
	case ".save":
		if len(fields) != 2 {
			fmt.Println("usage: .save <file>")
			return false
		}
		data, err := sh.db.SnapshotJSON()
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		if err := os.WriteFile(fields[1], data, 0o644); err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("saved %d objects to %s\n", sh.db.Count(), fields[1])
	case ".load":
		if len(fields) != 2 {
			fmt.Println("usage: .load <file>")
			return false
		}
		data, err := os.ReadFile(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		db, err := mostdb.LoadSnapshotJSON(data)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		sh.db = db
		sh.engine = mostdb.NewEngine(db)
		sh.cont = map[int]*mostdb.ContinuousQuery{}
		sh.contSrc = map[int]string{}
		fmt.Printf("loaded %d objects; clock at %d; continuous queries cleared\n", db.Count(), db.Now())
	case ".objects":
		class := ""
		if len(fields) > 1 {
			class = fields[1]
		}
		objs := sh.db.Objects(class)
		for i, o := range objs {
			if i >= 15 {
				fmt.Printf("  ... and %d more\n", len(objs)-15)
				break
			}
			p, err := o.PositionAt(sh.db.Now())
			if err != nil {
				fmt.Printf("  %s (%s)\n", o.ID(), o.Class().Name())
				continue
			}
			fmt.Printf("  %-12s (%s) at (%.1f, %.1f)\n", o.ID(), o.Class().Name(), p.X, p.Y)
		}
	case ".regions":
		for name := range sh.opts.Regions {
			b := sh.opts.Regions[name].Bounds()
			fmt.Printf("  %-9s [%g,%g] x [%g,%g]\n", name, b.Min.X, b.Max.X, b.Min.Y, b.Max.Y)
		}
	default:
		fmt.Println("unknown command; try .help")
	}
	return false
}
