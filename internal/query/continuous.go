package query

import (
	"sync"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/temporal"
)

// Continuous is a registered continuous query handle: Answer(CQ) is
// materialized once at registration and maintained under explicit updates.
// Between updates, presentation at each clock tick is a lookup, not a
// reevaluation — the paper's central efficiency claim for continuous
// queries ("our query processing algorithm facilitates a single evaluation
// of the query; reevaluation has to occur only if the motion vector of the
// car changes").
//
// Registrations that canonicalize to the same plan key (see planKey) share
// one maintained sharedPlan: the handle carries only its own listeners and
// cancellation state, while evaluation, delta maintenance, and the
// version-guarded install live on the plan.  N subscribers to the same
// query shape cost one maintenance per update, not N.
type Continuous struct {
	sp *sharedPlan

	mu        sync.Mutex
	listeners []func(*eval.Relation)
	cancelled bool
}

// Continuous registers a continuous query, evaluating it once — or, when a
// plan with the same canonical key is already maintained, attaching to it
// without any evaluation at all.
func (e *Engine) Continuous(q *ftl.Query, opts Options) (*Continuous, error) {
	key := planKey(q, opts)
	h := &Continuous{}
	for {
		e.mu.Lock()
		if p, ok := e.plans[key]; ok {
			p.mu.Lock()
			p.subs = append(p.subs, h)
			p.mu.Unlock()
			h.sp = p
			e.mu.Unlock()
			<-p.ready
			if p.initErr != nil {
				// The creator's initial evaluation failed and removed the
				// plan; retry (either creating it ourselves and observing
				// the same error, or joining a fresh healthy plan).
				h.sp = nil
				continue
			}
			e.reg().Counter("query.continuous.shared_hits").Inc()
			return h, nil
		}

		// Create the plan, registering it before the initial evaluation and
		// holding the maintenance loop (evaluating=true), so an update
		// committed between the initial snapshot and the map insertion is
		// queued and applied by the drain below instead of being lost: the
		// update's log append either precedes the Version read (and is in
		// the evaluated snapshot) or follows the map insertion (and its
		// onUpdate finds the plan).
		p := newSharedPlan(e, key, q, opts)
		p.evaluating = true
		p.subs = []*Continuous{h}
		h.sp = p
		e.nextPlanID++
		p.planID = e.nextPlanID
		e.plans[key] = p
		e.rebuildSnapshot()
		e.mu.Unlock()
		e.reg().Counter("query.continuous.shared_plans").Inc()

		v := e.db.Version()
		rel, now, err := p.evaluate()
		if err != nil {
			e.mu.Lock()
			if e.plans[key] == p {
				delete(e.plans, key)
				e.rebuildSnapshot()
			}
			e.mu.Unlock()
			e.reg().Counter("query.continuous.shared_plans").Add(-1)
			p.mu.Lock()
			p.removed = true
			p.initErr = err
			p.mu.Unlock()
			close(p.ready)
			return nil, err
		}
		p.mu.Lock()
		p.answer, p.version, p.anchor = rel, v, now
		p.storeValidity(now)
		p.mu.Unlock()
		close(p.ready)
		p.drain()
		return h, nil
	}
}

// PlanID identifies the shared plan this handle is attached to: handles
// with equal PlanIDs receive identical answer streams, so downstream
// consumers (the server's push path) can convert each install once per
// plan instead of once per subscriber.
func (cq *Continuous) PlanID() uint64 { return cq.sp.planID }

// Answer returns the materialized Answer(CQ) relation.
func (cq *Continuous) Answer() (*eval.Relation, error) {
	cq.mu.Lock()
	if cq.cancelled {
		cq.mu.Unlock()
		return nil, errUnregistered
	}
	cq.mu.Unlock()
	p := cq.sp
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.answer, p.err
}

// Current returns the instantiations presented at tick t: "the system
// presents to the user at each clock-tick t the instantiations of the
// tuples having an interval that contains t" (§3.5).
func (cq *Continuous) Current(t temporal.Tick) ([]Row, error) {
	rel, err := cq.Answer()
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, vals := range rel.At(t) {
		rows = append(rows, Row(vals))
	}
	return rows, nil
}

// Subscribe registers a listener invoked with the new Answer(CQ) after
// every maintenance round that changes it (full reevaluation or delta
// patch; no-change installs are suppressed).  Coupled with an action this
// is a temporal trigger (§2.3).  On a cancelled handle it reports
// errUnregistered, consistent with Answer, and the listener is dropped.
// A listener added while a maintenance round is in flight observes the
// next install.
func (cq *Continuous) Subscribe(fn func(*eval.Relation)) error {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if cq.cancelled {
		return errUnregistered
	}
	cq.listeners = append(cq.listeners, fn)
	return nil
}

// Cancel unregisters the handle ("until cancelled", §2.3).  The shared
// plan stays alive while other handles remain attached; the last Cancel
// removes it from the engine.
func (cq *Continuous) Cancel() {
	p := cq.sp
	e := p.engine
	e.mu.Lock()
	p.mu.Lock()
	for i, s := range p.subs {
		if s == cq {
			p.subs = append(p.subs[:i], p.subs[i+1:]...)
			break
		}
	}
	last := len(p.subs) == 0 && e.plans[p.key] == p
	if last {
		delete(e.plans, p.key)
		p.removed = true
		e.rebuildSnapshot()
	}
	p.mu.Unlock()
	e.mu.Unlock()
	if last {
		e.reg().Counter("query.continuous.shared_plans").Add(-1)
	}
	cq.mu.Lock()
	cq.cancelled = true
	cq.mu.Unlock()
}
