package eval

import (
	"sort"
	"strings"

	"github.com/mostdb/most/internal/temporal"
)

// Relation is the appendix's Rg: for a subformula g with free variables
// x1..xl it holds, per instantiation, the normalized set of intervals
// during which g is satisfied with respect to that instantiation.  One
// Tuple aggregates all intervals of one instantiation (the appendix's
// non-consecutiveness invariant is temporal.Set's invariant).
type Relation struct {
	Cols   []string
	tuples map[string]*Tuple
}

// Tuple is one instantiation with its satisfaction set.
type Tuple struct {
	Vals  []Val
	Times temporal.Set
}

// NewRelation returns an empty relation with the given columns.
func NewRelation(cols ...string) *Relation {
	return &Relation{Cols: cols, tuples: map[string]*Tuple{}}
}

// Add unions the set into the instantiation's tuple.
func (r *Relation) Add(vals []Val, times temporal.Set) {
	if times.IsEmpty() {
		return
	}
	key := encodeVals(vals)
	if t, ok := r.tuples[key]; ok {
		t.Times = t.Times.Union(times)
		return
	}
	cp := make([]Val, len(vals))
	copy(cp, vals)
	r.tuples[key] = &Tuple{Vals: cp, Times: times}
}

// Clone returns a copy sharing no mutable state with r: patching one never
// changes the other.  Value slices and satisfaction sets are shared — both
// are immutable throughout this package (Add replaces a tuple's set rather
// than mutating it).
func (r *Relation) Clone() *Relation {
	out := &Relation{
		Cols:   append([]string(nil), r.Cols...),
		tuples: make(map[string]*Tuple, len(r.tuples)),
	}
	for k, t := range r.tuples {
		out.tuples[k] = &Tuple{Vals: t.Vals, Times: t.Times}
	}
	return out
}

// DeleteWhere removes every tuple whose col column equals v, returning the
// number of tuples removed.
func (r *Relation) DeleteWhere(col string, v Val) (int, error) {
	idx := -1
	for i, c := range r.Cols {
		if c == col {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, errf("delete column %q not in relation %v", col, r.Cols)
	}
	n := 0
	for k, t := range r.tuples {
		if t.Vals[idx] == v {
			delete(r.tuples, k)
			n++
		}
	}
	return n, nil
}

// InsertFrom adds every tuple of src (whose columns must be a permutation
// of r's) into r, unioning satisfaction sets on collision.
func (r *Relation) InsertFrom(src *Relation) error {
	aligned, err := src.Project(r.Cols)
	if err != nil {
		return err
	}
	if len(aligned.Cols) != len(src.Cols) {
		return errf("insert columns %v do not match relation %v", src.Cols, r.Cols)
	}
	for _, t := range aligned.tuples {
		r.Add(t.Vals, t.Times)
	}
	return nil
}

// Len returns the number of distinct instantiations.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuples sorted by instantiation for deterministic
// iteration.
func (r *Relation) Tuples() []*Tuple {
	keys := make([]string, 0, len(r.tuples))
	for k := range r.tuples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Tuple, len(keys))
	for i, k := range keys {
		out[i] = r.tuples[k]
	}
	return out
}

// Lookup returns the satisfaction set for an instantiation.
func (r *Relation) Lookup(vals []Val) (temporal.Set, bool) {
	t, ok := r.tuples[encodeVals(vals)]
	if !ok {
		return temporal.Set{}, false
	}
	return t.Times, true
}

// colIndex maps column names to positions.
func (r *Relation) colIndex() map[string]int {
	m := make(map[string]int, len(r.Cols))
	for i, c := range r.Cols {
		m[c] = i
	}
	return m
}

// Project groups the tuples by the given columns, unioning sets.
func (r *Relation) Project(cols []string) (*Relation, error) {
	idx := r.colIndex()
	pos := make([]int, len(cols))
	for i, c := range cols {
		p, ok := idx[c]
		if !ok {
			return nil, errf("projection column %q not in relation %v", c, r.Cols)
		}
		pos[i] = p
	}
	out := NewRelation(cols...)
	for _, t := range r.tuples {
		vals := make([]Val, len(cols))
		for i, p := range pos {
			vals[i] = t.Vals[p]
		}
		out.Add(vals, t.Times)
	}
	return out, nil
}

// Map applies fn to every tuple's satisfaction set, dropping tuples whose
// result is empty.  It implements the unary temporal operators.
func (r *Relation) Map(fn func(temporal.Set) temporal.Set) *Relation {
	out := NewRelation(r.Cols...)
	for _, t := range r.tuples {
		out.Add(t.Vals, fn(t.Times))
	}
	return out
}

// Join computes the appendix's conjunction join: tuples matching on common
// columns combine into a tuple over the union of columns whose set is the
// intersection of the operands' sets ("the join condition is that common
// variable attributes should be equal and the interval attributes should
// intersect").
func Join(a, b *Relation) *Relation {
	return joinWith(a, b, func(x, y temporal.Set) temporal.Set { return x.Intersect(y) })
}

// joinWith is Join with a custom per-instantiation set combiner.
func joinWith(a, b *Relation, op func(x, y temporal.Set) temporal.Set) *Relation {
	shared, bOnly := alignCols(a.Cols, b.Cols)
	outCols := append(append([]string{}, a.Cols...), bOnly...)
	out := NewRelation(outCols...)

	aIdx, bIdx := a.colIndex(), b.colIndex()
	// Index b by its shared-column projection.
	bByShared := map[string][]*Tuple{}
	for _, t := range b.tuples {
		key := projectKey(t.Vals, bIdx, shared)
		bByShared[key] = append(bByShared[key], t)
	}
	bOnlyPos := make([]int, len(bOnly))
	for i, c := range bOnly {
		bOnlyPos[i] = bIdx[c]
	}
	for _, ta := range a.tuples {
		key := projectKey(ta.Vals, aIdx, shared)
		for _, tb := range bByShared[key] {
			combined := op(ta.Times, tb.Times)
			if combined.IsEmpty() {
				continue
			}
			vals := make([]Val, 0, len(outCols))
			vals = append(vals, ta.Vals...)
			for _, p := range bOnlyPos {
				vals = append(vals, tb.Vals[p])
			}
			out.Add(vals, combined)
		}
	}
	return out
}

// alignCols returns the columns shared by both relations and those only in
// b, preserving order.
func alignCols(a, b []string) (shared, bOnly []string) {
	inA := map[string]bool{}
	for _, c := range a {
		inA[c] = true
	}
	for _, c := range b {
		if inA[c] {
			shared = append(shared, c)
		} else {
			bOnly = append(bOnly, c)
		}
	}
	return shared, bOnly
}

func projectKey(vals []Val, idx map[string]int, cols []string) string {
	var b strings.Builder
	for _, c := range cols {
		v := vals[idx[c]]
		b.WriteString(encodeVals([]Val{v}))
	}
	return b.String()
}

// Expand widens the relation to the given column superset by taking the
// cartesian product with the domains of the missing variables.  It is the
// alignment step before Or, Until and Not, where an instantiation absent
// from one operand still matters.  Missing variables must have enumerable
// domains (the safety condition; the paper restricts its algorithm to
// conjunctive formulas for the same reason).
func (r *Relation) Expand(cols []string, domains map[string][]Val) (*Relation, error) {
	missing := []string{}
	have := map[string]bool{}
	for _, c := range r.Cols {
		have[c] = true
	}
	for _, c := range cols {
		if !have[c] {
			missing = append(missing, c)
		}
	}
	if len(missing) == 0 {
		return r.Project(cols)
	}
	for _, c := range missing {
		if _, ok := domains[c]; !ok {
			return nil, errf("unsafe formula: variable %q has no enumerable domain", c)
		}
	}
	out := NewRelation(cols...)
	idx := r.colIndex()
	var rec func(t *Tuple, i int, acc map[string]Val)
	rec = func(t *Tuple, i int, acc map[string]Val) {
		if i == len(missing) {
			vals := make([]Val, len(cols))
			for j, c := range cols {
				if p, ok := idx[c]; ok {
					vals[j] = t.Vals[p]
				} else {
					vals[j] = acc[c]
				}
			}
			out.Add(vals, t.Times)
			return
		}
		for _, v := range domains[missing[i]] {
			acc[missing[i]] = v
			rec(t, i+1, acc)
		}
	}
	for _, t := range r.tuples {
		rec(t, 0, map[string]Val{})
	}
	return out, nil
}

// CombineAligned merges two relations with identical column sets (b's
// columns may be in a different order) by applying op per instantiation,
// treating a missing instantiation as the empty set.  It implements Or
// (op = union) and Until (op = chain merge) after Expand alignment.
func CombineAligned(a, b *Relation, op func(x, y temporal.Set) temporal.Set) (*Relation, error) {
	bAligned, err := b.Project(a.Cols)
	if err != nil {
		return nil, err
	}
	out := NewRelation(a.Cols...)
	seen := map[string]bool{}
	for key, ta := range a.tuples {
		seen[key] = true
		var bt temporal.Set
		if tb, ok := bAligned.tuples[key]; ok {
			bt = tb.Times
		}
		out.Add(ta.Vals, op(ta.Times, bt))
	}
	for key, tb := range bAligned.tuples {
		if !seen[key] {
			out.Add(tb.Vals, op(temporal.Set{}, tb.Times))
		}
	}
	return out, nil
}

// ComplementOver returns, for every instantiation in the domain product of
// r's columns, the window minus the instantiation's satisfaction set —
// negation over a closed domain.
func (r *Relation) ComplementOver(domains map[string][]Val, w temporal.Interval) (*Relation, error) {
	out := NewRelation(r.Cols...)
	for _, c := range r.Cols {
		if _, ok := domains[c]; !ok {
			return nil, errf("unsafe negation: variable %q has no enumerable domain", c)
		}
	}
	var rec func(i int, vals []Val)
	rec = func(i int, vals []Val) {
		if i == len(r.Cols) {
			var cur temporal.Set
			if t, ok := r.tuples[encodeVals(vals)]; ok {
				cur = t.Times
			}
			out.Add(vals, cur.ComplementWithin(w))
			return
		}
		for _, v := range domains[r.Cols[i]] {
			rec(i+1, append(vals, v))
		}
	}
	rec(0, make([]Val, 0, len(r.Cols)))
	return out, nil
}

// Answer is one materialized answer tuple: an instantiation and one maximal
// interval during which it satisfies the query — the (ν, begin, end) tuples
// of Answer(CQ) in §2.3.
type Answer struct {
	Vals     []Val
	Interval temporal.Interval
}

// Answers flattens the relation into Answer tuples sorted by instantiation
// then interval start.
func (r *Relation) Answers() []Answer {
	var out []Answer
	for _, t := range r.Tuples() {
		for _, iv := range t.Times.Intervals() {
			out = append(out, Answer{Vals: t.Vals, Interval: iv})
		}
	}
	return out
}

// At returns the instantiations whose satisfaction set contains tick t —
// how "the system presents to the user the instantiations of the tuples
// having an interval that contains the current clock-tick" (§3.5).
func (r *Relation) At(tick temporal.Tick) [][]Val {
	var out [][]Val
	for _, t := range r.Tuples() {
		if t.Times.Contains(tick) {
			out = append(out, t.Vals)
		}
	}
	return out
}

// Equal reports whether r and o hold exactly the same instantiations with
// identical satisfaction sets (columns compared positionally).  Continuous
// query maintenance uses it to suppress no-change installs: a reevaluation
// that reproduces the previous answer need not fan out to listeners.
func (r *Relation) Equal(o *Relation) bool {
	if r == nil || o == nil {
		return r == o
	}
	if len(r.Cols) != len(o.Cols) || len(r.tuples) != len(o.tuples) {
		return false
	}
	for i, c := range r.Cols {
		if o.Cols[i] != c {
			return false
		}
	}
	for k, t := range r.tuples {
		ot, ok := o.tuples[k]
		if !ok || !t.Times.Equal(ot.Times) {
			return false
		}
	}
	return true
}
