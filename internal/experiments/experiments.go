// Package experiments regenerates the paper's quantitative claims.  The
// paper (ICDE 1997) has no numbered result tables — its only figure is the
// conceptual history diagram — so each experiment (E1..E10, the §7
// future-work studies E11 and E12, and the robustness study E13) validates one of
// the concrete claims its text makes; DESIGN.md maps each to the paper
// section, and EXPERIMENTS.md records claim-versus-measured.  E14
// (CityBench, mostbench -city) is the application-centric capstone: the
// whole stack serving a seeded city-scale workload over TCP.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// Table is one regenerated result table.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being validated
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// registry maps experiment IDs to their runners, in index order, so a
// filtered run (mostbench -only) executes only the selected experiments
// instead of computing every table and discarding most of them.
var registry = []struct {
	ID  string
	Run func(quick bool) *Table
}{
	{"E1", func(bool) *Table { return E1QueryTypes() }},
	{"E2", E2UpdateTraffic},
	{"E3", E3IndexVsScan},
	{"E4", E4ContinuousIndex},
	{"E5", E5ContinuousVsPerTick},
	{"E6", E6UntilJoin},
	{"E7", E7Decomposition},
	{"E8", E8RewriteWithIndex},
	{"E9", E9DistStrategies},
	{"E10", E10ImmediateVsDelayed},
	{"E11", E11IndexMechanisms},
	{"E12", E12HorizonChoice},
	{"E13", E13Faults},
}

// Run executes the experiments whose IDs are in want (all of them when
// want is empty), in index order.
func Run(want map[string]bool, quick bool) []*Table {
	var out []*Table
	for _, e := range registry {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		out = append(out, e.Run(quick))
	}
	return out
}

// All runs every experiment (quick=true shrinks sweeps for CI-speed runs).
func All(quick bool) []*Table { return Run(nil, quick) }

// timeIt measures fn over reps runs and returns the per-run duration.  A
// collection runs first so garbage from fixture construction is not billed
// to the measured operation.
func timeIt(reps int, fn func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	runtime.GC()
	fn() // warm caches
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(reps)
}

func ns(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
