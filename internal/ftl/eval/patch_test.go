package eval

import (
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/temporal"
)

func setOf(ivs ...temporal.Interval) temporal.Set {
	return temporal.NewSet(ivs...)
}

func TestRelationClone(t *testing.T) {
	r := NewRelation("o")
	r.Add([]Val{ObjVal("a")}, setOf(temporal.Interval{Start: 0, End: 5}))
	r.Add([]Val{ObjVal("b")}, setOf(temporal.Interval{Start: 2, End: 4}))

	c := r.Clone()
	// Mutating the clone (union into an existing tuple, delete another)
	// must leave the original untouched.
	c.Add([]Val{ObjVal("a")}, setOf(temporal.Interval{Start: 8, End: 9}))
	if _, err := c.DeleteWhere("o", ObjVal("b")); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Lookup([]Val{ObjVal("a")}); !got.Equal(setOf(temporal.Interval{Start: 0, End: 5})) {
		t.Errorf("original a set changed to %v", got)
	}
	if _, ok := r.Lookup([]Val{ObjVal("b")}); !ok {
		t.Error("original lost tuple b after clone mutation")
	}
	if got, _ := c.Lookup([]Val{ObjVal("a")}); !got.Contains(8) {
		t.Errorf("clone a set = %v, want union with [8,9]", got)
	}
}

func TestRelationDeleteWhere(t *testing.T) {
	r := NewRelation("o", "n")
	iv := setOf(temporal.Interval{Start: 0, End: 1})
	r.Add([]Val{ObjVal("a"), ObjVal("b")}, iv)
	r.Add([]Val{ObjVal("b"), ObjVal("a")}, iv)
	r.Add([]Val{ObjVal("c"), ObjVal("c")}, iv)

	n, err := r.DeleteWhere("o", ObjVal("a"))
	if err != nil || n != 1 {
		t.Fatalf("DeleteWhere(o,a) = %d, %v; want 1, nil", n, err)
	}
	n, err = r.DeleteWhere("n", ObjVal("a"))
	if err != nil || n != 1 {
		t.Fatalf("DeleteWhere(n,a) = %d, %v; want 1, nil", n, err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if _, err := r.DeleteWhere("x", ObjVal("a")); err == nil {
		t.Error("DeleteWhere on unknown column: want error")
	}
}

func TestRelationInsertFrom(t *testing.T) {
	r := NewRelation("o", "n")
	r.Add([]Val{ObjVal("a"), ObjVal("b")}, setOf(temporal.Interval{Start: 0, End: 2}))

	// Permuted columns are realigned.
	src := NewRelation("n", "o")
	src.Add([]Val{ObjVal("b"), ObjVal("a")}, setOf(temporal.Interval{Start: 5, End: 6}))
	src.Add([]Val{ObjVal("c"), ObjVal("c")}, setOf(temporal.Interval{Start: 1, End: 1}))
	if err := r.InsertFrom(src); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Lookup([]Val{ObjVal("a"), ObjVal("b")})
	want := setOf(temporal.Interval{Start: 0, End: 2}, temporal.Interval{Start: 5, End: 6})
	if !got.Equal(want) {
		t.Errorf("merged set = %v, want %v", got, want)
	}
	if _, ok := r.Lookup([]Val{ObjVal("c"), ObjVal("c")}); !ok {
		t.Error("missing inserted tuple (c,c)")
	}

	// Mismatched column sets are rejected, in both directions.
	if err := r.InsertFrom(NewRelation("o")); err == nil {
		t.Error("InsertFrom with missing column: want error")
	}
	if err := NewRelation("o").InsertFrom(r); err == nil {
		t.Error("InsertFrom with extra column: want error")
	}
}

// TestEvalQueryPinned checks the per-object entry point against the full
// evaluation: pinning a variable to one object must reproduce exactly the
// full answer's tuples for that object, for single- and two-binding
// queries, and must not disturb the caller's context.
func TestEvalQueryPinned(t *testing.T) {
	f := newFixture(t)
	f.addCar(t, "fast", 80, geom.Point{X: 0}, geom.Vector{X: 4})
	f.addCar(t, "slow", 80, geom.Point{X: 0}, geom.Vector{X: 1})
	f.addCar(t, "parked", 50, geom.Point{X: 15}, geom.Vector{})

	queries := []string{
		`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 3 INSIDE(o, P)`,
		`RETRIEVE o, n FROM Vehicles o, Vehicles n WHERE ALWAYS FOR 5 DIST(o, n) <= 12`,
		`RETRIEVE o FROM Vehicles o WHERE NOT INSIDE(o, P)`,
	}
	for _, src := range queries {
		q := ftl.MustParse(src)
		for _, b := range q.Bindings {
			if _, ok := f.ctx.Domains[b.Var]; !ok {
				f.ctx.Domains[b.Var] = append([]Val{}, f.ctx.Domains["o"]...)
			}
		}
		full, err := EvalQuery(q, f.ctx)
		if err != nil {
			t.Fatalf("EvalQuery(%s): %v", src, err)
		}
		for _, pinVar := range q.Targets {
			for _, id := range []most.ObjectID{"fast", "slow", "parked"} {
				before := len(f.ctx.Domains[pinVar])
				pinned, err := EvalQueryPinned(q, f.ctx, pinVar, ObjVal(id))
				if err != nil {
					t.Fatalf("EvalQueryPinned(%s, %s=%s): %v", src, pinVar, id, err)
				}
				if len(f.ctx.Domains[pinVar]) != before {
					t.Fatalf("EvalQueryPinned mutated the context's %q domain", pinVar)
				}
				// Every pinned tuple must match the full answer, and every
				// full-answer tuple binding id at pinVar must be present.
				restricted := full.Clone()
				for _, other := range []most.ObjectID{"fast", "slow", "parked"} {
					if other == id {
						continue
					}
					if _, err := restricted.DeleteWhere(pinVar, ObjVal(other)); err != nil {
						t.Fatal(err)
					}
				}
				if !relationsEqual(pinned, restricted) {
					t.Errorf("%s pinned %s=%s:\n got %v\nwant %v",
						src, pinVar, id, pinned.Answers(), restricted.Answers())
				}
			}
		}
	}

	if _, err := EvalQueryPinned(ftl.MustParse(queries[0]), f.ctx, "zz", ObjVal("fast")); err == nil {
		t.Error("EvalQueryPinned with unbound variable: want error")
	}
}
