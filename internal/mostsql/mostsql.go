// Package mostsql implements §5.1 of the paper: the MOST system layered on
// top of an existing (non-temporal) DBMS.  Each dynamic attribute A is
// stored as three ordinary columns A_value, A_updatetime and A_function;
// queries that reference A directly are intercepted, decomposed into
// dynamic-free queries for the underlying DBMS, and post-processed:
//
//   - a reference to A in the SELECT clause is replaced by its three
//     sub-attributes, and the MOST layer computes A's current value before
//     returning the rows;
//   - an atom p over dynamic attributes in the WHERE clause is eliminated
//     via the equivalence F = (F' AND p) OR (F” AND NOT p), where F' is F
//     with p replaced by true and F” with p replaced by false; with k
//     dynamic atoms this evaluates up to 2^k dynamic-free queries;
//   - with a dynamic-attribute index available, instead of evaluating p on
//     every retrieved tuple, the tuples satisfying p are fetched from the
//     index and joined on the table key.
package mostsql

import (
	"fmt"
	"strings"
	"sync"

	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/relstore"
	"github.com/mostdb/most/internal/temporal"
)

// TableInfo describes a MOST table: which columns are static and which
// names denote dynamic attributes (each backed by three DBMS columns).
type TableInfo struct {
	Name    string
	Key     string
	Static  []string
	Dynamic []string

	dynamic map[string]bool
}

// IsDynamic reports whether name is one of the table's dynamic attributes.
func (ti *TableInfo) IsDynamic(name string) bool { return ti.dynamic[name] }

// Sub-attribute column names for a dynamic attribute.
func valueCol(a string) string  { return a + "_value" }
func updateCol(a string) string { return a + "_updatetime" }
func funcCol(a string) string   { return a + "_function" }

// System is the MOST wrapper around an underlying store.
type System struct {
	store *relstore.Store
	now   func() temporal.Tick

	mu      sync.Mutex
	tables  map[string]*TableInfo
	indexes map[string]*index.AttrIndex // "table\x00attr"

	queriesIssued int
}

// New wraps a store; now supplies the current clock tick (the MOST layer
// computes dynamic values "at the time the query is entered").
func New(store *relstore.Store, now func() temporal.Tick) *System {
	return &System{
		store:   store,
		now:     now,
		tables:  map[string]*TableInfo{},
		indexes: map[string]*index.AttrIndex{},
	}
}

// QueriesIssued returns how many queries were submitted to the underlying
// DBMS since the last ResetCounters — the cost measure of the §5.1
// decomposition (up to 2^k dynamic-free queries for k dynamic atoms).
func (s *System) QueriesIssued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queriesIssued
}

// ResetCounters zeroes the query counter.
func (s *System) ResetCounters() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queriesIssued = 0
}

func (s *System) countQuery() {
	s.mu.Lock()
	s.queriesIssued++
	s.mu.Unlock()
}

// CreateTable declares a MOST table with the given key column, static
// columns and dynamic attributes.
func (s *System) CreateTable(name, key string, static, dynamic []string) (*TableInfo, error) {
	cols := []string{key}
	cols = append(cols, static...)
	for _, a := range dynamic {
		cols = append(cols, valueCol(a), updateCol(a), funcCol(a))
	}
	if _, err := s.store.CreateTable(name, cols...); err != nil {
		return nil, err
	}
	ti := &TableInfo{
		Name:    name,
		Key:     key,
		Static:  append([]string{}, static...),
		Dynamic: append([]string{}, dynamic...),
		dynamic: map[string]bool{},
	}
	for _, a := range dynamic {
		ti.dynamic[a] = true
	}
	s.mu.Lock()
	s.tables[name] = ti
	s.mu.Unlock()
	return ti, nil
}

// tableInfo fetches the MOST metadata of a table.
func (s *System) tableInfo(name string) (*TableInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ti, ok := s.tables[name]
	return ti, ok
}

// Insert adds an object row.
func (s *System) Insert(table string, key relstore.Value, static map[string]relstore.Value, dynamic map[string]motion.DynamicAttr) error {
	ti, ok := s.tableInfo(table)
	if !ok {
		return fmt.Errorf("mostsql: no MOST table %s", table)
	}
	t, _ := s.store.Table(table)
	row := make(relstore.Row, 0, len(t.Columns))
	row = append(row, key)
	for _, c := range ti.Static {
		row = append(row, static[c])
	}
	for _, a := range ti.Dynamic {
		d := dynamic[a]
		row = append(row,
			relstore.Num(d.Value),
			relstore.Num(float64(d.UpdateTime)),
			relstore.Str(d.Function.String()),
		)
	}
	if err := t.Insert(row); err != nil {
		return err
	}
	for _, a := range ti.Dynamic {
		if ix := s.indexFor(table, a); ix != nil {
			if err := ix.Insert(keyID(key), dynamic[a]); err != nil {
				return err
			}
		}
	}
	return nil
}

// UpdateDynamic explicitly updates a dynamic attribute of the row with the
// given key, updating any index on it.
func (s *System) UpdateDynamic(table string, key relstore.Value, attr string, d motion.DynamicAttr) error {
	ti, ok := s.tableInfo(table)
	if !ok {
		return fmt.Errorf("mostsql: no MOST table %s", table)
	}
	if !ti.IsDynamic(attr) {
		return fmt.Errorf("mostsql: %s.%s is not a dynamic attribute", table, attr)
	}
	stmt := fmt.Sprintf("UPDATE %s SET %s = %s, %s = %s, %s = '%s' WHERE %s = %s",
		table,
		valueCol(attr), relstore.Num(d.Value).String(),
		updateCol(attr), relstore.Num(float64(d.UpdateTime)).String(),
		funcCol(attr), d.Function.String(),
		ti.Key, renderValue(key),
	)
	s.countQuery()
	rs, err := s.store.Exec(stmt)
	if err != nil {
		return err
	}
	if rs.Rows[0][0] == relstore.Num(0) {
		return fmt.Errorf("mostsql: no row in %s with key %s", table, key)
	}
	if ix := s.indexFor(table, attr); ix != nil {
		return ix.Update(keyID(key), d, d.UpdateTime)
	}
	return nil
}

// CreateDynamicIndex attaches a §4 dynamic-attribute index to table.attr,
// built from the current rows, covering [base, base+T).
func (s *System) CreateDynamicIndex(table, attr string, base, T temporal.Tick) error {
	ti, ok := s.tableInfo(table)
	if !ok {
		return fmt.Errorf("mostsql: no MOST table %s", table)
	}
	if !ti.IsDynamic(attr) {
		return fmt.Errorf("mostsql: %s.%s is not a dynamic attribute", table, attr)
	}
	ix := index.NewAttrIndex(base, T)
	t, _ := s.store.Table(table)
	ki, _ := t.ColIndex(ti.Key)
	var ierr error
	t.Scan(func(r relstore.Row) bool {
		d, err := rowDynamicAttr(t, r, attr)
		if err != nil {
			ierr = err
			return false
		}
		if err := ix.Insert(keyID(r[ki]), d); err != nil {
			ierr = err
			return false
		}
		return true
	})
	if ierr != nil {
		return ierr
	}
	s.mu.Lock()
	s.indexes[table+"\x00"+attr] = ix
	s.mu.Unlock()
	return nil
}

func (s *System) indexFor(table, attr string) *index.AttrIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.indexes[table+"\x00"+attr]
}

// keyID converts a key value to an object id for the index.
func keyID(v relstore.Value) most.ObjectID { return most.ObjectID(v.String()) }

func renderValue(v relstore.Value) string {
	if v.Kind == relstore.KStr {
		return "'" + v.S + "'"
	}
	return v.String()
}

// rowDynamicAttr reconstructs a dynamic attribute from its three columns.
func rowDynamicAttr(t *relstore.Table, r relstore.Row, attr string) (motion.DynamicAttr, error) {
	vi, ok := t.ColIndex(valueCol(attr))
	if !ok {
		return motion.DynamicAttr{}, fmt.Errorf("mostsql: missing column %s", valueCol(attr))
	}
	ui, _ := t.ColIndex(updateCol(attr))
	fi, _ := t.ColIndex(funcCol(attr))
	f, err := motion.ParseFunc(r[fi].S)
	if err != nil {
		return motion.DynamicAttr{}, err
	}
	return motion.DynamicAttr{
		Value:      r[vi].F,
		UpdateTime: temporal.Tick(r[ui].F),
		Function:   f,
	}, nil
}

// dynamicRefs returns the dynamic attribute names referenced by e.
func dynamicRefs(e relstore.Expr, ti *TableInfo) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(relstore.Expr)
	walk = func(e relstore.Expr) {
		switch n := e.(type) {
		case relstore.ColExpr:
			_, col := n.Parts()
			if ti.IsDynamic(col) && !seen[col] {
				seen[col] = true
				out = append(out, col)
			}
		case relstore.BinExpr:
			_, l, r := n.Parts()
			walk(l)
			walk(r)
		case relstore.NotExpr:
			walk(n.Inner())
		}
	}
	walk(e)
	return out
}

// errNoMOSTTable formats the common error.
func errNoMOSTTable(names []string) error {
	return fmt.Errorf("mostsql: FROM must name exactly one MOST table, got %s", strings.Join(names, ", "))
}
