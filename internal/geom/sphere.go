package geom

import "math"

// This file implements the paper's WITHIN-A-SPHERE(r, o1, ..., ok) spatial
// method: "indicates whether or not the point-objects can be enclosed
// within a sphere of radius r" (§2) — i.e. whether the minimal enclosing
// ball of the points has radius <= r — plus its kinetic form over moving
// points.

// Ball is a sphere given by centre and radius.
type Ball struct {
	Center Point
	Radius float64
}

// Contains reports whether p lies in the closed ball (with tolerance).
func (b Ball) Contains(p Point) bool {
	return Dist2(b.Center, p) <= b.Radius*b.Radius+1e-9*(1+b.Radius)
}

// MinEnclosingBall returns the smallest ball containing all points, by
// Welzl's move-to-front algorithm with support sets of up to four points.
// It is exact (up to floating point) in 2-D and 3-D.
func MinEnclosingBall(points []Point) Ball {
	if len(points) == 0 {
		return Ball{}
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	return welzl(ps, len(ps), nil)
}

func welzl(ps []Point, n int, boundary []Point) Ball {
	if n == 0 || len(boundary) == 4 {
		return ballFromBoundary(boundary)
	}
	p := ps[n-1]
	b := welzl(ps, n-1, boundary)
	if b.Contains(p) {
		return b
	}
	return welzl(ps, n-1, append(boundary, p))
}

func ballFromBoundary(b []Point) Ball {
	switch len(b) {
	case 0:
		return Ball{Radius: -1} // empty: contains nothing
	case 1:
		return Ball{Center: b[0]}
	case 2:
		return ballFrom2(b[0], b[1])
	case 3:
		return ballFrom3(b[0], b[1], b[2])
	default:
		return ballFrom4(b[0], b[1], b[2], b[3])
	}
}

func ballFrom2(a, b Point) Ball {
	c := Point{(a.X + b.X) / 2, (a.Y + b.Y) / 2, (a.Z + b.Z) / 2}
	return Ball{Center: c, Radius: Dist(c, a)}
}

// ballFrom3 returns the ball whose boundary passes through a, b, c: the
// circumcircle of the triangle, embedded in the triangle's plane.
func ballFrom3(a, b, c Point) Ball {
	ab := b.Sub(a)
	ac := c.Sub(a)
	cr := crossV(ab, ac)
	den := 2 * cr.Dot(cr)
	if den < 1e-18 {
		// Collinear: the diameter is the farthest pair.
		best := ballFrom2(a, b)
		if alt := ballFrom2(a, c); alt.Radius > best.Radius {
			best = alt
		}
		if alt := ballFrom2(b, c); alt.Radius > best.Radius {
			best = alt
		}
		return best
	}
	// Circumcentre = a + [ (|ac|^2 (cr x ab)) + (|ab|^2 (ac x cr)) ] / den.
	t1 := crossV(cr, ab).Scale(ac.Dot(ac))
	t2 := crossV(ac, cr).Scale(ab.Dot(ab))
	off := t1.AddVec(t2).Scale(1 / den)
	center := a.Add(off)
	return Ball{Center: center, Radius: Dist(center, a)}
}

// ballFrom4 returns the circumsphere of four points by solving the linear
// system arising from equal squared distances to the centre.
func ballFrom4(a, b, c, d Point) Ball {
	// 2(b-a).x0 = |b|^2-|a|^2, etc.
	m := [3][3]float64{
		{b.X - a.X, b.Y - a.Y, b.Z - a.Z},
		{c.X - a.X, c.Y - a.Y, c.Z - a.Z},
		{d.X - a.X, d.Y - a.Y, d.Z - a.Z},
	}
	sq := func(p Point) float64 { return p.X*p.X + p.Y*p.Y + p.Z*p.Z }
	rhs := [3]float64{
		(sq(b) - sq(a)) / 2,
		(sq(c) - sq(a)) / 2,
		(sq(d) - sq(a)) / 2,
	}
	x, ok := solve3(m, rhs)
	if !ok {
		// Coplanar/degenerate: fall back to the best three-point ball.
		best := ballFrom3(a, b, c)
		for _, alt := range []Ball{ballFrom3(a, b, d), ballFrom3(a, c, d), ballFrom3(b, c, d)} {
			if alt.Radius > best.Radius {
				best = alt
			}
		}
		return best
	}
	center := Point{x[0], x[1], x[2]}
	return Ball{Center: center, Radius: Dist(center, a)}
}

func crossV(a, b Vector) Vector {
	return Vector{
		X: a.Y*b.Z - a.Z*b.Y,
		Y: a.Z*b.X - a.X*b.Z,
		Z: a.X*b.Y - a.Y*b.X,
	}
}

// solve3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(m [3][3]float64, rhs [3]float64) ([3]float64, bool) {
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return [3]float64{}, false
		}
		m[col], m[piv] = m[piv], m[col]
		rhs[col], rhs[piv] = rhs[piv], rhs[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k < 3; k++ {
				m[r][k] -= f * m[col][k]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	return [3]float64{rhs[0] / m[0][0], rhs[1] / m[1][1], rhs[2] / m[2][2]}, true
}

// WithinSphere implements WITHIN-A-SPHERE at a single instant.
func WithinSphere(r float64, points ...Point) bool {
	if len(points) == 0 {
		return true
	}
	return MinEnclosingBall(points).Radius <= r+1e-9
}

// WithinSphereTimes returns the set of real times t in [lo,hi] at which the
// moving points can be enclosed in a sphere of radius r.  For two points
// this is exact (DIST <= 2r); for more, the minimal-enclosing-ball radius
// is a piecewise-smooth function of time, so the solver samples it densely
// and refines each sign change by bisection.  samples controls the grid
// (<= 0 selects a default of 512).
func WithinSphereTimes(r float64, pts []MovingPoint, lo, hi float64, samples int) RealSet {
	switch len(pts) {
	case 0:
		return NewRealSet(RealInterval{lo, hi})
	case 1:
		return NewRealSet(RealInterval{lo, hi})
	case 2:
		return DistWithinTimes(pts[0], pts[1], 2*r, lo, hi)
	}
	if samples <= 0 {
		samples = 512
	}
	f := func(t float64) float64 {
		cur := make([]Point, len(pts))
		for i, p := range pts {
			cur[i] = p.At(t)
		}
		return MinEnclosingBall(cur).Radius - r
	}
	return solveByBisection(f, lo, hi, samples)
}

// SolveLE returns an approximation of {t in [lo,hi] : f(t) <= 0} for a
// piecewise-smooth f, by uniform sampling plus bisection refinement.  It is
// the generic fallback for predicates with no closed-form kinetic solver.
func SolveLE(f func(float64) float64, lo, hi float64, samples int) RealSet {
	if samples <= 0 {
		samples = 512
	}
	return solveByBisection(f, lo, hi, samples)
}

// solveByBisection returns an approximation of {t in [lo,hi] : f(t) <= 0}
// for a piecewise-smooth f, by uniform sampling plus bisection refinement
// of every bracketed sign change.
func solveByBisection(f func(float64) float64, lo, hi float64, samples int) RealSet {
	if lo > hi {
		return RealSet{}
	}
	if lo == hi {
		if f(lo) <= 0 {
			return NewRealSet(RealInterval{lo, hi})
		}
		return RealSet{}
	}
	step := (hi - lo) / float64(samples)
	type node struct {
		t   float64
		neg bool
	}
	nodes := make([]node, 0, samples+1)
	for i := 0; i <= samples; i++ {
		t := lo + float64(i)*step
		nodes = append(nodes, node{t, f(t) <= 0})
	}
	refine := func(a, b float64, negAtA bool) float64 {
		for i := 0; i < 50; i++ {
			mid := (a + b) / 2
			if (f(mid) <= 0) == negAtA {
				a = mid
			} else {
				b = mid
			}
		}
		return (a + b) / 2
	}
	var out []RealInterval
	var start float64
	open := false
	if nodes[0].neg {
		start, open = lo, true
	}
	for i := 1; i < len(nodes); i++ {
		prev, cur := nodes[i-1], nodes[i]
		if prev.neg == cur.neg {
			continue
		}
		cross := refine(prev.t, cur.t, prev.neg)
		if prev.neg {
			out = append(out, RealInterval{start, cross})
			open = false
		} else {
			start, open = cross, true
		}
	}
	if open {
		out = append(out, RealInterval{start, hi})
	}
	return NewRealSet(out...)
}
