package most

import (
	"fmt"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/temporal"
)

// This file provides the paper's spatial methods (§2) as instantaneous
// predicates over objects: "intuitively, these methods represent spatial
// relationships among the objects at a certain point in time, and they
// return true or false".  Their kinetic (interval-valued) counterparts live
// in the FTL evaluator, built on geom's solvers.

// Inside implements INSIDE(o, P) at tick t.
func Inside(o *Object, p geom.Polygon, t temporal.Tick) (bool, error) {
	pt, err := o.PositionAt(t)
	if err != nil {
		return false, err
	}
	return p.Contains(pt), nil
}

// Outside implements OUTSIDE(o, P) at tick t.
func Outside(o *Object, p geom.Polygon, t temporal.Tick) (bool, error) {
	in, err := Inside(o, p, t)
	return !in, err
}

// DistBetween implements DIST(o1, o2) at tick t.
func DistBetween(o1, o2 *Object, t temporal.Tick) (float64, error) {
	p1, err := o1.PositionAt(t)
	if err != nil {
		return 0, err
	}
	p2, err := o2.PositionAt(t)
	if err != nil {
		return 0, err
	}
	return geom.Dist(p1, p2), nil
}

// WithinASphere implements WITHIN-A-SPHERE(r, o1, ..., ok) at tick t.
func WithinASphere(r float64, t temporal.Tick, objs ...*Object) (bool, error) {
	if len(objs) == 0 {
		return true, nil
	}
	pts := make([]geom.Point, len(objs))
	for i, o := range objs {
		p, err := o.PositionAt(t)
		if err != nil {
			return false, fmt.Errorf("most: WITHIN-A-SPHERE argument %d: %w", i, err)
		}
		pts[i] = p
	}
	return geom.WithinSphere(r, pts...), nil
}
