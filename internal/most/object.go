package most

import (
	"fmt"
	"sort"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// ObjectID identifies an object across all classes.
type ObjectID string

// Object is one immutable revision of a database object.  Updates go
// through the Database, which installs a new revision; holders of an old
// *Object continue to see the state as of when they fetched it.
type Object struct {
	id       ObjectID
	class    *Class
	statics  map[string]Value
	dynamics map[string]motion.DynamicAttr
}

// NewObject builds an object of the given class.  Unset static attributes
// are NULL; unset dynamic attributes are the constant 0.
func NewObject(id ObjectID, class *Class) (*Object, error) {
	if id == "" {
		return nil, fmt.Errorf("most: object id must not be empty")
	}
	if class == nil {
		return nil, fmt.Errorf("most: object %s: class must not be nil", id)
	}
	return &Object{
		id:       id,
		class:    class,
		statics:  map[string]Value{},
		dynamics: map[string]motion.DynamicAttr{},
	}, nil
}

// ID returns the object identifier.
func (o *Object) ID() ObjectID { return o.id }

// Class returns the object's class.
func (o *Object) Class() *Class { return o.class }

// clone returns a deep copy sharing nothing mutable with the receiver.
func (o *Object) clone() *Object {
	c := &Object{
		id:       o.id,
		class:    o.class,
		statics:  make(map[string]Value, len(o.statics)),
		dynamics: make(map[string]motion.DynamicAttr, len(o.dynamics)),
	}
	for k, v := range o.statics {
		c.statics[k] = v
	}
	for k, v := range o.dynamics {
		c.dynamics[k] = v
	}
	return c
}

// checkAttr validates that name exists on the class with the wanted kind.
func (o *Object) checkAttr(name string, kind AttrKind) error {
	def, ok := o.class.Attr(name)
	if !ok {
		return fmt.Errorf("most: class %s has no attribute %s", o.class.Name(), name)
	}
	if def.Kind != kind {
		return fmt.Errorf("most: attribute %s.%s is %s, not %s", o.class.Name(), name, def.Kind, kind)
	}
	return nil
}

// WithStatic returns a revision with the static attribute set.
func (o *Object) WithStatic(name string, v Value) (*Object, error) {
	if err := o.checkAttr(name, Static); err != nil {
		return nil, err
	}
	c := o.clone()
	c.statics[name] = v
	return c, nil
}

// WithDynamic returns a revision with the dynamic attribute replaced.
// POSITION attributes must have piecewise-linear functions: the kinetic
// polygon and distance solvers work on straight paths (non-positional
// dynamic attributes may be quadratic).
func (o *Object) WithDynamic(name string, a motion.DynamicAttr) (*Object, error) {
	if err := o.checkAttr(name, Dynamic); err != nil {
		return nil, err
	}
	if isPositionAttr(name) && !a.Function.IsLinear() {
		return nil, fmt.Errorf("most: %s.%s must be piecewise linear; approximate acceleration with linear pieces", o.class.Name(), name)
	}
	c := o.clone()
	c.dynamics[name] = a
	return c, nil
}

// isPositionAttr reports whether name is one of the implicit POSITION
// attributes of spatial classes.
func isPositionAttr(name string) bool {
	return name == XPosition || name == YPosition || name == ZPosition
}

// WithPosition returns a revision with all three POSITION attributes set.
func (o *Object) WithPosition(p motion.Position) (*Object, error) {
	if !o.class.Spatial() {
		return nil, fmt.Errorf("most: class %s is not spatial", o.class.Name())
	}
	for _, a := range []motion.DynamicAttr{p.X, p.Y, p.Z} {
		if !a.Function.IsLinear() {
			return nil, fmt.Errorf("most: POSITION attributes of %s must be piecewise linear", o.class.Name())
		}
	}
	c := o.clone()
	c.dynamics[XPosition] = p.X
	c.dynamics[YPosition] = p.Y
	c.dynamics[ZPosition] = p.Z
	return c, nil
}

// Static returns the static attribute's value (NULL if never set).
func (o *Object) Static(name string) (Value, error) {
	if err := o.checkAttr(name, Static); err != nil {
		return Value{}, err
	}
	return o.statics[name], nil
}

// Dynamic returns the dynamic attribute's sub-attribute triple.
func (o *Object) Dynamic(name string) (motion.DynamicAttr, error) {
	if err := o.checkAttr(name, Dynamic); err != nil {
		return motion.DynamicAttr{}, err
	}
	return o.dynamics[name], nil
}

// ValueAt returns the attribute's value at tick t: for static attributes
// the stored value; for dynamic ones A.value + A.function(t - A.updatetime)
// (§2.1 — "the answer returned by the DBMS consists of the value of the
// attribute at the time the query is entered").
func (o *Object) ValueAt(name string, t temporal.Tick) (Value, error) {
	def, ok := o.class.Attr(name)
	if !ok {
		return Value{}, fmt.Errorf("most: class %s has no attribute %s", o.class.Name(), name)
	}
	if def.Kind == Static {
		return o.statics[name], nil
	}
	return Float(o.dynamics[name].At(t)), nil
}

// Position returns the object's position attributes as a motion.Position.
func (o *Object) Position() (motion.Position, error) {
	if !o.class.Spatial() {
		return motion.Position{}, fmt.Errorf("most: class %s is not spatial", o.class.Name())
	}
	return motion.Position{
		X: o.dynamics[XPosition],
		Y: o.dynamics[YPosition],
		Z: o.dynamics[ZPosition],
	}, nil
}

// PositionAt returns the object's location at tick t.
func (o *Object) PositionAt(t temporal.Tick) (geom.Point, error) {
	p, err := o.Position()
	if err != nil {
		return geom.Point{}, err
	}
	return p.At(t), nil
}

// AttrNames returns the object's attribute names in sorted order.
func (o *Object) AttrNames() []string {
	names := make([]string, 0, len(o.class.attrs))
	for _, a := range o.class.attrs {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}
