package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers every instrument type from many
// goroutines while snapshots are taken concurrently.  Run under -race
// (make race / make cover) this pins down the lock-free claims.
func TestConcurrentInstruments(t *testing.T) {
	r := New()
	const workers = 16
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared.counter")
			h := r.Histogram("shared.hist")
			g := r.Gauge("shared.gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i))
				g.Set(int64(w))
				// Lazy lookups racing against creation.
				r.Counter("shared.counter").Add(0)
			}
		}(w)
	}
	// Concurrent span trees: each goroutine owns its own root, but all file
	// into the same registry under the same name.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := r.StartSpan("query.instantaneous")
				st := sp.Child("stage")
				st.Annotate("n", 1)
				st.End()
				sp.End()
			}
		}()
	}
	// Snapshot readers racing the writers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := r.Snapshot()
				if s.Counters["shared.counter"] < 0 {
					t.Error("counter went negative")
				}
				var decoded Snapshot
				if err := json.Unmarshal([]byte(r.String()), &decoded); err != nil {
					t.Errorf("concurrent String() produced invalid JSON: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("shared.counter").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared.hist").Count(); got != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", got, workers*perWorker)
	}
	tr, ok := r.Snapshot().Traces["query.instantaneous"]
	if !ok {
		t.Fatal("no trace retained after concurrent runs")
	}
	if _, ok := tr.Find("stage"); !ok {
		t.Fatalf("retained trace lost its child: %+v", tr)
	}
}

// TestConcurrentChildSpans checks that sibling sub-spans may be opened from
// parallel workers (the engine's parallel sub-formula evaluation does this).
func TestConcurrentChildSpans(t *testing.T) {
	r := New()
	root := r.StartSpan("query.continuous")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c := root.Child("worker")
				c.Annotate("i", int64(i))
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	ss := root.Snapshot()
	if len(ss.Children) != 8*100 {
		t.Fatalf("children = %d, want 800", len(ss.Children))
	}
}
