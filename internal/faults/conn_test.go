package faults

import (
	"strings"
	"testing"
	"time"

	"github.com/mostdb/most/internal/client"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/server"
	"github.com/mostdb/most/internal/wire"
	"github.com/mostdb/most/internal/workload"
)

// startServer serves a small fleet for the socket-fault tests.
func startServer(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	db, err := workload.Fleet(workload.FleetSpec{
		N:        4,
		Region:   geom.Rect{Max: geom.Point{X: 100, Y: 100}},
		MaxSpeed: 2,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := query.NewEngine(db)
	srv := server.New(db, eng, server.Config{Reg: reg})
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String()
}

// TestConnKillExactlyOnce kills the client's connection immediately after a
// mutating request has been fully written, forcing the client to redial and
// retransmit the same request ID.  The server must apply the mutation
// exactly once and answer the retry from its idempotence cache.
func TestConnKillExactlyOnce(t *testing.T) {
	reg := obs.New()
	addr := startServer(t, reg)

	// Measure the handshake size with a clean probe connection so the kill
	// threshold lands on the first post-handshake frame.
	// The probe uses the same ClientID so its handshake is byte-identical.
	probe := &FaultyDialer{}
	pc, err := client.Dial(addr, client.WithDialer(probe.Dial),
		client.WithClientID("exactly-once-test"))
	if err != nil {
		t.Fatal(err)
	}
	probe.mu.Lock()
	helloBytes := probe.Conns[0].written
	probe.mu.Unlock()
	pc.Close()

	// First connection dies right after the first request past the
	// handshake is on the wire; reconnects are clean.
	d := &FaultyDialer{Scripts: []ConnScript{
		{CloseAfterWrites: helloBytes + 1},
		{},
	}}
	c, err := client.Dial(addr,
		client.WithDialer(d.Dial),
		client.WithClientID("exactly-once-test"),
		client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.UpdateBatch([]wire.UpdateOp{
		{Op: wire.OpSetMotion, ID: "car-00000", VX: 1, VY: 0},
	})
	if err != nil {
		t.Fatalf("batch through killed connection: %v", err)
	}
	if d.DialCount() < 2 {
		t.Fatalf("dials = %d, want a reconnect", d.DialCount())
	}

	// Version counts committed explicit updates: exactly one for our batch,
	// despite the retransmit.  A second clean batch lands at resp.Version+1.
	resp2, err := c.UpdateBatch([]wire.UpdateOp{
		{Op: wire.OpSetMotion, ID: "car-00001", VX: 0, VY: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Version != resp.Version+1 {
		t.Fatalf("version went %d -> %d; retried batch applied more than once",
			resp.Version, resp2.Version)
	}
	if hits := reg.Snapshot().Counters["server.dedup_hits"]; hits < 1 {
		t.Fatalf("dedup_hits = %d, want >= 1 (retry should be answered from cache)", hits)
	}
}

// TestConnCorruptionContained corrupts every read on the client side.  The
// client must fail cleanly (no panic, no hang) and the server must keep
// serving clean clients afterwards.
func TestConnCorruptionContained(t *testing.T) {
	addr := startServer(t, nil)

	d := &FaultyDialer{Scripts: []ConnScript{{Seed: 42, CorruptRate: 1}}}
	done := make(chan error, 1)
	go func() {
		c, err := client.Dial(addr,
			client.WithDialer(d.Dial),
			client.WithRetries(2),
			client.WithTimeout(2*time.Second))
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		done <- c.Ping()
	}()
	select {
	case err := <-done:
		t.Logf("corrupted session outcome: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("client hung on a corrupted stream")
	}
	var corrupted int64
	d.mu.Lock()
	for _, fc := range d.Conns {
		corrupted += fc.Corrupted
	}
	d.mu.Unlock()
	if corrupted == 0 {
		t.Fatal("script corrupted nothing; the test exercised no fault")
	}

	// Clean clients are unaffected.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestConnReadKill cuts the connection while the client is waiting for a
// response; the retry path must still deliver the answer.
func TestConnReadKill(t *testing.T) {
	addr := startServer(t, nil)
	// Kill after the handshake response has been read, so the first real
	// request's response is lost mid-wait.
	probe := &FaultyDialer{}
	pc, err := client.Dial(addr, client.WithDialer(probe.Dial),
		client.WithClientID("read-kill-test"))
	if err != nil {
		t.Fatal(err)
	}
	probe.mu.Lock()
	helloRead := probe.Conns[0].read
	probe.mu.Unlock()
	pc.Close()

	d := &FaultyDialer{Scripts: []ConnScript{{CloseAfterReads: helloRead + 1}, {}}}
	c, err := client.Dial(addr,
		client.WithDialer(d.Dial),
		client.WithClientID("read-kill-test"),
		client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		// A ping is idempotent anyway; what matters is a clean error, not
		// a hang, if the retry budget is exhausted.
		if !strings.Contains(err.Error(), "connection") && !strings.Contains(err.Error(), "EOF") {
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	if d.DialCount() < 2 {
		t.Fatalf("dials = %d, want a reconnect", d.DialCount())
	}
}
