package relstore

import "testing"

// FuzzExec asserts the SQL layer never panics on arbitrary input, against
// a small live store.
func FuzzExec(f *testing.F) {
	seeds := []string{
		"CREATE TABLE t (a, b)",
		"INSERT INTO t VALUES (1, 'x')",
		"SELECT a FROM t WHERE a >= 1 AND b = 'x' ORDER BY a DESC LIMIT 3",
		"SELECT * FROM t",
		"UPDATE t SET a = a + 1 WHERE b != 'y'",
		"DELETE FROM t WHERE a < 0",
		"DROP TABLE t",
		"SELECT a FROM t WHERE (a = 1 OR NOT (b = 'x')) AND a / 2 > 0",
		"'",
		"SELECT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		s := NewStore()
		s.MustExec("CREATE TABLE fixture (a, b)")
		s.MustExec("INSERT INTO fixture VALUES (1, 'x'), (2, 'y')")
		_, _ = s.Exec(sql) // must not panic
	})
}

// FuzzParseSelect asserts parse/render stability for accepted SELECTs.
func FuzzParseSelect(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT a, b FROM t WHERE a + 1 >= b * 2",
		"SELECT * FROM t, u WHERE t.a = u.a",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := ParseSelect(sql)
		if err != nil {
			return
		}
		again, err := ParseSelect(stmt.SQL())
		if err != nil {
			t.Fatalf("rendering %q of accepted input does not re-parse: %v", stmt.SQL(), err)
		}
		if again.SQL() != stmt.SQL() {
			t.Fatalf("unstable rendering: %q -> %q", stmt.SQL(), again.SQL())
		}
	})
}
