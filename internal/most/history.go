package most

import (
	"fmt"
	"sort"

	"github.com/mostdb/most/internal/temporal"
)

// History is a consistent view of the database's history: the actual past
// (reconstructed from the explicit-update log) concatenated with the
// implicit future of the current state (§2.2: "each state in the future
// history is identical to the state at time t, except for the value of the
// dynamic attributes").  It is a snapshot — updates committed after History
// was taken do not affect it.
type History struct {
	now     temporal.Tick
	current map[ObjectID]*Object
	log     []Update
}

// History captures the current history view.  It briefly quiesces commits
// (taking the clock and every object shard in read mode, then the log) so
// the object state and the log in the snapshot are mutually consistent even
// under concurrent updaters.
func (db *Database) History() History {
	db.lockAllRead()
	defer db.unlockAllRead()
	cur := make(map[ObjectID]*Object)
	for i := range db.shards {
		for id, o := range db.shards[i].objects {
			cur[id] = o
		}
	}
	db.logMu.Lock()
	logCopy := make([]Update, len(db.log))
	copy(logCopy, db.log)
	db.logMu.Unlock()
	return History{now: db.now, current: cur, log: logCopy}
}

// Now returns the tick at which the view was taken.
func (h History) Now() temporal.Tick { return h.now }

// Updates returns the captured explicit-update log in commit order; the
// slice must not be modified.
func (h History) Updates() []Update { return h.log }

// Current returns the object revisions as of the snapshot; the map must
// not be modified.
func (h History) Current() map[ObjectID]*Object { return h.current }

// RevisionAt returns the object revision in effect at tick t, or false if
// the object did not exist then.  For t >= the snapshot time it returns the
// current revision (the future history repeats the current state).
func (h History) RevisionAt(id ObjectID, t temporal.Tick) (*Object, bool) {
	if t >= h.now {
		o, ok := h.current[id]
		return o, ok
	}
	// Find the last update to this object with Tick <= t.  The log is in
	// commit order, hence sorted by tick.
	hi := sort.Search(len(h.log), func(i int) bool { return h.log[i].Tick > t })
	for i := hi - 1; i >= 0; i-- {
		u := h.log[i]
		if u.Object != id {
			continue
		}
		if u.Kind == UpdateDelete {
			return nil, false
		}
		return u.After, true
	}
	return nil, false
}

// ValueAt returns the attribute value of the object in database state t:
// the revision in effect at t, with dynamic attributes evaluated at t.
func (h History) ValueAt(id ObjectID, attr string, t temporal.Tick) (Value, error) {
	o, ok := h.RevisionAt(id, t)
	if !ok {
		return Value{}, fmt.Errorf("most: object %s does not exist at tick %d", id, t)
	}
	return o.ValueAt(attr, t)
}

// LiveIDs returns the ids of the objects alive in state t, sorted.
func (h History) LiveIDs(t temporal.Tick) []ObjectID {
	alive := map[ObjectID]bool{}
	if t >= h.now {
		for id := range h.current {
			alive[id] = true
		}
	} else {
		for _, u := range h.log {
			if u.Tick > t {
				break
			}
			switch u.Kind {
			case UpdateInsert:
				alive[u.Object] = true
			case UpdateDelete:
				delete(alive, u.Object)
			}
		}
	}
	out := make([]ObjectID, 0, len(alive))
	for id := range alive {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
