package eval

import (
	"math"
	"strings"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/temporal"
)

// Context supplies everything a query evaluation needs: the evaluation
// instant, the expiry horizon (§2.3 — instantaneous queries are evaluated
// on the infinite history, made finite by a "predefined (but very large)"
// expiry), the object universe, named regions, external parameters, and
// the enumerable domains of the FROM-bound variables.
type Context struct {
	Now     temporal.Tick
	Horizon temporal.Tick

	// Objects maps every referencable object id to its revision.  For
	// instantaneous and continuous queries this is the current database
	// state; for persistent queries the query engine synthesizes revisions
	// whose dynamic attributes encode the actual logged history.
	Objects map[most.ObjectID]*most.Object

	// Regions resolves polygon names used by INSIDE/OUTSIDE.
	Regions map[string]geom.Polygon

	// Params resolves free variables that are external constants.
	Params map[string]Val

	// Domains lists the candidate values of each FROM-bound variable.
	Domains map[string][]Val

	// MaxAssignStates caps per-tick discretization of a non-piecewise-
	// constant assignment term (0 means 4096).
	MaxAssignStates int

	// BisectSamples is the sampling density for predicates with no closed
	// form (0 means 512).
	BisectSamples int

	// InsideCandidates, when non-nil, prunes INSIDE atoms with a spatial
	// index probe: it returns the ids of the objects whose trajectories may
	// intersect the polygon during the window (a superset of the satisfying
	// objects).  Instantiations outside the candidate set are skipped —
	// §4's purpose: answering "retrieve the objects that are currently in
	// the polygon P" without examining all the objects.
	InsideCandidates func(pg geom.Polygon, w temporal.Interval) []most.ObjectID

	// Parallelism bounds the worker pool the per-instantiation loops (atom
	// solving, assignment-term enumeration) fan out over: 0 or 1 evaluates
	// sequentially, n > 1 uses n workers, and any negative value uses
	// GOMAXPROCS.  Results are merged in instantiation order, so the answer
	// relation is identical at every setting.
	Parallelism int

	// Obs receives evaluation metrics (sub-formula counts, instantiations,
	// index probes and false hits).  Nil disables instrumentation at the
	// cost of one branch per hook.
	Obs *obs.Registry

	// Span, when non-nil, is the stage span the evaluation hangs its
	// sub-spans (index_probe, ...) off.  Annotations and children may be
	// added from the evaluator's worker goroutines.
	Span *obs.Span
}

// Window returns the evaluation window [Now, Now+Horizon].
func (c *Context) Window() temporal.Interval {
	return temporal.Interval{Start: c.Now, End: c.Now.Add(c.Horizon)}
}

func (c *Context) maxAssignStates() int {
	if c.MaxAssignStates <= 0 {
		return 4096
	}
	return c.MaxAssignStates
}

func (c *Context) bisectSamples() int {
	if c.BisectSamples <= 0 {
		return 512
	}
	return c.BisectSamples
}

func (c *Context) object(v Val) (*most.Object, error) {
	if v.Kind != ValObj {
		return nil, errf("value %s is not an object reference", v)
	}
	o, ok := c.Objects[v.Obj]
	if !ok {
		return nil, errf("unknown object %s", v.Obj)
	}
	return o, nil
}

// env is a variable environment for one instantiation.
type env map[string]Val

// lookupVar resolves a variable: instantiation first, then parameters.
func (c *Context) lookupVar(e env, name string) (Val, bool) {
	if v, ok := e[name]; ok {
		return v, true
	}
	v, ok := c.Params[name]
	return v, ok
}

// termVal is the value of a term over the evaluation window for one
// instantiation: either a non-numeric constant, or a numeric function of
// time.  Numeric terms carry an exact piecewise-linear form when available
// (segs) and always a generic evaluator (fn); dist marks the special
// DIST(o1,o2) shape so comparisons can use the exact quadratic solver.
type termVal struct {
	isConst bool
	c       Val

	segs []motion.Segment // exact piecewise-linear form; nil if unavailable
	fn   func(float64) float64
	dist *distTerm
}

type distTerm struct {
	a, b motion.Position
}

func constTerm(v Val) termVal { return termVal{isConst: true, c: v} }

func numConstTerm(x float64, w temporal.Interval) termVal {
	return termVal{
		isConst: true,
		c:       NumVal(x),
		segs:    []motion.Segment{{T0: float64(w.Start), T1: float64(w.End), V0: x, Slope: 0}},
		fn:      func(float64) float64 { return x },
	}
}

// numeric reports whether the term is usable in arithmetic/comparison.
func (tv termVal) numeric() bool { return tv.fn != nil }

// evalTerm computes the term's value over the window for the instantiation.
func (c *Context) evalTerm(e ftl.Expr, en env) (termVal, error) {
	w := c.Window()
	switch n := e.(type) {
	case ftl.Num:
		return numConstTerm(n.V, w), nil
	case ftl.StrLit:
		return constTerm(StrVal(n.S)), nil
	case ftl.BoolExpr:
		return constTerm(BoolVal(n.V)), nil
	case ftl.TimeRef:
		return termVal{
			segs: []motion.Segment{{T0: float64(w.Start), T1: float64(w.End), V0: float64(w.Start), Slope: 1}},
			fn:   func(t float64) float64 { return t },
		}, nil
	case ftl.Var:
		v, ok := c.lookupVar(en, n.Name)
		if !ok {
			return termVal{}, errf("unbound variable %q", n.Name)
		}
		if v.Kind == ValNum {
			return numConstTerm(v.Num, w), nil
		}
		return constTerm(v), nil
	case ftl.AttrRef:
		return c.evalAttrRef(n, en)
	case ftl.Neg:
		tv, err := c.evalTerm(n.E, en)
		if err != nil {
			return termVal{}, err
		}
		return scaleTerm(tv, -1)
	case ftl.Bin:
		return c.evalBin(n, en)
	case ftl.DistOf:
		return c.evalDist(n, en)
	case ftl.SpeedOf:
		return c.evalSpeed(n, en)
	case ftl.Call:
		return c.evalCall(n, en)
	default:
		return termVal{}, errf("unsupported term %T", e)
	}
}

// evalAttrRef resolves obj.Path: a declared attribute (static constant or
// dynamic trajectory), or a dynamic attribute's sub-attribute via a
// trailing VALUE, UPDATETIME or SPEED component (§2.1: "a user can query
// each sub-attribute independently").
func (c *Context) evalAttrRef(ref ftl.AttrRef, en env) (termVal, error) {
	v, ok := ref.Obj.(ftl.Var)
	if !ok {
		return termVal{}, errf("attribute base must be a variable, got %s", ref.Obj)
	}
	base, ok := c.lookupVar(en, v.Name)
	if !ok {
		return termVal{}, errf("unbound variable %q", v.Name)
	}
	obj, err := c.object(base)
	if err != nil {
		return termVal{}, err
	}
	w := c.Window()
	full := strings.Join(ref.Path, ".")
	if def, ok := obj.Class().Attr(full); ok {
		if def.Kind == most.Static {
			sv, err := obj.Static(full)
			if err != nil {
				return termVal{}, err
			}
			if f, isNum := sv.AsFloat(); isNum {
				return numConstTerm(f, w), nil
			}
			return constTerm(FromMost(sv)), nil
		}
		dyn, err := obj.Dynamic(full)
		if err != nil {
			return termVal{}, err
		}
		return termVal{
			segs: dyn.Trajectory(float64(w.Start), float64(w.End)),
			fn:   dyn.AtReal,
		}, nil
	}
	// Sub-attribute access.
	if len(ref.Path) >= 2 {
		sub := strings.ToUpper(ref.Path[len(ref.Path)-1])
		baseName := strings.Join(ref.Path[:len(ref.Path)-1], ".")
		if def, ok := obj.Class().Attr(baseName); ok && def.Kind == most.Dynamic {
			dyn, err := obj.Dynamic(baseName)
			if err != nil {
				return termVal{}, err
			}
			switch sub {
			case "VALUE":
				return numConstTerm(dyn.Value, w), nil
			case "UPDATETIME":
				return numConstTerm(float64(dyn.UpdateTime), w), nil
			case "SPEED":
				return speedTerm(dyn, w), nil
			}
		}
	}
	return termVal{}, errf("class %s has no attribute %q", obj.Class().Name(), full)
}

// speedTerm builds the piecewise-constant rate of change of a dynamic
// attribute over the window.  Unlike the value trajectory, the speed is
// discontinuous at breakpoints; the new slope owns the boundary instant, so
// each earlier segment is shortened just enough that tick snapping cannot
// attribute the boundary tick to it.
func speedTerm(dyn motion.DynamicAttr, w temporal.Interval) termVal {
	traj := dyn.Trajectory(float64(w.Start), float64(w.End))
	segs := make([]motion.Segment, len(traj))
	for i, s := range traj {
		t1 := s.T1
		if i+1 < len(traj) {
			t1 = s.T1 - 1e-6
		}
		// The speed of a quadratic segment is itself linear in time.
		segs[i] = motion.Segment{T0: s.T0, T1: t1, V0: s.Slope, Slope: s.Accel}
	}
	return termVal{
		segs: segs,
		fn: func(t float64) float64 {
			return dyn.Function.SlopeAt(t - float64(dyn.UpdateTime))
		},
	}
}

func (c *Context) evalSpeed(n ftl.SpeedOf, en env) (termVal, error) {
	v, ok := n.Attr.Obj.(ftl.Var)
	if !ok {
		return termVal{}, errf("SPEED base must be a variable")
	}
	base, ok := c.lookupVar(en, v.Name)
	if !ok {
		return termVal{}, errf("unbound variable %q", v.Name)
	}
	obj, err := c.object(base)
	if err != nil {
		return termVal{}, err
	}
	name := strings.Join(n.Attr.Path, ".")
	dyn, err := obj.Dynamic(name)
	if err != nil {
		return termVal{}, err
	}
	return speedTerm(dyn, c.Window()), nil
}

func (c *Context) evalDist(n ftl.DistOf, en env) (termVal, error) {
	posOf := func(e ftl.Expr) (motion.Position, error) {
		v, ok := e.(ftl.Var)
		if !ok {
			return motion.Position{}, errf("DIST arguments must be object variables, got %s", e)
		}
		base, ok := c.lookupVar(en, v.Name)
		if !ok {
			return motion.Position{}, errf("unbound variable %q", v.Name)
		}
		obj, err := c.object(base)
		if err != nil {
			return motion.Position{}, err
		}
		return obj.Position()
	}
	pa, err := posOf(n.A)
	if err != nil {
		return termVal{}, err
	}
	pb, err := posOf(n.B)
	if err != nil {
		return termVal{}, err
	}
	return termVal{
		fn: func(t float64) float64 {
			return geom.Dist(pa.AtReal(t), pb.AtReal(t))
		},
		dist: &distTerm{a: pa, b: pb},
	}, nil
}

func (c *Context) evalBin(n ftl.Bin, en env) (termVal, error) {
	l, err := c.evalTerm(n.L, en)
	if err != nil {
		return termVal{}, err
	}
	r, err := c.evalTerm(n.R, en)
	if err != nil {
		return termVal{}, err
	}
	if !l.numeric() || !r.numeric() {
		return termVal{}, errf("arithmetic %q needs numeric operands", n.Op)
	}
	switch n.Op {
	case "+":
		return addTerms(l, r, 1), nil
	case "-":
		return addTerms(l, r, -1), nil
	case "*":
		// Exact when one side is constant.
		if l.isConst {
			return scaleTerm(r, l.c.Num)
		}
		if r.isConst {
			return scaleTerm(l, r.c.Num)
		}
		lf, rf := l.fn, r.fn
		return termVal{fn: func(t float64) float64 { return lf(t) * rf(t) }}, nil
	case "/":
		if r.isConst {
			if r.c.Num == 0 {
				return termVal{}, errf("division by zero")
			}
			return scaleTerm(l, 1/r.c.Num)
		}
		lf, rf := l.fn, r.fn
		return termVal{fn: func(t float64) float64 { return lf(t) / rf(t) }}, nil
	default:
		return termVal{}, errf("unknown arithmetic operator %q", n.Op)
	}
}

func (c *Context) evalCall(n ftl.Call, en env) (termVal, error) {
	args := make([]termVal, len(n.Args))
	for i, a := range n.Args {
		tv, err := c.evalTerm(a, en)
		if err != nil {
			return termVal{}, err
		}
		if !tv.numeric() {
			return termVal{}, errf("%s needs numeric arguments", n.Name)
		}
		args[i] = tv
	}
	fns := make([]func(float64) float64, len(args))
	for i, a := range args {
		fns[i] = a.fn
	}
	switch n.Name {
	case "ABS":
		return termVal{fn: func(t float64) float64 { return math.Abs(fns[0](t)) }}, nil
	case "MIN":
		return termVal{fn: func(t float64) float64 {
			m := fns[0](t)
			for _, f := range fns[1:] {
				m = math.Min(m, f(t))
			}
			return m
		}}, nil
	case "MAX":
		return termVal{fn: func(t float64) float64 {
			m := fns[0](t)
			for _, f := range fns[1:] {
				m = math.Max(m, f(t))
			}
			return m
		}}, nil
	default:
		return termVal{}, errf("unknown function %s", n.Name)
	}
}

// scaleTerm multiplies a numeric term by a constant, preserving exactness.
func scaleTerm(tv termVal, k float64) (termVal, error) {
	if !tv.numeric() {
		return termVal{}, errf("negation/scaling needs a numeric operand")
	}
	out := termVal{}
	if tv.isConst {
		out.isConst = true
		out.c = NumVal(tv.c.Num * k)
	}
	if tv.segs != nil {
		out.segs = make([]motion.Segment, len(tv.segs))
		for i, s := range tv.segs {
			out.segs[i] = motion.Segment{T0: s.T0, T1: s.T1, V0: s.V0 * k, Slope: s.Slope * k}
		}
	}
	f := tv.fn
	out.fn = func(t float64) float64 { return f(t) * k }
	return out, nil
}

// addTerms computes l + sign*r, exactly when both sides are piecewise
// linear (merging breakpoints), generically otherwise.
func addTerms(l, r termVal, sign float64) termVal {
	out := termVal{}
	if l.isConst && r.isConst {
		out.isConst = true
		out.c = NumVal(l.c.Num + sign*r.c.Num)
	}
	if l.segs != nil && r.segs != nil {
		out.segs = mergeSegs(l.segs, r.segs, sign)
	}
	lf, rf := l.fn, r.fn
	out.fn = func(t float64) float64 { return lf(t) + sign*rf(t) }
	return out
}

// mergeSegs adds two piecewise-linear trajectories over their common span,
// splitting at the union of breakpoints.
func mergeSegs(a, b []motion.Segment, sign float64) []motion.Segment {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	lo := math.Max(a[0].T0, b[0].T0)
	hi := math.Min(a[len(a)-1].T1, b[len(b)-1].T1)
	if lo > hi {
		return nil
	}
	cuts := []float64{lo, hi}
	for _, s := range a {
		if s.T0 > lo && s.T0 < hi {
			cuts = append(cuts, s.T0)
		}
	}
	for _, s := range b {
		if s.T0 > lo && s.T0 < hi {
			cuts = append(cuts, s.T0)
		}
	}
	// Insertion sort + dedupe (tiny lists).
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	cover := func(segs []motion.Segment, t float64) motion.Segment {
		for i := len(segs) - 1; i >= 0; i-- {
			if t >= segs[i].T0 || i == 0 {
				return segs[i]
			}
		}
		return motion.Segment{}
	}
	var out []motion.Segment
	for i := 0; i+1 < len(cuts); i++ {
		t0, t1 := cuts[i], cuts[i+1]
		if t1-t0 < 1e-12 && i+2 < len(cuts) {
			continue
		}
		// A breakpoint instant belongs to the following piece (an input may
		// be discontinuous there, e.g. a SPEED term).  Shave non-final
		// pieces by less than a tick so tick snapping cannot claim the
		// boundary for the earlier piece; for continuous inputs the next
		// piece starts at the same value, so nothing is lost.
		t1out := t1
		if i+2 < len(cuts) {
			t1out = t1 - 1e-6
			if t1out < t0 {
				t1out = t0
			}
		}
		mid := (t0 + t1) / 2
		sa := cover(a, mid)
		sb := cover(b, mid)
		out = append(out, motion.Segment{
			T0:    t0,
			T1:    t1out,
			V0:    sa.ValueAt(t0) + sign*sb.ValueAt(t0),
			Slope: sa.SlopeAt(t0) + sign*sb.SlopeAt(t0),
			Accel: sa.Accel + sign*sb.Accel,
		})
	}
	return out
}
