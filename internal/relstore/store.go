// Package relstore is a small in-memory relational DBMS with an SQL subset
// — the substrate §5.1 of the paper assumes: "our system ... can be
// implemented by a software system, called MOST, built on top of an
// existing DBMS".  The paper names Sybase; this package is the from-scratch
// replacement that preserves what the MOST layer relies on: non-temporal
// SELECT/FROM/WHERE evaluation over relations, keys, and secondary indexes.
//
// Supported statements:
//
//	CREATE TABLE t (col, col, ...)
//	INSERT INTO t VALUES (v, v, ...)
//	SELECT cols FROM t [, t2 ...] [WHERE cond]
//	DELETE FROM t [WHERE cond]
//	UPDATE t SET col = expr [, ...] [WHERE cond]
//
// Conditions are boolean combinations (AND/OR/NOT) of comparisons between
// columns, constants and arithmetic over them.
package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Value is a relational value: NULL, number, string or bool.
type Value struct {
	Kind ValueKind
	F    float64
	S    string
	B    bool
}

// ValueKind discriminates Value.
type ValueKind uint8

// Value kinds.
const (
	KNull ValueKind = iota
	KNum
	KStr
	KBool
)

// Num wraps a number.
func Num(f float64) Value { return Value{Kind: KNum, F: f} }

// Str wraps a string.
func Str(s string) Value { return Value{Kind: KStr, S: s} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{Kind: KBool, B: b} }

// Null is the NULL value.
func Null() Value { return Value{} }

// Compare orders values; differing kinds order by kind.
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case KNum:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
	case KStr:
		return strings.Compare(v.S, o.S)
	case KBool:
		switch {
		case !v.B && o.B:
			return -1
		case v.B && !o.B:
			return 1
		}
	}
	return 0
}

// String renders the value.
func (v Value) String() string {
	switch v.Kind {
	case KNum:
		return fmt.Sprintf("%g", v.F)
	case KStr:
		return v.S
	case KBool:
		return fmt.Sprintf("%t", v.B)
	default:
		return "NULL"
	}
}

// Row is one tuple.
type Row []Value

// Table is a named relation.
type Table struct {
	Name    string
	Columns []string
	colIdx  map[string]int
	rows    []Row
	indexes map[string]*btreeIndex
}

// Store is a collection of tables, safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: map[string]*Table{}}
}

// CreateTable registers a new table.
func (s *Store) CreateTable(name string, columns ...string) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("relstore: table %s already exists", name)
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("relstore: table %s needs at least one column", name)
	}
	t := &Table{
		Name:    name,
		Columns: append([]string{}, columns...),
		colIdx:  map[string]int{},
		indexes: map[string]*btreeIndex{},
	}
	for i, c := range columns {
		if _, dup := t.colIdx[c]; dup {
			return nil, fmt.Errorf("relstore: table %s: duplicate column %s", name, c)
		}
		t.colIdx[c] = i
	}
	s.tables[name] = t
	return t, nil
}

// DropTable removes a table.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		return fmt.Errorf("relstore: no table %s", name)
	}
	delete(s.tables, name)
	return nil
}

// Table looks a table up by name.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	return t, ok
}

// Tables returns the table names, sorted.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ColIndex returns the position of a column.
func (t *Table) ColIndex(col string) (int, bool) {
	i, ok := t.colIdx[col]
	return i, ok
}

// Insert appends a row.
func (t *Table) Insert(row Row) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("relstore: table %s expects %d values, got %d", t.Name, len(t.Columns), len(row))
	}
	cp := make(Row, len(row))
	copy(cp, row)
	t.rows = append(t.rows, cp)
	for col, idx := range t.indexes {
		idx.insert(cp[t.colIdx[col]], len(t.rows)-1)
	}
	return nil
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Scan invokes fn on every row; returning false stops early.
func (t *Table) Scan(fn func(Row) bool) {
	for _, r := range t.rows {
		if r == nil {
			continue // deleted
		}
		if !fn(r) {
			return
		}
	}
}

// Rows returns a copy of the live rows.
func (t *Table) Rows() []Row {
	out := make([]Row, 0, len(t.rows))
	t.Scan(func(r Row) bool {
		out = append(out, r)
		return true
	})
	return out
}

// CreateIndex builds a secondary ordered index on a column.
func (t *Table) CreateIndex(col string) error {
	i, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("relstore: table %s has no column %s", t.Name, col)
	}
	if _, dup := t.indexes[col]; dup {
		return fmt.Errorf("relstore: index on %s.%s already exists", t.Name, col)
	}
	idx := newBTreeIndex()
	for rid, r := range t.rows {
		if r != nil {
			idx.insert(r[i], rid)
		}
	}
	t.indexes[col] = idx
	return nil
}

// HasIndex reports whether the column is indexed.
func (t *Table) HasIndex(col string) bool {
	_, ok := t.indexes[col]
	return ok
}

// IndexRange scans rows with lo <= row[col] <= hi via the index; either
// bound may be nil for open-ended scans.
func (t *Table) IndexRange(col string, lo, hi *Value, fn func(Row) bool) error {
	idx, ok := t.indexes[col]
	if !ok {
		return fmt.Errorf("relstore: no index on %s.%s", t.Name, col)
	}
	idx.scanRange(lo, hi, func(rid int) bool {
		if r := t.rows[rid]; r != nil {
			return fn(r)
		}
		return true
	})
	return nil
}

// deleteWhere removes rows matching pred, returning the count.
func (t *Table) deleteWhere(pred func(Row) bool) int {
	n := 0
	for rid, r := range t.rows {
		if r == nil || !pred(r) {
			continue
		}
		for col, idx := range t.indexes {
			idx.remove(r[t.colIdx[col]], rid)
		}
		t.rows[rid] = nil
		n++
	}
	return n
}

// updateWhere applies set to rows matching pred, returning the count.
func (t *Table) updateWhere(pred func(Row) bool, set func(Row) Row) int {
	n := 0
	for rid, r := range t.rows {
		if r == nil || !pred(r) {
			continue
		}
		next := set(r)
		for col, idx := range t.indexes {
			ci := t.colIdx[col]
			if r[ci].Compare(next[ci]) != 0 {
				idx.remove(r[ci], rid)
				idx.insert(next[ci], rid)
			}
		}
		t.rows[rid] = next
		n++
	}
	return n
}
