// Package mostdb is a Go implementation of the MOST data model and FTL
// query language for moving-objects databases, after "Modeling and Querying
// Moving Objects" (Sistla, Wolfson, Chamberlain, Dao; ICDE 1997).
//
// The library models moving objects by their motion functions instead of
// their sampled positions: a dynamic attribute holds (value, updatetime,
// function) and the database answers queries about the attribute's value at
// any time — past the last update, into the predicted future — without
// being told new positions every tick.  On top of the model sit:
//
//   - FTL, a future temporal logic query language with Until, Nexttime,
//     Eventually, Always, bounded operators and an assignment quantifier,
//     evaluated by the paper's interval-relation algorithm;
//   - the three MOST query types: instantaneous, continuous (materialized
//     Answer(CQ), maintained under updates) and persistent (anchored to
//     entry time, replaying the logged history);
//   - dynamic-attribute indexing: an R-tree over the (time, value) plane of
//     attribute trajectories, with the 3-D (x, y, time) variant for planar
//     movement;
//   - the MOST-on-a-DBMS layer: dynamic attributes stored as ordinary
//     columns of a bundled in-memory relational engine, with the 2^k
//     WHERE-clause decomposition and index-assisted rewriting;
//   - a simulator for the mobile distributed architecture: per-vehicle
//     computers, query classification, ship-objects versus broadcast-query
//     strategies, and immediate versus delayed answer delivery.
//
// This file is the public facade: it re-exports the library's types and
// constructors so applications depend on a single import path.
package mostdb

import (
	"github.com/mostdb/most/internal/dist"
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/index"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/mostsql"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/relstore"
	"github.com/mostdb/most/internal/temporal"
	"github.com/mostdb/most/internal/workload"
)

// ---- time ----

// Tick is one instant of the global discrete clock.
type Tick = temporal.Tick

// Interval is a closed interval of ticks.
type Interval = temporal.Interval

// TickSet is a normalized set of ticks (disjoint, non-consecutive
// intervals).
type TickSet = temporal.Set

// ---- geometry ----

// Point is a position in space.
type Point = geom.Point

// Vector is a displacement or motion vector (distance per tick).
type Vector = geom.Vector

// Polygon is a simple polygon in the XY plane.
type Polygon = geom.Polygon

// RectPolygon returns the axis-aligned rectangle [x0,x1] x [y0,y1].
func RectPolygon(x0, y0, x1, y1 float64) Polygon { return geom.RectPolygon(x0, y0, x1, y1) }

// RectRegion is an axis-aligned box, used to bound workload regions.
type RectRegion = geom.Rect

// Rect builds an axis-aligned box from corner coordinates.
func Rect(x0, y0, x1, y1 float64) RectRegion {
	return geom.Rect{Min: geom.Point{X: x0, Y: y0}, Max: geom.Point{X: x1, Y: y1}}
}

// NewPolygon builds a polygon from vertices.
func NewPolygon(vertices ...Point) (Polygon, error) { return geom.NewPolygon(vertices...) }

// Dist returns the distance between two points (the DIST spatial method).
func Dist(p, q Point) float64 { return geom.Dist(p, q) }

// ---- motion ----

// MotionFunc is a piecewise-polynomial (linear or quadratic) function of
// time with f(0) = 0 — the A.function sub-attribute.
type MotionFunc = motion.Func

// Linear returns the function f(t) = slope*t.
func Linear(slope float64) MotionFunc { return motion.Linear(slope) }

// Accelerating returns the quadratic function f(t) = slope*t + accel*t^2/2
// — the paper's "nonlinear functions" extension, supported exactly by
// comparisons, range queries and the indexes (POSITION attributes must
// remain piecewise linear).
func Accelerating(slope, accel float64) MotionFunc { return motion.Accelerating(slope, accel) }

// DynamicAttr is a dynamic attribute: (value, updatetime, function).
type DynamicAttr = motion.DynamicAttr

// Position bundles the X/Y/Z.POSITION dynamic attributes.
type Position = motion.Position

// MovingFrom places an object at p at tick t0 with motion vector v.
func MovingFrom(p Point, v Vector, t0 Tick) Position { return motion.MovingFrom(p, v, t0) }

// PositionAt places a stationary object at p.
func PositionAt(p Point, t0 Tick) Position { return motion.PositionAt(p, t0) }

// ---- the MOST data model ----

// Database is a MOST database: classes, objects, a clock, an update log.
type Database = most.Database

// Class is an object class; spatial classes carry POSITION attributes.
type Class = most.Class

// AttrDef declares one attribute of a class.
type AttrDef = most.AttrDef

// Attribute kinds.
const (
	Static  = most.Static
	Dynamic = most.Dynamic
)

// Object is one immutable object revision.
type Object = most.Object

// ObjectID identifies an object.
type ObjectID = most.ObjectID

// Value is a static attribute value.
type Value = most.Value

// NewDatabase returns an empty database with the clock at 0.
func NewDatabase() *Database { return most.NewDatabase() }

// LoadSnapshotJSON rebuilds a database from a SnapshotJSON payload.
func LoadSnapshotJSON(data []byte) (*Database, error) { return most.LoadSnapshotJSON(data) }

// NewClass declares an object class.
func NewClass(name string, spatial bool, attrs ...AttrDef) (*Class, error) {
	return most.NewClass(name, spatial, attrs...)
}

// NewObject builds an object of a class.
func NewObject(id ObjectID, class *Class) (*Object, error) { return most.NewObject(id, class) }

// Float, Str and Bool wrap static attribute values.
func Float(f float64) Value { return most.Float(f) }

// Str wraps a string value.
func Str(s string) Value { return most.Str(s) }

// Bool wraps a boolean value.
func Bool(b bool) Value { return most.Bool(b) }

// Position attribute names of spatial classes.
const (
	XPosition = most.XPosition
	YPosition = most.YPosition
	ZPosition = most.ZPosition
)

// ---- FTL ----

// Query is a parsed FTL query.
type Query = ftl.Query

// ParseQuery parses "RETRIEVE ... FROM ... WHERE <FTL formula>".
func ParseQuery(src string) (*Query, error) { return ftl.Parse(src) }

// MustParseQuery parses a query and panics on error.
func MustParseQuery(src string) *Query { return ftl.MustParse(src) }

// Relation is a materialized FTL answer: instantiations with the interval
// sets during which they satisfy the query.
type Relation = eval.Relation

// Answer is one (instantiation, begin, end) tuple of Answer(CQ).
type Answer = eval.Answer

// Val is a value an FTL variable takes in an answer.
type Val = eval.Val

// ---- query engine ----

// Engine evaluates instantaneous, continuous and persistent queries.
type Engine = query.Engine

// QueryOptions configure an evaluation (horizon, regions, parameters).
type QueryOptions = query.Options

// ContinuousQuery is a registered continuous query with a maintained
// Answer(CQ).
type ContinuousQuery = query.Continuous

// PersistentQuery is a registered persistent query anchored at entry time.
type PersistentQuery = query.Persistent

// Trigger couples a continuous query with an action.
type Trigger = query.Trigger

// Row is one presented answer instantiation.
type Row = query.Row

// NewEngine returns a query engine bound to db.
func NewEngine(db *Database) *Engine { return query.NewEngine(db) }

// ---- indexing ----

// AttrIndex is the dynamic-attribute index of §4 ((time, value)-plane
// R-tree over trajectory segments).
type AttrIndex = index.AttrIndex

// MotionIndex is the 3-D (x, y, time) variant for planar movement.
type MotionIndex = index.MotionIndex

// NewAttrIndex returns an index covering [base, base+T).
func NewAttrIndex(base, T Tick) *AttrIndex { return index.NewAttrIndex(base, T) }

// NewMotionIndex returns a motion index covering [base, base+T).
func NewMotionIndex(base, T Tick) *MotionIndex { return index.NewMotionIndex(base, T) }

// GridIndex is the alternative uniform-grid mechanism for indexing dynamic
// attributes (compared against the R-tree in experiment E11).
type GridIndex = index.GridIndex

// NewGridIndex returns a grid index over time [base, base+T) and values
// [vMin, vMax) at the given cell resolution.
func NewGridIndex(base, T Tick, vMin, vMax float64, cols, rows int) *GridIndex {
	return index.NewGridIndex(base, T, vMin, vMax, cols, rows)
}

// ---- MOST on a DBMS ----

// Store is the bundled in-memory relational DBMS.
type Store = relstore.Store

// NewStore returns an empty store.
func NewStore() *Store { return relstore.NewStore() }

// SQLSystem is the MOST layer over a Store (§5.1).
type SQLSystem = mostsql.System

// NewSQLSystem wraps a store; now supplies the clock.
func NewSQLSystem(store *Store, now func() Tick) *SQLSystem { return mostsql.New(store, now) }

// SQLValue is a value of the bundled relational DBMS.
type SQLValue = relstore.Value

// SQLNum wraps a number for the relational layer.
func SQLNum(f float64) SQLValue { return relstore.Num(f) }

// SQLStr wraps a string for the relational layer.
func SQLStr(s string) SQLValue { return relstore.Str(s) }

// SQLBool wraps a bool for the relational layer.
func SQLBool(b bool) SQLValue { return relstore.Bool(b) }

// ---- distributed ----

// Sim is the mobile distributed simulation (§5.2–5.3).
type Sim = dist.Sim

// NewSim returns an empty simulation.
func NewSim(seed int64) *Sim { return dist.NewSim(seed) }

// Object-query strategies.
const (
	ShipObjects    = dist.ShipObjects
	BroadcastQuery = dist.BroadcastQuery
)

// Delivery modes for Answer(CQ) transmission.
const (
	Immediate = dist.Immediate
	Delayed   = dist.Delayed
)

// ---- workloads ----

// FleetSpec parameterizes a synthetic vehicle fleet.
type FleetSpec = workload.FleetSpec

// Fleet builds a database of moving vehicles.
func Fleet(spec FleetSpec) (*Database, error) { return workload.Fleet(spec) }

// AirspaceSpec parameterizes an air-traffic scenario.
type AirspaceSpec = workload.AirspaceSpec

// Airspace builds a database of aircraft around an airport.
func Airspace(spec AirspaceSpec) (*Database, error) { return workload.Airspace(spec) }

// MotelsSpec parameterizes the MOTELS relation.
type MotelsSpec = workload.MotelsSpec

// AddMotels inserts stationary motels into a database.
func AddMotels(db *Database, spec MotelsSpec) error { return workload.AddMotels(db, spec) }
