package dist

import (
	"fmt"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

var vehicleClass = most.MustClass("Vehicles", true)

func newFleet(t *testing.T, s *Sim, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := most.ObjectID(fmt.Sprintf("v%03d", i))
		o, err := most.NewObject(id, vehicleClass)
		if err != nil {
			t.Fatal(err)
		}
		// Every third vehicle heads toward the region P = [100,110]x[-10,10].
		v := geom.Vector{X: 0}
		if i%3 == 0 {
			v = geom.Vector{X: 1}
		}
		o, err = o.WithPosition(motion.MovingFrom(geom.Point{X: float64(i % 7 * 10)}, v, 0))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddNode(o); err != nil {
			t.Fatal(err)
		}
	}
	s.Regions["P"] = geom.RectPolygon(100, -10, 110, 10)
}

func TestClassify(t *testing.T) {
	self := ftl.MustParse(`RETRIEVE o WHERE INSIDE(o, P)`)
	obj := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`)
	rel := ftl.MustParse(`RETRIEVE o, n FROM Vehicles o, Vehicles n WHERE DIST(o, n) <= 2`)
	if got := Classify(self, true); got != SelfReferencing {
		t.Errorf("self = %v", got)
	}
	if got := Classify(obj, false); got != ObjectQuery {
		t.Errorf("obj = %v", got)
	}
	if got := Classify(rel, false); got != RelationshipQuery {
		t.Errorf("rel = %v", got)
	}
	if SelfReferencing.String() != "self-referencing" || ObjectQuery.String() != "object" || RelationshipQuery.String() != "relationship" {
		t.Error("String rendering wrong")
	}
}

func TestSelfQueryNoTraffic(t *testing.T) {
	s := NewSim(1)
	newFleet(t, s, 10)
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, P)`)
	rel, err := s.SelfQuery("v000", q, 200)
	if err != nil {
		t.Fatal(err)
	}
	// v000 starts at x=0 heading +x: reaches P within 200 ticks.
	if rel.Len() != 1 {
		t.Fatalf("self answer = %d", rel.Len())
	}
	if s.NetStats().Messages != 0 {
		t.Fatalf("self query sent %d messages", s.NetStats().Messages)
	}
}

func TestObjectQueryStrategiesAgree(t *testing.T) {
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, P)`)
	s1 := NewSim(1)
	newFleet(t, s1, 30)
	ship, err := s1.RunObjectQuery("v001", q, 300, ShipObjects)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSim(1)
	newFleet(t, s2, 30)
	bcast, err := s2.RunObjectQuery("v001", q, 300, BroadcastQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Same answers.
	a, b := ship.Relation.Tuples(), bcast.Relation.Tuples()
	if len(a) != len(b) {
		t.Fatalf("ship %d answers, broadcast %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Vals[0] != b[i].Vals[0] || !a[i].Times.Equal(b[i].Times) {
			t.Fatalf("answer %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// Broadcast ships fewer bytes: replies only from the 10 satisfying
	// nodes (tuples), not 29 whole objects.
	if bcast.Traffic.Bytes >= ship.Traffic.Bytes {
		t.Fatalf("broadcast bytes %d >= ship bytes %d", bcast.Traffic.Bytes, ship.Traffic.Bytes)
	}
}

func TestRelationshipQueryCentralized(t *testing.T) {
	s := NewSim(1)
	newFleet(t, s, 12)
	q := ftl.MustParse(`RETRIEVE o, n FROM Vehicles o, Vehicles n WHERE ALWAYS FOR 3 DIST(o, n) <= 2`)
	res, err := s.RunRelationshipQuery("v000", q, 50)
	if err != nil {
		t.Fatal(err)
	}
	// At least the reflexive pairs qualify.
	if res.Relation.Len() < 12 {
		t.Fatalf("relationship answers = %d", res.Relation.Len())
	}
	// All 11 remote objects shipped plus 11 requests.
	if res.Traffic.Messages != 22 {
		t.Fatalf("messages = %d, want 22", res.Traffic.Messages)
	}
}

func TestDisconnectionDropsMessages(t *testing.T) {
	s := NewSim(7)
	newFleet(t, s, 40)
	s.PDisconnect = 0.5
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, P)`)
	res, err := s.RunObjectQuery("v000", q, 300, ShipObjects)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traffic.Dropped == 0 {
		t.Fatal("expected dropped messages at p=0.5")
	}
	// The answer is incomplete but still includes the issuer.
	found := false
	for _, tup := range res.Relation.Tuples() {
		if tup.Vals[0] == eval.ObjVal("v000") {
			found = true
		}
	}
	if !found {
		t.Fatal("issuer's own object must always be present")
	}
}

func TestContinuousTraffic(t *testing.T) {
	s := NewSim(1)
	newFleet(t, s, 10)
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P)`)
	updates := map[most.ObjectID]int{}
	for _, id := range s.Nodes() {
		updates[id] = 10
	}
	// Only 20% of the updates leave the predicate satisfied.
	ship, bcast := s.ContinuousTraffic(q, updates, func(_ most.ObjectID, k int) bool {
		return k%5 == 0
	})
	if ship.Messages != 10+100 {
		t.Fatalf("ship messages = %d", ship.Messages)
	}
	if bcast.Messages != 10+20 {
		t.Fatalf("broadcast messages = %d", bcast.Messages)
	}
	if bcast.Bytes >= ship.Bytes {
		t.Fatalf("broadcast bytes %d >= ship %d", bcast.Bytes, ship.Bytes)
	}
}

func mkAnswers(n int, spacing temporal.Tick) []eval.Answer {
	out := make([]eval.Answer, n)
	for i := range out {
		start := temporal.Tick(i) * spacing
		out[i] = eval.Answer{
			Vals:     []eval.Val{eval.NumVal(float64(i))},
			Interval: temporal.Interval{Start: start, End: start + 5},
		}
	}
	return out
}

func TestDeliverImmediateUnlimited(t *testing.T) {
	s := NewSim(1)
	answers := mkAnswers(10, 10)
	stats := s.DeliverAnswer(answers, Immediate, 0, 0, 100, func(temporal.Tick) bool { return true })
	if stats.Messages != 1 {
		t.Fatalf("messages = %d", stats.Messages)
	}
	if stats.Bytes != 10*s.Cost.TupleBytes {
		t.Fatalf("bytes = %d", stats.Bytes)
	}
	if stats.MissedDisplays != 0 || stats.PeakMemory != 10 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestDeliverImmediateBlocks(t *testing.T) {
	s := NewSim(1)
	answers := mkAnswers(10, 10)
	stats := s.DeliverAnswer(answers, Immediate, 3, 0, 100, func(temporal.Tick) bool { return true })
	if stats.Messages != 4 { // ceil(10/3)
		t.Fatalf("messages = %d", stats.Messages)
	}
	if stats.PeakMemory != 3 {
		t.Fatalf("peak memory = %d", stats.PeakMemory)
	}
}

func TestDeliverDelayed(t *testing.T) {
	s := NewSim(1)
	answers := mkAnswers(10, 10)
	stats := s.DeliverAnswer(answers, Delayed, 0, 0, 100, func(temporal.Tick) bool { return true })
	if stats.Messages != 10 {
		t.Fatalf("messages = %d", stats.Messages)
	}
	// Intervals are disjoint: at most one tuple held at a time.
	if stats.PeakMemory != 1 {
		t.Fatalf("peak memory = %d", stats.PeakMemory)
	}
}

func TestDeliveryUnderDisconnection(t *testing.T) {
	s := NewSim(1)
	answers := mkAnswers(50, 5)
	conn := RandomConnectivity(42, 0.4)
	im := s.DeliverAnswer(answers, Immediate, 0, 0, 300, conn)
	de := s.DeliverAnswer(answers, Delayed, 0, 0, 300, conn)
	// Immediate risks everything on the initial instant: either all or
	// nothing.  Delayed loses roughly p of the tuples.
	if im.MissedDisplays != 0 && im.MissedDisplays != 50 {
		t.Fatalf("immediate misses = %d", im.MissedDisplays)
	}
	if de.MissedDisplays == 0 || de.MissedDisplays == 50 {
		t.Fatalf("delayed misses = %d", de.MissedDisplays)
	}
}

func TestRandomConnectivityDeterministic(t *testing.T) {
	a := RandomConnectivity(5, 0.3)
	b := RandomConnectivity(5, 0.3)
	for tt := temporal.Tick(0); tt < 100; tt++ {
		if a(tt) != b(tt) {
			t.Fatal("connectivity not deterministic")
		}
	}
	// p=0 always connected; p=1 never.
	always := RandomConnectivity(1, 0)
	never := RandomConnectivity(1, 1)
	for tt := temporal.Tick(0); tt < 20; tt++ {
		if !always(tt) || never(tt) {
			t.Fatal("edge probabilities wrong")
		}
	}
}

func TestAddNodeErrors(t *testing.T) {
	s := NewSim(1)
	o, _ := most.NewObject("x", vehicleClass)
	o, _ = o.WithPosition(motion.PositionAt(geom.Point{}, 0))
	if _, err := s.AddNode(o); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddNode(o); err == nil {
		t.Fatal("duplicate node should fail")
	}
	if _, err := s.SelfQuery("ghost", ftl.MustParse(`RETRIEVE o FROM V o WHERE TRUE`), 10); err == nil {
		t.Fatal("unknown issuer should fail")
	}
	if _, ok := s.Node("x"); !ok {
		t.Fatal("node lookup failed")
	}
}
