package most

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// UpdateKind classifies explicit database updates.
type UpdateKind uint8

// Update kinds.
const (
	UpdateInsert UpdateKind = iota
	UpdateDelete
	UpdateStatic
	UpdateDynamic
)

// Update is one explicit modification of the database: the unit the history
// log records and the event continuous-query maintenance reacts to (§2.3:
// "a continuous query CQ has to be reevaluated when an update occurs that
// may change the set of tuples Answer(CQ)").
type Update struct {
	Tick   temporal.Tick
	Kind   UpdateKind
	Object ObjectID
	Attr   string // set for UpdateStatic/UpdateDynamic
	// Before/After capture the object revisions around the update; Before
	// is nil for inserts, After is nil for deletes.
	Before, After *Object
	// Prov, when non-nil, records which network request committed this
	// update.  It rides into the WAL, which is what lets a restarted server
	// tell how much of a partially applied request survived the crash.
	Prov *Prov
}

// Prov identifies the network request an update was committed on behalf of:
// the client identity, the client's request ID, and the index of the update
// within that request.  The ...Prov mutation variants stamp it into the
// update and the WAL record; recovery surfaces it through WALObserver so a
// server can rebuild its idempotence state after a crash.
type Prov struct {
	Client string `json:"c,omitempty"`
	Req    uint64 `json:"r,omitempty"`
	Op     int    `json:"o,omitempty"`
}

// Listener observes explicit updates.  Listeners run synchronously on the
// updater's goroutine, after every lock has been released.  When updates
// are issued from a single goroutine, listeners observe them in commit
// order; concurrent updaters may interleave their notifications (each
// notification still carries a consistent Before/After pair).
type Listener func(Update)

// objShardCount is the number of object shards.  A fixed power of two keeps
// shardFor branch-free; 16 shards suffice to spread update traffic across
// many more cores than that, because each shard lock is held only for the
// few instructions of one revision swap.
const objShardCount = 16

// objShard is one slice of the object map with its own lock, so updates to
// objects in different shards never contend.
type objShard struct {
	mu      sync.RWMutex
	objects map[ObjectID]*Object
}

// Database is a MOST database: a set of object classes and their current
// objects, a global discrete clock, and a log of explicit updates.  The
// paper's "database history" (§2.2) is implicit: the past is reconstructed
// from the log, and the future from the dynamic attributes' functions.
//
// The database is safe for concurrent use by any number of updaters and
// readers.  We assume instantaneous updates: valid-time equals
// transaction-time (§2.1).
//
// # Locking discipline
//
// Objects live in objShardCount shards hashed by id, each under its own
// RWMutex, so explicit updates to distinct objects proceed in parallel and
// readers never block readers.  Four locks exist, and every code path that
// holds more than one acquires them in this fixed order (releases may
// happen in any order):
//
//	clockMu (read)  <  shard.mu (ascending shard index)  <  metaMu  <  logMu
//
// clockMu guards the clock.  Every update holds it shared for the whole
// operation so the clock cannot advance between the tick an update is
// stamped with and the tick its revision is rebased at; Advance takes it
// exclusively and therefore serializes against in-flight updates, which
// keeps the log sorted by tick.  metaMu guards the class registry and the
// per-class membership lists.  logMu guards the update log and the
// listener registry; because an updater still holds its shard lock while
// appending to the log, any reader holding all shard locks (History,
// SnapshotJSON) observes object state and log atomically consistent.
//
// Object revisions themselves are immutable: reads taken under a shard
// read-lock remain valid — and internally consistent — after the lock is
// released (copy-on-read snapshot semantics).  Snapshot and History hand
// out such stable views for query evaluation.
type Database struct {
	clockMu sync.RWMutex
	now     temporal.Tick

	shards [objShardCount]objShard

	metaMu  sync.RWMutex
	classes map[string]*Class
	byClass map[string][]ObjectID

	logMu     sync.Mutex
	log       []Update
	listeners []Listener

	// wal, when attached, receives every class definition, clock advance,
	// and explicit update inside the respective commit critical section, so
	// WAL order equals commit order.  See wal.go.
	wal atomic.Pointer[WAL]

	// obsv holds the pre-resolved observability instruments (see obs.go);
	// nil means uninstrumented.
	obsv atomic.Pointer[dbObs]
}

// shardSeed is the process-wide seed for the shard hash.
var shardSeed = maphash.MakeSeed()

func (db *Database) shardFor(id ObjectID) *objShard {
	return &db.shards[maphash.String(shardSeed, string(id))&(objShardCount-1)]
}

// NewDatabase returns an empty database with the clock at tick 0.
func NewDatabase() *Database {
	db := &Database{
		classes: map[string]*Class{},
		byClass: map[string][]ObjectID{},
	}
	for i := range db.shards {
		db.shards[i].objects = map[ObjectID]*Object{}
	}
	return db
}

// Now returns the current tick of the special "time" object.  Safe for
// concurrent use.
func (db *Database) Now() temporal.Tick {
	db.clockMu.RLock()
	defer db.clockMu.RUnlock()
	return db.now
}

// Tick advances the clock by one (its value "increases by one in each clock
// tick", §2) and returns the new time.
func (db *Database) Tick() temporal.Tick { return db.Advance(1) }

// Advance moves the clock forward by d ticks and returns the new time.  It
// waits for in-flight updates, so no update is ever stamped with a tick
// other than the one its revisions were computed at.
func (db *Database) Advance(d temporal.Tick) temporal.Tick { return db.advance(d, nil) }

// AdvanceProv is Advance stamped with request provenance (see Prov).
func (db *Database) AdvanceProv(d temporal.Tick, p *Prov) temporal.Tick { return db.advance(d, p) }

func (db *Database) advance(d temporal.Tick, p *Prov) temporal.Tick {
	if d < 0 {
		panic("most: the clock cannot run backwards")
	}
	db.clockMu.Lock()
	defer db.clockMu.Unlock()
	db.now = db.now.Add(d)
	if w := db.wal.Load(); w != nil {
		w.appendClock(db.now, p)
	}
	return db.now
}

// DefineClass registers an object class.
func (db *Database) DefineClass(c *Class) error {
	db.metaMu.Lock()
	defer db.metaMu.Unlock()
	if _, dup := db.classes[c.Name()]; dup {
		return fmt.Errorf("most: class %s already defined", c.Name())
	}
	db.classes[c.Name()] = c
	if w := db.wal.Load(); w != nil {
		w.appendClass(c)
	}
	return nil
}

// Class looks up a class by name.
func (db *Database) Class(name string) (*Class, bool) {
	db.metaMu.RLock()
	defer db.metaMu.RUnlock()
	c, ok := db.classes[name]
	return c, ok
}

// Subscribe registers a listener for explicit updates.
func (db *Database) Subscribe(l Listener) {
	db.logMu.Lock()
	defer db.logMu.Unlock()
	db.listeners = append(db.listeners, l)
}

// appendLog stamps the update into the log and returns the listener list to
// notify.  The caller must still hold the object's shard lock (so state and
// log commit atomically with respect to History) and must notify only after
// releasing every lock.
func (db *Database) appendLog(u Update) []Listener {
	db.logMu.Lock()
	db.log = append(db.log, u)
	ls := db.listeners
	if w := db.wal.Load(); w != nil {
		// Written before the shard lock is released, so the WAL sees
		// updates in commit order.  The append only reaches the OS page
		// cache: a process crash after this point loses nothing, but
		// surviving a machine crash (power loss) additionally requires
		// WAL.Sync — callers choose how often to pay for that.
		w.appendUpdate(u)
	}
	db.logMu.Unlock()
	return ls
}

// Insert adds a new object.
func (db *Database) Insert(o *Object) error { return db.insert(o, nil) }

// InsertProv is Insert stamped with request provenance (see Prov).
func (db *Database) InsertProv(o *Object, p *Prov) error { return db.insert(o, p) }

func (db *Database) insert(o *Object, prov *Prov) error {
	dob := db.obsv.Load()
	t0 := dob.start()
	db.clockMu.RLock()
	s := db.shardFor(o.id)
	s.mu.Lock()
	if _, dup := s.objects[o.id]; dup {
		s.mu.Unlock()
		db.clockMu.RUnlock()
		return fmt.Errorf("most: object %s already exists", o.id)
	}
	db.metaMu.Lock()
	if db.classes[o.class.Name()] != o.class {
		db.metaMu.Unlock()
		s.mu.Unlock()
		db.clockMu.RUnlock()
		return fmt.Errorf("most: class %s of object %s is not defined in this database", o.class.Name(), o.id)
	}
	db.byClass[o.class.Name()] = append(db.byClass[o.class.Name()], o.id)
	db.metaMu.Unlock()
	s.objects[o.id] = o
	u := Update{Tick: db.now, Kind: UpdateInsert, Object: o.id, After: o, Prov: prov}
	ls := db.appendLog(u)
	s.mu.Unlock()
	db.clockMu.RUnlock()
	dob.commitDone(t0)
	notify(ls, u)
	return nil
}

// Delete removes an object.
func (db *Database) Delete(id ObjectID) error { return db.delete(id, nil) }

// DeleteProv is Delete stamped with request provenance (see Prov).
func (db *Database) DeleteProv(id ObjectID, p *Prov) error { return db.delete(id, p) }

func (db *Database) delete(id ObjectID, prov *Prov) error {
	dob := db.obsv.Load()
	t0 := dob.start()
	db.clockMu.RLock()
	s := db.shardFor(id)
	s.mu.Lock()
	o, ok := s.objects[id]
	if !ok {
		s.mu.Unlock()
		db.clockMu.RUnlock()
		return fmt.Errorf("most: object %s does not exist", id)
	}
	delete(s.objects, id)
	db.metaMu.Lock()
	ids := db.byClass[o.class.Name()]
	for i, cand := range ids {
		if cand == id {
			db.byClass[o.class.Name()] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	db.metaMu.Unlock()
	u := Update{Tick: db.now, Kind: UpdateDelete, Object: id, Before: o, Prov: prov}
	ls := db.appendLog(u)
	s.mu.Unlock()
	db.clockMu.RUnlock()
	dob.commitDone(t0)
	notify(ls, u)
	return nil
}

func notify(ls []Listener, u Update) {
	for _, l := range ls {
		l(u)
	}
}

// mutate applies fn to the object's current revision and commits the result
// as an explicit update, under the locking discipline described on
// Database.
func (db *Database) mutate(id ObjectID, kind UpdateKind, attr string, prov *Prov, fn func(o *Object, now temporal.Tick) (*Object, error)) error {
	dob := db.obsv.Load()
	t0 := dob.start()
	db.clockMu.RLock()
	now := db.now
	s := db.shardFor(id)
	s.mu.Lock()
	o, ok := s.objects[id]
	if !ok {
		s.mu.Unlock()
		db.clockMu.RUnlock()
		return fmt.Errorf("most: object %s does not exist", id)
	}
	next, err := fn(o, now)
	if err != nil {
		s.mu.Unlock()
		db.clockMu.RUnlock()
		return err
	}
	s.objects[id] = next
	u := Update{Tick: now, Kind: kind, Object: id, Attr: attr, Before: o, After: next, Prov: prov}
	ls := db.appendLog(u)
	s.mu.Unlock()
	db.clockMu.RUnlock()
	dob.commitDone(t0)
	notify(ls, u)
	return nil
}

// Get returns the current revision of the object.
func (db *Database) Get(id ObjectID) (*Object, bool) {
	s := db.shardFor(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[id]
	return o, ok
}

// Objects returns the current revisions of all objects of a class, in
// insertion order.  With class == "" it returns every object, sorted by id.
func (db *Database) Objects(class string) []*Object {
	if class != "" {
		db.metaMu.RLock()
		ids := make([]ObjectID, len(db.byClass[class]))
		copy(ids, db.byClass[class])
		db.metaMu.RUnlock()
		out := make([]*Object, 0, len(ids))
		for _, id := range ids {
			// An object may be deleted between the membership copy and the
			// shard read; skip it rather than return a nil revision.
			if o, ok := db.Get(id); ok {
				out = append(out, o)
			}
		}
		return out
	}
	var out []*Object
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		for _, o := range s.objects {
			out = append(out, o)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Snapshot returns a copy-on-read view of every current object revision.
// The returned map is owned by the caller; the *Object revisions in it are
// immutable, so the view stays internally consistent while updaters keep
// committing.  Query evaluation runs against such snapshots, which is what
// lets explicit updates and query evaluation proceed simultaneously.
func (db *Database) Snapshot() map[ObjectID]*Object {
	out := make(map[ObjectID]*Object, db.Count())
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		for id, o := range s.objects {
			out[id] = o
		}
		s.mu.RUnlock()
	}
	db.obsv.Load().snapshotDone(len(out))
	return out
}

// Count returns the number of live objects (all classes).
func (db *Database) Count() int {
	n := 0
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		n += len(s.objects)
		s.mu.RUnlock()
	}
	return n
}

// Version returns the number of committed explicit updates.  It increases
// monotonically; continuous/persistent maintenance uses it to discard stale
// reevaluation results under concurrent updates.
func (db *Database) Version() uint64 {
	db.logMu.Lock()
	defer db.logMu.Unlock()
	return uint64(len(db.log))
}

// SetStatic explicitly updates a static attribute at the current time.
func (db *Database) SetStatic(id ObjectID, attr string, v Value) error {
	return db.SetStaticProv(id, attr, v, nil)
}

// SetStaticProv is SetStatic stamped with request provenance (see Prov).
func (db *Database) SetStaticProv(id ObjectID, attr string, v Value, p *Prov) error {
	return db.mutate(id, UpdateStatic, attr, p, func(o *Object, _ temporal.Tick) (*Object, error) {
		return o.WithStatic(attr, v)
	})
}

// SetDynamic explicitly updates a dynamic attribute's sub-attributes at the
// current time ("an explicit update of a dynamic attribute may change its
// value sub-attribute, or its function sub-attribute, or both", §2.1).
func (db *Database) SetDynamic(id ObjectID, attr string, a motion.DynamicAttr) error {
	return db.mutate(id, UpdateDynamic, attr, nil, func(o *Object, _ temporal.Tick) (*Object, error) {
		return o.WithDynamic(attr, a)
	})
}

// UpdateFunction re-bases the dynamic attribute to its current value and
// installs a new function — the motion-vector update a vehicle's sensor
// issues "when it senses a change in speed or direction" (§1).
func (db *Database) UpdateFunction(id ObjectID, attr string, f motion.Func) error {
	return db.mutate(id, UpdateDynamic, attr, nil, func(o *Object, now temporal.Tick) (*Object, error) {
		cur, err := o.Dynamic(attr)
		if err != nil {
			return nil, err
		}
		return o.WithDynamic(attr, cur.Updated(now, f))
	})
}

// SetMotion updates a spatial object's motion vector at the current time,
// keeping its position continuous.
func (db *Database) SetMotion(id ObjectID, v geom.Vector) error {
	return db.SetMotionProv(id, v, nil)
}

// SetMotionProv is SetMotion stamped with request provenance (see Prov).
func (db *Database) SetMotionProv(id ObjectID, v geom.Vector, p *Prov) error {
	return db.mutate(id, UpdateDynamic, XPosition, p, func(o *Object, now temporal.Tick) (*Object, error) {
		pos, err := o.Position()
		if err != nil {
			return nil, err
		}
		return o.WithPosition(pos.Retarget(now, v))
	})
}

// Log returns a copy of the explicit-update log since the beginning of the
// database's life; persistent queries replay it (§2.3: "the evaluation of
// persistent queries requires saving of information about the way the
// database is updated over time").
func (db *Database) Log() []Update {
	db.logMu.Lock()
	defer db.logMu.Unlock()
	out := make([]Update, len(db.log))
	copy(out, db.log)
	return out
}

// LogSince returns the log entries with Tick >= t.
func (db *Database) LogSince(t temporal.Tick) []Update {
	db.logMu.Lock()
	defer db.logMu.Unlock()
	i := sort.Search(len(db.log), func(i int) bool { return db.log[i].Tick >= t })
	out := make([]Update, len(db.log)-i)
	copy(out, db.log[i:])
	return out
}

// lockAllRead acquires the clock and every shard in the documented order,
// giving the caller a fully consistent read view; release with
// unlockAllRead.  While held, no update can commit.
func (db *Database) lockAllRead() {
	db.clockMu.RLock()
	for i := range db.shards {
		db.shards[i].mu.RLock()
	}
}

func (db *Database) unlockAllRead() {
	for i := range db.shards {
		db.shards[i].mu.RUnlock()
	}
	db.clockMu.RUnlock()
}
