// Package obs is the engine's observability layer: named atomic counters,
// gauges, lock-free log-scale histograms, and a tracer producing per-query
// span trees with monotonic timings.  It has no dependencies outside the
// standard library and is designed so that a *disabled* registry costs one
// nil-check branch on every hook: all methods are nil-safe on both the
// registry and the instruments it hands out, so hot paths hold pre-resolved
// (possibly nil) *Counter/*Histogram pointers and never allocate or lock
// when observability is off.
//
// A Registry snapshot serializes to JSON and implements expvar.Var, so it
// plugs into /debug/vars alongside the runtime's own metrics; see http.go
// for the ready-made mux that also wires net/http/pprof.
package obs

import (
	"encoding/json"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.  The zero value is
// ready to use; a nil *Counter ignores updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.  No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.  No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (a level, not a rate).  A nil
// *Gauge ignores updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.  No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n.  No-op on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current level (0 for a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i counts observations v
// with 2^i <= v < 2^(i+1) (bucket 0 also absorbs v <= 1).  64 buckets cover
// the full int64 range, so the layout never reallocates and Observe is a
// single atomic add — safe from any number of goroutines with no lock.
const histBuckets = 64

// Histogram is a lock-free histogram with fixed log2-scale buckets,
// intended for latencies in nanoseconds.  The zero value is ready to use; a
// nil *Histogram ignores observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v < 2 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// Observe records one value.  No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Since records the nanoseconds elapsed since t0, skipping zero times (the
// marker Registry.Start returns when observability is disabled).
func (h *Histogram) Since(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0).Nanoseconds())
}

// Count returns the number of observations (0 for a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 for a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket is one non-empty histogram bucket: Count observations with
// value <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the serialized state of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     int64    `json:"p50"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram.  Quantiles are upper bounds read off the
// log-scale buckets (within 2x of the true value by construction).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	var counts [histBuckets]int64
	for i := range counts {
		if n := h.buckets[i].Load(); n > 0 {
			counts[i] = n
			s.Buckets = append(s.Buckets, Bucket{Le: bucketUpper(i), Count: n})
		}
	}
	s.P50 = bucketQuantile(counts[:], s.Count, 0.50)
	s.P99 = bucketQuantile(counts[:], s.Count, 0.99)
	return s
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i >= 62 {
		return int64(1)<<62 - 1 + int64(1)<<62 // MaxInt64
	}
	return int64(1)<<(i+1) - 1
}

// bucketQuantile returns the upper bound of the bucket holding quantile q.
func bucketQuantile(counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if float64(rank) < q*float64(total) { // ceil: the rank-th smallest covers quantile q
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range counts {
		seen += n
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(len(counts) - 1)
}

// Registry names and owns a process's instruments.  Look-ups lazily create;
// hot paths should resolve once and keep the returned pointer.  All methods
// are safe for concurrent use, and every method is a cheap no-op on a nil
// *Registry — "disabled" is spelled `var reg *obs.Registry = nil`.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	traceMu sync.Mutex
	traces  map[string]*Span // latest completed trace per root-span name
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		traces:   map[string]*Span{},
	}
}

// Counter returns the named counter, creating it on first use.  Returns nil
// (a valid, inert counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Start returns the current time when the registry is enabled and the zero
// Time otherwise, so disabled paths skip the clock read entirely; pair with
// Histogram.Since.
func (r *Registry) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// Snapshot is the full serialized state of a registry: every counter,
// gauge, and histogram by name, plus the latest completed span tree per
// root-span name.  This is the schema BENCH_obs.json and /obs serve.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Traces     map[string]SpanSnapshot      `json:"traces,omitempty"`
}

// Snapshot captures the registry's current state.  Counters and histograms
// keep updating concurrently; the snapshot is per-instrument atomic.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Traces:     map[string]SpanSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	r.traceMu.Lock()
	roots := make(map[string]*Span, len(r.traces))
	for k, v := range r.traces {
		roots[k] = v
	}
	r.traceMu.Unlock()
	for k, v := range roots {
		s.Traces[k] = v.Snapshot()
	}
	return s
}

// String renders the snapshot as compact JSON; Registry therefore satisfies
// expvar.Var and can be published straight into /debug/vars.
func (r *Registry) String() string {
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(data)
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
