// Package server is the MOST network service: a TCP server exposing a
// most.Database and query.Engine over the internal/wire protocol, with
// per-connection sessions, request pipelining, batched update application,
// and server-push streaming of continuous-query notifications over
// long-lived connections.
//
// # Protocol versions
//
// The server speaks both wire encodings: protocol version 1 (JSON
// payloads) and version 2 (the compact binary codec, see PROTOCOL.md).
// Every session starts at version 1; the Hello handshake negotiates
// min(client max, Config.MaxProtocol) and the session switches to the
// negotiated version for all subsequent frames.  A frame carrying any
// other version after negotiation is a protocol violation: the server
// counts it (server.protocol_violations), pushes a best-effort error
// frame, and disconnects the session.
//
// # Sessions and backpressure
//
// Each accepted connection gets one session: a reader goroutine decoding
// and dispatching requests in arrival order (the transport pipelines —
// clients need not wait for one answer before sending the next request),
// and a writer goroutine owning every write to the connection.  All
// outbound frames pass through a bounded per-session queue.
//
// Continuous-query notifications must never let one slow client stall
// commits or other sessions, so they take a three-stage path: the engine's
// maintenance callback (which runs on the updater's commit path) only
// stores the new answer in a per-subscription mailbox and sets a flag —
// it never blocks and never serializes; a per-subscription pump goroutine
// converts the latest answer to wire form and enqueues it, coalescing
// rounds that arrive while the connection is backed up; and the writer
// drains the queue to the socket.  If the pump cannot enqueue, or the
// writer cannot complete a write, within Config.WriteBudget, the session
// is a slow consumer: it is disconnected (counted in
// server.slow_consumer_disconnects) and everyone else proceeds.
//
// # Idempotent retries
//
// A client that says Hello with a ClientID gets exactly-once application
// of its mutating requests across reconnects: the server keeps a bounded
// per-client cache of executed request IDs and their responses, so a
// request retried after a connection failure is answered from the cache
// instead of being applied twice — the reliable-delivery semantics of
// internal/faults on a real socket.
//
// # Observability
//
// With Config.Reg set, the server maintains connection and subscription
// gauges, frame counters, per-opcode latency histograms
// (server.op_ns.<opcode>), pure apply-path latency (server.apply_ns), and
// slow-consumer/dedup counters, all surfaced on the existing /obs +
// /debug/pprof mux (obs.NewServeMux).
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/query"
	"github.com/mostdb/most/internal/wire"
)

// Config tunes a Server.  The zero value serves with sane defaults.
type Config struct {
	// MaxPayload bounds per-frame payload allocation (default
	// wire.DefaultMaxPayload).
	MaxPayload int
	// MaxProtocol caps the protocol version the server negotiates in the
	// Hello handshake: 1 forces JSON payloads for every session, 2 (the
	// default) lets v2 clients use the binary codec while v1 clients keep
	// working.  Values outside [1, wire.MaxProtocolVersion] are clamped.
	MaxProtocol int
	// OutQueue is the per-session outbound frame queue length (default 256).
	OutQueue int
	// WriteBudget is the slow-consumer budget: the longest a frame may wait
	// to enter a session's queue, or a single write may take, before the
	// session is disconnected (default 5s).
	WriteBudget time.Duration
	// DedupWindow is how many executed requests are remembered per client
	// for idempotent retries (default 1024).
	DedupWindow int
	// BaseOptions seed every query evaluation: regions, index, parallelism.
	// Per-request horizons override BaseOptions.Horizon.
	BaseOptions query.Options
	// Reg receives the server's metrics; nil disables instrumentation.
	Reg *obs.Registry
	// Name is the server identity reported in the Hello response.
	Name string
	// MaxInflight caps requests executing concurrently across all sessions
	// (admission control).  A request arriving with the cap exhausted is
	// shed immediately with ErrorResp code "overloaded" — never queued,
	// never executed, never entered into the idempotence cache — so an
	// overloaded server stays responsive instead of collapsing.  0 (the
	// default) disables shedding.  Hello and Ping are never shed.
	MaxInflight int
	// Health, when set, tracks the server lifecycle (recovering → ready →
	// draining) for /healthz + /readyz (obs.Health.Mount).  Nil disables.
	Health *obs.Health
	// CheckpointEvery makes a durable server (NewDurable) checkpoint after
	// every N mutating requests; 0 checkpoints only on explicit Checkpoint
	// calls and clean Shutdown.  Ignored by plain New servers.
	CheckpointEvery int
	// Cluster, when set, makes this server one node of a spatially
	// partitioned cluster (internal/cluster): updates are gated on zone
	// ownership, OpZoneMap/OpHandoff/OpForward are served, and every
	// committed mutation triggers a handoff scan.  Nil (the default) keeps
	// single-node behavior exactly as before.
	Cluster ClusterHooks
	// PeerMaxPayload raises the decoder's per-frame payload bound for
	// sessions that identify as cluster peers (HelloReq.Peer), so bulk
	// handoff frames can exceed the client-facing MaxPayload cap without
	// loosening the hostile-input limit for ordinary connections.  0 keeps
	// peers at MaxPayload.
	PeerMaxPayload int
}

// ClusterHooks is how a cluster node (internal/cluster) plugs into the
// server's request path.  All methods are called from session goroutines
// and must be safe for concurrent use.  The interface lives here, and the
// implementation in internal/cluster, so server does not import cluster.
type ClusterHooks interface {
	// RouteOp classifies one update op: owned reports whether this node
	// may apply it (it owns the object's zone, the class is replicated, or
	// the op is positionless).  When owned is false, addr is the owning
	// node's address ("" when unknown).  frozen reports an object mid-
	// handoff: the caller must reject with a retryable error rather than
	// apply or relay.
	RouteOp(op *wire.UpdateOp) (addr string, owned, frozen bool)
	// ZoneMap returns the cluster topology served to OpZoneMap requests.
	ZoneMap() *wire.ZoneMapResp
	// Handoff applies an incoming object transfer (receiver side), fenced
	// by req.Version so duplicates acknowledge without re-applying.  prov
	// (non-nil on a durable node) stamps the apply for crash recovery.
	Handoff(req *wire.HandoffReq, prov *most.Prov) (*wire.HandoffResp, error)
	// Relay forwards a whole batch to the owning node on behalf of the
	// origin client (used when every op in a client batch belongs to one
	// foreign node).  The response or error is returned verbatim.
	Relay(addr string, req *wire.ForwardReq) (*wire.UpdateBatchResp, error)
	// AfterCommit runs on the session goroutine after a mutation commits:
	// touched lists the object IDs written by the batch (nil after a clock
	// advance, meaning scan everything).  The node checks each for zone
	// exits and hands off movers before the call returns, so a quiesced
	// cluster has no undelivered handoffs.
	AfterCommit(touched []string)
}

// RelayError carries a typed failure from a relayed batch back to the
// origin client with its machine-readable code (and redirect address)
// intact, so retry semantics survive the extra hop.
type RelayError struct {
	Code string
	Msg  string
	Addr string
}

func (e *RelayError) Error() string { return e.Msg }

// WithCommitLock runs fn holding the durable commit lock shared, so a
// cluster node's out-of-band local mutations (deleting an object once its
// handoff is acknowledged) cannot interleave with a checkpoint's
// snapshot/WAL truncation.  On a non-durable server the lock is a
// formality and fn just runs.
func (srv *Server) WithCommitLock(fn func()) {
	srv.commitMu.RLock()
	defer srv.commitMu.RUnlock()
	fn()
}

// DB returns the server's live database — the current one, tracking any
// snapshot-load swap.  Cluster nodes read through this instead of caching
// the pointer NewDurable built.
func (srv *Server) DB() *most.Database { return srv.state().db }

func (c Config) normalized() Config {
	if c.MaxPayload <= 0 {
		c.MaxPayload = wire.DefaultMaxPayload
	}
	if c.MaxProtocol <= 0 || c.MaxProtocol > wire.MaxProtocolVersion {
		c.MaxProtocol = wire.MaxProtocolVersion
	}
	if c.OutQueue <= 0 {
		c.OutQueue = 256
	}
	if c.WriteBudget <= 0 {
		c.WriteBudget = 5 * time.Second
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 1024
	}
	if c.Name == "" {
		c.Name = "mostserver"
	}
	return c
}

// state is the served database and engine; SnapshotLoad swaps it
// atomically.
type state struct {
	db  *most.Database
	eng *query.Engine
}

// Server serves a MOST database over TCP.
type Server struct {
	cfg Config
	st  atomic.Pointer[state]
	m   *metrics

	nextSub atomic.Uint64

	// admit is the admission-control semaphore (nil when MaxInflight <= 0).
	admit chan struct{}

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	closed   bool
	wg       sync.WaitGroup

	dedupMu sync.Mutex
	dedup   map[string]*dedupCache

	// convs memoizes wire-row conversion per shared plan: every
	// subscription on the same plan receives the same installed relation
	// objects, so each install is converted to []wire.AnswerRow once and
	// the rows are reused by all pumps (see planConv).
	convMu sync.Mutex
	convs  map[uint64]*planConv

	// Epoch fencing: the newest session generation per ClientID, so a
	// reconnecting client supersedes its zombie predecessor and a stale
	// predecessor's Hello is rejected (wire.CodeStaleEpoch).
	epochMu sync.Mutex
	epochs  map[string]*clientEpoch

	// Durability (zero on plain New servers; see durable.go).  commitMu
	// orders mutating requests (shared) against checkpoints and WAL rebases
	// (exclusive).
	durable         bool
	wal             *most.WAL
	snapPath        string
	dedupPath       string
	checkpointEvery int
	mutSince        atomic.Uint64
	commitMu        sync.RWMutex

	partialMu sync.Mutex
	partial   map[string]map[uint64]int
	recovered map[string]struct{}
}

// New returns a server over db and eng.  The engine must be bound to db.
func New(db *most.Database, eng *query.Engine, cfg Config) *Server {
	cfg = cfg.normalized()
	srv := &Server{
		cfg:       cfg,
		m:         newMetrics(cfg.Reg),
		sessions:  map[*session]struct{}{},
		dedup:     map[string]*dedupCache{},
		convs:     map[uint64]*planConv{},
		epochs:    map[string]*clientEpoch{},
		partial:   map[string]map[uint64]int{},
		recovered: map[string]struct{}{},
	}
	if cfg.MaxInflight > 0 {
		srv.admit = make(chan struct{}, cfg.MaxInflight)
	}
	if cfg.Reg != nil {
		db.Instrument(cfg.Reg)
		eng.Instrument(cfg.Reg)
	}
	srv.st.Store(&state{db: db, eng: eng})
	return srv
}

// state returns the current database/engine pair.
func (srv *Server) state() *state { return srv.st.Load() }

// ListenAndServe listens on addr (e.g. ":7654", "127.0.0.1:0") and serves
// until Shutdown.  It returns once the listener is installed; accept-loop
// errors after Shutdown are swallowed.
func (srv *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if err := srv.register(ln); err != nil {
		return err
	}
	go srv.acceptLoop(ln)
	return nil
}

// Addr returns the listener address (nil before ListenAndServe/Serve).
func (srv *Server) Addr() net.Addr {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.ln == nil {
		return nil
	}
	return srv.ln.Addr()
}

// Serve accepts connections on ln until the listener fails or Shutdown
// closes it.
func (srv *Server) Serve(ln net.Listener) error {
	if err := srv.register(ln); err != nil {
		return err
	}
	return srv.acceptLoop(ln)
}

// register installs the listener so Addr and Shutdown see it, and marks the
// service ready: recovery (if any) finished before the listener existed.
func (srv *Server) register(ln net.Listener) error {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.closed {
		ln.Close()
		return errors.New("server: already shut down")
	}
	srv.ln = ln
	srv.cfg.Health.Set(obs.StateReady)
	return nil
}

func (srv *Server) acceptLoop(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			srv.mu.Lock()
			closed := srv.closed
			srv.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if !srv.startSession(conn) {
			conn.Close()
			return nil
		}
	}
}

// startSession registers and launches a session; it refuses when the
// server is shutting down.
func (srv *Server) startSession(conn net.Conn) bool {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return false
	}
	s := newSession(srv, conn)
	srv.sessions[s] = struct{}{}
	srv.wg.Add(1)
	srv.mu.Unlock()
	srv.m.connectionsTotal.Inc()
	srv.m.connections.Add(1)
	go func() {
		defer srv.wg.Done()
		defer srv.m.connections.Add(-1)
		defer srv.dropSession(s)
		s.run()
	}()
	return true
}

func (srv *Server) dropSession(s *session) {
	srv.mu.Lock()
	delete(srv.sessions, s)
	srv.mu.Unlock()
}

// Shutdown drains the server: it stops accepting, lets every session
// finish the request it is executing and flush queued responses, then
// closes the connections.  Sessions still busy when ctx expires are killed.
func (srv *Server) Shutdown(ctx context.Context) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return nil
	}
	srv.closed = true
	ln := srv.ln
	sessions := make([]*session, 0, len(srv.sessions))
	for s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	srv.cfg.Health.Set(obs.StateDraining)
	if ln != nil {
		ln.Close()
	}
	for _, s := range sessions {
		s.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		srv.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		srv.finishDurable(true)
		return nil
	case <-ctx.Done():
		srv.mu.Lock()
		for s := range srv.sessions {
			s.kill("server shutdown")
		}
		srv.mu.Unlock()
		<-done
		srv.finishDurable(false)
		return ctx.Err()
	}
}

// Close shuts the server down, giving sessions a short grace period to
// drain before they are killed.
func (srv *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// swapState installs a freshly loaded database, instruments it like the
// original, and tears down every live subscription (their engine is gone).
func (srv *Server) swapState(db *most.Database) {
	eng := query.NewEngine(db)
	if srv.cfg.Reg != nil {
		db.Instrument(srv.cfg.Reg)
		eng.Instrument(srv.cfg.Reg)
	}
	srv.st.Store(&state{db: db, eng: eng})
	srv.mu.Lock()
	sessions := make([]*session, 0, len(srv.sessions))
	for s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	for _, s := range sessions {
		s.closeSubs("database replaced")
	}
}

// ---- idempotence cache ----

// dedupEntry is one executed (or executing) request.  done is closed once
// frame holds the response; a retry arriving mid-execution waits for it
// instead of re-applying the request.
type dedupEntry struct {
	done  chan struct{}
	frame wire.Frame
}

// dedupCache remembers the last cap mutating requests of one client.
type dedupCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*dedupEntry
	order   []uint64
}

// begin reserves request id.  It returns (entry, true) when the request
// was already seen — the caller waits on entry.done and replays
// entry.frame — or (entry, false) when the caller must execute the request
// and finish the entry.
func (c *dedupCache) begin(id uint64) (*dedupEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		return e, true
	}
	e := &dedupEntry{done: make(chan struct{})}
	c.entries[id] = e
	c.order = append(c.order, id)
	for len(c.order) > c.cap {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, evict)
	}
	return e, false
}

// finish publishes the response for a reserved entry.
func (e *dedupEntry) finish(f wire.Frame) {
	e.frame = f
	close(e.done)
}

// remove forgets a reservation, so a later retry executes afresh.  Used
// for requests that were reserved but never executed (deadline expired
// before the handler ran): caching their rejection would replay it to a
// retry arriving with a healthy budget.
func (c *dedupCache) remove(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, id)
}

// dedupFor returns the cache for a client identity, creating it on first
// use.  The caches live for the server's lifetime so retries survive
// reconnects.
func (srv *Server) dedupFor(clientID string) *dedupCache {
	if clientID == "" {
		return nil
	}
	srv.dedupMu.Lock()
	defer srv.dedupMu.Unlock()
	c, ok := srv.dedup[clientID]
	if !ok {
		c = &dedupCache{cap: srv.cfg.DedupWindow, entries: map[uint64]*dedupEntry{}}
		srv.dedup[clientID] = c
	}
	return c
}

// fenceEpoch applies epoch fencing for a Hello.  It returns resumed (the
// server recognizes this ClientID from an earlier session or from durable
// recovery), the superseded predecessor session to kill (nil if none), and
// ok=false when the Hello itself is the zombie: its epoch is lower than one
// already seen, so a newer session of the same client has taken over.
// Epoch 0 — every pre-resume client — opts out of fencing entirely.
func (srv *Server) fenceEpoch(clientID string, epoch uint64, s *session) (resumed bool, zombie *session, ok bool) {
	if clientID == "" || epoch == 0 {
		return false, nil, true
	}
	srv.epochMu.Lock()
	defer srv.epochMu.Unlock()
	ce := srv.epochs[clientID]
	switch {
	case ce == nil:
		srv.epochs[clientID] = &clientEpoch{epoch: epoch, sess: s}
		// A durable restart empties the epoch table, but recovery knows
		// which clients it rebuilt exactly-once state for.
		return srv.wasRecovered(clientID), nil, true
	case epoch < ce.epoch:
		return false, nil, false
	default:
		zombie = ce.sess
		ce.epoch, ce.sess = epoch, s
		return true, zombie, true
	}
}

// ---- metrics ----

// metrics holds the pre-resolved (possibly nil) obs instruments.
type metrics struct {
	reg                *obs.Registry
	connections        *obs.Gauge
	connectionsTotal   *obs.Counter
	subscriptions      *obs.Gauge
	inflight           *obs.Gauge
	framesIn           *obs.Counter
	framesOut          *obs.Counter
	errors             *obs.Counter
	slowConsumers      *obs.Counter
	protocolViolations *obs.Counter
	notifies           *obs.Counter
	notifyCoalesced    *obs.Counter
	convHits           *obs.Counter
	convMisses         *obs.Counter
	dedupHits          *obs.Counter
	shedRequests       *obs.Counter
	checkpoints        *obs.Counter
	recoveryMs         *obs.Gauge
	applyNs            *obs.Histogram

	opMu sync.Mutex
	opNs map[wire.Opcode]*obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg:                reg,
		connections:        reg.Gauge("server.connections"),
		connectionsTotal:   reg.Counter("server.connections_total"),
		subscriptions:      reg.Gauge("server.subscriptions"),
		inflight:           reg.Gauge("server.inflight_requests"),
		framesIn:           reg.Counter("server.frames_in"),
		framesOut:          reg.Counter("server.frames_out"),
		errors:             reg.Counter("server.request_errors"),
		slowConsumers:      reg.Counter("server.slow_consumer_disconnects"),
		protocolViolations: reg.Counter("server.protocol_violations"),
		notifies:           reg.Counter("server.notifies"),
		notifyCoalesced:    reg.Counter("server.notifies_coalesced"),
		convHits:           reg.Counter("server.conv_hits"),
		convMisses:         reg.Counter("server.conv_misses"),
		dedupHits:          reg.Counter("server.dedup_hits"),
		shedRequests:       reg.Counter("server.shed_requests"),
		checkpoints:        reg.Counter("server.checkpoints"),
		recoveryMs:         reg.Gauge("server.recovery_ms"),
		applyNs:            reg.Histogram("server.apply_ns"),
		opNs:               map[wire.Opcode]*obs.Histogram{},
	}
}

// opHist returns the latency histogram for one request opcode.
func (m *metrics) opHist(op wire.Opcode) *obs.Histogram {
	if m.reg == nil {
		return nil
	}
	m.opMu.Lock()
	defer m.opMu.Unlock()
	h, ok := m.opNs[op]
	if !ok {
		h = m.reg.Histogram(fmt.Sprintf("server.op_ns.%s", op))
		m.opNs[op] = h
	}
	return h
}
