package query

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/obs"
	"github.com/mostdb/most/internal/temporal"
)

// planCount reports how many shared plans the engine currently maintains.
func planCount(e *Engine) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.plans)
}

// TestSharedPlanRegistration pins the sharing contract: registrations that
// canonicalize to the same plan key attach to one maintained plan, an
// update pays one patch per plan (not per subscriber), and the plan lives
// exactly as long as its last handle.
func TestSharedPlanRegistration(t *testing.T) {
	db, cls := testDB(t)
	reg := obs.New()
	e := NewEngine(db)
	e.Instrument(reg)
	addCar(t, db, cls, "a", geom.Point{X: 15}, geom.Vector{})

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 10 INSIDE(o, P)`)
	opts := Options{Horizon: 100, Regions: regionP()}

	handles := make([]*Continuous, 5)
	for i := range handles {
		h, err := e.Continuous(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	if got := planCount(e); got != 1 {
		t.Fatalf("5 identical registrations built %d plans, want 1", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["query.continuous.shared_plans"]; got != 1 {
		t.Errorf("shared_plans = %d, want 1", got)
	}
	if got := snap.Counters["query.continuous.shared_hits"]; got != 4 {
		t.Errorf("shared_hits = %d, want 4", got)
	}
	// Every handle presents the same installed relation object.
	r0, err := handles[0].Answer()
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range handles[1:] {
		r, err := h.Answer()
		if err != nil {
			t.Fatal(err)
		}
		if r != r0 {
			t.Errorf("handle %d has a different relation object", i+1)
		}
	}

	// A lifted constant distinguishes plans: WITHIN 20 is a different key.
	q2 := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 20 INSIDE(o, P)`)
	h2, err := e.Continuous(q2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := planCount(e); got != 2 {
		t.Fatalf("distinct windows share a plan: %d plans, want 2", got)
	}
	h2.Cancel()
	if got := planCount(e); got != 1 {
		t.Fatalf("cancelling the only handle left %d plans, want 1", got)
	}

	// One update to the shared plan's class costs one pinned evaluation —
	// not one per subscriber.
	base := e.Evaluations()
	if err := db.SetMotion("a", geom.Vector{X: 1}); err != nil {
		t.Fatal(err)
	}
	if got := e.Evaluations(); got != base+1 {
		t.Errorf("evaluations after one update = %d, want %d (one pinned patch for the shared plan)", got, base+1)
	}

	// The plan survives until the last handle cancels.
	for _, h := range handles[:4] {
		h.Cancel()
	}
	if got := planCount(e); got != 1 {
		t.Fatalf("plan dropped with a live handle: %d plans", got)
	}
	if _, err := handles[4].Answer(); err != nil {
		t.Fatalf("surviving handle errored: %v", err)
	}
	handles[4].Cancel()
	if got := planCount(e); got != 0 {
		t.Fatalf("plan leaked after last cancel: %d plans", got)
	}
	if got := reg.Snapshot().Counters["query.continuous.shared_plans"]; got != 0 {
		t.Errorf("shared_plans gauge = %d after all cancels, want 0", got)
	}
}

// TestROISkipsIrrelevantUpdates pins the spatial relevance filter: an
// update whose motion envelope provably misses every guard region of a
// plan is skipped without any evaluation — and the gate opens again once
// the update falls outside the installed answer's validity window.
func TestROISkipsIrrelevantUpdates(t *testing.T) {
	db, cls := testDB(t)
	reg := obs.New()
	e := NewEngine(db)
	e.Instrument(reg)
	regions := regionP() // P spans x [10,20], y [-10,10]
	addCar(t, db, cls, "far", geom.Point{X: 500}, geom.Vector{X: 1})
	addCar(t, db, cls, "near", geom.Point{X: 0}, geom.Vector{})

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 10 INSIDE(o, P)`)
	horizon := temporal.Tick(100)
	cq, err := e.Continuous(q, Options{Horizon: horizon, Regions: regions})
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Cancel()
	var fanouts atomic.Int64
	if err := cq.Subscribe(func(*eval.Relation) { fanouts.Add(1) }); err != nil {
		t.Fatal(err)
	}

	// "far" keeps moving away: both envelopes miss P, the plan is skipped,
	// and no evaluation or fan-out happens.
	base := e.Evaluations()
	if err := db.SetMotion("far", geom.Vector{X: 2}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["query.continuous.skipped_irrelevant"]; got != 1 {
		t.Errorf("skipped_irrelevant = %d, want 1", got)
	}
	if got := e.Evaluations(); got != base {
		t.Errorf("irrelevant update evaluated: %d evals, want %d", got, base)
	}
	if got := fanouts.Load(); got != 0 {
		t.Errorf("irrelevant update fanned out %d times", got)
	}
	checkAgainstNaive(t, db, cq, q, regions, horizon, "after skipped update")

	// "near" heading into P is relevant: dispatched as a delta patch.
	if err := db.SetMotion("near", geom.Vector{X: 5}); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counters["query.continuous.delta"]; got != 1 {
		t.Errorf("delta = %d after relevant update, want 1", got)
	}
	checkAgainstNaive(t, db, cq, q, regions, horizon, "after relevant update")

	// Past the answer's validity window (horizon 100 − depth 10 = 90 ticks
	// after the anchor) even a spatially irrelevant update must be
	// dispatched so the plan re-anchors.
	db.Advance(95)
	fullBefore := reg.Snapshot().Counters["query.continuous.full"]
	if err := db.SetMotion("far", geom.Vector{X: 3}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["query.continuous.full"]; got != fullBefore+1 {
		t.Errorf("full = %d after post-validity update, want %d (re-anchor forced)", got, fullBefore+1)
	}
	checkAgainstNaive(t, db, cq, q, regions, horizon, "after re-anchor")
}

// TestNoChangeSuppression pins satellite fan-out discipline: a maintenance
// round whose recomputed answer is identical to the installed one must not
// invoke listeners, while a genuine change must.
func TestNoChangeSuppression(t *testing.T) {
	db, cls := testDB(t)
	reg := obs.New()
	e := NewEngine(db)
	e.Instrument(reg)
	regions := regionP()
	addCar(t, db, cls, "s", geom.Point{X: 15}, geom.Vector{}) // parked inside P

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 10 INSIDE(o, P)`)
	cq, err := e.Continuous(q, Options{Horizon: 100, Regions: regions})
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Cancel()
	var fanouts atomic.Int64
	if err := cq.Subscribe(func(*eval.Relation) { fanouts.Add(1) }); err != nil {
		t.Fatal(err)
	}

	// Re-issuing the same (zero) motion is a committed update but a no-op
	// for the answer: the patch reproduces the installed relation exactly.
	if err := db.SetMotion("s", geom.Vector{}); err != nil {
		t.Fatal(err)
	}
	if got := fanouts.Load(); got != 0 {
		t.Errorf("no-op update invoked listeners %d times, want 0", got)
	}
	if got := reg.Snapshot().Counters["query.continuous.suppressed"]; got < 1 {
		t.Errorf("suppressed = %d, want >= 1", got)
	}

	// A real trajectory change (the car now exits P) shrinks the
	// satisfaction interval and must fan out.
	if err := db.SetMotion("s", geom.Vector{X: 10}); err != nil {
		t.Fatal(err)
	}
	if got := fanouts.Load(); got != 1 {
		t.Errorf("changing update invoked listeners %d times, want 1", got)
	}
}

// TestFallbackClassifiedWhileFullPending pins the fallback counter's
// classification contract: an undecomposable update is counted even when
// it arrives while a full reevaluation is already scheduled (such updates
// used to be swallowed unclassified by the scheduling switch).
func TestFallbackClassifiedWhileFullPending(t *testing.T) {
	db, cls := testDB(t)
	reg := obs.New()
	e := NewEngine(db)
	e.Instrument(reg)
	regions := regionP()
	addCar(t, db, cls, "a", geom.Point{X: 15}, geom.Vector{})

	// Unbounded EVENTUALLY: never deltable, every update is a fallback.
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY INSIDE(o, P)`)
	cq, err := e.Continuous(q, Options{Horizon: 50, Regions: regions})
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Cancel()

	// Hold the drain loop: updates deposit work but nothing runs, so the
	// second update below arrives with needFull already set.
	p := cq.sp
	p.mu.Lock()
	p.evaluating = true
	p.mu.Unlock()

	if err := db.SetMotion("a", geom.Vector{X: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.SetMotion("a", geom.Vector{X: 2}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["query.continuous.fallback"]; got != 2 {
		t.Errorf("fallback = %d with full pending, want 2 (both updates classified)", got)
	}

	// Release the drain and converge with a third update.
	p.mu.Lock()
	p.evaluating = false
	p.mu.Unlock()
	if err := db.SetMotion("a", geom.Vector{X: 3}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["query.continuous.fallback"]; got != 3 {
		t.Errorf("fallback = %d after drain, want 3", got)
	}
	checkAgainstNaive(t, db, cq, q, regions, 50, "after coalesced fallbacks")
}

// TestSubscribeCancelRace races Subscribe against Cancel and the shared
// plan's drain: a listener added on a live handle must observe a
// subsequent install — never be silently dropped — while sibling handles
// on the same plan register and cancel concurrently (including the
// last-handle plan teardown).  Run under -race by make check.
func TestSubscribeCancelRace(t *testing.T) {
	db, cls := testDB(t)
	e := NewEngine(db)
	regions := regionP()
	addCar(t, db, cls, "v", geom.Point{X: 15}, geom.Vector{})

	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 5 INSIDE(o, P)`)
	opts := Options{Horizon: 100, Regions: regions}

	// The updater toggles the car between parked-inside-P and
	// sprinting-out-of-P: every committed update changes the answer, so
	// every live listener is guaranteed a fan-out to observe.
	stop := make(chan struct{})
	var updWG sync.WaitGroup
	updWG.Add(1)
	go func() {
		defer updWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := geom.Vector{}
			if i%2 == 1 {
				v = geom.Vector{X: 50}
			}
			if err := db.SetMotion("v", v); err != nil {
				t.Errorf("toggle: %v", err)
				return
			}
		}
	}()

	const workers, iters = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h, err := e.Continuous(q, opts)
				if err != nil {
					t.Errorf("register: %v", err)
					return
				}
				got := make(chan struct{}, 1)
				if err := h.Subscribe(func(*eval.Relation) {
					select {
					case got <- struct{}{}:
					default:
					}
				}); err != nil {
					// The handle is live (not cancelled by us), so
					// Subscribe must not report errUnregistered.
					t.Errorf("subscribe on live handle: %v", err)
					h.Cancel()
					return
				}
				select {
				case <-got:
				case <-time.After(10 * time.Second):
					t.Errorf("worker listener never invoked (iteration %d)", i)
				}
				h.Cancel()
			}
		}()
	}
	wg.Wait()
	close(stop)
	updWG.Wait()
}

// TestOnUpdateIrrelevantNoAllocs pins the zero-alloc dispatch path: an
// update to a class no registered plan ranges over costs a snapshot load
// and a scan — no locks taken, nothing heap-allocated.
func TestOnUpdateIrrelevantNoAllocs(t *testing.T) {
	db, cls := testDB(t)
	e := NewEngine(db)
	addCar(t, db, cls, "a", geom.Point{X: 15}, geom.Vector{})
	cq, err := e.Continuous(
		ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN 10 INSIDE(o, P)`),
		Options{Horizon: 100, Regions: regionP()})
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Cancel()

	u := pedestrianUpdate(t, db)
	if avg := testing.AllocsPerRun(200, func() { e.onUpdate(u) }); avg != 0 {
		t.Errorf("irrelevant-class dispatch allocates %.1f objects/op, want 0", avg)
	}
}

// pedestrianUpdate builds a synthetic committed update for a spatial class
// no test query ranges over.
func pedestrianUpdate(t *testing.T, db *most.Database) most.Update {
	t.Helper()
	ped := most.MustClass("Pedestrians", true)
	if err := db.DefineClass(ped); err != nil {
		t.Fatal(err)
	}
	o, err := most.NewObject("p1", ped)
	if err != nil {
		t.Fatal(err)
	}
	o, err = o.WithPosition(motion.MovingFrom(geom.Point{X: 1}, geom.Vector{X: 1}, db.Now()))
	if err != nil {
		t.Fatal(err)
	}
	return most.Update{Tick: db.Now(), Kind: most.UpdateDynamic, Object: "p1", Before: o, After: o}
}

// BenchmarkOnUpdateIrrelevant measures the dispatch cost of updates the
// registered plans do not care about: by class, and by the spatial
// relevance filter (the envelope computation is the price of the skip).
func BenchmarkOnUpdateIrrelevant(b *testing.B) {
	db := most.NewDatabase()
	cls := most.MustClass("Vehicles", true, most.AttrDef{Name: "PRICE", Kind: most.Static})
	if err := db.DefineClass(cls); err != nil {
		b.Fatal(err)
	}
	e := NewEngine(db)
	mkCar := func(id most.ObjectID, p geom.Point, v geom.Vector) *most.Object {
		o, err := most.NewObject(id, cls)
		if err != nil {
			b.Fatal(err)
		}
		if o, err = o.WithPosition(motion.MovingFrom(p, v, db.Now())); err != nil {
			b.Fatal(err)
		}
		return o
	}
	if err := db.Insert(mkCar("near", geom.Point{X: 15}, geom.Vector{})); err != nil {
		b.Fatal(err)
	}
	far := mkCar("far", geom.Point{X: 5000}, geom.Vector{X: 1})
	if err := db.Insert(far); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		cq, err := e.Continuous(
			ftl.MustParse(fmt.Sprintf(`RETRIEVE o FROM Vehicles o WHERE EVENTUALLY WITHIN %d INSIDE(o, P)`, i+3)),
			Options{Horizon: 100, Regions: regionP()})
		if err != nil {
			b.Fatal(err)
		}
		defer cq.Cancel()
	}

	ped := most.MustClass("Walkers", true)
	if err := db.DefineClass(ped); err != nil {
		b.Fatal(err)
	}
	walker, err := most.NewObject("w1", ped)
	if err != nil {
		b.Fatal(err)
	}
	if walker, err = walker.WithPosition(motion.MovingFrom(geom.Point{X: 1}, geom.Vector{X: 1}, db.Now())); err != nil {
		b.Fatal(err)
	}

	b.Run("wrong-class", func(b *testing.B) {
		u := most.Update{Tick: db.Now(), Kind: most.UpdateDynamic, Object: "w1", Before: walker, After: walker}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.onUpdate(u)
		}
	})
	b.Run("roi-skip", func(b *testing.B) {
		u := most.Update{Tick: db.Now(), Kind: most.UpdateDynamic, Object: "far", Before: far, After: far}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.onUpdate(u)
		}
	})
}
