package eval

import (
	"strings"
	"testing"

	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// fixture builds a small database of moving vehicles and a context with a
// 100-tick horizon and two regions P (x in [10,20]) and Q (x in [40,50]).
type fixture struct {
	db  *most.Database
	cls *most.Class
	ctx *Context
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := most.NewDatabase()
	cls := most.MustClass("Vehicles", true,
		most.AttrDef{Name: "PRICE", Kind: most.Static},
	)
	if err := db.DefineClass(cls); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{
		Now:     0,
		Horizon: 100,
		Objects: map[most.ObjectID]*most.Object{},
		Regions: map[string]geom.Polygon{
			"P": geom.RectPolygon(10, -100, 20, 100),
			"Q": geom.RectPolygon(40, -100, 50, 100),
		},
		Params:  map[string]Val{},
		Domains: map[string][]Val{},
	}
	return &fixture{db: db, cls: cls, ctx: ctx}
}

// addCar inserts a car with the given price, start and velocity, at tick 0.
func (f *fixture) addCar(t *testing.T, id most.ObjectID, price float64, p geom.Point, v geom.Vector) {
	t.Helper()
	o, err := most.NewObject(id, f.cls)
	if err != nil {
		t.Fatal(err)
	}
	o, err = o.WithStatic("PRICE", most.Float(price))
	if err != nil {
		t.Fatal(err)
	}
	o, err = o.WithPosition(motion.MovingFrom(p, v, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.db.Insert(o); err != nil {
		t.Fatal(err)
	}
	f.ctx.Objects[id] = o
	f.ctx.Domains["o"] = append(f.ctx.Domains["o"], ObjVal(id))
}

func (f *fixture) run(t *testing.T, src string) *Relation {
	t.Helper()
	q := ftl.MustParse(src)
	// Rebind all FROM variables to the full object set.
	for _, b := range q.Bindings {
		if _, ok := f.ctx.Domains[b.Var]; !ok {
			f.ctx.Domains[b.Var] = append([]Val{}, f.ctx.Domains["o"]...)
		}
	}
	rel, err := EvalQuery(q, f.ctx)
	if err != nil {
		t.Fatalf("EvalQuery(%s): %v", src, err)
	}
	return rel
}

// ids extracts object ids present at tick t.
func idsAt(rel *Relation, t temporal.Tick) string {
	var out []string
	for _, vals := range rel.At(t) {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "+"))
	}
	return strings.Join(out, ",")
}

func TestQueryIPriceAndEventuallyWithin(t *testing.T) {
	// §3.4 (I): objects entering P within 3 units with PRICE <= 100.
	f := newFixture(t)
	// fast enters P (x>=10) at t=2.5 -> first inside tick 3.
	f.addCar(t, "fast", 80, geom.Point{X: 0}, geom.Vector{X: 4})
	// slow enters P at t=10: not within 3.
	f.addCar(t, "slow", 80, geom.Point{X: 0}, geom.Vector{X: 1})
	// pricey is fast but too expensive.
	f.addCar(t, "pricey", 200, geom.Point{X: 0}, geom.Vector{X: 4})
	// parked inside P but price ok: satisfies immediately.
	f.addCar(t, "parked", 50, geom.Point{X: 15}, geom.Vector{})

	rel := f.run(t, `
		RETRIEVE o FROM Vehicles o
		WHERE o.PRICE <= 100 AND EVENTUALLY WITHIN 3 INSIDE(o, P)`)
	if got := idsAt(rel, 0); got != "fast,parked" {
		t.Errorf("answers at 0 = %q, want fast,parked", got)
	}
	// At tick 7, slow is 3 ticks from entering (enters at 10).
	if got := idsAt(rel, 7); !strings.Contains(got, "slow") {
		t.Errorf("answers at 7 = %q, want slow included", got)
	}
	// fast leaves P at t=5 (x=20); it satisfies until then.
	set, ok := rel.Lookup([]Val{ObjVal("fast")})
	if !ok {
		t.Fatal("fast missing")
	}
	if !set.Contains(5) || set.Contains(6) {
		t.Errorf("fast set = %s; want to end at 5", set)
	}
}

func TestQueryIIStayInside(t *testing.T) {
	// §3.4 (II): enter P within 3, then stay in P for 2 more units.
	f := newFixture(t)
	// quick crosses P (width 10) at speed 5: inside for exactly 2 ticks
	// after entry at some tick? x(t)=5t: inside x in [10,20] -> t in [2,4].
	f.addCar(t, "quick", 0, geom.Point{X: 0}, geom.Vector{X: 5})
	// lingering at speed 2: inside t in [5,10]; stays 2 after entry.
	f.addCar(t, "lingering", 0, geom.Point{X: 0}, geom.Vector{X: 2})

	rel := f.run(t, `
		RETRIEVE o FROM Vehicles o
		WHERE EVENTUALLY WITHIN 3 (INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P))`)
	// quick: inside [2,4]; ALWAYS FOR 2 INSIDE holds at t=2 only; so
	// EVENTUALLY WITHIN 3 of that holds for ticks in [-1,2] -> clipped [0,2].
	set, ok := rel.Lookup([]Val{ObjVal("quick")})
	if !ok || !set.Equal(temporal.NewSet(temporal.Interval{Start: 0, End: 2})) {
		t.Errorf("quick set = %s, want [0 2]", set)
	}
	// lingering: inside [5,10]; ALWAYS FOR 2 holds [5,8]; EVENTUALLY WITHIN
	// 3 -> [2,8].
	set, ok = rel.Lookup([]Val{ObjVal("lingering")})
	if !ok || !set.Equal(temporal.NewSet(temporal.Interval{Start: 2, End: 8})) {
		t.Errorf("lingering set = %s, want [2 8]", set)
	}
}

func TestQueryIIIEnterStayThenQ(t *testing.T) {
	// §3.4 (III): enter P within 3, stay 2, and after at least 5 enter Q.
	f := newFixture(t)
	// through: x(t)=2t -> P at [5,10], Q at [20,25].
	f.addCar(t, "through", 0, geom.Point{X: 0}, geom.Vector{X: 2})
	// stopper: enters P, stays, never reaches Q (stops at x=30 via piecewise).
	o, _ := most.NewObject("stopper", f.cls)
	o, _ = o.WithStatic("PRICE", most.Float(0))
	pos := motion.Position{
		X: motion.DynamicAttr{Value: 0, UpdateTime: 0, Function: motion.MustFunc(
			motion.Piece{Start: 0, Slope: 2}, motion.Piece{Start: 15, Slope: 0})},
		Y: motion.LinearFrom(0, 0, 0),
		Z: motion.LinearFrom(0, 0, 0),
	}
	o, _ = o.WithPosition(pos)
	if err := f.db.Insert(o); err != nil {
		t.Fatal(err)
	}
	f.ctx.Objects["stopper"] = o
	f.ctx.Domains["o"] = append(f.ctx.Domains["o"], ObjVal("stopper"))

	rel := f.run(t, `
		RETRIEVE o FROM Vehicles o
		WHERE EVENTUALLY WITHIN 3 (INSIDE(o, P)
			AND ALWAYS FOR 2 INSIDE(o, P)
			AND EVENTUALLY AFTER 5 INSIDE(o, Q))`)
	if _, ok := rel.Lookup([]Val{ObjVal("stopper")}); ok {
		t.Error("stopper should not qualify (never enters Q)")
	}
	set, ok := rel.Lookup([]Val{ObjVal("through")})
	if !ok {
		t.Fatal("through missing")
	}
	// through: inside P [5,10], ALWAYS FOR 2 -> [5,8]; EVENTUALLY AFTER 5
	// INSIDE Q holds for t <= 20 (Q until 25). Conjunction at [5,8];
	// EVENTUALLY WITHIN 3 -> [2,8].
	if !set.Equal(temporal.NewSet(temporal.Interval{Start: 2, End: 8})) {
		t.Errorf("through set = %s, want [2 8]", set)
	}
}

func TestPaperUntilQuery(t *testing.T) {
	// §3.2: retrieve pairs o,n with DIST(o,n) <= 5 until both are in P.
	f := newFixture(t)
	// a and b travel together 4 apart, both entering P.
	f.addCar(t, "a", 0, geom.Point{X: 0}, geom.Vector{X: 2})
	f.addCar(t, "b", 0, geom.Point{X: 4}, geom.Vector{X: 2})
	// c is far from everyone.
	f.addCar(t, "c", 0, geom.Point{X: 0, Y: 500}, geom.Vector{X: 2})

	q := ftl.MustParse(`
		RETRIEVE o, n FROM Vehicles o, Vehicles n
		WHERE DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))`)
	f.ctx.Domains["n"] = append([]Val{}, f.ctx.Domains["o"]...)
	rel, err := EvalQuery(q, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	// At t=0: a,b pairs qualify (dist 4 <= 5 until both inside at t=5..),
	// and each of a,a b,b c,c trivially (dist 0, both enter P eventually
	// for a,a and b,b; c,c: c never enters P because y=500 is outside).
	got := idsAt(rel, 0)
	for _, want := range []string{"a+b", "b+a", "a+a", "b+b"} {
		if !strings.Contains(got, want) {
			t.Errorf("answers at 0 = %q, missing %s", got, want)
		}
	}
	if strings.Contains(got, "c") {
		t.Errorf("answers at 0 = %q; c should not appear", got)
	}
}

func TestAssignmentNexttimeChange(t *testing.T) {
	// [x <- o.X.POSITION] NEXTTIME o.X.POSITION != x — satisfied when the
	// value differs in two consecutive states (§3.3's example).
	f := newFixture(t)
	f.ctx.Horizon = 10
	f.addCar(t, "mover", 0, geom.Point{X: 0}, geom.Vector{X: 1})
	f.addCar(t, "parked", 0, geom.Point{X: 5}, geom.Vector{})

	rel := f.run(t, `
		RETRIEVE o FROM Vehicles o
		WHERE [x <- o.X.POSITION] NEXTTIME o.X.POSITION != x`)
	set, ok := rel.Lookup([]Val{ObjVal("mover")})
	if !ok {
		t.Fatal("mover missing")
	}
	// Satisfied at every tick with a successor in the window: [0,9].
	if !set.Equal(temporal.NewSet(temporal.Interval{Start: 0, End: 9})) {
		t.Errorf("mover set = %s, want [0 9]", set)
	}
	if _, ok := rel.Lookup([]Val{ObjVal("parked")}); ok {
		t.Error("parked should not qualify")
	}
}

func TestAssignmentSpeedDoubling(t *testing.T) {
	// §2.3's query R flavor: speed in X doubles within 10 units.  With the
	// implicit future history the speed only changes at planned breakpoints.
	f := newFixture(t)
	f.ctx.Horizon = 30
	// accel: speed 5 now, planned 10 at t=6 (within 10).
	o, _ := most.NewObject("accel", f.cls)
	o, _ = o.WithStatic("PRICE", most.Float(0))
	o, _ = o.WithPosition(motion.Position{
		X: motion.DynamicAttr{Value: 0, UpdateTime: 0, Function: motion.MustFunc(
			motion.Piece{Start: 0, Slope: 5}, motion.Piece{Start: 6, Slope: 10})},
		Y: motion.LinearFrom(0, 0, 0),
		Z: motion.LinearFrom(0, 0, 0),
	})
	if err := f.db.Insert(o); err != nil {
		t.Fatal(err)
	}
	f.ctx.Objects["accel"] = o
	f.ctx.Domains["o"] = append(f.ctx.Domains["o"], ObjVal("accel"))
	// steady: constant speed 5 forever.
	f.addCar(t, "steady", 0, geom.Point{X: 0}, geom.Vector{X: 5})

	rel := f.run(t, `
		RETRIEVE o FROM Vehicles o
		WHERE [x <- SPEED(o.X.POSITION)]
			EVENTUALLY WITHIN 10 SPEED(o.X.POSITION) >= 2 * x`)
	set, ok := rel.Lookup([]Val{ObjVal("accel")})
	if !ok {
		t.Fatal("accel missing")
	}
	// Speed doubles at t=6: holds for binding ticks t with 6 in [t, t+10]
	// and speed(t)=5, i.e. t in [0,5]; from t=6 on, x binds to 10 and the
	// speed never reaches 20.
	if !set.Equal(temporal.NewSet(temporal.Interval{Start: 0, End: 5})) {
		t.Errorf("accel set = %s, want [0 5]", set)
	}
	if _, ok := rel.Lookup([]Val{ObjVal("steady")}); ok {
		t.Error("steady should not qualify")
	}
}

func TestNegationAndOr(t *testing.T) {
	f := newFixture(t)
	f.ctx.Horizon = 20
	f.addCar(t, "in", 0, geom.Point{X: 15}, geom.Vector{})
	f.addCar(t, "out", 0, geom.Point{X: 100}, geom.Vector{})

	rel := f.run(t, `RETRIEVE o FROM Vehicles o WHERE NOT INSIDE(o, P)`)
	if got := idsAt(rel, 0); got != "out" {
		t.Errorf("NOT INSIDE at 0 = %q", got)
	}
	rel = f.run(t, `RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P) OR INSIDE(o, Q)`)
	if got := idsAt(rel, 0); got != "in" {
		t.Errorf("OR at 0 = %q", got)
	}
	rel = f.run(t, `RETRIEVE o FROM Vehicles o WHERE INSIDE(o, P) IMPLIES o.PRICE <= 100`)
	// in has PRICE 0 (<=100): implication true; out: antecedent false: true.
	if got := idsAt(rel, 0); got != "in,out" {
		t.Errorf("IMPLIES at 0 = %q", got)
	}
}

func TestWithinSphereQuery(t *testing.T) {
	f := newFixture(t)
	f.ctx.Horizon = 40
	f.addCar(t, "l", 0, geom.Point{X: -30}, geom.Vector{X: 1})
	f.addCar(t, "r", 0, geom.Point{X: 30}, geom.Vector{X: -1})

	q := ftl.MustParse(`
		RETRIEVE o, n FROM Vehicles o, Vehicles n
		WHERE WITHIN_SPHERE(4, o, n) AND o.PRICE <= n.PRICE`)
	f.ctx.Domains["n"] = append([]Val{}, f.ctx.Domains["o"]...)
	rel, err := EvalQuery(q, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	// l and r are within a radius-4 sphere when 60-2t <= 8: t in [26,34].
	set, ok := rel.Lookup([]Val{ObjVal("l"), ObjVal("r")})
	if !ok {
		t.Fatal("pair missing")
	}
	if !set.Equal(temporal.NewSet(temporal.Interval{Start: 26, End: 34})) {
		t.Errorf("pair set = %s, want [26 34]", set)
	}
}

func TestTimeObjectQuery(t *testing.T) {
	f := newFixture(t)
	f.ctx.Now = 50
	f.ctx.Horizon = 20
	f.addCar(t, "v", 0, geom.Point{}, geom.Vector{})
	rel := f.run(t, `RETRIEVE o FROM Vehicles o WHERE time >= 60`)
	set, ok := rel.Lookup([]Val{ObjVal("v")})
	if !ok || !set.Equal(temporal.NewSet(temporal.Interval{Start: 60, End: 70})) {
		t.Errorf("time>=60 = %s, want [60 70]", set)
	}
}

func TestUnboundVariableErrors(t *testing.T) {
	f := newFixture(t)
	f.addCar(t, "v", 0, geom.Point{}, geom.Vector{})
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE o.PRICE <= z`)
	if _, err := EvalQuery(q, f.ctx); err == nil {
		t.Error("unbound z should fail")
	}
	q = ftl.MustParse(`RETRIEVE w WHERE TRUE`)
	if _, err := EvalQuery(q, f.ctx); err == nil {
		t.Error("unbound target should fail")
	}
	q = ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE INSIDE(o, NOWHERE)`)
	if _, err := EvalQuery(q, f.ctx); err == nil {
		t.Error("unknown region should fail")
	}
}

func TestParamsAsConstants(t *testing.T) {
	f := newFixture(t)
	f.ctx.Horizon = 10
	f.ctx.Params["limit"] = NumVal(100)
	f.addCar(t, "cheap", 50, geom.Point{}, geom.Vector{})
	f.addCar(t, "costly", 150, geom.Point{}, geom.Vector{})
	rel := f.run(t, `RETRIEVE o FROM Vehicles o WHERE o.PRICE <= limit`)
	if got := idsAt(rel, 0); got != "cheap" {
		t.Errorf("param query = %q", got)
	}
}

func TestAssignmentDynamicTermDiscretization(t *testing.T) {
	// Binding a continuously-varying term requires discretization; the
	// state cap must be enforced.
	f := newFixture(t)
	f.ctx.Horizon = 5000
	f.ctx.MaxAssignStates = 100
	f.addCar(t, "m", 0, geom.Point{}, geom.Vector{X: 1})
	q := ftl.MustParse(`RETRIEVE o FROM Vehicles o WHERE [x <- o.X.POSITION] x >= 0`)
	if _, err := EvalQuery(q, f.ctx); err == nil {
		t.Error("discretization over the cap should fail")
	}
	f.ctx.Horizon = 50
	if _, err := EvalQuery(q, f.ctx); err != nil {
		t.Errorf("within the cap should work: %v", err)
	}
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation("a", "b")
	r.Add([]Val{NumVal(1), NumVal(2)}, temporal.NewSet(temporal.Interval{Start: 0, End: 5}))
	r.Add([]Val{NumVal(1), NumVal(2)}, temporal.NewSet(temporal.Interval{Start: 6, End: 9}))
	r.Add([]Val{NumVal(1), NumVal(3)}, temporal.NewSet(temporal.Interval{Start: 0, End: 1}))
	r.Add([]Val{NumVal(9), NumVal(9)}, temporal.Set{}) // empty set: dropped

	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Tuples with equal values coalesced (and consecutive intervals merged).
	set, ok := r.Lookup([]Val{NumVal(1), NumVal(2)})
	if !ok || !set.Equal(temporal.NewSet(temporal.Interval{Start: 0, End: 9})) {
		t.Errorf("coalesced set = %s", set)
	}
	p, err := r.Project([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("projected Len = %d", p.Len())
	}
	if _, err := r.Project([]string{"zzz"}); err == nil {
		t.Error("bad projection should fail")
	}
	// Answers flatten per interval.
	ans := r.Answers()
	if len(ans) != 2 {
		t.Fatalf("answers = %+v", ans)
	}
}

func TestRelationJoin(t *testing.T) {
	a := NewRelation("x")
	a.Add([]Val{NumVal(1)}, temporal.NewSet(temporal.Interval{Start: 0, End: 10}))
	a.Add([]Val{NumVal(2)}, temporal.NewSet(temporal.Interval{Start: 0, End: 10}))
	b := NewRelation("x", "y")
	b.Add([]Val{NumVal(1), StrVal("p")}, temporal.NewSet(temporal.Interval{Start: 5, End: 20}))
	b.Add([]Val{NumVal(3), StrVal("q")}, temporal.NewSet(temporal.Interval{Start: 0, End: 2}))

	j := Join(a, b)
	if j.Len() != 1 {
		t.Fatalf("join Len = %d", j.Len())
	}
	set, ok := j.Lookup([]Val{NumVal(1), StrVal("p")})
	if !ok || !set.Equal(temporal.NewSet(temporal.Interval{Start: 5, End: 10})) {
		t.Errorf("join set = %s", set)
	}
	// Disjoint columns: cartesian product with intersected windows.
	c := NewRelation("z")
	c.Add([]Val{BoolVal(true)}, temporal.NewSet(temporal.Interval{Start: 8, End: 30}))
	j2 := Join(a, c)
	if j2.Len() != 2 {
		t.Fatalf("product Len = %d", j2.Len())
	}
}
