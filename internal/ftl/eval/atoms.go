package eval

import (
	"github.com/mostdb/most/internal/ftl"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// This file computes the relations of atomic predicates: "for each possible
// relevant instantiation of values to the free variables in g, [a routine]
// gives us the intervals during which the relation R is satisfied.
// Clearly, this algorithm has to use the initial positions and functions
// according to which the dynamic variables change" (appendix).

// atomCols returns the free variables of the atom that act as relation
// columns: those with enumerable domains.  Free variables resolved through
// Params or Regions are constants; anything else is unbound.
func (c *Context) atomCols(f ftl.Formula) ([]string, error) {
	var cols []string
	for _, v := range ftl.FreeVars(f) {
		if _, ok := c.Domains[v]; ok {
			cols = append(cols, v)
			continue
		}
		if _, ok := c.Params[v]; ok {
			continue
		}
		if _, ok := c.Regions[v]; ok {
			continue
		}
		return nil, errf("unbound variable %q (no FROM binding, parameter, or region)", v)
	}
	return cols, nil
}

// forEachInstantiation enumerates the domain product of cols.
func (c *Context) forEachInstantiation(cols []string, fn func(env, []Val) error) error {
	vals := make([]Val, len(cols))
	en := env{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(cols) {
			return fn(en, vals)
		}
		for _, v := range c.Domains[cols[i]] {
			vals[i] = v
			en[cols[i]] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(en, cols[i])
		return nil
	}
	return rec(0)
}

// evalAtom computes the relation of an atomic formula by solving it per
// instantiation — in parallel when the context's Parallelism asks for it;
// the merge into the relation is always sequential and in instantiation
// order, so the result does not depend on the worker count.
func (c *Context) evalAtom(f ftl.Formula, solve func(env) (temporal.Set, error)) (*Relation, error) {
	cols, err := c.atomCols(f)
	if err != nil {
		return nil, err
	}
	rel := NewRelation(cols...)
	err = solveInstantiations(c,
		cols,
		func(en env, _ []Val) (temporal.Set, error) { return solve(en) },
		func(vals []Val, set temporal.Set) error {
			rel.Add(vals, set)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return rel, nil
}

// ---- comparisons ----

func (c *Context) evalCompare(n ftl.Compare) (*Relation, error) {
	return c.evalAtom(n, func(en env) (temporal.Set, error) {
		l, err := c.evalTerm(n.L, en)
		if err != nil {
			return temporal.Set{}, err
		}
		r, err := c.evalTerm(n.R, en)
		if err != nil {
			return temporal.Set{}, err
		}
		return c.compareSets(n.Op, l, r)
	})
}

// compareSets returns the ticks at which "l op r" holds.
func (c *Context) compareSets(op string, l, r termVal) (temporal.Set, error) {
	w := c.Window()
	// Non-numeric constants compare directly.
	if l.isConst && r.isConst && (l.c.Kind != ValNum || r.c.Kind != ValNum) {
		ok, err := constCompare(op, l.c, r.c)
		if err != nil {
			return temporal.Set{}, err
		}
		if ok {
			return temporal.NewSet(w), nil
		}
		return temporal.Set{}, nil
	}
	if !l.numeric() || !r.numeric() {
		return temporal.Set{}, errf("comparison %q needs numeric or constant operands", op)
	}
	// DIST(o1,o2) against a constant: exact quadratic solve.
	if l.dist != nil && r.isConst {
		return c.distCompare(op, l.dist, r.c.Num)
	}
	if r.dist != nil && l.isConst {
		return c.distCompare(flipOp(op), r.dist, l.c.Num)
	}
	// Exact piecewise-linear difference.
	if l.segs != nil && r.segs != nil {
		diff := mergeSegs(l.segs, r.segs, -1)
		return plCompare(diff, op, w)
	}
	// Generic: bisection on h(t) = l(t) - r(t).
	lf, rf := l.fn, r.fn
	h := func(t float64) float64 { return lf(t) - rf(t) }
	return c.genericCompare(op, h)
}

func constCompare(op string, a, b Val) (bool, error) {
	cmp := a.Compare(b)
	switch op {
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	case "=":
		return cmp == 0, nil
	case "!=":
		return cmp != 0, nil
	default:
		return false, errf("unknown comparison operator %q", op)
	}
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// plCompare solves "diff(t) op 0" for a piecewise-linear diff, with exact
// strictness at ticks.
func plCompare(diff []motion.Segment, op string, w temporal.Interval) (temporal.Set, error) {
	closedLE := func() geom.RealSet {
		var out []geom.RealInterval
		for _, s := range diff {
			out = append(out, solveSegLE(s)...)
		}
		return geom.NewRealSet(out...)
	}
	closedGE := func() geom.RealSet {
		var out []geom.RealInterval
		for _, s := range diff {
			neg := motion.Segment{T0: s.T0, T1: s.T1, V0: -s.V0, Slope: -s.Slope, Accel: -s.Accel}
			out = append(out, solveSegLE(neg)...)
		}
		return geom.NewRealSet(out...)
	}
	eqTicks := func() temporal.Set {
		return closedLE().Intersect(closedGE()).Ticks(w)
	}
	switch op {
	case "<=":
		return closedLE().Ticks(w), nil
	case ">=":
		return closedGE().Ticks(w), nil
	case "<":
		return closedLE().Ticks(w).Subtract(eqTicks()), nil
	case ">":
		return closedGE().Ticks(w).Subtract(eqTicks()), nil
	case "=":
		return eqTicks(), nil
	case "!=":
		return eqTicks().ComplementWithin(w), nil
	default:
		return temporal.Set{}, errf("unknown comparison operator %q", op)
	}
}

// solveSegLE returns {t in [T0,T1] : seg(t) <= 0}, exactly for linear and
// quadratic segments.
func solveSegLE(s motion.Segment) []geom.RealInterval {
	set := geom.QuadraticLE(s.Accel/2, s.Slope, s.V0, 0, s.T1-s.T0)
	ivs := set.Intervals()
	out := make([]geom.RealInterval, 0, len(ivs))
	for _, iv := range ivs {
		out = append(out, geom.RealInterval{Lo: iv.Lo + s.T0, Hi: iv.Hi + s.T0})
	}
	return out
}

// distCompare solves DIST(a,b) op c exactly per linear span of the two
// positions.
func (c *Context) distCompare(op string, d *distTerm, radius float64) (temporal.Set, error) {
	w := c.Window()
	lo, hi := float64(w.Start), float64(w.End)
	within := geom.RealSet{} // DIST <= radius
	eq := geom.RealSet{}     // DIST == radius (boundary instants)
	forSpans(d.a, d.b, lo, hi, func(ma, mb geom.MovingPoint, s0, s1 float64) {
		in := geom.DistWithinTimes(ma, mb, radius, s0, s1)
		within = within.Union(in)
		// Equality instants: boundary of the within set inside the span.
		for _, iv := range in.Intervals() {
			if iv.Lo > s0 {
				eq = eq.Union(geom.NewRealSet(geom.RealInterval{Lo: iv.Lo, Hi: iv.Lo}))
			}
			if iv.Hi < s1 {
				eq = eq.Union(geom.NewRealSet(geom.RealInterval{Lo: iv.Hi, Hi: iv.Hi}))
			}
			// A span where the distance is constantly equal to radius.
			if geom.Dist(ma.At((s0+s1)/2), mb.At((s0+s1)/2)) == radius && iv.Lo <= s0 && iv.Hi >= s1 {
				eq = eq.Union(geom.NewRealSet(iv))
			}
		}
	})
	eqT := eq.Ticks(w)
	switch op {
	case "<=":
		return within.Ticks(w), nil
	case "<":
		return within.Ticks(w).Subtract(eqT), nil
	case ">=":
		return within.ComplementWithin(lo, hi).Ticks(w).Union(eqT), nil
	case ">":
		return within.ComplementWithin(lo, hi).Ticks(w).Subtract(eqT), nil
	case "=":
		return eqT, nil
	case "!=":
		return eqT.ComplementWithin(w), nil
	default:
		return temporal.Set{}, errf("unknown comparison operator %q", op)
	}
}

// forSpans splits [lo,hi] at the breakpoints of both positions and invokes
// fn with the exact linear motion of each object on every span.
func forSpans(a, b motion.Position, lo, hi float64, fn func(ma, mb geom.MovingPoint, s0, s1 float64)) {
	sa := a.MovingPointsOver(lo, hi)
	sb := b.MovingPointsOver(lo, hi)
	cuts := []float64{lo, hi}
	for _, s := range sa {
		if s.From > lo && s.From < hi {
			cuts = append(cuts, s.From)
		}
	}
	for _, s := range sb {
		if s.From > lo && s.From < hi {
			cuts = append(cuts, s.From)
		}
	}
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	at := func(spans []motion.Span, t float64) geom.MovingPoint {
		for i := len(spans) - 1; i >= 0; i-- {
			if t >= spans[i].From || i == 0 {
				return spans[i].MP
			}
		}
		return geom.MovingPoint{}
	}
	for i := 0; i+1 < len(cuts); i++ {
		s0, s1 := cuts[i], cuts[i+1]
		if s1-s0 < 1e-12 && i+2 < len(cuts) {
			continue
		}
		mid := (s0 + s1) / 2
		fn(at(sa, mid), at(sb, mid), s0, s1)
	}
}

// genericCompare solves "h(t) op 0" by sampling and bisection — the
// fallback for terms with no closed form (products of trajectories,
// MIN/MAX, DIST in arithmetic).
func (c *Context) genericCompare(op string, h func(float64) float64) (temporal.Set, error) {
	w := c.Window()
	lo, hi := float64(w.Start), float64(w.End)
	samples := c.bisectSamples()
	le := func() geom.RealSet { return geom.SolveLE(h, lo, hi, samples) }
	ge := func() geom.RealSet {
		return geom.SolveLE(func(t float64) float64 { return -h(t) }, lo, hi, samples)
	}
	eqTicks := func() temporal.Set { return le().Intersect(ge()).Ticks(w) }
	switch op {
	case "<=":
		return le().Ticks(w), nil
	case ">=":
		return ge().Ticks(w), nil
	case "<":
		return le().Ticks(w).Subtract(eqTicks()), nil
	case ">":
		return ge().Ticks(w).Subtract(eqTicks()), nil
	case "=":
		return eqTicks(), nil
	case "!=":
		return eqTicks().ComplementWithin(w), nil
	default:
		return temporal.Set{}, errf("unknown comparison operator %q", op)
	}
}

// ---- spatial predicates ----

// resolveRegion maps a region expression (a variable or string naming an
// entry of ctx.Regions) to its polygon.
func (c *Context) resolveRegion(e ftl.Expr) (geom.Polygon, error) {
	var name string
	switch n := e.(type) {
	case ftl.Var:
		name = n.Name
	case ftl.StrLit:
		name = n.S
	default:
		return geom.Polygon{}, errf("region must be a name, got %s", e)
	}
	pg, ok := c.Regions[name]
	if !ok {
		return geom.Polygon{}, errf("unknown region %q", name)
	}
	return pg, nil
}

// objPosition resolves an object-variable expression to its position.
func (c *Context) objPosition(e ftl.Expr, en env) (motion.Position, error) {
	v, ok := e.(ftl.Var)
	if !ok {
		return motion.Position{}, errf("expected an object variable, got %s", e)
	}
	val, ok := c.lookupVar(en, v.Name)
	if !ok {
		return motion.Position{}, errf("unbound variable %q", v.Name)
	}
	obj, err := c.object(val)
	if err != nil {
		return motion.Position{}, err
	}
	return obj.Position()
}

func (c *Context) insideSet(obj ftl.Expr, region ftl.Expr, en env) (temporal.Set, error) {
	pg, err := c.resolveRegion(region)
	if err != nil {
		return temporal.Set{}, err
	}
	pos, err := c.objPosition(obj, en)
	if err != nil {
		return temporal.Set{}, err
	}
	w := c.Window()
	real := geom.RealSet{}
	for _, span := range pos.MovingPointsOver(float64(w.Start), float64(w.End)) {
		real = real.Union(geom.InsideTimes(span.MP, pg, span.From, span.To))
	}
	return real.Ticks(w), nil
}

func (c *Context) evalInside(n ftl.Inside) (*Relation, error) {
	// With an index hook, probe once for the candidate objects and skip
	// every instantiation outside the candidate set (whose satisfaction
	// set is necessarily empty).
	var candidates map[most.ObjectID]bool
	if c.InsideCandidates != nil {
		if pg, err := c.resolveRegion(n.Region); err == nil {
			probe := c.Span.Child("index_probe")
			candidates = map[most.ObjectID]bool{}
			for _, id := range c.InsideCandidates(pg, c.Window()) {
				candidates[id] = true
			}
			probe.Annotate("candidates", int64(len(candidates)))
			probe.End()
		}
	}
	falseHits := c.Obs.Counter("index.false_hits")
	skipped := c.Obs.Counter("index.skipped_instantiations")
	return c.evalAtom(n, func(en env) (temporal.Set, error) {
		if candidates != nil {
			if v, ok := n.Obj.(ftl.Var); ok {
				if val, ok := c.lookupVar(en, v.Name); ok && val.Kind == ValObj && !candidates[val.Obj] {
					skipped.Inc()
					return temporal.Set{}, nil
				}
			}
		}
		set, err := c.insideSet(n.Obj, n.Region, en)
		// A candidate that turns out never to be inside is a false hit of
		// the index probe (the strip cover over-approximates trajectories).
		if err == nil && candidates != nil && set.IsEmpty() {
			falseHits.Inc()
		}
		return set, err
	})
}

func (c *Context) evalOutside(n ftl.Outside) (*Relation, error) {
	return c.evalAtom(n, func(en env) (temporal.Set, error) {
		in, err := c.insideSet(n.Obj, n.Region, en)
		if err != nil {
			return temporal.Set{}, err
		}
		return in.ComplementWithin(c.Window()), nil
	})
}

func (c *Context) evalWithinSphere(n ftl.WithinSphere) (*Relation, error) {
	return c.evalAtom(n, func(en env) (temporal.Set, error) {
		rad, err := c.evalTerm(n.Radius, en)
		if err != nil {
			return temporal.Set{}, err
		}
		if !rad.isConst || rad.c.Kind != ValNum {
			return temporal.Set{}, errf("WITHIN_SPHERE radius must be a constant number")
		}
		positions := make([]motion.Position, len(n.Objs))
		for i, o := range n.Objs {
			p, err := c.objPosition(o, en)
			if err != nil {
				return temporal.Set{}, err
			}
			positions[i] = p
		}
		w := c.Window()
		lo, hi := float64(w.Start), float64(w.End)
		// Split at every breakpoint of every position so each sub-span has
		// purely linear motion.
		cuts := []float64{lo, hi}
		spansOf := make([][]motion.Span, len(positions))
		for i, p := range positions {
			spansOf[i] = p.MovingPointsOver(lo, hi)
			for _, s := range spansOf[i] {
				if s.From > lo && s.From < hi {
					cuts = append(cuts, s.From)
				}
			}
		}
		for i := 1; i < len(cuts); i++ {
			for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
				cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
			}
		}
		mpAt := func(spans []motion.Span, t float64) geom.MovingPoint {
			for i := len(spans) - 1; i >= 0; i-- {
				if t >= spans[i].From || i == 0 {
					return spans[i].MP
				}
			}
			return geom.MovingPoint{}
		}
		real := geom.RealSet{}
		for i := 0; i+1 < len(cuts); i++ {
			s0, s1 := cuts[i], cuts[i+1]
			if s1-s0 < 1e-12 && i+2 < len(cuts) {
				continue
			}
			mid := (s0 + s1) / 2
			mps := make([]geom.MovingPoint, len(positions))
			for k := range positions {
				mps[k] = mpAt(spansOf[k], mid)
			}
			real = real.Union(geom.WithinSphereTimes(rad.c.Num, mps, s0, s1, c.bisectSamples()))
		}
		return real.Ticks(w), nil
	})
}
