package relstore

import (
	"fmt"
	"sort"
)

// ---- expression AST ----

type Expr interface {
	eval(env *rowEnv) (Value, error)
}

type LitExpr struct{ v Value }

type ColExpr struct {
	table string // optional qualifier
	col   string
}

type BinExpr struct {
	op   string
	l, r Expr
}

type NotExpr struct{ e Expr }

func (e LitExpr) eval(*rowEnv) (Value, error) { return e.v, nil }

func (e ColExpr) eval(env *rowEnv) (Value, error) { return env.lookup(e.table, e.col) }

func (e NotExpr) eval(env *rowEnv) (Value, error) {
	v, err := e.e.eval(env)
	if err != nil {
		return Value{}, err
	}
	if v.Kind != KBool {
		return Value{}, fmt.Errorf("relstore: NOT needs a boolean")
	}
	return Bool(!v.B), nil
}

func (e BinExpr) eval(env *rowEnv) (Value, error) {
	l, err := e.l.eval(env)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit booleans.
	if e.op == "AND" || e.op == "OR" {
		if l.Kind != KBool {
			return Value{}, fmt.Errorf("relstore: %s needs booleans", e.op)
		}
		if e.op == "AND" && !l.B {
			return Bool(false), nil
		}
		if e.op == "OR" && l.B {
			return Bool(true), nil
		}
		r, err := e.r.eval(env)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != KBool {
			return Value{}, fmt.Errorf("relstore: %s needs booleans", e.op)
		}
		return r, nil
	}
	r, err := e.r.eval(env)
	if err != nil {
		return Value{}, err
	}
	switch e.op {
	case "+", "-", "*", "/":
		if l.Kind != KNum || r.Kind != KNum {
			return Value{}, fmt.Errorf("relstore: arithmetic needs numbers")
		}
		switch e.op {
		case "+":
			return Num(l.F + r.F), nil
		case "-":
			return Num(l.F - r.F), nil
		case "*":
			return Num(l.F * r.F), nil
		default:
			if r.F == 0 {
				return Value{}, fmt.Errorf("relstore: division by zero")
			}
			return Num(l.F / r.F), nil
		}
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		c := l.Compare(r)
		switch e.op {
		case "=":
			return Bool(c == 0), nil
		case "!=", "<>":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	}
	return Value{}, fmt.Errorf("relstore: unknown operator %s", e.op)
}

// validateExpr statically checks that every column reference resolves to
// exactly one FROM table.
func validateExpr(e Expr, tables []*Table) error {
	switch n := e.(type) {
	case LitExpr:
		return nil
	case ColExpr:
		found := 0
		for _, t := range tables {
			if n.table != "" && t.Name != n.table {
				continue
			}
			if _, ok := t.ColIndex(n.col); ok {
				found++
			}
		}
		switch found {
		case 0:
			return fmt.Errorf("relstore: unknown column %s", n.col)
		case 1:
			return nil
		default:
			return fmt.Errorf("relstore: ambiguous column %s", n.col)
		}
	case NotExpr:
		return validateExpr(n.e, tables)
	case BinExpr:
		if err := validateExpr(n.l, tables); err != nil {
			return err
		}
		return validateExpr(n.r, tables)
	default:
		return fmt.Errorf("relstore: unknown expression node %T", e)
	}
}

// rowEnv resolves column references over the current rows of the FROM
// tables.
type rowEnv struct {
	tables []*Table
	rows   []Row
}

func (env *rowEnv) lookup(table, col string) (Value, error) {
	found := -1
	for i, t := range env.tables {
		if table != "" && t.Name != table {
			continue
		}
		if _, ok := t.ColIndex(col); ok {
			if found >= 0 {
				return Value{}, fmt.Errorf("relstore: ambiguous column %s", col)
			}
			found = i
		}
	}
	if found < 0 {
		return Value{}, fmt.Errorf("relstore: unknown column %s.%s", table, col)
	}
	ci, _ := env.tables[found].ColIndex(col)
	return env.rows[found][ci], nil
}

// ---- expression parsing ----

func (p *sqlParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinExpr{op: "OR", l: l, r: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinExpr{op: "AND", l: l, r: r}
	}
	return l, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{e: e}, nil
	}
	return p.parseCmp()
}

var sqlRelops = []string{"<=", ">=", "!=", "<>", "=", "<", ">"}

func (p *sqlParser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == sqlSym {
		for _, op := range sqlRelops {
			if t.text == op {
				p.pos++
				r, err := p.parseAdd()
				if err != nil {
					return nil, err
				}
				return BinExpr{op: op, l: l, r: r}, nil
			}
		}
	}
	return l, nil
}

func (p *sqlParser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == sqlSym && (t.text == "+" || t.text == "-") {
			p.pos++
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = BinExpr{op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *sqlParser) parseMul() (Expr, error) {
	l, err := p.parsePrim()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == sqlSym && (t.text == "*" || t.text == "/") {
			p.pos++
			r, err := p.parsePrim()
			if err != nil {
				return nil, err
			}
			l = BinExpr{op: t.text, l: l, r: r}
			continue
		}
		return l, nil
	}
}

func (p *sqlParser) parsePrim() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == sqlNum, t.kind == sqlStr,
		t.kind == sqlIdent && (t.text == "TRUE" || t.text == "FALSE" || t.text == "NULL"):
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return LitExpr{v: v}, nil
	case t.kind == sqlSym && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == sqlIdent && !sqlKeywords[t.text]:
		p.pos++
		if p.acceptSym(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return ColExpr{table: t.text, col: col}, nil
		}
		return ColExpr{col: t.text}, nil
	default:
		return nil, fmt.Errorf("relstore: expected expression, found %v", t.text)
	}
}

// ---- SELECT / DELETE / UPDATE ----

type selectTarget struct {
	expr Expr
	name string
}

func (p *sqlParser) selectStmt() (*ResultSet, error) {
	var targets []selectTarget
	star := false
	if p.acceptSym("*") {
		star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			name := "expr"
			if ce, ok := e.(ColExpr); ok {
				name = ce.col
			}
			targets = append(targets, selectTarget{expr: e, name: name})
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	var tables []*Table
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		t, ok := p.store.Table(name)
		if !ok {
			return nil, fmt.Errorf("relstore: no table %s", name)
		}
		tables = append(tables, t)
		if !p.acceptSym(",") {
			break
		}
	}
	var where Expr
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		where = e
	}
	var orderBy Expr
	orderDesc := false
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		orderBy = e
		if p.acceptKw("DESC") {
			orderDesc = true
		} else {
			p.acceptKw("ASC")
		}
	}
	limit := -1
	if p.acceptKw("LIMIT") {
		tok := p.peek()
		if tok.kind != sqlNum || tok.num < 0 || tok.num != float64(int(tok.num)) {
			return nil, fmt.Errorf("relstore: LIMIT needs a non-negative integer")
		}
		p.pos++
		limit = int(tok.num)
	}
	if p.peek().kind != sqlEOF {
		return nil, fmt.Errorf("relstore: unexpected %v after statement", p.peek().text)
	}
	if star {
		for _, t := range tables {
			for _, c := range t.Columns {
				targets = append(targets, selectTarget{expr: ColExpr{table: t.Name, col: c}, name: c})
			}
		}
	}
	for _, tgt := range targets {
		if err := validateExpr(tgt.expr, tables); err != nil {
			return nil, err
		}
	}
	if where != nil {
		if err := validateExpr(where, tables); err != nil {
			return nil, err
		}
	}
	if orderBy != nil {
		if err := validateExpr(orderBy, tables); err != nil {
			return nil, err
		}
	}
	rs := &ResultSet{}
	for _, tgt := range targets {
		rs.Columns = append(rs.Columns, tgt.name)
	}
	env := &rowEnv{tables: tables, rows: make([]Row, len(tables))}
	var sortKeys []Value
	emit := func() error {
		if where != nil {
			v, err := where.eval(env)
			if err != nil {
				return err
			}
			if v.Kind != KBool {
				return fmt.Errorf("relstore: WHERE must be boolean")
			}
			if !v.B {
				return nil
			}
		}
		out := make(Row, len(targets))
		for i, tgt := range targets {
			v, err := tgt.expr.eval(env)
			if err != nil {
				return err
			}
			out[i] = v
		}
		if orderBy != nil {
			k, err := orderBy.eval(env)
			if err != nil {
				return err
			}
			sortKeys = append(sortKeys, k)
		}
		rs.Rows = append(rs.Rows, out)
		return nil
	}
	finish := func() *ResultSet {
		if orderBy != nil {
			idx := make([]int, len(rs.Rows))
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, b int) bool {
				c := sortKeys[idx[a]].Compare(sortKeys[idx[b]])
				if orderDesc {
					return c > 0
				}
				return c < 0
			})
			ordered := make([]Row, len(rs.Rows))
			for i, j := range idx {
				ordered[i] = rs.Rows[j]
			}
			rs.Rows = ordered
		}
		if limit >= 0 && len(rs.Rows) > limit {
			rs.Rows = rs.Rows[:limit]
		}
		return rs
	}
	// Single-table scans can use an index range when the WHERE clause pins
	// an indexed column.
	if len(tables) == 1 {
		if col, lo, hi, ok := indexablePredicate(where, tables[0]); ok {
			var ferr error
			err := tables[0].IndexRange(col, lo, hi, func(r Row) bool {
				env.rows[0] = r
				if err := emit(); err != nil {
					ferr = err
					return false
				}
				return true
			})
			if err != nil {
				return nil, err
			}
			if ferr != nil {
				return nil, ferr
			}
			return finish(), nil
		}
	}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(tables) {
			return emit()
		}
		var ferr error
		tables[i].Scan(func(r Row) bool {
			env.rows[i] = r
			if err := rec(i + 1); err != nil {
				ferr = err
				return false
			}
			return true
		})
		return ferr
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return finish(), nil
}

// indexablePredicate extracts a range [lo,hi] on one indexed column from
// the top-level AND conjuncts of where.
func indexablePredicate(where Expr, t *Table) (col string, lo, hi *Value, ok bool) {
	var conjuncts []Expr
	var flatten func(e Expr)
	flatten = func(e Expr) {
		if b, isBin := e.(BinExpr); isBin && b.op == "AND" {
			flatten(b.l)
			flatten(b.r)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	if where == nil {
		return "", nil, nil, false
	}
	flatten(where)
	for _, c := range conjuncts {
		b, isBin := c.(BinExpr)
		if !isBin {
			continue
		}
		ce, okL := b.l.(ColExpr)
		le, okR := b.r.(LitExpr)
		op := b.op
		if !okL || !okR {
			// Try the flipped orientation const op col.
			if le2, okL2 := b.l.(LitExpr); okL2 {
				if ce2, okR2 := b.r.(ColExpr); okR2 {
					ce, le, okL, okR = ce2, le2, true, true
					switch op {
					case "<":
						op = ">"
					case "<=":
						op = ">="
					case ">":
						op = "<"
					case ">=":
						op = "<="
					}
				}
			}
		}
		if !okL || !okR || !t.HasIndex(ce.col) {
			continue
		}
		v := le.v
		switch op {
		case "=":
			return ce.col, &v, &v, true
		case "<", "<=":
			return ce.col, nil, &v, true
		case ">", ">=":
			return ce.col, &v, nil, true
		}
	}
	return "", nil, nil, false
}

func (p *sqlParser) deleteStmt() (*ResultSet, error) {
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t, ok := p.store.Table(name)
	if !ok {
		return nil, fmt.Errorf("relstore: no table %s", name)
	}
	var where Expr
	if p.acceptKw("WHERE") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	env := &rowEnv{tables: []*Table{t}, rows: make([]Row, 1)}
	var evalErr error
	n := t.deleteWhere(func(r Row) bool {
		if where == nil {
			return true
		}
		env.rows[0] = r
		v, err := where.eval(env)
		if err != nil {
			evalErr = err
			return false
		}
		return v.Kind == KBool && v.B
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return countResult(n), nil
}

func (p *sqlParser) updateStmt() (*ResultSet, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t, ok := p.store.Table(name)
	if !ok {
		return nil, fmt.Errorf("relstore: no table %s", name)
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	type assignment struct {
		col  int
		expr Expr
	}
	var sets []assignment
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci, ok := t.ColIndex(col)
		if !ok {
			return nil, fmt.Errorf("relstore: table %s has no column %s", name, col)
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sets = append(sets, assignment{col: ci, expr: e})
		if !p.acceptSym(",") {
			break
		}
	}
	var where Expr
	if p.acceptKw("WHERE") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	env := &rowEnv{tables: []*Table{t}, rows: make([]Row, 1)}
	var evalErr error
	n := t.updateWhere(
		func(r Row) bool {
			if evalErr != nil {
				return false
			}
			if where == nil {
				return true
			}
			env.rows[0] = r
			v, err := where.eval(env)
			if err != nil {
				evalErr = err
				return false
			}
			return v.Kind == KBool && v.B
		},
		func(r Row) Row {
			next := make(Row, len(r))
			copy(next, r)
			env.rows[0] = r
			for _, a := range sets {
				v, err := a.expr.eval(env)
				if err != nil {
					evalErr = err
					return r
				}
				next[a.col] = v
			}
			return next
		},
	)
	if evalErr != nil {
		return nil, evalErr
	}
	return countResult(n), nil
}
