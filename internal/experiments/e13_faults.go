package experiments

import (
	"bytes"
	"fmt"
	"time"

	"github.com/mostdb/most/internal/dist"
	"github.com/mostdb/most/internal/faults"
	"github.com/mostdb/most/internal/ftl/eval"
	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/most"
	"github.com/mostdb/most/internal/motion"
	"github.com/mostdb/most/internal/temporal"
)

// E13 measures fault tolerance: the §5.2 answer-delivery and §5.3
// update-propagation paths under a deterministic fault schedule (seeded
// loss × scripted partition × scripted crashes), comparing the paper's
// fire-and-forget transmission against the reliable (acknowledged,
// retransmitted, idempotent) layer, plus graceful degradation (staleness
// marking) and crash recovery (WAL replay) of the server database.

// FaultsResult is one row of the fault-tolerance sweep.
type FaultsResult struct {
	DropRate       float64 `json:"drop_rate"`
	PartitionTicks int     `json:"partition_ticks"`
	Crashes        int     `json:"crashes"`

	// §5.2 answer delivery: missed displays out of AnswerTuples.
	AnswerTuples     int `json:"answer_tuples"`
	LegacyImmMissed  int `json:"legacy_immediate_missed"`
	LegacyDelMissed  int `json:"legacy_delayed_missed"`
	ReliableMissed   int `json:"reliable_missed"`
	RecoveredTuples  int `json:"recovered_tuples"`
	DeliveryRetries  int `json:"delivery_retries"`
	DeliveryRetryKiB int `json:"delivery_retry_kib"`

	// §5.3 update propagation: losses out of UpdatesOffered.
	UpdatesOffered      int `json:"updates_offered"`
	LegacyUpdatesLost   int `json:"legacy_updates_lost"`
	ReliableUpdatesLost int `json:"reliable_updates_lost"`
	UpdateRetries       int `json:"update_retries"`

	// Graceful degradation: answer tuples marked uncertain because the
	// referenced object's motion vector breached the staleness bound.
	StaleLegacy   int `json:"stale_marked_legacy"`
	StaleReliable int `json:"stale_marked_reliable"`

	// Crash recovery: WAL replay time for the update trace, with the
	// replayed state verified byte-identical to the live database.
	RecoveryNs int64 `json:"recovery_ns"`
}

// FaultsReport is the payload mostbench -faults writes to BENCH_faults.json.
// Chaos is filled by mostbench -chaos (the live end-to-end fault
// injection), alongside or after the simulated sweep.
type FaultsReport struct {
	Seed    int64          `json:"seed"`
	Results []FaultsResult `json:"results"`
	Chaos   *ChaosReport   `json:"chaos,omitempty"`
}

const (
	e13Server = faults.NodeID("M")
	e13Client = faults.NodeID("m0")
	// e13Horizon is the simulated window; every display interval closes
	// inside it.
	e13Horizon = temporal.Tick(400)
	// e13Now / e13Bound parameterize the staleness marking: a vector older
	// than e13Bound ticks at e13Now marks its tuples uncertain.
	e13Now   = temporal.Tick(300)
	e13Bound = temporal.Tick(100)
)

// e13Policy rides out the longest scripted partition (40 ticks) plus a
// crash with room to spare.
var e13Policy = faults.RetryPolicy{Timeout: 2, Backoff: 2, MaxTimeout: 6, MaxRetries: 60, AckBytes: 16}

type faultScenario struct {
	seed    int64
	drop    float64
	part    temporal.Tick // partition length in ticks (0 = none)
	crashes int
}

// net builds the scenario's network: isolate is cut off during the
// partition, crash goes down for 10 ticks per scripted crash.  Two networks
// from the same scenario inject identical faults (loss is a pure hash), so
// every sub-measurement of a row faces the same schedule.
func (sc faultScenario) net(isolate, crash faults.NodeID) *faults.Network {
	net := faults.New(faults.Config{Seed: sc.seed, DropRate: sc.drop})
	if sc.part > 0 {
		net.AddPartition(faults.Partition{Start: 60, End: 60 + sc.part, GroupA: []faults.NodeID{isolate}})
	}
	// Crashes are timed onto the update bursts (ticks 160.., 200..) so a
	// downed server actually loses traffic.
	for i := 0; i < sc.crashes; i++ {
		down := temporal.Tick(160 + i*40)
		net.AddCrash(faults.Crash{Node: crash, Down: down, Up: down + 10})
	}
	return net
}

func e13ObjectID(i int) most.ObjectID {
	return most.ObjectID(fmt.Sprintf("v%02d", i))
}

// e13Answers is the Answer(CQ) fixture: one tuple per object, begins spaced
// 10 ticks apart, display windows 120 ticks long — long enough that a
// retransmission after the worst scripted outage still lands inside.
func e13Answers(n int) []eval.Answer {
	out := make([]eval.Answer, n)
	for i := range out {
		start := temporal.Tick(i) * 10
		out[i] = eval.Answer{
			Vals:     []eval.Val{eval.ObjVal(e13ObjectID(i))},
			Interval: temporal.Interval{Start: start, End: start + 120},
		}
	}
	return out
}

// e13Updates is the §2.3 explicit-update trace: each object revises its
// motion vector `versions` times, 40 ticks apart.
func e13Updates(n, versions int) []dist.MotionUpdate {
	var out []dist.MotionUpdate
	for v := 1; v <= versions; v++ {
		for i := 0; i < n; i++ {
			out = append(out, dist.MotionUpdate{
				Object:  e13ObjectID(i),
				Version: v,
				Tick:    temporal.Tick((v-1)*40 + i),
				Vector:  geom.Vector{X: float64(v), Y: float64(i)},
			})
		}
	}
	return out
}

// e13StalenessDB builds a database whose objects carry the motion vectors
// the server actually installed: lastTick maps object -> tick of its newest
// installed update (objects absent from the map never got one through).
func e13StalenessDB(n int, lastTick map[most.ObjectID]temporal.Tick) *most.Database {
	db := most.NewDatabase()
	c := most.MustClass("Vehicles", true)
	if err := db.DefineClass(c); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		id := e13ObjectID(i)
		o, err := most.NewObject(id, c)
		if err != nil {
			panic(err)
		}
		o, err = o.WithPosition(motion.MovingFrom(geom.Point{X: float64(i)}, geom.Vector{X: 1}, lastTick[id]))
		if err != nil {
			panic(err)
		}
		if err := db.Insert(o); err != nil {
			panic(err)
		}
	}
	return db
}

// e13Recovery applies the update trace to a WAL-attached database, then
// times a full crash recovery (replay from the log alone) and verifies the
// replayed state byte-identical to the live one.
func e13Recovery(n int, updates []dist.MotionUpdate) int64 {
	var buf bytes.Buffer
	db := most.NewDatabase()
	if err := db.AttachWAL(most.NewWAL(&buf)); err != nil {
		panic(err)
	}
	c := most.MustClass("Vehicles", true)
	if err := db.DefineClass(c); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		o, err := most.NewObject(e13ObjectID(i), c)
		if err != nil {
			panic(err)
		}
		o, err = o.WithPosition(motion.MovingFrom(geom.Point{X: float64(i)}, geom.Vector{}, 0))
		if err != nil {
			panic(err)
		}
		if err := db.Insert(o); err != nil {
			panic(err)
		}
	}
	for _, u := range updates {
		if u.Tick > db.Now() {
			db.Advance(u.Tick - db.Now())
		}
		if err := db.SetMotion(u.Object, u.Vector); err != nil {
			panic(err)
		}
	}
	want, err := db.SnapshotJSON()
	if err != nil {
		panic(err)
	}

	start := time.Now()
	rec, report, err := most.Recover(nil, buf.Bytes())
	elapsed := time.Since(start)
	if err != nil {
		panic(err)
	}
	if report.Truncated {
		panic("E13: intact WAL reported truncated")
	}
	got, err := rec.SnapshotJSON()
	if err != nil {
		panic(err)
	}
	if !bytes.Equal(want, got) {
		panic("E13: WAL replay did not reproduce the database state")
	}
	return elapsed.Nanoseconds()
}

// FaultsBench sweeps loss rate × partition length × crash count and runs
// every fault-tolerance measurement on each schedule.
func FaultsBench(quick bool) *FaultsReport {
	drops := []float64{0.1, 0.3}
	parts := []temporal.Tick{0, 40}
	crashCounts := []int{0, 2}
	objects, versions := 12, 6
	if quick {
		drops = []float64{0.3}
		crashCounts = []int{0, 1}
	}

	rep := &FaultsReport{Seed: 17}
	answers := e13Answers(objects)
	updates := e13Updates(objects, versions)
	for _, drop := range drops {
		for _, part := range parts {
			for _, crashes := range crashCounts {
				sc := faultScenario{seed: rep.Seed, drop: drop, part: part, crashes: crashes}
				res := FaultsResult{
					DropRate:       drop,
					PartitionTicks: int(part),
					Crashes:        crashes,
					AnswerTuples:   len(answers),
					UpdatesOffered: len(updates),
				}

				// §5.2 delivery: legacy vs reliable under identical faults.
				s := dist.NewSim(1)
				connNet := sc.net(e13Client, e13Client)
				conn := func(t temporal.Tick) bool {
					return connNet.Connected(e13Server, e13Client, t)
				}
				res.LegacyImmMissed = s.DeliverAnswer(answers, dist.Immediate, 3, 0, e13Horizon, conn).MissedDisplays
				res.LegacyDelMissed = s.DeliverAnswer(answers, dist.Delayed, 0, 0, e13Horizon, conn).MissedDisplays
				rel := s.ReliableDeliverAnswer(sc.net(e13Client, e13Client), e13Server, e13Client,
					e13Policy, answers, dist.Delayed, 0, 0, e13Horizon)
				res.ReliableMissed = rel.MissedDisplays
				res.RecoveredTuples = rel.RecoveredDisplays
				res.DeliveryRetries = rel.Retries
				res.DeliveryRetryKiB = rel.RetryBytes / 1024

				// §5.3 propagation: what the server's picture misses.
				legacyLast := map[most.ObjectID]temporal.Tick{}
				lp := dist.PropagateUpdates(sc.net(e13Server, e13Server), e13Server, updates, false,
					e13Policy, 64, e13Horizon, func(u dist.MotionUpdate) { legacyLast[u.Object] = u.Tick })
				reliableLast := map[most.ObjectID]temporal.Tick{}
				rp := dist.PropagateUpdates(sc.net(e13Server, e13Server), e13Server, updates, true,
					e13Policy, 64, e13Horizon, func(u dist.MotionUpdate) { reliableLast[u.Object] = u.Tick })
				res.LegacyUpdatesLost = lp.Lost
				res.ReliableUpdatesLost = rp.Lost
				res.UpdateRetries = rp.Retries

				// Graceful degradation: answers over stale vectors are
				// marked uncertain rather than presented as exact.
				_, res.StaleLegacy = dist.AnnotateStaleness(e13StalenessDB(objects, legacyLast), answers, e13Now, e13Bound)
				_, res.StaleReliable = dist.AnnotateStaleness(e13StalenessDB(objects, reliableLast), answers, e13Now, e13Bound)

				// Crash recovery of the server database.
				res.RecoveryNs = e13Recovery(objects, updates)

				rep.Results = append(rep.Results, res)
			}
		}
	}
	return rep
}

// Table renders the report in the experiment-table format.
func (r *FaultsReport) Table() *Table {
	t := &Table{
		ID:    "E13",
		Title: "fault tolerance: reliable delivery, staleness marking, crash recovery",
		Claim: "acknowledged retransmission with idempotent receipt delivers every display and every update through loss, partitions, and crashes that the paper's fire-and-forget transmission loses; WAL replay reconstructs the server state exactly",
		Columns: []string{
			"loss", "part", "crash",
			"miss-imm", "miss-del", "miss-rel", "recovered", "retries",
			"upd-lost", "upd-rel", "stale-leg", "stale-rel", "recovery",
		},
	}
	for _, res := range r.Results {
		t.AddRow(
			f2(res.DropRate),
			itoa(res.PartitionTicks),
			itoa(res.Crashes),
			fmt.Sprintf("%d/%d", res.LegacyImmMissed, res.AnswerTuples),
			fmt.Sprintf("%d/%d", res.LegacyDelMissed, res.AnswerTuples),
			fmt.Sprintf("%d/%d", res.ReliableMissed, res.AnswerTuples),
			itoa(res.RecoveredTuples),
			itoa(res.DeliveryRetries+res.UpdateRetries),
			fmt.Sprintf("%d/%d", res.LegacyUpdatesLost, res.UpdatesOffered),
			fmt.Sprintf("%d/%d", res.ReliableUpdatesLost, res.UpdatesOffered),
			itoa(res.StaleLegacy),
			itoa(res.StaleReliable),
			ns(time.Duration(res.RecoveryNs)),
		)
	}
	t.Notes = append(t.Notes,
		"identical fault schedules per row: loss is a pure hash of (seed, node, tick), partitions and crashes are scripted",
		"recovery = WAL replay of the full update trace, verified byte-identical to the live snapshot")
	return t
}

// E13Faults wraps the sweep as a standard experiment table.
func E13Faults(quick bool) *Table {
	return FaultsBench(quick).Table()
}
