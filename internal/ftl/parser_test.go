package ftl

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("RETRIEVE o WHERE o.PRICE <= 100 -- comment\n AND [x <- 3.5] TRUE")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{
		TokKeyword, TokIdent, TokKeyword, TokIdent, TokSymbol, TokIdent,
		TokSymbol, TokNumber, TokKeyword, TokSymbol, TokIdent, TokSymbol,
		TokNumber, TokSymbol, TokKeyword, TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want kind %d", i, toks[i], k)
		}
	}
	if toks[12].Num != 3.5 {
		t.Errorf("number token = %v", toks[12])
	}
}

func TestLexStringsAndErrors(t *testing.T) {
	toks, err := Lex(`name = 'Super 8' AND city = "Chicago"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokString || toks[2].Text != "Super 8" {
		t.Errorf("string token = %v", toks[2])
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("a ; b"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestLexNumberDotDisambiguation(t *testing.T) {
	// "o.X" must lex as ident, dot, ident even after a number.
	toks, err := Lex("3.PRICE")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokNumber || toks[0].Num != 3 {
		t.Fatalf("toks = %v", toks)
	}
	if toks[1].Text != "." || toks[2].Text != "PRICE" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestParsePaperQueryI(t *testing.T) {
	// §3.4 (I): objects entering P within 3 time units with PRICE <= 100.
	q, err := Parse(`
		RETRIEVE o
		FROM Objects o
		WHERE o.PRICE <= 100 AND EVENTUALLY WITHIN 3 INSIDE(o, P)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Targets) != 1 || q.Targets[0] != "o" {
		t.Fatalf("targets = %v", q.Targets)
	}
	if len(q.Bindings) != 1 || q.Bindings[0] != (Binding{Var: "o", Class: "Objects"}) {
		t.Fatalf("bindings = %+v", q.Bindings)
	}
	want := "(o.PRICE <= 100 AND (EVENTUALLY WITHIN 3 INSIDE(o, P)))"
	if got := q.Where.String(); got != want {
		t.Errorf("formula = %s, want %s", got, want)
	}
}

func TestParsePaperQueryII(t *testing.T) {
	// §3.4 (II): enter P within 3, stay for 2.
	q, err := Parse(`
		RETRIEVE o FROM Objects o
		WHERE EVENTUALLY WITHIN 3 (INSIDE(o, P) AND ALWAYS FOR 2 INSIDE(o, P))`)
	if err != nil {
		t.Fatal(err)
	}
	want := "(EVENTUALLY WITHIN 3 (INSIDE(o, P) AND (ALWAYS FOR 2 INSIDE(o, P))))"
	if got := q.Where.String(); got != want {
		t.Errorf("formula = %s, want %s", got, want)
	}
}

func TestParsePaperQueryIII(t *testing.T) {
	// §3.4 (III): enter P within 3, stay 2, after at least 5 enter Q.
	q, err := Parse(`
		RETRIEVE o FROM Objects o
		WHERE EVENTUALLY WITHIN 3 (INSIDE(o, P)
			AND ALWAYS FOR 2 INSIDE(o, P)
			AND EVENTUALLY AFTER 5 INSIDE(o, Q))`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.Where.String(), "EVENTUALLY AFTER 5 INSIDE(o, Q)") {
		t.Errorf("formula = %s", q.Where)
	}
}

func TestParsePaperUntilQuery(t *testing.T) {
	// §3.2: DIST(o,n) <= 5 UNTIL (INSIDE(o,P) AND INSIDE(n,P)).
	q, err := Parse(`
		RETRIEVE o, n
		FROM Moving_Objects o, Moving_Objects n
		WHERE DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))`)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := q.Where.(Until)
	if !ok {
		t.Fatalf("formula = %T", q.Where)
	}
	if u.Within != nil {
		t.Error("unbounded until should have nil Within")
	}
	if _, ok := u.L.(Compare); !ok {
		t.Errorf("left = %T", u.L)
	}
	if _, ok := u.R.(And); !ok {
		t.Errorf("right = %T", u.R)
	}
	if got := FreeVars(q.Where); len(got) != 3 || got[0] != "o" || got[1] != "n" || got[2] != "P" {
		t.Errorf("free vars = %v", got)
	}
}

func TestParseAssignment(t *testing.T) {
	// §3.3's example: [x <- RETRIEVE(o)] NEXTTIME (RETRIEVE(o) != x),
	// expressed over an attribute.
	f, err := ParseFormula(`[x <- o.X.POSITION] NEXTTIME o.X.POSITION != x`)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := f.(Assign)
	if !ok {
		t.Fatalf("formula = %T", f)
	}
	if a.Var != "x" {
		t.Errorf("var = %s", a.Var)
	}
	ref, ok := a.Term.(AttrRef)
	if !ok || len(ref.Path) != 2 || ref.Path[0] != "X" || ref.Path[1] != "POSITION" {
		t.Errorf("term = %#v", a.Term)
	}
	if _, ok := a.Body.(Nexttime); !ok {
		t.Errorf("body = %T", a.Body)
	}
	// x is bound, so free vars are just o.
	if got := FreeVars(f); len(got) != 1 || got[0] != "o" {
		t.Errorf("free vars = %v", got)
	}
}

func TestParseSpeedAndTime(t *testing.T) {
	f, err := ParseFormula(`[x <- SPEED(o.X.POSITION)] EVENTUALLY WITHIN 10 SPEED(o.X.POSITION) >= 2 * x`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(Assign); !ok {
		t.Fatalf("formula = %T", f)
	}
	f2, err := ParseFormula(`time >= 5 AND time + 10 <= 100`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f2.(And); !ok {
		t.Fatalf("formula = %T", f2)
	}
}

func TestParseUntilWithin(t *testing.T) {
	f, err := ParseFormula(`INSIDE(o, P) UNTIL WITHIN 7 INSIDE(o, Q)`)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := f.(Until)
	if !ok || u.Within == nil {
		t.Fatalf("formula = %#v", f)
	}
	if n, ok := u.Within.(Num); !ok || n.V != 7 {
		t.Errorf("within = %#v", u.Within)
	}
}

func TestParseUntilRightAssociative(t *testing.T) {
	f, err := ParseFormula(`TRUE UNTIL FALSE UNTIL TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	u := f.(Until)
	if _, ok := u.R.(Until); !ok {
		t.Errorf("until should be right-associative: %s", f)
	}
}

func TestParseWithinSphere(t *testing.T) {
	f, err := ParseFormula(`ALWAYS FOR 3 WITHIN_SPHERE(2, a, b, c)`)
	if err != nil {
		t.Fatal(err)
	}
	al := f.(Always)
	ws, ok := al.F.(WithinSphere)
	if !ok || len(ws.Objs) != 3 {
		t.Fatalf("formula = %#v", al.F)
	}
	if _, err := ParseFormula(`WITHIN_SPHERE(2)`); err == nil {
		t.Error("sphere without objects should fail")
	}
}

func TestParseParenDisambiguation(t *testing.T) {
	// Parenthesized arithmetic on the left of a comparison.
	f, err := ParseFormula(`(o.A + 1) * 2 <= 10`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(Compare); !ok {
		t.Fatalf("formula = %T", f)
	}
	// Parenthesized formula.
	f2, err := ParseFormula(`(o.A <= 10 AND o.B >= 2) OR o.C = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f2.(Or); !ok {
		t.Fatalf("formula = %T", f2)
	}
}

func TestParseNotImpliesBool(t *testing.T) {
	f, err := ParseFormula(`NOT INSIDE(o, P) IMPLIES TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	im, ok := f.(Implies)
	if !ok {
		t.Fatalf("formula = %T", f)
	}
	if _, ok := im.L.(Not); !ok {
		t.Errorf("left = %T", im.L)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"RETRIEVE",
		"RETRIEVE o WHERE",
		"RETRIEVE o FROM WHERE TRUE",
		"RETRIEVE o WHERE o.PRICE",
		"RETRIEVE o WHERE o.PRICE <=",
		"RETRIEVE o WHERE [x <-] TRUE",
		"RETRIEVE o WHERE [x <- 3 TRUE",
		"RETRIEVE o WHERE INSIDE(o)",
		"RETRIEVE o WHERE SPEED(3) > 1",
		"RETRIEVE o WHERE ABS(1, 2) > 1",
		"RETRIEVE o WHERE MIN(1) > 1",
		"RETRIEVE o WHERE TRUE extra",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	if _, err := ParseFormula("TRUE TRUE"); err == nil {
		t.Error("trailing tokens after formula should fail")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("not a query")
}

func TestFormulaStringRoundTrip(t *testing.T) {
	// Formula String() output re-parses to the same string (stability).
	srcs := []string{
		`o.PRICE <= 100 AND EVENTUALLY WITHIN 3 INSIDE(o, P)`,
		`DIST(o, n) <= 5 UNTIL (INSIDE(o, P) AND INSIDE(n, P))`,
		`[x <- o.A] ALWAYS o.A >= x`,
		`NOT OUTSIDE(o, P) OR WITHIN_SPHERE(1, a, b)`,
		`NEXTTIME time >= 1`,
	}
	for _, src := range srcs {
		f1, err := ParseFormula(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		f2, err := ParseFormula(f1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", f1.String(), err)
		}
		if f1.String() != f2.String() {
			t.Errorf("round trip: %q != %q", f1.String(), f2.String())
		}
	}
}
