package ftl

import "fmt"

// Parse parses a full FTL query:
//
//	RETRIEVE o, n FROM Vehicles o, Vehicles n WHERE <formula>
//
// The FROM clause is optional when the evaluation context supplies variable
// bindings externally.
func Parse(src string) (*Query, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, errAt(p.peek(), "unexpected %s after query", p.peek())
	}
	return q, nil
}

// ParseFormula parses a bare FTL formula (no RETRIEVE/WHERE wrapper).
func ParseFormula(src string) (Formula, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, errAt(p.peek(), "unexpected %s after formula", p.peek())
	}
	return f, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token   { return p.toks[p.pos] }
func (p *parser) next() Token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

// at reports whether the current token has the given kind and (when text is
// non-empty) text.
func (p *parser) at(kind TokKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[TokKind]string{TokIdent: "identifier", TokNumber: "number"}[kind]
	}
	return Token{}, errAt(p.peek(), "expected %q, found %s", want, p.peek())
}

func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.expect(TokKeyword, "RETRIEVE"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		id, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		q.Targets = append(q.Targets, id.Text)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "FROM") {
		for {
			class, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			v, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			q.Bindings = append(q.Bindings, Binding{Var: v.Text, Class: class.Text})
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(TokKeyword, "WHERE"); err != nil {
		return nil, err
	}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	q.Where = f
	return q, nil
}

// parseFormula = or-level.
func (p *parser) parseFormula() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokKeyword, "OR"):
			r, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			l = Or{L: l, R: r}
		case p.accept(TokKeyword, "IMPLIES"):
			r, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			l = Implies{L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAnd() (Formula, error) {
	l, err := p.parseUntil()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseUntil()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

// parseUntil is right-associative: a UNTIL b UNTIL c == a UNTIL (b UNTIL c).
func (p *parser) parseUntil() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if !p.accept(TokKeyword, "UNTIL") {
		return l, nil
	}
	var within Expr
	if p.accept(TokKeyword, "WITHIN") {
		within, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	r, err := p.parseUntil()
	if err != nil {
		return nil, err
	}
	return Until{L: l, R: r, Within: within}, nil
}

func (p *parser) parseUnary() (Formula, error) {
	switch {
	case p.accept(TokKeyword, "NOT"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{F: f}, nil
	case p.accept(TokKeyword, "NEXTTIME"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Nexttime{F: f}, nil
	case p.accept(TokKeyword, "EVENTUALLY"):
		var within, after Expr
		var err error
		if p.accept(TokKeyword, "WITHIN") {
			if within, err = p.parseExpr(); err != nil {
				return nil, err
			}
		} else if p.accept(TokKeyword, "AFTER") {
			if after, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Eventually{F: f, Within: within, After: after}, nil
	case p.accept(TokKeyword, "ALWAYS"):
		var bound Expr
		var err error
		if p.accept(TokKeyword, "FOR") {
			if bound, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Always{F: f, For: bound}, nil
	case p.accept(TokSymbol, "["):
		v, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "<-"); err != nil {
			return nil, err
		}
		term, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "]"); err != nil {
			return nil, err
		}
		body, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Assign{Var: v.Text, Term: term, Body: body}, nil
	default:
		return p.parseAtom()
	}
}

var relops = map[string]bool{"<": true, "<=": true, ">": true, ">=": true, "=": true, "==": true, "!=": true, "<>": true}

func (p *parser) parseAtom() (Formula, error) {
	switch {
	case p.accept(TokKeyword, "TRUE"):
		return BoolLit{V: true}, nil
	case p.accept(TokKeyword, "FALSE"):
		return BoolLit{V: false}, nil
	case p.at(TokKeyword, "INSIDE"), p.at(TokKeyword, "OUTSIDE"):
		kw := p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		obj, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ","); err != nil {
			return nil, err
		}
		region, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		if kw.Text == "INSIDE" {
			return Inside{Obj: obj, Region: region}, nil
		}
		return Outside{Obj: obj, Region: region}, nil
	case p.accept(TokKeyword, "WITHIN_SPHERE"):
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		radius, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ws := WithinSphere{Radius: radius}
		for p.accept(TokSymbol, ",") {
			o, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ws.Objs = append(ws.Objs, o)
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		if len(ws.Objs) == 0 {
			return nil, errAt(p.peek(), "WITHIN_SPHERE needs at least one object")
		}
		return ws, nil
	case p.at(TokSymbol, "("):
		// Could be a parenthesized formula or a parenthesized arithmetic
		// expression starting a comparison; try the formula reading first
		// and fall back.
		snapshot := p.save()
		p.next() // consume '('
		f, err := p.parseFormula()
		if err == nil {
			if _, err2 := p.expect(TokSymbol, ")"); err2 == nil {
				if !relops[p.peek().Text] && !arithOps[p.peek().Text] {
					return f, nil
				}
			}
		}
		p.restore(snapshot)
		return p.parseCompare()
	default:
		return p.parseCompare()
	}
}

var arithOps = map[string]bool{"+": true, "-": true, "*": true, "/": true}

func (p *parser) parseCompare() (Formula, error) {
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	op := p.peek()
	if op.Kind != TokSymbol || !relops[op.Text] {
		return nil, errAt(op, "expected comparison operator, found %s", op)
	}
	p.next()
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	text := op.Text
	switch text {
	case "==":
		text = "="
	case "<>":
		text = "!="
	}
	return Compare{Op: text, L: l, R: r}, nil
}

// ---- expressions ----

func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.at(TokSymbol, "+") || p.at(TokSymbol, "-") {
		op := p.next().Text
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokSymbol, "*") || p.at(TokSymbol, "/") {
		op := p.next().Text
		r, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnaryExpr() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return Neg{E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.peek()
	switch {
	case tok.Kind == TokNumber:
		p.next()
		return Num{V: tok.Num}, nil
	case tok.Kind == TokString:
		p.next()
		return StrLit{S: tok.Text}, nil
	case tok.Kind == TokKeyword && tok.Text == "TIME":
		p.next()
		return TimeRef{}, nil
	case tok.Kind == TokKeyword && (tok.Text == "TRUE" || tok.Text == "FALSE"):
		p.next()
		return BoolExpr{V: tok.Text == "TRUE"}, nil
	case tok.Kind == TokKeyword && tok.Text == "DIST":
		p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ","); err != nil {
			return nil, err
		}
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return DistOf{A: a, B: b}, nil
	case tok.Kind == TokKeyword && tok.Text == "SPEED":
		p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		ref, ok := e.(AttrRef)
		if !ok {
			return nil, errAt(tok, "SPEED expects an attribute reference like o.X.POSITION")
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return SpeedOf{Attr: ref}, nil
	case tok.Kind == TokKeyword && (tok.Text == "ABS" || tok.Text == "MIN" || tok.Text == "MAX"):
		p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		call := Call{Name: tok.Text}
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		if tok.Text == "ABS" && len(call.Args) != 1 {
			return nil, errAt(tok, "ABS takes one argument")
		}
		if tok.Text != "ABS" && len(call.Args) < 2 {
			return nil, errAt(tok, "%s takes at least two arguments", tok.Text)
		}
		return call, nil
	case tok.Kind == TokIdent:
		p.next()
		if !p.at(TokSymbol, ".") {
			return Var{Name: tok.Text}, nil
		}
		ref := AttrRef{Obj: Var{Name: tok.Text}}
		for p.accept(TokSymbol, ".") {
			part := p.peek()
			if part.Kind != TokIdent && part.Kind != TokKeyword {
				return nil, errAt(part, "expected attribute name, found %s", part)
			}
			p.next()
			ref.Path = append(ref.Path, part.Text)
		}
		return ref, nil
	case tok.Kind == TokSymbol && tok.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errAt(tok, "expected expression, found %s", tok)
	}
}

// MustParse parses a query and panics on error; for tests and examples.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("ftl.MustParse: %v", err))
	}
	return q
}
