// Package cluster partitions the plane into rectangular zones and spreads
// them over a set of MOST server nodes.  Each node runs the ordinary
// internal/server engine over the slice of moving objects whose current
// position falls inside its zones; classes named in the zone map's
// Replicated list (small reference fleets, stationary points of interest)
// are instead kept in full on every node so join templates never cross the
// network.  A Router fans client traffic out: updates go to the owning
// node (with server-side relaying for batches that land wholesale on a
// wrong node), queries scatter to every node and the per-zone answers
// merge by canonical-row union, and continuous queries are registered
// everywhere so their merged stream follows objects across zone crossings.
//
// Ownership moves with the objects.  After every mutating request a node
// scans what the request touched (everything, after a rebalance barrier)
// and hands off objects whose position has left its zones: the motion
// record travels to the neighbor as a version-fenced OpHandoff, the
// receiver's insert re-derives the in-flight continuous-query state from
// its own registered plans, and only a durable acknowledgement releases
// the sender's copy.  See ARCHITECTURE.md's "Cluster" section for the
// handoff state machine and the crash-recovery argument.
package cluster

import (
	"fmt"

	"github.com/mostdb/most/internal/geom"
	"github.com/mostdb/most/internal/wire"
)

// ZoneMap is the cluster's ownership function: a set of disjoint
// rectangles covering Bounds, each assigned to one node address.  The map
// is static per epoch; NeedsSplit is the hook a future dynamic splitter
// drives when a zone's population crosses its threshold.
type ZoneMap struct {
	Epoch      uint64
	Bounds     geom.Rect
	Zones      []wire.Zone
	Replicated []string

	replicated map[string]bool
}

// NewGridMap tiles bounds into a gx x gy grid of zones and assigns them
// round-robin to addrs (so every node owns a balanced, spatially spread
// set even when len(addrs) does not divide gx*gy).  replicated names the
// classes kept in full on every node.
func NewGridMap(bounds geom.Rect, gx, gy int, addrs []string, replicated []string) (*ZoneMap, error) {
	if gx < 1 || gy < 1 {
		return nil, fmt.Errorf("cluster: grid must be at least 1x1 (got %dx%d)", gx, gy)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: a zone map needs at least one node address")
	}
	if !bounds.Valid() || bounds.Max.X <= bounds.Min.X || bounds.Max.Y <= bounds.Min.Y {
		return nil, fmt.Errorf("cluster: degenerate bounds %+v", bounds)
	}
	m := &ZoneMap{Epoch: 1, Bounds: bounds, Replicated: append([]string(nil), replicated...)}
	w := (bounds.Max.X - bounds.Min.X) / float64(gx)
	h := (bounds.Max.Y - bounds.Min.Y) / float64(gy)
	for j := 0; j < gy; j++ {
		for i := 0; i < gx; i++ {
			id := j*gx + i
			m.Zones = append(m.Zones, wire.Zone{
				ID:   id,
				MinX: bounds.Min.X + float64(i)*w,
				MinY: bounds.Min.Y + float64(j)*h,
				MaxX: bounds.Min.X + float64(i+1)*w,
				MaxY: bounds.Min.Y + float64(j+1)*h,
				Addr: addrs[id%len(addrs)],
			})
		}
	}
	m.index()
	return m, nil
}

// NewMap builds a zone map from explicit zones — the hand-wired analogue
// of NewGridMap for deployments that assign rectangles per process
// (cmd/mostserver -zone/-peers).  Zone IDs are assigned in slice order.
func NewMap(zones []wire.Zone, replicated []string) (*ZoneMap, error) {
	if len(zones) == 0 {
		return nil, fmt.Errorf("cluster: a zone map needs at least one zone")
	}
	m := &ZoneMap{Epoch: 1, Replicated: append([]string(nil), replicated...)}
	for i, z := range zones {
		if z.MaxX <= z.MinX || z.MaxY <= z.MinY {
			return nil, fmt.Errorf("cluster: degenerate zone %d: [%g,%g]x[%g,%g]", i, z.MinX, z.MaxX, z.MinY, z.MaxY)
		}
		if z.Addr == "" {
			return nil, fmt.Errorf("cluster: zone %d has no owner address", i)
		}
		z.ID = i
		m.Zones = append(m.Zones, z)
		r := geom.Rect{Min: geom.Point{X: z.MinX, Y: z.MinY}, Max: geom.Point{X: z.MaxX, Y: z.MaxY}}
		if i == 0 {
			m.Bounds = r
		} else {
			m.Bounds = m.Bounds.Expand(r.Min).Expand(r.Max)
		}
	}
	m.index()
	return m, nil
}

// FromWire rebuilds a ZoneMap from its wire form (a client fetched it
// with OpZoneMap).
func FromWire(resp *wire.ZoneMapResp) *ZoneMap {
	m := &ZoneMap{
		Epoch:      resp.Epoch,
		Zones:      append([]wire.Zone(nil), resp.Zones...),
		Replicated: append([]string(nil), resp.Replicated...),
	}
	for i, z := range m.Zones {
		r := geom.Rect{Min: geom.Point{X: z.MinX, Y: z.MinY}, Max: geom.Point{X: z.MaxX, Y: z.MaxY}}
		if i == 0 {
			m.Bounds = r
		} else {
			m.Bounds = m.Bounds.Expand(r.Min).Expand(r.Max)
		}
	}
	m.index()
	return m
}

func (m *ZoneMap) index() {
	m.replicated = make(map[string]bool, len(m.Replicated))
	for _, c := range m.Replicated {
		m.replicated[c] = true
	}
}

// Wire returns the map in its OpZoneMap response form.
func (m *ZoneMap) Wire() *wire.ZoneMapResp {
	return &wire.ZoneMapResp{
		Epoch:      m.Epoch,
		Zones:      append([]wire.Zone(nil), m.Zones...),
		Replicated: append([]string(nil), m.Replicated...),
	}
}

// IsReplicated reports whether class is kept in full on every node.
func (m *ZoneMap) IsReplicated(class string) bool { return m.replicated[class] }

// ZoneAt returns the zone owning point p.  Zones are half-open on their
// max edges (a point on the seam belongs to the next zone over) so the
// ownership function is single-valued; points outside every zone clamp to
// the nearest one by center distance, so objects that drift off the map
// edge always keep exactly one owner.
func (m *ZoneMap) ZoneAt(p geom.Point) *wire.Zone {
	var best *wire.Zone
	bestDist := 0.0
	for i := range m.Zones {
		z := &m.Zones[i]
		if p.X >= z.MinX && p.Y >= z.MinY &&
			(p.X < z.MaxX || (p.X == z.MaxX && z.MaxX == m.Bounds.Max.X)) &&
			(p.Y < z.MaxY || (p.Y == z.MaxY && z.MaxY == m.Bounds.Max.Y)) {
			return z
		}
		cx, cy := (z.MinX+z.MaxX)/2, (z.MinY+z.MaxY)/2
		d := (p.X-cx)*(p.X-cx) + (p.Y-cy)*(p.Y-cy)
		if best == nil || d < bestDist {
			best, bestDist = z, d
		}
	}
	return best
}

// OwnerAt returns the address of the node owning point p ("" only on an
// empty map).
func (m *ZoneMap) OwnerAt(p geom.Point) string {
	if z := m.ZoneAt(p); z != nil {
		return z.Addr
	}
	return ""
}

// ZonesOf returns the zones assigned to addr.
func (m *ZoneMap) ZonesOf(addr string) []wire.Zone {
	var out []wire.Zone
	for _, z := range m.Zones {
		if z.Addr == addr {
			out = append(out, z)
		}
	}
	return out
}

// NeedsSplit is the dynamic-zone hook: given per-zone object counts it
// returns the IDs of zones whose population exceeds threshold, in ID
// order.  The static grid never splits today; a future rebalancer calls
// this after each barrier and replaces the map (bumping Epoch) for the
// zones it subdivides.
func (m *ZoneMap) NeedsSplit(counts map[int]int, threshold int) []int {
	if threshold <= 0 {
		return nil
	}
	var out []int
	for _, z := range m.Zones {
		if counts[z.ID] > threshold {
			out = append(out, z.ID)
		}
	}
	return out
}
