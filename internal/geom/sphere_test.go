package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestMinEnclosingBallBasics(t *testing.T) {
	tests := []struct {
		name   string
		pts    []Point
		center Point
		radius float64
	}{
		{"single", []Point{{3, 4, 0}}, Point{3, 4, 0}, 0},
		{"pair", []Point{{0, 0, 0}, {6, 0, 0}}, Point{3, 0, 0}, 3},
		{"right triangle", []Point{{0, 0, 0}, {6, 0, 0}, {0, 8, 0}}, Point{3, 4, 0}, 5},
		{"square", []Point{{0, 0, 0}, {2, 0, 0}, {2, 2, 0}, {0, 2, 0}}, Point{1, 1, 0}, math.Sqrt2},
		{"interior point ignored", []Point{{0, 0, 0}, {6, 0, 0}, {3, 1, 0}}, Point{3, 0, 0}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := MinEnclosingBall(tt.pts)
			if Dist(b.Center, tt.center) > 1e-9 || math.Abs(b.Radius-tt.radius) > 1e-9 {
				t.Fatalf("ball = %+v, want center %v radius %v", b, tt.center, tt.radius)
			}
		})
	}
}

func TestMinEnclosingBall3D(t *testing.T) {
	// Regular tetrahedron vertices on the unit sphere.
	k := 1 / math.Sqrt(3)
	pts := []Point{{k, k, k}, {k, -k, -k}, {-k, k, -k}, {-k, -k, k}}
	b := MinEnclosingBall(pts)
	if math.Abs(b.Radius-1) > 1e-9 || Dist(b.Center, Point{0, 0, 0}) > 1e-9 {
		t.Fatalf("ball = %+v, want unit sphere at origin", b)
	}
}

func TestMinEnclosingBallProperties(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for i := 0; i < 200; i++ {
		n := 1 + r.Intn(12)
		pts := make([]Point, n)
		for j := range pts {
			pts[j] = Point{r.Float64()*20 - 10, r.Float64()*20 - 10, r.Float64()*20 - 10}
		}
		b := MinEnclosingBall(pts)
		// Soundness: every point is inside.
		for _, p := range pts {
			if Dist(b.Center, p) > b.Radius+1e-6 {
				t.Fatalf("case %d: point %v outside ball %+v", i, p, b)
			}
		}
		// Near-minimality: no ball centred at any point pair midpoint with a
		// smaller radius also contains everything.
		for a := 0; a < n; a++ {
			for c := a + 1; c < n; c++ {
				mid := Point{(pts[a].X + pts[c].X) / 2, (pts[a].Y + pts[c].Y) / 2, (pts[a].Z + pts[c].Z) / 2}
				maxD := 0.0
				for _, p := range pts {
					maxD = math.Max(maxD, Dist(mid, p))
				}
				if maxD < b.Radius-1e-6 {
					t.Fatalf("case %d: found smaller ball (r=%v) than MEB (r=%v)", i, maxD, b.Radius)
				}
			}
		}
	}
}

func TestWithinSphere(t *testing.T) {
	pts := []Point{{0, 0, 0}, {6, 0, 0}, {0, 8, 0}} // MEB radius 5
	if !WithinSphere(5, pts...) {
		t.Error("radius 5 should enclose")
	}
	if WithinSphere(4.9, pts...) {
		t.Error("radius 4.9 should not enclose")
	}
	if !WithinSphere(0, Point{1, 2, 3}) {
		t.Error("single point encloses at radius 0")
	}
	if !WithinSphere(1) {
		t.Error("no points always encloses")
	}
}

func TestWithinSphereTimesTwoPoints(t *testing.T) {
	// Exactly DIST <= 2r for a pair.
	a := MovingPoint{P: Point{0, 0, 0}, V: Vector{1, 0, 0}}
	b := MovingPoint{P: Point{20, 0, 0}, V: Vector{-1, 0, 0}}
	got := WithinSphereTimes(2, []MovingPoint{a, b}, 0, 100, 0)
	ivs := got.Intervals()
	if len(ivs) != 1 || math.Abs(ivs[0].Lo-8) > 1e-9 || math.Abs(ivs[0].Hi-12) > 1e-9 {
		t.Fatalf("intervals = %v, want [8,12]", ivs)
	}
}

func TestWithinSphereTimesConverging(t *testing.T) {
	// Three objects converging on the origin then dispersing.
	pts := []MovingPoint{
		{P: Point{-30, 0, 0}, V: Vector{1, 0, 0}},
		{P: Point{30, 0, 0}, V: Vector{-1, 0, 0}},
		{P: Point{0, 30, 0}, V: Vector{0, -1, 0}},
	}
	got := WithinSphereTimes(5, pts, 0, 60, 600)
	if got.IsEmpty() {
		t.Fatal("expected an enclosure window around t=30")
	}
	if !got.Contains(30) {
		t.Fatalf("t=30 should be enclosed, got %v", got.Intervals())
	}
	if got.Contains(0) || got.Contains(60) {
		t.Fatalf("endpoints should not be enclosed, got %v", got.Intervals())
	}
	// Cross-check against direct MEB sampling.
	for tt := 0.5; tt < 60; tt += 1.0 {
		cur := []Point{pts[0].At(tt), pts[1].At(tt), pts[2].At(tt)}
		want := MinEnclosingBall(cur).Radius <= 5
		if got.Contains(tt) != want {
			if math.Abs(MinEnclosingBall(cur).Radius-5) < 1e-3 {
				continue // boundary noise
			}
			t.Fatalf("t=%v: got %v want %v", tt, got.Contains(tt), want)
		}
	}
}

func TestSolveByBisection(t *testing.T) {
	// f(t) = (t-3)(t-7): negative on (3,7).
	f := func(t float64) float64 { return (t - 3) * (t - 7) }
	got := solveByBisection(f, 0, 10, 100)
	ivs := got.Intervals()
	if len(ivs) != 1 || math.Abs(ivs[0].Lo-3) > 1e-6 || math.Abs(ivs[0].Hi-7) > 1e-6 {
		t.Fatalf("intervals = %v, want [3,7]", ivs)
	}
	// Always negative.
	got = solveByBisection(func(float64) float64 { return -1 }, 0, 10, 16)
	if ivs := got.Intervals(); len(ivs) != 1 || ivs[0] != (RealInterval{0, 10}) {
		t.Fatalf("always-negative = %v", ivs)
	}
	// Never negative.
	if got := solveByBisection(func(float64) float64 { return 1 }, 0, 10, 16); !got.IsEmpty() {
		t.Fatalf("never-negative = %v", got.Intervals())
	}
}
