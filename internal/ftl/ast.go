package ftl

import (
	"fmt"
	"strings"
)

// Query is a parsed FTL query: RETRIEVE targets FROM bindings WHERE formula.
// The FROM clause binds each variable to an object class; targets must be
// bound variables.
type Query struct {
	Targets  []string
	Bindings []Binding
	Where    Formula
}

// Binding associates a query variable with an object class.
type Binding struct {
	Var   string
	Class string
}

// Formula is an FTL formula node.
type Formula interface {
	fNode()
	String() string
}

// Expr is an FTL term node.
type Expr interface {
	eNode()
	String() string
}

// ---- formulas ----

// And is conjunction f AND g.
type And struct{ L, R Formula }

// Or is disjunction f OR g (definable from NOT and AND, §3.3).
type Or struct{ L, R Formula }

// Not is negation.  The processing algorithm accepts it only where the
// instantiation domain is closed (the paper restricts to conjunctive
// formulas for safety; see eval).
type Not struct{ F Formula }

// Implies is logical implication f IMPLIES g == (NOT f) OR g.
type Implies struct{ L, R Formula }

// Until is f UNTIL g; if Within is non-nil it is the bounded form
// f UNTIL WITHIN c g (§3.4).
type Until struct {
	L, R   Formula
	Within Expr // nil for the unbounded operator
}

// Nexttime is NEXTTIME f.
type Nexttime struct{ F Formula }

// Eventually is EVENTUALLY f, or its bounded forms: EVENTUALLY WITHIN c f
// (Within non-nil) and EVENTUALLY AFTER c f (After non-nil).
type Eventually struct {
	F      Formula
	Within Expr
	After  Expr
}

// Always is ALWAYS f, or ALWAYS FOR c f when For is non-nil.
type Always struct {
	F   Formula
	For Expr
}

// Assign is the assignment quantifier [x <- t] f: x is bound to the value
// of term t in the current state, and f is evaluated with that binding
// (§3.2: "the assignment is the only quantifier").
type Assign struct {
	Var  string
	Term Expr
	Body Formula
}

// Compare is an atomic comparison t1 op t2 with op in
// {<, <=, >, >=, =, !=}.
type Compare struct {
	Op   string
	L, R Expr
}

// Inside is the spatial predicate INSIDE(o, R); Region names a polygon
// supplied at evaluation time.
type Inside struct {
	Obj    Expr
	Region Expr
}

// Outside is OUTSIDE(o, R).
type Outside struct {
	Obj    Expr
	Region Expr
}

// WithinSphere is WITHIN_SPHERE(r, o1, ..., ok).
type WithinSphere struct {
	Radius Expr
	Objs   []Expr
}

// BoolLit is TRUE or FALSE.
type BoolLit struct{ V bool }

func (And) fNode()          {}
func (Or) fNode()           {}
func (Not) fNode()          {}
func (Implies) fNode()      {}
func (Until) fNode()        {}
func (Nexttime) fNode()     {}
func (Eventually) fNode()   {}
func (Always) fNode()       {}
func (Assign) fNode()       {}
func (Compare) fNode()      {}
func (Inside) fNode()       {}
func (Outside) fNode()      {}
func (WithinSphere) fNode() {}
func (BoolLit) fNode()      {}

func (f And) String() string     { return fmt.Sprintf("(%s AND %s)", f.L, f.R) }
func (f Or) String() string      { return fmt.Sprintf("(%s OR %s)", f.L, f.R) }
func (f Not) String() string     { return fmt.Sprintf("(NOT %s)", f.F) }
func (f Implies) String() string { return fmt.Sprintf("(%s IMPLIES %s)", f.L, f.R) }
func (f Until) String() string {
	if f.Within != nil {
		return fmt.Sprintf("(%s UNTIL WITHIN %s %s)", f.L, f.Within, f.R)
	}
	return fmt.Sprintf("(%s UNTIL %s)", f.L, f.R)
}
func (f Nexttime) String() string { return fmt.Sprintf("(NEXTTIME %s)", f.F) }
func (f Eventually) String() string {
	switch {
	case f.Within != nil:
		return fmt.Sprintf("(EVENTUALLY WITHIN %s %s)", f.Within, f.F)
	case f.After != nil:
		return fmt.Sprintf("(EVENTUALLY AFTER %s %s)", f.After, f.F)
	default:
		return fmt.Sprintf("(EVENTUALLY %s)", f.F)
	}
}
func (f Always) String() string {
	if f.For != nil {
		return fmt.Sprintf("(ALWAYS FOR %s %s)", f.For, f.F)
	}
	return fmt.Sprintf("(ALWAYS %s)", f.F)
}
func (f Assign) String() string  { return fmt.Sprintf("[%s <- %s] %s", f.Var, f.Term, f.Body) }
func (f Compare) String() string { return fmt.Sprintf("%s %s %s", f.L, f.Op, f.R) }
func (f Inside) String() string  { return fmt.Sprintf("INSIDE(%s, %s)", f.Obj, f.Region) }
func (f Outside) String() string { return fmt.Sprintf("OUTSIDE(%s, %s)", f.Obj, f.Region) }
func (f WithinSphere) String() string {
	parts := make([]string, 0, len(f.Objs)+1)
	parts = append(parts, f.Radius.String())
	for _, o := range f.Objs {
		parts = append(parts, o.String())
	}
	return fmt.Sprintf("WITHIN_SPHERE(%s)", strings.Join(parts, ", "))
}
func (f BoolLit) String() string {
	if f.V {
		return "TRUE"
	}
	return "FALSE"
}

// ---- expressions ----

// Var references a variable (FROM-bound object variable, assignment-bound
// value, or an evaluation-time parameter such as a named polygon).
type Var struct{ Name string }

// Num is a numeric literal.
type Num struct{ V float64 }

// StrLit is a string literal.
type StrLit struct{ S string }

// BoolExpr is a boolean literal used as a term (e.g. m.AVAILABLE = TRUE).
type BoolExpr struct{ V bool }

// AttrRef is attribute access obj.Path, e.g. o.PRICE or o.X.POSITION; a
// trailing VALUE, UPDATETIME or SPEED component accesses the dynamic
// attribute's sub-attributes (A.value, A.updatetime, and the slope of
// A.function).
type AttrRef struct {
	Obj  Expr
	Path []string
}

// Bin is arithmetic: Op in {+, -, *, /}.
type Bin struct {
	Op   string
	L, R Expr
}

// Neg is unary minus.
type Neg struct{ E Expr }

// DistOf is DIST(o1, o2): the distance between two point-objects (§2).
type DistOf struct{ A, B Expr }

// SpeedOf is SPEED(o.Attr): the rate of change of a dynamic attribute —
// how "the objects whose speed in the X direction is 5" are expressed
// (§2.1 queries sub-attribute A.function).
type SpeedOf struct{ Attr AttrRef }

// TimeRef is the special database object "time" (§2).
type TimeRef struct{}

// Call is a builtin numeric function: ABS, MIN, MAX.
type Call struct {
	Name string
	Args []Expr
}

func (Var) eNode()      {}
func (Num) eNode()      {}
func (StrLit) eNode()   {}
func (BoolExpr) eNode() {}
func (AttrRef) eNode()  {}
func (Bin) eNode()      {}
func (Neg) eNode()      {}
func (DistOf) eNode()   {}
func (SpeedOf) eNode()  {}
func (TimeRef) eNode()  {}
func (Call) eNode()     {}

func (e Var) String() string    { return e.Name }
func (e Num) String() string    { return fmt.Sprintf("%g", e.V) }
func (e StrLit) String() string { return fmt.Sprintf("%q", e.S) }
func (e BoolExpr) String() string {
	if e.V {
		return "TRUE"
	}
	return "FALSE"
}
func (e AttrRef) String() string {
	return fmt.Sprintf("%s.%s", e.Obj, strings.Join(e.Path, "."))
}
func (e Bin) String() string     { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e Neg) String() string     { return fmt.Sprintf("(-%s)", e.E) }
func (e DistOf) String() string  { return fmt.Sprintf("DIST(%s, %s)", e.A, e.B) }
func (e SpeedOf) String() string { return fmt.Sprintf("SPEED(%s)", e.Attr) }
func (e TimeRef) String() string { return "time" }
func (e Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(parts, ", "))
}

// FreeVars returns the free variables of a formula in first-use order.
func FreeVars(f Formula) []string {
	var out []string
	seen := map[string]bool{}
	var bound []string
	collectFormula(f, &out, seen, &bound)
	return out
}

func collectFormula(f Formula, out *[]string, seen map[string]bool, bound *[]string) {
	switch n := f.(type) {
	case And:
		collectFormula(n.L, out, seen, bound)
		collectFormula(n.R, out, seen, bound)
	case Or:
		collectFormula(n.L, out, seen, bound)
		collectFormula(n.R, out, seen, bound)
	case Implies:
		collectFormula(n.L, out, seen, bound)
		collectFormula(n.R, out, seen, bound)
	case Not:
		collectFormula(n.F, out, seen, bound)
	case Until:
		collectFormula(n.L, out, seen, bound)
		collectFormula(n.R, out, seen, bound)
		if n.Within != nil {
			collectExpr(n.Within, out, seen, bound)
		}
	case Nexttime:
		collectFormula(n.F, out, seen, bound)
	case Eventually:
		collectFormula(n.F, out, seen, bound)
		if n.Within != nil {
			collectExpr(n.Within, out, seen, bound)
		}
		if n.After != nil {
			collectExpr(n.After, out, seen, bound)
		}
	case Always:
		collectFormula(n.F, out, seen, bound)
		if n.For != nil {
			collectExpr(n.For, out, seen, bound)
		}
	case Assign:
		collectExpr(n.Term, out, seen, bound)
		*bound = append(*bound, n.Var)
		collectFormula(n.Body, out, seen, bound)
		*bound = (*bound)[:len(*bound)-1]
	case Compare:
		collectExpr(n.L, out, seen, bound)
		collectExpr(n.R, out, seen, bound)
	case Inside:
		collectExpr(n.Obj, out, seen, bound)
		collectExpr(n.Region, out, seen, bound)
	case Outside:
		collectExpr(n.Obj, out, seen, bound)
		collectExpr(n.Region, out, seen, bound)
	case WithinSphere:
		collectExpr(n.Radius, out, seen, bound)
		for _, o := range n.Objs {
			collectExpr(o, out, seen, bound)
		}
	case BoolLit:
	}
}

func collectExpr(e Expr, out *[]string, seen map[string]bool, bound *[]string) {
	switch n := e.(type) {
	case Var:
		for _, b := range *bound {
			if b == n.Name {
				return
			}
		}
		if !seen[n.Name] {
			seen[n.Name] = true
			*out = append(*out, n.Name)
		}
	case AttrRef:
		collectExpr(n.Obj, out, seen, bound)
	case Bin:
		collectExpr(n.L, out, seen, bound)
		collectExpr(n.R, out, seen, bound)
	case Neg:
		collectExpr(n.E, out, seen, bound)
	case DistOf:
		collectExpr(n.A, out, seen, bound)
		collectExpr(n.B, out, seen, bound)
	case SpeedOf:
		collectExpr(n.Attr, out, seen, bound)
	case Call:
		for _, a := range n.Args {
			collectExpr(a, out, seen, bound)
		}
	case Num, StrLit, BoolExpr, TimeRef:
	}
}
